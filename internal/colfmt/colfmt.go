// Package colfmt is the columnar replay format for parsed telemetry: a
// fixed-schema binary encoding of the CE/DUE/HET record streams that a
// syslog scan produces, so re-analysis runs (astrareport, astrafit, the
// benchmarks) can load months of telemetry without paying for text
// parsing again.
//
// Layout: a magic header, the three record counts, then a sequence of
// per-column blocks, each covering up to 64Ki records of one column of
// one record kind:
//
//	magic "ASTRACOL\x01"
//	uvarint nCE | uvarint nDUE | uvarint nHET
//	block*:
//	  byte kind (1=CE 2=DUE 3=HET) | byte column
//	  uvarint first | uvarint count | uvarint payloadLen
//	  payload | uint32le CRC32(header+payload)
//	byte 0 (end marker)
//
// Column encodings: timestamps are split into a delta-zigzag-varint
// seconds column (first value absolute, then per-record deltas — nearly
// always 1-2 bytes for time-ordered telemetry) and a nanoseconds uvarint
// column; hostnames (node IDs) and DIMM slots are dictionary-encoded
// (a first-appearance value table per kind, then per-record indexes);
// remaining integer fields are plain varints; single-byte fields
// (syndrome, cause, fatal, event type, severity) are raw bytes. Every
// block carries a CRC32 of its header and payload, so corruption is
// detected at block granularity rather than surfacing as silently wrong
// records.
package colfmt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/topology"
)

// Magic heads every colfmt file; the trailing byte is the format version.
const Magic = "ASTRACOL\x01"

// MagicLen is how many leading bytes Sniff needs.
const MagicLen = len(Magic)

// Sniff reports whether prefix begins a colfmt file.
func Sniff(prefix []byte) bool {
	return len(prefix) >= MagicLen && string(prefix[:MagicLen]) == Magic
}

// blockRecords caps how many records one column block spans: large enough
// to amortize the 10-byte header + CRC, small enough that a detected
// corruption names a usefully narrow record range.
const blockRecords = 1 << 16

// Record kinds (block header byte). 0 is the end-of-file marker.
const (
	kindEnd = iota
	kindCE
	kindDUE
	kindHET
)

// Column ids shared by all kinds.
const (
	colTimeSec  = 0 // delta zigzag varint, first value absolute
	colTimeNsec = 1 // uvarint
	colNode     = 2 // dict index, uvarint
)

// CE columns beyond the shared ones.
const (
	colCESlot     = 3 // dict index, uvarint
	colCESocket   = 4
	colCERank     = 5
	colCEBank     = 6
	colCERowRaw   = 7
	colCECol      = 8
	colCEBitPos   = 9
	colCEAddr     = 10
	colCESyndrome = 11
	numCECols     = 12
)

// DUE columns.
const (
	colDUECause = 3
	colDUEAddr  = 4
	colDUEFatal = 5
	numDUECols  = 6
)

// HET columns.
const (
	colHETType     = 3
	colHETSeverity = 4
	colHETAddr     = 5
	numHETCols     = 6
)

// Dictionary-table pseudo-columns (always first=0, count=table size).
const (
	colNodeDict = 200
	colSlotDict = 201
)

// Records bundles the three typed record streams one file holds.
type Records struct {
	CEs  []mce.CERecord
	DUEs []mce.DUERecord
	HETs []het.Record
}

// Write encodes recs to w. The output is deterministic for given input.
func Write(w io.Writer, recs Records) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var hdr [3 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(recs.CEs)))
	n += binary.PutUvarint(hdr[n:], uint64(len(recs.DUEs)))
	n += binary.PutUvarint(hdr[n:], uint64(len(recs.HETs)))
	if _, err := bw.Write(hdr[:n]); err != nil {
		return err
	}
	enc := &encoder{w: bw}
	enc.writeCE(recs.CEs)
	enc.writeDUE(recs.DUEs)
	enc.writeHET(recs.HETs)
	if enc.err == nil {
		enc.err = bw.WriteByte(kindEnd)
	}
	if enc.err != nil {
		return fmt.Errorf("colfmt: write: %w", enc.err)
	}
	return bw.Flush()
}

type encoder struct {
	w       *bufio.Writer
	scratch []byte
	err     error
}

// block emits one column block: header varints, payload, trailing CRC32
// over both.
func (e *encoder) block(kind, col byte, first, count int, payload []byte) {
	if e.err != nil {
		return
	}
	var hdr [2 + 3*binary.MaxVarintLen64]byte
	hdr[0], hdr[1] = kind, col
	n := 2
	n += binary.PutUvarint(hdr[n:], uint64(first))
	n += binary.PutUvarint(hdr[n:], uint64(count))
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:n])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, e.err = e.w.Write(hdr[:n]); e.err != nil {
		return
	}
	if _, e.err = e.w.Write(payload); e.err != nil {
		return
	}
	_, e.err = e.w.Write(tail[:])
}

// column chunks one column of n records into blocks, calling encode to
// append record i's value to the payload.
func (e *encoder) column(kind, col byte, n int, encode func(dst []byte, i int) []byte) {
	for first := 0; first < n; first += blockRecords {
		count := min(blockRecords, n-first)
		p := e.scratch[:0]
		for i := first; i < first+count; i++ {
			p = encode(p, i)
		}
		e.block(kind, col, first, count, p)
		e.scratch = p
	}
}

// dict builds a first-appearance dictionary over vals and emits its table
// block; the returned index map drives the per-record index column.
func (e *encoder) dict(kind, col byte, vals func(i int) int, n int) map[int]uint64 {
	idx := make(map[int]uint64)
	p := e.scratch[:0]
	for i := 0; i < n; i++ {
		v := vals(i)
		if _, ok := idx[v]; !ok {
			idx[v] = uint64(len(idx))
			p = binary.AppendVarint(p, int64(v))
		}
	}
	e.block(kind, col, 0, len(idx), p)
	e.scratch = p
	return idx
}

// timeColumns emits the shared delta-seconds and nanoseconds columns.
func (e *encoder) timeColumns(kind byte, n int, at func(i int) time.Time) {
	var prev int64
	// Delta state must reset at block boundaries so each block decodes
	// independently; track the previous block's boundary via closure over
	// the record index.
	e.column(kind, colTimeSec, n, func(dst []byte, i int) []byte {
		sec := at(i).Unix()
		if i%blockRecords == 0 {
			prev = 0
		}
		dst = binary.AppendVarint(dst, sec-prev)
		prev = sec
		return dst
	})
	e.column(kind, colTimeNsec, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, uint64(at(i).Nanosecond()))
	})
}

func (e *encoder) writeCE(ces []mce.CERecord) {
	n := len(ces)
	if n == 0 {
		return
	}
	nodeIdx := e.dict(kindCE, colNodeDict, func(i int) int { return int(ces[i].Node) }, n)
	slotIdx := e.dict(kindCE, colSlotDict, func(i int) int { return int(ces[i].Slot) }, n)
	e.timeColumns(kindCE, n, func(i int) time.Time { return ces[i].Time })
	e.column(kindCE, colNode, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, nodeIdx[int(ces[i].Node)])
	})
	e.column(kindCE, colCESlot, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, slotIdx[int(ces[i].Slot)])
	})
	for _, c := range []struct {
		col byte
		get func(i int) int64
	}{
		{colCESocket, func(i int) int64 { return int64(ces[i].Socket) }},
		{colCERank, func(i int) int64 { return int64(ces[i].Rank) }},
		{colCEBank, func(i int) int64 { return int64(ces[i].Bank) }},
		{colCERowRaw, func(i int) int64 { return int64(ces[i].RowRaw) }},
		{colCECol, func(i int) int64 { return int64(ces[i].Col) }},
		{colCEBitPos, func(i int) int64 { return int64(ces[i].BitPos) }},
	} {
		get := c.get
		e.column(kindCE, c.col, n, func(dst []byte, i int) []byte {
			return binary.AppendVarint(dst, get(i))
		})
	}
	e.column(kindCE, colCEAddr, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, uint64(ces[i].Addr))
	})
	e.column(kindCE, colCESyndrome, n, func(dst []byte, i int) []byte {
		return append(dst, ces[i].Syndrome)
	})
}

func (e *encoder) writeDUE(dues []mce.DUERecord) {
	n := len(dues)
	if n == 0 {
		return
	}
	nodeIdx := e.dict(kindDUE, colNodeDict, func(i int) int { return int(dues[i].Node) }, n)
	e.timeColumns(kindDUE, n, func(i int) time.Time { return dues[i].Time })
	e.column(kindDUE, colNode, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, nodeIdx[int(dues[i].Node)])
	})
	e.column(kindDUE, colDUECause, n, func(dst []byte, i int) []byte {
		return binary.AppendVarint(dst, int64(dues[i].Cause))
	})
	e.column(kindDUE, colDUEAddr, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, uint64(dues[i].Addr))
	})
	e.column(kindDUE, colDUEFatal, n, func(dst []byte, i int) []byte {
		if dues[i].Fatal {
			return append(dst, 1)
		}
		return append(dst, 0)
	})
}

func (e *encoder) writeHET(hets []het.Record) {
	n := len(hets)
	if n == 0 {
		return
	}
	nodeIdx := e.dict(kindHET, colNodeDict, func(i int) int { return int(hets[i].Node) }, n)
	e.timeColumns(kindHET, n, func(i int) time.Time { return hets[i].Time })
	e.column(kindHET, colNode, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, nodeIdx[int(hets[i].Node)])
	})
	e.column(kindHET, colHETType, n, func(dst []byte, i int) []byte {
		return binary.AppendVarint(dst, int64(hets[i].Type))
	})
	e.column(kindHET, colHETSeverity, n, func(dst []byte, i int) []byte {
		return binary.AppendVarint(dst, int64(hets[i].Severity))
	})
	e.column(kindHET, colHETAddr, n, func(dst []byte, i int) []byte {
		return binary.AppendUvarint(dst, uint64(hets[i].Addr))
	})
}

// Read decodes a colfmt stream. The whole input is buffered: colfmt files
// are compact (a few bytes per record) and the decoder validates
// per-block checksums before trusting any byte.
func Read(r io.Reader) (Records, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Records{}, fmt.Errorf("colfmt: read: %w", err)
	}
	return Decode(data)
}

// Decode decodes an in-memory colfmt file.
func Decode(data []byte) (Records, error) {
	d := decoder{data: data}
	recs, err := d.run()
	if err != nil {
		return Records{}, err
	}
	return recs, nil
}

type decoder struct {
	data []byte
	off  int
}

var errShort = errors.New("truncated")

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, errShort
	}
	d.off += n
	return v, nil
}

func (d *decoder) run() (Records, error) {
	if !Sniff(d.data) {
		return Records{}, errors.New("colfmt: bad magic")
	}
	d.off = MagicLen
	var counts [3]uint64
	for i := range counts {
		v, err := d.uvarint()
		if err != nil {
			return Records{}, fmt.Errorf("colfmt: header: %w", err)
		}
		counts[i] = v
	}
	// Every record costs at least one payload byte in several columns; a
	// count beyond the file size is corruption, not a huge file, and must
	// not drive allocation.
	if counts[0]+counts[1]+counts[2] > uint64(len(d.data)) {
		return Records{}, fmt.Errorf("colfmt: header: %d records in a %d-byte file", counts[0]+counts[1]+counts[2], len(d.data))
	}
	recs := Records{
		CEs:  make([]mce.CERecord, counts[0]),
		DUEs: make([]mce.DUERecord, counts[1]),
		HETs: make([]het.Record, counts[2]),
	}
	ks := kindState{
		kindCE:  {nCols: numCECols, n: len(recs.CEs)},
		kindDUE: {nCols: numDUECols, n: len(recs.DUEs)},
		kindHET: {nCols: numHETCols, n: len(recs.HETs)},
	}
	for {
		if d.off >= len(d.data) {
			return Records{}, errors.New("colfmt: missing end marker")
		}
		kind := d.data[d.off]
		if kind == kindEnd {
			d.off++
			break
		}
		if err := d.block(kind, &recs, &ks); err != nil {
			return Records{}, err
		}
	}
	if d.off != len(d.data) {
		return Records{}, fmt.Errorf("colfmt: %d trailing bytes", len(d.data)-d.off)
	}
	for kind := kindCE; kind <= kindHET; kind++ {
		st := &ks[kind]
		if st.n == 0 {
			continue
		}
		for col := 0; col < st.nCols; col++ {
			if st.progress[col] != st.n {
				return Records{}, fmt.Errorf("colfmt: kind %d column %d covers %d of %d records", kind, col, st.progress[col], st.n)
			}
		}
	}
	return recs, nil
}

// kindDecode tracks one kind's decode progress: how far each column has
// been filled (blocks must arrive in order, gap-free) and the
// dictionaries its index columns resolve against.
type kindDecode struct {
	nCols    int
	n        int
	progress [numCECols]int
	nodeDict []int64
	slotDict []int64
}

type kindState [kindHET + 1]kindDecode

func (d *decoder) block(kind byte, recs *Records, ks *kindState) error {
	blockStart := d.off
	if kind > kindHET {
		return fmt.Errorf("colfmt: unknown record kind %d at offset %d", kind, d.off)
	}
	if d.off+2 > len(d.data) {
		return errors.New("colfmt: truncated block header")
	}
	col := d.data[d.off+1]
	d.off += 2
	first, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("colfmt: block header: %w", err)
	}
	count, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("colfmt: block header: %w", err)
	}
	plen, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("colfmt: block header: %w", err)
	}
	if plen > uint64(len(d.data)-d.off) {
		return fmt.Errorf("colfmt: block payload of %d bytes exceeds remaining input", plen)
	}
	payload := d.data[d.off : d.off+int(plen)]
	d.off += int(plen)
	if d.off+4 > len(d.data) {
		return errors.New("colfmt: truncated block checksum")
	}
	want := binary.LittleEndian.Uint32(d.data[d.off : d.off+4])
	d.off += 4
	if crc := crc32.ChecksumIEEE(d.data[blockStart : d.off-4]); crc != want {
		return fmt.Errorf("colfmt: kind %d column %d block at offset %d: checksum mismatch", kind, col, blockStart)
	}

	st := &ks[kind]
	if col == colNodeDict || col == colSlotDict {
		if first != 0 {
			return fmt.Errorf("colfmt: dictionary block with first=%d", first)
		}
		table := make([]int64, 0, count)
		off := 0
		for i := uint64(0); i < count; i++ {
			v, n := binary.Varint(payload[off:])
			if n <= 0 {
				return fmt.Errorf("colfmt: kind %d dictionary %d: truncated entry", kind, col)
			}
			off += n
			table = append(table, v)
		}
		if off != len(payload) {
			return fmt.Errorf("colfmt: kind %d dictionary %d: trailing payload", kind, col)
		}
		if col == colNodeDict {
			st.nodeDict = table
		} else {
			st.slotDict = table
		}
		return nil
	}
	if int(col) >= st.nCols {
		return fmt.Errorf("colfmt: kind %d: unknown column %d", kind, col)
	}
	if int(first) != st.progress[col] {
		return fmt.Errorf("colfmt: kind %d column %d: block starts at %d, expected %d", kind, col, first, st.progress[col])
	}
	if first+count > uint64(st.n) {
		return fmt.Errorf("colfmt: kind %d column %d: block [%d,%d) exceeds %d records", kind, col, first, first+count, st.n)
	}
	if err := d.decodeColumn(kind, col, int(first), int(count), payload, recs, st); err != nil {
		return err
	}
	st.progress[col] += int(count)
	return nil
}

// eachUvarint walks a payload of exactly count uvarints.
func eachUvarint(payload []byte, count int, fn func(i int, v uint64) error) error {
	off := 0
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return errShort
		}
		off += n
		if err := fn(i, v); err != nil {
			return err
		}
	}
	if off != len(payload) {
		return fmt.Errorf("%d trailing payload bytes", len(payload)-off)
	}
	return nil
}

// eachVarint walks a payload of exactly count zigzag varints.
func eachVarint(payload []byte, count int, fn func(i int, v int64) error) error {
	off := 0
	for i := 0; i < count; i++ {
		v, n := binary.Varint(payload[off:])
		if n <= 0 {
			return errShort
		}
		off += n
		if err := fn(i, v); err != nil {
			return err
		}
	}
	if off != len(payload) {
		return fmt.Errorf("%d trailing payload bytes", len(payload)-off)
	}
	return nil
}

// bytesColumn checks a raw single-byte-per-record payload.
func bytesColumn(payload []byte, count int) error {
	if len(payload) != count {
		return fmt.Errorf("%d payload bytes for %d records", len(payload), count)
	}
	return nil
}

// decodeColumn fills records [first, first+count) of one column from a
// checksum-verified payload.
func (d *decoder) decodeColumn(kind, col byte, first, count int, payload []byte, recs *Records, st *kindDecode) error {
	var err error
	switch kind {
	case kindCE:
		err = decodeCE(col, first, count, payload, recs.CEs, st)
	case kindDUE:
		err = decodeDUE(col, first, count, payload, recs.DUEs, st)
	case kindHET:
		err = decodeHET(col, first, count, payload, recs.HETs, st)
	}
	if err != nil {
		return fmt.Errorf("colfmt: kind %d column %d at record %d: %w", kind, col, first, err)
	}
	return nil
}

var errDictIndex = errors.New("dictionary index out of range")

// timeSec decodes a delta-seconds block into out (the nanoseconds column
// merges in later: encoder order writes seconds first).
func timeSec(first, count int, payload []byte, set func(i int, sec int64)) error {
	prev := int64(0)
	return eachVarint(payload, count, func(i int, delta int64) error {
		prev += delta
		set(first+i, prev)
		return nil
	})
}

func decodeCE(col byte, first, count int, payload []byte, out []mce.CERecord, st *kindDecode) error {
	recs := out[first : first+count]
	switch col {
	case colTimeSec:
		return timeSec(first, count, payload, func(i int, sec int64) {
			out[i].Time = time.Unix(sec, 0).UTC()
		})
	case colTimeNsec:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			recs[i].Time = time.Unix(recs[i].Time.Unix(), int64(v)).UTC()
			return nil
		})
	case colNode:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			if v >= uint64(len(st.nodeDict)) {
				return errDictIndex
			}
			recs[i].Node = topology.NodeID(st.nodeDict[v])
			return nil
		})
	case colCESlot:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			if v >= uint64(len(st.slotDict)) {
				return errDictIndex
			}
			recs[i].Slot = topology.Slot(st.slotDict[v])
			return nil
		})
	case colCESocket:
		return eachVarint(payload, count, func(i int, v int64) error { recs[i].Socket = int(v); return nil })
	case colCERank:
		return eachVarint(payload, count, func(i int, v int64) error { recs[i].Rank = int(v); return nil })
	case colCEBank:
		return eachVarint(payload, count, func(i int, v int64) error { recs[i].Bank = int(v); return nil })
	case colCERowRaw:
		return eachVarint(payload, count, func(i int, v int64) error { recs[i].RowRaw = int(v); return nil })
	case colCECol:
		return eachVarint(payload, count, func(i int, v int64) error { recs[i].Col = int(v); return nil })
	case colCEBitPos:
		return eachVarint(payload, count, func(i int, v int64) error { recs[i].BitPos = int(v); return nil })
	case colCEAddr:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			recs[i].Addr = topology.PhysAddr(v)
			return nil
		})
	case colCESyndrome:
		if err := bytesColumn(payload, count); err != nil {
			return err
		}
		for i := range recs {
			recs[i].Syndrome = payload[i]
		}
		return nil
	}
	return fmt.Errorf("unhandled column %d", col)
}

func decodeDUE(col byte, first, count int, payload []byte, out []mce.DUERecord, st *kindDecode) error {
	recs := out[first : first+count]
	switch col {
	case colTimeSec:
		return timeSec(first, count, payload, func(i int, sec int64) {
			out[i].Time = time.Unix(sec, 0).UTC()
		})
	case colTimeNsec:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			recs[i].Time = time.Unix(recs[i].Time.Unix(), int64(v)).UTC()
			return nil
		})
	case colNode:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			if v >= uint64(len(st.nodeDict)) {
				return errDictIndex
			}
			recs[i].Node = topology.NodeID(st.nodeDict[v])
			return nil
		})
	case colDUECause:
		return eachVarint(payload, count, func(i int, v int64) error {
			recs[i].Cause = faultmodel.DUECause(v)
			return nil
		})
	case colDUEAddr:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			recs[i].Addr = topology.PhysAddr(v)
			return nil
		})
	case colDUEFatal:
		if err := bytesColumn(payload, count); err != nil {
			return err
		}
		for i := range recs {
			recs[i].Fatal = payload[i] != 0
		}
		return nil
	}
	return fmt.Errorf("unhandled column %d", col)
}

func decodeHET(col byte, first, count int, payload []byte, out []het.Record, st *kindDecode) error {
	recs := out[first : first+count]
	switch col {
	case colTimeSec:
		return timeSec(first, count, payload, func(i int, sec int64) {
			out[i].Time = time.Unix(sec, 0).UTC()
		})
	case colTimeNsec:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			recs[i].Time = time.Unix(recs[i].Time.Unix(), int64(v)).UTC()
			return nil
		})
	case colNode:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			if v >= uint64(len(st.nodeDict)) {
				return errDictIndex
			}
			recs[i].Node = topology.NodeID(st.nodeDict[v])
			return nil
		})
	case colHETType:
		return eachVarint(payload, count, func(i int, v int64) error {
			recs[i].Type = het.EventType(v)
			return nil
		})
	case colHETSeverity:
		return eachVarint(payload, count, func(i int, v int64) error {
			recs[i].Severity = het.Severity(v)
			return nil
		})
	case colHETAddr:
		return eachUvarint(payload, count, func(i int, v uint64) error {
			recs[i].Addr = topology.PhysAddr(v)
			return nil
		})
	}
	return fmt.Errorf("unhandled column %d", col)
}
