package colfmt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/topology"
)

// fixtureRecords builds n CE, n/4 DUE and n/8 HET records with the value
// shapes real telemetry has — clustered nodes and slots, mostly-ascending
// timestamps, repeated addresses — plus deliberate oddities (zero times,
// out-of-order seconds, nanosecond components) the encodings must survive.
func fixtureRecords(n int) Records {
	var recs Records
	base := time.Date(2019, 5, 20, 13, 4, 55, 0, time.UTC)
	rng := uint64(0x2545f4914f6cdd1d)
	next := func(m uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % m
	}
	for i := 0; i < n; i++ {
		r := mce.CERecord{
			Time:     base.Add(time.Duration(i)*time.Second - time.Duration(next(90))*time.Second),
			Node:     topology.NodeID(next(64) * 7 % topology.Nodes),
			Socket:   int(next(2)),
			Slot:     topology.Slot(next(topology.SlotsPerNode)),
			Rank:     int(next(2)),
			Bank:     int(next(16)),
			RowRaw:   int(next(1 << 18)),
			Col:      int(next(1 << 10)),
			BitPos:   int(next(1 << 13)),
			Addr:     topology.PhysAddr(0x4000_0000 + next(1<<30)&^0x3f),
			Syndrome: uint8(next(256)),
		}
		if i%97 == 0 {
			r.Time = r.Time.Add(time.Duration(next(1_000_000_000)) * time.Nanosecond)
		}
		recs.CEs = append(recs.CEs, r)
	}
	for i := 0; i < n/4; i++ {
		recs.DUEs = append(recs.DUEs, mce.DUERecord{
			Time:  base.Add(time.Duration(i*3) * time.Minute),
			Node:  topology.NodeID(next(uint64(topology.Nodes))),
			Addr:  topology.PhysAddr(next(1 << 40)),
			Cause: faultmodel.DUECause(next(uint64(faultmodel.NumDUECauses))),
			Fatal: next(2) == 1,
		})
	}
	for i := 0; i < n/8; i++ {
		recs.HETs = append(recs.HETs, het.Record{
			Time:     base.Add(time.Duration(i*7) * time.Minute),
			Node:     topology.NodeID(next(uint64(topology.Nodes))),
			Type:     het.EventType(next(uint64(het.NumEventTypes))),
			Severity: het.Severity(next(uint64(het.NumSeverities))),
			Addr:     topology.PhysAddr(next(1 << 38)),
		})
	}
	return recs
}

func encode(t *testing.T, recs Records) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTrip proves byte-for-byte schema fidelity: every field of
// every record — time.Time representation included — compares equal with
// ==, at sizes covering the empty, single-block and multi-block cases.
func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 1000, blockRecords + 137} {
		recs := fixtureRecords(n)
		data := encode(t, recs)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("n=%d: Decode: %v", n, err)
		}
		if len(got.CEs) != len(recs.CEs) || len(got.DUEs) != len(recs.DUEs) || len(got.HETs) != len(recs.HETs) {
			t.Fatalf("n=%d: counts (%d,%d,%d) != (%d,%d,%d)", n,
				len(got.CEs), len(got.DUEs), len(got.HETs),
				len(recs.CEs), len(recs.DUEs), len(recs.HETs))
		}
		for i := range recs.CEs {
			if got.CEs[i] != recs.CEs[i] {
				t.Fatalf("n=%d: CE %d: %+v != %+v", n, i, got.CEs[i], recs.CEs[i])
			}
		}
		for i := range recs.DUEs {
			if got.DUEs[i] != recs.DUEs[i] {
				t.Fatalf("n=%d: DUE %d: %+v != %+v", n, i, got.DUEs[i], recs.DUEs[i])
			}
		}
		for i := range recs.HETs {
			if got.HETs[i] != recs.HETs[i] {
				t.Fatalf("n=%d: HET %d: %+v != %+v", n, i, got.HETs[i], recs.HETs[i])
			}
		}
	}
}

// TestDeterministic pins the encoder's output: same records, same bytes.
func TestDeterministic(t *testing.T) {
	recs := fixtureRecords(500)
	if !bytes.Equal(encode(t, recs), encode(t, recs)) {
		t.Fatal("two encodes of the same records differ")
	}
}

func TestSniff(t *testing.T) {
	data := encode(t, fixtureRecords(2))
	if !Sniff(data) {
		t.Error("Sniff rejected a colfmt file")
	}
	for _, bad := range []string{"", "ASTRACOL", "ASTRACOL\x02", "2019-05-20T13:04:55Z astra-r03c11n2 kernel: ..."} {
		if Sniff([]byte(bad)) {
			t.Errorf("Sniff accepted %q", bad)
		}
	}
}

// TestCorruptionDetected flips every byte of an encoded file, one at a
// time, and requires Decode to fail each time: between the magic, the
// per-block CRCs and the column-coverage accounting there is no byte
// whose silent mutation is acceptable.
func TestCorruptionDetected(t *testing.T) {
	data := encode(t, fixtureRecords(64))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := Decode(mut); err == nil {
			t.Errorf("flip at byte %d/%d decoded without error", i, len(data))
		}
	}
}

// TestTruncationDetected requires every proper prefix to fail to decode.
func TestTruncationDetected(t *testing.T) {
	data := encode(t, fixtureRecords(64))
	for i := 0; i < len(data); i += 13 {
		if _, err := Decode(data[:i]); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", i, len(data))
		}
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing garbage decoded without error")
	}
}

// TestGarbageInput throws structured-looking garbage at the decoder; the
// only contract is error-not-panic and no unbounded allocation.
func TestGarbageInput(t *testing.T) {
	inputs := []string{
		Magic,
		Magic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff",
		Magic + "\x01\x00\x00" + "\x01\x00",
		Magic + "\x00\x00\x00",       // counts but no end marker
		Magic + "\x00\x00\x00\x05",   // unknown kind
		strings.Repeat("\x99", 4096), // not even magic
		Magic + "\x02\x00\x00\x00",   // 2 CEs, immediate end: columns uncovered
	}
	for _, in := range inputs {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("garbage %q decoded without error", in)
		}
	}
}

// TestReadWriter covers the io.Reader path used by the sniffing readers.
func TestReadWriter(t *testing.T) {
	recs := fixtureRecords(200)
	data := encode(t, recs)
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("Read round trip diverged")
	}
}

// FuzzDecode asserts the decoder's hostile-input contract: arbitrary
// bytes never panic, and anything that decodes re-encodes decodably.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, fixtureRecords(8)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(Magic + "\x00\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Decode(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatalf("re-encode of decoded records failed: %v", err)
		}
		if _, err := Decode(buf.Bytes()); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
