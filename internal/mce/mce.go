// Package mce models the machine-check / error-reporting path between the
// memory controller and the operating system: it turns raw fault-model
// events into the correctable-error records the kernel sees, including the
// two platform quirks the paper documents:
//
//   - the row field of a CE record carries no usable row information
//     (§3.2: "the system does not provide proper row information in the
//     correctable error record"), modeled as a firmware-wide opaque
//     scramble of the row — stable (the same row always reports the same
//     junk, on every node), so physical addresses remain usable
//     identifiers (Fig 8b), but semantically meaningless, so single-row
//     analysis is impossible;
//   - the bit-position field encodes vendor-specific data alongside the
//     failed bit (footnote 1: "seemed to encode additional data ... the
//     encoding was consistent"), modeled as consistent high bits ORed onto
//     the position.
//
// DUE records flow through a separate machine-check path that, unlike the
// CE path, is never subject to logging-space loss (§2.3).
package mce

import (
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/faultmodel"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// CERecord is a correctable-error record as delivered to the OS, with the
// field set the paper's open-data release documents (§2.4): timestamp,
// node, socket, failure type, DIMM slot, row, rank, bank, bit position,
// physical address and vendor syndrome.
type CERecord struct {
	// Time is the event timestamp (second resolution).
	Time time.Time
	// Node is the reporting node.
	Node topology.NodeID
	// Socket is the CPU socket (0 or 1).
	Socket int
	// Slot is the DIMM slot.
	Slot topology.Slot
	// Rank is the DIMM rank.
	Rank int
	// Bank is the DRAM bank.
	Bank int
	// RowRaw is the scrambled, semantically useless row field.
	RowRaw int
	// Col is the word column within the row.
	Col int
	// BitPos is the vendor-encoded bit position: the low 10 bits are the
	// position of the failed bit within the cache line (data positions
	// 0..511 plus per-word check-bit positions up to 575); higher bits
	// are consistent vendor data.
	BitPos int
	// Addr is the reported node-local physical address, with the row bits
	// replaced by the same firmware-wide scramble as RowRaw (stable: the
	// same cell always reports the same address).
	Addr topology.PhysAddr
	// Syndrome is the SEC-DED syndrome of the corrected error.
	Syndrome uint8
}

// LineBit extracts the failed cache-line bit position from the
// vendor-encoded BitPos field.
func (r CERecord) LineBit() int { return r.BitPos & 0x3ff }

// DUERecord is a detected-uncorrectable-error record from the machine-check
// path.
type DUERecord struct {
	Time  time.Time
	Node  topology.NodeID
	Addr  topology.PhysAddr
	Cause faultmodel.DUECause
	// Fatal reports whether the machine check was fatal to the node
	// (logged to the serial console rather than syslog, §2.3).
	Fatal bool
}

// Encoder converts fault-model events into OS-visible records,
// deterministically for a given seed.
type Encoder struct {
	seed uint64
}

// NewEncoder returns an encoder whose scrambles and vendor encodings are
// derived from seed.
func NewEncoder(seed uint64) *Encoder {
	return &Encoder{seed: simrand.Hash64(seed, simrand.HashString("mce"))}
}

// scrambleRow maps a row to the opaque value the platform reports in its
// place. The scramble is firmware-wide — the same row yields the same junk
// on every node (the footnote-1 "the encoding was consistent" property) —
// so addresses remain stable identifiers, including across nodes.
func (e *Encoder) scrambleRow(row int) int {
	return int(simrand.Hash64(e.seed, 0x10, uint64(row)) & (topology.RowsPerBank - 1))
}

// vendorBits returns the consistent vendor data encoded above the bit
// position, a function of the node and DIMM only.
func (e *Encoder) vendorBits(node topology.NodeID, slot topology.Slot) int {
	return int(simrand.Hash64(e.seed, 0x11, uint64(node), uint64(slot)) & 0x7f)
}

// second assigns a stable within-minute second offset to an event.
func (e *Encoder) second(node topology.NodeID, m simtime.Minute, addr topology.PhysAddr, i int) int {
	return int(simrand.Hash64(e.seed, 0x12, uint64(node), uint64(m), uint64(addr), uint64(i)) % 60)
}

// EncodeCE converts a fault-model CE event into the record the OS sees.
// The index i distinguishes repeated errors at the same coordinates within
// one minute (it only perturbs the second-of-minute). An event with an
// invalid address is an error, not a panic.
func (e *Encoder) EncodeCE(ev faultmodel.CEEvent, i int) (CERecord, error) {
	cell, err := ev.Cell()
	if err != nil {
		return CERecord{}, fmt.Errorf("mce: encode CE: %w", err)
	}
	scrambled := e.scrambleRow(cell.Row)
	reported := cell
	reported.Row = scrambled
	syndrome := ecc.Syndrome(ecc.FlipBit(ecc.Encode(0), int(ev.Bit)))
	return CERecord{
		Time:     ev.Minute.Time().Add(time.Duration(e.second(ev.Node, ev.Minute, ev.Addr, i)) * time.Second),
		Node:     ev.Node,
		Socket:   cell.Slot.Socket(),
		Slot:     cell.Slot,
		Rank:     cell.Rank,
		Bank:     cell.Bank,
		RowRaw:   scrambled,
		Col:      cell.Col,
		BitPos:   topology.LineBitPosition(cell.Col, int(ev.Bit)) | e.vendorBits(ev.Node, cell.Slot)<<10,
		Addr:     topology.EncodePhysAddr(reported, 0),
		Syndrome: syndrome,
	}, nil
}

// EncodeDUE converts a fault-model DUE event into a machine-check record.
// Machine-check-exception DUEs are fatal; patrol-scrub ECC detections are
// not. An event with an invalid address is an error, not a panic.
func (e *Encoder) EncodeDUE(ev faultmodel.DUEEvent) (DUERecord, error) {
	cell, _, err := topology.DecodePhysAddr(ev.Node, ev.Addr)
	if err != nil {
		return DUERecord{}, fmt.Errorf("mce: DUE with invalid address: %w", err)
	}
	reported := cell
	reported.Row = e.scrambleRow(cell.Row)
	return DUERecord{
		Time:  ev.Minute.Time().Add(time.Duration(e.second(ev.Node, ev.Minute, ev.Addr, 0)) * time.Second),
		Node:  ev.Node,
		Addr:  topology.EncodePhysAddr(reported, 0),
		Cause: ev.Cause,
		Fatal: ev.Cause == faultmodel.CauseMachineCheck,
	}, nil
}

// ValidateRecord cross-checks the internal consistency of a CE record the
// way a defensive ETL should: the socket must match the slot's socket, the
// syndrome must correspond to a real single-bit flip, the line-bit position
// must agree with the syndrome's bit and the address's word offset, and
// the address's non-row coordinates must match the record's fields.
func ValidateRecord(r CERecord) error {
	if r.Socket != r.Slot.Socket() {
		return fmt.Errorf("mce: socket %d inconsistent with slot %s", r.Socket, r.Slot)
	}
	cell, _, err := topology.DecodePhysAddr(r.Node, r.Addr)
	if err != nil {
		return fmt.Errorf("mce: bad address: %w", err)
	}
	if cell.Slot != r.Slot || cell.Rank != r.Rank || cell.Bank != r.Bank || cell.Col != r.Col {
		return fmt.Errorf("mce: address coordinates %v disagree with record fields", cell)
	}
	bit := ecc.BitForSyndrome(r.Syndrome)
	if bit < 0 {
		return fmt.Errorf("mce: syndrome %#02x matches no single-bit error", r.Syndrome)
	}
	if want := topology.LineBitPosition(r.Col, bit); r.LineBit() != want {
		return fmt.Errorf("mce: line bit %d disagrees with syndrome bit (want %d)", r.LineBit(), want)
	}
	return nil
}

// VerifyCEClassification cross-checks that a CE event's bit flip really is
// correctable under the SEC-DED code and that a DUE event's multi-bit flip
// really is uncorrectable; the generator and the codec must agree. Used by
// integration tests and the dataset self-check.
func VerifyCEClassification(ce faultmodel.CEEvent) error {
	w := ecc.FlipBit(ecc.Encode(0), int(ce.Bit))
	if _, res, _, _ := ecc.Decode(w); res != ecc.Corrected {
		return fmt.Errorf("mce: CE bit %d decoded as %v", ce.Bit, res)
	}
	return nil
}

// VerifyDUEClassification checks that the DUE's flipped bits defeat
// SEC-DED correction.
func VerifyDUEClassification(due faultmodel.DUEEvent) error {
	w := ecc.Encode(0)
	for _, b := range due.Bits {
		w = ecc.FlipBit(w, int(b))
	}
	if _, res, _, _ := ecc.Decode(w); res != ecc.Uncorrectable {
		return fmt.Errorf("mce: DUE bits %v decoded as %v", due.Bits, res)
	}
	return nil
}
