package mce

import (
	"repro/internal/faultmodel"
)

// mustEncodeCE and mustEncodeDUE adapt the error-returning encoders for
// test sites where an encode failure is simply a test bug.
func mustEncodeCE(enc *Encoder, ev faultmodel.CEEvent, i int) CERecord {
	rec, err := enc.EncodeCE(ev, i)
	if err != nil {
		panic(err)
	}
	return rec
}

func mustEncodeDUE(enc *Encoder, ev faultmodel.DUEEvent) DUERecord {
	rec, err := enc.EncodeDUE(ev)
	if err != nil {
		panic(err)
	}
	return rec
}
