package mce

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/topology"
)

func TestValidateRecordAcceptsEncoderOutput(t *testing.T) {
	enc := NewEncoder(5)
	r := mustEncodeCE(enc, sampleEvent(), 0)
	if err := ValidateRecord(r); err != nil {
		t.Fatalf("encoder output rejected: %v", err)
	}
}

func TestValidateRecordRejectsCorruption(t *testing.T) {
	enc := NewEncoder(5)
	good := mustEncodeCE(enc, sampleEvent(), 0)

	corruptions := map[string]func(*CERecord){
		"socket-flip":    func(r *CERecord) { r.Socket = 1 - r.Socket },
		"slot-moved":     func(r *CERecord) { r.Slot = (r.Slot + 1) % topology.SlotsPerNode; r.Socket = r.Slot.Socket() },
		"bank-moved":     func(r *CERecord) { r.Bank = (r.Bank + 1) % topology.BanksPerRank },
		"col-moved":      func(r *CERecord) { r.Col = (r.Col + 1) % topology.ColsPerRow },
		"addr-garbage":   func(r *CERecord) { r.Addr = topology.PhysAddr(topology.NodeMemBytes) },
		"zero-syndrome":  func(r *CERecord) { r.Syndrome = 0 },
		"even-syndrome":  func(r *CERecord) { r.Syndrome = 0x03 },
		"bitpos-garbage": func(r *CERecord) { r.BitPos ^= 0x1ff },
	}
	for name, corrupt := range corruptions {
		r := good
		corrupt(&r)
		if err := ValidateRecord(r); err == nil {
			t.Errorf("%s: corrupt record accepted", name)
		}
	}
}

func TestBitForSyndromeRoundTrip(t *testing.T) {
	for bit := 0; bit < ecc.CodeBits; bit++ {
		s := ecc.Syndrome(ecc.FlipBit(ecc.Encode(0), bit))
		if got := ecc.BitForSyndrome(s); got != bit {
			t.Fatalf("BitForSyndrome(%#02x) = %d, want %d", s, got, bit)
		}
	}
	if ecc.BitForSyndrome(0) != -1 {
		t.Error("zero syndrome should map to no bit")
	}
}
