package mce

import (
	"context"
	"testing"

	"repro/internal/faultmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func sampleEvent() faultmodel.CEEvent {
	cell := topology.CellAddr{Node: 100, Slot: 9, Rank: 1, Bank: 5, Row: 1234, Col: 77}
	return faultmodel.CEEvent{
		Minute:  simtime.MinuteOf(simtime.StudyStart) + 500,
		Node:    100,
		Addr:    topology.EncodePhysAddr(cell, 0),
		Bit:     33,
		FaultID: 7,
	}
}

func TestEncodeCEFields(t *testing.T) {
	enc := NewEncoder(1)
	r := mustEncodeCE(enc, sampleEvent(), 0)
	if r.Node != 100 || r.Slot != 9 || r.Socket != 1 || r.Rank != 1 || r.Bank != 5 || r.Col != 77 {
		t.Errorf("coordinate fields wrong: %+v", r)
	}
	if r.LineBit() != topology.LineBitPosition(77, 33) {
		t.Errorf("LineBit = %d", r.LineBit())
	}
	if r.Syndrome == 0 {
		t.Error("syndrome should be nonzero for a flipped bit")
	}
	if r.Time.Before(simtime.StudyStart) {
		t.Errorf("time %v before study start", r.Time)
	}
	sec := r.Time.Second()
	if sec < 0 || sec > 59 {
		t.Errorf("second %d", sec)
	}
}

func TestRowScrambleHidesRowButIsStable(t *testing.T) {
	enc := NewEncoder(1)
	ev := sampleEvent()
	r1 := mustEncodeCE(enc, ev, 0)
	r2 := mustEncodeCE(enc, ev, 1)
	// Stable: same (node, row) yields the same scramble and address.
	if r1.RowRaw != r2.RowRaw || r1.Addr != r2.Addr {
		t.Error("row scramble not stable across repeated errors")
	}
	// Hides: the reported row differs from the true row for almost any
	// row; check a few.
	hits := 0
	for row := 0; row < 64; row++ {
		cell := topology.CellAddr{Node: 100, Slot: 9, Rank: 1, Bank: 5, Row: row, Col: 77}
		ev := sampleEvent()
		ev.Addr = topology.EncodePhysAddr(cell, 0)
		if mustEncodeCE(enc, ev, 0).RowRaw == row {
			hits++
		}
	}
	if hits > 3 {
		t.Errorf("scramble leaked the true row %d/64 times", hits)
	}
	// The non-row coordinates of the reported address stay correct.
	got, _, err := topology.DecodePhysAddr(100, r1.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slot != 9 || got.Rank != 1 || got.Bank != 5 || got.Col != 77 {
		t.Errorf("reported address corrupted non-row fields: %+v", got)
	}
}

func TestVendorBitsConsistent(t *testing.T) {
	enc := NewEncoder(1)
	ev := sampleEvent()
	r1 := mustEncodeCE(enc, ev, 0)
	ev2 := ev
	ev2.Minute += 10000
	r2 := mustEncodeCE(enc, ev2, 3)
	if r1.BitPos>>9 != r2.BitPos>>9 {
		t.Error("vendor bits not consistent for same (node, slot)")
	}
	if r1.BitPos>>9 == 0 {
		t.Log("note: vendor bits zero for this (node, slot); acceptable")
	}
	// Different DIMM gets (almost surely) different vendor bits somewhere;
	// scan a few slots to confirm the encoding actually varies.
	varies := false
	base := r1.BitPos >> 9
	for s := topology.Slot(0); s < topology.SlotsPerNode; s++ {
		cell := topology.CellAddr{Node: 100, Slot: s, Rank: 0, Bank: 0, Row: 0, Col: 0}
		ev := sampleEvent()
		ev.Addr = topology.EncodePhysAddr(cell, 0)
		if mustEncodeCE(enc, ev, 0).BitPos>>9 != base {
			varies = true
		}
	}
	if !varies {
		t.Error("vendor bits identical across all slots")
	}
}

func TestEncoderDeterministicAcrossInstances(t *testing.T) {
	a := NewEncoder(9)
	b := NewEncoder(9)
	if mustEncodeCE(a, sampleEvent(), 0) != mustEncodeCE(b, sampleEvent(), 0) {
		t.Error("same-seed encoders disagree")
	}
	c := NewEncoder(10)
	if mustEncodeCE(a, sampleEvent(), 0).RowRaw == mustEncodeCE(c, sampleEvent(), 0).RowRaw {
		t.Log("note: row scramble collision across seeds (possible but unlikely)")
	}
}

func TestEncodeDUE(t *testing.T) {
	enc := NewEncoder(1)
	cell := topology.CellAddr{Node: 5, Slot: 2, Rank: 0, Bank: 3, Row: 99, Col: 11}
	due := faultmodel.DUEEvent{
		Minute: simtime.MinuteOf(simtime.HETStart) + 100,
		Node:   5,
		Addr:   topology.EncodePhysAddr(cell, 0),
		Bits:   []uint8{3, 40},
		Cause:  faultmodel.CauseMachineCheck,
	}
	r := mustEncodeDUE(enc, due)
	if r.Node != 5 || r.Cause != faultmodel.CauseMachineCheck || !r.Fatal {
		t.Errorf("DUE record wrong: %+v", r)
	}
	due.Cause = faultmodel.CauseUncorrectableECC
	if mustEncodeDUE(enc, due).Fatal {
		t.Error("patrol-scrub DUE should not be fatal")
	}
}

func TestVerifyClassifications(t *testing.T) {
	if err := VerifyCEClassification(sampleEvent()); err != nil {
		t.Errorf("valid CE rejected: %v", err)
	}
	due := faultmodel.DUEEvent{Bits: []uint8{3, 40}}
	if err := VerifyDUEClassification(due); err != nil {
		t.Errorf("valid DUE rejected: %v", err)
	}
	// A single-bit "DUE" must be rejected: it would have been corrected.
	bad := faultmodel.DUEEvent{Bits: []uint8{3}}
	if err := VerifyDUEClassification(bad); err == nil {
		t.Error("single-bit DUE accepted")
	}
}

func TestGeneratedPopulationClassifiesCleanly(t *testing.T) {
	cfg := faultmodel.DefaultConfig(3)
	cfg.Nodes = 150
	pop, err := faultmodel.Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ce := range pop.CEs {
		if i > 5000 {
			break
		}
		if err := VerifyCEClassification(ce); err != nil {
			t.Fatal(err)
		}
	}
	for _, due := range pop.DUEs {
		if err := VerifyDUEClassification(due); err != nil {
			t.Fatal(err)
		}
	}
}
