package scrub

import (
	"testing"
	"testing/quick"

	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func validAddr(a32 uint32) topology.PhysAddr {
	return topology.PhysAddr(uint64(a32) % topology.NodeMemBytes)
}

func TestNextScrubNeverBeforeAfter(t *testing.T) {
	s := NewScrubber(DefaultPeriod, 1)
	f := func(node16 uint16, a32 uint32, after32 uint32) bool {
		node := topology.NodeID(int(node16) % topology.Nodes)
		addr := validAddr(a32)
		after := simtime.Minute(after32 % 400000)
		got := s.NextScrub(node, addr, after)
		return got >= after && got < after+s.Period()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNextScrubPeriodicity(t *testing.T) {
	s := NewScrubber(1440, 2)
	node := topology.NodeID(7)
	addr := validAddr(123456789)
	first := s.NextScrub(node, addr, 0)
	second := s.NextScrub(node, addr, first+1)
	if second-first != s.Period() {
		t.Errorf("consecutive scrubs %d apart, want %d", second-first, s.Period())
	}
	// Asking at exactly the scrub time returns that time.
	if again := s.NextScrub(node, addr, first); again != first {
		t.Errorf("NextScrub at scrub time = %d, want %d", again, first)
	}
}

func TestScrubOrderFollowsAddress(t *testing.T) {
	// Within one sweep, higher addresses are scrubbed later.
	s := NewScrubber(1440, 3)
	node := topology.NodeID(0)
	base := s.phase(node)
	lo := s.NextScrub(node, 0, base)
	hi := s.NextScrub(node, topology.PhysAddr(topology.NodeMemBytes-8), base)
	if hi <= lo {
		t.Errorf("high address scrubbed (%d) before low (%d)", hi, lo)
	}
}

func TestNodesDesynchronized(t *testing.T) {
	s := NewScrubber(1440, 4)
	phases := map[simtime.Minute]int{}
	for n := 0; n < 50; n++ {
		phases[s.phase(topology.NodeID(n))]++
	}
	if len(phases) < 25 {
		t.Errorf("only %d distinct phases across 50 nodes", len(phases))
	}
}

func TestDetectionBoundedByScrub(t *testing.T) {
	s := NewScrubber(1440, 5)
	d := NewDetector(s, 0.001)
	rng := simrand.NewStream(6)
	for i := 0; i < 2000; i++ {
		node := topology.NodeID(rng.IntN(topology.Nodes))
		addr := validAddr(uint32(rng.Uint64()))
		active := simtime.Minute(rng.Int64N(300000))
		det := d.DetectionTime(rng, node, addr, active)
		if det < active {
			t.Fatal("detection before activation")
		}
		if det > s.NextScrub(node, addr, active) {
			t.Fatal("detection after the guaranteed scrub visit")
		}
	}
}

func TestColdMemoryDetectedOnlyByScrub(t *testing.T) {
	s := NewScrubber(1440, 7)
	d := NewDetector(s, 0)
	rng := simrand.NewStream(8)
	node := topology.NodeID(3)
	addr := validAddr(99999)
	active := simtime.Minute(5000)
	if det := d.DetectionTime(rng, node, addr, active); det != s.NextScrub(node, addr, active) {
		t.Errorf("cold detection %d != scrub visit %d", det, s.NextScrub(node, addr, active))
	}
}

func TestMeanLatencyDecreasesWithShorterPeriod(t *testing.T) {
	latency := func(period simtime.Minute) float64 {
		d := NewDetector(NewScrubber(period, 9), 0)
		return d.MeanLatency(simrand.NewStream(10), 100, 4000)
	}
	day := latency(simtime.MinutesPerDay)
	week := latency(simtime.MinutesPerWeek)
	if day >= week {
		t.Errorf("daily scrub latency %v >= weekly %v", day, week)
	}
	// Cold memory with uniform activation: mean latency ~ period/2.
	if day < float64(simtime.MinutesPerDay)/4 || day > float64(simtime.MinutesPerDay)*3/4 {
		t.Errorf("daily mean latency = %v, want ~%v", day, simtime.MinutesPerDay/2)
	}
}

func TestHotMemoryDetectedFast(t *testing.T) {
	// With a high demand rate, detection is demand-dominated.
	d := NewDetector(NewScrubber(simtime.MinutesPerWeek, 11), 0.1)
	mean := d.MeanLatency(simrand.NewStream(12), 100, 4000)
	if mean > 60 {
		t.Errorf("hot-memory mean latency %v minutes, want ~10", mean)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-period":   func() { NewScrubber(0, 1) },
		"negative-rate": func() { NewDetector(NewScrubber(1440, 1), -1) },
		"invalid-addr": func() {
			NewScrubber(1440, 1).NextScrub(0, topology.PhysAddr(topology.NodeMemBytes), 0)
		},
		"bad-latency-args": func() {
			NewDetector(NewScrubber(1440, 1), 0).MeanLatency(simrand.NewStream(1), 0, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
