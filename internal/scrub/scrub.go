// Package scrub models the memory controller's patrol scrubber and the
// resulting fault-detection latency. A DRAM fault is dormant until
// something reads the affected word (§2.1: faults can be active or
// dormant); detection happens either on a demand access — at a rate set by
// how hot the page is — or when the patrol scrubber's linear sweep reaches
// the address. The scrub period therefore bounds the worst-case latency
// between a fault becoming active and its first correctable error, which
// in turn bounds how stale the paper's fault-activity windows (Fault.First
// in the clustering) can be.
//
// The package is used by the detection-latency ablation bench and the
// fleet-monitor example; the headline fault model folds detection latency
// into its empirical error-time distributions.
package scrub

import (
	"fmt"
	"math"

	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Scrubber is a per-node patrol scrubber sweeping the node's physical
// memory linearly with a fixed period. Nodes start their sweeps at
// deterministic per-node offsets (real controllers free-run, so sweeps are
// not fleet-synchronized).
type Scrubber struct {
	period simtime.Minute
	seed   uint64
}

// DefaultPeriod is a typical patrol-scrub full-pass period (24 h).
const DefaultPeriod = simtime.Minute(simtime.MinutesPerDay)

// NewScrubber builds a scrubber with the given full-pass period. It panics
// if period < 1 (programmer error).
func NewScrubber(period simtime.Minute, seed uint64) *Scrubber {
	if period < 1 {
		panic(fmt.Sprintf("scrub: invalid period %d", period))
	}
	return &Scrubber{period: period, seed: simrand.Hash64(seed, simrand.HashString("scrub"))}
}

// Period returns the full-pass period.
func (s *Scrubber) Period() simtime.Minute { return s.period }

// phase returns the node's sweep offset in [0, period).
func (s *Scrubber) phase(node topology.NodeID) simtime.Minute {
	return simtime.Minute(simrand.Hash64(s.seed, uint64(node)) % uint64(s.period))
}

// addrFrac is the address's position in the sweep, in [0, 1).
func addrFrac(addr topology.PhysAddr) float64 {
	return float64(addr) / float64(topology.NodeMemBytes)
}

// NextScrub returns the first minute >= after at which the scrubber reads
// the given address on the given node.
func (s *Scrubber) NextScrub(node topology.NodeID, addr topology.PhysAddr, after simtime.Minute) simtime.Minute {
	if !addr.Valid() {
		panic(fmt.Sprintf("scrub: invalid address %#x", uint64(addr)))
	}
	p := float64(s.period)
	// The address is visited at t = phase + (k + frac)*period.
	offset := float64(s.phase(node)) + addrFrac(addr)*p
	k := math.Ceil((float64(after) - offset) / p)
	t := offset + k*p
	if t < float64(after) { // guard float rounding
		t += p
	}
	return simtime.Minute(t)
}

// Detector combines patrol scrub with demand accesses to produce
// fault-detection times.
type Detector struct {
	scrubber *Scrubber
	// demandRate is the per-minute probability-rate that a demand access
	// touches the faulty word; 0 models cold (never-accessed) memory so
	// only the scrubber finds the fault.
	demandRate float64
}

// NewDetector builds a detector. demandRate must be >= 0.
func NewDetector(s *Scrubber, demandRate float64) *Detector {
	if demandRate < 0 {
		panic("scrub: negative demand rate")
	}
	return &Detector{scrubber: s, demandRate: demandRate}
}

// DetectionTime returns when a fault that became active at the given
// minute is first detected: the earlier of an exponential demand-access
// hit (sampled from rng) and the next patrol-scrub visit.
func (d *Detector) DetectionTime(rng *simrand.Stream, node topology.NodeID, addr topology.PhysAddr, active simtime.Minute) simtime.Minute {
	scrubAt := d.scrubber.NextScrub(node, addr, active)
	if d.demandRate == 0 {
		return scrubAt
	}
	demandAt := active + simtime.Minute(math.Ceil(rng.Exp(d.demandRate)))
	if demandAt < scrubAt {
		return demandAt
	}
	return scrubAt
}

// MeanLatency estimates the mean detection latency (minutes) over n
// sampled faults at uniformly random addresses and activation times —
// the quantity the scrub-period ablation sweeps.
func (d *Detector) MeanLatency(rng *simrand.Stream, nodes, n int) float64 {
	if n <= 0 || nodes <= 0 {
		panic("scrub: MeanLatency requires positive counts")
	}
	start := simtime.MinuteOf(simtime.StudyStart)
	span := int64(simtime.MinuteOf(simtime.StudyEnd) - start)
	total := 0.0
	for i := 0; i < n; i++ {
		node := topology.NodeID(rng.IntN(nodes))
		cell := topology.CellAddr{
			Node: node,
			Slot: topology.Slot(rng.IntN(topology.SlotsPerNode)),
			Rank: rng.IntN(topology.RanksPerDIMM),
			Bank: rng.IntN(topology.BanksPerRank),
			Row:  rng.IntN(topology.RowsPerBank),
			Col:  rng.IntN(topology.ColsPerRow),
		}
		addr := topology.EncodePhysAddr(cell, 0)
		active := start + simtime.Minute(rng.Int64N(span))
		total += float64(d.DetectionTime(rng, node, addr, active) - active)
	}
	return total / float64(n)
}
