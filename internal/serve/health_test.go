package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/topology"
)

// healthRig serves two sites, one with a mutable health hook, the other
// permanently running.
type healthRig struct {
	mu sync.Mutex
	h  serve.SiteHealth
	ts *httptest.Server
}

func (r *healthRig) set(h serve.SiteHealth) {
	r.mu.Lock()
	r.h = h
	r.mu.Unlock()
}

func newHealthRig(t *testing.T) *healthRig {
	t.Helper()
	ds := fixture(t)
	mk := func() *stream.Engine {
		e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
		e.IngestBatch(ds.CERecords)
		return e
	}
	rig := &healthRig{h: serve.SiteHealth{State: serve.SiteRunning}}
	s := serve.New(serve.Config{Sites: []serve.Site{
		{ID: "alpha", Source: mk(), Health: func() serve.SiteHealth {
			rig.mu.Lock()
			defer rig.mu.Unlock()
			return rig.h
		}},
		{ID: "beta", Source: mk(), Health: func() serve.SiteHealth {
			return serve.SiteHealth{State: serve.SiteRunning}
		}},
	}})
	rig.ts = httptest.NewServer(s.Handler())
	t.Cleanup(rig.ts.Close)
	return rig
}

// TestSiteQuarantine503 pins the isolation contract on the read path: a
// site that is not running answers 503 with the supervision detail on
// every scoped endpoint, while the sibling site and the fleet rollup
// keep serving 200s.
func TestSiteQuarantine503(t *testing.T) {
	rig := newHealthRig(t)

	// Healthy: everything serves.
	get(t, rig.ts.URL+"/v1/sites/alpha/faults", http.StatusOK, nil)
	get(t, rig.ts.URL+"/v1/sites/beta/faults", http.StatusOK, nil)

	rig.set(serve.SiteHealth{
		State:          "quarantined",
		Restarts:       5,
		LastError:      "open syslog: no such file or directory",
		RetryInSeconds: 0,
	})

	for _, path := range []string{
		"/v1/sites/alpha/faults",
		"/v1/sites/alpha/breakdown",
		"/v1/sites/alpha/fit",
		"/v1/sites/alpha/nodes/nid00001",
	} {
		resp, err := http.Get(rig.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s = %d, want 503: %s", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("GET %s: no Retry-After header", path)
		}
		var down struct {
			Error  string           `json:"error"`
			Site   string           `json:"site"`
			Health serve.SiteHealth `json:"health"`
		}
		if err := json.Unmarshal(body, &down); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
		if down.Site != "alpha" || down.Health.State != "quarantined" ||
			down.Health.Restarts != 5 || !strings.Contains(down.Health.LastError, "no such file") {
			t.Fatalf("GET %s: detail = %+v", path, down)
		}
	}

	// The healthy sibling, the rollup endpoints, and the inventory are
	// untouched by alpha's quarantine.
	get(t, rig.ts.URL+"/v1/sites/beta/faults", http.StatusOK, nil)
	get(t, rig.ts.URL+"/v1/faults", http.StatusOK, nil)
	var sites struct {
		Sites []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"sites"`
	}
	get(t, rig.ts.URL+"/v1/sites", http.StatusOK, &sites)
	if len(sites.Sites) != 2 || sites.Sites[0].State != "quarantined" || sites.Sites[1].State != "running" {
		t.Fatalf("/v1/sites = %+v", sites)
	}
}

// TestHealthzSiteLadder pins the /healthz ladder: per-site supervision
// entries, and degraded status exactly while any site is not running.
func TestHealthzSiteLadder(t *testing.T) {
	rig := newHealthRig(t)
	type health struct {
		Status string `json:"status"`
		Sites  []struct {
			ID    string `json:"id"`
			State string `json:"state"`
			serve.SiteHealth
		} `json:"sites"`
	}

	var h health
	get(t, rig.ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" || len(h.Sites) != 2 {
		t.Fatalf("healthy healthz = %+v", h)
	}

	rig.set(serve.SiteHealth{State: "backoff", Restarts: 2, LastError: "scan: boom", RetryInSeconds: 1.5})
	h = health{}
	get(t, rig.ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "degraded" {
		t.Fatalf("status = %q, want degraded while alpha backs off", h.Status)
	}
	if h.Sites[0].ID != "alpha" || h.Sites[0].State != "backoff" || h.Sites[1].State != "running" {
		t.Fatalf("ladder = %+v", h.Sites)
	}

	rig.set(serve.SiteHealth{State: serve.SiteRunning})
	h = health{}
	get(t, rig.ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("status = %q after recovery, want ok", h.Status)
	}
}

// TestSiteStateMetrics pins the supervision metric families.
func TestSiteStateMetrics(t *testing.T) {
	rig := newHealthRig(t)
	rig.set(serve.SiteHealth{State: "quarantined", Restarts: 3})
	resp, err := http.Get(rig.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`astrad_site_state{site="alpha"} 2`,
		`astrad_site_state{site="beta"} 0`,
		`astrad_site_restarts_total{site="alpha"} 3`,
		`astrad_site_restarts_total{site="beta"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
