package serve

import (
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_requests_total", `path="/a"`, "Requests.")
	c2 := r.NewCounter("demo_requests_total", `path="/b"`, "Requests.")
	g := r.NewGauge("demo_temp", "", "Temperature.")
	r.NewGaugeFunc("demo_live", "", "Live value.", func() float64 { return 4.5 })
	r.NewCounterFunc("demo_ext_total", "", "External total.", func() float64 { return 9 })
	h := r.NewHistogram("demo_latency_seconds", "", "Latency.", []float64{0.1, 1})

	c.Inc()
	c.Add(2)
	c2.Inc()
	g.Set(-3.25)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	got := render(t, r)
	for _, want := range []string{
		"# HELP demo_requests_total Requests.\n# TYPE demo_requests_total counter\n",
		"demo_requests_total{path=\"/a\"} 3\n",
		"demo_requests_total{path=\"/b\"} 1\n",
		"demo_temp -3.25\n",
		"demo_live 4.5\n",
		"demo_ext_total 9\n",
		"demo_latency_seconds_bucket{le=\"0.1\"} 1\n",
		"demo_latency_seconds_bucket{le=\"1\"} 2\n",
		"demo_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"demo_latency_seconds_sum 5.55\n",
		"demo_latency_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	// A family's HELP/TYPE header appears once even with several series.
	if n := strings.Count(got, "# TYPE demo_requests_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
	// An unchanged registry scrapes byte-identically.
	if again := render(t, r); again != got {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("demo_total", "", "A counter.")
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.NewGauge("demo_total", "", "Now a gauge.")
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("demo_seconds", "", "x", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	got := render(t, r)
	if !strings.Contains(got, "demo_seconds_bucket{le=\"1\"} 1\n") {
		t.Fatalf("boundary observation not in inclusive bucket:\n%s", got)
	}
}
