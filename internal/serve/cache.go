package serve

import "sync"

// respCache is the snapshot-keyed response cache: a rendered 200 body is
// valid exactly as long as the view epoch (fan-in seq) it was rendered
// at, so a herd of dashboard clients costs one render per epoch, not one
// per request. Entries remember their epoch; a lookup at any other epoch
// misses and the stale entry is overwritten by the re-render. The map is
// capped — when a flood of distinct query strings fills it, it is reset
// wholesale rather than grown (the next epoch would orphan every entry
// anyway).
type respCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]cacheEntry
}

type cacheEntry struct {
	epoch uint64
	body  []byte
	code  int
}

// defaultCacheEntries bounds the response cache: enough for every
// endpoint × a healthy population of query variants, small enough that
// a querystring flood cannot balloon the heap.
const defaultCacheEntries = 1024

func newRespCache(max int) *respCache {
	if max <= 0 {
		max = defaultCacheEntries
	}
	return &respCache{max: max, entries: make(map[string]cacheEntry)}
}

// get returns the cached body for key if it was rendered at epoch.
func (c *respCache) get(key string, epoch uint64) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.epoch != epoch {
		return cacheEntry{}, false
	}
	return e, true
}

// put stores a rendered body for key at epoch. The body must not be
// mutated after handoff (it is served to concurrent readers verbatim).
func (c *respCache) put(key string, epoch uint64, code int, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.max {
		c.entries = make(map[string]cacheEntry)
	}
	c.entries[key] = cacheEntry{epoch: epoch, body: body, code: code}
}

// len reports the live entry count (tests and metrics).
func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
