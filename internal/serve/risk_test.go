package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/predict"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/topology"
)

type riskEntryJSON struct {
	Node  string  `json:"node"`
	Score float64 `json:"score"`
	CEs   int     `json:"ces"`
}

type atRiskJSON struct {
	Predictor string          `json:"predictor"`
	Banks     int             `json:"banks"`
	Count     int             `json:"count"`
	AtRisk    []riskEntryJSON `json:"atRisk"`
}

func TestAtRiskEndpoint(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	resp, body := get("/v1/atrisk")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/atrisk = %d: %s", resp.StatusCode, body)
	}
	var ar atRiskJSON
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Predictor != "rule-ladder" {
		t.Fatalf("predictor = %q", ar.Predictor)
	}
	if ar.Banks == 0 || ar.Count == 0 || ar.Count != len(ar.AtRisk) {
		t.Fatalf("banks=%d count=%d len=%d", ar.Banks, ar.Count, len(ar.AtRisk))
	}
	if ar.Count > serve.DefaultAtRiskLimit {
		t.Fatalf("default limit not applied: %d entries", ar.Count)
	}
	for i := 1; i < len(ar.AtRisk); i++ {
		if ar.AtRisk[i].Score > ar.AtRisk[i-1].Score {
			t.Fatalf("ranking not descending at %d", i)
		}
	}

	resp, body = get("/v1/atrisk?limit=3")
	var ar3 atRiskJSON
	if err := json.Unmarshal(body, &ar3); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ar3.Count != 3 {
		t.Fatalf("limit=3: code=%d count=%d", resp.StatusCode, ar3.Count)
	}
	if ar3.AtRisk[0] != ar.AtRisk[0] {
		t.Fatal("top entry unstable across limits")
	}

	for _, bad := range []string{"0", "-1", "1001", "banana", "3.5", ""} {
		resp, _ := get("/v1/atrisk?limit=" + url.QueryEscape(bad))
		want := http.StatusBadRequest
		if bad == "" {
			want = http.StatusOK // empty value means default
		}
		if resp.StatusCode != want {
			t.Fatalf("limit=%q: code=%d want %d", bad, resp.StatusCode, want)
		}
	}

	// The top-ranked node's per-node risk view agrees with the ranking.
	resp, body = get("/v1/nodes/" + ar.AtRisk[0].Node + "/risk")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node risk = %d: %s", resp.StatusCode, body)
	}
	var nr struct {
		Node     string          `json:"node"`
		MaxScore float64         `json:"maxScore"`
		Banks    []riskEntryJSON `json:"banks"`
	}
	if err := json.Unmarshal(body, &nr); err != nil {
		t.Fatal(err)
	}
	if nr.Node != ar.AtRisk[0].Node || nr.MaxScore != ar.AtRisk[0].Score || len(nr.Banks) == 0 {
		t.Fatalf("node risk mismatch: %+v vs top %+v", nr, ar.AtRisk[0])
	}

	// A parseable hostname with no records: 404. The fixture covers
	// nodes 0..31, so a high rack is guaranteed silent.
	if resp, _ := get("/v1/nodes/" + topology.NodeID(topology.Nodes-1).String() + "/risk"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node risk = %d", resp.StatusCode)
	}
	if resp, _ := get("/v1/nodes/not-a-node/risk"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed node risk = %d", resp.StatusCode)
	}

	// astrad_predict_* series are exported and the bank gauge is live.
	_, body = get("/metrics")
	ms := string(body)
	for _, series := range []string{"astrad_predict_banks", "astrad_predict_atrisk", "astrad_predict_max_risk"} {
		if !strings.Contains(ms, series) {
			t.Fatalf("metrics missing %s", series)
		}
	}
}

// TestAtRiskCustomPredictor: a wired predictor replaces the default
// ladder, visible in the payload's predictor name.
func TestAtRiskCustomPredictor(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{})
	e.IngestBatch(ds.CERecords)
	// A tiny synthetic training set (heavy banks fail, light ones do
	// not) is enough to produce a valid model to wire in.
	var samples []predict.Sample
	for i := 0; i < 40; i++ {
		f := predict.Features{CEs: float64(1 + i%8)}
		if i%2 == 0 {
			f = predict.Features{CEs: 5000 + float64(i), SpanHours: 1000, ActiveDays: 40}
		}
		samples = append(samples, predict.Sample{X: f.Vector(nil), Label: i%2 == 0})
	}
	m, err := predict.TrainLogReg(samples, predict.DefaultTrainConfig(53))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{Engine: e, Predictor: m})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/atrisk?limit=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var ar atRiskJSON
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Predictor != m.Name() {
		t.Fatalf("predictor = %q want %q", ar.Predictor, m.Name())
	}
}

// FuzzRiskEndpoint hammers the risk endpoints with arbitrary limits and
// node ids; any 5xx is a bug (4xx-never-5xx, like FuzzNodePath).
func FuzzRiskEndpoint(f *testing.F) {
	ds := fixture(f)
	e := stream.New(stream.Config{})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(ts.Close)

	f.Add("20", "astra-r01c01n1")
	f.Add("0", "")
	f.Add("-5", "..")
	f.Add("99999999999999999999", "astra-r01c01n1/../../etc")
	f.Add("1e3", strings.Repeat("9", 4096))
	f.Add("%31", "astra-r\x00c01n1")
	f.Fuzz(func(t *testing.T, limit, id string) {
		for _, path := range []string{
			"/v1/atrisk?limit=" + url.QueryEscape(limit),
			"/v1/nodes/" + url.PathEscape(id) + "/risk",
		} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				continue // URL the client itself refuses to send
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				t.Fatalf("GET %s = %d", path, resp.StatusCode)
			}
		}
	})
}
