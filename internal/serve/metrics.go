// Package serve is the HTTP face of the online subsystem: JSON query
// endpoints over a stream.Engine plus a Prometheus-text /metrics
// exposition, built on the standard library only.
package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Families appear in registration order; series within
// a family in registration order too, so two scrapes of an unchanged
// registry are byte-identical.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          []sampler
}

// sampler renders one series' sample lines.
type sampler interface {
	sample(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) add(name, help, typ string, s sampler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("serve: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			s.sample(w, f.name)
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// NewCounter registers a counter series; labels is either empty or a
// rendered label set like `path="/v1/faults"`.
func (r *Registry) NewCounter(name, labels, help string) *Counter {
	c := &Counter{labels: labels}
	r.add(name, help, "counter", c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) sample(w io.Writer, name string) {
	writeSample(w, name, c.labels, float64(c.v.Load()))
}

// Gauge is a settable value.
type Gauge struct {
	bits   atomic.Uint64
	labels string
}

// NewGauge registers a gauge series.
func (r *Registry) NewGauge(name, labels, help string) *Gauge {
	g := &Gauge{labels: labels}
	r.add(name, help, "gauge", g)
	return g
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sample(w io.Writer, name string) {
	writeSample(w, name, g.labels, g.Value())
}

// funcSeries samples a callback at scrape time.
type funcSeries struct {
	labels string
	fn     func() float64
}

func (f *funcSeries) sample(w io.Writer, name string) {
	writeSample(w, name, f.labels, f.fn())
}

// NewCounterFunc registers a counter whose value is read at scrape time —
// for totals whose source of truth lives elsewhere (scanner accounting,
// engine aggregates). The callback must be monotonic for the counter type
// to be honest.
func (r *Registry) NewCounterFunc(name, labels, help string, fn func() float64) {
	r.add(name, help, "counter", &funcSeries{labels: labels, fn: fn})
}

// gaugeFunc samples a callback at scrape time.
type gaugeFunc struct {
	labels string
	fn     func() float64
}

// NewGaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) NewGaugeFunc(name, labels, help string, fn func() float64) {
	r.add(name, help, "gauge", &gaugeFunc{labels: labels, fn: fn})
}

func (g *gaugeFunc) sample(w io.Writer, name string) {
	writeSample(w, name, g.labels, g.fn())
}

// Histogram is a fixed-bucket histogram of observations.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending
	counts []uint64  // per-bucket (non-cumulative); counts[len(bounds)] is +Inf
	sum    float64
	total  uint64
	labels string
	lePre  []string // pre-rendered le labels, aligned with bounds
	leInf  string
}

// DefBuckets is a latency-oriented default bucket layout (seconds).
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// NewHistogram registers a histogram series with the given ascending
// upper bounds (nil means DefBuckets).
func (r *Registry) NewHistogram(name, labels, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("serve: histogram bounds not ascending")
	}
	h := &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
		labels: labels,
	}
	for _, b := range bounds {
		h.lePre = append(h.lePre, h.leLabel(formatFloat(b)))
	}
	h.leInf = h.leLabel("+Inf")
	r.add(name, help, "histogram", h)
	return h
}

func (h *Histogram) leLabel(le string) string {
	if h.labels == "" {
		return `le="` + le + `"`
	}
	return h.labels + `,le="` + le + `"`
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) sample(w io.Writer, name string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	var cum uint64
	for i := range h.bounds {
		cum += counts[i]
		writeSample(w, name+"_bucket", h.lePre[i], float64(cum))
	}
	writeSample(w, name+"_bucket", h.leInf, float64(total))
	writeSample(w, name+"_sum", h.labels, sum)
	writeSample(w, name+"_count", h.labels, float64(total))
}
