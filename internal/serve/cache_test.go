package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/topology"
)

// getFull performs a GET with optional If-None-Match and returns the
// response for header-level assertions.
func getFull(t *testing.T, url, inm string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestETagRoundTrip pins the caching contract: a GET carries a strong
// ETag; replaying it via If-None-Match yields 304 with no body while
// the engine is unchanged; after ingest advances the epoch, the same
// request yields a fresh 200 with a new ETag.
func TestETagRoundTrip(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords[:len(ds.CERecords)/2])
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/faults", "/v1/breakdown", "/v1/fit", "/v1/sites"} {
		resp := getFull(t, ts.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("GET %s: no ETag", path)
		}
		body1, _ := io.ReadAll(resp.Body)

		not := getFull(t, ts.URL+path, etag)
		if not.StatusCode != http.StatusNotModified {
			t.Fatalf("GET %s If-None-Match=%s = %d, want 304", path, etag, not.StatusCode)
		}
		if b, _ := io.ReadAll(not.Body); len(b) != 0 {
			t.Fatalf("304 for %s carried a body: %q", path, b)
		}
		if got := not.Header.Get("ETag"); got != etag {
			t.Fatalf("304 ETag = %s, want %s", got, etag)
		}

		// Same epoch, no If-None-Match: full body again, byte-identical
		// (served from the response cache).
		again := getFull(t, ts.URL+path, "")
		body2, _ := io.ReadAll(again.Body)
		if string(body1) != string(body2) {
			t.Fatalf("GET %s: cached body diverges from first render", path)
		}
	}

	// Advance the epoch; the old ETag must stop matching.
	etag := getFull(t, ts.URL+"/v1/breakdown", "").Header.Get("ETag")
	e.IngestBatch(ds.CERecords[len(ds.CERecords)/2:])
	resp := getFull(t, ts.URL+"/v1/breakdown", etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match = %d, want 200", resp.StatusCode)
	}
	if newTag := resp.Header.Get("ETag"); newTag == etag {
		t.Fatal("ETag did not change after ingest advanced the epoch")
	}
}

// TestETagWildcardAndList covers the remaining If-None-Match forms: a
// list containing the current tag, and the * wildcard.
func TestETagWildcardAndList(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	etag := getFull(t, ts.URL+"/v1/fit", "").Header.Get("ETag")
	if resp := getFull(t, ts.URL+"/v1/fit", `"other", `+etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("list If-None-Match = %d, want 304", resp.StatusCode)
	}
	if resp := getFull(t, ts.URL+"/v1/fit", "*"); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("wildcard If-None-Match = %d, want 304", resp.StatusCode)
	}
	if resp := getFull(t, ts.URL+"/v1/fit", `"astra-dead"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("non-matching If-None-Match = %d, want 200", resp.StatusCode)
	}
}

// TestCacheMetrics checks the hit/miss/304 accounting surfaces in
// /metrics: a cold GET is a miss, a warm one a hit, a conditional one a
// 304.
func TestCacheMetrics(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	etag := getFull(t, ts.URL+"/v1/faults", "").Header.Get("ETag") // miss
	getFull(t, ts.URL+"/v1/faults", "")                            // hit
	getFull(t, ts.URL+"/v1/faults", etag)                          // 304

	if s.Registry() == nil {
		t.Fatal("no registry")
	}
	resp := getFull(t, ts.URL+"/metrics", "")
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"astrad_cache_misses_total 1",
		"astrad_cache_hits_total 1",
		"astrad_cache_not_modified_total 1",
	} {
		if !contains(string(body), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestMultiSiteFederation serves two sites from one daemon and checks
// the three view scopes: per-site endpoints see only their site, the
// legacy endpoints roll both up, and /v1/sites inventories them.
func TestMultiSiteFederation(t *testing.T) {
	ds := fixture(t)
	half := len(ds.CERecords) / 2
	a := stream.NewSharded(stream.ShardedConfig{Partitions: 2, Engine: stream.Config{DIMMs: 32 * topology.SlotsPerNode}})
	b := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	a.IngestBatch(ds.CERecords[:half])
	b.IngestBatch(ds.CERecords[half:])
	s := serve.New(serve.Config{Sites: []serve.Site{
		{ID: "alpha", Source: a},
		{ID: "beta", Source: b},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sites struct {
		Count int `json:"count"`
		Sites []struct {
			ID      string `json:"id"`
			Records int    `json:"records"`
		} `json:"sites"`
	}
	get(t, ts.URL+"/v1/sites", http.StatusOK, &sites)
	if sites.Count != 2 || sites.Sites[0].ID != "alpha" || sites.Sites[1].ID != "beta" {
		t.Fatalf("bad site inventory: %+v", sites)
	}
	if sites.Sites[0].Records != half || sites.Sites[1].Records != len(ds.CERecords)-half {
		t.Fatalf("per-site record counts wrong: %+v", sites.Sites)
	}

	var sum stream.Summary
	get(t, ts.URL+"/v1/sites/alpha/breakdown", http.StatusOK, &sum)
	if sum.Records != half {
		t.Fatalf("site-scoped breakdown records = %d, want %d", sum.Records, half)
	}
	var rollup stream.Summary
	get(t, ts.URL+"/v1/breakdown", http.StatusOK, &rollup)
	if rollup.Records != len(ds.CERecords) {
		t.Fatalf("rollup records = %d, want %d", rollup.Records, len(ds.CERecords))
	}
	wantFaults := len(a.Snapshot()) + len(b.Snapshot())
	if rollup.Faults != wantFaults {
		t.Fatalf("rollup faults = %d, want %d", rollup.Faults, wantFaults)
	}

	var faults struct {
		Count int `json:"count"`
	}
	get(t, ts.URL+"/v1/sites/beta/faults", http.StatusOK, &faults)
	if faults.Count != len(b.Snapshot()) {
		t.Fatalf("site-scoped faults = %d, want %d", faults.Count, len(b.Snapshot()))
	}
	get(t, ts.URL+"/v1/sites/nope/faults", http.StatusNotFound, nil)

	// Per-site metrics carry the site label; legacy series aggregate.
	resp := getFull(t, ts.URL+"/metrics", "")
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`astrad_site_records_total{site="alpha"}`,
		`astrad_site_records_total{site="beta"}`,
	} {
		if !contains(string(body), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// Site ETags are independent: ingesting into beta invalidates the
	// rollup and beta scopes, alpha's tag keeps matching.
	alphaTag := getFull(t, ts.URL+"/v1/sites/alpha/breakdown", "").Header.Get("ETag")
	rollTag := getFull(t, ts.URL+"/v1/breakdown", "").Header.Get("ETag")
	b.Ingest(ds.CERecords[0])
	if resp := getFull(t, ts.URL+"/v1/sites/alpha/breakdown", alphaTag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("alpha scope invalidated by beta ingest: %d", resp.StatusCode)
	}
	if resp := getFull(t, ts.URL+"/v1/breakdown", rollTag); resp.StatusCode != http.StatusOK {
		t.Fatalf("rollup scope not invalidated by beta ingest: %d", resp.StatusCode)
	}
}

// TestMultiSiteNodeRollup checks /v1/nodes/{id} on a federated server
// resolves nodes from the merged view regardless of owning site.
func TestMultiSiteNodeRollup(t *testing.T) {
	ds := fixture(t)
	half := len(ds.CERecords) / 2
	a := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	b := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	a.IngestBatch(ds.CERecords[:half])
	b.IngestBatch(ds.CERecords[half:])
	s := serve.New(serve.Config{Sites: []serve.Site{
		{ID: "alpha", Source: a},
		{ID: "beta", Source: b},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	perNode := map[topology.NodeID]int{}
	for _, r := range ds.CERecords {
		perNode[r.Node]++
	}
	checked := 0
	for id, want := range perNode {
		var resp struct {
			CEs int `json:"ces"`
		}
		get(t, ts.URL+"/v1/nodes/"+id.String(), http.StatusOK, &resp)
		if resp.CEs != want {
			t.Fatalf("rollup node %v CEs = %d, want %d", id, resp.CEs, want)
		}
		checked++
		if checked >= 5 {
			break
		}
	}
}

func TestRespCacheReset(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A flood of distinct query strings must not balloon the cache: the
	// server still answers every request correctly (cap behavior is
	// internal; correctness is what's observable).
	for i := 0; i < 50; i++ {
		var faults struct {
			Count int `json:"count"`
		}
		get(t, ts.URL+"/v1/faults?mode=single-bit&x="+strconv.Itoa(i), http.StatusOK, &faults)
	}
}
