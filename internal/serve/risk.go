package serve

import (
	"net/http"
	"strconv"

	"repro/internal/predict"
	"repro/internal/stream"
	"repro/internal/topology"
)

// DefaultAtRiskLimit is the /v1/atrisk result size when no limit is
// given.
const DefaultAtRiskLimit = 20

// MaxAtRiskLimit caps ?limit= so a single request cannot demand an
// unbounded render.
const MaxAtRiskLimit = 1000

// riskEntry is one bank in operator-facing risk form: where it is, how
// hot the predictor thinks it is, and the load-bearing features behind
// the score (enough to sanity-check an alarm without a debugger).
type riskEntry struct {
	Node  string  `json:"node"`
	Slot  string  `json:"slot"`
	Rank  int     `json:"rank"`
	Bank  int     `json:"bank"`
	Score float64 `json:"score"`
	// CEs is the bank's lifetime error count; WindowCEs the count in the
	// rolling window; SpanHours first-to-last error extent.
	CEs       int     `json:"ces"`
	WindowCEs int     `json:"windowCEs"`
	SpanHours float64 `json:"spanHours"`
	// Spatial shape: distinct word addresses, words with multi-bit
	// patterns, distinct failing bit positions, rows, columns.
	Words         int `json:"words"`
	MultiBitWords int `json:"multiBitWords"`
	DistinctBits  int `json:"distinctBits"`
	DistinctRows  int `json:"distinctRows"`
	DistinctCols  int `json:"distinctCols"`
}

func viewRisk(bf *predict.BankFeatures, score float64) riskEntry {
	f := &bf.F
	return riskEntry{
		Node:          bf.Key.Node.String(),
		Slot:          bf.Key.Slot.Name(),
		Rank:          int(bf.Key.Rank),
		Bank:          int(bf.Key.Bank),
		Score:         score,
		CEs:           int(f.CEs),
		WindowCEs:     int(f.WindowCEs),
		SpanHours:     f.SpanHours,
		Words:         int(f.Words),
		MultiBitWords: int(f.MultiBitWords),
		DistinctBits:  int(f.DistinctBits),
		DistinctRows:  int(f.DistinctRows),
		DistinctCols:  int(f.DistinctCols),
	}
}

// atRiskResponse is the /v1/atrisk payload: the top banks by predicted
// failure risk, highest first.
type atRiskResponse struct {
	Predictor string      `json:"predictor"`
	Banks     int         `json:"banks"`
	Count     int         `json:"count"`
	AtRisk    []riskEntry `json:"atRisk"`
}

// renderAtRisk ranks the view's banks under the configured predictor
// and returns the top ?limit= (default DefaultAtRiskLimit). Scoring
// happens at render time over the immutable view — swapping predictors
// never requires an engine rebuild — and the epoch-keyed response cache
// makes repeat rankings free within an epoch.
func (s *Server) renderAtRisk(v *stream.View, _ int, r *http.Request) (int, any) {
	limit := DefaultAtRiskLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > MaxAtRiskLimit {
			return http.StatusBadRequest, errorBody{"limit must be an integer in [1, " + strconv.Itoa(MaxAtRiskLimit) + "]"}
		}
		limit = n
	}
	// The view's bank slice is shared and immutable; rank a copy.
	banks := append([]predict.BankFeatures(nil), v.Banks()...)
	scores := predict.SortByRisk(banks, s.predictor)
	if limit > len(banks) {
		limit = len(banks)
	}
	resp := atRiskResponse{
		Predictor: s.predictor.Name(),
		Banks:     len(banks),
		AtRisk:    make([]riskEntry, 0, limit),
	}
	for i := 0; i < limit; i++ {
		resp.AtRisk = append(resp.AtRisk, viewRisk(&banks[i], scores[i]))
	}
	resp.Count = len(resp.AtRisk)
	return http.StatusOK, resp
}

// nodeRiskResponse is the /v1/nodes/{id}/risk payload: every bank of
// one node scored, highest first, with the node's worst score on top.
type nodeRiskResponse struct {
	Node      string      `json:"node"`
	Predictor string      `json:"predictor"`
	MaxScore  float64     `json:"maxScore"`
	Banks     []riskEntry `json:"banks"`
}

func (s *Server) renderNodeRisk(v *stream.View, _ int, r *http.Request) (int, any) {
	id, err := topology.ParseNodeID(r.PathValue("id"))
	if err != nil {
		return http.StatusBadRequest, errorBody{err.Error()}
	}
	vb := v.Banks()
	var banks []predict.BankFeatures
	for i := range vb {
		if vb[i].Key.Node == id {
			banks = append(banks, vb[i])
		}
	}
	if len(banks) == 0 {
		return http.StatusNotFound, errorBody{"no records from node " + id.String()}
	}
	scores := predict.SortByRisk(banks, s.predictor)
	resp := nodeRiskResponse{
		Node:      id.String(),
		Predictor: s.predictor.Name(),
		MaxScore:  scores[0],
		Banks:     make([]riskEntry, 0, len(banks)),
	}
	for i := range banks {
		resp.Banks = append(resp.Banks, viewRisk(&banks[i], scores[i]))
	}
	return http.StatusOK, resp
}

// registerRiskMetrics exposes the live prediction surface: bank count,
// banks at or above the alarm threshold, and the fleet's worst score.
// Scores are computed at scrape time against the current fleet view, so
// the series never go stale and never block ingest.
func (s *Server) registerRiskMetrics() {
	scan := func() (banks int, atRisk int, maxScore float64) {
		vb := s.fleetView().Banks()
		for i := range vb {
			sc := s.predictor.Score(&vb[i].F)
			if sc >= s.riskThreshold {
				atRisk++
			}
			if sc > maxScore {
				maxScore = sc
			}
		}
		return len(vb), atRisk, maxScore
	}
	s.reg.NewGaugeFunc("astrad_predict_banks", "", "Banks with live prediction feature state.",
		func() float64 { b, _, _ := scan(); return float64(b) })
	s.reg.NewGaugeFunc("astrad_predict_atrisk", "", "Banks scoring at or above the alarm threshold under the serving predictor.",
		func() float64 { _, a, _ := scan(); return float64(a) })
	s.reg.NewGaugeFunc("astrad_predict_max_risk", "", "Highest bank risk score in the fleet under the serving predictor.",
		func() float64 { _, _, m := scan(); return m })
}

// DefaultRiskThreshold is the alarm threshold behind the
// astrad_predict_atrisk gauge when Config.RiskThreshold is zero: rung 5
// of the default rule ladder (sustained ≥256-CE multi-day activity),
// the precision/recall sweet spot on the pinned evaluation scenario.
const DefaultRiskThreshold = 0.625
