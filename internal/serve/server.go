package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/predict"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// Source is the engine surface the server reads: the serial
// stream.Engine and the partitioned stream.Sharded both satisfy it, so
// one daemon serves either without caring which it holds.
type Source interface {
	// LiveView returns a current or recent immutable view (never blocks
	// behind ingest; see stream.Engine.LiveView).
	LiveView() *stream.View
	// Seq is the state-change counter views are compared against.
	Seq() uint64
	// Summary is the live top-level aggregate.
	Summary() stream.Summary
	// Shed is the total records lost to load shedding.
	Shed() uint64
	// DIMMs is the monitored device population (FIT denominator).
	DIMMs() int
}

// SiteHealth is one site's position in the host's supervision ladder.
// The server does not supervise anything itself; the daemon reports
// through the hook and the server translates the state into HTTP
// behavior (503 on the site's endpoints, degraded /healthz, metrics).
type SiteHealth struct {
	// State is "running", "backoff", "quarantined" or "stopped"
	// (supervise.State strings). Anything but "running" makes the site's
	// scoped endpoints answer 503.
	State string `json:"state"`
	// Restarts counts supervised restarts of the site's pipeline.
	Restarts uint64 `json:"restarts"`
	// LastError is the most recent pipeline failure, rendered.
	LastError string `json:"lastError,omitempty"`
	// RetryInSeconds is the time until the next restart attempt while the
	// site is backing off.
	RetryInSeconds float64 `json:"retryInSeconds,omitempty"`
}

// SiteRunning is the SiteHealth state in which a site serves normally.
const SiteRunning = "running"

// Site is one federated fleet served by a multi-site daemon.
type Site struct {
	// ID names the site in /v1/sites URLs and per-site metrics.
	ID string
	// Source is the site's engine.
	Source Source
	// Health, when set, reports the site's supervision state. A site
	// whose State is not SiteRunning gets 503 + detail on its scoped
	// endpoints and flips /healthz to degraded; nil means always running.
	Health func() SiteHealth
}

// Config assembles a Server.
type Config struct {
	// Engine is the live clustering engine to serve. Exactly one of
	// Engine, Source, or Sites must be set; Engine and Source are the
	// single-site arrangement (equivalent: Engine is a Source).
	Engine *stream.Engine
	// Source generalizes Engine (a sharded fleet, a test double).
	Source Source
	// Sites serves several federated fleets from one daemon: each gets
	// site-scoped endpoints under /v1/sites/{id}/, and the legacy /v1
	// endpoints become the cross-site rollup.
	Sites []Site
	// Logger receives structured request logs; nil means slog.Default().
	Logger *slog.Logger
	// ScanStats, when set, supplies the ingest path's accounting for
	// /metrics (lines, malformed, duplicates, reorder drops).
	ScanStats func() syslog.ScanStats
	// Overload, when set, supplies the admission layer's state (queue
	// depth, watermarks, shed counts, checkpoint-breaker position) for
	// /healthz and /metrics.
	Overload func() overload.Status
	// MaxConcurrent caps in-flight requests per endpoint; beyond it
	// requests are refused with 503 + Retry-After. 0 means
	// DefaultMaxConcurrent; negative disables the cap.
	MaxConcurrent int
	// RequestTimeout bounds each request end to end (handler context
	// plus connection write deadline). 0 means DefaultRequestTimeout;
	// negative disables it.
	RequestTimeout time.Duration
	// MaxStaleness is the served-view age beyond which /healthz reports
	// degraded. 0 means DefaultMaxStaleness.
	MaxStaleness time.Duration
	// Predictor scores bank feature vectors for /v1/atrisk,
	// /v1/nodes/{id}/risk and the astrad_predict_* metrics; nil means
	// predict.DefaultRuleLadder(). Scoring happens at render time over
	// immutable views, so the predictor must be safe for concurrent use
	// (the rule ladder and trained models are: Score is read-only).
	Predictor predict.Predictor
	// RiskThreshold is the alarm bar behind the astrad_predict_atrisk
	// gauge; 0 means DefaultRiskThreshold.
	RiskThreshold float64
}

// Server exposes a stream.Engine over HTTP: JSON analyses under /v1,
// liveness under /healthz, and Prometheus-text metrics under /metrics.
// Every endpoint is instrumented with a per-endpoint request counter and
// latency histogram, capped to MaxConcurrent in-flight requests, and
// bounded by RequestTimeout.
//
// Reads are snapshot-based: handlers serve an immutable stream.View, so
// a herd of API clients never contends with ingest on the engine mutex.
// When ingest holds the engine (a batch in flight), the previous view is
// served as-is and the response carries X-Astra-Staleness (the view's
// age) and X-Astra-Staleness-Records (how many records it trails by) —
// stale data is served honestly, never silently.
type Server struct {
	sites     []*siteState
	log       *slog.Logger
	reg       *Registry
	scanStats func() syslog.ScanStats
	ovl       func() overload.Status
	mux       *http.ServeMux

	// merged caches the cross-site rollup view per fleet epoch (one
	// merge per epoch, however many readers).
	merged  atomic.Pointer[stream.View]
	mergeMu sync.Mutex

	cache       *respCache
	cacheHits   *Counter
	cacheMisses *Counter
	cacheNotMod *Counter

	maxConcurrent  int
	requestTimeout time.Duration
	maxStaleness   time.Duration

	predictor     predict.Predictor
	riskThreshold float64
}

// siteState is one served fleet.
type siteState struct {
	id     string
	src    Source
	health func() SiteHealth
}

// currentHealth resolves the site's supervision state (always running
// when the host wired no hook).
func (st *siteState) currentHealth() SiteHealth {
	if st.health == nil {
		return SiteHealth{State: SiteRunning}
	}
	return st.health()
}

// New builds a server around an engine, a source, or a site set.
func New(cfg Config) *Server {
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	s := &Server{
		log:       log,
		reg:       NewRegistry(),
		scanStats: cfg.ScanStats,
		ovl:       cfg.Overload,
		mux:       http.NewServeMux(),
		cache:     newRespCache(0),

		maxConcurrent:  cfg.MaxConcurrent,
		requestTimeout: cfg.RequestTimeout,
		maxStaleness:   cfg.MaxStaleness,

		predictor:     cfg.Predictor,
		riskThreshold: cfg.RiskThreshold,
	}
	if s.predictor == nil {
		s.predictor = predict.DefaultRuleLadder()
	}
	if s.riskThreshold <= 0 {
		s.riskThreshold = DefaultRiskThreshold
	}
	switch {
	case len(cfg.Sites) > 0:
		for _, site := range cfg.Sites {
			s.sites = append(s.sites, &siteState{id: site.ID, src: site.Source, health: site.Health})
		}
	case cfg.Source != nil:
		s.sites = []*siteState{{id: "default", src: cfg.Source}}
	default:
		s.sites = []*siteState{{id: "default", src: cfg.Engine}}
	}
	if s.maxConcurrent == 0 {
		s.maxConcurrent = DefaultMaxConcurrent
	}
	if s.requestTimeout == 0 {
		s.requestTimeout = DefaultRequestTimeout
	}
	if s.maxStaleness <= 0 {
		s.maxStaleness = DefaultMaxStaleness
	}
	s.cacheHits = s.reg.NewCounter("astrad_cache_hits_total", "", "Cacheable GETs served from the epoch-keyed response cache.")
	s.cacheMisses = s.reg.NewCounter("astrad_cache_misses_total", "", "Cacheable GETs that re-rendered (new epoch, new URL, or evicted entry).")
	s.cacheNotMod = s.reg.NewCounter("astrad_cache_not_modified_total", "", "Cacheable GETs answered 304 via If-None-Match.")
	s.registerMetrics()
	s.registerRiskMetrics()
	s.route("GET /healthz", "/healthz", s.handleHealthz)
	s.route("GET /v1/faults", "/v1/faults", s.cached(false, renderFaults))
	s.route("GET /v1/breakdown", "/v1/breakdown", s.cached(false, renderBreakdown))
	s.route("GET /v1/fit", "/v1/fit", s.cached(false, renderFIT))
	s.route("GET /v1/nodes/{id}", "/v1/nodes/{id}", s.cached(false, renderNode))
	s.route("GET /v1/nodes/{id}/risk", "/v1/nodes/{id}/risk", s.cached(false, s.renderNodeRisk))
	s.route("GET /v1/atrisk", "/v1/atrisk", s.cached(false, s.renderAtRisk))
	s.route("GET /v1/sites", "/v1/sites", s.cached(false, s.renderSites))
	s.route("GET /v1/sites/{site}/faults", "/v1/sites/{site}/faults", s.cached(true, renderFaults))
	s.route("GET /v1/sites/{site}/breakdown", "/v1/sites/{site}/breakdown", s.cached(true, renderBreakdown))
	s.route("GET /v1/sites/{site}/fit", "/v1/sites/{site}/fit", s.cached(true, renderFIT))
	s.route("GET /v1/sites/{site}/nodes/{id}", "/v1/sites/{site}/nodes/{id}", s.cached(true, renderNode))
	s.route("GET /v1/sites/{site}/nodes/{id}/risk", "/v1/sites/{site}/nodes/{id}/risk", s.cached(true, s.renderNodeRisk))
	s.route("GET /v1/sites/{site}/atrisk", "/v1/sites/{site}/atrisk", s.cached(true, s.renderAtRisk))
	s.route("GET /metrics", "/metrics", s.handleMetrics)
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry so the host process can
// attach its own series (checkpoint age, ingest rate, ...).
func (s *Server) Registry() *Registry { return s.reg }

// route installs a protected, instrumented handler. Inside out: the
// handler itself, the per-endpoint concurrency cap (innermost so a
// rejection is cheap), the request deadline, instrumentation, and the
// panic backstop outermost.
func (s *Server) route(pattern, path string, h http.HandlerFunc) {
	labels := `path="` + path + `"`
	reqs := s.reg.NewCounter("astrad_http_requests_total", labels, "HTTP requests served, by endpoint.")
	lat := s.reg.NewHistogram("astrad_http_request_seconds", labels, "HTTP request latency in seconds, by endpoint.", nil)
	rejected := s.reg.NewCounter("astrad_http_rejected_total", labels, "Requests refused with 503 at the per-endpoint concurrency cap.")
	panics := s.reg.NewCounter("astrad_http_panics_total", labels, "Handler panics recovered into 500s.")
	wrapped := limited(s.maxConcurrent, rejected, h)
	wrapped = deadlined(s.requestTimeout, wrapped)
	instrumented := func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		wrapped(w, r)
		d := time.Since(start)
		reqs.Inc()
		lat.Observe(d.Seconds())
		s.log.Debug("request", "path", r.URL.Path, "dur", d)
	}
	s.mux.HandleFunc(pattern, recovered(s, panics, instrumented))
}

// fleetSeq sums the per-site state counters: the rollup epoch.
func (s *Server) fleetSeq() uint64 {
	var seq uint64
	for _, st := range s.sites {
		seq += st.src.Seq()
	}
	return seq
}

// fleetDIMMs sums the per-site device populations.
func (s *Server) fleetDIMMs() int {
	d := 0
	for _, st := range s.sites {
		d += st.src.DIMMs()
	}
	return d
}

// fleetView returns the cross-site rollup view, rebuilt at most once per
// fleet epoch (single-site daemons pass the site view through
// untouched). Per-site views are the sites' own consistent cuts; the
// rollup composes whatever cuts are current, and its Seq is their sum,
// so it can only advance.
func (s *Server) fleetView() *stream.View {
	if len(s.sites) == 1 {
		return s.sites[0].src.LiveView()
	}
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	views := make([]*stream.View, len(s.sites))
	var seq uint64
	for i, st := range s.sites {
		views[i] = st.src.LiveView()
		seq += views[i].Seq
	}
	if m := s.merged.Load(); m != nil && m.Seq == seq {
		return m
	}
	m := stream.MergeViews(s.fleetDIMMs(), views...)
	s.merged.Store(m)
	return m
}

// liveView fetches the fleet view to serve and stamps staleness headers
// when it trails the engines (ingest busy: the stale view is served
// rather than blocking the reader behind an engine mutex).
func (s *Server) liveView(w http.ResponseWriter) *stream.View {
	v := s.fleetView()
	if lag := s.fleetSeq() - v.Seq; lag > 0 {
		w.Header().Set("X-Astra-Staleness", time.Since(v.BuiltAt).String())
		w.Header().Set("X-Astra-Staleness-Records", strconv.FormatUint(lag, 10))
	}
	return v
}

// siteByID resolves a /v1/sites/{site}/ path segment.
func (s *Server) siteByID(id string) *siteState {
	for _, st := range s.sites {
		if st.id == id {
			return st
		}
	}
	return nil
}

// renderFunc produces one cacheable JSON response from an immutable
// view: pure in the view, so the rendered bytes are valid for exactly
// as long as the view's epoch.
type renderFunc func(v *stream.View, dimms int, r *http.Request) (int, any)

// cached wraps a renderFunc with the snapshot-keyed response layer:
// the ETag is the view epoch, If-None-Match answers 304 without
// rendering, and rendered 200 bodies are reused for every request at
// the same (URL, epoch). siteScoped routes resolve {site} from the
// path and serve that site's view; otherwise the fleet rollup view is
// served with staleness headers.
func (s *Server) cached(siteScoped bool, render renderFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var v *stream.View
		var dimms int
		if siteScoped {
			site := s.siteByID(r.PathValue("site"))
			if site == nil {
				writeJSON(w, http.StatusNotFound, errorBody{"unknown site " + r.PathValue("site")})
				return
			}
			if h := site.currentHealth(); h.State != SiteRunning {
				// The site's pipeline is down or quarantined: its data is
				// frozen at the last checkpoint, so refuse the read with the
				// supervision detail instead of serving it as current. The
				// fleet rollup and /v1/sites stay best-effort.
				retry := h.RetryInSeconds
				if retry < 1 {
					retry = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(int(retry+0.5)))
				writeJSON(w, http.StatusServiceUnavailable, siteDownBody{
					Error:  "site " + site.id + " is " + h.State,
					Site:   site.id,
					Health: h,
				})
				return
			}
			v = site.src.LiveView()
			if lag := site.src.Seq() - v.Seq; lag > 0 {
				w.Header().Set("X-Astra-Staleness", time.Since(v.BuiltAt).String())
				w.Header().Set("X-Astra-Staleness-Records", strconv.FormatUint(lag, 10))
			}
			dimms = site.src.DIMMs()
		} else {
			v = s.liveView(w)
			dimms = s.fleetDIMMs()
		}
		etag := `"astra-` + strconv.FormatUint(v.Seq, 16) + `"`
		h := w.Header()
		h.Set("ETag", etag)
		h.Set("Cache-Control", "no-cache")
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
			s.cacheNotMod.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		key := r.URL.Path
		if r.URL.RawQuery != "" {
			key += "?" + r.URL.RawQuery
		}
		if ent, ok := s.cache.get(key, v.Seq); ok {
			s.cacheHits.Inc()
			h.Set("Content-Type", "application/json")
			w.WriteHeader(ent.code)
			_, _ = w.Write(ent.body)
			return
		}
		s.cacheMisses.Inc()
		code, payload := render(v, dimms, r)
		body, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
			return
		}
		body = append(body, '\n')
		s.cache.put(key, v.Seq, code, body)
		h.Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_, _ = w.Write(body)
	}
}

// etagMatch implements If-None-Match: a literal *, or any entity-tag in
// the comma-separated list equal to the current tag.
func etagMatch(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// registerMetrics wires the engine's rolling aggregates — and, when
// available, the scanner's corruption accounting — into the registry.
// Values are read at scrape time, so /metrics always reflects the live
// engine without a copy pipeline.
func (s *Server) registerMetrics() {
	// Legacy series keep their unlabelled names and, on a multi-site
	// daemon, report the all-sites aggregate; per-site series carry a
	// site label alongside.
	sum := func() stream.Summary {
		if len(s.sites) == 1 {
			return s.sites[0].src.Summary()
		}
		return s.fleetView().Summary
	}
	s.reg.NewCounterFunc("astrad_stream_records_total", "", "CE records ingested into the clustering engine.",
		func() float64 { return float64(sum().Records) })
	s.reg.NewCounterFunc("astrad_fault_escalations_total", "", "Observed per-bank fault-mode escalations.",
		func() float64 { return float64(sum().Escalations) })
	for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
		m := m
		s.reg.NewGaugeFunc("astrad_open_faults", `mode="`+m.String()+`"`, "Live fault count by observable mode.",
			func() float64 { return float64(sum().FaultsByMode[m]) })
	}
	s.reg.NewGaugeFunc("astrad_faulty_nodes", "", "Nodes with at least one live fault.",
		func() float64 { return float64(sum().FaultyNodes) })
	s.reg.NewGaugeFunc("astrad_window_ce_count", "", "CE records inside the rolling event-time window.",
		func() float64 { return float64(sum().WindowCount) })
	s.reg.NewGaugeFunc("astrad_window_ce_rate", "", "CE records per second over the rolling event-time window.",
		func() float64 { return sum().WindowRate })
	s.reg.NewCounterFunc("astrad_stream_shed_total", "", "CE records shed at admission and charged to the engine's degraded accounting.",
		func() float64 {
			var n uint64
			for _, st := range s.sites {
				n += st.src.Shed()
			}
			return float64(n)
		})
	s.reg.NewGaugeFunc("astrad_view_lag_records", "", "State changes the currently served view trails the engine by.",
		func() float64 {
			v := s.fleetView()
			return float64(s.fleetSeq() - v.Seq)
		})
	if len(s.sites) > 1 {
		for _, st := range s.sites {
			st := st
			label := `site="` + st.id + `"`
			s.reg.NewCounterFunc("astrad_site_records_total", label, "CE records ingested, by site.",
				func() float64 { return float64(st.src.Summary().Records) })
			s.reg.NewCounterFunc("astrad_site_shed_total", label, "Records shed, by site.",
				func() float64 { return float64(st.src.Shed()) })
			s.reg.NewGaugeFunc("astrad_site_faults", label, "Live fault count, by site.",
				func() float64 { return float64(st.src.Summary().Faults) })
		}
	}
	for _, st := range s.sites {
		if st.health == nil {
			continue
		}
		st := st
		label := `site="` + st.id + `"`
		s.reg.NewGaugeFunc("astrad_site_state", label, "Supervision state of the site's ingest pipeline: 0 running, 1 backoff, 2 quarantined, 3 stopped.",
			func() float64 {
				switch st.currentHealth().State {
				case "backoff":
					return 1
				case "quarantined":
					return 2
				case "stopped":
					return 3
				}
				return 0
			})
		s.reg.NewCounterFunc("astrad_site_restarts_total", label, "Supervised restarts of the site's ingest pipeline.",
			func() float64 { return float64(st.currentHealth().Restarts) })
	}

	if s.ovl != nil {
		ost := s.ovl
		queue := []struct {
			name, help string
			counter    bool
			get        func(overload.QueueStats) float64
		}{
			{"astrad_admission_offered_total", "Records offered to the admission queue.", true,
				func(q overload.QueueStats) float64 { return float64(q.Offered) }},
			{"astrad_admission_admitted_total", "Records admitted past the watermarks.", true,
				func(q overload.QueueStats) float64 { return float64(q.Admitted) }},
			{"astrad_admission_drained_total", "Records drained into the engine.", true,
				func(q overload.QueueStats) float64 { return float64(q.Drained) }},
			{"astrad_admission_shed_total", "Records shed (rejected plus evicted) under overload.", true,
				func(q overload.QueueStats) float64 { return float64(q.Shed) }},
			{"astrad_admission_saturations_total", "Times the queue crossed its high watermark into shedding.", true,
				func(q overload.QueueStats) float64 { return float64(q.Saturations) }},
			{"astrad_admission_queue_depth", "Records waiting in the admission queue.", false,
				func(q overload.QueueStats) float64 { return float64(q.Depth) }},
			{"astrad_admission_queue_capacity", "Admission queue capacity.", false,
				func(q overload.QueueStats) float64 { return float64(q.Capacity) }},
			{"astrad_admission_saturated", "1 while the queue is between its watermarks shedding load.", false,
				func(q overload.QueueStats) float64 {
					if q.Saturated {
						return 1
					}
					return 0
				}},
		}
		for _, m := range queue {
			get := m.get
			if m.counter {
				s.reg.NewCounterFunc(m.name, "", m.help, func() float64 { return get(ost().Queue) })
			} else {
				s.reg.NewGaugeFunc(m.name, "", m.help, func() float64 { return get(ost().Queue) })
			}
		}
		s.reg.NewGaugeFunc("astrad_checkpoint_breaker_state", "", "Checkpoint circuit breaker: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				switch ost().Breaker.State {
				case overload.BreakerOpen.String():
					return 2
				case overload.BreakerHalfOpen.String():
					return 1
				}
				return 0
			})
		s.reg.NewCounterFunc("astrad_checkpoint_breaker_opens_total", "", "Times the checkpoint breaker tripped open.",
			func() float64 { return float64(ost().Breaker.Opens) })
		s.reg.NewCounterFunc("astrad_checkpoint_breaker_rejected_total", "", "Checkpoint attempts refused while the breaker was open.",
			func() float64 { return float64(ost().Breaker.Rejected) })
	}

	if s.scanStats == nil {
		return
	}
	st := s.scanStats
	ingest := []struct {
		name, help string
		get        func(syslog.ScanStats) int
	}{
		{"astrad_ingest_lines_total", "Syslog lines consumed.", func(v syslog.ScanStats) int { return v.Lines }},
		{"astrad_ingest_ces_total", "Well-formed CE records scanned.", func(v syslog.ScanStats) int { return v.CEs }},
		{"astrad_ingest_malformed_total", "Record lines that failed to parse.", func(v syslog.ScanStats) int { return v.Malformed }},
		{"astrad_ingest_duplicated_total", "Record lines suppressed as relay duplicates.", func(v syslog.ScanStats) int { return v.Duplicated }},
		{"astrad_ingest_reordered_total", "Records resequenced within the reorder window.", func(v syslog.ScanStats) int { return v.Reordered }},
		{"astrad_ingest_dropped_out_of_order_total", "Records dropped as too late to resequence.", func(v syslog.ScanStats) int { return v.DroppedOutOfOrder }},
	}
	for _, m := range ingest {
		get := m.get
		s.reg.NewCounterFunc(m.name, "", m.help, func() float64 { return float64(get(st())) })
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// siteDownBody is the 503 payload for a site whose pipeline is not
// running: enough detail for an operator to tell a restarting site (come
// back shortly) from a quarantined one (page someone).
type siteDownBody struct {
	Error  string     `json:"error"`
	Site   string     `json:"site"`
	Health SiteHealth `json:"health"`
}

// healthResponse is the /healthz body. Status is "ok", "degraded"
// (checkpoint breaker not closed, or served views older than the
// staleness bound, or records already shed), or "shedding" (the
// admission queue is actively between its watermarks refusing load).
// The response is always 200: health is reported, not enforced — load
// balancers act on the body, humans on the detail fields.
type healthResponse struct {
	Status  string `json:"status"`
	Records int    `json:"records"`
	Offered int    `json:"offered"`
	Shed    int    `json:"shed"`
	// StalenessSeconds is the age of the currently served view;
	// LagRecords is how many state changes it trails the engine by.
	StalenessSeconds float64 `json:"stalenessSeconds"`
	LagRecords       uint64  `json:"lagRecords"`
	// Overload is the admission layer's live accounting (absent when the
	// daemon runs without one, e.g. under tests).
	Overload *overload.Status `json:"overload,omitempty"`
	// Sites is the per-site supervision ladder (present when the daemon
	// wired health hooks). Any site not running makes Status "degraded".
	Sites []siteHealthEntry `json:"sites,omitempty"`
}

// siteHealthEntry is one rung of the /healthz per-site ladder.
type siteHealthEntry struct {
	ID string `json:"id"`
	SiteHealth
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := s.liveView(w)
	staleness := time.Since(v.BuiltAt)
	lag := s.fleetSeq() - v.Seq
	if lag == 0 {
		staleness = 0 // current view: not stale, whatever its age
	}
	resp := healthResponse{
		Status:           "ok",
		Records:          v.Summary.Records,
		Offered:          v.Summary.Offered,
		Shed:             v.Summary.Shed,
		StalenessSeconds: staleness.Seconds(),
		LagRecords:       lag,
	}
	if staleness > s.maxStaleness || v.Summary.Degraded {
		resp.Status = "degraded"
	}
	for _, st := range s.sites {
		if st.health == nil {
			continue
		}
		h := st.currentHealth()
		resp.Sites = append(resp.Sites, siteHealthEntry{ID: st.id, SiteHealth: h})
		if h.State != SiteRunning {
			resp.Status = "degraded"
		}
	}
	if s.ovl != nil {
		st := s.ovl()
		resp.Overload = &st
		if st.Breaker.State != "" && st.Breaker.State != overload.BreakerClosed.String() {
			resp.Status = "degraded"
		}
		if st.Queue.Saturated {
			resp.Status = "shedding"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// faultView is one fault in operator-facing form: the node as its
// hostname (feedable back into /v1/nodes/{id}), the slot by name, the
// mode by its Fig-4a string, and the address in hex. The raw per-error
// index list is internal bookkeeping and is not exposed.
type faultView struct {
	Node    string    `json:"node"`
	Slot    string    `json:"slot"`
	Rank    int       `json:"rank"`
	Bank    int       `json:"bank"`
	Mode    string    `json:"mode"`
	Col     int       `json:"col"`
	Addr    string    `json:"addr"`
	Bit     int       `json:"bit"`
	NErrors int       `json:"nErrors"`
	First   time.Time `json:"first"`
	Last    time.Time `json:"last"`
}

func viewFault(f core.Fault) faultView {
	return faultView{
		Node:    f.Node.String(),
		Slot:    f.Slot.Name(),
		Rank:    f.Rank,
		Bank:    f.Bank,
		Mode:    f.Mode.String(),
		Col:     f.Col,
		Addr:    fmt.Sprintf("%#x", uint64(f.Addr)),
		Bit:     f.Bit,
		NErrors: f.NErrors,
		First:   f.First,
		Last:    f.Last,
	}
}

// faultsResponse is the /v1/faults payload.
type faultsResponse struct {
	Count  int         `json:"count"`
	Faults []faultView `json:"faults"`
}

func renderFaults(v *stream.View, _ int, r *http.Request) (int, any) {
	faults := v.Faults
	if modeStr := r.URL.Query().Get("mode"); modeStr != "" {
		mode := core.FaultMode(-1)
		for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
			if m.String() == modeStr {
				mode = m
			}
		}
		if mode < 0 {
			return http.StatusBadRequest, errorBody{"unknown mode " + modeStr}
		}
		kept := faults[:0:0]
		for _, f := range faults {
			if f.Mode == mode {
				kept = append(kept, f)
			}
		}
		faults = kept
	}
	views := make([]faultView, len(faults))
	for i, f := range faults {
		views[i] = viewFault(f)
	}
	return http.StatusOK, faultsResponse{Count: len(faults), Faults: views}
}

func renderBreakdown(v *stream.View, _ int, _ *http.Request) (int, any) {
	return http.StatusOK, v.Summary
}

// siteInfo is one row of the /v1/sites inventory.
type siteInfo struct {
	ID          string    `json:"id"`
	Records     int       `json:"records"`
	Offered     int       `json:"offered"`
	Shed        int       `json:"shed"`
	Faults      int       `json:"faults"`
	FaultyNodes int       `json:"faultyNodes"`
	Last        time.Time `json:"last"`
	Degraded    bool      `json:"degraded"`
	Seq         uint64    `json:"seq"`
	// State is the site's supervision state (omitted when the daemon runs
	// without supervision hooks).
	State string `json:"state,omitempty"`
}

type sitesResponse struct {
	Count int        `json:"count"`
	Sites []siteInfo `json:"sites"`
}

func (s *Server) renderSites(_ *stream.View, _ int, _ *http.Request) (int, any) {
	resp := sitesResponse{Count: len(s.sites), Sites: make([]siteInfo, 0, len(s.sites))}
	for _, st := range s.sites {
		v := st.src.LiveView()
		info := siteInfo{
			ID:          st.id,
			Records:     v.Summary.Records,
			Offered:     v.Summary.Offered,
			Shed:        v.Summary.Shed,
			Faults:      v.Summary.Faults,
			FaultyNodes: v.Summary.FaultyNodes,
			Last:        v.Summary.Last,
			Degraded:    v.Summary.Degraded,
			Seq:         v.Seq,
		}
		if st.health != nil {
			info.State = st.currentHealth().State
		}
		resp.Sites = append(resp.Sites, info)
	}
	return http.StatusOK, resp
}

// fitResponse pairs the rolling windowed estimate with the rate over the
// whole observed span.
type fitResponse struct {
	Windowed stream.WindowedFIT `json:"windowed"`
	// Overall is the FIT/DIMM analysis over the observed event-time span
	// (degraded when nothing has been observed yet).
	Overall     core.FaultRates `json:"overall"`
	SpanSeconds float64         `json:"spanSeconds"`
}

func renderFIT(v *stream.View, dimms int, _ *http.Request) (int, any) {
	sum := v.Summary
	span := time.Duration(0)
	if !sum.First.IsZero() {
		span = sum.Last.Sub(sum.First)
	}
	return http.StatusOK, fitResponse{
		Windowed:    v.FIT,
		Overall:     v.FaultRates(dimms, span),
		SpanSeconds: span.Seconds(),
	}
}

func renderNode(v *stream.View, _ int, r *http.Request) (int, any) {
	id, err := topology.ParseNodeID(r.PathValue("id"))
	if err != nil {
		return http.StatusBadRequest, errorBody{err.Error()}
	}
	st, ok := v.NodeStatus(id)
	if !ok {
		return http.StatusNotFound, errorBody{"no records from node " + id.String()}
	}
	views := make([]faultView, len(st.Faults))
	for i, f := range st.Faults {
		views[i] = viewFault(f)
	}
	return http.StatusOK, nodeResponse{
		Node:        st.Node.String(),
		CEs:         st.CEs,
		First:       st.First,
		Last:        st.Last,
		WindowCount: st.WindowCount,
		WindowRate:  st.WindowRate,
		Faults:      views,
	}
}

// nodeResponse is stream.NodeStatus in operator-facing form: the node as
// its hostname, faults as faultView.
type nodeResponse struct {
	Node        string      `json:"node"`
	CEs         int         `json:"ces"`
	First       time.Time   `json:"first"`
	Last        time.Time   `json:"last"`
	WindowCount int         `json:"windowCount"`
	WindowRate  float64     `json:"windowRate"`
	Faults      []faultView `json:"faults"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}
