package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// Config assembles a Server.
type Config struct {
	// Engine is the live clustering engine to serve (required).
	Engine *stream.Engine
	// Logger receives structured request logs; nil means slog.Default().
	Logger *slog.Logger
	// ScanStats, when set, supplies the ingest path's accounting for
	// /metrics (lines, malformed, duplicates, reorder drops).
	ScanStats func() syslog.ScanStats
	// Overload, when set, supplies the admission layer's state (queue
	// depth, watermarks, shed counts, checkpoint-breaker position) for
	// /healthz and /metrics.
	Overload func() overload.Status
	// MaxConcurrent caps in-flight requests per endpoint; beyond it
	// requests are refused with 503 + Retry-After. 0 means
	// DefaultMaxConcurrent; negative disables the cap.
	MaxConcurrent int
	// RequestTimeout bounds each request end to end (handler context
	// plus connection write deadline). 0 means DefaultRequestTimeout;
	// negative disables it.
	RequestTimeout time.Duration
	// MaxStaleness is the served-view age beyond which /healthz reports
	// degraded. 0 means DefaultMaxStaleness.
	MaxStaleness time.Duration
}

// Server exposes a stream.Engine over HTTP: JSON analyses under /v1,
// liveness under /healthz, and Prometheus-text metrics under /metrics.
// Every endpoint is instrumented with a per-endpoint request counter and
// latency histogram, capped to MaxConcurrent in-flight requests, and
// bounded by RequestTimeout.
//
// Reads are snapshot-based: handlers serve an immutable stream.View, so
// a herd of API clients never contends with ingest on the engine mutex.
// When ingest holds the engine (a batch in flight), the previous view is
// served as-is and the response carries X-Astra-Staleness (the view's
// age) and X-Astra-Staleness-Records (how many records it trails by) —
// stale data is served honestly, never silently.
type Server struct {
	e         *stream.Engine
	log       *slog.Logger
	reg       *Registry
	scanStats func() syslog.ScanStats
	ovl       func() overload.Status
	mux       *http.ServeMux

	maxConcurrent  int
	requestTimeout time.Duration
	maxStaleness   time.Duration
}

// New builds a server around an engine.
func New(cfg Config) *Server {
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	s := &Server{
		e:         cfg.Engine,
		log:       log,
		reg:       NewRegistry(),
		scanStats: cfg.ScanStats,
		ovl:       cfg.Overload,
		mux:       http.NewServeMux(),

		maxConcurrent:  cfg.MaxConcurrent,
		requestTimeout: cfg.RequestTimeout,
		maxStaleness:   cfg.MaxStaleness,
	}
	if s.maxConcurrent == 0 {
		s.maxConcurrent = DefaultMaxConcurrent
	}
	if s.requestTimeout == 0 {
		s.requestTimeout = DefaultRequestTimeout
	}
	if s.maxStaleness <= 0 {
		s.maxStaleness = DefaultMaxStaleness
	}
	s.registerMetrics()
	s.route("GET /healthz", "/healthz", s.handleHealthz)
	s.route("GET /v1/faults", "/v1/faults", s.handleFaults)
	s.route("GET /v1/breakdown", "/v1/breakdown", s.handleBreakdown)
	s.route("GET /v1/fit", "/v1/fit", s.handleFIT)
	s.route("GET /v1/nodes/{id}", "/v1/nodes/{id}", s.handleNode)
	s.route("GET /metrics", "/metrics", s.handleMetrics)
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry so the host process can
// attach its own series (checkpoint age, ingest rate, ...).
func (s *Server) Registry() *Registry { return s.reg }

// route installs a protected, instrumented handler. Inside out: the
// handler itself, the per-endpoint concurrency cap (innermost so a
// rejection is cheap), the request deadline, instrumentation, and the
// panic backstop outermost.
func (s *Server) route(pattern, path string, h http.HandlerFunc) {
	labels := `path="` + path + `"`
	reqs := s.reg.NewCounter("astrad_http_requests_total", labels, "HTTP requests served, by endpoint.")
	lat := s.reg.NewHistogram("astrad_http_request_seconds", labels, "HTTP request latency in seconds, by endpoint.", nil)
	rejected := s.reg.NewCounter("astrad_http_rejected_total", labels, "Requests refused with 503 at the per-endpoint concurrency cap.")
	panics := s.reg.NewCounter("astrad_http_panics_total", labels, "Handler panics recovered into 500s.")
	wrapped := limited(s.maxConcurrent, rejected, h)
	wrapped = deadlined(s.requestTimeout, wrapped)
	instrumented := func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		wrapped(w, r)
		d := time.Since(start)
		reqs.Inc()
		lat.Observe(d.Seconds())
		s.log.Debug("request", "path", r.URL.Path, "dur", d)
	}
	s.mux.HandleFunc(pattern, recovered(s, panics, instrumented))
}

// liveView fetches the engine view to serve and stamps staleness
// headers when it trails the engine (ingest busy: the stale view is
// served rather than blocking the reader behind the engine mutex).
func (s *Server) liveView(w http.ResponseWriter) *stream.View {
	v := s.e.LiveView()
	if lag := s.e.Seq() - v.Seq; lag > 0 {
		w.Header().Set("X-Astra-Staleness", time.Since(v.BuiltAt).String())
		w.Header().Set("X-Astra-Staleness-Records", strconv.FormatUint(lag, 10))
	}
	return v
}

// registerMetrics wires the engine's rolling aggregates — and, when
// available, the scanner's corruption accounting — into the registry.
// Values are read at scrape time, so /metrics always reflects the live
// engine without a copy pipeline.
func (s *Server) registerMetrics() {
	sum := func() stream.Summary { return s.e.Summary() }
	s.reg.NewCounterFunc("astrad_stream_records_total", "", "CE records ingested into the clustering engine.",
		func() float64 { return float64(sum().Records) })
	s.reg.NewCounterFunc("astrad_fault_escalations_total", "", "Observed per-bank fault-mode escalations.",
		func() float64 { return float64(sum().Escalations) })
	for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
		m := m
		s.reg.NewGaugeFunc("astrad_open_faults", `mode="`+m.String()+`"`, "Live fault count by observable mode.",
			func() float64 { return float64(sum().FaultsByMode[m]) })
	}
	s.reg.NewGaugeFunc("astrad_faulty_nodes", "", "Nodes with at least one live fault.",
		func() float64 { return float64(sum().FaultyNodes) })
	s.reg.NewGaugeFunc("astrad_window_ce_count", "", "CE records inside the rolling event-time window.",
		func() float64 { return float64(sum().WindowCount) })
	s.reg.NewGaugeFunc("astrad_window_ce_rate", "", "CE records per second over the rolling event-time window.",
		func() float64 { return sum().WindowRate })
	s.reg.NewCounterFunc("astrad_stream_shed_total", "", "CE records shed at admission and charged to the engine's degraded accounting.",
		func() float64 { return float64(s.e.Shed()) })
	s.reg.NewGaugeFunc("astrad_view_lag_records", "", "State changes the currently served view trails the engine by.",
		func() float64 {
			v := s.e.LiveView()
			return float64(s.e.Seq() - v.Seq)
		})

	if s.ovl != nil {
		ost := s.ovl
		queue := []struct {
			name, help string
			counter    bool
			get        func(overload.QueueStats) float64
		}{
			{"astrad_admission_offered_total", "Records offered to the admission queue.", true,
				func(q overload.QueueStats) float64 { return float64(q.Offered) }},
			{"astrad_admission_admitted_total", "Records admitted past the watermarks.", true,
				func(q overload.QueueStats) float64 { return float64(q.Admitted) }},
			{"astrad_admission_drained_total", "Records drained into the engine.", true,
				func(q overload.QueueStats) float64 { return float64(q.Drained) }},
			{"astrad_admission_shed_total", "Records shed (rejected plus evicted) under overload.", true,
				func(q overload.QueueStats) float64 { return float64(q.Shed) }},
			{"astrad_admission_saturations_total", "Times the queue crossed its high watermark into shedding.", true,
				func(q overload.QueueStats) float64 { return float64(q.Saturations) }},
			{"astrad_admission_queue_depth", "Records waiting in the admission queue.", false,
				func(q overload.QueueStats) float64 { return float64(q.Depth) }},
			{"astrad_admission_queue_capacity", "Admission queue capacity.", false,
				func(q overload.QueueStats) float64 { return float64(q.Capacity) }},
			{"astrad_admission_saturated", "1 while the queue is between its watermarks shedding load.", false,
				func(q overload.QueueStats) float64 {
					if q.Saturated {
						return 1
					}
					return 0
				}},
		}
		for _, m := range queue {
			get := m.get
			if m.counter {
				s.reg.NewCounterFunc(m.name, "", m.help, func() float64 { return get(ost().Queue) })
			} else {
				s.reg.NewGaugeFunc(m.name, "", m.help, func() float64 { return get(ost().Queue) })
			}
		}
		s.reg.NewGaugeFunc("astrad_checkpoint_breaker_state", "", "Checkpoint circuit breaker: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				switch ost().Breaker.State {
				case overload.BreakerOpen.String():
					return 2
				case overload.BreakerHalfOpen.String():
					return 1
				}
				return 0
			})
		s.reg.NewCounterFunc("astrad_checkpoint_breaker_opens_total", "", "Times the checkpoint breaker tripped open.",
			func() float64 { return float64(ost().Breaker.Opens) })
		s.reg.NewCounterFunc("astrad_checkpoint_breaker_rejected_total", "", "Checkpoint attempts refused while the breaker was open.",
			func() float64 { return float64(ost().Breaker.Rejected) })
	}

	if s.scanStats == nil {
		return
	}
	st := s.scanStats
	ingest := []struct {
		name, help string
		get        func(syslog.ScanStats) int
	}{
		{"astrad_ingest_lines_total", "Syslog lines consumed.", func(v syslog.ScanStats) int { return v.Lines }},
		{"astrad_ingest_ces_total", "Well-formed CE records scanned.", func(v syslog.ScanStats) int { return v.CEs }},
		{"astrad_ingest_malformed_total", "Record lines that failed to parse.", func(v syslog.ScanStats) int { return v.Malformed }},
		{"astrad_ingest_duplicated_total", "Record lines suppressed as relay duplicates.", func(v syslog.ScanStats) int { return v.Duplicated }},
		{"astrad_ingest_reordered_total", "Records resequenced within the reorder window.", func(v syslog.ScanStats) int { return v.Reordered }},
		{"astrad_ingest_dropped_out_of_order_total", "Records dropped as too late to resequence.", func(v syslog.ScanStats) int { return v.DroppedOutOfOrder }},
	}
	for _, m := range ingest {
		get := m.get
		s.reg.NewCounterFunc(m.name, "", m.help, func() float64 { return float64(get(st())) })
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// healthResponse is the /healthz body. Status is "ok", "degraded"
// (checkpoint breaker not closed, or served views older than the
// staleness bound, or records already shed), or "shedding" (the
// admission queue is actively between its watermarks refusing load).
// The response is always 200: health is reported, not enforced — load
// balancers act on the body, humans on the detail fields.
type healthResponse struct {
	Status  string `json:"status"`
	Records int    `json:"records"`
	Offered int    `json:"offered"`
	Shed    int    `json:"shed"`
	// StalenessSeconds is the age of the currently served view;
	// LagRecords is how many state changes it trails the engine by.
	StalenessSeconds float64 `json:"stalenessSeconds"`
	LagRecords       uint64  `json:"lagRecords"`
	// Overload is the admission layer's live accounting (absent when the
	// daemon runs without one, e.g. under tests).
	Overload *overload.Status `json:"overload,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := s.liveView(w)
	staleness := time.Since(v.BuiltAt)
	lag := s.e.Seq() - v.Seq
	if lag == 0 {
		staleness = 0 // current view: not stale, whatever its age
	}
	resp := healthResponse{
		Status:           "ok",
		Records:          v.Summary.Records,
		Offered:          v.Summary.Offered,
		Shed:             v.Summary.Shed,
		StalenessSeconds: staleness.Seconds(),
		LagRecords:       lag,
	}
	if staleness > s.maxStaleness || v.Summary.Degraded {
		resp.Status = "degraded"
	}
	if s.ovl != nil {
		st := s.ovl()
		resp.Overload = &st
		if st.Breaker.State != "" && st.Breaker.State != overload.BreakerClosed.String() {
			resp.Status = "degraded"
		}
		if st.Queue.Saturated {
			resp.Status = "shedding"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// faultView is one fault in operator-facing form: the node as its
// hostname (feedable back into /v1/nodes/{id}), the slot by name, the
// mode by its Fig-4a string, and the address in hex. The raw per-error
// index list is internal bookkeeping and is not exposed.
type faultView struct {
	Node    string    `json:"node"`
	Slot    string    `json:"slot"`
	Rank    int       `json:"rank"`
	Bank    int       `json:"bank"`
	Mode    string    `json:"mode"`
	Col     int       `json:"col"`
	Addr    string    `json:"addr"`
	Bit     int       `json:"bit"`
	NErrors int       `json:"nErrors"`
	First   time.Time `json:"first"`
	Last    time.Time `json:"last"`
}

func viewFault(f core.Fault) faultView {
	return faultView{
		Node:    f.Node.String(),
		Slot:    f.Slot.Name(),
		Rank:    f.Rank,
		Bank:    f.Bank,
		Mode:    f.Mode.String(),
		Col:     f.Col,
		Addr:    fmt.Sprintf("%#x", uint64(f.Addr)),
		Bit:     f.Bit,
		NErrors: f.NErrors,
		First:   f.First,
		Last:    f.Last,
	}
}

// faultsResponse is the /v1/faults payload.
type faultsResponse struct {
	Count  int         `json:"count"`
	Faults []faultView `json:"faults"`
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	faults := s.liveView(w).Faults
	if modeStr := r.URL.Query().Get("mode"); modeStr != "" {
		mode := core.FaultMode(-1)
		for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
			if m.String() == modeStr {
				mode = m
			}
		}
		if mode < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{"unknown mode " + modeStr})
			return
		}
		kept := faults[:0:0]
		for _, f := range faults {
			if f.Mode == mode {
				kept = append(kept, f)
			}
		}
		faults = kept
	}
	views := make([]faultView, len(faults))
	for i, f := range faults {
		views[i] = viewFault(f)
	}
	writeJSON(w, http.StatusOK, faultsResponse{Count: len(faults), Faults: views})
}

func (s *Server) handleBreakdown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.liveView(w).Summary)
}

// fitResponse pairs the rolling windowed estimate with the rate over the
// whole observed span.
type fitResponse struct {
	Windowed stream.WindowedFIT `json:"windowed"`
	// Overall is the FIT/DIMM analysis over the observed event-time span
	// (degraded when nothing has been observed yet).
	Overall     core.FaultRates `json:"overall"`
	SpanSeconds float64         `json:"spanSeconds"`
}

func (s *Server) handleFIT(w http.ResponseWriter, r *http.Request) {
	v := s.liveView(w)
	sum := v.Summary
	span := time.Duration(0)
	if !sum.First.IsZero() {
		span = sum.Last.Sub(sum.First)
	}
	writeJSON(w, http.StatusOK, fitResponse{
		Windowed:    v.FIT,
		Overall:     v.FaultRates(s.e.Config().DIMMs, span),
		SpanSeconds: span.Seconds(),
	})
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := topology.ParseNodeID(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	st, ok := s.liveView(w).NodeStatus(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"no records from node " + id.String()})
		return
	}
	views := make([]faultView, len(st.Faults))
	for i, f := range st.Faults {
		views[i] = viewFault(f)
	}
	writeJSON(w, http.StatusOK, nodeResponse{
		Node:        st.Node.String(),
		CEs:         st.CEs,
		First:       st.First,
		Last:        st.Last,
		WindowCount: st.WindowCount,
		WindowRate:  st.WindowRate,
		Faults:      views,
	})
}

// nodeResponse is stream.NodeStatus in operator-facing form: the node as
// its hostname, faults as faultView.
type nodeResponse struct {
	Node        string      `json:"node"`
	CEs         int         `json:"ces"`
	First       time.Time   `json:"first"`
	Last        time.Time   `json:"last"`
	WindowCount int         `json:"windowCount"`
	WindowRate  float64     `json:"windowRate"`
	Faults      []faultView `json:"faults"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}
