package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// Config assembles a Server.
type Config struct {
	// Engine is the live clustering engine to serve (required).
	Engine *stream.Engine
	// Logger receives structured request logs; nil means slog.Default().
	Logger *slog.Logger
	// ScanStats, when set, supplies the ingest path's accounting for
	// /metrics (lines, malformed, duplicates, reorder drops).
	ScanStats func() syslog.ScanStats
}

// Server exposes a stream.Engine over HTTP: JSON analyses under /v1,
// liveness under /healthz, and Prometheus-text metrics under /metrics.
// Every endpoint is instrumented with a per-endpoint request counter and
// latency histogram.
type Server struct {
	e         *stream.Engine
	log       *slog.Logger
	reg       *Registry
	scanStats func() syslog.ScanStats
	mux       *http.ServeMux
}

// New builds a server around an engine.
func New(cfg Config) *Server {
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	s := &Server{
		e:         cfg.Engine,
		log:       log,
		reg:       NewRegistry(),
		scanStats: cfg.ScanStats,
		mux:       http.NewServeMux(),
	}
	s.registerMetrics()
	s.route("GET /healthz", "/healthz", s.handleHealthz)
	s.route("GET /v1/faults", "/v1/faults", s.handleFaults)
	s.route("GET /v1/breakdown", "/v1/breakdown", s.handleBreakdown)
	s.route("GET /v1/fit", "/v1/fit", s.handleFIT)
	s.route("GET /v1/nodes/{id}", "/v1/nodes/{id}", s.handleNode)
	s.route("GET /metrics", "/metrics", s.handleMetrics)
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry so the host process can
// attach its own series (checkpoint age, ingest rate, ...).
func (s *Server) Registry() *Registry { return s.reg }

// route installs an instrumented handler: per-endpoint request counter,
// latency histogram, and a debug-level structured log line.
func (s *Server) route(pattern, path string, h http.HandlerFunc) {
	labels := `path="` + path + `"`
	reqs := s.reg.NewCounter("astrad_http_requests_total", labels, "HTTP requests served, by endpoint.")
	lat := s.reg.NewHistogram("astrad_http_request_seconds", labels, "HTTP request latency in seconds, by endpoint.", nil)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		d := time.Since(start)
		reqs.Inc()
		lat.Observe(d.Seconds())
		s.log.Debug("request", "path", r.URL.Path, "dur", d)
	})
}

// registerMetrics wires the engine's rolling aggregates — and, when
// available, the scanner's corruption accounting — into the registry.
// Values are read at scrape time, so /metrics always reflects the live
// engine without a copy pipeline.
func (s *Server) registerMetrics() {
	sum := func() stream.Summary { return s.e.Summary() }
	s.reg.NewCounterFunc("astrad_stream_records_total", "", "CE records ingested into the clustering engine.",
		func() float64 { return float64(sum().Records) })
	s.reg.NewCounterFunc("astrad_fault_escalations_total", "", "Observed per-bank fault-mode escalations.",
		func() float64 { return float64(sum().Escalations) })
	for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
		m := m
		s.reg.NewGaugeFunc("astrad_open_faults", `mode="`+m.String()+`"`, "Live fault count by observable mode.",
			func() float64 { return float64(sum().FaultsByMode[m]) })
	}
	s.reg.NewGaugeFunc("astrad_faulty_nodes", "", "Nodes with at least one live fault.",
		func() float64 { return float64(sum().FaultyNodes) })
	s.reg.NewGaugeFunc("astrad_window_ce_count", "", "CE records inside the rolling event-time window.",
		func() float64 { return float64(sum().WindowCount) })
	s.reg.NewGaugeFunc("astrad_window_ce_rate", "", "CE records per second over the rolling event-time window.",
		func() float64 { return sum().WindowRate })

	if s.scanStats == nil {
		return
	}
	st := s.scanStats
	ingest := []struct {
		name, help string
		get        func(syslog.ScanStats) int
	}{
		{"astrad_ingest_lines_total", "Syslog lines consumed.", func(v syslog.ScanStats) int { return v.Lines }},
		{"astrad_ingest_ces_total", "Well-formed CE records scanned.", func(v syslog.ScanStats) int { return v.CEs }},
		{"astrad_ingest_malformed_total", "Record lines that failed to parse.", func(v syslog.ScanStats) int { return v.Malformed }},
		{"astrad_ingest_duplicated_total", "Record lines suppressed as relay duplicates.", func(v syslog.ScanStats) int { return v.Duplicated }},
		{"astrad_ingest_reordered_total", "Records resequenced within the reorder window.", func(v syslog.ScanStats) int { return v.Reordered }},
		{"astrad_ingest_dropped_out_of_order_total", "Records dropped as too late to resequence.", func(v syslog.ScanStats) int { return v.DroppedOutOfOrder }},
	}
	for _, m := range ingest {
		get := m.get
		s.reg.NewCounterFunc(m.name, "", m.help, func() float64 { return float64(get(st())) })
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Records int    `json:"records"`
	}{"ok", s.e.Summary().Records})
}

// faultView is one fault in operator-facing form: the node as its
// hostname (feedable back into /v1/nodes/{id}), the slot by name, the
// mode by its Fig-4a string, and the address in hex. The raw per-error
// index list is internal bookkeeping and is not exposed.
type faultView struct {
	Node    string    `json:"node"`
	Slot    string    `json:"slot"`
	Rank    int       `json:"rank"`
	Bank    int       `json:"bank"`
	Mode    string    `json:"mode"`
	Col     int       `json:"col"`
	Addr    string    `json:"addr"`
	Bit     int       `json:"bit"`
	NErrors int       `json:"nErrors"`
	First   time.Time `json:"first"`
	Last    time.Time `json:"last"`
}

func viewFault(f core.Fault) faultView {
	return faultView{
		Node:    f.Node.String(),
		Slot:    f.Slot.Name(),
		Rank:    f.Rank,
		Bank:    f.Bank,
		Mode:    f.Mode.String(),
		Col:     f.Col,
		Addr:    fmt.Sprintf("%#x", uint64(f.Addr)),
		Bit:     f.Bit,
		NErrors: f.NErrors,
		First:   f.First,
		Last:    f.Last,
	}
}

// faultsResponse is the /v1/faults payload.
type faultsResponse struct {
	Count  int         `json:"count"`
	Faults []faultView `json:"faults"`
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	faults := s.e.Snapshot()
	if modeStr := r.URL.Query().Get("mode"); modeStr != "" {
		mode := core.FaultMode(-1)
		for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
			if m.String() == modeStr {
				mode = m
			}
		}
		if mode < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{"unknown mode " + modeStr})
			return
		}
		kept := faults[:0:0]
		for _, f := range faults {
			if f.Mode == mode {
				kept = append(kept, f)
			}
		}
		faults = kept
	}
	views := make([]faultView, len(faults))
	for i, f := range faults {
		views[i] = viewFault(f)
	}
	writeJSON(w, http.StatusOK, faultsResponse{Count: len(faults), Faults: views})
}

func (s *Server) handleBreakdown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.e.Summary())
}

// fitResponse pairs the rolling windowed estimate with the rate over the
// whole observed span.
type fitResponse struct {
	Windowed stream.WindowedFIT `json:"windowed"`
	// Overall is the FIT/DIMM analysis over the observed event-time span
	// (degraded when nothing has been observed yet).
	Overall     core.FaultRates `json:"overall"`
	SpanSeconds float64         `json:"spanSeconds"`
}

func (s *Server) handleFIT(w http.ResponseWriter, r *http.Request) {
	sum := s.e.Summary()
	span := time.Duration(0)
	if !sum.First.IsZero() {
		span = sum.Last.Sub(sum.First)
	}
	writeJSON(w, http.StatusOK, fitResponse{
		Windowed:    s.e.WindowedFIT(),
		Overall:     s.e.FaultRates(span),
		SpanSeconds: span.Seconds(),
	})
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := topology.ParseNodeID(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	st, ok := s.e.NodeStatus(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"no records from node " + id.String()})
		return
	}
	views := make([]faultView, len(st.Faults))
	for i, f := range st.Faults {
		views[i] = viewFault(f)
	}
	writeJSON(w, http.StatusOK, nodeResponse{
		Node:        st.Node.String(),
		CEs:         st.CEs,
		First:       st.First,
		Last:        st.Last,
		WindowCount: st.WindowCount,
		WindowRate:  st.WindowRate,
		Faults:      views,
	})
}

// nodeResponse is stream.NodeStatus in operator-facing form: the node as
// its hostname, faults as faultView.
type nodeResponse struct {
	Node        string      `json:"node"`
	CEs         int         `json:"ces"`
	First       time.Time   `json:"first"`
	Last        time.Time   `json:"last"`
	WindowCount int         `json:"windowCount"`
	WindowRate  float64     `json:"windowRate"`
	Faults      []faultView `json:"faults"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}
