package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/overload"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/topology"
)

// newOverloadServer serves the fixture with a controllable overload
// status, as astrad wires it in production.
func newOverloadServer(t *testing.T, st *overload.Status) *httptest.Server {
	t.Helper()
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{
		Engine:   e,
		Overload: func() overload.Status { return *st },
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestHealthzOverloadStatus pins the health state machine: ok while the
// queue is calm, shedding while it is saturated, degraded while the
// checkpoint breaker is not closed — and always 200, because health is
// reported, not enforced.
func TestHealthzOverloadStatus(t *testing.T) {
	st := &overload.Status{
		Queue:   overload.QueueStats{Capacity: 128, High: 128, Low: 64},
		Breaker: overload.BreakerStats{State: overload.BreakerClosed.String()},
	}
	ts := newOverloadServer(t, st)

	var h struct {
		Status   string `json:"status"`
		Records  int    `json:"records"`
		Overload *struct {
			Queue overload.QueueStats `json:"queue"`
		} `json:"overload"`
	}
	get(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("calm daemon status = %q, want ok", h.Status)
	}
	if h.Overload == nil || h.Overload.Queue.Capacity != 128 {
		t.Fatalf("healthz did not carry the overload accounting: %+v", h.Overload)
	}

	st.Breaker.State = overload.BreakerOpen.String()
	get(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "degraded" {
		t.Fatalf("open breaker status = %q, want degraded", h.Status)
	}

	// Saturation outranks the breaker: actively refusing ingest is the
	// louder signal.
	st.Queue.Saturated = true
	st.Queue.Depth = 128
	get(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "shedding" {
		t.Fatalf("saturated queue status = %q, want shedding", h.Status)
	}

	st.Queue.Saturated = false
	st.Breaker.State = overload.BreakerClosed.String()
	get(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("recovered daemon status = %q, want ok", h.Status)
	}
}

// TestHealthzShedDegraded: once records have been shed the daemon's
// answers undercount and /healthz must say so even after the queue calms
// down.
func TestHealthzShedDegraded(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{})
	e.IngestBatch(ds.CERecords)
	e.NoteShed(5)
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var h struct {
		Status  string `json:"status"`
		Records int    `json:"records"`
		Offered int    `json:"offered"`
		Shed    int    `json:"shed"`
	}
	get(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "degraded" {
		t.Fatalf("shed daemon status = %q, want degraded", h.Status)
	}
	if h.Shed != 5 || h.Offered != h.Records+5 {
		t.Fatalf("healthz books do not balance: %+v", h)
	}
}

// TestInputHardening: malformed query strings, node IDs, and oversized
// paths must come back as 4xx — never a 500, never a panic. The daemon's
// API faces dashboards and curl-wielding operators mid-incident; bad
// input is routine, not exceptional.
func TestInputHardening(t *testing.T) {
	_, ts := newTestServer(t)

	cases := []struct {
		name, path string
		wantMax    int // highest acceptable status code
	}{
		{"mode garbage", "/v1/faults?mode=%00%ff", 499},
		{"mode oversized", "/v1/faults?mode=" + strings.Repeat("x", 64<<10), 499},
		{"mode unicode", "/v1/faults?mode=" + url.QueryEscape("единица-бита"), 499},
		{"mode almost valid", "/v1/faults?mode=single-bit%20", 499},
		{"node garbage", "/v1/nodes/pwned", 499},
		{"node empty-ish", "/v1/nodes/%20", 499},
		{"node oversized", "/v1/nodes/" + strings.Repeat("a", 32<<10), 499},
		{"node unicode", "/v1/nodes/" + url.PathEscape("astra-r01c01nλ"), 499},
		{"node negative", "/v1/nodes/astra-r-1c01n1", 499},
		{"node out of range", "/v1/nodes/astra-r99c99n9", 499},
		{"node numeric overflow", "/v1/nodes/astra-r99999999999999999999c01n1", 499},
		{"node null bytes", "/v1/nodes/astra%00-r01c01n1", 499},
		{"unknown path", "/v1/nope", 499},
		{"root", "/", 499},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 400 || resp.StatusCode > tc.wantMax {
				t.Fatalf("GET %s = %d, want 4xx: %s", tc.path, resp.StatusCode, body)
			}
		})
	}
}

// FuzzNodePath hammers the node endpoint with arbitrary IDs; any 5xx is
// a bug (the panic backstop would mask one as a 500, so 500s fail too).
func FuzzNodePath(f *testing.F) {
	ds := fixture(f)
	e := stream.New(stream.Config{})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{Engine: e})
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(ts.Close)

	f.Add("astra-r01c01n1")
	f.Add("astra-r123c01n1")
	f.Add("")
	f.Add("..")
	f.Add("astra-r01c01n1/../../etc/passwd")
	f.Add(strings.Repeat("9", 4096))
	f.Add("astra-r\x00c01n1")
	f.Fuzz(func(t *testing.T, id string) {
		resp, err := http.Get(ts.URL + "/v1/nodes/" + url.PathEscape(id))
		if err != nil {
			t.Skip() // URL the client itself refuses to send
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("GET /v1/nodes/%q = %d", id, resp.StatusCode)
		}
	})
}
