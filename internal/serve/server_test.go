package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixErr  error
)

func fixture(t testing.TB) *dataset.Dataset {
	t.Helper()
	fixOnce.Do(func() {
		cfg := dataset.DefaultConfig(53)
		cfg.Nodes = 32
		fixDS, fixErr = dataset.Build(context.Background(), cfg)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDS
}

// newTestServer ingests the fixture into an engine and serves it.
func newTestServer(t *testing.T) (*stream.Engine, *httptest.Server) {
	t.Helper()
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 32 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)
	s := serve.New(serve.Config{
		Engine: e,
		ScanStats: func() syslog.ScanStats {
			return syslog.ScanStats{Lines: 12345, CEs: len(ds.CERecords), Malformed: 7}
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return e, ts
}

func get(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	e, ts := newTestServer(t)
	var h struct {
		Status  string `json:"status"`
		Records int    `json:"records"`
	}
	get(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Records != e.Summary().Records {
		t.Fatalf("healthz = %+v, want ok with %d records", h, e.Summary().Records)
	}
}

func TestServerFaults(t *testing.T) {
	e, ts := newTestServer(t)
	want := e.Snapshot()

	type faultJSON struct {
		Node    string `json:"node"`
		Slot    string `json:"slot"`
		Mode    string `json:"mode"`
		Addr    string `json:"addr"`
		NErrors int    `json:"nErrors"`
	}
	var all struct {
		Count  int         `json:"count"`
		Faults []faultJSON `json:"faults"`
	}
	get(t, ts.URL+"/v1/faults", http.StatusOK, &all)
	if all.Count != len(want) || len(all.Faults) != len(want) {
		t.Fatalf("faults count = %d/%d, want %d", all.Count, len(all.Faults), len(want))
	}
	// The payload is operator-facing: hostnames and mode names, not raw
	// Go enum values, and every node name feeds back into /v1/nodes/{id}.
	for i, f := range all.Faults {
		if f.Node != want[i].Node.String() || f.Slot != want[i].Slot.Name() || f.Mode != want[i].Mode.String() {
			t.Fatalf("fault[%d] view = %+v, want %v/%v/%v", i, f, want[i].Node, want[i].Slot, want[i].Mode)
		}
		if !strings.HasPrefix(f.Addr, "0x") {
			t.Fatalf("fault[%d] addr %q not hex-rendered", i, f.Addr)
		}
		if _, err := topology.ParseNodeID(f.Node); err != nil {
			t.Fatalf("fault[%d] node %q does not round-trip: %v", i, f.Node, err)
		}
	}

	wantBits := 0
	for _, f := range want {
		if f.Mode == core.ModeSingleBit {
			wantBits++
		}
	}
	var bits struct {
		Count  int         `json:"count"`
		Faults []faultJSON `json:"faults"`
	}
	get(t, ts.URL+"/v1/faults?mode=single-bit", http.StatusOK, &bits)
	if bits.Count != wantBits {
		t.Fatalf("single-bit count = %d, want %d", bits.Count, wantBits)
	}
	for _, f := range bits.Faults {
		if f.Mode != "single-bit" {
			t.Fatalf("mode filter leaked a %v fault", f.Mode)
		}
	}
	get(t, ts.URL+"/v1/faults?mode=nonsense", http.StatusBadRequest, nil)
}

func TestServerBreakdownAndFIT(t *testing.T) {
	e, ts := newTestServer(t)
	var sum stream.Summary
	get(t, ts.URL+"/v1/breakdown", http.StatusOK, &sum)
	want := e.Summary()
	if sum.Records != want.Records || sum.Faults != want.Faults || sum.FaultsByMode != want.FaultsByMode {
		t.Fatalf("breakdown = %+v, want %+v", sum, want)
	}

	var fit struct {
		Windowed    stream.WindowedFIT `json:"windowed"`
		Overall     core.FaultRates    `json:"overall"`
		SpanSeconds float64            `json:"spanSeconds"`
	}
	get(t, ts.URL+"/v1/fit", http.StatusOK, &fit)
	if fit.Overall.Degraded {
		t.Fatal("overall FIT degraded over a faulty fixture")
	}
	if fit.SpanSeconds <= 0 {
		t.Fatalf("spanSeconds = %v, want > 0", fit.SpanSeconds)
	}
	if fit.Windowed != e.WindowedFIT() {
		t.Fatalf("windowed FIT = %+v, want %+v", fit.Windowed, e.WindowedFIT())
	}
}

func TestServerNodes(t *testing.T) {
	e, ts := newTestServer(t)
	ds := fixture(t)

	seen := map[topology.NodeID]bool{}
	for _, r := range ds.CERecords {
		seen[r.Node] = true
	}
	known := ds.CERecords[0].Node
	var st struct {
		Node   string `json:"node"`
		CEs    int    `json:"ces"`
		Faults []struct {
			Mode string `json:"mode"`
		} `json:"faults"`
	}
	get(t, ts.URL+"/v1/nodes/"+known.String(), http.StatusOK, &st)
	wantSt, _ := e.NodeStatus(known)
	if st.Node != known.String() || st.CEs != wantSt.CEs || len(st.Faults) != len(wantSt.Faults) {
		t.Fatalf("node status = %+v, want %+v", st, wantSt)
	}

	var silent topology.NodeID = -1
	for id := topology.NodeID(0); id < topology.Nodes; id++ {
		if !seen[id] {
			silent = id
			break
		}
	}
	if silent < 0 {
		t.Fatal("fixture covers every node; no silent node to probe")
	}
	get(t, ts.URL+"/v1/nodes/"+silent.String(), http.StatusNotFound, nil)
	get(t, ts.URL+"/v1/nodes/not-a-node", http.StatusBadRequest, nil)
}

func TestServerMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/faults", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/faults = %d, want 405", resp.StatusCode)
	}
}

func TestServerMetrics(t *testing.T) {
	e, ts := newTestServer(t)
	// Generate some traffic so the per-endpoint series are non-zero.
	get(t, ts.URL+"/healthz", http.StatusOK, nil)
	get(t, ts.URL+"/v1/faults", http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	sum := e.Summary()
	for _, want := range []string{
		"# TYPE astrad_stream_records_total counter",
		"# TYPE astrad_open_faults gauge",
		"# TYPE astrad_http_request_seconds histogram",
		`astrad_open_faults{mode="single-bit"}`,
		`astrad_http_requests_total{path="/healthz"}`,
		`astrad_http_request_seconds_bucket{path="/v1/faults",le="+Inf"}`,
		"astrad_ingest_lines_total 12345",
		"astrad_ingest_malformed_total 7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The scrape-time counters must reflect the engine.
	var recLine string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "astrad_stream_records_total ") {
			recLine = line
		}
	}
	if want := "astrad_stream_records_total " + itoa(sum.Records); recLine != want {
		t.Errorf("records series = %q, want %q", recLine, want)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
