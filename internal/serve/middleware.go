package serve

import (
	"context"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// Overload-protection defaults. They are deliberately conservative: a
// telemetry daemon's API must stay answerable during fleet-wide
// incidents, which is exactly when request herds arrive.
const (
	// DefaultMaxConcurrent is the per-endpoint in-flight request cap.
	DefaultMaxConcurrent = 64
	// DefaultRequestTimeout bounds one request end to end, including
	// writing the response to a slow client.
	DefaultRequestTimeout = 10 * time.Second
	// DefaultMaxStaleness is the served-view age beyond which /healthz
	// reports the daemon degraded.
	DefaultMaxStaleness = 30 * time.Second
	// DefaultRetryAfter is the Retry-After hint on 503 responses.
	DefaultRetryAfter = 1 * time.Second
)

// limited wraps h with a per-endpoint concurrency cap: when cap
// requests are already in flight the request is rejected immediately
// with 503 + Retry-After instead of queueing — shedding read load at
// admission, the HTTP-side mirror of the ingest queue's policy. A
// saturated endpoint therefore degrades to fast, explicit refusals
// rather than a convoy of slow successes, and one herd (say, a
// dashboard fleet re-rendering /v1/faults) cannot starve the others:
// every endpoint has its own semaphore.
func limited(capacity int, rejected *Counter, h http.HandlerFunc) http.HandlerFunc {
	if capacity <= 0 {
		return h
	}
	sem := make(chan struct{}, capacity)
	retryAfter := strconv.Itoa(int(DefaultRetryAfter / time.Second))
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
		default:
			rejected.Inc()
			w.Header().Set("Retry-After", retryAfter)
			writeJSON(w, http.StatusServiceUnavailable,
				errorBody{"saturated: concurrency limit reached; retry later"})
			return
		}
		defer func() { <-sem }()
		h(w, r)
	}
}

// deadlined wraps h with a per-request deadline: the request context is
// cancelled and — where the ResponseWriter supports it — the
// connection's write deadline is set, so a slow-reading client cannot
// pin a handler (or its response buffer) forever. Handlers observe the
// context; the write deadline backstops the client side.
func deadlined(d time.Duration, h http.HandlerFunc) http.HandlerFunc {
	if d <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		// Best effort: httptest recorders and some middlewares do not
		// support write deadlines; the context still bounds the handler.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(d))
		h(w, r.WithContext(ctx))
	}
}

// recovered is the outermost backstop: a panicking handler becomes a
// logged 500 on that one request instead of a dead daemon. Malformed
// input must never get this far — the input-hardening tests pin 4xx —
// but an overloaded monitoring pipeline must not die of its own bugs
// mid-incident either.
func recovered(s *Server, panics *Counter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				panics.Inc()
				s.log.Error("handler panic", "path", r.URL.Path, "panic", rec,
					"stack", string(debug.Stack()))
				// The header may already be out; this is best effort.
				writeJSON(w, http.StatusInternalServerError, errorBody{"internal error"})
			}
		}()
		h(w, r)
	}
}
