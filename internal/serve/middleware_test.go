package serve

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestLimitedRejectsAtCapacity: with one slot held by a blocking
// handler, the next request is refused immediately — 503, Retry-After,
// and a JSON error body — rather than queueing behind it.
func TestLimitedRejectsAtCapacity(t *testing.T) {
	reg := NewRegistry()
	rejected := reg.NewCounter("test_rejected_total", "", "")
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	h := limited(1, rejected, func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(entered) })
		<-release
		w.WriteHeader(http.StatusOK)
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		h(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	<-entered

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated endpoint = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("503 body = %q, want JSON error", rec.Body.String())
	}
	if rejected.Value() != 1 {
		t.Fatalf("rejected counter = %v, want 1", rejected.Value())
	}

	close(release)
	<-done
	// The slot is free again: the next request goes through.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("freed endpoint = %d, want 200", rec.Code)
	}
}

// TestLimitedDisabled: non-positive capacity turns the cap off entirely.
func TestLimitedDisabled(t *testing.T) {
	reg := NewRegistry()
	h := limited(-1, reg.NewCounter("x_total", "", ""), func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("uncapped handler = %d, want passthrough", rec.Code)
	}
}

// TestDeadlinedContext: the wrapped handler sees a context that expires,
// so long work can notice the request is no longer worth finishing.
func TestDeadlinedContext(t *testing.T) {
	h := deadlined(20*time.Millisecond, func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			t.Error("handler context has no deadline")
		}
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
			t.Error("request context never expired")
		}
		w.WriteHeader(http.StatusGatewayTimeout)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("handler did not run to completion: %d", rec.Code)
	}

	// Disabled: no deadline installed.
	h = deadlined(0, func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Error("disabled deadline still set one")
		}
	})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
}

// TestRecoveredPanic: a panicking handler becomes a counted, logged 500
// on that request; the server survives.
func TestRecoveredPanic(t *testing.T) {
	reg := NewRegistry()
	panics := reg.NewCounter("test_panics_total", "", "")
	s := &Server{log: slog.New(slog.NewTextHandler(noopWriter{}, nil))}
	h := recovered(s, panics, func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if panics.Value() != 1 {
		t.Fatalf("panics counter = %v, want 1", panics.Value())
	}
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestDeadlinedHonorsParentContext: an already-cancelled request is not
// resurrected by the middleware's own timeout.
func TestDeadlinedHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := deadlined(time.Hour, func(w http.ResponseWriter, r *http.Request) {
		if r.Context().Err() == nil {
			t.Error("cancelled parent context lost by deadline middleware")
		}
	})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil).WithContext(ctx))
}
