package faultmodel

import (
	"context"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// smallConfig is a reduced-scale configuration for fast tests; per-node
// statistics are scale-invariant.
func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Nodes = 600
	return cfg
}

func mustGenerate(t *testing.T, cfg Config) *Population {
	t.Helper()
	pop, err := Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := map[string]func(*Config){
		"nodes-zero":      func(c *Config) { c.Nodes = 0 },
		"nodes-huge":      func(c *Config) { c.Nodes = topology.Nodes + 1 },
		"window-empty":    func(c *Config) { c.End = c.Start },
		"frac-negative":   func(c *Config) { c.FaultyNodeFrac = -0.1 },
		"node-alpha":      func(c *Config) { c.NodeAlpha = 1 },
		"err-alpha":       func(c *Config) { c.ErrAlpha = 0.5 },
		"pone":            func(c *Config) { c.POneError = 1.5 },
		"row-skew":        func(c *Config) { c.RowSkew = 0 },
		"due-rate":        func(c *Config) { c.DUEsPerDIMMYear = -1 },
		"mode-negative":   func(c *Config) { c.ModeWeights[SingleBit] = -1 },
		"mode-zero":       func(c *Config) { c.ModeWeights = [NumModes]float64{} },
		"slot-negative":   func(c *Config) { c.SlotWeights[0] = -1 },
		"slot-unbalanced": func(c *Config) { c.SlotWeights[0] += 3 },
		"slot-socket-zero": func(c *Config) {
			for i := 8; i < 16; i++ {
				c.SlotWeights[i] = 0
			}
		},
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, smallConfig(5))
	b := mustGenerate(t, smallConfig(5))
	if len(a.Faults) != len(b.Faults) || len(a.CEs) != len(b.CEs) || len(a.DUEs) != len(b.DUEs) {
		t.Fatal("same-seed populations differ in size")
	}
	for i := range a.CEs {
		if a.CEs[i] != b.CEs[i] {
			t.Fatalf("CE %d differs", i)
		}
	}
	c := mustGenerate(t, smallConfig(6))
	if len(a.CEs) == len(c.CEs) && len(a.Faults) == len(c.Faults) && a.CEs[0] == c.CEs[0] {
		t.Error("different seeds produced identical output")
	}
}

func TestFaultyNodeFraction(t *testing.T) {
	pop := mustGenerate(t, smallConfig(7))
	faulty := map[topology.NodeID]bool{}
	for _, f := range pop.Faults {
		faulty[f.Anchor.Node] = true
	}
	frac := float64(len(faulty)) / float64(pop.Config.Nodes)
	if math.Abs(frac-0.391) > 0.07 {
		t.Errorf("faulty node fraction = %v, want ~0.391", frac)
	}
}

func TestErrorsPerFaultDistribution(t *testing.T) {
	pop := mustGenerate(t, smallConfig(8))
	counts := make([]int, len(pop.Faults))
	maxN := 0
	for i, f := range pop.Faults {
		counts[i] = f.NErrors
		if f.NErrors > maxN {
			maxN = f.NErrors
		}
	}
	sort.Ints(counts)
	if med := counts[len(counts)/2]; med != 1 {
		t.Errorf("median errors/fault = %d, want 1 (Fig 4b)", med)
	}
	if maxN > pop.Config.MaxErrorsPerFault {
		t.Errorf("max errors/fault = %d exceeds cap", maxN)
	}
	mean := float64(len(pop.CEs)) / float64(len(pop.Faults))
	if mean < 150 || mean > 3000 {
		t.Errorf("mean errors/fault = %v, want a heavy tail (~600-900)", mean)
	}
}

func TestEventIntegrity(t *testing.T) {
	pop := mustGenerate(t, smallConfig(9))
	start := simtime.MinuteOf(pop.Config.Start)
	end := simtime.MinuteOf(pop.Config.End)
	prev := simtime.Minute(math.MinInt64)
	for i, e := range pop.CEs {
		if e.Minute < prev {
			t.Fatalf("CE %d out of order", i)
		}
		prev = e.Minute
		if e.Minute < start || e.Minute > end {
			t.Fatalf("CE %d time %v outside window", i, e.Minute)
		}
		if int(e.Node) >= pop.Config.Nodes {
			t.Fatalf("CE %d node %d out of range", i, e.Node)
		}
		if !e.Addr.Valid() {
			t.Fatalf("CE %d invalid address", i)
		}
		if e.Bit >= topology.CodeBitsPerWord {
			t.Fatalf("CE %d bit %d out of range", i, e.Bit)
		}
		if int(e.FaultID) < 0 || int(e.FaultID) >= len(pop.Faults) {
			t.Fatalf("CE %d fault ID %d out of range", i, e.FaultID)
		}
	}
}

func TestEventsRespectFaultFootprint(t *testing.T) {
	pop := mustGenerate(t, smallConfig(10))
	for _, e := range pop.CEs {
		f := pop.Faults[e.FaultID]
		cell, err := e.Cell()
		if err != nil {
			t.Fatalf("Cell: %v", err)
		}
		if cell.Node != f.Anchor.Node || cell.Slot != f.Anchor.Slot ||
			cell.Rank != f.Anchor.Rank || cell.Bank != f.Anchor.Bank {
			t.Fatalf("error escaped fault bank footprint: %v vs %v", cell, f.Anchor)
		}
		switch f.Mode {
		case SingleBit:
			if cell != f.Anchor || int(e.Bit) != f.Bit {
				t.Fatalf("single-bit fault error moved: %v bit %d vs %v bit %d", cell, e.Bit, f.Anchor, f.Bit)
			}
		case SingleWord:
			if cell != f.Anchor {
				t.Fatalf("single-word fault error left the word: %v vs %v", cell, f.Anchor)
			}
		case SingleColumn:
			if cell.Col != f.Anchor.Col {
				t.Fatalf("single-column fault error changed column")
			}
		case SingleRow:
			if cell.Row != f.Anchor.Row {
				t.Fatalf("single-row fault error changed row")
			}
		case SingleBank:
			// bank equality already checked above
		}
	}
}

func TestModeMix(t *testing.T) {
	pop := mustGenerate(t, smallConfig(11))
	counts := make([]int, NumModes)
	for _, f := range pop.Faults {
		counts[f.Mode]++
	}
	total := float64(len(pop.Faults))
	for m := Mode(0); m < NumModes; m++ {
		got := float64(counts[m]) / total
		want := pop.Config.ModeWeights[m]
		if math.Abs(got-want) > 0.05 {
			t.Errorf("mode %v fraction = %v, want ~%v", m, got, want)
		}
	}
}

func TestSocketBankColumnUniformity(t *testing.T) {
	pop := mustGenerate(t, smallConfig(12))
	sockets := make([]int, topology.SocketsPerNode)
	banks := make([]int, topology.BanksPerRank)
	for _, f := range pop.Faults {
		sockets[f.Anchor.Slot.Socket()]++
		banks[f.Anchor.Bank]++
	}
	if cs, err := stats.ChiSquareUniform(sockets); err != nil || cs.PValue < 0.01 {
		t.Errorf("socket fault distribution rejected as uniform: %+v err=%v", cs, err)
	}
	if cs, err := stats.ChiSquareUniform(banks); err != nil || cs.PValue < 0.001 {
		t.Errorf("bank fault distribution rejected as uniform: %+v err=%v", cs, err)
	}
}

func TestRankAndSlotSkew(t *testing.T) {
	pop := mustGenerate(t, smallConfig(13))
	ranks := make([]int, topology.RanksPerDIMM)
	slots := make([]int, topology.SlotsPerNode)
	for _, f := range pop.Faults {
		ranks[f.Anchor.Rank]++
		slots[f.Anchor.Slot]++
	}
	if ranks[0] <= ranks[1] {
		t.Errorf("rank 0 faults (%d) should exceed rank 1 (%d) (Fig 7b)", ranks[0], ranks[1])
	}
	mean := float64(len(pop.Faults)) / topology.SlotsPerNode
	for _, hot := range []string{"J", "E", "I", "P"} {
		s, _ := topology.ParseSlot(hot)
		if float64(slots[s]) < mean {
			t.Errorf("hot slot %s has %d faults, below mean %.0f", hot, slots[s], mean)
		}
	}
	for _, cold := range []string{"A", "K", "L", "M", "N"} {
		s, _ := topology.ParseSlot(cold)
		if float64(slots[s]) > mean {
			t.Errorf("cold slot %s has %d faults, above mean %.0f", cold, slots[s], mean)
		}
	}
}

func TestErrorTimesFrontLoaded(t *testing.T) {
	pop := mustGenerate(t, smallConfig(14))
	// Within each large fault, error times should lean toward the fault
	// start (decaying intensity -> Fig 4a downward trend).
	checked := 0
	for _, f := range pop.Faults {
		if f.NErrors < 1000 {
			continue
		}
		var sum float64
		var n int
		for _, e := range pop.CEs {
			if int(e.FaultID) == f.ID {
				sum += float64(e.Minute - f.Start)
				n++
			}
		}
		end := simtime.MinuteOf(pop.Config.End)
		meanFrac := sum / float64(n) / float64(end-f.Start)
		if meanFrac >= 0.5 {
			t.Errorf("fault %d error times not front-loaded: mean frac %v", f.ID, meanFrac)
		}
		checked++
		if checked >= 3 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no large faults in this draw")
	}
}

func TestDUEGeneration(t *testing.T) {
	cfg := smallConfig(15)
	cfg.DUEsPerDIMMYear = 2 // raise rate so the test has statistics
	pop := mustGenerate(t, cfg)
	years := cfg.End.Sub(cfg.Start).Hours() / simtime.HoursPerYear
	want := 2 * float64(cfg.Nodes*topology.SlotsPerNode) * years
	got := float64(len(pop.DUEs))
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("DUE count = %v, want ~%v", got, want)
	}
	causes := map[DUECause]int{}
	for i, d := range pop.DUEs {
		if len(d.Bits) < 2 {
			t.Fatalf("DUE %d has %d bits, want >= 2", i, len(d.Bits))
		}
		if d.Bits[0] == d.Bits[1] {
			t.Fatalf("DUE %d has duplicate bits", i)
		}
		if !d.Addr.Valid() || int(d.Node) >= cfg.Nodes {
			t.Fatalf("DUE %d has invalid coordinates", i)
		}
		causes[d.Cause]++
		if i > 0 && pop.DUEs[i-1].Minute > d.Minute {
			t.Fatalf("DUEs out of order at %d", i)
		}
	}
	if causes[CauseUncorrectableECC] == 0 || causes[CauseMachineCheck] == 0 {
		t.Errorf("expected both DUE causes, got %v", causes)
	}
}

func TestFullScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation skipped in -short mode")
	}
	pop := mustGenerate(t, DefaultConfig(1))

	// Total CE volume: paper reports 4,369,731 over 237 days.
	if n := len(pop.CEs); n < 2_000_000 || n > 9_000_000 {
		t.Errorf("total CEs = %d, want ~4.4M", n)
	}
	// Nodes with >= 1 CE: paper reports 1013 of 2592.
	nodeErrs := map[topology.NodeID]int{}
	for _, e := range pop.CEs {
		nodeErrs[e.Node]++
	}
	if n := len(nodeErrs); n < 800 || n > 1250 {
		t.Errorf("nodes with CEs = %d, want ~1013", n)
	}
	// Concentration (Fig 5b): top 8 nodes > 50%, top 2% of nodes ~90%.
	perNode := make([]float64, 0, len(nodeErrs))
	for _, c := range nodeErrs {
		perNode = append(perNode, float64(c))
	}
	if share := stats.TopShare(perNode, 8); share < 0.35 {
		t.Errorf("top-8 node share = %v, want > 0.5-ish", share)
	}
	if share := stats.TopShare(perNode, topology.Nodes*2/100); share < 0.75 {
		t.Errorf("top-2%% node share = %v, want ~0.9", share)
	}
	// Faults per node follow a power law (Fig 5a).
	faultsPerNode := map[topology.NodeID]int{}
	for _, f := range pop.Faults {
		faultsPerNode[f.Anchor.Node]++
	}
	var counts []int
	for _, c := range faultsPerNode {
		counts = append(counts, c)
	}
	fit, err := stats.FitPowerLaw(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.2 || fit.Alpha > 2.5 {
		t.Errorf("node fault power law alpha = %v", fit.Alpha)
	}
	// Average CEs per node per day ~ 6 (paper); allow wide band.
	days := pop.Config.End.Sub(pop.Config.Start).Hours() / 24
	perNodeDay := float64(len(pop.CEs)) / float64(topology.Nodes) / days
	if perNodeDay < 3 || perNodeDay > 15 {
		t.Errorf("CEs per node per day = %v, want ~6", perNodeDay)
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Nodes = 100
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Generate(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGenerateParallelMatchesSerial(t *testing.T) {
	serialCfg := smallConfig(7)
	serialCfg.Parallelism = 1
	parCfg := smallConfig(7)
	parCfg.Parallelism = 8

	serial := mustGenerate(t, serialCfg)
	par := mustGenerate(t, parCfg)

	if len(serial.Faults) != len(par.Faults) {
		t.Fatalf("fault counts differ: serial %d, parallel %d", len(serial.Faults), len(par.Faults))
	}
	for i := range serial.Faults {
		if serial.Faults[i] != par.Faults[i] {
			t.Fatalf("fault %d differs:\nserial   %+v\nparallel %+v", i, serial.Faults[i], par.Faults[i])
		}
	}
	if len(serial.CEs) != len(par.CEs) {
		t.Fatalf("CE counts differ: serial %d, parallel %d", len(serial.CEs), len(par.CEs))
	}
	for i := range serial.CEs {
		if serial.CEs[i] != par.CEs[i] {
			t.Fatalf("CE %d differs:\nserial   %+v\nparallel %+v", i, serial.CEs[i], par.CEs[i])
		}
	}
	if len(serial.DUEs) != len(par.DUEs) {
		t.Fatalf("DUE counts differ: serial %d, parallel %d", len(serial.DUEs), len(par.DUEs))
	}
	for i := range serial.DUEs {
		if !reflect.DeepEqual(serial.DUEs[i], par.DUEs[i]) {
			t.Fatalf("DUE %d differs", i)
		}
	}
}
