package faultmodel

import (
	"context"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Generate produces a ground-truth fault population, its correctable-error
// stream and its uncorrectable-error stream, all sorted by time. The result
// is fully determined by cfg (including cfg.Seed).
//
// Cancelling ctx stops generation between shards (and within the long
// emission loops) with ctx's error; a panic in any worker surfaces as a
// *parallel.PanicError instead of crashing the process.
func Generate(ctx context.Context, cfg Config) (pop *Population, err error) {
	defer parallel.Recover(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg:      cfg,
		root:     simrand.NewStream(cfg.Seed).Derive("faultmodel"),
		startMin: simtime.MinuteOf(cfg.Start),
		endMin:   simtime.MinuteOf(cfg.End),
	}
	g.nodeFaults = simrand.NewPowerLaw(cfg.NodeAlpha, 1, cfg.NodeMaxFaults)
	g.errPerFault = simrand.NewPowerLaw(cfg.ErrAlpha, 1, cfg.MaxErrorsPerFault)
	if cfg.PathologicalNodeFrac > 0 {
		g.pathErrors = simrand.NewPowerLaw(cfg.PathErrAlpha, cfg.PathMinErrors, cfg.MaxErrorsPerFault)
	}
	g.bitRank = simrand.NewPowerLaw(cfg.BitConcentration+1, 1, topology.CodeBitsPerWord)
	g.bitPerm = g.root.Derive("bit-perm").Perm(topology.CodeBitsPerWord)
	g.buildSignatures()

	pop = &Population{Config: cfg}
	if err := g.placeFaults(ctx, pop); err != nil {
		return nil, err
	}
	if err := g.emitCEs(ctx, pop); err != nil {
		return nil, err
	}
	if err := g.emitDUEs(ctx, pop); err != nil {
		return nil, err
	}
	return pop, nil
}

type generator struct {
	cfg              Config
	root             *simrand.Stream
	startMin, endMin simtime.Minute
	nodeFaults       *simrand.PowerLaw
	errPerFault      *simrand.PowerLaw
	pathErrors       *simrand.PowerLaw
	bitRank          *simrand.PowerLaw
	bitPerm          []int
	signatures       []signature
	sigRank          *simrand.PowerLaw
	superAssigned    bool
}

// signature is one manufacturing weak spot: a device-internal defect
// location (rank side, row, bit) shared across the DIMM population. Slot,
// bank and column stay free per fault so signature hits do not perturb
// those marginals — the paper finds fault columns and banks uniform
// (Fig 6) even though address locations collide (Fig 8b).
type signature struct {
	rank int
	row  int
	bit  int
}

// buildSignatures draws the weak-spot pool from the same positional
// distributions as ordinary faults.
func (g *generator) buildSignatures() {
	cfg := g.cfg
	if cfg.SignatureCount == 0 || cfg.SignatureProb == 0 {
		return
	}
	s := g.root.Derive("signatures")
	g.signatures = make([]signature, cfg.SignatureCount)
	for i := range g.signatures {
		g.signatures[i] = signature{
			rank: s.Categorical(cfg.RankWeights[:]),
			row:  skewCoord(s.Float64(), topology.RowsPerBank, cfg.RowSkew),
			bit:  g.weakBit(s),
		}
	}
	g.sigRank = simrand.NewPowerLaw(cfg.SignatureZipf, 1, cfg.SignatureCount)
}

// skewCoord maps a uniform draw to [0, n) with density concentrated toward
// low coordinates for skew > 1 (the manufacturing weak-spot model behind
// the Fig 8b address-collision power law).
func skewCoord(u float64, n int, skew float64) int {
	v := int(float64(n) * math.Pow(u, skew))
	if v >= n {
		v = n - 1
	}
	return v
}

// weakBit draws a codeword bit from the Zipf-over-permutation weak-bit
// distribution (Fig 8a).
func (g *generator) weakBit(s *simrand.Stream) int {
	return g.bitPerm[g.bitRank.Sample(s)-1]
}

// placeFaults decides which nodes are faulty and creates their faults.
// Nodes draw from independent derived streams, so placement shards across
// a worker pool keyed by node; faults are stitched back in node order and
// renumbered, making the output identical to the serial path. The one
// cross-node dependency — the first pathological node in node order is
// the super-node — is resolved by a cheap pre-scan before the sharded
// pass.
func (g *generator) placeFaults(ctx context.Context, pop *Population) error {
	cfg := g.cfg
	// Normalize region weights so the system-wide faulty-node fraction
	// stays at FaultyNodeFrac.
	var regionMean float64
	for _, w := range cfg.RegionWeights {
		regionMean += w
	}
	regionMean /= float64(len(cfg.RegionWeights))

	if parallel.Workers(cfg.Parallelism) <= 1 {
		for n := 0; n < cfg.Nodes; n++ {
			if err := parallel.Poll(ctx, n); err != nil {
				return err
			}
			pop.Faults = append(pop.Faults, g.faultsForNode(n, regionMean, func() bool {
				// One machine dominates the study the way the paper's
				// rack-31 node does (Fig 12a): the first pathological
				// node drawn is the super-node.
				if g.superAssigned {
					return false
				}
				g.superAssigned = true
				return true
			})...)
		}
	} else {
		superNode := g.findSuperNode(regionMean)
		perNode := make([][]Fault, cfg.Nodes)
		err := parallel.ForEachChunkCtx(ctx, cfg.Parallelism, cfg.Nodes, func(ctx context.Context, _, lo, hi int) error {
			for n := lo; n < hi; n++ {
				if err := parallel.Poll(ctx, n-lo); err != nil {
					return err
				}
				perNode[n] = g.faultsForNode(n, regionMean, func() bool { return n == superNode })
			}
			return nil
		})
		if err != nil {
			return err
		}
		total := 0
		for _, fs := range perNode {
			total += len(fs)
		}
		pop.Faults = make([]Fault, 0, total)
		for _, fs := range perNode {
			pop.Faults = append(pop.Faults, fs...)
		}
	}
	for i := range pop.Faults {
		pop.Faults[i].ID = i
	}
	return nil
}

// findSuperNode locates the first pathological node in node order (-1 if
// none) by replaying only the faulty/pathological draws of every node's
// stream — the prefix of the per-node draw sequence, so the answer matches
// what the serial pass would have decided.
func (g *generator) findSuperNode(regionMean float64) int {
	cfg := g.cfg
	if cfg.PathologicalNodeFrac <= 0 || cfg.PathSeverityMax <= 1 {
		return -1
	}
	shards := parallel.NumChunks(cfg.Parallelism, cfg.Nodes)
	firstPath := make([]int, shards)
	parallel.ForEachChunk(cfg.Parallelism, cfg.Nodes, func(shard, lo, hi int) {
		firstPath[shard] = -1
		for n := lo; n < hi; n++ {
			ns := g.root.DeriveN("node", uint64(n))
			pFaulty := cfg.FaultyNodeFrac * cfg.RegionWeights[topology.NodeID(n).Region()] / regionMean
			if !ns.Bool(pFaulty) {
				continue
			}
			if ns.Bool(cfg.PathologicalNodeFrac / pFaulty) {
				firstPath[shard] = n
				break
			}
		}
	})
	for _, n := range firstPath {
		if n >= 0 {
			return n
		}
	}
	return -1
}

// faultsForNode replays one node's placement draws and returns its faults
// (IDs unset; placeFaults renumbers). isSuper is consulted only when the
// node is pathological and severity heterogeneity is enabled — exactly
// where the serial path consults superAssigned — and reports whether the
// node takes the super-node slot.
func (g *generator) faultsForNode(n int, regionMean float64, isSuper func() bool) []Fault {
	cfg := g.cfg
	node := topology.NodeID(n)
	ns := g.root.DeriveN("node", uint64(n))
	pFaulty := cfg.FaultyNodeFrac * cfg.RegionWeights[node.Region()] / regionMean
	if !ns.Bool(pFaulty) {
		return nil
	}
	// A small fraction of the faulty nodes are pathological: extra
	// faults, each with a guaranteed-heavy error stream. Severity is
	// heterogeneous so a single node (and its rack) can dominate the
	// error counts the way rack 31 does in Fig 12a.
	pathological := cfg.PathologicalNodeFrac > 0 && ns.Bool(cfg.PathologicalNodeFrac/pFaulty)
	nf := g.nodeFaults.Sample(ns)
	pathFaults := 0
	if pathological {
		severity := 1.0
		if cfg.PathSeverityMax > 1 {
			if isSuper() {
				severity = cfg.PathSeverityMax
			} else {
				severity = ns.Pareto(cfg.PathSeverityAlpha, 1, 1+(cfg.PathSeverityMax-1)/2.5)
			}
		}
		pathFaults = int(severity*float64(cfg.PathMinFaults) + 0.5)
		nf += pathFaults
	}
	slotW := cfg.SlotWeights[:]
	rankW := cfg.RankWeights[:]
	modeW := cfg.ModeWeights[:]
	faults := make([]Fault, 0, nf)
	for f := 0; f < nf; f++ {
		mode := Mode(ns.Categorical(modeW))
		anchor := topology.CellAddr{
			Node: node,
			Slot: topology.Slot(ns.Categorical(slotW)),
			Rank: ns.Categorical(rankW),
			Bank: ns.IntN(topology.BanksPerRank),
			Row:  skewCoord(ns.Float64(), topology.RowsPerBank, cfg.RowSkew),
			Col:  skewCoord(ns.Float64(), topology.ColsPerRow, cfg.ColSkew),
		}
		bit := g.weakBit(ns)
		// Word-level faults sometimes hit a population-wide weak
		// spot (Fig 8b's address-collision power law).
		if (mode == SingleBit || mode == SingleWord) && g.sigRank != nil && ns.Bool(cfg.SignatureProb) {
			sig := g.signatures[g.sigRank.Sample(ns)-1]
			anchor.Rank, anchor.Row = sig.rank, sig.row
			bit = sig.bit
		}
		// Activation is strongly front-loaded: defects are present
		// from bring-up and surface early (the same infant-mortality
		// physics as §3.1), which combined with per-fault decay gives
		// Fig 4a's downward monthly trend.
		span := float64(g.endMin - g.startMin)
		start := g.startMin + simtime.Minute(span*math.Pow(ns.Float64(), cfg.StartSkew))
		nErr := 1
		switch {
		case pathological && f < pathFaults:
			nErr = g.pathErrors.Sample(ns)
		case !ns.Bool(cfg.POneError):
			nErr = g.errPerFault.Sample(ns)
		}
		faults = append(faults, Fault{
			Mode:    mode,
			Anchor:  anchor,
			Bit:     bit,
			Start:   start,
			NErrors: nErr,
		})
	}
	return faults
}

// errorTimeFrac draws the position of an error within [fault start, window
// end] from a truncated-exponential density ∝ exp(-decay·x), x ∈ [0, 1] —
// front-loading errors to produce Fig 4a's downward trend (page retirement
// and maintenance effects).
func errorTimeFrac(s *simrand.Stream, decay float64) float64 {
	u := s.Float64()
	if decay <= 0 {
		return u
	}
	return -math.Log(1-u*(1-math.Exp(-decay))) / decay
}

// emitCEs generates every fault's correctable errors and sorts the stream.
func (g *generator) emitCEs(ctx context.Context, pop *Population) error {
	cfg := g.cfg
	total := 0
	for i := range pop.Faults {
		total += pop.Faults[i].NErrors
	}
	// Each fault's error stream comes from its own derived stream, so
	// emission shards freely across faults. Prefix sums over NErrors give
	// every fault a disjoint output window in the final slice, which makes
	// the pre-sort event sequence — and therefore the sorted stream —
	// identical to the serial path. (sort.Slice is not stable, so byte
	// identity requires reproducing the exact pre-sort order, not merely
	// the same multiset.)
	offsets := make([]int, len(pop.Faults)+1)
	for i := range pop.Faults {
		offsets[i+1] = offsets[i] + pop.Faults[i].NErrors
	}
	pop.CEs = make([]CEEvent, total)
	err := parallel.ForEachChunkCtx(ctx, cfg.Parallelism, len(pop.Faults), func(ctx context.Context, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := parallel.Poll(ctx, i-lo); err != nil {
				return err
			}
			g.emitFaultCEs(&pop.Faults[i], pop.CEs[offsets[i]:offsets[i+1]])
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(pop.CEs, func(a, b int) bool {
		ea, eb := &pop.CEs[a], &pop.CEs[b]
		if ea.Minute != eb.Minute {
			return ea.Minute < eb.Minute
		}
		if ea.Node != eb.Node {
			return ea.Node < eb.Node
		}
		return ea.Addr < eb.Addr
	})
	return nil
}

// emitFaultCEs fills out (sized to f.NErrors) with one fault's error
// stream, drawn from the fault's own derived stream.
func (g *generator) emitFaultCEs(f *Fault, out []CEEvent) {
	cfg := g.cfg
	fs := g.root.DeriveN("fault-errors", uint64(f.ID))
	span := float64(g.endMin - f.Start)
	if span < 1 {
		span = 1
	}
	// Bursty faults emit errors in storms around shared centers; the
	// kernel's CE log overflows on exactly these (§2.3).
	// Burst sizes are heavy-tailed (a stuck bit swept by the patrol
	// scrubber floods the log within a couple of minutes), so a
	// meaningful fraction of bursts overflows the CE log space.
	burstSize := 0
	if cfg.BurstFrac > 0 && f.NErrors > 1 && fs.Bool(cfg.BurstFrac) {
		burstSize = fs.PowerLawInt(1.2, 8, cfg.BurstMaxSize)
	}
	var center simtime.Minute
	for e := 0; e < f.NErrors; e++ {
		var t simtime.Minute
		if burstSize > 0 {
			if e%burstSize == 0 {
				center = f.Start + simtime.Minute(span*errorTimeFrac(fs, cfg.TrendDecay))
			}
			t = center + simtime.Minute(fs.IntN(cfg.BurstSpreadMin))
			if t > g.endMin {
				t = g.endMin
			}
		} else {
			t = f.Start + simtime.Minute(span*errorTimeFrac(fs, cfg.TrendDecay))
		}
		cell := f.Anchor
		bit := f.Bit
		switch f.Mode {
		case SingleBit:
			// anchored cell and bit
		case SingleWord:
			// anchored word; bits within the word vary
			if fs.Bool(0.5) {
				bit = g.weakBit(fs)
			}
		case SingleColumn:
			cell.Row = skewCoord(fs.Float64(), topology.RowsPerBank, cfg.RowSkew)
		case SingleRow:
			cell.Col = skewCoord(fs.Float64(), topology.ColsPerRow, cfg.ColSkew)
		case SingleBank:
			cell.Row = skewCoord(fs.Float64(), topology.RowsPerBank, cfg.RowSkew)
			cell.Col = skewCoord(fs.Float64(), topology.ColsPerRow, cfg.ColSkew)
			if fs.Bool(0.3) {
				bit = g.weakBit(fs)
			}
		}
		out[e] = CEEvent{
			Minute:  t,
			Node:    f.Anchor.Node,
			Addr:    topology.EncodePhysAddr(cell, 0),
			Bit:     uint8(bit),
			FaultID: int32(f.ID),
		}
	}
}

// emitDUEs generates the uncorrectable-error stream: a background Poisson
// process at DUEsPerDIMMYear across the population's DIMMs, plus
// escalations — faults whose heavy CE streams eventually defeat SEC-DED at
// their own address. Escalated DUEs are the ones with CE precursors.
func (g *generator) emitDUEs(ctx context.Context, pop *Population) error {
	cfg := g.cfg
	g.emitEscalations(pop)
	s := g.root.Derive("dues")
	years := cfg.End.Sub(cfg.Start).Hours() / simtime.HoursPerYear
	mean := cfg.DUEsPerDIMMYear * float64(cfg.Nodes*topology.SlotsPerNode) * years
	n := s.Poisson(mean)
	span := int64(g.endMin - g.startMin)
	for i := 0; i < n; i++ {
		if err := parallel.Poll(ctx, i); err != nil {
			return err
		}
		cell := topology.CellAddr{
			Node: topology.NodeID(s.IntN(cfg.Nodes)),
			Slot: topology.Slot(s.IntN(topology.SlotsPerNode)),
			Rank: s.IntN(topology.RanksPerDIMM),
			Bank: s.IntN(topology.BanksPerRank),
			Row:  s.IntN(topology.RowsPerBank),
			Col:  s.IntN(topology.ColsPerRow),
		}
		b1 := s.IntN(topology.CodeBitsPerWord)
		b2 := s.IntN(topology.CodeBitsPerWord - 1)
		if b2 >= b1 {
			b2++
		}
		cause := CauseUncorrectableECC
		if s.Bool(cfg.MachineCheckFrac) {
			cause = CauseMachineCheck
		}
		pop.DUEs = append(pop.DUEs, DUEEvent{
			Minute: g.startMin + simtime.Minute(s.Int64N(span)),
			Node:   cell.Node,
			Addr:   topology.EncodePhysAddr(cell, 0),
			Bits:   []uint8{uint8(b1), uint8(b2)},
			Cause:  cause,
		})
	}
	sort.Slice(pop.DUEs, func(a, b int) bool { return pop.DUEs[a].Minute < pop.DUEs[b].Minute })
	return nil
}

// emitEscalations converts a NErrors-proportional fraction of faults into
// late-life DUEs at the fault's anchor address.
func (g *generator) emitEscalations(pop *Population) {
	cfg := g.cfg
	if cfg.EscalationPerKErrors <= 0 {
		return
	}
	s := g.root.Derive("escalations")
	cap := cfg.EscalationCap
	if cap <= 0 {
		cap = 0.5
	}
	for _, f := range pop.Faults {
		p := float64(f.NErrors) / 1000 * cfg.EscalationPerKErrors
		if p > cap {
			p = cap
		}
		if !s.Bool(p) {
			continue
		}
		// The escalation lands anywhere after the fault has had time to
		// accumulate errors; spreading it evenly keeps the HET-window DUE
		// rate representative of the whole study (§3.5 extrapolates from
		// a 22-day window).
		span := float64(g.endMin - f.Start)
		t := f.Start + simtime.Minute(span*(0.25+0.75*s.Float64()))
		second := f.Bit
		for second == f.Bit {
			second = s.IntN(topology.CodeBitsPerWord)
		}
		pop.DUEs = append(pop.DUEs, DUEEvent{
			Minute: t,
			Node:   f.Anchor.Node,
			Addr:   topology.EncodePhysAddr(f.Anchor, 0),
			Bits:   []uint8{uint8(f.Bit), uint8(second)},
			Cause:  CauseUncorrectableECC,
		})
	}
}
