// Package faultmodel implements the generative DRAM fault model that
// substitutes for Astra's production fault population (which is not
// available in this environment). It produces ground-truth faults, the
// correctable-error events they emit, and the rare uncorrectable-error
// events, calibrated to every population statistic the paper reports:
//
//   - ~4.37M correctable errors over the 237-day study window, ≈6 per node
//     per day on average (§3.2);
//   - errors-per-fault heavily skewed: median 1, maximum ≈91,000 (Fig 4b);
//   - ≈39% of nodes with at least one CE (1013 of 2592), faults per node
//     following a power law with the top handful of nodes carrying most
//     errors (Fig 5);
//   - fault modes single-bit / single-word / single-column / single-row /
//     single-bank, with single-row unclassifiable downstream because the
//     CE records carry no usable row information (§3.2);
//   - faults uniform across socket, bank and column, non-uniform across
//     rank (rank 0 high) and DIMM slot (J, E, I, P high; A, K, L, M, N
//     low) (Figs 6, 7), and mildly top-weighted by rack region (Fig 10);
//   - bit positions and physical addresses with power-law fault counts
//     (Fig 8), modeling manufacturing weak spots;
//   - a DUE process at ≈0.00948 DUEs per DIMM per year (§3.5).
//
// Crucially, the Astra-truth model has no temperature or utilization
// coupling — the paper's headline negative result. The coupled comparison
// models live in internal/baseline.
package faultmodel

import (
	"fmt"
	"time"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// Mode is a DRAM fault mode (§2.1): the footprint that all of a fault's
// errors map onto.
type Mode int

// Fault modes.
const (
	// SingleBit: all errors at one bit of one word.
	SingleBit Mode = iota
	// SingleWord: all errors within one 64-bit word.
	SingleWord
	// SingleColumn: all errors in one column of one bank.
	SingleColumn
	// SingleRow: all errors in one row of one bank. Present in the ground
	// truth but unclassifiable from Astra's CE records (§3.2: the syslog
	// record carries no usable row field).
	SingleRow
	// SingleBank: errors across one bank.
	SingleBank
	// NumModes is the number of fault modes.
	NumModes
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case SingleBit:
		return "single-bit"
	case SingleWord:
		return "single-word"
	case SingleColumn:
		return "single-column"
	case SingleRow:
		return "single-row"
	case SingleBank:
		return "single-bank"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a mode name produced by String.
func ParseMode(s string) (Mode, error) {
	for m := Mode(0); m < NumModes; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("faultmodel: unknown mode %q", s)
}

// Fault is one ground-truth DRAM fault.
type Fault struct {
	// ID is a dense index into the population's fault list.
	ID int
	// Mode is the fault's footprint class.
	Mode Mode
	// Anchor fixes the coordinates shared by all of the fault's errors.
	// Depending on Mode, some of Row/Col are free and re-drawn per error:
	// SingleBit/SingleWord use all of Anchor; SingleColumn frees Row;
	// SingleRow frees Col; SingleBank frees Row and Col.
	Anchor topology.CellAddr
	// Bit is the anchored codeword bit (0..71) for SingleBit faults and
	// the base bit for other modes.
	Bit int
	// Start is when the fault becomes active.
	Start simtime.Minute
	// NErrors is the number of correctable errors the fault emits within
	// the study window.
	NErrors int
}

// CEEvent is one correctable-error observation as produced by the memory
// controller, before any logging loss.
type CEEvent struct {
	// Minute is the event time.
	Minute simtime.Minute
	// Node is the node on which the error occurred.
	Node topology.NodeID
	// Addr is the node-local physical address of the affected word.
	Addr topology.PhysAddr
	// Bit is the flipped codeword bit (0..71).
	Bit uint8
	// FaultID is the ground-truth fault (index into Population.Faults).
	// It is available to validation code only; the logging layer does not
	// serialize it.
	FaultID int32
}

// Cell decodes the event's DRAM coordinates. An event carrying an
// invalid address (a corrupted or hand-built stream) is an error for the
// caller to handle, not a panic — bad data must never kill the process.
func (e CEEvent) Cell() (topology.CellAddr, error) {
	cell, _, err := topology.DecodePhysAddr(e.Node, e.Addr)
	if err != nil {
		return topology.CellAddr{}, fmt.Errorf("faultmodel: event with invalid address: %w", err)
	}
	return cell, nil
}

// DUECause classifies an uncorrectable event, matching the Fig 15 legend.
type DUECause int

// DUE causes.
const (
	// CauseUncorrectableECC: a multi-bit DRAM corruption detected by
	// SEC-DED.
	CauseUncorrectableECC DUECause = iota
	// CauseMachineCheck: an uncorrectable machine-check exception.
	CauseMachineCheck
	// NumDUECauses is the number of DUE causes.
	NumDUECauses
)

// String names the cause as the Hardware Event Tracker logs it.
func (c DUECause) String() string {
	switch c {
	case CauseUncorrectableECC:
		return "uncorrectableECC"
	case CauseMachineCheck:
		return "uncorrectableMachineCheckException"
	default:
		return fmt.Sprintf("DUECause(%d)", int(c))
	}
}

// DUEEvent is one detected uncorrectable error.
type DUEEvent struct {
	Minute simtime.Minute
	Node   topology.NodeID
	Addr   topology.PhysAddr
	// Bits are the flipped codeword bits (>= 2 of them).
	Bits []uint8
	// Cause is the event classification.
	Cause DUECause
}

// Population is a generated ground-truth fault population with its error
// streams, both sorted by time.
type Population struct {
	Config Config
	Faults []Fault
	CEs    []CEEvent
	DUEs   []DUEEvent
}

// Config calibrates the generator. Construct with DefaultConfig and adjust.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Nodes bounds generation to nodes [0, Nodes) for reduced-scale runs;
	// fault incidence parameters are per-node, so statistics per node are
	// scale-invariant. Must be in (0, topology.Nodes].
	Nodes int
	// Parallelism bounds the worker pool Generate shards fault placement
	// and CE emission across: 0 (the default) uses runtime.GOMAXPROCS(0),
	// 1 restores the serial code path. The generated population is
	// bit-identical at every setting — nodes and faults draw from derived
	// simrand streams, so sharding never perturbs the randomness.
	Parallelism int
	// Start and End bound the study window.
	Start, End time.Time

	// FaultyNodeFrac is the probability that a node has >= 1 fault
	// (paper: 1013/2592 ≈ 0.391 of nodes saw >= 1 CE).
	FaultyNodeFrac float64
	// NodeAlpha and NodeMaxFaults shape the per-node fault-count power law
	// (Fig 5a), conditional on the node being faulty.
	NodeAlpha     float64
	NodeMaxFaults int

	// POneError is the probability a fault emits exactly one error; the
	// rest draw from a power law with exponent ErrAlpha truncated at
	// MaxErrorsPerFault (Fig 4b: median 1, max ≈ 91,000).
	POneError         float64
	ErrAlpha          float64
	MaxErrorsPerFault int

	// PathologicalNodeFrac is the fraction of nodes that are
	// "pathological": a handful of nodes whose components misbehave badly
	// enough to dominate the system-wide error count (Fig 5b: the 8 nodes
	// with the most CEs account for more than 50% of the total).
	// Pathological nodes get PathMinFaults extra faults, each emitting a
	// heavy error stream drawn from a power law with exponent
	// PathErrAlpha on [PathMinErrors, MaxErrorsPerFault].
	PathologicalNodeFrac float64
	PathMinFaults        int
	PathErrAlpha         float64
	PathMinErrors        int
	// PathSeverityMax makes pathological nodes heterogeneous: each gets
	// a severity multiplier drawn Pareto(PathSeverityAlpha) on
	// [1, PathSeverityMax] scaling its extra fault count, so one node
	// (and hence one rack) can dominate the error counts the way rack 31
	// does in Fig 12a. 1 disables.
	PathSeverityMax   float64
	PathSeverityAlpha float64

	// SignatureCount models manufacturing weak spots shared across the
	// DIMM population: a pool of device-internal defect signatures
	// (rank side, row, column, bit) that word-level faults hit with
	// probability SignatureProb, drawn Zipf-like with exponent
	// SignatureZipf. Cross-DIMM collisions at the same DIMM-internal
	// address produce the per-address fault-count power law of Fig 8b.
	// 0 disables.
	SignatureCount int
	SignatureProb  float64
	SignatureZipf  float64

	// ModeWeights are the relative frequencies of the five fault modes.
	ModeWeights [NumModes]float64
	// RegionWeights bias fault placement by rack region (bottom, middle,
	// top); the paper finds a mild top excess in faults (Fig 10b).
	RegionWeights [topology.NumRegions]float64
	// RankWeights bias fault placement by DIMM rank (Fig 7b: rank 0 high).
	RankWeights [topology.RanksPerDIMM]float64
	// SlotWeights bias fault placement by DIMM slot. They must sum to the
	// same total within each socket so that the per-socket fault
	// distribution stays uniform (Fig 6d) while slots differ (Fig 7d).
	SlotWeights [topology.SlotsPerNode]float64

	// RowSkew and ColSkew power-transform the uniform draw for row and
	// column coordinates (coordinate = floor(N * u^skew)); skew > 1
	// concentrates faults at low-numbered rows/columns. ColSkew stays at
	// 1 (uniform) because the paper finds fault columns uniform (Fig 6f);
	// rows are unobservable, so RowSkew only shapes footprints.
	RowSkew, ColSkew float64
	// BitConcentration shapes the weak-bit-position distribution: bit
	// positions are drawn Zipf-like with exponent BitConcentration over a
	// seeded permutation of the 72 codeword bits (Fig 8a).
	BitConcentration float64

	// TrendDecay is the exponential decay of a fault's error intensity
	// across the remainder of the study window (page retirement and
	// system maintenance effects, Fig 4a's downward trend). 0 disables.
	TrendDecay float64
	// StartSkew power-transforms fault activation times toward the start
	// of the window (activation = span·u^StartSkew): defects surface
	// early, so the aggregate monthly error series declines.
	StartSkew float64

	// BurstFrac is the fraction of faults that emit their errors in
	// bursts (error storms) rather than spread evenly; bursts are what
	// overflow the kernel's limited CE log space (§2.3). BurstMaxSize
	// bounds the errors per burst and BurstSpreadMin the burst's width in
	// minutes.
	BurstFrac      float64
	BurstMaxSize   int
	BurstSpreadMin int

	// DUEsPerDIMMYear is the background uncorrectable-error rate; together
	// with escalations it lands near the paper's §3.5 total of 0.00948
	// (FIT ≈ 1081).
	DUEsPerDIMMYear float64
	// MachineCheckFrac is the fraction of DUEs that surface as machine
	// checks rather than patrol-scrub ECC detections.
	MachineCheckFrac float64
	// EscalationPerKErrors is the probability per 1000 correctable errors
	// that a fault escalates to a DUE at its own address (a stuck bit plus
	// a transient second flip defeats SEC-DED). Escalated DUEs are the
	// CE-precursor population that predictive-maintenance policies key on.
	EscalationPerKErrors float64
	// EscalationCap bounds the per-fault escalation probability; 0 means
	// the calibrated default of 0.5. Prediction scenarios raise it so
	// heavy faults escalate near-deterministically, which sharpens the
	// ground-truth labels the evaluation harness grades against.
	EscalationCap float64
}

// DefaultConfig returns the full-scale Astra calibration.
func DefaultConfig(seed uint64) Config {
	cfg := Config{
		Seed:  seed,
		Nodes: topology.Nodes,
		Start: simtime.StudyStart,
		End:   simtime.StudyEnd,

		FaultyNodeFrac: 0.391,
		NodeAlpha:      1.7,
		NodeMaxFaults:  70,

		POneError:         0.60,
		ErrAlpha:          1.30,
		MaxErrorsPerFault: 91000,

		PathologicalNodeFrac: 10.0 / topology.Nodes,
		PathMinFaults:        4,
		PathErrAlpha:         1.05,
		PathMinErrors:        8000,
		PathSeverityMax:      6,
		PathSeverityAlpha:    1.5,

		SignatureCount: 512,
		SignatureProb:  0.3,
		SignatureZipf:  1.3,

		ModeWeights: [NumModes]float64{
			SingleBit:    0.85,
			SingleWord:   0.06,
			SingleColumn: 0.04,
			SingleRow:    0.03,
			SingleBank:   0.02,
		},
		RegionWeights: [topology.NumRegions]float64{0.96, 1.0, 1.07},
		RankWeights:   [topology.RanksPerDIMM]float64{1.55, 1.0},

		RowSkew:          3.0,
		ColSkew:          1.0,
		BitConcentration: 1.05,

		TrendDecay: 1.3,
		StartSkew:  3.0,

		BurstFrac:      0.25,
		BurstMaxSize:   5000,
		BurstSpreadMin: 2,

		DUEsPerDIMMYear:      0.0062,
		MachineCheckFrac:     0.35,
		EscalationPerKErrors: 0.02,
	}
	// Slot weights: J, E, I, P hot; A, K, L, M, N cold (Fig 7d). Each
	// socket's weights sum to 8.35 so sockets stay balanced (Fig 6d).
	w := map[string]float64{
		"A": 0.55, "B": 1.0, "C": 1.0, "D": 1.0, "E": 1.8, "F": 1.0, "G": 1.0, "H": 1.0,
		"I": 1.8, "J": 1.8, "K": 0.55, "L": 0.55, "M": 0.55, "N": 0.55, "O": 1.0, "P": 1.55,
	}
	for _, s := range topology.AllSlots() {
		cfg.SlotWeights[s] = w[s.Name()]
	}
	return cfg
}

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0 || c.Nodes > topology.Nodes:
		return fmt.Errorf("faultmodel: Nodes = %d out of (0, %d]", c.Nodes, topology.Nodes)
	case !c.Start.Before(c.End):
		return fmt.Errorf("faultmodel: empty study window %v..%v", c.Start, c.End)
	case c.FaultyNodeFrac < 0 || c.FaultyNodeFrac > 1:
		return fmt.Errorf("faultmodel: FaultyNodeFrac = %v", c.FaultyNodeFrac)
	case c.NodeAlpha <= 1 || c.NodeMaxFaults < 1:
		return fmt.Errorf("faultmodel: node fault power law (%v, %d) invalid", c.NodeAlpha, c.NodeMaxFaults)
	case c.POneError < 0 || c.POneError > 1:
		return fmt.Errorf("faultmodel: POneError = %v", c.POneError)
	case c.ErrAlpha <= 1 || c.MaxErrorsPerFault < 1:
		return fmt.Errorf("faultmodel: error power law (%v, %d) invalid", c.ErrAlpha, c.MaxErrorsPerFault)
	case c.PathologicalNodeFrac < 0 || c.PathologicalNodeFrac > c.FaultyNodeFrac:
		return fmt.Errorf("faultmodel: PathologicalNodeFrac = %v out of [0, FaultyNodeFrac]", c.PathologicalNodeFrac)
	case c.PathologicalNodeFrac > 0 && (c.PathErrAlpha <= 1 || c.PathMinErrors < 1 ||
		c.PathMinErrors > c.MaxErrorsPerFault || c.PathMinFaults < 0):
		return fmt.Errorf("faultmodel: pathological-node parameters invalid")
	case c.PathSeverityMax > 1 && c.PathSeverityAlpha <= 0:
		return fmt.Errorf("faultmodel: PathSeverityAlpha must be positive")
	case c.SignatureCount < 0 || c.SignatureProb < 0 || c.SignatureProb > 1:
		return fmt.Errorf("faultmodel: signature parameters invalid")
	case c.SignatureCount > 0 && c.SignatureProb > 0 && c.SignatureZipf <= 1:
		return fmt.Errorf("faultmodel: SignatureZipf must exceed 1")
	case c.RowSkew <= 0 || c.ColSkew <= 0:
		return fmt.Errorf("faultmodel: skews must be positive")
	case c.DUEsPerDIMMYear < 0:
		return fmt.Errorf("faultmodel: DUEsPerDIMMYear = %v", c.DUEsPerDIMMYear)
	case c.EscalationPerKErrors < 0 || c.EscalationPerKErrors > 1:
		return fmt.Errorf("faultmodel: EscalationPerKErrors = %v", c.EscalationPerKErrors)
	case c.EscalationCap < 0 || c.EscalationCap > 1:
		return fmt.Errorf("faultmodel: EscalationCap = %v", c.EscalationCap)
	case c.StartSkew <= 0:
		return fmt.Errorf("faultmodel: StartSkew must be positive")
	case c.BurstFrac < 0 || c.BurstFrac > 1:
		return fmt.Errorf("faultmodel: BurstFrac = %v", c.BurstFrac)
	case c.BurstFrac > 0 && (c.BurstMaxSize < 1 || c.BurstSpreadMin < 1):
		return fmt.Errorf("faultmodel: burst parameters invalid")
	}
	sum := 0.0
	for _, w := range c.ModeWeights {
		if w < 0 {
			return fmt.Errorf("faultmodel: negative mode weight")
		}
		sum += w
	}
	if sum == 0 {
		return fmt.Errorf("faultmodel: zero mode weights")
	}
	// Per-socket slot-weight balance keeps the socket marginal uniform.
	var s0, s1 float64
	for _, s := range topology.AllSlots() {
		if c.SlotWeights[s] < 0 {
			return fmt.Errorf("faultmodel: negative slot weight for %s", s)
		}
		if s.Socket() == 0 {
			s0 += c.SlotWeights[s]
		} else {
			s1 += c.SlotWeights[s]
		}
	}
	if s0 == 0 || s1 == 0 {
		return fmt.Errorf("faultmodel: zero slot weights on a socket")
	}
	if d := s0 - s1; d > 1e-9 || d < -1e-9 {
		return fmt.Errorf("faultmodel: slot weights unbalanced across sockets (%v vs %v)", s0, s1)
	}
	return nil
}
