// Package benchstage defines the pipeline-stage benchmark operations
// shared by cmd/astrabench (the `make bench` JSON writer) and the
// bench_pipeline_test.go suite. Each stage measures one pipeline layer —
// generation, dataset build, clustering, analysis, report rendering — at
// an explicit worker count, so the serial/parallel trajectory of every
// layer is tracked release to release.
package benchstage

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	astra "repro"
	"repro/internal/colfmt"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/predict"
	"repro/internal/stream"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// DefaultNodes is the pinned system size `make bench` runs at unless
// ASTRA_BENCH_NODES overrides it.
const DefaultNodes = 256

// Nodes returns the benchmark system size: ASTRA_BENCH_NODES when set and
// valid, DefaultNodes otherwise.
func Nodes() int {
	if v := os.Getenv("ASTRA_BENCH_NODES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 && n <= astra.FullScale {
			return n
		}
	}
	return DefaultNodes
}

// Stage is one benchmarkable pipeline layer.
type Stage struct {
	// Name identifies the stage in benchmark output and BENCH_pipeline.json.
	Name string
	// Records is the number of records the stage processes per op (CE
	// events for generation, CE records for the downstream stages), the
	// denominator of records/sec.
	Records int
	// Bytes is the input size consumed per op for throughput (MB/s)
	// reporting; 0 for stages without a byte-stream input.
	Bytes int64
	// Op runs the stage once at the given worker count (1 = the serial
	// code path, 0 = GOMAXPROCS). It panics on pipeline errors: a
	// benchmark input that fails to build is a bug, not a measurement.
	Op func(workers int)
}

// Set is the shared benchmark fixture: every stage plus the inputs it
// reuses across ops.
type Set struct {
	Seed   uint64
	Nodes  int
	Stages []Stage
}

// New builds the fixture once (full pipeline at the given scale) and
// returns the stage list. ctx bounds fixture construction; the per-op
// closures run uncancellable (a measurement is all-or-nothing).
func New(ctx context.Context, seed uint64, nodes int) (*Set, error) {
	fcfg := faultmodel.DefaultConfig(seed)
	fcfg.Nodes = nodes
	pop, err := faultmodel.Generate(ctx, fcfg)
	if err != nil {
		return nil, fmt.Errorf("benchstage: generate: %w", err)
	}
	dcfg := dataset.DefaultConfig(seed)
	dcfg.Nodes = nodes
	ds, err := dataset.Build(ctx, dcfg)
	if err != nil {
		return nil, fmt.Errorf("benchstage: dataset: %w", err)
	}
	study, err := astra.Run(ctx, astra.Options{Seed: seed, Nodes: nodes})
	if err != nil {
		return nil, fmt.Errorf("benchstage: study: %w", err)
	}
	results, err := study.Analyze(ctx)
	if err != nil {
		return nil, fmt.Errorf("benchstage: analyze: %w", err)
	}

	// The parse stage scans a pre-rendered syslog held in memory, so it
	// measures the wire codec alone (no disk, no dataset build per op).
	var logBuf bytes.Buffer
	if err := ds.WriteSyslog(&logBuf, 100); err != nil {
		return nil, fmt.Errorf("benchstage: render syslog: %w", err)
	}
	logBytes := logBuf.Bytes()
	logRecords := len(ds.CERecords) + len(ds.DUERecords) + len(ds.HETRecords)

	// The columnar replay of the same records: binary decode vs text parse
	// over an identical logical stream.
	var colBuf bytes.Buffer
	if err := colfmt.Write(&colBuf, colfmt.Records{
		CEs: ds.CERecords, DUEs: ds.DUERecords, HETs: ds.HETRecords,
	}); err != nil {
		return nil, fmt.Errorf("benchstage: render colfmt: %w", err)
	}
	colBytes := colBuf.Bytes()

	// fanin-merge measures the merge alone, so the warm ingested fleets
	// are built once per partition count and shared across ops (a view
	// rebuild does not mutate partition state).
	var faninMu sync.Mutex
	faninFleets := map[int]*stream.Sharded{}
	faninFleet := func(parts int) *stream.Sharded {
		faninMu.Lock()
		defer faninMu.Unlock()
		s, ok := faninFleets[parts]
		if !ok {
			s = stream.NewSharded(stream.ShardedConfig{
				Partitions: parts,
				Engine:     stream.Config{DIMMs: nodes * topology.SlotsPerNode},
			})
			s.IngestBatch(ds.CERecords)
			s.Summary()
			faninFleets[parts] = s
		}
		return s
	}

	// predict-features measures the per-record feature-extraction cost the
	// prediction layer adds to the stream engine's ingest hot path. The
	// tracker is warmed once (bank entries exist), so each op is the
	// steady-state path: expected 0 allocs/op, guarded by `astrabench
	// -guard`.
	predictTracker := predict.NewTracker(predict.TrackerConfig{
		Window:      stream.DefaultWindow,
		RateBuckets: stream.DefaultRateBuckets,
	})
	for i := range ds.CERecords {
		predictTracker.Observe(&ds.CERecords[i])
	}

	stages := []Stage{
		{
			Name:    "generate",
			Records: len(pop.CEs),
			Op: func(workers int) {
				cfg := fcfg
				cfg.Parallelism = workers
				if _, err := faultmodel.Generate(context.Background(), cfg); err != nil {
					panic(err)
				}
			},
		},
		{
			Name:    "dataset-build",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				cfg := dcfg
				cfg.Parallelism = workers
				if _, err := dataset.Build(context.Background(), cfg); err != nil {
					panic(err)
				}
			},
		},
		{
			Name:    "parse",
			Records: logRecords,
			Bytes:   int64(len(logBytes)),
			Op: func(workers int) {
				// The serial scanner: one log, one cursor, one decoder —
				// the baseline the block-parallel stage is measured against.
				sc := syslog.NewScanner(bytes.NewReader(logBytes))
				n := 0
				for sc.Scan() {
					n++
				}
				if err := sc.Err(); err != nil {
					panic(err)
				}
				if n != logRecords {
					panic(fmt.Sprintf("benchstage: parse saw %d records, want %d", n, logRecords))
				}
			},
		},
		{
			Name:    "parse-parallel",
			Records: logRecords,
			Bytes:   int64(len(logBytes)),
			Op: func(workers int) {
				// The block-parallel scanner over the same log: newline-
				// aligned blocks decoded by per-worker decoders, merged in
				// order (bit-identical output to the serial stage above).
				sc := syslog.NewBlockScanner(bytes.NewReader(logBytes), syslog.BlockScanConfig{Workers: workers})
				defer sc.Close()
				n := 0
				for sc.Scan() {
					n++
				}
				if err := sc.Err(); err != nil {
					panic(err)
				}
				if n != logRecords {
					panic(fmt.Sprintf("benchstage: parse-parallel saw %d records, want %d", n, logRecords))
				}
			},
		},
		{
			Name:    "colfmt-replay",
			Records: logRecords,
			Bytes:   int64(len(colBytes)),
			Op: func(workers int) {
				// Columnar decode of the identical record stream: the
				// replay path astrareport/astrafit take when handed a
				// records.col file instead of text.
				recs, err := colfmt.Decode(colBytes)
				if err != nil {
					panic(err)
				}
				if n := len(recs.CEs) + len(recs.DUEs) + len(recs.HETs); n != logRecords {
					panic(fmt.Sprintf("benchstage: colfmt-replay saw %d records, want %d", n, logRecords))
				}
			},
		},
		{
			Name:    "cluster",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				cc := core.DefaultClusterConfig()
				cc.Parallelism = workers
				if _, err := core.Cluster(context.Background(), ds.CERecords, cc); err != nil {
					panic(err)
				}
			},
		},
		{
			Name:    "stream-ingest",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				// The online path: a fresh engine ingests the full record
				// stream and is forced through classification by Summary,
				// mirroring what astrad does between scrapes. At workers>1
				// the engine is the sharded fleet (workers = partitions),
				// the configuration astrad -partitions runs — results are
				// bit-identical to serial, so the stage measures pure
				// partition-parallel speedup.
				var sum stream.Summary
				if workers > 1 {
					s := stream.NewSharded(stream.ShardedConfig{
						Partitions: workers,
						Engine:     stream.Config{DIMMs: nodes * topology.SlotsPerNode},
					})
					s.IngestBatch(ds.CERecords)
					sum = s.Summary()
				} else {
					e := stream.New(stream.Config{
						Cluster: core.ClusterConfig{Parallelism: workers},
						DIMMs:   nodes * topology.SlotsPerNode,
					})
					e.IngestBatch(ds.CERecords)
					sum = e.Summary()
				}
				if sum.Records != len(ds.CERecords) {
					panic(fmt.Sprintf("benchstage: stream ingested %d records, want %d", sum.Records, len(ds.CERecords)))
				}
			},
		},
		{
			Name:    "fanin-merge",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				// The aggregation tier alone: rebuild the fleet view (lock
				// every partition, merge summaries and rolling windows,
				// k-way merge fault lists, rebuild the node map) over a
				// warm fleet of `workers` partitions. Tracked so fan-in
				// never silently becomes the new serial choke point as
				// partition counts grow.
				parts := workers
				if parts < 1 {
					parts = 1
				}
				s := faninFleet(parts)
				if v := s.BuildView(); v.Summary.Records != len(ds.CERecords) {
					panic(fmt.Sprintf("benchstage: fanin view has %d records, want %d", v.Summary.Records, len(ds.CERecords)))
				}
			},
		},
		{
			Name:    "predict-features",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				// Feature extraction is strictly arrival-ordered by design
				// (the stream==batch differential depends on it), so there
				// is no parallel variant; workers is ignored.
				for i := range ds.CERecords {
					predictTracker.ObserveFeatures(&ds.CERecords[i])
				}
			},
		},
		{
			Name:    "admission",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				// The overload path at its fast edge: every record through
				// the admission queue (producer + drainer handoff) into the
				// engine, queue deep enough that nothing sheds — measuring
				// the queue's overhead over raw stream-ingest.
				e := stream.New(stream.Config{
					Cluster:     core.ClusterConfig{Parallelism: workers},
					DIMMs:       nodes * topology.SlotsPerNode,
					Parallelism: workers,
				})
				q := overload.NewQueue[mce.CERecord](overload.Config{
					Capacity: len(ds.CERecords) + 1,
					OnShed:   func(n int) { e.NoteShed(n) },
				})
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						batch, ok := q.Take(1024)
						if len(batch) > 0 {
							e.IngestBatch(batch)
							q.Done()
						}
						if !ok {
							return
						}
					}
				}()
				for _, r := range ds.CERecords {
					q.Offer(r)
				}
				q.Close()
				<-done
				if sum := e.Summary(); sum.Records != len(ds.CERecords) || sum.Shed != 0 {
					panic(fmt.Sprintf("benchstage: admission ingested %d records (%d shed), want %d",
						sum.Records, sum.Shed, len(ds.CERecords)))
				}
			},
		},
		{
			Name:    "analyze",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				s := *study
				s.Options.Parallelism = workers
				if _, err := s.Analyze(context.Background()); err != nil {
					panic(err)
				}
			},
		},
		{
			Name:    "report",
			Records: len(ds.CERecords),
			Op: func(workers int) {
				if err := study.WriteReport(io.Discard, results); err != nil {
					panic(err)
				}
			},
		},
	}
	return &Set{Seed: seed, Nodes: nodes, Stages: stages}, nil
}
