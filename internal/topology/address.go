package topology

import "fmt"

// CellAddr locates a single ECC word in the system's DRAM: a node, a DIMM
// slot on that node, and the rank/bank/row/column coordinates of the word
// within the DIMM. It is the coordinate system in which faults live.
type CellAddr struct {
	Node NodeID
	Slot Slot
	Rank int // 0 or 1: one side of the dual-rank DIMM
	Bank int // [0, BanksPerRank)
	Row  int // [0, RowsPerBank)
	Col  int // [0, ColsPerRow): 64-bit word column
}

// Valid reports whether every coordinate is in range.
func (a CellAddr) Valid() bool {
	return a.Node.Valid() && a.Slot.Valid() &&
		a.Rank >= 0 && a.Rank < RanksPerDIMM &&
		a.Bank >= 0 && a.Bank < BanksPerRank &&
		a.Row >= 0 && a.Row < RowsPerBank &&
		a.Col >= 0 && a.Col < ColsPerRow
}

// String renders the address in a compact diagnostic form.
func (a CellAddr) String() string {
	return fmt.Sprintf("%s/%s/rank%d/bank%d/row%d/col%d", a.Node, a.Slot, a.Rank, a.Bank, a.Row, a.Col)
}

// Node-local physical address layout. The memory controller interleaving on
// the real machine is proprietary; we use a transparent field-packed layout
// so that address <-> coordinate mapping is exact and testable:
//
//	bit 36       35..33    32     31..28  27..13  12..3   2..0
//	[socket=1] [channel=3][rank=1][bank=4][row=15][col=10][byte=3]
//
// for a total of 37 bits = 128 GiB per node, matching 16 x 8 GB DIMMs.
const (
	byteBits    = 3
	colShift    = byteBits
	colBits     = 10
	rowShift    = colShift + colBits
	rowBits     = 15
	bankShift   = rowShift + rowBits
	bankBits    = 4
	rankShift   = bankShift + bankBits
	rankBits    = 1
	chanShift   = rankShift + rankBits
	chanBits    = 3
	socketShift = chanShift + chanBits
	socketBits  = 1

	// PhysAddrBits is the number of significant bits in a node-local
	// physical address.
	PhysAddrBits = socketShift + socketBits
	// NodeMemBytes is the per-node physical memory size implied by the
	// address layout (128 GiB).
	NodeMemBytes = 1 << PhysAddrBits
)

// PhysAddr is a node-local physical byte address.
type PhysAddr uint64

// Valid reports whether the address is within the node's memory.
func (p PhysAddr) Valid() bool { return p < NodeMemBytes }

// EncodePhysAddr packs DRAM coordinates (and a byte offset within the
// 64-bit word) into a node-local physical address. It panics on invalid
// coordinates; byteOff must be in [0, WordBytes).
func EncodePhysAddr(a CellAddr, byteOff int) PhysAddr {
	if !a.Valid() || byteOff < 0 || byteOff >= WordBytes {
		panic(fmt.Sprintf("topology: EncodePhysAddr invalid input %v byte %d", a, byteOff))
	}
	v := uint64(a.Slot.Socket())<<socketShift |
		uint64(a.Slot.Channel())<<chanShift |
		uint64(a.Rank)<<rankShift |
		uint64(a.Bank)<<bankShift |
		uint64(a.Row)<<rowShift |
		uint64(a.Col)<<colShift |
		uint64(byteOff)
	return PhysAddr(v)
}

// DecodePhysAddr unpacks a node-local physical address into DRAM
// coordinates on the given node, plus the byte offset within the word.
func DecodePhysAddr(node NodeID, p PhysAddr) (CellAddr, int, error) {
	if !p.Valid() {
		return CellAddr{}, 0, fmt.Errorf("topology: physical address %#x out of range", uint64(p))
	}
	v := uint64(p)
	mask := func(bits int) uint64 { return (1 << bits) - 1 }
	socket := int(v >> socketShift & mask(socketBits))
	channel := int(v >> chanShift & mask(chanBits))
	a := CellAddr{
		Node: node,
		Slot: Slot(socket*ChannelsPerSocket + channel),
		Rank: int(v >> rankShift & mask(rankBits)),
		Bank: int(v >> bankShift & mask(bankBits)),
		Row:  int(v >> rowShift & mask(rowBits)),
		Col:  int(v >> colShift & mask(colBits)),
	}
	return a, int(v & mask(byteBits)), nil
}

// DIMMLocal strips the socket and channel fields, leaving the address of
// the word within its DIMM (rank | bank | row | col | byte). Faults at the
// same DIMM-internal location on different DIMMs — the manufacturing
// weak-spot pattern behind Fig 8b — collide under this key.
func (p PhysAddr) DIMMLocal() PhysAddr {
	return p & (1<<chanShift - 1)
}

// PageBytes is the OS page size used by the page-retirement model.
const PageBytes = 4096

// Page returns the physical page frame number containing the address.
func (p PhysAddr) Page() uint64 { return uint64(p) / PageBytes }

// LineBitPosition maps a word column and a bit index within the 72-bit
// codeword to the paper's "bit position in a cache line" coordinate.
// Data bits (0..63) map to their position in the 512-bit line; check bits
// (64..71) map to a per-word check region appended after the data bits
// (positions 512..575), mirroring how the controller reports positions for
// check-bit errors.
func LineBitPosition(col, bit int) int {
	word := col % WordsPerLine
	if bit < DataBitsPerWord {
		return word*DataBitsPerWord + bit
	}
	return LineBits + word*(CodeBitsPerWord-DataBitsPerWord) + (bit - DataBitsPerWord)
}

// MaxLineBitPosition is the largest value LineBitPosition can return.
const MaxLineBitPosition = LineBits + WordsPerLine*(CodeBitsPerWord-DataBitsPerWord) - 1
