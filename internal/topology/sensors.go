package topology

import "fmt"

// Sensor identifies one of the per-node measurement points: six temperature
// sensors (one CPU sensor per socket, two DIMM-group sensors per socket)
// and one DC power sensor (§2.2).
type Sensor int

// Per-node sensors. The paper names sockets CPU1 and CPU2; CPU1 is socket 0
// (downstream in the airflow, hotter) and CPU2 is socket 1 (upstream,
// cooler). Each DIMM temperature sensor covers a group of four slots.
const (
	// SensorCPU1 measures the socket-0 (CPU1) package temperature.
	SensorCPU1 Sensor = iota
	// SensorCPU2 measures the socket-1 (CPU2) package temperature.
	SensorCPU2
	// SensorDIMMACEG covers socket-0 slots A, C, E, G (paper: "CPU1 DIMMs 1-4").
	SensorDIMMACEG
	// SensorDIMMBDFH covers socket-0 slots H, F, D, B (paper: "CPU1 DIMMs 5-8").
	SensorDIMMBDFH
	// SensorDIMMIKMO covers socket-1 slots I, K, M, O (paper: "CPU2 DIMMs 1-4").
	SensorDIMMIKMO
	// SensorDIMMJLNP covers socket-1 slots J, L, N, P (paper: "CPU2 DIMMs 5-8").
	SensorDIMMJLNP
	// SensorDCPower measures whole-node DC input power in watts.
	SensorDCPower
	// NumSensors is the number of per-node sensors.
	NumSensors
)

// TemperatureSensors lists the six temperature sensors (excludes power).
func TemperatureSensors() []Sensor {
	return []Sensor{SensorCPU1, SensorCPU2, SensorDIMMACEG, SensorDIMMBDFH, SensorDIMMIKMO, SensorDIMMJLNP}
}

// DIMMSensors lists the four DIMM-group temperature sensors.
func DIMMSensors() []Sensor {
	return []Sensor{SensorDIMMACEG, SensorDIMMBDFH, SensorDIMMIKMO, SensorDIMMJLNP}
}

// IsTemperature reports whether the sensor measures a temperature.
func (s Sensor) IsTemperature() bool { return s >= SensorCPU1 && s <= SensorDIMMJLNP }

// IsDIMM reports whether the sensor is one of the DIMM-group sensors.
func (s Sensor) IsDIMM() bool { return s >= SensorDIMMACEG && s <= SensorDIMMJLNP }

// Socket returns the socket a temperature sensor is associated with, or -1
// for the node-level power sensor.
func (s Sensor) Socket() int {
	switch s {
	case SensorCPU1, SensorDIMMACEG, SensorDIMMBDFH:
		return 0
	case SensorCPU2, SensorDIMMIKMO, SensorDIMMJLNP:
		return 1
	default:
		return -1
	}
}

// String returns the stable name used in the exported sensor data files.
func (s Sensor) String() string {
	switch s {
	case SensorCPU1:
		return "cpu1_temp"
	case SensorCPU2:
		return "cpu2_temp"
	case SensorDIMMACEG:
		return "dimm_aceg_temp"
	case SensorDIMMBDFH:
		return "dimm_bdfh_temp"
	case SensorDIMMIKMO:
		return "dimm_ikmo_temp"
	case SensorDIMMJLNP:
		return "dimm_jlnp_temp"
	case SensorDCPower:
		return "dc_power"
	default:
		return fmt.Sprintf("Sensor(%d)", int(s))
	}
}

// ParseSensor parses the stable name produced by String.
func ParseSensor(name string) (Sensor, error) {
	for s := Sensor(0); s < NumSensors; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown sensor %q", name)
}

// slotSensor maps each DIMM slot to its covering temperature sensor.
var slotSensor = [SlotsPerNode]Sensor{
	'A' - 'A': SensorDIMMACEG,
	'B' - 'A': SensorDIMMBDFH,
	'C' - 'A': SensorDIMMACEG,
	'D' - 'A': SensorDIMMBDFH,
	'E' - 'A': SensorDIMMACEG,
	'F' - 'A': SensorDIMMBDFH,
	'G' - 'A': SensorDIMMACEG,
	'H' - 'A': SensorDIMMBDFH,
	'I' - 'A': SensorDIMMIKMO,
	'J' - 'A': SensorDIMMJLNP,
	'K' - 'A': SensorDIMMIKMO,
	'L' - 'A': SensorDIMMJLNP,
	'M' - 'A': SensorDIMMIKMO,
	'N' - 'A': SensorDIMMJLNP,
	'O' - 'A': SensorDIMMIKMO,
	'P' - 'A': SensorDIMMJLNP,
}

// SensorForSlot returns the DIMM-group temperature sensor that covers the
// given slot. It panics on an invalid slot.
func SensorForSlot(s Slot) Sensor {
	if !s.Valid() {
		panic(fmt.Sprintf("topology: invalid slot %d", int(s)))
	}
	return slotSensor[s]
}

// SlotsForSensor returns the slots covered by a DIMM-group sensor, or nil
// for non-DIMM sensors.
func SlotsForSensor(sensor Sensor) []Slot {
	if !sensor.IsDIMM() {
		return nil
	}
	var out []Slot
	for i := Slot(0); i < SlotsPerNode; i++ {
		if slotSensor[i] == sensor {
			out = append(out, i)
		}
	}
	return out
}

// AirflowDepth returns the normalized position of a temperature sensor
// along the front-to-back airflow path, in [0, 1]: 0 is at the cold front
// of the node, 1 at the hot rear. Astra cools front to back; socket 1
// (CPU2) sits upstream of socket 0 (CPU1), so CPU1 and its DIMMs run
// warmer (Figure 1 / §3.3).
func AirflowDepth(s Sensor) float64 {
	switch s {
	case SensorDIMMIKMO:
		return 0.15
	case SensorDIMMJLNP:
		return 0.25
	case SensorCPU2:
		return 0.35
	case SensorDIMMACEG:
		return 0.60
	case SensorDIMMBDFH:
		return 0.70
	case SensorCPU1:
		return 0.80
	default:
		return 0.5
	}
}
