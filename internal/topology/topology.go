// Package topology models the physical structure of the Astra system: the
// rack/chassis/node hierarchy, the per-node socket and DIMM-slot layout,
// DRAM device geometry, the mapping between physical addresses and DRAM
// coordinates, and the placement of environmental sensors relative to the
// front-to-back airflow.
//
// All of the positional analyses in the paper (per-socket, per-bank,
// per-column, per-rank, per-slot, per-region, per-rack) are expressed in
// terms of the coordinates defined here.
package topology

import "fmt"

// System-level constants for Astra (HPDC'22 §2.2).
const (
	// Racks is the number of compute racks.
	Racks = 36
	// ChassisPerRack is the number of vertically stacked chassis per rack.
	ChassisPerRack = 18
	// NodesPerChassis is the number of compute nodes per chassis.
	NodesPerChassis = 4
	// NodesPerRack is the number of compute nodes in one rack.
	NodesPerRack = ChassisPerRack * NodesPerChassis
	// Nodes is the total number of compute nodes (2592).
	Nodes = Racks * NodesPerRack

	// SocketsPerNode is the number of CPU sockets per node.
	SocketsPerNode = 2
	// ChannelsPerSocket is the number of memory channels per socket; Astra
	// populates one DIMM per channel.
	ChannelsPerSocket = 8
	// SlotsPerNode is the number of DIMM slots per node (A..P).
	SlotsPerNode = SocketsPerNode * ChannelsPerSocket
	// DIMMs is the total number of DIMMs in the system (41472).
	DIMMs = Nodes * SlotsPerNode

	// RanksPerDIMM is the number of ranks on each dual-rank DIMM.
	RanksPerDIMM = 2
	// BanksPerRank is the number of DRAM banks per rank (DDR4: 4 bank
	// groups of 4 banks).
	BanksPerRank = 16
	// RowsPerBank is the number of rows per bank in the modeled devices.
	RowsPerBank = 1 << 15
	// ColsPerRow is the number of (64-bit word) columns per row.
	ColsPerRow = 1 << 10

	// WordBytes is the size of one ECC-protected data word.
	WordBytes = 8
	// CachelineBytes is the size of one cache line.
	CachelineBytes = 64
	// WordsPerLine is the number of ECC words per cache line.
	WordsPerLine = CachelineBytes / WordBytes
	// DataBitsPerWord is the number of data bits per ECC word.
	DataBitsPerWord = 64
	// CodeBitsPerWord is the number of bits in one SEC-DED codeword.
	CodeBitsPerWord = 72
	// LineBits is the number of data bits in one cache line.
	LineBits = CachelineBytes * 8
)

// NodeID identifies a compute node, in [0, Nodes).
type NodeID int

// NewNodeID builds a NodeID from rack, chassis-in-rack and node-in-chassis
// coordinates. It panics if any coordinate is out of range; callers
// constructing IDs from untrusted input should validate first.
func NewNodeID(rack, chassis, node int) NodeID {
	if rack < 0 || rack >= Racks || chassis < 0 || chassis >= ChassisPerRack || node < 0 || node >= NodesPerChassis {
		panic(fmt.Sprintf("topology: invalid node coordinate r%d c%d n%d", rack, chassis, node))
	}
	return NodeID(rack*NodesPerRack + chassis*NodesPerChassis + node)
}

// Valid reports whether the node ID is in range.
func (n NodeID) Valid() bool { return n >= 0 && n < Nodes }

// Rack returns the rack number, in [0, Racks).
func (n NodeID) Rack() int { return int(n) / NodesPerRack }

// Chassis returns the chassis position within the rack, in
// [0, ChassisPerRack), counted from the bottom of the rack.
func (n NodeID) Chassis() int { return (int(n) % NodesPerRack) / NodesPerChassis }

// NodeInChassis returns the position within the chassis.
func (n NodeID) NodeInChassis() int { return int(n) % NodesPerChassis }

// Region returns the vertical rack region the node's chassis belongs to.
func (n NodeID) Region() Region { return RegionOfChassis(n.Chassis()) }

// String renders the canonical host name, e.g. "astra-r03c11n2".
func (n NodeID) String() string {
	return fmt.Sprintf("astra-r%02dc%02dn%d", n.Rack(), n.Chassis(), n.NodeInChassis())
}

// AppendString appends the canonical host name to dst without allocating
// (for valid IDs; out-of-range IDs fall back to String's rendering).
func (n NodeID) AppendString(dst []byte) []byte {
	if !n.Valid() {
		return append(dst, n.String()...)
	}
	rack, chassis := n.Rack(), n.Chassis()
	dst = append(dst, "astra-r"...)
	dst = append(dst, byte('0'+rack/10), byte('0'+rack%10), 'c')
	dst = append(dst, byte('0'+chassis/10), byte('0'+chassis%10), 'n')
	return append(dst, byte('0'+n.NodeInChassis()))
}

// ParseNodeID parses the canonical host-name form produced by String.
func ParseNodeID(s string) (NodeID, error) {
	var r, c, nn int
	if _, err := fmt.Sscanf(s, "astra-r%02dc%02dn%d", &r, &c, &nn); err != nil {
		return 0, fmt.Errorf("topology: bad node name %q: %w", s, err)
	}
	if r < 0 || r >= Racks || c < 0 || c >= ChassisPerRack || nn < 0 || nn >= NodesPerChassis {
		return 0, fmt.Errorf("topology: node name %q out of range", s)
	}
	return NewNodeID(r, c, nn), nil
}

// Region is a vertical third of a rack: the paper divides Astra's 18
// chassis per rack into bottom, middle and top regions of 6 chassis each to
// compare against the Cielo/Jaguar positional studies.
type Region int

// Rack regions, bottom to top.
const (
	RegionBottom Region = iota
	RegionMiddle
	RegionTop
	// NumRegions is the number of rack regions.
	NumRegions
)

// RegionOfChassis maps a chassis position (0 = bottom) to its region.
// It panics if chassis is out of range.
func RegionOfChassis(chassis int) Region {
	if chassis < 0 || chassis >= ChassisPerRack {
		panic(fmt.Sprintf("topology: invalid chassis %d", chassis))
	}
	return Region(chassis / (ChassisPerRack / int(NumRegions)))
}

// String returns "bottom", "middle" or "top".
func (r Region) String() string {
	switch r {
	case RegionBottom:
		return "bottom"
	case RegionMiddle:
		return "middle"
	case RegionTop:
		return "top"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Slot identifies a DIMM slot within a node, in [0, SlotsPerNode).
// Slots 0..7 are lettered A..H and attach to socket 0 (the paper's CPU1);
// slots 8..15 are lettered I..P and attach to socket 1 (CPU2).
type Slot int

// Valid reports whether the slot index is in range.
func (s Slot) Valid() bool { return s >= 0 && s < SlotsPerNode }

// Socket returns the CPU socket the slot attaches to (0 or 1).
func (s Slot) Socket() int { return int(s) / ChannelsPerSocket }

// Channel returns the memory channel within the socket (0..7).
func (s Slot) Channel() int { return int(s) % ChannelsPerSocket }

// Name returns the slot letter "A".."P".
func (s Slot) Name() string {
	if !s.Valid() {
		return fmt.Sprintf("Slot(%d)", int(s))
	}
	return string(rune('A' + int(s)))
}

// String is an alias for Name.
func (s Slot) String() string { return s.Name() }

// AppendName appends the slot letter to dst without allocating (for valid
// slots; out-of-range slots fall back to Name's rendering).
func (s Slot) AppendName(dst []byte) []byte {
	if !s.Valid() {
		return append(dst, s.Name()...)
	}
	return append(dst, byte('A'+int(s)))
}

// ParseSlot parses a slot letter "A".."P" (case-insensitive).
func ParseSlot(name string) (Slot, error) {
	if len(name) != 1 {
		return 0, fmt.Errorf("topology: bad slot name %q", name)
	}
	c := name[0]
	if c >= 'a' && c <= 'p' {
		c -= 'a' - 'A'
	}
	if c < 'A' || c > 'P' {
		return 0, fmt.Errorf("topology: bad slot name %q", name)
	}
	return Slot(c - 'A'), nil
}

// AllSlots returns the 16 slots in order A..P.
func AllSlots() []Slot {
	out := make([]Slot, SlotsPerNode)
	for i := range out {
		out[i] = Slot(i)
	}
	return out
}

// DIMMIndex returns the system-global DIMM index of (node, slot), in
// [0, DIMMs). It panics on invalid coordinates.
func DIMMIndex(node NodeID, slot Slot) int {
	if !node.Valid() || !slot.Valid() {
		panic(fmt.Sprintf("topology: invalid DIMM coordinate %v/%v", node, slot))
	}
	return int(node)*SlotsPerNode + int(slot)
}
