package topology

import (
	"testing"
	"testing/quick"
)

func TestSystemConstants(t *testing.T) {
	if Nodes != 2592 {
		t.Errorf("Nodes = %d, want 2592", Nodes)
	}
	if DIMMs != 41472 {
		t.Errorf("DIMMs = %d, want 41472", DIMMs)
	}
	if NodesPerRack != 72 {
		t.Errorf("NodesPerRack = %d, want 72", NodesPerRack)
	}
	if SlotsPerNode != 16 {
		t.Errorf("SlotsPerNode = %d, want 16", SlotsPerNode)
	}
	// 16 DIMMs x 8 GiB = 128 GiB per node, matching the address layout.
	if NodeMemBytes != 128<<30 {
		t.Errorf("NodeMemBytes = %d, want 128 GiB", NodeMemBytes)
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	for _, id := range []NodeID{0, 1, 71, 72, 2591, Nodes / 2} {
		back := NewNodeID(id.Rack(), id.Chassis(), id.NodeInChassis())
		if back != id {
			t.Errorf("round trip %d -> %d", id, back)
		}
	}
}

func TestNodeIDCoordinateRanges(t *testing.T) {
	for id := NodeID(0); id < Nodes; id += 97 {
		if r := id.Rack(); r < 0 || r >= Racks {
			t.Fatalf("node %d rack %d out of range", id, r)
		}
		if c := id.Chassis(); c < 0 || c >= ChassisPerRack {
			t.Fatalf("node %d chassis %d out of range", id, c)
		}
		if n := id.NodeInChassis(); n < 0 || n >= NodesPerChassis {
			t.Fatalf("node %d pos %d out of range", id, n)
		}
	}
}

func TestNewNodeIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range rack")
		}
	}()
	NewNodeID(Racks, 0, 0)
}

func TestNodeNameRoundTrip(t *testing.T) {
	for _, id := range []NodeID{0, 5, 72, 1000, 2591} {
		got, err := ParseNodeID(id.String())
		if err != nil {
			t.Fatalf("ParseNodeID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Errorf("ParseNodeID(%q) = %d, want %d", id.String(), got, id)
		}
	}
}

func TestParseNodeIDErrors(t *testing.T) {
	for _, bad := range []string{"", "astra", "astra-r99c00n0", "astra-r00c99n0", "astra-r00c00n9", "node-r00c00n0"} {
		if _, err := ParseNodeID(bad); err == nil {
			t.Errorf("ParseNodeID(%q) should fail", bad)
		}
	}
}

func TestRegions(t *testing.T) {
	counts := map[Region]int{}
	for c := 0; c < ChassisPerRack; c++ {
		counts[RegionOfChassis(c)]++
	}
	for r := RegionBottom; r < NumRegions; r++ {
		if counts[r] != 6 {
			t.Errorf("region %v has %d chassis, want 6", r, counts[r])
		}
	}
	if RegionOfChassis(0) != RegionBottom || RegionOfChassis(17) != RegionTop {
		t.Error("region orientation wrong: chassis 0 must be bottom")
	}
	if RegionBottom.String() != "bottom" || RegionTop.String() != "top" || RegionMiddle.String() != "middle" {
		t.Error("region names wrong")
	}
}

func TestSlotProperties(t *testing.T) {
	if len(AllSlots()) != 16 {
		t.Fatal("AllSlots must return 16 slots")
	}
	// A..H are socket 0, I..P socket 1.
	for _, s := range AllSlots() {
		wantSocket := 0
		if s.Name() >= "I" {
			wantSocket = 1
		}
		if s.Socket() != wantSocket {
			t.Errorf("slot %s socket = %d, want %d", s, s.Socket(), wantSocket)
		}
	}
	s, err := ParseSlot("j")
	if err != nil || s.Name() != "J" {
		t.Errorf("ParseSlot(j) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "Q", "AA", "1"} {
		if _, err := ParseSlot(bad); err == nil {
			t.Errorf("ParseSlot(%q) should fail", bad)
		}
	}
}

func TestDIMMIndexUnique(t *testing.T) {
	seen := map[int]bool{}
	for _, node := range []NodeID{0, 1, 2591} {
		for _, slot := range AllSlots() {
			idx := DIMMIndex(node, slot)
			if idx < 0 || idx >= DIMMs {
				t.Fatalf("DIMMIndex out of range: %d", idx)
			}
			if seen[idx] {
				t.Fatalf("DIMMIndex collision at %d", idx)
			}
			seen[idx] = true
		}
	}
}

func TestPhysAddrRoundTrip(t *testing.T) {
	f := func(slot8 uint8, rank bool, bank8 uint8, row16 uint16, col16 uint16, off8 uint8) bool {
		a := CellAddr{
			Node: 17,
			Slot: Slot(int(slot8) % SlotsPerNode),
			Rank: 0,
			Bank: int(bank8) % BanksPerRank,
			Row:  int(row16) % RowsPerBank,
			Col:  int(col16) % ColsPerRow,
		}
		if rank {
			a.Rank = 1
		}
		off := int(off8) % WordBytes
		p := EncodePhysAddr(a, off)
		back, gotOff, err := DecodePhysAddr(17, p)
		return err == nil && back == a && gotOff == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPhysAddrBounds(t *testing.T) {
	if _, _, err := DecodePhysAddr(0, PhysAddr(NodeMemBytes)); err == nil {
		t.Error("DecodePhysAddr should reject out-of-range address")
	}
	a := CellAddr{Node: 0, Slot: 15, Rank: 1, Bank: 15, Row: RowsPerBank - 1, Col: ColsPerRow - 1}
	p := EncodePhysAddr(a, WordBytes-1)
	if !p.Valid() {
		t.Errorf("max coordinate address %#x should be valid", uint64(p))
	}
	if uint64(p) != NodeMemBytes-1 {
		t.Errorf("max coordinate address = %#x, want %#x (dense layout)", uint64(p), uint64(NodeMemBytes-1))
	}
}

func TestEncodePhysAddrPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodePhysAddr(CellAddr{Node: 0, Slot: 99}, 0)
}

func TestPageSize(t *testing.T) {
	a := CellAddr{Node: 0, Slot: 0, Rank: 0, Bank: 0, Row: 0, Col: 0}
	p0 := EncodePhysAddr(a, 0)
	a.Col = PageBytes / WordBytes // first word of next page
	p1 := EncodePhysAddr(a, 0)
	if p0.Page() == p1.Page() {
		t.Error("addresses one page apart mapped to same page")
	}
	if p0.Page() != 0 {
		t.Errorf("page of address 0 = %d", p0.Page())
	}
}

func TestLineBitPosition(t *testing.T) {
	seen := map[int]bool{}
	for col := 0; col < WordsPerLine; col++ {
		for bit := 0; bit < CodeBitsPerWord; bit++ {
			p := LineBitPosition(col, bit)
			if p < 0 || p > MaxLineBitPosition {
				t.Fatalf("LineBitPosition(%d,%d) = %d out of range", col, bit, p)
			}
			if seen[p] {
				t.Fatalf("LineBitPosition collision at %d", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != WordsPerLine*CodeBitsPerWord {
		t.Fatalf("expected %d distinct positions, got %d", WordsPerLine*CodeBitsPerWord, len(seen))
	}
	// Columns in different cache lines but same word offset share positions.
	if LineBitPosition(0, 5) != LineBitPosition(WordsPerLine, 5) {
		t.Error("line bit position should depend on col mod WordsPerLine only")
	}
}

func TestSensorSlotMapping(t *testing.T) {
	// Every slot maps to a DIMM sensor on its own socket.
	for _, s := range AllSlots() {
		sensor := SensorForSlot(s)
		if !sensor.IsDIMM() {
			t.Errorf("slot %s mapped to non-DIMM sensor %v", s, sensor)
		}
		if sensor.Socket() != s.Socket() {
			t.Errorf("slot %s (socket %d) mapped to sensor %v (socket %d)", s, s.Socket(), sensor, sensor.Socket())
		}
	}
	// Paper's grouping: A,C,E,G / B,D,F,H / I,K,M,O / J,L,N,P.
	groups := map[Sensor]string{}
	for _, s := range AllSlots() {
		groups[SensorForSlot(s)] += s.Name()
	}
	want := map[Sensor]string{
		SensorDIMMACEG: "ACEG",
		SensorDIMMBDFH: "BDFH",
		SensorDIMMIKMO: "IKMO",
		SensorDIMMJLNP: "JLNP",
	}
	for sensor, letters := range want {
		if groups[sensor] != letters {
			t.Errorf("sensor %v covers %q, want %q", sensor, groups[sensor], letters)
		}
	}
	// Each DIMM sensor covers exactly 4 slots.
	for _, sensor := range DIMMSensors() {
		if got := len(SlotsForSensor(sensor)); got != 4 {
			t.Errorf("sensor %v covers %d slots, want 4", sensor, got)
		}
	}
	if SlotsForSensor(SensorCPU1) != nil {
		t.Error("SlotsForSensor(CPU1) should be nil")
	}
}

func TestSensorNamesRoundTrip(t *testing.T) {
	for s := Sensor(0); s < NumSensors; s++ {
		back, err := ParseSensor(s.String())
		if err != nil || back != s {
			t.Errorf("sensor %v round trip failed: %v, %v", s, back, err)
		}
	}
	if _, err := ParseSensor("nope"); err == nil {
		t.Error("ParseSensor(nope) should fail")
	}
}

func TestAirflowGeometry(t *testing.T) {
	// CPU2 (socket 1) is upstream of CPU1 (socket 0): shallower depth.
	if AirflowDepth(SensorCPU2) >= AirflowDepth(SensorCPU1) {
		t.Error("CPU2 must be upstream (cooler) of CPU1")
	}
	// Socket-1 DIMM groups upstream of socket-0 DIMM groups.
	for _, s1 := range []Sensor{SensorDIMMIKMO, SensorDIMMJLNP} {
		for _, s0 := range []Sensor{SensorDIMMACEG, SensorDIMMBDFH} {
			if AirflowDepth(s1) >= AirflowDepth(s0) {
				t.Errorf("sensor %v should be upstream of %v", s1, s0)
			}
		}
	}
	for s := Sensor(0); s < NumSensors; s++ {
		d := AirflowDepth(s)
		if d < 0 || d > 1 {
			t.Errorf("AirflowDepth(%v) = %v out of [0,1]", s, d)
		}
	}
}

func TestTemperatureSensorLists(t *testing.T) {
	if got := len(TemperatureSensors()); got != 6 {
		t.Errorf("TemperatureSensors returned %d sensors, want 6", got)
	}
	for _, s := range TemperatureSensors() {
		if !s.IsTemperature() {
			t.Errorf("%v listed as temperature sensor", s)
		}
	}
	if SensorDCPower.IsTemperature() {
		t.Error("power sensor is not a temperature sensor")
	}
}
