// Package het models the Hardware Event Tracker (§3.5): the firmware
// facility that records uncorrectable errors and platform health events to
// the syslog. Two properties matter to the reproduction:
//
//   - the firmware gate: no HET records exist before the August 2019
//     firmware update (2019-08-23), which bounds the window over which the
//     paper can estimate the DUE rate (0.00948 per DIMM-year, FIT ≈ 1081);
//   - the event taxonomy of Fig 15, which mixes memory DUEs with
//     power-supply and sensor-threshold events.
package het

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/mce"
	"repro/internal/parallel"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// EventType enumerates the HET event taxonomy of Fig 15a. The misspelling
// "redundacy" is preserved from the paper's figures (and, presumably, the
// firmware).
type EventType int

// HET event types.
const (
	RedundancyLost EventType = iota
	UCGoingHigh
	PowerSupplyFailureDeasserted
	UNRGoingHigh
	UncorrectableECC
	PowerSupplyFailure
	UncorrectableMCE
	RedundancyInsufficient
	// NumEventTypes is the number of event types.
	NumEventTypes
)

var eventNames = [NumEventTypes]string{
	RedundancyLost:               "redundacyLost",
	UCGoingHigh:                  "ucGoingHigh",
	PowerSupplyFailureDeasserted: "powerSupplyFailureDetectedDeasserted",
	UNRGoingHigh:                 "unrGoingHigh",
	UncorrectableECC:             "uncorrectableECC",
	PowerSupplyFailure:           "powerSupplyFailureDetected",
	UncorrectableMCE:             "uncorrectableMachineCheckException",
	RedundancyInsufficient:       "redundacyNeInsufficientResources",
}

// String returns the wire name of the event type.
func (t EventType) String() string {
	if t < 0 || t >= NumEventTypes {
		return fmt.Sprintf("EventType(%d)", int(t))
	}
	return eventNames[t]
}

// ParseEventType parses a wire name.
func ParseEventType(s string) (EventType, error) {
	for t := EventType(0); t < NumEventTypes; t++ {
		if eventNames[t] == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("het: unknown event type %q", s)
}

// ParseEventTypeBytes parses a wire name from raw bytes without allocating
// (the string conversions below compile to allocation-free comparisons).
func ParseEventTypeBytes(b []byte) (EventType, error) {
	for t := EventType(0); t < NumEventTypes; t++ {
		if string(b) == eventNames[t] {
			return t, nil
		}
	}
	return 0, fmt.Errorf("het: unknown event type %q", b)
}

// Severity of a HET record.
type Severity int

// Severities, mirroring the paper's "NON-RECOVERABLE" classification.
const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityCritical
	SeverityNonRecoverable
	// NumSeverities is the number of severities.
	NumSeverities
)

var severityNames = [NumSeverities]string{
	SeverityInfo:           "INFO",
	SeverityWarning:        "WARNING",
	SeverityCritical:       "CRITICAL",
	SeverityNonRecoverable: "NON-RECOVERABLE",
}

// String returns the wire name of the severity.
func (s Severity) String() string {
	if s < 0 || s >= NumSeverities {
		return fmt.Sprintf("Severity(%d)", int(s))
	}
	return severityNames[s]
}

// ParseSeverity parses a wire name.
func ParseSeverity(v string) (Severity, error) {
	for s := Severity(0); s < NumSeverities; s++ {
		if severityNames[s] == v {
			return s, nil
		}
	}
	return 0, fmt.Errorf("het: unknown severity %q", v)
}

// ParseSeverityBytes parses a wire name from raw bytes without allocating.
func ParseSeverityBytes(b []byte) (Severity, error) {
	for s := Severity(0); s < NumSeverities; s++ {
		if string(b) == severityNames[s] {
			return s, nil
		}
	}
	return 0, fmt.Errorf("het: unknown severity %q", b)
}

// SeverityOf returns the severity the firmware assigns to an event type.
func SeverityOf(t EventType) Severity {
	switch t {
	case UncorrectableECC, UncorrectableMCE:
		return SeverityNonRecoverable
	case PowerSupplyFailure, RedundancyLost:
		return SeverityCritical
	case PowerSupplyFailureDeasserted:
		return SeverityInfo
	default:
		return SeverityWarning
	}
}

// Record is one HET syslog record.
type Record struct {
	Time     time.Time
	Node     topology.NodeID
	Type     EventType
	Severity Severity
	// Addr is the affected address for memory events, 0 otherwise.
	Addr topology.PhysAddr
}

// Recorded reports whether the firmware would have written the record at
// all: nothing is recorded before the firmware gate.
func (r Record) Recorded() bool { return !r.Time.Before(simtime.HETStart) }

// FromDUE converts a machine-check DUE record into its HET form.
func FromDUE(d mce.DUERecord) Record {
	t := UncorrectableECC
	if d.Fatal {
		t = UncorrectableMCE
	}
	return Record{Time: d.Time, Node: d.Node, Type: t, Severity: SeverityNonRecoverable, Addr: d.Addr}
}

// ambientRates are system-wide daily event rates for the non-memory HET
// types, calibrated so daily counts resemble Fig 15a (a few to ~25 per
// day, with power-supply events arriving in assert/de-assert pairs).
var ambientRates = map[EventType]float64{
	RedundancyLost:         1.6,
	UCGoingHigh:            2.4,
	UNRGoingHigh:           0.8,
	PowerSupplyFailure:     0.9,
	RedundancyInsufficient: 0.5,
}

// GenerateAmbient produces the non-memory HET event stream over
// [start, end) across nodes [0, nodes), in time order. Days drawn as
// "burst days" (a failing PSU shelf being serviced) multiply rates by
// burstFactor, reproducing the spiky daily counts of Fig 15a. Events
// before the firmware gate are suppressed.
func GenerateAmbient(seed uint64, start, end time.Time, nodes int) []Record {
	recs, err := GenerateAmbientWorkers(context.Background(), seed, start, end, nodes, 1)
	if err != nil {
		// Unreachable: a background context never cancels and the inline
		// path has no other error source.
		panic(err)
	}
	return recs
}

// GenerateAmbientWorkers is GenerateAmbient sharded by day across a worker
// pool (every day draws from its own derived stream, so day order is the
// only cross-day coupling). The output is bit-identical at every worker
// count; workers <= 1 runs inline. Cancelling ctx aborts with its error.
func GenerateAmbientWorkers(ctx context.Context, seed uint64, start, end time.Time, nodes, workers int) ([]Record, error) {
	rng := simrand.NewStream(seed).Derive("het-ambient")
	first := simtime.DayOf(start)
	days := 0
	for day := first; day.Time().Before(end); day++ {
		days++
	}
	perDay := make([][]Record, days)
	err := parallel.ForEachChunkCtx(ctx, workers, days, func(ctx context.Context, _, lo, hi int) error {
		for d := lo; d < hi; d++ {
			if err := parallel.Poll(ctx, d-lo); err != nil {
				return err
			}
			perDay[d] = ambientForDay(rng, first+simtime.Day(d), end, nodes)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, recs := range perDay {
		total += len(recs)
	}
	out := make([]Record, 0, total)
	for _, recs := range perDay {
		out = append(out, recs...)
	}
	sortRecords(out)
	return out, nil
}

// ambientForDay draws one day's ambient events from the day's derived
// stream.
func ambientForDay(rng *simrand.Stream, day simtime.Day, end time.Time, nodes int) []Record {
	const (
		burstProb   = 0.06
		burstFactor = 8
	)
	ds := rng.DeriveN("day", uint64(day))
	factor := 1.0
	if ds.Bool(burstProb) {
		factor = burstFactor
	}
	var out []Record
	for t := EventType(0); t < NumEventTypes; t++ {
		rate, ok := ambientRates[t]
		if !ok {
			continue
		}
		n := ds.Poisson(rate * factor)
		for i := 0; i < n; i++ {
			minute := day.Start() + simtime.Minute(ds.IntN(simtime.MinutesPerDay))
			node := topology.NodeID(ds.IntN(nodes))
			rec := Record{Time: minute.Time(), Node: node, Type: t, Severity: SeverityOf(t)}
			if !rec.Recorded() {
				continue
			}
			out = append(out, rec)
			// PSU failures de-assert within the hour.
			if t == PowerSupplyFailure {
				clear := rec
				clear.Type = PowerSupplyFailureDeasserted
				clear.Severity = SeverityOf(clear.Type)
				clear.Time = rec.Time.Add(time.Duration(5+ds.IntN(55)) * time.Minute)
				if clear.Recorded() && clear.Time.Before(end) {
					out = append(out, clear)
				}
			}
		}
	}
	return out
}

// Merge combines record streams into one time-ordered stream, dropping
// anything the firmware gate suppresses.
func Merge(streams ...[]Record) []Record {
	var out []Record
	for _, s := range streams {
		for _, r := range s {
			if r.Recorded() {
				out = append(out, r)
			}
		}
	}
	sortRecords(out)
	return out
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(a, b int) bool {
		if !recs[a].Time.Equal(recs[b].Time) {
			return recs[a].Time.Before(recs[b].Time)
		}
		if recs[a].Node != recs[b].Node {
			return recs[a].Node < recs[b].Node
		}
		return recs[a].Type < recs[b].Type
	})
}
