package het

import (
	"testing"
	"time"

	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestEventTypeNamesRoundTrip(t *testing.T) {
	for et := EventType(0); et < NumEventTypes; et++ {
		back, err := ParseEventType(et.String())
		if err != nil || back != et {
			t.Errorf("event type %v round trip: %v, %v", et, back, err)
		}
	}
	if _, err := ParseEventType("bogus"); err == nil {
		t.Error("ParseEventType(bogus) should fail")
	}
}

func TestSeverityNamesRoundTrip(t *testing.T) {
	for s := Severity(0); s < NumSeverities; s++ {
		back, err := ParseSeverity(s.String())
		if err != nil || back != s {
			t.Errorf("severity %v round trip: %v, %v", s, back, err)
		}
	}
	if _, err := ParseSeverity("FATAL"); err == nil {
		t.Error("ParseSeverity(FATAL) should fail")
	}
}

func TestSeverityOfMemoryEvents(t *testing.T) {
	if SeverityOf(UncorrectableECC) != SeverityNonRecoverable ||
		SeverityOf(UncorrectableMCE) != SeverityNonRecoverable {
		t.Error("memory DUE events must be NON-RECOVERABLE (Fig 15b)")
	}
	if SeverityOf(UCGoingHigh) == SeverityNonRecoverable {
		t.Error("threshold events are not NON-RECOVERABLE")
	}
}

func TestFirmwareGate(t *testing.T) {
	before := Record{Time: simtime.HETStart.Add(-time.Hour)}
	after := Record{Time: simtime.HETStart}
	if before.Recorded() {
		t.Error("record before firmware gate should be suppressed")
	}
	if !after.Recorded() {
		t.Error("record at firmware gate should be recorded")
	}
}

func TestFromDUE(t *testing.T) {
	d := mce.DUERecord{Time: simtime.HETStart.Add(time.Hour), Node: 3, Addr: 0x1000, Fatal: true}
	r := FromDUE(d)
	if r.Type != UncorrectableMCE || r.Severity != SeverityNonRecoverable || r.Addr != 0x1000 {
		t.Errorf("FromDUE fatal = %+v", r)
	}
	d.Fatal = false
	if FromDUE(d).Type != UncorrectableECC {
		t.Error("non-fatal DUE should map to uncorrectableECC")
	}
}

func TestGenerateAmbient(t *testing.T) {
	recs := GenerateAmbient(1, simtime.HETStart, simtime.StudyEnd, topology.Nodes)
	if len(recs) == 0 {
		t.Fatal("no ambient events generated")
	}
	types := map[EventType]int{}
	prev := time.Time{}
	for i, r := range recs {
		if r.Time.Before(prev) {
			t.Fatalf("record %d out of order", i)
		}
		prev = r.Time
		if !r.Recorded() {
			t.Fatalf("record %d precedes the firmware gate", i)
		}
		if r.Type == UncorrectableECC || r.Type == UncorrectableMCE {
			t.Fatalf("ambient generator produced a memory DUE")
		}
		types[r.Type]++
	}
	for _, et := range []EventType{RedundancyLost, UCGoingHigh, PowerSupplyFailure, PowerSupplyFailureDeasserted} {
		if types[et] == 0 {
			t.Errorf("no %v events in 22 days", et)
		}
	}
	// PSU failures arrive in assert/de-assert pairs; allow loss at the
	// window edge.
	if d := types[PowerSupplyFailure] - types[PowerSupplyFailureDeasserted]; d < 0 || d > 3 {
		t.Errorf("assert/deassert imbalance: %d vs %d",
			types[PowerSupplyFailure], types[PowerSupplyFailureDeasserted])
	}
	// Daily volume should be "a few to ~25" — mean within sane bounds.
	days := simtime.StudyEnd.Sub(simtime.HETStart).Hours() / 24
	perDay := float64(len(recs)) / days
	if perDay < 2 || perDay > 40 {
		t.Errorf("ambient events per day = %v", perDay)
	}
}

func TestGenerateAmbientDeterministic(t *testing.T) {
	a := GenerateAmbient(5, simtime.HETStart, simtime.EnvEnd, 100)
	b := GenerateAmbient(5, simtime.HETStart, simtime.EnvEnd, 100)
	if len(a) != len(b) {
		t.Fatal("same-seed streams differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed records differ")
		}
	}
}

func TestGenerateAmbientBeforeGateSuppressed(t *testing.T) {
	recs := GenerateAmbient(2, simtime.EnvStart, simtime.HETStart, topology.Nodes)
	if len(recs) != 0 {
		t.Errorf("%d records generated entirely before the firmware gate", len(recs))
	}
}

func TestMerge(t *testing.T) {
	early := Record{Time: simtime.HETStart.Add(-time.Hour), Type: UCGoingHigh}
	a := Record{Time: simtime.HETStart.Add(2 * time.Hour), Type: RedundancyLost}
	b := Record{Time: simtime.HETStart.Add(time.Hour), Type: UNRGoingHigh}
	got := Merge([]Record{early, a}, []Record{b})
	if len(got) != 2 {
		t.Fatalf("Merge kept %d records, want 2 (gate drops one)", len(got))
	}
	if got[0].Type != UNRGoingHigh || got[1].Type != RedundancyLost {
		t.Errorf("Merge order wrong: %+v", got)
	}
}
