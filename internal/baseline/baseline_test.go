package baseline

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/envmodel"
	"repro/internal/faultmodel"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("kind %d name %q invalid or duplicate", int(k), name)
		}
		seen[name] = true
	}
}

func generateWorld(t *testing.T, kind Kind, seed uint64, nodes int) *World {
	t.Helper()
	w, err := NewScenario(kind, seed, nodes).Generate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// envWindowRecords encodes the population's CE events and filters to the
// environmental window.
func envWindowRecords(pop *faultmodel.Population) []mce.CERecord {
	enc := mce.NewEncoder(pop.Config.Seed)
	var out []mce.CERecord
	for i, ev := range pop.CEs {
		if ev.Minute < simtime.MinuteOf(simtime.EnvStart) || ev.Minute >= simtime.MinuteOf(simtime.EnvEnd) {
			continue
		}
		out = append(out, mustEncodeCE(enc, ev, i))
	}
	return out
}

// dimmTrendStrength averages the Fig 13 trend strength over the four DIMM
// sensors.
func dimmTrendStrength(t *testing.T, w *World, nodes int) float64 {
	t.Helper()
	records := envWindowRecords(w.Pop)
	panels := core.AnalyzeTempDeciles(records, w.Env, nodes)
	sum, n := 0.0, 0
	for _, p := range panels {
		if !p.Sensor.IsDIMM() || p.TrendErr != nil {
			continue
		}
		sum += core.TrendStrength(p.Trend, p.Bins)
		n++
	}
	if n == 0 {
		t.Fatal("no DIMM panels")
	}
	return sum / float64(n)
}

func TestSchroederCouplingDetectable(t *testing.T) {
	const nodes = 600
	// Control: the identical world with the coupling switched off, so the
	// comparison isolates the temperature effect.
	control := NewScenario(Schroeder, 50, nodes)
	control.TempDoublingC = 0
	cw, err := control.Generate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	schroeder := generateWorld(t, Schroeder, 50, nodes)

	sc := dimmTrendStrength(t, cw, nodes)
	ss := dimmTrendStrength(t, schroeder, nodes)
	// The coupled world must show a decisively stronger positive
	// temperature trend than the control under the identical analysis.
	if ss < 0.5 {
		t.Errorf("Schroeder trend strength = %v, want > 0.5", ss)
	}
	if ss <= sc {
		t.Errorf("Schroeder trend (%v) should exceed uncoupled control (%v)", ss, sc)
	}
}

func TestSchroederThinningReducesVolume(t *testing.T) {
	plain := generateWorld(t, Astra, 51, 300)
	coupled := generateWorld(t, Schroeder, 51, 300)
	if len(coupled.Pop.CEs) >= len(plain.Pop.CEs) {
		t.Errorf("thinning did not reduce error volume: %d vs %d",
			len(coupled.Pop.CEs), len(plain.Pop.CEs))
	}
	if len(coupled.Pop.CEs) == 0 {
		t.Error("thinning removed everything")
	}
}

func TestHsuPlacesFaultsOnHotNodes(t *testing.T) {
	const nodes = 600
	w := generateWorld(t, Hsu, 52, nodes)
	faulty := map[topology.NodeID]bool{}
	for _, f := range w.Pop.Faults {
		faulty[f.Anchor.Node] = true
	}
	var hotSum, allSum float64
	for n := 0; n < nodes; n++ {
		temp := NodeHeat(w.Env, topology.NodeID(n))
		allSum += temp
		if faulty[topology.NodeID(n)] {
			hotSum += temp
		}
	}
	faultyMean := hotSum / float64(len(faulty))
	overallMean := allSum / float64(nodes)
	if faultyMean <= overallMean+0.5 {
		t.Errorf("faulty-node mean temp %v not above overall %v", faultyMean, overallMean)
	}
}

func TestHsuPreservesFaultStructure(t *testing.T) {
	// Control: the same world with the placement coupling switched off.
	control := NewScenario(Hsu, 53, 300)
	control.NodeDoublingC = 0
	plain, err := control.Generate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hsu := generateWorld(t, Hsu, 53, 300)
	if len(plain.Pop.Faults) != len(hsu.Pop.Faults) {
		t.Errorf("fault count changed: %d vs %d", len(plain.Pop.Faults), len(hsu.Pop.Faults))
	}
	if len(plain.Pop.CEs) != len(hsu.Pop.CEs) {
		t.Errorf("CE count changed: %d vs %d", len(plain.Pop.CEs), len(hsu.Pop.CEs))
	}
	// Per-fault error counts and modes are preserved (only node moved).
	for i := range plain.Pop.Faults {
		a, b := plain.Pop.Faults[i], hsu.Pop.Faults[i]
		if a.Mode != b.Mode || a.NErrors != b.NErrors || a.Anchor.Slot != b.Anchor.Slot {
			t.Fatalf("fault %d structure changed: %+v vs %+v", i, a, b)
		}
	}
	// Events stay consistent with their fault's (possibly moved) node.
	for _, e := range hsu.Pop.CEs {
		if hsu.Pop.Faults[e.FaultID].Anchor.Node != e.Node {
			t.Fatal("event node inconsistent with fault node after remap")
		}
	}
}

func TestSridharanTopExcess(t *testing.T) {
	w := generateWorld(t, Sridharan, 54, topology.Nodes)
	var regionFaults [topology.NumRegions]int
	for _, f := range w.Pop.Faults {
		regionFaults[f.Anchor.Node.Region()]++
	}
	if regionFaults[topology.RegionTop] <= regionFaults[topology.RegionBottom] {
		t.Errorf("no top-of-rack fault excess: %v", regionFaults)
	}
	// Vertical thermal gradient: region mean temps increase bottom to top.
	month := simtime.MonthKey(simtime.EnvStart)
	var regionTemp [topology.NumRegions]float64
	var regionN [topology.NumRegions]int
	for n := 0; n < topology.Nodes; n += 7 {
		node := topology.NodeID(n)
		regionTemp[node.Region()] += w.Env.MonthlyMean(node, topology.SensorDIMMACEG, month)
		regionN[node.Region()]++
	}
	bottom := regionTemp[0] / float64(regionN[0])
	top := regionTemp[2] / float64(regionN[2])
	if top-bottom < 4 {
		t.Errorf("vertical gradient too small: top %v vs bottom %v", top, bottom)
	}
}

func TestAstraScenarioMatchesDefaults(t *testing.T) {
	s := NewScenario(Astra, 7, 100)
	if s.TempDoublingC != 0 || s.NodeDoublingC != 0 {
		t.Error("Astra scenario must be uncoupled")
	}
	if s.Env.RegionGradientC != 0 {
		t.Error("Astra scenario must have no vertical gradient")
	}
	if s.Env != envmodel.DefaultParams() {
		t.Error("Astra env params should be the defaults")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generateWorld(t, Schroeder, 55, 200)
	b := generateWorld(t, Schroeder, 55, 200)
	if len(a.Pop.CEs) != len(b.Pop.CEs) {
		t.Fatal("same-seed worlds differ")
	}
	for i := range a.Pop.CEs {
		if a.Pop.CEs[i] != b.Pop.CEs[i] {
			t.Fatal("same-seed events differ")
		}
	}
}
