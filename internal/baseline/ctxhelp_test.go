package baseline

import (
	"repro/internal/faultmodel"
	"repro/internal/mce"
)

// mustEncodeCE adapts the error-returning encoder for test sites where an
// encode failure is simply a test bug.
func mustEncodeCE(enc *mce.Encoder, ev faultmodel.CEEvent, i int) mce.CERecord {
	rec, err := enc.EncodeCE(ev, i)
	if err != nil {
		panic(err)
	}
	return rec
}
