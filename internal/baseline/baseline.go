// Package baseline implements the comparison models from the prior work
// the paper contrasts itself with (§3.3, §3.4):
//
//   - Schroeder et al. (SIGMETRICS'09): correctable-error rates double for
//     every ~20 °C of temperature, on systems with wide (> 20 °C per
//     decile span) thermal variation;
//   - Hsu & Feng (IPDPS'05): Arrhenius-style node failure rates that
//     double per 10 °C;
//   - Sridharan et al. (SC'13, Cielo/Jaguar): bottom-to-top rack airflow
//     producing ~20% more faults in top chassis than bottom.
//
// Astra's own data exhibits none of these couplings; the reproduction runs
// the *same* analysis pipeline over these baseline worlds to demonstrate
// that the methodology distinguishes coupled regimes from Astra's
// uncoupled one — i.e. the paper's negative results are detections, not
// blind spots.
package baseline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/envmodel"
	"repro/internal/faultmodel"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Kind selects a world model.
type Kind int

// World models.
const (
	// Astra is the paper's system: tight thermal control, no coupling.
	Astra Kind = iota
	// Schroeder couples CE rates to temperature (x2 per 20 °C) on a
	// thermally loose system.
	Schroeder
	// Hsu places faults preferentially on hot nodes (x2 per 10 °C).
	Hsu
	// Sridharan adds a bottom-to-top thermal gradient and a matching
	// top-of-rack fault excess.
	Sridharan
	// NumKinds is the number of world models.
	NumKinds
)

// String names the model.
func (k Kind) String() string {
	switch k {
	case Astra:
		return "astra"
	case Schroeder:
		return "schroeder"
	case Hsu:
		return "hsu-arrhenius"
	case Sridharan:
		return "sridharan-positional"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scenario is a fully-specified world: fault configuration, environment
// parameters and coupling constants.
type Scenario struct {
	Kind Kind
	// Fault is the fault-population configuration.
	Fault faultmodel.Config
	// Env is the telemetry calibration.
	Env envmodel.Params
	// TempDoublingC couples error emission to temperature: the CE rate
	// doubles for every TempDoublingC degrees. 0 disables.
	TempDoublingC float64
	// NodeDoublingC couples fault placement to node temperature: faulty
	// nodes are re-drawn with weight 2^(T/NodeDoublingC). 0 disables.
	NodeDoublingC float64
}

// NewScenario builds the standard scenario for a world model at the given
// seed and node count.
func NewScenario(kind Kind, seed uint64, nodes int) Scenario {
	fc := faultmodel.DefaultConfig(seed)
	fc.Nodes = nodes
	ep := envmodel.DefaultParams()
	s := Scenario{Kind: kind, Fault: fc, Env: ep}
	if kind != Astra {
		// The comparison systems did not exhibit Astra's pathological-node
		// concentration (8 nodes carrying half the errors); an unbounded
		// error tail would also let a single fault swamp the coupled
		// signal these worlds exist to demonstrate.
		s.Fault.PathologicalNodeFrac = 0
		s.Fault.MaxErrorsPerFault = 2000
	}
	switch kind {
	case Schroeder:
		// A thermally loose fleet: wide per-node spread, like the
		// datacenters Schroeder et al. measured (>20 °C decile spans).
		s.Env.DIMMNodeSigma = 6
		s.Env.CPUNodeSigma = 8
		s.Env.DIMMGain = 14
		s.Env.CPUGain = 24
		s.TempDoublingC = 20
	case Hsu:
		s.Env.CPUNodeSigma = 6
		s.Env.DIMMNodeSigma = 4
		s.NodeDoublingC = 10
	case Sridharan:
		// Bottom-to-top airflow: each region runs ~4 °C hotter than the
		// one below, and fault incidence follows (~20% top-vs-bottom).
		s.Env.RegionGradientC = 4
		s.Fault.RegionWeights = [topology.NumRegions]float64{1.0, 1.1, 1.2}
	}
	return s
}

// World is a generated baseline world.
type World struct {
	Scenario Scenario
	Pop      *faultmodel.Population
	Env      *envmodel.Model
}

// Generate builds the world: the fault population (with any coupling
// applied) and the matching telemetry model.
func (s Scenario) Generate(ctx context.Context) (*World, error) {
	env := envmodel.New(s.Fault.Seed, s.Env)
	pop, err := faultmodel.Generate(ctx, s.Fault)
	if err != nil {
		return nil, err
	}
	if s.NodeDoublingC > 0 {
		remapFaultyNodes(pop, env, s.NodeDoublingC)
	}
	if s.TempDoublingC > 0 {
		coupleErrorsToTemperature(pop, env, s.TempDoublingC)
	}
	return &World{Scenario: s, Pop: pop, Env: env}, nil
}

// NodeHeat returns a node's long-run thermal level: the mean of its two
// CPU sensors over the first environmental month. The Hsu coupling weights
// fault placement by this quantity.
func NodeHeat(env *envmodel.Model, node topology.NodeID) float64 {
	month := simtime.MonthKey(simtime.EnvStart)
	return (env.MonthlyMean(node, topology.SensorCPU1, month) +
		env.MonthlyMean(node, topology.SensorCPU2, month)) / 2
}

// remapFaultyNodes implements the Hsu/Arrhenius coupling: the set of
// faulty nodes is re-drawn with probability weight 2^(T/doublingC), then
// each originally-faulty node's faults and errors move wholesale to its
// replacement. Per-node fault structure (counts, modes, footprints,
// error streams) is preserved exactly; only *which* nodes are bad changes.
func remapFaultyNodes(pop *faultmodel.Population, env *envmodel.Model, doublingC float64) {
	nodes := pop.Config.Nodes
	old := make([]topology.NodeID, 0)
	seen := map[topology.NodeID]bool{}
	for _, f := range pop.Faults {
		if !seen[f.Anchor.Node] {
			seen[f.Anchor.Node] = true
			old = append(old, f.Anchor.Node)
		}
	}
	// Weighted sample without replacement of the same number of nodes.
	rng := simrand.NewStream(pop.Config.Seed).Derive("hsu-remap")
	weights := make([]float64, nodes)
	for n := range weights {
		weights[n] = math.Exp2(NodeHeat(env, topology.NodeID(n)) / doublingC)
	}
	mapping := map[topology.NodeID]topology.NodeID{}
	for _, o := range old {
		idx := rng.Categorical(weights)
		weights[idx] = 0 // without replacement
		mapping[o] = topology.NodeID(idx)
	}
	for i := range pop.Faults {
		pop.Faults[i].Anchor.Node = mapping[pop.Faults[i].Anchor.Node]
	}
	for i := range pop.CEs {
		pop.CEs[i].Node = mapping[pop.CEs[i].Node]
	}
}

// coupleErrorsToTemperature implements the Schroeder coupling by thinning:
// an error at instantaneous DIMM temperature T survives with probability
// 2^((T-Tmax)/doublingC), where Tmax is the hot end of the plausible DIMM
// range. Cold-period errors are suppressed, so surviving error rates
// double per doublingC just as in the SIGMETRICS'09 data.
func coupleErrorsToTemperature(pop *faultmodel.Population, env *envmodel.Model, doublingC float64) {
	rng := simrand.NewStream(pop.Config.Seed).Derive("schroeder-thin")
	const tMax = 75.0
	kept := pop.CEs[:0]
	for _, ev := range pop.CEs {
		cell, _, err := topology.DecodePhysAddr(ev.Node, ev.Addr)
		if err != nil {
			continue
		}
		sensor := topology.SensorForSlot(cell.Slot)
		temp := env.TrueValue(ev.Node, sensor, ev.Minute)
		p := math.Exp2((temp - tMax) / doublingC)
		if p >= 1 || rng.Bool(p) {
			kept = append(kept, ev)
		}
	}
	pop.CEs = kept
}
