package paper

import (
	"context"
	"strings"
	"testing"

	astra "repro"
)

func TestClaimsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Source == "" || c.Statement == "" || c.PaperValue == "" || c.Measure == nil {
			t.Errorf("claim %+v incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim ID %q", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 25 {
		t.Errorf("only %d claims; the evaluation has more content", len(seen))
	}
}

func TestCompareSmallScale(t *testing.T) {
	study, err := astra.Run(context.Background(), astra.Options{Seed: 1, Nodes: 600})
	if err != nil {
		t.Fatal(err)
	}
	rows := Compare(study, mustAnalyze(study))
	if len(rows) != len(Claims()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Claims()))
	}
	for _, row := range rows {
		if row.Measured == "" {
			t.Errorf("%s: empty measurement", row.Claim.ID)
		}
	}
	// Even at reduced scale, the bulk of the shape claims hold.
	if pass := PassCount(rows); float64(pass) < 0.7*float64(len(rows)) {
		for _, row := range rows {
			if !row.Pass {
				t.Logf("failed: %s = %s", row.Claim.ID, row.Measured)
			}
		}
		t.Errorf("only %d of %d claims hold at 600 nodes", pass, len(rows))
	}
}

func TestCompareFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale comparison skipped in -short mode")
	}
	study, err := astra.Run(context.Background(), astra.Options{Seed: 1, Nodes: astra.FullScale})
	if err != nil {
		t.Fatal(err)
	}
	rows := Compare(study, mustAnalyze(study))
	var failed []string
	for _, row := range rows {
		if !row.Pass {
			failed = append(failed, row.Claim.ID+" = "+row.Measured)
		}
	}
	// At full scale every claim must hold: this is the reproduction bar.
	if len(failed) > 0 {
		t.Errorf("%d claims failed at full scale:\n%s", len(failed), strings.Join(failed, "\n"))
	}
}

func TestMarkdownRendering(t *testing.T) {
	rows := []Row{
		{Claim: Claim{ID: "x", Source: "s", Statement: "st", PaperValue: "1"}, Measured: "2", Pass: true},
		{Claim: Claim{ID: "y", Source: "s", Statement: "st", PaperValue: "1"}, Measured: "9", Pass: false},
	}
	md := Markdown(rows)
	if !strings.Contains(md, "| x |") || !strings.Contains(md, "**NO**") {
		t.Errorf("markdown:\n%s", md)
	}
	if !strings.Contains(md, "1 of 2 claims hold") {
		t.Errorf("summary missing:\n%s", md)
	}
}
