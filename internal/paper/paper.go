// Package paper encodes the quantitative claims of Ferreira et al.
// (HPDC'22) as machine-checkable comparisons against a reproduction run.
// Each claim carries the paper's reported value, extracts the measured
// equivalent from a Study/Results pair, and applies a shape check — the
// reproduction standard is "who wins, by roughly what factor, where the
// crossovers fall", not absolute-number equality (the substrate is a
// simulator, not the authors' machine).
//
// The comparison table this package produces is the source of
// EXPERIMENTS.md (via cmd/astrareport -experiments).
package paper

import (
	"fmt"
	"math"
	"strings"

	astra "repro"
	"repro/internal/core"
	"repro/internal/inventory"
	"repro/internal/report"
	"repro/internal/topology"
)

// Claim is one quantitative statement from the paper.
type Claim struct {
	// ID is a stable slug ("fig5b-top8").
	ID string
	// Source cites the table/figure/section.
	Source string
	// Statement paraphrases the claim.
	Statement string
	// PaperValue is the value as the paper reports it.
	PaperValue string
	// Measure extracts the measured value and whether the shape holds.
	Measure func(s *astra.Study, r *astra.Results) (measured string, pass bool)
}

// Row is one evaluated comparison.
type Row struct {
	Claim    Claim
	Measured string
	Pass     bool
}

// Compare evaluates every claim against a study.
func Compare(s *astra.Study, r *astra.Results) []Row {
	claims := Claims()
	rows := make([]Row, len(claims))
	for i, c := range claims {
		measured, pass := c.Measure(s, r)
		rows[i] = Row{Claim: c, Measured: measured, Pass: pass}
	}
	return rows
}

// PassCount returns how many rows passed.
func PassCount(rows []Row) int {
	n := 0
	for _, row := range rows {
		if row.Pass {
			n++
		}
	}
	return n
}

// Markdown renders the comparison as a GitHub-flavored table.
func Markdown(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("| ID | Source | Claim | Paper | Measured | Shape holds |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	for _, row := range rows {
		verdict := "yes"
		if !row.Pass {
			verdict = "**NO**"
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
			row.Claim.ID, row.Claim.Source, row.Claim.Statement,
			row.Claim.PaperValue, row.Measured, verdict)
	}
	fmt.Fprintf(&sb, "\n%d of %d claims hold.\n", PassCount(rows), len(rows))
	return sb.String()
}

// between reports lo <= v <= hi.
func between(v, lo, hi float64) bool { return v >= lo && v <= hi }

// Claims returns the full claim list. Checks are calibrated for full-scale
// runs; several concentration statistics are meaningless on tiny systems.
func Claims() []Claim {
	return []Claim{
		{
			ID: "table1-processors", Source: "Table 1", Statement: "processors replaced during stabilization",
			PaperValue: "836 (16.1% of 5184)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				totals := s.Dataset.Inventory.Totals()
				pop := float64(inventory.Processor.Population()) * float64(s.Options.Nodes) / float64(topology.Nodes)
				pct := float64(totals[inventory.Processor]) / pop
				return fmt.Sprintf("%d (%s)", totals[inventory.Processor], report.FormatPct(pct)), between(pct, 0.08, 0.26)
			},
		},
		{
			ID: "table1-motherboards", Source: "Table 1", Statement: "motherboards replaced",
			PaperValue: "46 (1.8% of 2592)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				totals := s.Dataset.Inventory.Totals()
				pop := float64(inventory.Motherboard.Population()) * float64(s.Options.Nodes) / float64(topology.Nodes)
				pct := float64(totals[inventory.Motherboard]) / pop
				return fmt.Sprintf("%d (%s)", totals[inventory.Motherboard], report.FormatPct(pct)), between(pct, 0.005, 0.04)
			},
		},
		{
			ID: "table1-dimms", Source: "Table 1", Statement: "DIMMs replaced",
			PaperValue: "1515 (3.7% of 41472)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				totals := s.Dataset.Inventory.Totals()
				pop := float64(inventory.DIMM.Population()) * float64(s.Options.Nodes) / float64(topology.Nodes)
				pct := float64(totals[inventory.DIMM]) / pop
				return fmt.Sprintf("%d (%s)", totals[inventory.DIMM], report.FormatPct(pct)), between(pct, 0.018, 0.074)
			},
		},
		{
			ID: "fig4a-total-ces", Source: "§3.2 / Fig 4a", Statement: "total correctable errors over the study window",
			PaperValue: "4,369,731 (≈6/node/day)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				perNodeDay := float64(r.Breakdown.Total) / float64(s.Options.Nodes) / astra.StudyWindowDays()
				return fmt.Sprintf("%s (%.1f/node/day)", report.FormatCount(float64(r.Breakdown.Total)), perNodeDay),
					between(perNodeDay, 2, 15)
			},
		},
		{
			ID: "fig4a-mode-order", Source: "Fig 4a", Statement: "single-bit faults dominate the fault mix",
			PaperValue: "single-bit ≫ word/column/bank",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				fm := r.Breakdown.FaultsByMode
				return fmt.Sprintf("bit=%d word=%d col=%d bank=%d",
						fm[core.ModeSingleBit], fm[core.ModeSingleWord], fm[core.ModeSingleColumn], fm[core.ModeSingleBank]),
					fm[core.ModeSingleBit] > 3*fm[core.ModeSingleWord] &&
						fm[core.ModeSingleBit] > 3*fm[core.ModeSingleColumn] &&
						fm[core.ModeSingleBit] > 3*fm[core.ModeSingleBank]
			},
		},
		{
			ID: "fig4a-trend", Source: "§3.2 / Fig 4a", Statement: "monthly error counts trend slightly downward",
			PaperValue: "downward trend credited to page retirement",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				// OLS on log-counts over the full months; heavy-tailed
				// noise allows anything up to mildly positive.
				var xs, ys []float64
				for i, c := range r.Breakdown.AllErrors {
					if i == 0 || i == len(r.Breakdown.AllErrors)-1 || c == 0 {
						continue // partial boundary months
					}
					xs = append(xs, float64(i))
					ys = append(ys, math.Log(float64(c)))
				}
				fit, err := fitOLS(xs, ys)
				if err != nil {
					return "insufficient data", false
				}
				return fmt.Sprintf("log-slope %+.2f/month", fit), fit < 0.15
			},
		},
		{
			ID: "fig4b-median", Source: "Fig 4b", Statement: "median errors per fault",
			PaperValue: "1",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return fmt.Sprintf("%.0f", r.ErrorsPerFault.Median), r.ErrorsPerFault.Median == 1
			},
		},
		{
			ID: "fig4b-max", Source: "Fig 4b", Statement: "maximum errors from a single fault",
			PaperValue: "≈91,000",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return report.FormatCount(float64(r.ErrorsPerFault.Max)), between(float64(r.ErrorsPerFault.Max), 2e4, 9.2e4)
			},
		},
		{
			ID: "fig5-nodes-with-ce", Source: "§3.2 / Fig 5", Statement: "fraction of nodes with ≥1 CE",
			PaperValue: "1013 of 2592 (39.1%)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				frac := float64(r.PerNode.NodesWithErrors) / float64(s.Options.Nodes)
				return fmt.Sprintf("%d of %d (%s)", r.PerNode.NodesWithErrors, s.Options.Nodes, report.FormatPct(frac)),
					between(frac, 0.28, 0.52)
			},
		},
		{
			ID: "fig5b-top8", Source: "Fig 5b", Statement: "CE share of the 8 busiest nodes",
			PaperValue: ">50%",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return report.FormatPct(r.PerNode.TopShare8), between(r.PerNode.TopShare8, 0.4, 0.85)
			},
		},
		{
			ID: "fig5b-top2pct", Source: "Fig 5b", Statement: "CE share of the top 2% of nodes",
			PaperValue: "≈90%",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return report.FormatPct(r.PerNode.TopShare2Pct), between(r.PerNode.TopShare2Pct, 0.8, 1.0)
			},
		},
		{
			ID: "fig5a-powerlaw", Source: "Fig 5a", Statement: "faults per node follow a power law",
			PaperValue: "power law (Clauset et al.)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				if r.PerNode.PowerLawErr != nil {
					return "fit failed", false
				}
				return fmt.Sprintf("alpha=%.2f KS=%.3f", r.PerNode.PowerLaw.Alpha, r.PerNode.PowerLaw.KS),
					r.PerNode.PowerLaw.KS < 0.1
			},
		},
		{
			ID: "fig6-socket-uniform", Source: "Fig 6d", Statement: "faults uniform across CPU sockets",
			PaperValue: "uniform (noise-level variation)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				p := r.Structures.Socket.FaultChi2.PValue
				return fmt.Sprintf("χ² p=%.3f", p), p > 0.01
			},
		},
		{
			ID: "fig6-bank-uniform", Source: "Fig 6e", Statement: "faults uniform across banks",
			PaperValue: "uniform",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				p := r.Structures.Bank.FaultChi2.PValue
				return fmt.Sprintf("χ² p=%.3f", p), p > 0.001
			},
		},
		{
			ID: "fig6-column-uniform", Source: "Fig 6f", Statement: "faults uniform across columns",
			PaperValue: "uniform (errors are not)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				p := r.Structures.Column.FaultChi2.PValue
				errSkew := r.Structures.Column.Divergence().TotalVariation
				return fmt.Sprintf("χ² p=%.3f (error/fault TV=%.2f)", p, errSkew), p > 0.001
			},
		},
		{
			ID: "fig7-rank0", Source: "Fig 7b", Statement: "rank 0 experiences more faults than rank 1",
			PaperValue: "rank 0 high",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				f := r.Structures.Rank.Faults
				return fmt.Sprintf("%d vs %d", f[0], f[1]), f[0] > f[1]
			},
		},
		{
			ID: "fig7-slots", Source: "Fig 7d", Statement: "slots J,E,I,P hottest; A,K,L,M,N coldest",
			PaperValue: "J,E,I,P high / A,K,L,M,N low",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				f := r.Structures.Slot.Faults
				mean := 0.0
				for _, c := range f {
					mean += float64(c)
				}
				mean /= float64(len(f))
				ok := true
				for _, hot := range []int{9, 4, 8, 15} { // J,E,I,P
					if float64(f[hot]) < mean {
						ok = false
					}
				}
				for _, cold := range []int{0, 10, 11, 12, 13} { // A,K,L,M,N
					if float64(f[cold]) > mean {
						ok = false
					}
				}
				return fmt.Sprintf("J=%d E=%d I=%d P=%d | A=%d K=%d", f[9], f[4], f[8], f[15], f[0], f[10]), ok
			},
		},
		{
			ID: "fig8a-bit-powerlaw", Source: "Fig 8a", Statement: "faults per bit position follow a power law",
			PaperValue: "power law",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				if r.BitAddress.BitFitErr != nil {
					return "fit failed", false
				}
				return fmt.Sprintf("alpha=%.2f KS=%.3f", r.BitAddress.BitFit.Alpha, r.BitAddress.BitFit.KS),
					r.BitAddress.BitFit.KS < 0.15
			},
		},
		{
			ID: "fig8b-addr-collisions", Source: "Fig 8b", Statement: "some address locations host many faults",
			PaperValue: "counts up to ~10²",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				maxCount := 0
				for _, c := range r.BitAddress.PerAddr {
					if c > maxCount {
						maxCount = c
					}
				}
				return fmt.Sprintf("max %d faults/location", maxCount), maxCount >= 3
			},
		},
		{
			ID: "fig9-flat", Source: "§3.3 / Fig 9", Statement: "preceding-window DIMM temperature does not predict CE counts",
			PaperValue: "no strong correlation (all 4 windows)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				worst := 0.0
				for _, w := range r.TempWindows {
					if w.FitErr == nil && w.Fit.R2 > worst && w.Fit.Slope > 0 {
						worst = w.Fit.R2
					}
				}
				return fmt.Sprintf("max positive-slope R²=%.2f", worst), worst < 0.5
			},
		},
		{
			ID: "fig10-region-uniform", Source: "§3.4 / Fig 10", Statement: "faulty nodes spread evenly across rack regions",
			PaperValue: "no significant top-of-rack excess",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				p := r.Positional.RegionNodeChi2.PValue
				n := r.Positional.RegionFaultyNodes
				return fmt.Sprintf("%d/%d/%d (χ² p=%.2f)", n[0], n[1], n[2], p), p > 0.01
			},
		},
		{
			ID: "fig12-rack-spike", Source: "Fig 12a", Statement: "one rack's error count dwarfs the others, absent in faults",
			PaperValue: "rack 31 >2× any other (errors only)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return fmt.Sprintf("rack %d at %.1fx runner-up", r.Positional.MaxErrorRack, r.Positional.MaxRackErrorRatio),
					r.Positional.MaxRackErrorRatio >= 1.3
			},
		},
		{
			ID: "fig13-cpu-spread", Source: "§3.3 / Fig 13a", Statement: "CPU temperature decile spread",
			PaperValue: "≈7 °C",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				spread := 0.0
				for _, p := range r.TempDeciles {
					if p.Sensor == topology.SensorCPU1 {
						spread = p.Spread
					}
				}
				return fmt.Sprintf("%.1f °C", spread), between(spread, 3.5, 10.5)
			},
		},
		{
			ID: "fig13-dimm-spread", Source: "§3.3 / Fig 13b", Statement: "DIMM temperature decile spread",
			PaperValue: "≈4 °C",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				spread := 0.0
				for _, p := range r.TempDeciles {
					if p.Sensor == topology.SensorDIMMACEG {
						spread = p.Spread
					}
				}
				return fmt.Sprintf("%.1f °C", spread), between(spread, 2, 6)
			},
		},
		{
			ID: "fig13-no-trend", Source: "§3.3 / Fig 13", Statement: "no discernible CE trend across temperature deciles",
			PaperValue: "several cold deciles have the highest rates",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				strong := 0
				for _, p := range r.TempDeciles {
					if p.TrendErr == nil && core.TrendStrength(p.Trend, p.Bins) > 1 {
						strong++
					}
				}
				return fmt.Sprintf("%d of %d panels show a strong positive trend", strong, len(r.TempDeciles)),
					strong <= 1
			},
		},
		{
			ID: "fig14-power-coupling", Source: "§3.3 / Fig 14", Statement: "hot samples sit at higher power (shared utilization)",
			PaperValue: "hot curves shifted right",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				ok := 0
				for _, p := range r.Utilization {
					if p.HotPowerMean > p.ColdPowerMean {
						ok++
					}
				}
				return fmt.Sprintf("%d of %d panels", ok, len(r.Utilization)), ok >= len(r.Utilization)-1
			},
		},
		{
			ID: "fig14-no-util-trend", Source: "§3.3 / Fig 14", Statement: "node power does not predict CE rates",
			PaperValue: "no strong relationship",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				strong := 0
				total := 0
				for _, p := range r.Utilization {
					for _, half := range []struct {
						err error
						fit float64
					}{
						{p.HotTrendErr, core.TrendStrength(p.HotTrend, p.Hot)},
						{p.ColdTrendErr, core.TrendStrength(p.ColdTrend, p.Cold)},
					} {
						if half.err == nil {
							total++
							if half.fit > 1.5 {
								strong++
							}
						}
					}
				}
				return fmt.Sprintf("%d of %d half-panels strongly positive", strong, total), strong <= total/4
			},
		},
		{
			ID: "fig15-due-rate", Source: "§3.5", Statement: "DUE rate per DIMM-year from the HET window",
			PaperValue: "0.00948",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return fmt.Sprintf("%.5f", r.Uncorrectable.DUEsPerDIMMYear),
					between(r.Uncorrectable.DUEsPerDIMMYear, 0.003, 0.03)
			},
		},
		{
			ID: "fig15-fit", Source: "§3.5", Statement: "FIT per DIMM",
			PaperValue: "≈1081",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return fmt.Sprintf("%.0f", r.Uncorrectable.FITPerDIMM),
					between(r.Uncorrectable.FITPerDIMM, 350, 3500)
			},
		},
		{
			ID: "thermal-region", Source: "§3.4", Statement: "region mean temperatures agree",
			PaperValue: "differences well under 1 °C",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return fmt.Sprintf("max spread %.2f °C", r.RegionTemps.MaxSpread), r.RegionTemps.MaxSpread < 1
			},
		},
		{
			ID: "thermal-rack", Source: "§3.4", Statement: "rack-to-rack mean temperature spread",
			PaperValue: "< ~4.2 °C",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				return fmt.Sprintf("max spread %.2f °C", r.RackTemps.MaxSpread), r.RackTemps.MaxSpread < 4.2
			},
		},
		{
			ID: "edac-loss", Source: "§2.3", Statement: "limited CE log space drops some errors; DUEs are never lost",
			PaperValue: "CEs may be dropped (unquantified)",
			Measure: func(s *astra.Study, r *astra.Results) (string, bool) {
				lf := s.Dataset.EdacStats.LossFraction()
				duesIntact := len(s.Dataset.DUERecords) == len(s.Dataset.Pop.DUEs)
				return fmt.Sprintf("%.1f%% of CEs lost; DUEs intact=%v", 100*lf, duesIntact),
					lf > 0 && lf < 0.3 && duesIntact
			},
		},
	}
}

// fitOLS returns just the slope of an OLS fit (tiny local helper to avoid
// exporting more of stats here).
func fitOLS(xs, ys []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("paper: insufficient data")
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(len(xs)), sy/float64(len(xs))
	var sxx, sxy float64
	for i := range xs {
		sxx += (xs[i] - mx) * (xs[i] - mx)
		sxy += (xs[i] - mx) * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, fmt.Errorf("paper: degenerate x")
	}
	return sxy / sxx, nil
}
