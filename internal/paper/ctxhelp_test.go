package paper

import (
	"context"

	astra "repro"
)

// mustAnalyze adapts the ctx+error analysis API for test sites where an
// error is simply a test bug.
func mustAnalyze(s *astra.Study) *astra.Results {
	r, err := s.Analyze(context.Background())
	if err != nil {
		panic(err)
	}
	return r
}
