// Package supervise is the self-healing layer of the online subsystem:
// a supervisor that keeps restartable units — astrad's per-site ingest
// pipelines — running across the faults the paper's fleet-health service
// is supposed to observe, not die from. A unit that fails (error return
// or panic, captured as a *parallel.PanicError) is restarted after a
// seeded-jitter exponential backoff; a unit that keeps failing exhausts
// its restart budget and moves to quarantined, where it stays — visible,
// counted, and out of the way — until the operator intervenes. The
// supervisor never lets one unit's failure touch another: isolation is
// the whole point.
//
// The design follows the DDR4 field study's operational lesson: repair
// actions must be automatic (restart, not page), bounded (budget, not
// retry forever), and observable (health ladder, transition hooks,
// metrics counters).
package supervise

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/simrand"
)

// State is a unit's position in the supervision ladder.
type State int

const (
	// StateRunning means the unit's run function is executing.
	StateRunning State = iota
	// StateBackoff means the unit failed and is waiting out its restart
	// delay.
	StateBackoff
	// StateQuarantined means the unit exhausted its restart budget and
	// will not be restarted. Terminal until the process restarts.
	StateQuarantined
	// StateStopped means the unit finished: its run function returned nil
	// with the context still live (clean completion), or the supervisor's
	// context was cancelled.
	StateStopped
)

// String renders the state for logs, /healthz and metrics.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateBackoff:
		return "backoff"
	case StateQuarantined:
		return "quarantined"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// Supervisor defaults.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
	DefaultBudget      = 5
	DefaultResetAfter  = time.Minute
	DefaultJitter      = 0.5
)

// Config tunes a Supervisor. The zero value is usable.
type Config struct {
	// BackoffBase is the delay before the first restart; each subsequent
	// consecutive failure doubles it up to BackoffMax. 0 means
	// DefaultBackoffBase (negative means no delay, for tests).
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth (0 means DefaultBackoffMax).
	BackoffMax time.Duration
	// Jitter is the fraction of each delay that is randomized: the actual
	// delay is uniform in [d*(1-Jitter), d*(1+Jitter)]. 0 means
	// DefaultJitter; negative disables jitter.
	Jitter float64
	// Seed drives the jitter stream (per unit, derived from the unit
	// name) so restart storms de-synchronize deterministically.
	Seed uint64
	// Budget is how many consecutive failures a unit may accumulate
	// before it is quarantined instead of restarted. 0 means
	// DefaultBudget; negative means unlimited restarts.
	Budget int
	// ResetAfter resets the consecutive-failure streak when a run
	// survives at least this long: a unit that crashes once a day is
	// sick, not dead. 0 means DefaultResetAfter; negative disables
	// resets.
	ResetAfter time.Duration
	// OnTransition, when set, observes every state change (restart
	// scheduled, restart fired, quarantine, stop). Called synchronously
	// from the unit's goroutine; it must not block.
	OnTransition func(Transition)
	// Now is the clock, injectable for tests (nil means time.Now).
	Now func() time.Time
}

// Transition is one observed state change.
type Transition struct {
	// Unit is the unit's name.
	Unit string
	// From and To bracket the change.
	From, To State
	// Err is the failure that caused it, if any (a panic surfaces as a
	// *parallel.PanicError).
	Err error
	// Delay is the backoff ahead of the next restart (To == StateBackoff).
	Delay time.Duration
	// Restarts is the unit's lifetime restart count after the change.
	Restarts uint64
}

// Health is a point-in-time view of one unit, shaped for /healthz.
type Health struct {
	Unit  string `json:"unit"`
	State string `json:"state"`
	// Restarts counts restarts fired over the unit's lifetime;
	// ConsecutiveFailures is the current streak driving the backoff and
	// the budget.
	Restarts            uint64 `json:"restarts"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	// LastError is the most recent failure, rendered ("" when none).
	LastError string `json:"lastError,omitempty"`
	// RetryInSeconds is how far away the next restart attempt is while in
	// backoff (0 otherwise).
	RetryInSeconds float64 `json:"retryInSeconds,omitempty"`
}

// Unit is one supervised restartable task.
type Unit struct {
	name string
	sup  *Supervisor
	rng  *simrand.Stream

	mu        sync.Mutex
	state     State
	fails     int
	restarts  uint64
	lastErr   error
	retryAt   time.Time
	quaranted uint64
}

// Supervisor owns a set of units and restarts them independently.
// Construct with New, start units with Go, then Wait for them after
// cancelling their context.
type Supervisor struct {
	cfg Config

	mu    sync.Mutex
	units []*Unit
	wg    sync.WaitGroup
}

// New builds a supervisor with defaults applied.
func New(cfg Config) *Supervisor {
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultJitter
	}
	if cfg.Budget == 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.ResetAfter == 0 {
		cfg.ResetAfter = DefaultResetAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Supervisor{cfg: cfg}
}

// Go starts a named unit running fn under supervision and returns it.
// fn is restarted per the backoff/budget policy whenever it returns a
// non-nil error or panics; a nil return with the context still live
// stops the unit cleanly. The context ends the unit: in-flight runs see
// the cancellation, waiting backoffs are cut short.
func (s *Supervisor) Go(ctx context.Context, name string, fn func(context.Context) error) *Unit {
	u := &Unit{
		name:  name,
		sup:   s,
		state: StateRunning,
		rng:   simrand.NewStream(s.cfg.Seed).Derive("supervise:" + name),
	}
	s.mu.Lock()
	s.units = append(s.units, u)
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		u.loop(ctx, fn)
	}()
	return u
}

// Wait blocks until every unit has stopped or quarantined and its
// goroutine exited. Cancel the units' context first.
func (s *Supervisor) Wait() { s.wg.Wait() }

// Health reports every unit's position, in Go order.
func (s *Supervisor) Health() []Health {
	s.mu.Lock()
	units := append([]*Unit(nil), s.units...)
	s.mu.Unlock()
	out := make([]Health, len(units))
	for i, u := range units {
		out[i] = u.Health()
	}
	return out
}

// Unit looks a unit up by name (nil when unknown).
func (s *Supervisor) Unit(name string) *Unit {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range s.units {
		if u.name == name {
			return u
		}
	}
	return nil
}

// Restarts sums restart counts across units.
func (s *Supervisor) Restarts() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, u := range s.units {
		u.mu.Lock()
		n += u.restarts
		u.mu.Unlock()
	}
	return n
}

// Quarantined counts units currently quarantined.
func (s *Supervisor) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, u := range s.units {
		if u.State() == StateQuarantined {
			n++
		}
	}
	return n
}

// Name returns the unit's name.
func (u *Unit) Name() string { return u.name }

// State returns the unit's current position.
func (u *Unit) State() State {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.state
}

// Health returns the unit's point-in-time view.
func (u *Unit) Health() Health {
	u.mu.Lock()
	defer u.mu.Unlock()
	h := Health{
		Unit:                u.name,
		State:               u.state.String(),
		Restarts:            u.restarts,
		ConsecutiveFailures: u.fails,
	}
	if u.lastErr != nil {
		h.LastError = u.lastErr.Error()
	}
	if u.state == StateBackoff {
		if in := u.retryAt.Sub(u.sup.cfg.Now()); in > 0 {
			h.RetryInSeconds = in.Seconds()
		}
	}
	return h
}

// LastError returns the unit's most recent failure (nil when none).
func (u *Unit) LastError() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.lastErr
}

// transition applies a state change under the unit lock and reports it.
func (u *Unit) transition(to State, err error, delay time.Duration) {
	u.mu.Lock()
	from := u.state
	u.state = to
	if err != nil {
		u.lastErr = err
	}
	if to == StateBackoff {
		u.retryAt = u.sup.cfg.Now().Add(delay)
	}
	restarts := u.restarts
	u.mu.Unlock()
	if hook := u.sup.cfg.OnTransition; hook != nil && from != to {
		hook(Transition{Unit: u.name, From: from, To: to, Err: err, Delay: delay, Restarts: restarts})
	}
}

// delayFor computes the jittered exponential backoff for the given
// consecutive-failure count (1 = first failure).
func (u *Unit) delayFor(fails int) time.Duration {
	cfg := u.sup.cfg
	if cfg.BackoffBase < 0 {
		return 0
	}
	d := cfg.BackoffBase
	for i := 1; i < fails && d < cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	if cfg.Jitter > 0 && d > 0 {
		// Uniform in [d*(1-j), d*(1+j)], drawn from the unit's seeded
		// stream so a fleet of failing units fans out deterministically.
		j := cfg.Jitter
		if j > 1 {
			j = 1
		}
		lo := float64(d) * (1 - j)
		span := 2 * j * float64(d)
		u.mu.Lock()
		f := u.rng.Float64()
		u.mu.Unlock()
		d = time.Duration(lo + f*span)
	}
	return d
}

// loop is the unit's lifecycle: run, and on failure back off and rerun
// until the budget quarantines it or the context stops it.
func (u *Unit) loop(ctx context.Context, fn func(context.Context) error) {
	for {
		start := u.sup.cfg.Now()
		err := runCaptured(ctx, fn)
		ran := u.sup.cfg.Now().Sub(start)

		if ctx.Err() != nil {
			// Shutdown: whatever the run returned, the unit is stopping.
			// Cancellation errors are not failures; anything else is kept
			// as lastErr for the post-mortem.
			if err == nil || err == ctx.Err() {
				u.transition(StateStopped, nil, 0)
			} else {
				u.transition(StateStopped, err, 0)
			}
			return
		}
		if err == nil {
			// Clean completion with a live context: the unit is done.
			u.transition(StateStopped, nil, 0)
			return
		}

		u.mu.Lock()
		if u.sup.cfg.ResetAfter > 0 && ran >= u.sup.cfg.ResetAfter {
			u.fails = 0
		}
		u.fails++
		fails := u.fails
		budget := u.sup.cfg.Budget
		exhausted := budget >= 0 && fails > budget
		u.mu.Unlock()

		if exhausted {
			u.mu.Lock()
			u.quaranted++
			u.mu.Unlock()
			u.transition(StateQuarantined, err, 0)
			return
		}
		delay := u.delayFor(fails)
		u.transition(StateBackoff, err, delay)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				u.transition(StateStopped, nil, 0)
				return
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			u.transition(StateStopped, nil, 0)
			return
		}
		u.mu.Lock()
		u.restarts++
		u.mu.Unlock()
		u.transition(StateRunning, nil, 0)
	}
}

// runCaptured runs fn with panic capture: a panic anywhere below
// surfaces as a *parallel.PanicError carrying the panicking goroutine's
// stack, exactly like a pipeline-stage worker panic.
func runCaptured(ctx context.Context, fn func(context.Context) error) (err error) {
	defer parallel.Recover(&err)
	return fn(ctx)
}

// Quarantine forces a unit into the quarantined state from outside its
// own lifecycle (an operator endpoint, or a host that has decided the
// unit's dependency is gone for good). A running unit's current run is
// not interrupted — the caller owns the unit's context — but no further
// restart will fire.
func (u *Unit) Quarantine(reason error) {
	if reason == nil {
		reason = fmt.Errorf("supervise: %s quarantined by operator", u.name)
	}
	u.transition(StateQuarantined, reason, 0)
}
