package supervise

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/simrand"
)

// fastCfg removes real delays so lifecycle tests run instantly.
func fastCfg() Config {
	return Config{BackoffBase: -1, Jitter: -1, Seed: 7}
}

func TestCleanStopNoRestart(t *testing.T) {
	s := New(fastCfg())
	var runs atomic.Int64
	u := s.Go(context.Background(), "clean", func(ctx context.Context) error {
		runs.Add(1)
		return nil
	})
	s.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	if st := u.State(); st != StateStopped {
		t.Fatalf("state = %v, want stopped", st)
	}
	if err := u.LastError(); err != nil {
		t.Fatalf("lastErr = %v, want nil", err)
	}
}

func TestRestartOnErrorThenQuarantine(t *testing.T) {
	cfg := fastCfg()
	cfg.Budget = 3
	var trans []Transition
	var mu sync.Mutex
	cfg.OnTransition = func(tr Transition) {
		mu.Lock()
		trans = append(trans, tr)
		mu.Unlock()
	}
	s := New(cfg)
	var runs atomic.Int64
	boom := errors.New("boom")
	u := s.Go(context.Background(), "fail", func(ctx context.Context) error {
		runs.Add(1)
		return boom
	})
	s.Wait()
	// Budget 3 means: initial run + 3 restarts = 4 runs, then quarantine.
	if got := runs.Load(); got != 4 {
		t.Fatalf("runs = %d, want 4", got)
	}
	if st := u.State(); st != StateQuarantined {
		t.Fatalf("state = %v, want quarantined", st)
	}
	if !errors.Is(u.LastError(), boom) {
		t.Fatalf("lastErr = %v, want %v", u.LastError(), boom)
	}
	h := u.Health()
	if h.Restarts != 3 || h.State != "quarantined" || h.LastError == "" {
		t.Fatalf("health = %+v", h)
	}
	mu.Lock()
	defer mu.Unlock()
	var quarantines int
	for _, tr := range trans {
		if tr.To == StateQuarantined {
			quarantines++
			if tr.Err == nil {
				t.Fatalf("quarantine transition lost its error: %+v", tr)
			}
		}
	}
	if quarantines != 1 {
		t.Fatalf("quarantine transitions = %d, want 1", quarantines)
	}
}

func TestPanicCapturedAsPanicError(t *testing.T) {
	cfg := fastCfg()
	cfg.Budget = 1
	s := New(cfg)
	u := s.Go(context.Background(), "panicky", func(ctx context.Context) error {
		panic("kaboom")
	})
	s.Wait()
	if st := u.State(); st != StateQuarantined {
		t.Fatalf("state = %v, want quarantined", st)
	}
	var pe *parallel.PanicError
	if !errors.As(u.LastError(), &pe) {
		t.Fatalf("lastErr = %T %v, want *parallel.PanicError", u.LastError(), u.LastError())
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic error = %+v, want value kaboom with stack", pe)
	}
}

func TestContextCancelStopsBackoffEarly(t *testing.T) {
	cfg := Config{BackoffBase: time.Hour, BackoffMax: time.Hour, Jitter: -1, Budget: -1}
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{}, 1)
	u := s.Go(ctx, "waiter", func(ctx context.Context) error {
		select {
		case ran <- struct{}{}:
		default:
		}
		return errors.New("transient")
	})
	<-ran
	// The unit is now headed into an hour-long backoff; cancellation must
	// cut it short.
	cancel()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after cancel; backoff not interrupted")
	}
	if st := u.State(); st != StateStopped {
		t.Fatalf("state = %v, want stopped", st)
	}
}

func TestUnlimitedBudgetKeepsRestarting(t *testing.T) {
	cfg := fastCfg()
	cfg.Budget = -1
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int64
	s.Go(ctx, "energizer", func(ctx context.Context) error {
		if runs.Add(1) >= 20 {
			cancel()
			<-ctx.Done()
			return ctx.Err()
		}
		return errors.New("again")
	})
	s.Wait()
	if got := runs.Load(); got < 20 {
		t.Fatalf("runs = %d, want >= 20 (unlimited budget)", got)
	}
}

func TestResetAfterClearsStreak(t *testing.T) {
	// A run that "survives" past ResetAfter (simulated clock) resets the
	// consecutive-failure streak, so the budget never exhausts.
	var now atomic.Int64 // fake nanos
	cfg := fastCfg()
	cfg.Budget = 2
	cfg.ResetAfter = time.Second
	cfg.Now = func() time.Time { return time.Unix(0, now.Load()) }
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int64
	u := s.Go(ctx, "slowfail", func(ctx context.Context) error {
		n := runs.Add(1)
		now.Add(int64(2 * time.Second)) // every run "lasts" 2s
		if n >= 10 {
			cancel()
			<-ctx.Done()
			return ctx.Err()
		}
		return errors.New("periodic")
	})
	s.Wait()
	if got := runs.Load(); got < 10 {
		t.Fatalf("runs = %d, want >= 10 — streak should reset, never quarantine", got)
	}
	if st := u.State(); st == StateQuarantined {
		t.Fatal("unit quarantined despite streak resets")
	}
}

func TestBackoffGrowthAndJitterDeterminism(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		cfg := Config{BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second, Jitter: 0.5, Seed: seed, Budget: -1}
		s := New(cfg)
		u := &Unit{name: "jit", sup: s, rng: simrand.NewStream(seed).Derive("supervise:jit")}
		var ds []time.Duration
		for f := 1; f <= 6; f++ {
			ds = append(ds, u.delayFor(f))
		}
		return ds
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
	// Envelope: delay f stays within [base*2^(f-1)*(1-j), min(cap, base*2^(f-1))*(1+j)]
	base, capd, j := 100*time.Millisecond, time.Second, 0.5
	for i, d := range a {
		nominal := base << i
		if nominal > capd {
			nominal = capd
		}
		lo := time.Duration(float64(nominal) * (1 - j))
		hi := time.Duration(float64(nominal) * (1 + j))
		if d < lo || d > hi {
			t.Fatalf("delay[%d] = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestHealthAndLookups(t *testing.T) {
	cfg := fastCfg()
	cfg.Budget = 0 // default applies → DefaultBudget
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	block := make(chan struct{})
	s.Go(ctx, "a", func(ctx context.Context) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	s.Go(ctx, "b", func(ctx context.Context) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	})
	hs := s.Health()
	if len(hs) != 2 || hs[0].Unit != "a" || hs[1].Unit != "b" {
		t.Fatalf("health = %+v", hs)
	}
	if s.Unit("a") == nil || s.Unit("nope") != nil {
		t.Fatal("Unit lookup broken")
	}
	close(block)
	s.Wait()
}

func TestOperatorQuarantine(t *testing.T) {
	s := New(fastCfg())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	u := s.Go(ctx, "manual", func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	u.Quarantine(fmt.Errorf("operator: bad disk"))
	if st := u.State(); st != StateQuarantined {
		t.Fatalf("state = %v, want quarantined", st)
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", s.Quarantined())
	}
	cancel()
	s.Wait()
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateRunning: "running", StateBackoff: "backoff",
		StateQuarantined: "quarantined", StateStopped: "stopped",
		State(99): "unknown",
	}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
}
