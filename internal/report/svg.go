package report

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/inventory"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/svgplot"
	"repro/internal/topology"
)

// SVGFigures renders the evaluation's figures as standalone SVG documents,
// keyed by file-name-friendly figure IDs ("fig4a", "fig7-slot", ...).
// The inputs mirror the text renderers; figures whose inputs are absent
// are simply omitted.
type SVGInputs struct {
	Breakdown   *core.ModeBreakdown
	PerNode     *core.PerNode
	Structures  *core.Structures
	BitAddress  *core.BitAddress
	TempWindows []core.TempWindow
	Positional  *core.Positional
	TempDeciles []core.DecilePanel
	Inventory   *inventory.History
}

// SVGFigures renders every figure with available inputs.
func SVGFigures(in SVGInputs) map[string]string {
	out := map[string]string{}
	if in.Breakdown != nil {
		out["fig4a-monthly-errors"] = svgFig4a(*in.Breakdown)
	}
	if in.PerNode != nil {
		out["fig5a-faults-per-node"] = svgFig5a(*in.PerNode)
		out["fig5b-node-cdf"] = svgFig5b(*in.PerNode)
	}
	if in.Structures != nil {
		s := *in.Structures
		out["fig6-socket"] = svgStructure("Fig 6a/6d: socket", s.Socket)
		out["fig6-bank"] = svgStructure("Fig 6b/6e: bank", s.Bank)
		out["fig6-column"] = svgStructure("Fig 6c/6f: column (binned)", s.Column)
		out["fig7-rank"] = svgStructure("Fig 7a/7b: rank", s.Rank)
		out["fig7-slot"] = svgStructure("Fig 7c/7d: DIMM slot", s.Slot)
	}
	if in.BitAddress != nil {
		out["fig8a-bit-positions"] = svgCountHistogram("Fig 8a: faults per bit position", in.BitAddress.BitHistogram)
		out["fig8b-addresses"] = svgCountHistogram("Fig 8b: faults per address location", in.BitAddress.AddrHistogram)
	}
	for _, w := range in.TempWindows {
		out[fmt.Sprintf("fig9-window-%dm", w.WindowMinutes)] = svgFig9(w)
	}
	if in.Positional != nil {
		out["fig10-region"] = svgRegion(*in.Positional)
		out["fig12-rack"] = svgRack(*in.Positional)
	}
	if len(in.TempDeciles) > 0 {
		out["fig13-deciles"] = svgFig13(in.TempDeciles)
	}
	if in.Inventory != nil {
		out["fig3-replacements"] = svgFig3(in.Inventory)
	}
	return out
}

func svgFig4a(b core.ModeBreakdown) string {
	labels := make([]string, len(b.Months))
	for i, mk := range b.Months {
		labels[i] = simtime.MonthLabel(mk)
	}
	series := []svgplot.Series{{Name: "all errors", Values: stats.CountsToFloats(b.AllErrors)}}
	for _, m := range []core.FaultMode{core.ModeSingleBit, core.ModeSingleWord, core.ModeSingleColumn, core.ModeSingleBank} {
		series = append(series, svgplot.Series{Name: m.String(), Values: stats.CountsToFloats(b.ByMode[m])})
	}
	return svgplot.Lines("Fig 4a: errors and fault modes by month", "errors", labels, series, true)
}

func svgFig5a(pn core.PerNode) string {
	keys := pn.FaultHistogram.SortedCounts()
	var labels []string
	var values []float64
	for _, k := range keys {
		if len(labels) >= 20 {
			break
		}
		labels = append(labels, strconv.Itoa(k))
		values = append(values, float64(pn.FaultHistogram[k]))
	}
	return svgplot.Bars("Fig 5a: nodes by fault count", "nodes", labels, values)
}

func svgFig5b(pn core.PerNode) string {
	n := len(pn.Lorenz)
	step := 1
	if n > 400 {
		step = n / 400
	}
	var labels []string
	var values []float64
	for i := 0; i < n; i += step {
		labels = append(labels, strconv.Itoa(i))
		values = append(values, pn.Lorenz[i])
	}
	return svgplot.Lines("Fig 5b: cumulative CE share by node rank", "share of CEs", labels,
		[]svgplot.Series{{Name: "CE share", Values: values}}, false)
}

func svgStructure(title string, sc core.StructureCounts) string {
	return svgplot.GroupedBars(title, "count", sc.Labels, []svgplot.Series{
		{Name: "errors", Values: stats.CountsToFloats(sc.Errors)},
		{Name: "faults", Values: stats.CountsToFloats(sc.Faults)},
	})
}

func svgCountHistogram(title string, h stats.CountHistogram) string {
	keys := h.SortedCounts()
	var labels []string
	var values []float64
	for _, k := range keys {
		if len(labels) >= 24 {
			break
		}
		labels = append(labels, strconv.Itoa(k))
		values = append(values, float64(h[k]))
	}
	return svgplot.Bars(title+" (locations per count)", "locations", labels, values)
}

func svgFig9(w core.TempWindow) string {
	var xs, ys []float64
	for i, c := range w.Counts {
		if c == 0 {
			continue
		}
		xs = append(xs, w.BinLo+float64(i)+0.5)
		ys = append(ys, float64(c))
	}
	title := fmt.Sprintf("Fig 9: CEs vs mean DIMM temp over preceding %s", windowName(w.WindowMinutes))
	return svgplot.Scatter(title, "mean temperature °C", "CE count", xs, ys,
		w.Fit.Intercept, w.Fit.Slope, w.FitErr == nil)
}

func windowName(minutes int64) string {
	switch minutes {
	case simtime.MinutesPerHour:
		return "hour"
	case simtime.MinutesPerDay:
		return "day"
	case simtime.MinutesPerWeek:
		return "week"
	case simtime.MinutesPerMonth:
		return "month"
	default:
		return fmt.Sprintf("%d min", minutes)
	}
}

func svgRegion(p core.Positional) string {
	labels := []string{"bottom", "middle", "top"}
	return svgplot.GroupedBars("Fig 10: errors and faults by rack region", "count", labels, []svgplot.Series{
		{Name: "errors", Values: []float64{float64(p.RegionErrors[0]), float64(p.RegionErrors[1]), float64(p.RegionErrors[2])}},
		{Name: "faults", Values: []float64{float64(p.RegionFaults[0]), float64(p.RegionFaults[1]), float64(p.RegionFaults[2])}},
	})
}

func svgRack(p core.Positional) string {
	labels := make([]string, topology.Racks)
	for i := range labels {
		labels[i] = strconv.Itoa(i)
	}
	return svgplot.GroupedBars("Fig 12: errors and faults by rack", "count", labels, []svgplot.Series{
		{Name: "errors", Values: stats.CountsToFloats(p.RackErrors)},
		{Name: "faults", Values: stats.CountsToFloats(p.RackFaults)},
	})
}

func svgFig13(panels []core.DecilePanel) string {
	var series []svgplot.Series
	var labels []string
	for _, p := range panels {
		var values []float64
		for i, b := range p.Bins {
			values = append(values, b.MeanValue)
			if len(labels) < len(p.Bins) {
				labels = append(labels, fmt.Sprintf("d%d", i+1))
			}
		}
		series = append(series, svgplot.Series{Name: p.Sensor.String(), Values: values})
	}
	return svgplot.Lines("Fig 13: monthly CE rate by temperature decile", "mean monthly CEs", labels, series, false)
}

func svgFig3(h *inventory.History) string {
	var series []svgplot.Series
	var labels []string
	for k := inventory.Kind(0); k < inventory.NumKinds; k++ {
		daily := h.DailyCounts(k)
		weekly := map[int]int{}
		for _, d := range SortedKeys(daily) {
			weekly[int(d)/7] += daily[d]
		}
		weeks := SortedKeys(weekly)
		var values []float64
		for i, w := range weeks {
			values = append(values, float64(weekly[w]))
			if len(labels) <= i {
				labels = append(labels, simtime.Day(w*7).Time().Format("Jan 02"))
			}
		}
		series = append(series, svgplot.Series{Name: k.String(), Values: values})
	}
	return svgplot.Lines("Fig 3: weekly hardware replacements", "replacements", labels, series, false)
}
