package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/envmodel"
	"repro/internal/het"
	"repro/internal/inventory"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Table1 renders the component-replacement tally (paper Table 1).
func Table1(h *inventory.History, nodes int) string {
	t := NewTable("Table 1: component replacements (Feb 17 - Sep 17, 2019)",
		"Component", "Number Replaced", "Percent of Total")
	totals := h.Totals()
	scale := float64(nodes) / float64(topology.Nodes)
	for k := inventory.Kind(0); k < inventory.NumKinds; k++ {
		pop := float64(k.Population()) * scale
		t.AddRow(k.String(), FormatCount(float64(totals[k])),
			fmt.Sprintf("%s of %s", FormatPct(float64(totals[k])/pop), FormatCount(pop)))
	}
	return t.String()
}

// Survival renders the component-lifetime analysis that extends Table 1:
// Kaplan-Meier window survival, the Weibull hazard-shape verdict, and
// MTBF per component kind.
func Survival(h *inventory.History, nodes int) string {
	t := NewTable("Component survival analysis (extension of Table 1)",
		"Component", "Failures", "MTBF (device-days)", "Window survival", "Weibull shape", "Hazard verdict")
	for k := inventory.Kind(0); k < inventory.NumKinds; k++ {
		a := h.AnalyzeSurvival(k, nodes)
		shape, verdict := "-", "-"
		if a.WeibullErr == nil {
			shape = fmt.Sprintf("%.2f", a.Weibull.Shape)
			switch {
			case a.Weibull.Shape < 0.9:
				verdict = "infant mortality (decreasing hazard)"
			case a.Weibull.Shape > 1.1:
				verdict = "wear-out (increasing hazard)"
			default:
				verdict = "memoryless (steady-state)"
			}
		}
		t.AddRow(k.String(),
			FormatCount(float64(a.Data.Failures)),
			FormatCount(a.MTBFDays),
			FormatPct(a.WindowSurvival),
			shape, verdict)
	}
	return t.String()
}

// Figure2 renders the sensor-value histograms (paper Fig 2) from sampled
// telemetry: CPU temperature, DIMM temperature and node DC power.
func Figure2(env *envmodel.Model, nodes int, seed uint64) string {
	rng := simrand.NewStream(seed).Derive("fig2-sampling")
	cpu := stats.NewHistogram(40, 100, 12)
	dimm := stats.NewHistogram(28, 60, 8)
	power := stats.NewHistogram(100, 500, 8)
	start := simtime.MinuteOf(simtime.EnvStart)
	span := int64(simtime.MinuteOf(simtime.EnvEnd) - start)
	const samples = 30000
	for i := 0; i < samples; i++ {
		node := topology.NodeID(rng.IntN(nodes))
		m := start + simtime.Minute(rng.Int64N(span))
		if v, ok := env.Sample(node, topology.SensorCPU1, m); ok {
			cpu.Add(v)
		}
		if v, ok := env.Sample(node, topology.SensorDIMMJLNP, m); ok {
			dimm.Add(v)
		}
		if v, ok := env.Sample(node, topology.SensorDCPower, m); ok {
			power.Add(v)
		}
	}
	var sb strings.Builder
	sb.WriteString("Figure 2: sensor value distributions (May 20 - Sep 19)\n")
	for _, h := range []struct {
		name string
		hist *stats.Histogram
		unit string
	}{
		{"(a) CPU temperature", cpu, "°C"},
		{"(b) DIMM temperature", dimm, "°C"},
		{"(c) node DC power", power, "W"},
	} {
		labels := make([]string, len(h.hist.Counts))
		values := make([]float64, len(h.hist.Counts))
		for i, c := range h.hist.Counts {
			labels[i] = fmt.Sprintf("%.0f%s", h.hist.BinCenter(i), h.unit)
			values[i] = float64(c)
		}
		sb.WriteString(Bars(h.name, labels, values))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure3 renders the daily replacement series (paper Fig 3) as weekly
// sums for readability.
func Figure3(h *inventory.History) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: hardware replacements per week\n")
	for k := inventory.Kind(0); k < inventory.NumKinds; k++ {
		daily := h.DailyCounts(k)
		weekly := map[int]int{}
		for _, d := range SortedKeys(daily) {
			weekly[int(d)/7] += daily[d]
		}
		weeks := SortedKeys(weekly)
		labels := make([]string, len(weeks))
		values := make([]float64, len(weeks))
		for i, w := range weeks {
			labels[i] = simtime.Day(w * 7).Time().Format("Jan 02")
			values[i] = float64(weekly[w])
		}
		sb.WriteString(Bars(fmt.Sprintf("(%c) %s", 'a'+int(k), k), labels, values))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure4a renders the monthly error and fault-mode series.
func Figure4a(b core.ModeBreakdown) string {
	t := NewTable("Figure 4a: errors and fault modes by month",
		"Month", "All Errors", "single-bit", "single-word", "single-column", "single-bank")
	for i, mk := range b.Months {
		t.AddRow(simtime.MonthLabel(mk),
			FormatCount(float64(b.AllErrors[i])),
			FormatCount(float64(b.ByMode[core.ModeSingleBit][i])),
			FormatCount(float64(b.ByMode[core.ModeSingleWord][i])),
			FormatCount(float64(b.ByMode[core.ModeSingleColumn][i])),
			FormatCount(float64(b.ByMode[core.ModeSingleBank][i])))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "total CEs: %s; errors by mode: bit=%s word=%s column=%s bank=%s\n",
		FormatCount(float64(b.Total)),
		FormatCount(float64(b.ErrorsByMode[core.ModeSingleBit])),
		FormatCount(float64(b.ErrorsByMode[core.ModeSingleWord])),
		FormatCount(float64(b.ErrorsByMode[core.ModeSingleColumn])),
		FormatCount(float64(b.ErrorsByMode[core.ModeSingleBank])))
	return sb.String()
}

// Figure4b renders the errors-per-fault distribution (the violin of
// Fig 4b) as quantiles.
func Figure4b(d core.ErrorsPerFault) string {
	t := NewTable("Figure 4b: errors per fault", "Statistic", "Value")
	t.AddRow("faults", FormatCount(float64(len(d.Counts))))
	t.AddRow("median", FormatCount(d.Median))
	t.AddRow("mean", FormatCount(d.Mean))
	t.AddRow("p90", FormatCount(d.Summary.Q3)) // quartile + quantiles below
	if len(d.Counts) > 0 {
		counts := stats.CountsToFloats(d.Counts)
		sort.Float64s(counts)
		if p99, ok := stats.Quantile(counts, 0.99); ok {
			t.AddRow("p99", FormatCount(p99))
		}
	}
	t.AddRow("max", FormatCount(float64(d.Max)))
	return t.String()
}

// Figure5 renders the per-node concentration analysis.
func Figure5(pn core.PerNode, totalNodes int) string {
	var sb strings.Builder
	t := NewTable("Figure 5: correctable errors and faults per node", "Statistic", "Value")
	nodeFrac := 0.0
	if totalNodes > 0 {
		nodeFrac = float64(pn.NodesWithErrors) / float64(totalNodes)
	}
	t.AddRow("nodes with >= 1 CE", fmt.Sprintf("%d of %d (%s)",
		pn.NodesWithErrors, totalNodes, FormatPct(nodeFrac)))
	if pn.Degraded {
		t.AddRow("DEGRADED", "empty input; statistics are zero-valued")
	}
	t.AddRow("CE share of top 8 nodes", FormatPct(pn.TopShare8))
	t.AddRow("CE share of top 2% of nodes", FormatPct(pn.TopShare2Pct))
	if pn.PowerLawErr == nil {
		t.AddRow("faults/node power-law alpha", fmt.Sprintf("%.2f (KS %.3f)", pn.PowerLaw.Alpha, pn.PowerLaw.KS))
	}
	sb.WriteString(t.String())
	// Fig 5a histogram: fault count -> number of nodes.
	keys := pn.FaultHistogram.SortedCounts()
	labels := make([]string, 0, len(keys))
	values := make([]float64, 0, len(keys))
	for _, k := range keys {
		if len(labels) >= 12 {
			break
		}
		labels = append(labels, strconv.Itoa(k)+" faults")
		values = append(values, float64(pn.FaultHistogram[k]))
	}
	sb.WriteString(Bars("(a) nodes by fault count", labels, values))
	return sb.String()
}

// structurePair renders one error/fault bar pair of Figs 6, 7, 10.
func structurePair(name string, sc core.StructureCounts) string {
	var sb strings.Builder
	sb.WriteString(Bars(name+" — errors", sc.Labels, stats.CountsToFloats(sc.Errors)))
	sb.WriteString(Bars(name+" — faults", sc.Labels, stats.CountsToFloats(sc.Faults)))
	fmt.Fprintf(&sb, "uniformity (faults): chi2=%.1f p=%.3f; (errors): chi2=%.1f p=%.3g\n",
		sc.FaultChi2.Statistic, sc.FaultChi2.PValue, sc.ErrorChi2.Statistic, sc.ErrorChi2.PValue)
	div := sc.Divergence()
	fmt.Fprintf(&sb, "errors-vs-faults divergence: TV=%.2f rank-corr=%.2f\n\n",
		div.TotalVariation, div.RankCorrelation)
	return sb.String()
}

// Figure6 renders the socket/bank/column error and fault distributions.
func Figure6(s core.Structures) string {
	return "Figure 6: errors vs faults per CPU socket, bank, column\n" +
		structurePair("socket", s.Socket) +
		structurePair("bank", s.Bank) +
		structurePair("column (binned)", s.Column)
}

// Figure7 renders the rank and DIMM-slot distributions.
func Figure7(s core.Structures) string {
	return "Figure 7: errors vs faults per rank and DIMM slot\n" +
		structurePair("rank", s.Rank) +
		structurePair("slot", s.Slot)
}

// Figure8 renders the bit-position and physical-address fault-count
// distributions.
func Figure8(ba core.BitAddress) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: faults per cache-line bit position and physical address\n")
	render := func(name string, h stats.CountHistogram, fit stats.PowerLawFit, fitErr error) {
		keys := h.SortedCounts()
		var labels []string
		var values []float64
		for _, k := range keys {
			if len(labels) >= 10 {
				break
			}
			labels = append(labels, fmt.Sprintf("count=%d", k))
			values = append(values, float64(h[k]))
		}
		sb.WriteString(Bars(name+" (locations by fault count)", labels, values))
		if fitErr == nil {
			fmt.Fprintf(&sb, "power-law fit: alpha=%.2f KS=%.3f\n\n", fit.Alpha, fit.KS)
		} else {
			fmt.Fprintf(&sb, "power-law fit unavailable: %v\n\n", fitErr)
		}
	}
	render("(a) bit positions", ba.BitHistogram, ba.BitFit, ba.BitFitErr)
	render("(b) physical addresses", ba.AddrHistogram, ba.AddrFit, ba.AddrFitErr)
	return sb.String()
}

// Figure9 renders the temperature-window linear fits.
func Figure9(windows []core.TempWindow) string {
	t := NewTable("Figure 9: CE count vs mean DIMM temperature over preceding window",
		"Window", "Slope (CE/°C)", "Intercept", "R²", "Verdict")
	for _, w := range windows {
		name := fmt.Sprintf("%dh", w.WindowMinutes/60)
		switch w.WindowMinutes {
		case simtime.MinutesPerDay:
			name = "1 day"
		case simtime.MinutesPerWeek:
			name = "1 week"
		case simtime.MinutesPerMonth:
			name = "1 month"
		case simtime.MinutesPerHour:
			name = "1 hour"
		}
		if w.FitErr != nil {
			t.AddRow(name, "-", "-", "-", fmt.Sprintf("fit failed: %v", w.FitErr))
			continue
		}
		verdict := "no strong correlation"
		if w.Fit.R2 > 0.5 && w.Fit.Slope > 0 {
			verdict = "positive correlation"
		}
		t.AddRow(name, fmt.Sprintf("%.1f", w.Fit.Slope), fmt.Sprintf("%.1f", w.Fit.Intercept),
			fmt.Sprintf("%.3f", w.Fit.R2), verdict)
	}
	return t.String()
}

// Figure10 renders errors and faults by rack region.
func Figure10(p core.Positional) string {
	labels := []string{"bottom", "middle", "top"}
	var sb strings.Builder
	sb.WriteString("Figure 10: errors and faults by rack region\n")
	sb.WriteString(Bars("errors", labels, []float64{
		float64(p.RegionErrors[0]), float64(p.RegionErrors[1]), float64(p.RegionErrors[2])}))
	sb.WriteString(Bars("faults", labels, []float64{
		float64(p.RegionFaults[0]), float64(p.RegionFaults[1]), float64(p.RegionFaults[2])}))
	fmt.Fprintf(&sb, "fault-count uniformity: chi2=%.1f p=%.3g (over-rejects: faults cluster on nodes)\n",
		p.RegionFaultChi2.Statistic, p.RegionFaultChi2.PValue)
	fmt.Fprintf(&sb, "faulty nodes per region: %d / %d / %d; uniformity chi2=%.1f p=%.3f\n",
		p.RegionFaultyNodes[0], p.RegionFaultyNodes[1], p.RegionFaultyNodes[2],
		p.RegionNodeChi2.Statistic, p.RegionNodeChi2.PValue)
	return sb.String()
}

// Figure11 renders the per-rack region fault shares.
func Figure11(p core.Positional) string {
	t := NewTable("Figure 11: fault share per region by rack", "Rack", "Bottom", "Middle", "Top")
	for rack, shares := range p.RegionShareByRack {
		if shares[0]+shares[1]+shares[2] == 0 {
			continue
		}
		t.AddRow(strconv.Itoa(rack), FormatPct(shares[0]), FormatPct(shares[1]), FormatPct(shares[2]))
	}
	return t.String()
}

// Figure12 renders errors and faults by rack.
func Figure12(p core.Positional) string {
	labels := make([]string, topology.Racks)
	for i := range labels {
		labels[i] = fmt.Sprintf("rack %02d", i)
	}
	var sb strings.Builder
	sb.WriteString("Figure 12: errors and faults by rack\n")
	sb.WriteString(Bars("errors", labels, stats.CountsToFloats(p.RackErrors)))
	sb.WriteString(Bars("faults", labels, stats.CountsToFloats(p.RackFaults)))
	fmt.Fprintf(&sb, "busiest rack: %d (%.1fx the runner-up); fault uniformity: chi2=%.1f p=%.3f\n",
		p.MaxErrorRack, p.MaxRackErrorRatio, p.RackFaultChi2.Statistic, p.RackFaultChi2.PValue)
	return sb.String()
}

// Figure13 renders the temperature-decile panels.
func Figure13(panels []core.DecilePanel) string {
	var sb strings.Builder
	sb.WriteString("Figure 13: monthly CE rate by temperature decile\n")
	for _, p := range panels {
		t := NewTable(fmt.Sprintf("sensor %s (decile spread %.1f °C)", p.Sensor, p.Spread),
			"Decile max °C", "Mean monthly CEs")
		for _, b := range p.Bins {
			t.AddRow(fmt.Sprintf("%.1f", b.MaxKey), fmt.Sprintf("%.2f", b.MeanValue))
		}
		sb.WriteString(t.String())
		if p.TrendErr == nil {
			fmt.Fprintf(&sb, "verdict: %s\n\n", core.DescribeTrend(p.Trend, p.Bins))
		} else {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// Figure14 renders the utilization (power) panels with hot/cold splits.
func Figure14(panels []core.UtilizationPanel) string {
	var sb strings.Builder
	sb.WriteString("Figure 14: monthly CE rate vs node power, split by sensor temperature\n")
	for _, p := range panels {
		fmt.Fprintf(&sb, "sensor %s: hot mean power %.0f W, cold mean power %.0f W\n",
			p.Sensor, p.HotPowerMean, p.ColdPowerMean)
		if p.HotTrendErr == nil {
			fmt.Fprintf(&sb, "  hot:  %s\n", core.DescribeTrend(p.HotTrend, p.Hot))
		}
		if p.ColdTrendErr == nil {
			fmt.Fprintf(&sb, "  cold: %s\n", core.DescribeTrend(p.ColdTrend, p.Cold))
		}
	}
	return sb.String()
}

// FaultRates renders the per-mode FIT table in the units of the field
// studies the paper builds on (Sridharan & Liberty et al.).
func FaultRates(r core.FaultRates) string {
	t := NewTable("Correctable-fault rates (FIT per DIMM)", "Mode", "FIT/DIMM")
	for m := core.FaultMode(0); m < core.NumFaultModes; m++ {
		if r.PerMode[m] == 0 {
			continue
		}
		t.AddRow(m.String(), fmt.Sprintf("%.0f", r.PerMode[m]))
	}
	t.AddRow("total", fmt.Sprintf("%.0f", r.Total))
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "faulty DIMMs: %s over %s device-hours\n",
		FormatCount(float64(r.FaultyDIMMs)), FormatCount(r.DeviceHours))
	return sb.String()
}

// Precursors renders the DUE-precursor analysis.
func Precursors(p core.Precursors) string {
	var sb strings.Builder
	sb.WriteString("DUE precursors (do correctable faults warn of uncorrectable errors?)\n")
	fmt.Fprintf(&sb, "DUEs with prior CE fault on the same DIMM: %d of %d (%s)\n",
		p.WithPriorFault, p.DUEs, FormatPct(p.Fraction))
	fmt.Fprintf(&sb, "chance level (fraction of DIMMs with any fault): %s -> lift %.1fx\n",
		FormatPct(p.BaselineFraction), p.Lift)
	if p.MedianLeadDays > 0 {
		fmt.Fprintf(&sb, "median warning time: %.1f days\n", p.MedianLeadDays)
	}
	return sb.String()
}

// Thermal renders the §3.4 thermal-uniformity tables the paper describes
// but omits for space: region means per sensor and the rack-to-rack
// spread.
func Thermal(region core.RegionTemps, rack core.RackTemps) string {
	t := NewTable("Thermal uniformity (§3.4, data the paper omitted for space)",
		"Sensor", "Bottom °C", "Middle °C", "Top °C")
	for _, sensor := range topology.TemperatureSensors() {
		m := region.Mean[sensor]
		t.AddRow(sensor.String(),
			fmt.Sprintf("%.2f", m[0]), fmt.Sprintf("%.2f", m[1]), fmt.Sprintf("%.2f", m[2]))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "max region spread: %.2f °C (paper: well under 1 °C)\n", region.MaxSpread)
	fmt.Fprintf(&sb, "max rack-to-rack spread: %.2f °C (paper: under ~4.2 °C)\n", rack.MaxSpread)
	return sb.String()
}

// ModeStability renders the per-month new-fault mode mix.
func ModeStability(ms core.ModeStability) string {
	t := NewTable("New-fault mode mix by month (Siddiqua-style stability check)",
		"Month", "single-bit", "single-word", "single-column", "single-bank")
	for i, mk := range ms.Months {
		row := ms.NewFaults[i]
		t.AddRow(simtime.MonthLabel(mk),
			FormatCount(float64(row[core.ModeSingleBit])),
			FormatCount(float64(row[core.ModeSingleWord])),
			FormatCount(float64(row[core.ModeSingleColumn])),
			FormatCount(float64(row[core.ModeSingleBank])))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "max month-to-month share drift: %.2f (small = stable mix)\n", ms.MaxShareDrift)
	return sb.String()
}

// Interarrivals renders the within-fault error-gap distribution.
func Interarrivals(ia core.Interarrivals) string {
	var sb strings.Builder
	sb.WriteString("Within-fault error inter-arrival gaps (burstiness behind CE log loss)\n")
	fmt.Fprintf(&sb, "faults measured: %d; gaps sampled: %s\n",
		ia.FaultsMeasured, FormatCount(float64(len(ia.Gaps))))
	if len(ia.Gaps) > 0 {
		fmt.Fprintf(&sb, "median gap %.1f min, mean %.1f min, p90 %.1f min\n",
			ia.Summary.Median, ia.Summary.Mean, ia.Summary.Q3)
		fmt.Fprintf(&sb, "sub-minute gaps: %s (these are what overflow the CE log)\n",
			FormatPct(ia.SubMinuteFrac))
	}
	return sb.String()
}

// Figure15 renders the HET analysis and the DUE/FIT rates.
func Figure15(u core.Uncorrectable) string {
	var sb strings.Builder
	sb.WriteString("Figure 15: Hardware Event Tracker records\n")
	if !u.First.IsZero() {
		fmt.Fprintf(&sb, "window: %s .. %s\n", u.First.Format("2006-01-02"), u.Last.Format("2006-01-02"))
	}
	t := NewTable("(a) events by type", "Type", "Total", "Peak day")
	for et, daily := range u.DailyByType {
		total, peak := 0, 0
		for _, c := range daily {
			total += c
			if c > peak {
				peak = c
			}
		}
		if total == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%v", het.EventType(et)), FormatCount(float64(total)), FormatCount(float64(peak)))
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "(b) memory DUEs: %d; rate %.5f DUEs/DIMM/year; FIT/DIMM %.0f\n",
		u.DUEs, u.DUEsPerDIMMYear, u.FITPerDIMM)
	return sb.String()
}
