// Package report renders every table and figure of the paper as text: the
// same rows and series the paper plots, printable by the benchmark harness
// and cmd/astrareport. Rendering is deliberately plain (fixed-width tables
// and unicode bar charts) so outputs diff cleanly across runs.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table accumulates a fixed-width text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}

// barWidth is the maximum bar length in characters.
const barWidth = 40

// Bars renders a labeled horizontal bar chart scaled to the maximum value.
func Bars(title string, labels []string, values []float64) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(v / maxVal * barWidth))
		}
		fmt.Fprintf(&sb, "%-*s |%-*s %s\n", maxLabel, labels[i], barWidth, strings.Repeat("█", n), FormatCount(v))
	}
	return sb.String()
}

// LogBars renders bars on a log10 scale, for series spanning decades
// (Fig 4a's monthly error counts).
func LogBars(title string, labels []string, values []float64) string {
	logged := make([]float64, len(values))
	for i, v := range values {
		if v >= 1 {
			logged[i] = math.Log10(v) + 1
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + " (log scale)\n")
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range logged {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range logged {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(v / maxVal * barWidth))
		}
		fmt.Fprintf(&sb, "%-*s |%-*s %s\n", maxLabel, labels[i], barWidth, strings.Repeat("█", n), FormatCount(values[i]))
	}
	return sb.String()
}

// FormatCount renders a count with thousands separators for readability.
func FormatCount(v float64) string {
	if v != math.Trunc(v) || math.Abs(v) >= 1e15 {
		return fmt.Sprintf("%.3g", v)
	}
	neg := v < 0
	s := fmt.Sprintf("%d", int64(math.Abs(v)))
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// FormatPct renders a fraction as a percentage.
func FormatPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// SortedKeys returns the sorted keys of an integer-keyed map, for stable
// series rendering.
func SortedKeys[K ~int | ~int64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
