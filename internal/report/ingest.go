package report

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// IngestHealth renders the telemetry ingest-health section: per-category
// line accounting from the syslog scan, the malformed-line fraction, and
// any order/duplicate repairs applied to the parsed records before
// analysis. It is printed whenever a report is built from an external
// syslog rather than the in-memory pipeline, so a reader can judge how
// much the figures may have degraded from dirty input.
func IngestHealth(rep dataset.IngestReport, san core.SanitizeReport) string {
	t := NewTable("Ingest health (external syslog)", "metric", "value")
	t.AddRow("lines scanned", FormatCount(float64(rep.Lines)))
	t.AddRow("CE records", FormatCount(float64(rep.CEs)))
	t.AddRow("DUE records", FormatCount(float64(rep.DUEs)))
	t.AddRow("HET records", FormatCount(float64(rep.HETs)))
	t.AddRow("non-record lines", FormatCount(float64(rep.Other)))
	t.AddRow("truncated", FormatCount(float64(rep.Truncated)))
	t.AddRow("garbage", FormatCount(float64(rep.Garbage)))
	t.AddRow("duplicates suppressed", FormatCount(float64(rep.Duplicated)))
	t.AddRow("reordered (resequenced)", FormatCount(float64(rep.Reordered)))
	t.AddRow("dropped out-of-order", FormatCount(float64(rep.DroppedOutOfOrder)))
	t.AddRow("malformed fraction", FormatPct(rep.MalformedFrac))
	if rep.BudgetExceeded {
		t.AddRow("BUDGET EXCEEDED", "malformed fraction above configured limit")
	}
	if san.Changed() {
		t.AddRow("records re-sorted", fmt.Sprintf("%v", san.WasUnsorted))
		t.AddRow("adjacent duplicates removed", FormatCount(float64(san.DuplicatesRemoved)))
	}
	return t.String()
}
