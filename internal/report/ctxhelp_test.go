package report

import (
	"context"

	"repro/internal/core"
	"repro/internal/mce"
)

// mustCluster adapts the ctx+error clustering API for test sites where an
// error is simply a test bug.
func mustCluster(records []mce.CERecord, cfg core.ClusterConfig) []core.Fault {
	faults, err := core.Cluster(context.Background(), records, cfg)
	if err != nil {
		panic(err)
	}
	return faults
}
