package report

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "BB")
	tb.AddRow("1", "2")
	tb.AddRow("333") // short row padded
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("chart", []string{"x", "yy"}, []float64{1, 2})
	if !strings.Contains(out, "chart") || !strings.Contains(out, "█") {
		t.Errorf("bars output:\n%s", out)
	}
	// Zero values render without panic.
	out = Bars("", []string{"a"}, []float64{0})
	if strings.Contains(out, "█") {
		t.Error("zero value drew a bar")
	}
	logOut := LogBars("log", []string{"a", "b"}, []float64{10, 100000})
	if !strings.Contains(logOut, "log scale") {
		t.Error("log label missing")
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		999:     "999",
		1000:    "1,000",
		4369731: "4,369,731",
		-12345:  "-12,345",
	}
	for v, want := range cases {
		if got := FormatCount(v); got != want {
			t.Errorf("FormatCount(%v) = %q, want %q", v, got, want)
		}
	}
	if got := FormatCount(1.5); got != "1.5" {
		t.Errorf("FormatCount(1.5) = %q", got)
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.161); got != "16.1%" {
		t.Errorf("FormatPct = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[simtime.Day]int{5: 1, 1: 2, 3: 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 5 {
		t.Errorf("SortedKeys = %v", keys)
	}
}

// TestAllFiguresRender smoke-tests every renderer on a small pipeline.
func TestAllFiguresRender(t *testing.T) {
	cfg := dataset.DefaultConfig(71)
	cfg.Nodes = 200
	ds, err := dataset.Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	faults := mustCluster(ds.CERecords, core.DefaultClusterConfig())
	outputs := map[string]string{
		"Table1":   Table1(ds.Inventory, cfg.Nodes),
		"Figure2":  Figure2(ds.Env, cfg.Nodes, cfg.Seed),
		"Figure3":  Figure3(ds.Inventory),
		"Figure4a": Figure4a(core.BreakdownByMode(ds.CERecords, faults)),
		"Figure4b": Figure4b(core.ErrorsPerFaultDist(faults)),
		"Figure5":  Figure5(core.AnalyzePerNode(ds.CERecords, faults, cfg.Nodes), cfg.Nodes),
		"Figure6":  Figure6(core.AnalyzeStructures(ds.CERecords, faults)),
		"Figure7":  Figure7(core.AnalyzeStructures(ds.CERecords, faults)),
		"Figure8":  Figure8(core.AnalyzeBitAddress(faults)),
		"Figure9":  Figure9(core.AnalyzeTempWindows(ds.CERecords, ds.Env, core.Fig9Windows)),
		"Figure10": Figure10(core.AnalyzePositional(ds.CERecords, faults)),
		"Figure11": Figure11(core.AnalyzePositional(ds.CERecords, faults)),
		"Figure12": Figure12(core.AnalyzePositional(ds.CERecords, faults)),
		"Figure13": Figure13(core.AnalyzeTempDeciles(ds.CERecords, ds.Env, cfg.Nodes)),
		"Figure14": Figure14(core.AnalyzeUtilization(ds.CERecords, ds.Env, cfg.Nodes)),
		"Figure15": Figure15(core.AnalyzeUncorrectable(ds.HETRecords, cfg.Nodes*topology.SlotsPerNode, simtime.StudyEnd)),
	}
	for name, out := range outputs {
		if len(out) < 40 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
		if strings.Contains(out, "%!") {
			t.Errorf("%s output contains a formatting bug:\n%s", name, out)
		}
	}
	// Key headline strings appear.
	if !strings.Contains(outputs["Table1"], "processor") {
		t.Error("Table1 missing processor row")
	}
	if !strings.Contains(outputs["Figure15"], "FIT/DIMM") {
		t.Error("Figure15 missing FIT")
	}
}

// TestSVGFigures smoke-tests the SVG renderers over a small pipeline.
func TestSVGFigures(t *testing.T) {
	cfg := dataset.DefaultConfig(72)
	cfg.Nodes = 150
	ds, err := dataset.Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	faults := mustCluster(ds.CERecords, core.DefaultClusterConfig())
	breakdown := core.BreakdownByMode(ds.CERecords, faults)
	perNode := core.AnalyzePerNode(ds.CERecords, faults, cfg.Nodes)
	structures := core.AnalyzeStructures(ds.CERecords, faults)
	bitAddr := core.AnalyzeBitAddress(faults)
	positional := core.AnalyzePositional(ds.CERecords, faults)
	svgs := SVGFigures(SVGInputs{
		Breakdown:   &breakdown,
		PerNode:     &perNode,
		Structures:  &structures,
		BitAddress:  &bitAddr,
		TempWindows: core.AnalyzeTempWindows(ds.CERecords, ds.Env, core.Fig9Windows),
		Positional:  &positional,
		TempDeciles: core.AnalyzeTempDeciles(ds.CERecords, ds.Env, cfg.Nodes),
		Inventory:   ds.Inventory,
	})
	want := []string{
		"fig3-replacements", "fig4a-monthly-errors", "fig5a-faults-per-node",
		"fig5b-node-cdf", "fig6-socket", "fig7-slot", "fig8a-bit-positions",
		"fig9-window-60m", "fig10-region", "fig12-rack", "fig13-deciles",
	}
	for _, id := range want {
		svg, ok := svgs[id]
		if !ok {
			t.Errorf("figure %s missing (have %d figures)", id, len(svgs))
			continue
		}
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Errorf("%s: not a complete SVG document", id)
		}
	}
	// Nil inputs render nothing and do not panic.
	if empty := SVGFigures(SVGInputs{}); len(empty) != 0 {
		t.Errorf("empty inputs produced %d figures", len(empty))
	}
}
