// Package parallel provides the deterministic fan-out primitives the
// pipeline stages share. Every helper takes an explicit worker count with
// one convention module-wide: 0 (or negative) means "auto", i.e.
// runtime.GOMAXPROCS(0); 1 runs inline on the calling goroutine with no
// synchronization, restoring the serial code path exactly.
//
// Determinism is the caller's contract: work is split into contiguous
// index ranges whose outputs land in caller-owned, disjoint slots (or are
// merged in range order), so the result of any helper is a pure function
// of its inputs — never of the scheduler. See DESIGN.md §8 for the
// system-wide argument.
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested parallelism degree: values <= 0 become
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// chunks splits [0, n) into at most workers contiguous [lo, hi) ranges of
// near-equal size. It returns nil when n == 0.
func chunks(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		// Distribute the remainder one element at a time so sizes differ
		// by at most one.
		size := (n - lo) / (workers - w)
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// ForEachChunk partitions [0, n) into contiguous ranges and calls
// fn(shard, lo, hi) for each, concurrently across up to workers
// goroutines. shard is the dense chunk index (0-based, in range order) so
// callers can write per-shard partial results into a slice and merge them
// in shard order afterwards. workers <= 1 calls fn(0, 0, n) inline.
func ForEachChunk(workers, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	ranges := chunks(n, workers)
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for shard, r := range ranges {
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(shard, r[0], r[1])
	}
	wg.Wait()
}

// NumChunks reports how many shards ForEachChunk will use for n items at
// the given worker count, so callers can pre-size per-shard result slices.
func NumChunks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	workers = Workers(workers)
	if workers <= 1 {
		return 1
	}
	return len(chunks(n, workers))
}

// Run executes the given tasks with at most workers running concurrently.
// workers <= 1 runs them inline in slice order. Tasks must synchronize
// only through their own disjoint outputs (the helper adds the final
// happens-before edge when it returns).
func Run(workers int, tasks ...func()) {
	workers = Workers(workers)
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		go func(t func()) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t()
		}(t)
	}
	wg.Wait()
}
