// Package parallel provides the deterministic fan-out primitives the
// pipeline stages share. Every helper takes an explicit worker count with
// one convention module-wide: 0 (or negative) means "auto", i.e.
// runtime.GOMAXPROCS(0); 1 runs inline on the calling goroutine with no
// synchronization, restoring the serial code path exactly.
//
// Determinism is the caller's contract: work is split into contiguous
// index ranges whose outputs land in caller-owned, disjoint slots (or are
// merged in range order), so the result of any helper is a pure function
// of its inputs — never of the scheduler. See DESIGN.md §8 for the
// system-wide argument.
//
// Crash safety (DESIGN.md §10) adds two properties on top:
//
//   - Cancellation: the Ctx variants take a context.Context and stop
//     scheduling new work once it is done, returning ctx.Err(). Long per-
//     shard loops are expected to poll the context themselves.
//   - Panic isolation: a panic on a worker goroutine never kills the
//     process. The Ctx variants return it as a *PanicError carrying the
//     worker's stack; the infallible variants re-throw it on the calling
//     goroutine, where an enclosing Recover (at the Generate / Build /
//     Cluster / Analyze boundary) converts it to an error.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic captured as an error: the recovered value
// plus the stack of the goroutine that panicked.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value and the captured worker stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("worker panic: %v\n%s", e.Value, e.Stack)
}

// Recover converts an in-flight panic into a *PanicError assigned to
// *errp. Use it as `defer parallel.Recover(&err)` at a pipeline-stage
// boundary so a panic anywhere below — this goroutine or a re-thrown
// worker panic — surfaces as an ordinary error instead of crashing the
// process. A panic that is already a *PanicError keeps its original
// worker stack.
func Recover(errp *error) {
	v := recover()
	if v == nil {
		return
	}
	if pe, ok := v.(*PanicError); ok {
		*errp = pe
		return
	}
	*errp = &PanicError{Value: v, Stack: debug.Stack()}
}

// capture runs fn on the current goroutine, converting a panic into a
// *PanicError (preserving the original capture when fn re-threw one).
func capture(fn func() error) (err error) {
	defer Recover(&err)
	return fn()
}

// Workers normalizes a requested parallelism degree: values <= 0 become
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// chunks splits [0, n) into at most workers contiguous [lo, hi) ranges of
// near-equal size. It returns nil when n == 0.
func chunks(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		// Distribute the remainder one element at a time so sizes differ
		// by at most one.
		size := (n - lo) / (workers - w)
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// ForEachChunkCtx partitions [0, n) into contiguous ranges and calls
// fn(ctx, shard, lo, hi) for each, concurrently across up to workers
// goroutines. shard is the dense chunk index (0-based, in range order) so
// callers can write per-shard partial results into a slice and merge them
// in shard order afterwards. workers <= 1 calls fn(ctx, 0, 0, n) inline.
//
// The first error in shard order wins (deterministic at every worker
// count); a worker panic is returned as a *PanicError. When ctx is done
// before any shard fails, ctx.Err() is returned. Shards all start
// together, so cancellation mid-shard relies on fn polling ctx.
func ForEachChunkCtx(ctx context.Context, workers, n int, fn func(ctx context.Context, shard, lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Workers(workers)
	if workers <= 1 {
		return capture(func() error { return fn(ctx, 0, 0, n) })
	}
	ranges := chunks(n, workers)
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for shard, r := range ranges {
		go func(shard, lo, hi int) {
			defer wg.Done()
			errs[shard] = capture(func() error { return fn(ctx, shard, lo, hi) })
		}(shard, r[0], r[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// ForEachChunk is the infallible ForEachChunkCtx: no cancellation, and a
// worker panic is re-thrown on the calling goroutine (as a *PanicError
// carrying the worker's stack) instead of crashing the process from a
// goroutine no recover can reach. Pipeline entry points recover it via
// parallel.Recover.
func ForEachChunk(workers, n int, fn func(shard, lo, hi int)) {
	err := ForEachChunkCtx(context.Background(), workers, n, func(_ context.Context, shard, lo, hi int) error {
		fn(shard, lo, hi)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// NumChunks reports how many shards ForEachChunk will use for n items at
// the given worker count, so callers can pre-size per-shard result slices.
func NumChunks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	workers = Workers(workers)
	if workers <= 1 {
		return 1
	}
	return len(chunks(n, workers))
}

// RunCtx executes the given tasks with at most workers running
// concurrently. workers <= 1 runs them inline in slice order. Tasks must
// synchronize only through their own disjoint outputs (the helper adds
// the final happens-before edge when it returns).
//
// Once any task fails (or ctx is done) tasks that have not yet started are
// skipped; already-running tasks are waited for. The reported error is the
// first failure in task order among the tasks that ran, falling back to
// ctx.Err(); a task panic is returned as a *PanicError.
func RunCtx(ctx context.Context, workers int, tasks ...func(ctx context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Workers(workers)
	if workers <= 1 {
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := capture(func() error { return t(ctx) }); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	ran := make([]bool, len(tasks))
	var failed atomic.Bool
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for i, t := range tasks {
		go func(i int, t func(ctx context.Context) error) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if failed.Load() || ctx.Err() != nil {
				return
			}
			ran[i] = true
			if err := capture(func() error { return t(ctx) }); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i, t)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && ran[i] {
			return err
		}
	}
	return ctx.Err()
}

// Run is the infallible RunCtx: no cancellation, every task runs, and a
// task panic is re-thrown on the calling goroutine as a *PanicError (see
// ForEachChunk).
func Run(workers int, tasks ...func()) {
	wrapped := make([]func(ctx context.Context) error, len(tasks))
	for i, t := range tasks {
		t := t
		wrapped[i] = func(context.Context) error { t(); return nil }
	}
	if err := RunCtx(context.Background(), workers, wrapped...); err != nil {
		panic(err)
	}
}

// Poll returns ctx.Err() every strideth call site iteration: callers in
// hot loops write `if err := parallel.Poll(ctx, i); err != nil { return
// err }` with i their loop index, paying one atomic-free modulo per
// iteration and a context check every 8192.
func Poll(ctx context.Context, i int) error {
	if i&8191 != 0 {
		return nil
	}
	return ctx.Err()
}
