package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 97, 1000} {
		for _, w := range []int{1, 2, 3, 8, 64} {
			ranges := chunks(n, w)
			covered := 0
			prev := 0
			for _, r := range ranges {
				if r[0] != prev {
					t.Fatalf("n=%d w=%d: gap at %v", n, w, r)
				}
				if r[1] < r[0] {
					t.Fatalf("n=%d w=%d: inverted range %v", n, w, r)
				}
				covered += r[1] - r[0]
				prev = r[1]
			}
			if covered != n {
				t.Fatalf("n=%d w=%d: covered %d", n, w, covered)
			}
			if len(ranges) > 0 && ranges[len(ranges)-1][1] != n {
				t.Fatalf("n=%d w=%d: last range %v", n, w, ranges[len(ranges)-1])
			}
		}
	}
}

func TestForEachChunkDeterministicOutput(t *testing.T) {
	const n = 1000
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, w := range []int{1, 2, 8} {
		got := make([]int, n)
		ForEachChunk(w, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d", w, i, got[i])
			}
		}
	}
}

func TestForEachChunkShardIndexes(t *testing.T) {
	const n = 100
	w := 4
	seen := make([]bool, NumChunks(w, n))
	var mu atomic.Int32
	ForEachChunk(w, n, func(shard, lo, hi int) {
		mu.Add(1)
		seen[shard] = true // shards are distinct, so these writes are disjoint
	})
	for s, ok := range seen {
		if !ok {
			t.Errorf("shard %d never ran", s)
		}
	}
	if int(mu.Load()) != len(seen) {
		t.Errorf("ran %d shards, want %d", mu.Load(), len(seen))
	}
}

func TestRunAllTasks(t *testing.T) {
	for _, w := range []int{1, 4} {
		var count atomic.Int64
		tasks := make([]func(), 33)
		for i := range tasks {
			tasks[i] = func() { count.Add(1) }
		}
		Run(w, tasks...)
		if count.Load() != 33 {
			t.Errorf("workers=%d: ran %d tasks", w, count.Load())
		}
	}
}

func TestRunSerialOrder(t *testing.T) {
	var order []int
	Run(1,
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	for i, v := range order {
		if i != v {
			t.Fatalf("serial Run out of order: %v", order)
		}
	}
}
