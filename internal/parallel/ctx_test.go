package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachChunkCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		called := atomic.Bool{}
		err := ForEachChunkCtx(ctx, workers, 100, func(context.Context, int, int, int) error {
			called.Store(true)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if called.Load() {
			t.Errorf("workers=%d: shard ran under a pre-cancelled context", workers)
		}
	}
}

func TestForEachChunkCtxPollStopsShards(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var iters atomic.Int64
	err := ForEachChunkCtx(ctx, 4, 1<<20, func(ctx context.Context, shard, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := Poll(ctx, i); err != nil {
				return err
			}
			if iters.Add(1) == 100 {
				cancel()
			}
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// Each shard stops within one Poll stride of the cancel instead of
	// finishing its whole range.
	if n := iters.Load(); n >= 1<<20 {
		t.Errorf("cancellation did not stop the loops: %d iterations", n)
	}
}

func TestForEachChunkCtxFirstErrorInShardOrder(t *testing.T) {
	// Shards 1 and 3 fail; shard 1's error must win at every worker count —
	// the determinism contract extended to failures.
	for _, workers := range []int{2, 4, 8} {
		err := ForEachChunkCtx(context.Background(), workers, 64, func(_ context.Context, shard, lo, hi int) error {
			if shard == 1 || shard == 3 {
				return errors.New("shard " + string(rune('0'+shard)) + " failed")
			}
			return nil
		})
		if err == nil || err.Error() != "shard 1 failed" {
			t.Errorf("workers=%d: err = %v, want shard 1's error", workers, err)
		}
	}
}

func TestForEachChunkCtxPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachChunkCtx(context.Background(), workers, 16, func(_ context.Context, shard, lo, hi int) error {
			if lo <= 5 && 5 < hi {
				panic("index 5 exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "index 5 exploded" {
			t.Errorf("workers=%d: Value = %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "ctx_test.go") {
			t.Errorf("workers=%d: captured stack does not point at the panic site:\n%s", workers, pe.Stack)
		}
	}
}

func TestForEachChunkRethrowsWorkerPanic(t *testing.T) {
	defer func() {
		v := recover()
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v, want *PanicError", v)
		}
		if pe.Value != "boom" {
			t.Errorf("Value = %v", pe.Value)
		}
	}()
	ForEachChunk(4, 16, func(shard, lo, hi int) {
		if shard == 2 {
			panic("boom")
		}
	})
	t.Fatal("worker panic was swallowed")
}

func TestRecoverPreservesWorkerStack(t *testing.T) {
	run := func() (err error) {
		defer Recover(&err)
		ForEachChunk(4, 16, func(shard, lo, hi int) {
			if shard == 1 {
				panic("deep failure")
			}
		})
		return nil
	}
	err := run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	// The stack must be the worker's (where the panic happened), not the
	// caller's recover site.
	if !strings.Contains(string(pe.Stack), "ctx_test.go") {
		t.Errorf("stack lost the panic site:\n%s", pe.Stack)
	}
}

func TestRunCtxFirstErrorInTaskOrder(t *testing.T) {
	e2 := errors.New("task 2")
	e5 := errors.New("task 5")
	fail := func(err error) func(context.Context) error {
		return func(context.Context) error { return err }
	}
	ok := func(context.Context) error { return nil }
	// With a single worker, execution is in task order and task 2 fails
	// first; later tasks never start.
	var ran atomic.Int32
	count := func(context.Context) error { ran.Add(1); return nil }
	err := RunCtx(context.Background(), 1, count, count, fail(e2), count, count, fail(e5))
	if !errors.Is(err, e2) {
		t.Errorf("serial: err = %v, want task 2's", err)
	}
	if ran.Load() != 2 {
		t.Errorf("serial: %d tasks ran after the failure point", ran.Load())
	}
	// Concurrently, whichever failure is observed, the reported error is
	// the first in task order among tasks that ran.
	err = RunCtx(context.Background(), 4, ok, ok, fail(e2), ok, ok, fail(e5))
	if !errors.Is(err, e2) && !errors.Is(err, e5) {
		t.Errorf("parallel: err = %v, want a task error", err)
	}
}

func TestRunCtxCancelSkipsUnstarted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	tasks := make([]func(context.Context) error, 64)
	for i := range tasks {
		i := i
		tasks[i] = func(context.Context) error {
			ran.Add(1)
			if i == 0 {
				cancel()
			}
			return nil
		}
	}
	err := RunCtx(ctx, 1, tasks...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if ran.Load() == 64 {
		t.Error("cancellation skipped nothing")
	}
}

func TestRunCtxPanicBecomesError(t *testing.T) {
	err := RunCtx(context.Background(), 4,
		func(context.Context) error { return nil },
		func(context.Context) error { panic("task died") },
	)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "task died" {
		t.Errorf("Value = %v", pe.Value)
	}
}

func TestPollStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Poll(ctx, 1); err != nil {
		t.Error("Poll checked the context off-stride")
	}
	if err := Poll(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Error("Poll missed the context on-stride")
	}
	if err := Poll(ctx, 8192); !errors.Is(err, context.Canceled) {
		t.Error("Poll missed the context at the stride boundary")
	}
}
