package syslog

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/topology"
)

// resumeLog builds a log that exercises every piece of cross-line state a
// checkpoint must carry: duplicates at varying distances (dedup ring,
// including wrap-around), out-of-order timestamps (reorder heap), kernel
// noise, and a malformed line.
func resumeLog(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	base := sampleCE().Time
	ce := func(d time.Duration, addr uint64) string {
		r := sampleCE()
		r.Time = base.Add(d)
		r.Addr = topology.PhysAddr(addr)
		return FormatCE(r)
	}
	due := func(d time.Duration) string {
		r := sampleDUE()
		r.Time = base.Add(d)
		return FormatDUE(r)
	}
	het := func(d time.Duration) string {
		r := sampleHET()
		r.Time = base.Add(d)
		return FormatHET(r)
	}
	lines := []string{
		ce(0, 0x1000),
		ce(10*time.Second, 0x2000),
		ce(10*time.Second, 0x2000), // adjacent duplicate
		"kernel: ordinary chatter",
		ce(5*time.Second, 0x3000), // arrives late: reordered
		due(20 * time.Second),
		ce(0, 0x1000), // distant duplicate: needs the full ring
		ce(40*time.Second, 0x4000),
		ce(30*time.Second, 0x5000), // late again
		"EDAC MC0: garbled CE record beyond repair",
		het(50 * time.Second),
		ce(90*time.Second, 0x6000),
		ce(40*time.Second, 0x4000), // duplicate across ring boundary
		ce(120*time.Second, 0x7000),
		ce(150*time.Second, 0x8000),
	}
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// collect drains a scanner, returning its records.
func collect(t *testing.T, sc *Scanner) []Parsed {
	t.Helper()
	var recs []Parsed
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	return recs
}

// TestScannerCheckpointResume proves the checkpoint contract: for every
// possible checkpoint position, a fresh scanner restored at that point
// over the remaining bytes yields exactly the record tail and final stats
// of the uninterrupted scan. The dedup ring is sized so duplicates after
// the checkpoint refer to lines before it, and the reorder window keeps
// records pending across checkpoints.
func TestScannerCheckpointResume(t *testing.T) {
	in := resumeLog(t)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}

	ref := NewScannerConfig(strings.NewReader(in), cfg)
	want := collect(t, ref)
	wantStats := ref.Stats()
	if len(want) < 8 {
		t.Fatalf("weak fixture: only %d records", len(want))
	}
	if wantStats.Duplicated == 0 || wantStats.Reordered == 0 {
		t.Fatalf("fixture exercises no tolerance state: %+v", wantStats)
	}

	for stop := 0; stop <= len(want); stop++ {
		first := NewScannerConfig(strings.NewReader(in), cfg)
		var head []Parsed
		for i := 0; i < stop; i++ {
			if !first.Scan() {
				t.Fatalf("stop=%d: premature end at %d", stop, i)
			}
			head = append(head, first.Record())
		}
		cp := first.Checkpoint()
		if cp.Offset < 0 || cp.Offset > int64(len(in)) {
			t.Fatalf("stop=%d: offset %d out of range", stop, cp.Offset)
		}

		second := NewScannerConfig(strings.NewReader(in[cp.Offset:]), cfg)
		if err := second.Restore(cp); err != nil {
			t.Fatalf("stop=%d: restore: %v", stop, err)
		}
		tail := collect(t, second)

		got := append(head, tail...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stop=%d: resumed stream diverges:\n got %+v\nwant %+v", stop, got, want)
		}
		if st := second.Stats(); st != wantStats {
			t.Errorf("stop=%d: resumed stats = %+v, want %+v", stop, st, wantStats)
		}
		if off := second.Offset(); off != int64(len(in)) {
			t.Errorf("stop=%d: final offset = %d, want %d", stop, off, len(in))
		}
	}
}

// TestScannerCheckpointIsDeepCopy ensures later scanning does not reach
// back into a taken checkpoint.
func TestScannerCheckpointIsDeepCopy(t *testing.T) {
	in := resumeLog(t)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}

	sc := NewScannerConfig(strings.NewReader(in), cfg)
	if !sc.Scan() || !sc.Scan() {
		t.Fatal("fixture too short")
	}
	cp := sc.Checkpoint()
	before := append([][]byte(nil), cp.recent...)
	for i, b := range before {
		before[i] = append([]byte(nil), b...)
	}
	collect(t, sc) // keep scanning; ring entries are reused in place

	for i := range before {
		if string(before[i]) != string(cp.recent[i]) {
			t.Fatalf("checkpoint dedup ring mutated by later scanning")
		}
	}
}

// TestScannerRestoreUsed rejects restoring into a scanner that has
// already consumed input — its tolerance state would be inconsistent.
func TestScannerRestoreUsed(t *testing.T) {
	in := resumeLog(t)
	sc := NewScanner(strings.NewReader(in))
	if !sc.Scan() {
		t.Fatal("no records")
	}
	if err := sc.Restore(Checkpoint{Offset: 3}); err == nil {
		t.Fatal("Restore on a used scanner succeeded")
	}
}

// TestScannerOffsetIgnoresReadahead pins the offset semantics: after k
// records, Offset is a line boundary and re-parsing from it alone (no
// tolerance state in play) reproduces the tail.
func TestScannerOffsetIgnoresReadahead(t *testing.T) {
	line := FormatCE(sampleCE())
	in := strings.Repeat(line+"\n", 50)
	sc := NewScanner(strings.NewReader(in))
	for i := 0; i < 20; i++ {
		if !sc.Scan() {
			t.Fatal("premature end")
		}
	}
	off := sc.Offset()
	want := int64(20 * (len(line) + 1))
	if off != want {
		t.Fatalf("Offset = %d, want %d", off, want)
	}
	rest := NewScanner(strings.NewReader(in[off:]))
	n := 0
	for rest.Scan() {
		n++
	}
	if n != 30 {
		t.Fatalf("tail records = %d, want 30", n)
	}
}
