package syslog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestCheckpointRestoreRoundTripsByteIdentical is the regression test for
// the restore/checkpoint identity: at every possible checkpoint position —
// explicitly including positions where the reorder heap is non-empty — a
// scanner that Restores a checkpoint and immediately Checkpoints again
// must produce byte-identical serialized state. A daemon relies on this to
// treat its state file as content-addressed: restart + immediate
// checkpoint must not dirty the file.
func TestCheckpointRestoreRoundTripsByteIdentical(t *testing.T) {
	in := resumeLog(t)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}

	ref := NewScannerConfig(strings.NewReader(in), cfg)
	total := len(collect(t, ref))

	heapStops := 0
	for stop := 0; stop <= total; stop++ {
		first := NewScannerConfig(strings.NewReader(in), cfg)
		for i := 0; i < stop; i++ {
			if !first.Scan() {
				t.Fatalf("stop=%d: premature end", stop)
			}
		}
		cp := first.Checkpoint()
		if len(cp.pending) > 0 {
			heapStops++
		}
		data, err := cp.MarshalBinary()
		if err != nil {
			t.Fatalf("stop=%d: marshal: %v", stop, err)
		}

		second := NewScannerConfig(strings.NewReader(in[cp.Offset:]), cfg)
		if err := second.Restore(cp); err != nil {
			t.Fatalf("stop=%d: restore: %v", stop, err)
		}
		again, err := second.Checkpoint().MarshalBinary()
		if err != nil {
			t.Fatalf("stop=%d: re-marshal: %v", stop, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("stop=%d (pending=%d): restore+checkpoint diverges:\n--- first\n%s--- second\n%s",
				stop, len(cp.pending), data, again)
		}
	}
	if heapStops == 0 {
		t.Fatal("fixture never left the reorder heap non-empty at a checkpoint; the regression has no teeth")
	}
}

// TestCheckpointMarshalRoundTrip proves the serialized form carries the
// full resume contract: unmarshal on a different process's empty
// Checkpoint, restore, and the remaining record stream and final stats
// equal the uninterrupted scan's.
func TestCheckpointMarshalRoundTrip(t *testing.T) {
	in := resumeLog(t)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}

	ref := NewScannerConfig(strings.NewReader(in), cfg)
	want := collect(t, ref)
	wantStats := ref.Stats()

	for stop := 0; stop <= len(want); stop++ {
		first := NewScannerConfig(strings.NewReader(in), cfg)
		var head []Parsed
		for i := 0; i < stop; i++ {
			if !first.Scan() {
				t.Fatalf("stop=%d: premature end", stop)
			}
			head = append(head, first.Record())
		}
		data, err := first.Checkpoint().MarshalBinary()
		if err != nil {
			t.Fatalf("stop=%d: marshal: %v", stop, err)
		}

		var cp Checkpoint
		if err := cp.UnmarshalBinary(data); err != nil {
			t.Fatalf("stop=%d: unmarshal: %v", stop, err)
		}
		second := NewScannerConfig(strings.NewReader(in[cp.Offset:]), cfg)
		if err := second.Restore(cp); err != nil {
			t.Fatalf("stop=%d: restore: %v", stop, err)
		}
		got := append(head, collect(t, second)...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stop=%d: resumed-from-bytes stream diverges", stop)
		}
		if st := second.Stats(); st != wantStats {
			t.Errorf("stop=%d: stats = %+v, want %+v", stop, st, wantStats)
		}
	}
}

// TestCheckpointMarshalDeterministic pins marshal→unmarshal→marshal as the
// identity on bytes.
func TestCheckpointMarshalDeterministic(t *testing.T) {
	in := resumeLog(t)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}
	sc := NewScannerConfig(strings.NewReader(in), cfg)
	for i := 0; i < 4; i++ {
		if !sc.Scan() {
			t.Fatal("fixture too short")
		}
	}
	data, err := sc.Checkpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	if err := cp.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	again, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("marshal not deterministic:\n--- first\n%s--- second\n%s", data, again)
	}
}

// TestCheckpointUnmarshalRejectsCorruption exercises the error paths a
// daemon hits on a torn or foreign state file.
func TestCheckpointUnmarshalRejectsCorruption(t *testing.T) {
	in := resumeLog(t)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}
	sc := NewScannerConfig(strings.NewReader(in), cfg)
	for i := 0; i < 4; i++ {
		if !sc.Scan() {
			t.Fatal("fixture too short")
		}
	}
	data, err := sc.Checkpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad header":  []byte("not a checkpoint\n"),
		"truncated":   data[:len(data)/2],
		"no newline":  data[:len(data)-1],
		"trailing":    append(append([]byte(nil), data...), "extra\n"...),
		"bad offset":  bytes.Replace(data, []byte("offset "), []byte("offset x"), 1),
		"bad record":  bytes.Replace(data, []byte("EDAC"), []byte("EDCA"), 1),
		"bad recent":  bytes.Replace(data, []byte("recent 3"), []byte("recent 99"), 1),
		"short stats": bytes.Replace(data, []byte("stats "), []byte("stats 1 "), 1),
	}
	for name, corrupt := range cases {
		var cp Checkpoint
		if err := cp.UnmarshalBinary(corrupt); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
}
