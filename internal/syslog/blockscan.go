package syslog

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/parallel"
)

// maxLineBytes is the longest supported input line (content bytes). The
// serial Scanner enforces it through its bufio buffer cap; the block
// pipeline enforces the same limit explicitly so both fail at the same
// line with the same error (bufio.ErrTooLong).
const maxLineBytes = 1 << 20

// DefaultBlockSize is the target block payload for the parallel scanner:
// large enough to amortize the hand-off per block, small enough that a
// handful of blocks in flight stay cache- and memory-friendly.
const DefaultBlockSize = 512 * 1024

// BlockScanConfig tunes a BlockScanner. The embedded ScanConfig carries
// the corruption-tolerance settings shared with the serial Scanner.
type BlockScanConfig struct {
	ScanConfig
	// Workers is the number of parse workers: 0 = GOMAXPROCS (via
	// parallel.Workers), 1 = the serial Scanner code path exactly.
	Workers int
	// BlockSize is the target block payload in bytes (0 = DefaultBlockSize).
	// Blocks always end at a line boundary, so a block can exceed the
	// target by up to one line.
	BlockSize int
}

// BlockScanner is the block-parallel Scanner: a reader goroutine carves
// the input into newline-aligned blocks, a fixed worker pool parses each
// block's lines with a per-worker Decoder (zero-alloc, like the serial
// path), and Scan merges the parsed blocks back in input order before
// feeding the shared tolerator. Because blocks are dispatched to workers
// round-robin and merged in the same round-robin order — the same
// first-shard-first discipline as internal/parallel's ForEachChunk error
// semantics — the line sequence reaching the tolerator is identical to
// the serial Scanner's, so records, ScanStats, errors and checkpoints are
// bit-identical at any worker count.
//
// A BlockScanner whose Workers resolve to 1 delegates to the serial
// Scanner outright: one code path, not two implementations to keep equal.
type BlockScanner struct {
	ser *Scanner // non-nil when workers == 1

	r       io.Reader
	cfg     BlockScanConfig
	workers int
	bsize   int

	tol      tolerator
	cur      Parsed
	err      error
	eof      bool
	consumed int64

	started bool
	closed  bool
	inCh    []chan *parseBlock
	outCh   []chan *parseBlock
	quit    chan struct{}
	wg      sync.WaitGroup
	pool    sync.Pool

	nextW   int         // worker whose output holds the next in-order block
	curBlk  *parseBlock // block currently being fed to the tolerator
	curLine int
}

// parseBlock is one newline-aligned chunk of input moving through the
// pipeline: raw bytes from the reader, parsed line spans from a worker.
type parseBlock struct {
	buf   []byte
	lines []lineSpan
	// readErr is surfaced (wrapped) after the block's lines are consumed:
	// a real read error, or bufio.ErrTooLong for an over-long line (in
	// which case the offending and following lines are absent, exactly as
	// with the serial Scanner's capped bufio buffer).
	readErr error
}

// lineSpan is one parsed line within a block: the content span (CR/LF
// stripped), the bytes consumed from the input including terminators, and
// the parse outcome.
type lineSpan struct {
	off, end int32
	adv      int32
	p        Parsed
	err      error
}

// NewBlockScanner wraps a reader with a block-parallel scanner. The
// pipeline goroutines start lazily on the first Scan, so constructing one
// (e.g. to Restore a checkpoint first) spawns nothing.
func NewBlockScanner(r io.Reader, cfg BlockScanConfig) *BlockScanner {
	w := parallel.Workers(cfg.Workers)
	s := &BlockScanner{r: r, cfg: cfg, workers: w, bsize: cfg.BlockSize}
	if s.bsize <= 0 {
		s.bsize = DefaultBlockSize
	}
	// Cap the block target below the line limit so that whenever the
	// carve loop leaves an over-target buffer uncut, the buffer is
	// provably newline-free and the too-long check in readLoop is exact.
	if s.bsize > maxLineBytes/2 {
		s.bsize = maxLineBytes / 2
	}
	if w <= 1 {
		s.ser = NewScannerConfig(r, cfg.ScanConfig)
		return s
	}
	s.tol = newTolerator(cfg.ScanConfig)
	s.pool.New = func() any { return &parseBlock{} }
	return s
}

// Scan advances to the next well-formed record; see (*Scanner).Scan for
// the contract. The record sequence, stats and errors are bit-identical
// to the serial Scanner over the same input and ScanConfig.
func (s *BlockScanner) Scan() bool {
	if s.ser != nil {
		ok := s.ser.Scan()
		if ok {
			s.cur = s.ser.Record()
		}
		return ok
	}
	for {
		if p, ok := s.tol.pop(); ok {
			s.cur = p
			return true
		}
		if s.err != nil || s.eof {
			return false
		}
		if !s.started {
			s.start()
		}
		if s.curBlk == nil {
			blk, ok := <-s.outCh[s.nextW]
			if !ok {
				// Blocks arrive strictly round-robin, so a closed output
				// at the in-order position means the whole input has been
				// merged. Workers have all exited; nothing to tear down.
				s.eof = true
				s.tol.drain(true)
				continue
			}
			s.nextW = (s.nextW + 1) % s.workers
			s.curBlk, s.curLine = blk, 0
		}
		blk := s.curBlk
		if s.curLine < len(blk.lines) {
			ln := &blk.lines[s.curLine]
			s.curLine++
			s.consumed += int64(ln.adv)
			if err := s.tol.feed(blk.buf[ln.off:ln.end], ln.p, ln.err); err != nil {
				s.err = err
				s.shutdown()
				return false
			}
			continue
		}
		if blk.readErr != nil {
			s.err = fmt.Errorf("syslog: read: %w", blk.readErr)
			s.shutdown()
			return false
		}
		s.recycle(blk)
		s.curBlk = nil
	}
}

// Record returns the record produced by the last successful Scan.
func (s *BlockScanner) Record() Parsed { return s.cur }

// Stats returns the accounting so far.
func (s *BlockScanner) Stats() ScanStats {
	if s.ser != nil {
		return s.ser.Stats()
	}
	return s.tol.stats
}

// Err returns the first read error (or, in strict mode, parse error).
func (s *BlockScanner) Err() error {
	if s.ser != nil {
		return s.ser.Err()
	}
	return s.err
}

// Offset returns the byte offset just past the last input line consumed
// by Scan, as per (*Scanner).Offset. Input the pipeline has read ahead is
// not counted.
func (s *BlockScanner) Offset() int64 {
	if s.ser != nil {
		return s.ser.Offset()
	}
	return s.consumed
}

// Checkpoint snapshots the scanner between Scan calls. The checkpoint is
// interchangeable with the serial Scanner's: either implementation can
// Restore it and continue the identical record stream.
func (s *BlockScanner) Checkpoint() Checkpoint {
	if s.ser != nil {
		return s.ser.Checkpoint()
	}
	return s.tol.checkpoint(s.consumed)
}

// Restore loads a Checkpoint into a freshly constructed BlockScanner
// whose reader is positioned at cp.Offset, as per (*Scanner).Restore.
func (s *BlockScanner) Restore(cp Checkpoint) error {
	if s.ser != nil {
		return s.ser.Restore(cp)
	}
	if s.started || s.consumed != 0 || s.tol.stats.Lines != 0 {
		return errors.New("syslog: Restore on a scanner that has already scanned")
	}
	s.consumed = cp.Offset
	s.tol.restore(cp)
	return nil
}

// Close releases the pipeline goroutines. It is only needed when a scan
// is abandoned before Scan returns false; a completed or failed scan has
// already shut the pipeline down. Close is idempotent.
func (s *BlockScanner) Close() {
	if s.ser == nil {
		s.shutdown()
	}
}

func (s *BlockScanner) start() {
	s.started = true
	s.quit = make(chan struct{})
	s.inCh = make([]chan *parseBlock, s.workers)
	s.outCh = make([]chan *parseBlock, s.workers)
	for w := 0; w < s.workers; w++ {
		s.inCh[w] = make(chan *parseBlock, 2)
		s.outCh[w] = make(chan *parseBlock, 2)
	}
	s.wg.Add(1 + s.workers)
	go s.readLoop()
	for w := 0; w < s.workers; w++ {
		go s.workLoop(w)
	}
}

// shutdown aborts the pipeline (if running) and waits for its goroutines.
// Safe to call from the merge side only — the quit channel unblocks any
// producer stuck on a full channel.
func (s *BlockScanner) shutdown() {
	if !s.started || s.closed {
		s.closed = true
		return
	}
	s.closed = true
	close(s.quit)
	s.wg.Wait()
}

func (s *BlockScanner) getBlock() *parseBlock {
	blk := s.pool.Get().(*parseBlock)
	blk.buf = blk.buf[:0]
	blk.lines = blk.lines[:0]
	blk.readErr = nil
	return blk
}

func (s *BlockScanner) recycle(blk *parseBlock) {
	s.pool.Put(blk)
}

// readLoop carves the input into newline-aligned blocks and dispatches
// them round-robin to the workers. Only the final block may end without a
// newline (EOF, or a read error — bufio likewise tokenizes everything
// buffered before surfacing a read error). A line that reaches
// maxLineBytes without a newline aborts the stream with bufio.ErrTooLong
// at exactly the point the serial Scanner's capped buffer would.
func (s *BlockScanner) readLoop() {
	defer s.wg.Done()
	seq := 0
	dispatch := func(b *parseBlock) bool {
		select {
		case s.inCh[seq%s.workers] <- b:
			seq++
			return true
		case <-s.quit:
			return false
		}
	}
	defer func() {
		for _, ch := range s.inCh {
			close(ch)
		}
	}()

	blk := s.getBlock()
	for {
		// Carve off as many full blocks as the buffer holds. The cut is
		// the last newline within the target size — or, when a single
		// line overflows the target, the first newline after it.
		for len(blk.buf) >= s.bsize {
			cut := bytes.LastIndexByte(blk.buf[:s.bsize], '\n')
			if cut < 0 {
				if i := bytes.IndexByte(blk.buf[s.bsize:], '\n'); i >= 0 {
					cut = s.bsize + i
				}
			}
			if cut < 0 {
				break
			}
			next := s.getBlock()
			next.buf = append(next.buf, blk.buf[cut+1:]...)
			blk.buf = blk.buf[:cut+1]
			if !dispatch(blk) {
				return
			}
			blk = next
		}
		// No newline anywhere in an over-long buffer: the line can never
		// be tokenized. (The carve loop above only leaves a newline-free
		// buffer or one below the block size.)
		if len(blk.buf) >= maxLineBytes {
			blk.buf = blk.buf[:0]
			blk.readErr = bufio.ErrTooLong
			dispatch(blk)
			return
		}
		if cap(blk.buf)-len(blk.buf) < 4096 {
			grown := make([]byte, len(blk.buf), 2*cap(blk.buf)+s.bsize)
			copy(grown, blk.buf)
			blk.buf = grown
		}
		n, err := s.r.Read(blk.buf[len(blk.buf):cap(blk.buf)])
		blk.buf = blk.buf[:len(blk.buf)+n]
		if err != nil {
			if err != io.EOF {
				blk.readErr = err
			}
			if len(blk.buf) > 0 || blk.readErr != nil {
				dispatch(blk)
			} else {
				s.recycle(blk)
			}
			return
		}
	}
}

// workLoop parses every line of each incoming block with a worker-local
// Decoder and forwards the block, in arrival order, to this worker's
// output channel for the in-order merge.
func (s *BlockScanner) workLoop(w int) {
	defer s.wg.Done()
	var dec Decoder
	in, out := s.inCh[w], s.outCh[w]
	for blk := range in {
		splitAndParse(&dec, blk)
		select {
		case out <- blk:
		case <-s.quit:
			return
		}
	}
	close(out)
}

// splitAndParse tokenizes a block into lines with bufio.ScanLines
// semantics — '\n' terminated, one trailing '\r' stripped, a final
// unterminated line emitted as-is — and parses each in place.
func splitAndParse(dec *Decoder, blk *parseBlock) {
	buf := blk.buf
	for start := 0; start < len(buf); {
		content := buf[start:]
		adv := int32(len(content))
		if i := bytes.IndexByte(content, '\n'); i >= 0 {
			content = content[:i]
			adv = int32(i + 1)
		}
		lineStart := start
		start += int(adv)
		if len(content) > 0 && content[len(content)-1] == '\r' {
			content = content[:len(content)-1]
		}
		if len(content) >= maxLineBytes {
			// The serial scanner's buffer could never have tokenized
			// this line; it fails the scan there, so this and the lines
			// after it are equally unreachable.
			blk.readErr = bufio.ErrTooLong
			return
		}
		p, err := dec.ParseLineBytes(content)
		blk.lines = append(blk.lines, lineSpan{
			off: int32(lineStart),
			end: int32(lineStart + len(content)),
			adv: adv,
			p:   p,
			err: err,
		})
	}
}
