package syslog

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// tailFixture creates an empty temp log file and returns its path plus the
// full resume log for the test to append.
func tailFixture(t *testing.T) (string, string) {
	t.Helper()
	in := resumeLog(t)
	path := filepath.Join(t.TempDir(), "syslog")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, in
}

func appendFile(t *testing.T, path, data string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// liveEmittable returns how many of the batch scan's records a live tail
// can emit without ever seeing EOF: exactly those the reorder window has
// released by the time the newest record has arrived. The rest stay
// pending until more input (or a real end of stream) arrives. want is in
// emit (time) order, so the emittable records are its prefix.
func liveEmittable(want []Parsed, window time.Duration) int {
	var maxT time.Time
	for _, p := range want {
		if p.Time().After(maxT) {
			maxT = p.Time()
		}
	}
	n := 0
	for _, p := range want {
		if maxT.Sub(p.Time()) >= window {
			n++
		}
	}
	return n
}

// TestFollowerLiveTail proves the live path: records appended after the
// scanner started — including a line split across two writes — are
// delivered as the reorder window releases them, and cancelling ends the
// stream with ErrTailStopped (never EOF, which would flush the window)
// with the unreleased records held in the checkpoint, not lost.
func TestFollowerLiveTail(t *testing.T) {
	path, in := tailFixture(t)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}

	want := collect(t, NewScannerConfig(strings.NewReader(in), cfg))
	live := liveEmittable(want, cfg.ReorderWindow)
	if live == 0 || live == len(want) {
		t.Fatalf("weak fixture: %d of %d records live-emittable", live, len(want))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := NewScannerConfig(NewFollower(ctx, f, TailConfig{Poll: time.Millisecond}), cfg)

	recCh := make(chan Parsed, len(want))
	done := make(chan error, 1)
	go func() {
		for sc.Scan() {
			recCh <- sc.Record()
		}
		done <- sc.Err()
	}()

	// Feed the log in three slices, the middle one ending mid-line.
	cut1 := strings.Index(in, "\n") + 1
	cut2 := cut1 + 40
	appendFile(t, path, in[:cut1])
	time.Sleep(5 * time.Millisecond)
	appendFile(t, path, in[cut1:cut2])
	time.Sleep(5 * time.Millisecond)
	appendFile(t, path, in[cut2:])

	var got []Parsed
	timeout := time.After(10 * time.Second)
	for len(got) < live {
		select {
		case p := <-recCh:
			got = append(got, p)
		case <-timeout:
			t.Fatalf("timed out with %d of %d live records", len(got), live)
		}
	}
	// Everything the window can release has arrived; all input lines have
	// necessarily been consumed (the newest record is what released the
	// last live one). Stop the tail.
	cancel()
	scanErr := <-done
	close(recCh)
	for p := range recCh {
		got = append(got, p)
	}

	if !errors.Is(scanErr, ErrTailStopped) {
		t.Fatalf("scanner error = %v, want ErrTailStopped", scanErr)
	}
	if !reflect.DeepEqual(got, want[:live]) {
		t.Fatalf("live records diverge from batch prefix: got %d, want %d", len(got), live)
	}
	held := sc.Checkpoint()
	if total := len(got) + len(held.pending) + len(held.ready); total != len(want) {
		t.Fatalf("emitted %d + held %d records, want %d total", len(got), total-len(got), len(want))
	}
	if held.Offset != int64(len(in)) {
		t.Fatalf("checkpoint offset = %d, want %d (whole file consumed)", held.Offset, len(in))
	}
}

// TestFollowerStopResumeDifferential is the crash-safety contract astrad
// is built on: stop a live tail mid-stream (reorder heap non-empty),
// checkpoint through the serialized form, restore a fresh scanner over the
// rest of the file, and the combined record stream and final stats must
// equal the uninterrupted batch scan exactly.
func TestFollowerStopResumeDifferential(t *testing.T) {
	path, in := tailFixture(t)
	appendFile(t, path, in)
	cfg := ScanConfig{DedupWindow: 3, ReorderWindow: time.Minute}

	ref := NewScannerConfig(strings.NewReader(in), cfg)
	want := collect(t, ref)
	wantStats := ref.Stats()
	live := liveEmittable(want, cfg.ReorderWindow)

	for stop := 1; stop <= live; stop++ {
		ctx, cancel := context.WithCancel(context.Background())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		first := NewScannerConfig(NewFollower(ctx, f, TailConfig{Poll: time.Millisecond}), cfg)
		var head []Parsed
		for i := 0; i < stop; i++ {
			if !first.Scan() {
				t.Fatalf("stop=%d: premature end: %v", stop, first.Err())
			}
			head = append(head, first.Record())
		}
		cancel()
		cp := first.Checkpoint()
		f.Close()

		// Serialize/deserialize as the daemon's state file would.
		data, err := cp.MarshalBinary()
		if err != nil {
			t.Fatalf("stop=%d: marshal: %v", stop, err)
		}
		var cp2 Checkpoint
		if err := cp2.UnmarshalBinary(data); err != nil {
			t.Fatalf("stop=%d: unmarshal: %v", stop, err)
		}

		second := NewScannerConfig(strings.NewReader(in[cp2.Offset:]), cfg)
		if err := second.Restore(cp2); err != nil {
			t.Fatalf("stop=%d: restore: %v", stop, err)
		}
		got := append(head, collect(t, second)...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stop=%d: resumed tail diverges from batch scan", stop)
		}
		if st := second.Stats(); st != wantStats {
			t.Fatalf("stop=%d: stats = %+v, want %+v", stop, st, wantStats)
		}
	}
}

// TestFollowerPartialLineHeldBack pins the line-boundary invariant: bytes
// after the last newline are never released, so the scanner's offset
// cannot land inside a line.
func TestFollowerPartialLineHeldBack(t *testing.T) {
	path, _ := tailFixture(t)
	line := FormatCE(sampleCE())
	appendFile(t, path, line+"\n"+line[:20]) // second line unterminated

	ctx, cancel := context.WithCancel(context.Background())
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := NewScannerConfig(NewFollower(ctx, f, TailConfig{Poll: time.Millisecond}), ScanConfig{})
	if !sc.Scan() {
		t.Fatalf("no record: %v", sc.Err())
	}
	cancel()
	if sc.Scan() {
		t.Fatal("scanner got a record from an unterminated line")
	}
	if got, want := sc.Offset(), int64(len(line)+1); got != want {
		t.Fatalf("offset = %d, want %d (line boundary)", got, want)
	}
	if st := sc.Stats(); st.Lines != 1 {
		t.Fatalf("Lines = %d, want 1 (partial line must not be counted)", st.Lines)
	}
}

// TestFollowerLineTooLong bounds the held-back buffer.
func TestFollowerLineTooLong(t *testing.T) {
	path, _ := tailFixture(t)
	appendFile(t, path, strings.Repeat("x", maxTailLine+4096))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := NewScannerConfig(NewFollower(context.Background(), f, TailConfig{Poll: time.Millisecond}), ScanConfig{})
	if sc.Scan() {
		t.Fatal("scan succeeded over an unterminated megabyte line")
	}
	if sc.Err() == nil {
		t.Fatal("no error from an unterminated megabyte line")
	}
}
