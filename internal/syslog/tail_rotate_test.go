package syslog

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/topology"
)

// rotCE formats the i-th distinct, valid CE line of a rotation fixture
// (strictly increasing timestamps, distinct addresses — no dedup, no
// reordering, so a zero ScanConfig emits them immediately and in order).
func rotCE(i int) string {
	r := sampleCE()
	r.Time = r.Time.Add(time.Duration(i) * time.Second)
	r.Addr = topology.PhysAddr(0x1000 + uint64(i)*0x40)
	return FormatCE(r) + "\n"
}

func rotLines(from, to int) string {
	var b strings.Builder
	for i := from; i < to; i++ {
		b.WriteString(rotCE(i))
	}
	return b.String()
}

// rotTail starts a rotation-aware follower+scanner over path and returns
// the follower, a record channel, and a stop function that cancels the
// tail and returns the scanner's terminal error after the goroutine has
// exited (making Follower.Stats safe to read).
func rotTail(t *testing.T, path string) (*Follower, <-chan Parsed, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	f, err := os.Open(path)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	fo := NewFollower(ctx, f, TailConfig{Poll: time.Millisecond, Path: path})
	sc := NewScannerConfig(fo, ScanConfig{})
	recCh := make(chan Parsed, 256)
	done := make(chan error, 1)
	go func() {
		for sc.Scan() {
			recCh <- sc.Record()
		}
		done <- sc.Err()
	}()
	stop := func() error {
		cancel()
		err := <-done
		f.Close()
		return err
	}
	return fo, recCh, stop
}

func recvRecords(t *testing.T, ch <-chan Parsed, n int, what string) []Parsed {
	t.Helper()
	var got []Parsed
	timeout := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case p := <-ch:
			got = append(got, p)
		case <-timeout:
			t.Fatalf("%s: timed out with %d of %d records", what, len(got), n)
		}
	}
	return got
}

// TestFollowerRotationReopen proves rename-and-recreate rotation: the
// follower notices the inode change at an idle poll, reopens the path
// and keeps delivering records from the successor file with no loss and
// no duplication.
func TestFollowerRotationReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "syslog")
	if err := os.WriteFile(path, []byte(rotLines(0, 5)), 0o644); err != nil {
		t.Fatal(err)
	}
	fo, recCh, stop := rotTail(t, path)
	got := recvRecords(t, recCh, 5, "pre-rotation")

	// Rotate: rename the live log away, create a fresh one.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(rotLines(5, 10)), 0o644); err != nil {
		t.Fatal(err)
	}
	got = append(got, recvRecords(t, recCh, 5, "post-rotation")...)

	if err := stop(); !errors.Is(err, ErrTailStopped) {
		t.Fatalf("scanner error = %v, want ErrTailStopped", err)
	}
	want := collect(t, NewScannerConfig(strings.NewReader(rotLines(0, 10)), ScanConfig{}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated tail diverges: got %d records, want %d", len(got), len(want))
	}
	st := fo.Stats()
	if st.Rotations != 1 || st.Truncations != 0 || st.DroppedPartials != 0 {
		t.Fatalf("stats = %+v, want exactly one rotation", st)
	}
}

// TestFollowerRotationDropsPartial pins the torn-line rule: a partial
// line stranded at the end of the rotated-away file is dropped and
// counted, never glued to the first bytes of the successor.
func TestFollowerRotationDropsPartial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "syslog")
	torn := rotCE(2)
	torn = torn[:len(torn)/2] // unterminated tail
	if err := os.WriteFile(path, []byte(rotLines(0, 2)+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	fo, recCh, stop := rotTail(t, path)
	got := recvRecords(t, recCh, 2, "pre-rotation")

	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(rotLines(3, 5)), 0o644); err != nil {
		t.Fatal(err)
	}
	got = append(got, recvRecords(t, recCh, 2, "post-rotation")...)
	if err := stop(); !errors.Is(err, ErrTailStopped) {
		t.Fatalf("scanner error = %v, want ErrTailStopped", err)
	}

	want := collect(t, NewScannerConfig(strings.NewReader(rotLines(0, 2)+rotLines(3, 5)), ScanConfig{}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records diverge after torn rotation: got %d, want %d", len(got), len(want))
	}
	st := fo.Stats()
	if st.Rotations != 1 || st.DroppedPartials != 1 || st.DroppedBytes != int64(len(torn)) {
		t.Fatalf("stats = %+v, want 1 rotation, 1 dropped partial of %d bytes", st, len(torn))
	}
}

// TestFollowerTruncateInPlace proves copytruncate tolerance: the same
// inode shrinking below the read position rewinds the follower to the
// top of the file.
func TestFollowerTruncateInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "syslog")
	if err := os.WriteFile(path, []byte(rotLines(0, 3)), 0o644); err != nil {
		t.Fatal(err)
	}
	fo, recCh, stop := rotTail(t, path)
	got := recvRecords(t, recCh, 3, "pre-truncate")

	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	// Give the idle poll a chance to observe the shrink before refilling,
	// as logrotate's copytruncate does (copy, truncate, writer continues).
	time.Sleep(20 * time.Millisecond)
	appendFile(t, path, rotLines(3, 6))
	got = append(got, recvRecords(t, recCh, 3, "post-truncate")...)
	if err := stop(); !errors.Is(err, ErrTailStopped) {
		t.Fatalf("scanner error = %v, want ErrTailStopped", err)
	}

	want := collect(t, NewScannerConfig(strings.NewReader(rotLines(0, 6)), ScanConfig{}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records diverge after truncation: got %d, want %d", len(got), len(want))
	}
	if st := fo.Stats(); st.Truncations != 1 || st.Rotations != 0 {
		t.Fatalf("stats = %+v, want exactly one truncation", st)
	}
}

// TestFollowerFileOffsetCheckpointContinuity proves checkpoint
// continuity across a rotation: the scanner's stream offset keeps
// growing monotonically, FileOffset translates it into current-file
// coordinates, and a fresh scanner restored at the translated position
// in the successor file completes the stream exactly.
func TestFollowerFileOffsetCheckpointContinuity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "syslog")
	part1, part2 := rotLines(0, 4), rotLines(4, 8)
	if err := os.WriteFile(path, []byte(part1), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fo := NewFollower(ctx, f, TailConfig{Poll: time.Millisecond, Path: path})
	sc := NewScannerConfig(fo, ScanConfig{})

	var got []Parsed
	for i := 0; i < 4; i++ {
		if !sc.Scan() {
			t.Fatalf("pre-rotation record %d: %v", i, sc.Err())
		}
		got = append(got, sc.Record())
	}
	// Pre-rotation the stream/file mapping is the identity.
	if off, ok := fo.FileOffset(sc.Offset()); !ok || off != sc.Offset() {
		t.Fatalf("FileOffset(%d) = %d,%v before rotation, want identity", sc.Offset(), off, ok)
	}

	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(part2), 0o644); err != nil {
		t.Fatal(err)
	}
	// Consume two of the four post-rotation records, then checkpoint.
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("post-rotation record %d: %v", i, sc.Err())
		}
		got = append(got, sc.Record())
	}
	cancel()
	for sc.Scan() {
		got = append(got, sc.Record())
	}
	if !errors.Is(sc.Err(), ErrTailStopped) {
		t.Fatalf("scanner error = %v, want ErrTailStopped", sc.Err())
	}
	cp := sc.Checkpoint()

	// The stream offset spans both files; the translated offset lands
	// inside the successor.
	if cp.Offset <= int64(len(part1)) {
		t.Fatalf("checkpoint offset %d not past file 1 (%d bytes)", cp.Offset, len(part1))
	}
	fileOff, ok := fo.FileOffset(cp.Offset)
	if !ok {
		t.Fatalf("FileOffset(%d) untranslatable", cp.Offset)
	}
	if want := cp.Offset - int64(len(part1)); fileOff != want {
		t.Fatalf("FileOffset(%d) = %d, want %d", cp.Offset, fileOff, want)
	}
	// An offset from before the rotation no longer names a file position.
	if _, ok := fo.FileOffset(int64(len(part1)) - 1); ok {
		t.Fatal("FileOffset accepted an offset from the rotated-away segment")
	}

	// Resume: a fresh scanner over the successor file at the translated
	// offset completes the stream.
	cp.Offset = fileOff
	nf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	if _, err := nf.Seek(fileOff, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	sc2 := NewScannerConfig(nf, ScanConfig{})
	if err := sc2.Restore(cp); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got = append(got, collect(t, sc2)...)

	want := collect(t, NewScannerConfig(strings.NewReader(part1+part2), ScanConfig{}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed-across-rotation stream diverges: got %d records, want %d", len(got), len(want))
	}
}
