package syslog_test

import (
	"fmt"

	"repro/internal/syslog"
)

// The ETL classifies every line: record kinds parse strictly, kernel
// chatter passes through as noise, and corrupt records are errors rather
// than silently wrong data.
func ExampleParseLine() {
	lines := []string{
		"2019-05-20T13:04:55Z astra-r03c11n2 kernel: EDAC tx2_mc: CE socket=1 slot=J rank=1 bank=5 row=0x2f3a col=0x04d bitpos=0x1e21 addr=0x012f3a0268 syndrome=0x38",
		"2019-05-20T13:05:00Z astra-r03c11n2 kernel: usb 1-1: new device",
		"2019-05-20T13:05:01Z astra-r03c11n2 kernel: EDAC tx2_mc: CE socket=0 slot=J rank=1 bank=5 row=0x2f3a col=0x04d bitpos=0x1e21 addr=0x012f3a0268 syndrome=0x38",
	}
	for _, line := range lines {
		p, err := syslog.ParseLine(line)
		switch {
		case err != nil:
			fmt.Println("corrupt record:", err)
		case p.Kind == syslog.KindCE:
			fmt.Printf("CE on %s slot %s\n", p.CE.Node, p.CE.Slot)
		default:
			fmt.Println("noise")
		}
	}
	// Output:
	// CE on astra-r03c11n2 slot J
	// noise
	// corrupt record: record garbled: syslog: socket 0 inconsistent with slot J
}
