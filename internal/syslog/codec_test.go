package syslog

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/topology"
)

// Randomized valid records for the codec property tests. Times are built
// with time.Unix so the struct == comparisons below also pin the codec's
// fast-path timestamp representation against the reference parser's.

func randTime(rng *rand.Rand) time.Time {
	// 2019 through 2021, second resolution, as on the wire.
	return time.Unix(1546300800+rng.Int63n(3*365*24*3600), 0).UTC()
}

func randCE(rng *rand.Rand) mce.CERecord {
	slot := topology.Slot(rng.Intn(topology.SlotsPerNode))
	return mce.CERecord{
		Time:     randTime(rng),
		Node:     topology.NodeID(rng.Intn(topology.Nodes)),
		Socket:   slot.Socket(),
		Slot:     slot,
		Rank:     rng.Intn(topology.RanksPerDIMM),
		Bank:     rng.Intn(topology.BanksPerRank),
		RowRaw:   rng.Intn(topology.RowsPerBank),
		Col:      rng.Intn(topology.ColsPerRow),
		BitPos:   rng.Intn(1 << 20),
		Addr:     topology.PhysAddr(rng.Int63n(topology.NodeMemBytes)),
		Syndrome: uint8(rng.Intn(256)),
	}
}

func randDUE(rng *rand.Rand) mce.DUERecord {
	cause := faultmodel.CauseUncorrectableECC
	if rng.Intn(2) == 1 {
		cause = faultmodel.CauseMachineCheck
	}
	return mce.DUERecord{
		Time:  randTime(rng),
		Node:  topology.NodeID(rng.Intn(topology.Nodes)),
		Addr:  topology.PhysAddr(rng.Int63n(topology.NodeMemBytes)),
		Cause: cause,
		Fatal: rng.Intn(2) == 1,
	}
}

func randHET(rng *rand.Rand) het.Record {
	r := het.Record{
		Time:     randTime(rng),
		Node:     topology.NodeID(rng.Intn(topology.Nodes)),
		Type:     het.EventType(rng.Intn(int(het.NumEventTypes))),
		Severity: het.Severity(rng.Intn(int(het.NumSeverities))),
	}
	if rng.Intn(4) != 0 { // addr is optional on the wire; leave some zero
		r.Addr = topology.PhysAddr(1 + rng.Int63n(topology.NodeMemBytes-1))
	}
	return r
}

// TestAppendMatchesSprintf pins the hand-rolled emitters to the fmt
// renderings they replaced, byte for byte.
func TestAppendMatchesSprintf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		ce := randCE(rng)
		want := fmt.Sprintf("%s %s %s socket=%d slot=%s rank=%d bank=%d row=0x%04x col=0x%03x bitpos=0x%04x addr=0x%010x syndrome=0x%02x",
			ce.Time.UTC().Format(timeLayout), ce.Node, ceMarker,
			ce.Socket, ce.Slot.Name(), ce.Rank, ce.Bank, ce.RowRaw, ce.Col,
			ce.BitPos, uint64(ce.Addr), ce.Syndrome)
		if got := string(AppendCE(nil, ce)); got != want {
			t.Fatalf("AppendCE:\n got %q\nwant %q", got, want)
		}

		due := randDUE(rng)
		fatal := 0
		if due.Fatal {
			fatal = 1
		}
		want = fmt.Sprintf("%s %s %s cause=%s addr=0x%010x fatal=%d",
			due.Time.UTC().Format(timeLayout), due.Node, dueMarker,
			due.Cause, uint64(due.Addr), fatal)
		if got := string(AppendDUE(nil, due)); got != want {
			t.Fatalf("AppendDUE:\n got %q\nwant %q", got, want)
		}

		h := randHET(rng)
		want = fmt.Sprintf("%s %s %s event=%s severity=%s",
			h.Time.UTC().Format(timeLayout), h.Node, hetMarker, h.Type, h.Severity)
		if h.Addr != 0 {
			want += fmt.Sprintf(" addr=0x%010x", uint64(h.Addr))
		}
		if got := string(AppendHET(nil, h)); got != want {
			t.Fatalf("AppendHET:\n got %q\nwant %q", got, want)
		}
	}
}

// TestCodecRoundTripRandom drives random valid records through
// Append -> ParseLineBytes and requires every field back unchanged
// (including the time.Time representation, via struct ==).
func TestCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var dec Decoder
	var buf []byte
	for i := 0; i < 1000; i++ {
		ce := randCE(rng)
		buf = AppendCE(buf[:0], ce)
		p, err := dec.ParseLineBytes(buf)
		if err != nil {
			t.Fatalf("ParseLineBytes(%q): %v", buf, err)
		}
		if p.Kind != KindCE || p.CE != ce {
			t.Fatalf("CE round trip:\n got %+v\nwant %+v", p.CE, ce)
		}

		due := randDUE(rng)
		buf = AppendDUE(buf[:0], due)
		if p, err = dec.ParseLineBytes(buf); err != nil || p.Kind != KindDUE || p.DUE != due {
			t.Fatalf("DUE round trip (%q): %+v, %v", buf, p.DUE, err)
		}

		h := randHET(rng)
		buf = AppendHET(buf[:0], h)
		if p, err = dec.ParseLineBytes(buf); err != nil || p.Kind != KindHET || p.HET != h {
			t.Fatalf("HET round trip (%q): %+v, %v", buf, p.HET, err)
		}
	}
}

// mutate corrupts a valid wire line the ways relays do: cuts, bit rot,
// stray tokens, duplicated fields.
func mutate(rng *rand.Rand, line string) string {
	switch rng.Intn(5) {
	case 0: // truncate
		if len(line) == 0 {
			return line
		}
		return line[:rng.Intn(len(line))]
	case 1: // flip one byte to a random printable
		if len(line) == 0 {
			return line
		}
		b := []byte(line)
		b[rng.Intn(len(b))] = byte(0x20 + rng.Intn(95))
		return string(b)
	case 2: // append a stray token
		return line + " zz" + string(byte('a'+rng.Intn(26)))
	case 3: // duplicate an existing field token
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return line
		}
		return line + " " + fields[3+rng.Intn(len(fields)-3)]
	default: // inject junk mid-line
		i := rng.Intn(len(line) + 1)
		return line[:i] + " ?= " + line[i:]
	}
}

// TestParseLineBytesMatchesParseLine is the differential property: on
// valid lines and on mutated ones, the byte parser must agree with the
// string parser on success, record values and error category.
func TestParseLineBytesMatchesParseLine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var dec Decoder
	for i := 0; i < 2000; i++ {
		var line string
		switch i % 3 {
		case 0:
			line = FormatCE(randCE(rng))
		case 1:
			line = FormatDUE(randDUE(rng))
		default:
			line = FormatHET(randHET(rng))
		}
		if i >= 300 { // first batch stays valid; the rest get corrupted
			line = mutate(rng, line)
		}
		assertParsersAgree(t, &dec, line)
	}
}

func assertParsersAgree(t *testing.T, dec *Decoder, line string) {
	t.Helper()
	sp, serr := ParseLine(line)
	bp, berr := dec.ParseLineBytes([]byte(line))
	if (serr == nil) != (berr == nil) {
		t.Fatalf("parser disagreement on %q:\n string err: %v\n bytes err:  %v", line, serr, berr)
	}
	if serr != nil {
		if categorize(serr) != categorize(berr) {
			t.Fatalf("error category disagreement on %q:\n string: %v\n bytes:  %v", line, serr, berr)
		}
		return
	}
	if sp != bp {
		t.Fatalf("record disagreement on %q:\n string: %+v\n bytes:  %+v", line, sp, bp)
	}
}

// TestScanFieldOrderInsensitive pins that the span scanner, like the map
// it replaced, accepts fields in any order.
func TestScanFieldOrderInsensitive(t *testing.T) {
	ce := sampleCE()
	line := FormatCE(ce)
	idx := strings.Index(line, " socket=")
	head, tail := line[:idx], strings.Fields(line[idx:])
	rng := rand.New(rand.NewSource(17))
	var dec Decoder
	for i := 0; i < 50; i++ {
		rng.Shuffle(len(tail), func(a, b int) { tail[a], tail[b] = tail[b], tail[a] })
		shuffled := head + " " + strings.Join(tail, " ")
		p, err := dec.ParseLineBytes([]byte(shuffled))
		if err != nil {
			t.Fatalf("ParseLineBytes(%q): %v", shuffled, err)
		}
		if p.CE != ce {
			t.Fatalf("shuffled parse mismatch:\n got %+v\nwant %+v", p.CE, ce)
		}
	}
}

// TestStrictDigitFields pins the needInt tightening: strconv's wider
// integer syntax must be rejected as garbling by both parsers.
func TestStrictDigitFields(t *testing.T) {
	base := FormatCE(sampleCE()) // ... rank=1 bank=5 ...
	for _, tc := range []struct{ old, bad string }{
		{"rank=1", "rank=+1"},
		{"rank=1", "rank=-0"},
		{"rank=1", "rank=1_0"},
		{"bank=5", "bank=0x5"}, // hex prefix aliasing into a decimal field
		{"bank=5", "bank= 5"},
		{"addr=0x", "addr=0X"}, // uppercase hex prefix was never emitted
		{"syndrome=0x4d", "syndrome=0x"},
	} {
		line := strings.Replace(base, tc.old, tc.bad, 1)
		if line == base {
			t.Fatalf("substitution %q did not apply", tc.bad)
		}
		if _, err := ParseLine(line); !isGarbled(err) {
			t.Errorf("ParseLine with %q: want garbled, got %v", tc.bad, err)
		}
		if _, err := ParseLineBytes([]byte(line)); !isGarbled(err) {
			t.Errorf("ParseLineBytes with %q: want garbled, got %v", tc.bad, err)
		}
	}
}

// TestParseLineBytesZeroAlloc locks in the tentpole: a warm decoder
// parses canonical record lines without a single heap allocation, and the
// append formatters render into a pre-sized buffer likewise.
func TestParseLineBytesZeroAlloc(t *testing.T) {
	ceLine := []byte(FormatCE(sampleCE()))
	dueLine := []byte(FormatDUE(sampleDUE()))
	hetLine := []byte(FormatHET(sampleHET()))
	noise := []byte("2019-05-20T13:04:55Z astra-r03c11n2 kernel: slurmd[1234]: job step completed")
	var dec Decoder
	for _, line := range [][]byte{ceLine, dueLine, hetLine} { // warm date + host caches
		if _, err := dec.ParseLineBytes(line); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, line := range [][]byte{ceLine, dueLine, hetLine, noise} {
			if _, err := dec.ParseLineBytes(line); err != nil {
				panic(err)
			}
		}
	}); n != 0 {
		t.Errorf("warm ParseLineBytes: %v allocs per 4 lines, want 0", n)
	}

	ce, due, h := sampleCE(), sampleDUE(), sampleHET()
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendCE(buf[:0], ce)
		buf = AppendDUE(buf[:0], due)
		buf = AppendHET(buf[:0], h)
	}); n != 0 {
		t.Errorf("Append emitters: %v allocs per 3 records, want 0", n)
	}
}

// The codec benchmarks compare the legacy string parser with the byte
// decoder on the same mixed record lines; the ratio is the per-line
// speedup quoted in the README.
func benchLines() [][]byte {
	rng := rand.New(rand.NewSource(23))
	var lines [][]byte
	for i := 0; i < 64; i++ {
		lines = append(lines,
			AppendCE(nil, randCE(rng)),
			AppendDUE(nil, randDUE(rng)),
			AppendHET(nil, randHET(rng)))
	}
	return lines
}

func BenchmarkParseLine(b *testing.B) {
	lines := make([]string, 0, 192)
	for _, l := range benchLines() {
		lines = append(lines, string(l))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLine(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLineBytes(b *testing.B) {
	lines := benchLines()
	var dec Decoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.ParseLineBytes(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendCE(b *testing.B) {
	ce := sampleCE()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendCE(buf[:0], ce)
	}
}

func isTruncated(err error) bool { return errors.Is(err, ErrTruncated) }
func isGarbled(err error) bool   { return err != nil && errors.Is(err, ErrGarbled) }

func categorize(err error) string {
	switch {
	case err == nil:
		return "nil"
	case isTruncated(err):
		return "truncated"
	default:
		return "garbled"
	}
}
