package syslog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Source is the streaming record source the online subsystem consumes: a
// Scan/Record iteration with error reporting and corruption accounting.
// *Scanner satisfies it over any reader; a Scanner over a Follower turns a
// growing log file into a live record feed.
type Source interface {
	Scan() bool
	Record() Parsed
	Err() error
	Stats() ScanStats
}

var _ Source = (*Scanner)(nil)

// ErrTailStopped is the terminal "error" a Follower reports once its
// context is cancelled and every complete line has been delivered. It is
// deliberately not io.EOF: a scanner that sees EOF flushes its reorder
// heap as if the log had ended, which would emit records early and change
// resequencing decisions after a resume. A read error leaves the heap
// intact, so a checkpoint taken after the stop resumes exactly.
var ErrTailStopped = errors.New("syslog: tail stopped")

// ErrTailLineTooLong reports an unterminated line exceeding the follower's
// buffer cap; handing out part of it would put the scanner's offset inside
// a line.
var ErrTailLineTooLong = errors.New("syslog: tail: unterminated line exceeds buffer cap")

// maxTailLine caps how many bytes a Follower buffers while waiting for a
// newline — matching the scanner's own maximum line length, since a longer
// line could not be parsed anyway.
const maxTailLine = 1 << 20

// DefaultTailPoll is the growth-poll interval used when TailConfig leaves
// Poll zero.
const DefaultTailPoll = 200 * time.Millisecond

// TailConfig tunes a Follower.
type TailConfig struct {
	// Poll is how long to wait before re-reading after the file stops
	// yielding data (0 means DefaultTailPoll).
	Poll time.Duration
	// Path enables rotation tolerance. When set and the reader is an
	// *os.File, the follower stats Path at each idle poll: an inode
	// change (classic rename-and-recreate rotation) drops the torn
	// partial line, reopens Path from offset 0 and keeps streaming; a
	// same-inode shrink (copytruncate) seeks back to 0. Stream offsets
	// stay monotonic across the switch — FileOffset translates them back
	// into current-file coordinates for checkpointing.
	Path string
}

// TailStats counts the rotation events a Follower has absorbed.
type TailStats struct {
	// Rotations counts inode changes (file renamed away and recreated).
	Rotations int64
	// Truncations counts same-inode shrinks (copytruncate rotation).
	Truncations int64
	// DroppedPartials counts torn partial lines discarded at a rotation
	// boundary, DroppedBytes their total size. A partial line in the old
	// file can never be completed by bytes of the new one; gluing them
	// would fabricate a record that exists in neither file.
	DroppedPartials int64
	DroppedBytes    int64
}

// Follower adapts a growing log file into an io.Reader that releases only
// whole lines: bytes after the last newline are held back until their
// terminator arrives, so every byte a downstream Scanner consumes — and
// therefore every offset a Checkpoint records — is a line boundary in the
// file. At end of data it polls for growth instead of reporting EOF;
// cancelling the context ends the stream with ErrTailStopped once the
// buffered complete lines are drained.
//
// Follower is not concurrency-safe; it is read from one scanner loop.
type Follower struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration

	buf   []byte // raw bytes read from r, not yet handed out
	pos   int    // next byte of buf to hand out
	ready int    // bytes buf[:ready] end on a newline
	chunk []byte // scratch read buffer

	// Rotation tolerance (file == nil when disabled). Stream offsets are
	// the coordinate system the downstream scanner checkpoints in: the
	// count of released bytes, seeded with the initial file position so
	// that before any rotation stream offset == file offset. Each
	// rotation starts a new segment: segStartStream is the stream offset
	// where the current file's bytes begin, segFileBase the file offset
	// they begin at (0 after a reopen, the resume offset at startup).
	path           string
	file           *os.File
	filePos        int64 // next read offset in the current file
	released       int64 // total stream bytes handed out
	segStartStream int64
	segFileBase    int64
	stats          TailStats
}

// NewFollower wraps r (typically an *os.File positioned at the resume
// offset) as a line-complete tail reader. The context governs the
// follower's lifetime; a nil context follows forever. With cfg.Path set
// and r an *os.File, the follower survives log rotation (see TailConfig).
func NewFollower(ctx context.Context, r io.Reader, cfg TailConfig) *Follower {
	if ctx == nil {
		ctx = context.Background()
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = DefaultTailPoll
	}
	f := &Follower{ctx: ctx, r: r, poll: poll, chunk: make([]byte, 64*1024)}
	if cfg.Path != "" {
		if osf, ok := r.(*os.File); ok {
			if pos, err := osf.Seek(0, io.SeekCurrent); err == nil {
				f.path = cfg.Path
				f.file = osf
				f.filePos = pos
				f.released = pos
				f.segStartStream = pos
				f.segFileBase = pos
			}
		}
	}
	return f
}

// Stats reports the rotation events absorbed so far. Like Read, it must
// be called from the goroutine driving the follower.
func (f *Follower) Stats() TailStats { return f.stats }

// FileOffset translates a stream offset (the coordinate a scanner
// Checkpoint records) into an offset in the currently-open file. ok is
// false when the offset predates the current file — it points into a
// rotated-away segment and must not be used as a resume position.
// Without rotation tolerance the mapping is the identity.
func (f *Follower) FileOffset(stream int64) (int64, bool) {
	if f.file == nil {
		return stream, true
	}
	if stream < f.segStartStream {
		return 0, false
	}
	return f.segFileBase + (stream - f.segStartStream), true
}

// dropPartial discards the held torn line at a rotation boundary.
func (f *Follower) dropPartial() {
	if n := len(f.buf); n > 0 {
		f.stats.DroppedPartials++
		f.stats.DroppedBytes += int64(n)
		f.buf = f.buf[:0]
	}
	f.pos, f.ready = 0, 0
}

// checkRotate inspects the path at an idle poll and switches segments on
// rotation or truncation. It reports whether reading should resume
// immediately (new bytes may be waiting at the new position).
func (f *Follower) checkRotate() bool {
	if f.file == nil {
		return false
	}
	cur, err := f.file.Stat()
	if err != nil {
		return false
	}
	disk, err := os.Stat(f.path)
	if err != nil {
		// Mid-rotation window (renamed away, successor not yet created)
		// or deleted outright: keep polling the old handle.
		return false
	}
	if os.SameFile(cur, disk) {
		if disk.Size() < f.filePos {
			// Truncated in place (copytruncate): restart from the top.
			f.dropPartial()
			if _, err := f.file.Seek(0, io.SeekStart); err != nil {
				return false
			}
			f.segStartStream = f.released
			f.segFileBase = 0
			f.filePos = 0
			f.stats.Truncations++
			return true
		}
		return false
	}
	// Inode changed: the log was rotated and recreated. The old handle
	// was already drained to EOF (we only get here at an idle poll), so
	// switch to the successor from its beginning.
	next, err := os.Open(f.path)
	if err != nil {
		return false
	}
	f.dropPartial()
	f.file.Close()
	f.file = next
	f.r = next
	f.segStartStream = f.released
	f.segFileBase = 0
	f.filePos = 0
	f.stats.Rotations++
	return true
}

// Read implements io.Reader over the complete-line stream.
func (f *Follower) Read(p []byte) (int, error) {
	for {
		if f.pos < f.ready {
			n := copy(p, f.buf[f.pos:f.ready])
			f.pos += n
			f.released += int64(n)
			return n, nil
		}
		// All released bytes are consumed; compact the held partial line
		// to the front before reading more.
		if f.pos > 0 {
			f.buf = f.buf[:copy(f.buf, f.buf[f.pos:])]
			f.pos, f.ready = 0, 0
		}
		n, err := f.r.Read(f.chunk)
		if n > 0 {
			f.filePos += int64(n)
			f.buf = append(f.buf, f.chunk[:n]...)
			if i := bytes.LastIndexByte(f.buf, '\n'); i >= 0 {
				f.ready = i + 1
			}
			if f.ready == 0 && len(f.buf) > maxTailLine {
				return 0, fmt.Errorf("%w (%d bytes)", ErrTailLineTooLong, len(f.buf))
			}
			if f.ready > 0 || err == nil {
				// Either a line is releasable or the reader is still
				// producing mid-line bytes; keep going without polling.
				continue
			}
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		// No complete line available: stop if asked, check for rotation,
		// else wait for growth.
		select {
		case <-f.ctx.Done():
			return 0, ErrTailStopped
		default:
		}
		if f.checkRotate() {
			continue
		}
		select {
		case <-f.ctx.Done():
			return 0, ErrTailStopped
		case <-time.After(f.poll):
		}
	}
}
