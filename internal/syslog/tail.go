package syslog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"
)

// Source is the streaming record source the online subsystem consumes: a
// Scan/Record iteration with error reporting and corruption accounting.
// *Scanner satisfies it over any reader; a Scanner over a Follower turns a
// growing log file into a live record feed.
type Source interface {
	Scan() bool
	Record() Parsed
	Err() error
	Stats() ScanStats
}

var _ Source = (*Scanner)(nil)

// ErrTailStopped is the terminal "error" a Follower reports once its
// context is cancelled and every complete line has been delivered. It is
// deliberately not io.EOF: a scanner that sees EOF flushes its reorder
// heap as if the log had ended, which would emit records early and change
// resequencing decisions after a resume. A read error leaves the heap
// intact, so a checkpoint taken after the stop resumes exactly.
var ErrTailStopped = errors.New("syslog: tail stopped")

// ErrTailLineTooLong reports an unterminated line exceeding the follower's
// buffer cap; handing out part of it would put the scanner's offset inside
// a line.
var ErrTailLineTooLong = errors.New("syslog: tail: unterminated line exceeds buffer cap")

// maxTailLine caps how many bytes a Follower buffers while waiting for a
// newline — matching the scanner's own maximum line length, since a longer
// line could not be parsed anyway.
const maxTailLine = 1 << 20

// DefaultTailPoll is the growth-poll interval used when TailConfig leaves
// Poll zero.
const DefaultTailPoll = 200 * time.Millisecond

// TailConfig tunes a Follower.
type TailConfig struct {
	// Poll is how long to wait before re-reading after the file stops
	// yielding data (0 means DefaultTailPoll).
	Poll time.Duration
}

// Follower adapts a growing log file into an io.Reader that releases only
// whole lines: bytes after the last newline are held back until their
// terminator arrives, so every byte a downstream Scanner consumes — and
// therefore every offset a Checkpoint records — is a line boundary in the
// file. At end of data it polls for growth instead of reporting EOF;
// cancelling the context ends the stream with ErrTailStopped once the
// buffered complete lines are drained.
//
// Follower is not concurrency-safe; it is read from one scanner loop.
type Follower struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration

	buf   []byte // raw bytes read from r, not yet handed out
	pos   int    // next byte of buf to hand out
	ready int    // bytes buf[:ready] end on a newline
	chunk []byte // scratch read buffer
}

// NewFollower wraps r (typically an *os.File positioned at the resume
// offset) as a line-complete tail reader. The context governs the
// follower's lifetime; a nil context follows forever.
func NewFollower(ctx context.Context, r io.Reader, cfg TailConfig) *Follower {
	if ctx == nil {
		ctx = context.Background()
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = DefaultTailPoll
	}
	return &Follower{ctx: ctx, r: r, poll: poll, chunk: make([]byte, 64*1024)}
}

// Read implements io.Reader over the complete-line stream.
func (f *Follower) Read(p []byte) (int, error) {
	for {
		if f.pos < f.ready {
			n := copy(p, f.buf[f.pos:f.ready])
			f.pos += n
			return n, nil
		}
		// All released bytes are consumed; compact the held partial line
		// to the front before reading more.
		if f.pos > 0 {
			f.buf = f.buf[:copy(f.buf, f.buf[f.pos:])]
			f.pos, f.ready = 0, 0
		}
		n, err := f.r.Read(f.chunk)
		if n > 0 {
			f.buf = append(f.buf, f.chunk[:n]...)
			if i := bytes.LastIndexByte(f.buf, '\n'); i >= 0 {
				f.ready = i + 1
			}
			if f.ready == 0 && len(f.buf) > maxTailLine {
				return 0, fmt.Errorf("%w (%d bytes)", ErrTailLineTooLong, len(f.buf))
			}
			if f.ready > 0 || err == nil {
				// Either a line is releasable or the reader is still
				// producing mid-line bytes; keep going without polling.
				continue
			}
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		// No complete line available: stop if asked, else wait for growth.
		select {
		case <-f.ctx.Done():
			return 0, ErrTailStopped
		default:
		}
		select {
		case <-f.ctx.Done():
			return 0, ErrTailStopped
		case <-time.After(f.poll):
		}
	}
}
