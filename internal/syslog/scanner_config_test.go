package syslog

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// shiftCE returns a sample CE line with its timestamp shifted by d.
func shiftCE(t *testing.T, d time.Duration) string {
	t.Helper()
	r := sampleCE()
	r.Time = r.Time.Add(d)
	return FormatCE(r)
}

func TestScannerDedupWindow(t *testing.T) {
	line := FormatCE(sampleCE())
	in := strings.Repeat(line+"\n", 3) + FormatDUE(sampleDUE()) + "\n" + line + "\n"

	sc := NewScannerConfig(strings.NewReader(in), ScanConfig{DedupWindow: 4})
	n := 0
	for sc.Scan() {
		n++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	st := sc.Stats()
	// First CE + DUE survive; the two adjacent repeats and the one after the
	// DUE are all inside the window.
	if n != 2 || st.Duplicated != 3 {
		t.Errorf("records = %d, Duplicated = %d, want 2 and 3 (stats %+v)", n, st.Duplicated, st)
	}
	if st.CEs != 1 || st.DUEs != 1 {
		t.Errorf("kind counts after dedup: %+v", st)
	}
}

func TestScannerDedupWindowBounded(t *testing.T) {
	// With window 1, a repeat separated by a different record is NOT
	// suppressed — real repeated errors at a distance must survive.
	line := FormatCE(sampleCE())
	in := line + "\n" + FormatDUE(sampleDUE()) + "\n" + line + "\n"
	sc := NewScannerConfig(strings.NewReader(in), ScanConfig{DedupWindow: 1})
	n := 0
	for sc.Scan() {
		n++
	}
	if st := sc.Stats(); n != 3 || st.Duplicated != 0 {
		t.Errorf("records = %d, Duplicated = %d, want 3 and 0", n, st.Duplicated)
	}
}

func TestScannerReorderWindowRecovers(t *testing.T) {
	// Lines at t+0s, t+30s arrive swapped; a 2m window resequences them.
	in := shiftCE(t, 30*time.Second) + "\n" + shiftCE(t, 0) + "\n" + shiftCE(t, 60*time.Second) + "\n"
	sc := NewScannerConfig(strings.NewReader(in), ScanConfig{ReorderWindow: 2 * time.Minute})
	var times []time.Time
	for sc.Scan() {
		times = append(times, sc.Record().Time())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(times) != 3 {
		t.Fatalf("records = %d, want 3", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i].Before(times[i-1]) {
			t.Fatalf("output not time-ordered: %v after %v", times[i], times[i-1])
		}
	}
	st := sc.Stats()
	if st.Reordered != 1 || st.DroppedOutOfOrder != 0 {
		t.Errorf("Reordered = %d, DroppedOutOfOrder = %d, want 1 and 0", st.Reordered, st.DroppedOutOfOrder)
	}
}

func TestScannerReorderWindowDropsTooLate(t *testing.T) {
	// A record 10m older than the stream head arrives after the window has
	// advanced past it: counted as dropped, not emitted out of order.
	in := shiftCE(t, 0) + "\n" + shiftCE(t, 5*time.Minute) + "\n" + shiftCE(t, -10*time.Minute) + "\n"
	sc := NewScannerConfig(strings.NewReader(in), ScanConfig{ReorderWindow: time.Minute})
	n := 0
	var prev time.Time
	for sc.Scan() {
		if cur := sc.Record().Time(); n > 0 && cur.Before(prev) {
			t.Fatalf("output not time-ordered")
		} else {
			prev = cur
		}
		n++
	}
	st := sc.Stats()
	if n != 2 || st.DroppedOutOfOrder != 1 {
		t.Errorf("records = %d, DroppedOutOfOrder = %d, want 2 and 1 (stats %+v)", n, st.DroppedOutOfOrder, st)
	}
}

func TestScannerStrictMode(t *testing.T) {
	good := FormatCE(sampleCE())
	bad := strings.Replace(good, "slot=J", "slot=Q", 1)
	in := good + "\n" + bad + "\n" + FormatDUE(sampleDUE()) + "\n"

	sc := NewScannerConfig(strings.NewReader(in), ScanConfig{Strict: true})
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Errorf("strict scan yielded %d records before stopping, want 1", n)
	}
	if err := sc.Err(); err == nil {
		t.Fatal("strict scan swallowed a malformed line")
	} else if !errors.Is(err, ErrGarbled) {
		t.Errorf("strict error not classified: %v", err)
	}
}

func TestScannerCorruptionCategories(t *testing.T) {
	good := FormatCE(sampleCE())
	truncated := good[:len(good)-15] // cut mid-field
	garbled := strings.Replace(good, "rank=1", "rank=widget", 1)
	in := good + "\n" + truncated + "\n" + garbled + "\n"

	sc := NewScanner(strings.NewReader(in))
	for sc.Scan() {
	}
	st := sc.Stats()
	if st.Malformed != 2 || st.Truncated != 1 || st.Garbage != 1 {
		t.Errorf("stats = %+v, want Malformed 2 = Truncated 1 + Garbage 1", st)
	}
}

func TestScannerZeroConfigMatchesDefault(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(FormatCE(sampleCE()) + "\n")
	sb.WriteString(FormatCE(sampleCE()) + "\n")   // legit adjacent duplicate: must pass
	sb.WriteString(shiftCE(t, -time.Hour) + "\n") // out of order: must pass

	sc := NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		n++
	}
	if st := sc.Stats(); n != 3 || st.Duplicated != 0 || st.Reordered != 0 || st.DroppedOutOfOrder != 0 {
		t.Errorf("zero-config scanner altered the stream: records = %d, stats = %+v", n, st)
	}
}
