package syslog

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// FuzzParseLine asserts the parser's contract on arbitrary bytes: it never
// panics, and every error it returns is classified as exactly one of the
// two corruption categories. The seed corpus covers the realistic dirty
// inputs the corrupt package produces: truncations at every interesting
// boundary, garbled fields, binary noise, and torn/merged lines.
func FuzzParseLine(f *testing.F) {
	ce := FormatCE(sampleCE())
	due := FormatDUE(sampleDUE())
	hetLine := FormatHET(sampleHET())

	seeds := []string{
		"", " ", "\x00\x01\x02",
		ce, due, hetLine,
		// Truncations: mid-header, mid-marker, mid-field, trailing cut.
		ce[:10], ce[:25], ce[:len(ce)/2], ce[:len(ce)-1], ce[:len(ce)-7],
		due[:len(due)/2], hetLine[:len(hetLine)-4],
		// Garbling: bad values, duplicate fields, swapped bytes.
		strings.Replace(ce, "rank=1", "rank=zz", 1),
		strings.Replace(ce, "socket=1", "socket=9", 1),
		ce + " rank=1",
		strings.Replace(due, "fatal=1", "fatal=yes", 1),
		strings.Replace(hetLine, "severity=", "sev eritY=", 1),
		// Torn and merged lines (rotation splits, interleaved writes).
		ce[:30] + due[30:],
		ce + due,
		"\xff\xfe" + ce,
		"2019-05-20T13:04:55Z kernel: EDAC tx2_mc: CE", // marker, no host
		"9999-99-99T99:99:99Z astra-r00c00n0 kernel: EDAC tx2_mc: CE socket=0",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, line string) {
		p, err := ParseLine(line) // must not panic
		// Differential contract: the byte decoder must agree with the
		// string parser on every input — success, record values, and
		// error category. A fresh Decoder exercises the cold caches; the
		// warm path is covered by the repeated corpus entries.
		var dec Decoder
		bp, berr := dec.ParseLineBytes([]byte(line)) // must not panic either
		if (err == nil) != (berr == nil) {
			t.Errorf("byte/string parser disagreement:\n string err: %v\n bytes err:  %v\n line: %q", err, berr, line)
		} else if err != nil {
			st := errors.Is(err, ErrTruncated)
			bt := errors.Is(berr, ErrTruncated)
			if st != bt {
				t.Errorf("error category disagreement:\n string: %v\n bytes:  %v\n line: %q", err, berr, line)
			}
		} else if p != bp {
			t.Errorf("record disagreement:\n string: %+v\n bytes:  %+v\n line: %q", p, bp, line)
		}
		if berr != nil && !errors.Is(berr, ErrTruncated) && !errors.Is(berr, ErrGarbled) {
			t.Errorf("unclassified byte parse error: %v", berr)
		}
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrGarbled) {
				t.Errorf("unclassified parse error: %v", err)
			}
			return
		}
		if p.Kind == KindOther {
			return
		}
		// A successfully parsed record must format back to a valid line
		// that parses to the same record (canonicalization is allowed to
		// change the bytes, not the meaning). Skip inputs that aren't
		// valid UTF-8 — Format always emits UTF-8.
		if !utf8.ValidString(line) {
			return
		}
		var round string
		switch p.Kind {
		case KindCE:
			round = FormatCE(p.CE)
		case KindDUE:
			round = FormatDUE(p.DUE)
		case KindHET:
			round = FormatHET(p.HET)
		}
		q, err := ParseLine(round)
		if err != nil {
			t.Errorf("re-parse of formatted record failed: %v\n in: %q\nout: %q", err, line, round)
		} else if q.Kind != p.Kind {
			t.Errorf("kind changed on round trip: %v -> %v", p.Kind, q.Kind)
		}
	})
}

// FuzzBlockScan lifts the differential contract from lines to whole
// scans: over arbitrary multi-line input — including blank lines, CRLF,
// missing final newlines and binary noise — the BlockScanner must produce
// the serial Scanner's exact records, stats, error and offset at every
// worker count, with a block size small enough that lines routinely
// straddle block boundaries.
func FuzzBlockScan(f *testing.F) {
	ce := FormatCE(sampleCE())
	due := FormatDUE(sampleDUE())
	hetLine := FormatHET(sampleHET())
	f.Add(ce+"\n"+due+"\n"+hetLine+"\n", 2, 32)
	f.Add(ce+"\r\n"+ce+"\r\n", 4, 16)
	f.Add(strings.Repeat(ce+"\n", 20)+ce[:30], 8, 64)
	f.Add(ce[:len(ce)/2]+"\n"+ce[len(ce)/2:]+"\n\n\x00\xff\n", 3, 7)
	f.Add("", 2, 1)

	f.Fuzz(func(t *testing.T, in string, workers, bsize int) {
		workers = 2 + abs(workers)%7 // 2..8: always the pipeline path
		bsize = 1 + abs(bsize)%512
		for _, cfg := range []ScanConfig{
			{},
			{Strict: true},
			{DedupWindow: 3, ReorderWindow: 15 * time.Second},
		} {
			want := drainScanner(NewScannerConfig(strings.NewReader(in), cfg))
			got := drainScanner(NewBlockScanner(bytes.NewReader([]byte(in)), BlockScanConfig{
				ScanConfig: cfg, Workers: workers, BlockSize: bsize,
			}))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("block scan diverged (workers=%d bsize=%d cfg=%+v)\n got: %+v\nwant: %+v",
					workers, bsize, cfg, got, want)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
