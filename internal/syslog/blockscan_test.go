package syslog

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/corrupt"
	"repro/internal/topology"
)

// blockWorkerSweep is the worker-count matrix every differential test
// runs: 1 exercises the serial-delegation path, the rest the pipeline.
var blockWorkerSweep = []int{1, 2, 4, 8}

// scanResult captures everything observable about one complete scan, so
// differential tests compare implementations with a single DeepEqual.
type scanResult struct {
	Records []Parsed
	Stats   ScanStats
	Err     string
	Offset  int64
}

type recordScanner interface {
	Scan() bool
	Record() Parsed
	Stats() ScanStats
	Err() error
	Offset() int64
}

func drainScanner(sc recordScanner) scanResult {
	var res scanResult
	for sc.Scan() {
		res.Records = append(res.Records, sc.Record())
	}
	res.Stats = sc.Stats()
	if err := sc.Err(); err != nil {
		res.Err = err.Error()
	}
	res.Offset = sc.Offset()
	return res
}

// synthLog renders a deterministic pseudo-random log with every line
// category the tolerance machinery reacts to: CE/DUE/HET records with
// bounded timestamp skew (reorder heap), exact repeats at varying
// distances (dedup ring), kernel noise, and blank lines.
func synthLog(lines int) string {
	var b strings.Builder
	base := sampleCE().Time
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	history := make([]string, 0, lines)
	for i := 0; i < lines; i++ {
		var line string
		switch next(10) {
		case 0:
			line = "kernel: ordinary chatter " + fmt.Sprint(i)
		case 1:
			if len(history) > 0 {
				// Replay a recent line verbatim: relay duplication.
				line = history[len(history)-1-int(next(uint64(min(len(history), 12))))]
				break
			}
			fallthrough
		case 2:
			r := sampleDUE()
			r.Time = base.Add(time.Duration(i)*time.Second - time.Duration(next(40))*time.Second)
			line = FormatDUE(r)
		case 3:
			r := sampleHET()
			r.Time = base.Add(time.Duration(i) * time.Second)
			line = FormatHET(r)
		case 4:
			line = ""
		default:
			r := sampleCE()
			// Skew some arrivals backwards so the reorder window both
			// recovers and drops records.
			r.Time = base.Add(time.Duration(i)*time.Second - time.Duration(next(50))*time.Second)
			r.Addr = topology.PhysAddr(0x1000 + next(64)*0x40)
			r.Col = int(next(32))
			line = FormatCE(r)
		}
		history = append(history, line)
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// corruptLog passes the clean log through internal/corrupt at rate p.
func corruptLog(t *testing.T, clean string, seed uint64, p float64) string {
	t.Helper()
	var buf bytes.Buffer
	c := corrupt.New(corrupt.Uniform(seed, p))
	if _, err := c.Process(strings.NewReader(clean), &buf); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	return buf.String()
}

// TestBlockScannerDifferential is the core bit-identity contract: over
// clean and dirty (1% and 100% corruption) logs, under every tolerance
// configuration, the BlockScanner's records, stats, error and offset
// equal the serial Scanner's at every worker count and block size.
func TestBlockScannerDifferential(t *testing.T) {
	clean := synthLog(4000)
	inputs := map[string]string{
		"clean":     clean,
		"dirty1pc":  corruptLog(t, clean, 7, 0.01),
		"dirty100":  corruptLog(t, clean, 11, 1.00),
		"crlf":      strings.ReplaceAll(synthLog(300), "\n", "\r\n"),
		"nofinalnl": strings.TrimSuffix(synthLog(301), "\n"),
		"empty":     "",
	}
	configs := map[string]ScanConfig{
		"zero":     {},
		"tolerant": {DedupWindow: 8, ReorderWindow: 30 * time.Second},
		"dedup":    {DedupWindow: 3},
		"reorder":  {ReorderWindow: 45 * time.Second},
	}
	for inName, in := range inputs {
		for cfgName, cfg := range configs {
			want := drainScanner(NewScannerConfig(strings.NewReader(in), cfg))
			for _, workers := range blockWorkerSweep {
				for _, bsize := range []int{64, 4096, DefaultBlockSize} {
					got := drainScanner(NewBlockScanner(strings.NewReader(in), BlockScanConfig{
						ScanConfig: cfg, Workers: workers, BlockSize: bsize,
					}))
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s workers=%d bsize=%d: block scan diverged\n got: stats=%+v err=%q off=%d nrec=%d\nwant: stats=%+v err=%q off=%d nrec=%d",
							inName, cfgName, workers, bsize,
							got.Stats, got.Err, got.Offset, len(got.Records),
							want.Stats, want.Err, want.Offset, len(want.Records))
					}
				}
			}
		}
	}
}

// TestBlockScannerStrictDifferential checks the strict path: the scan
// must stop at the identical line with the identical error and stats.
func TestBlockScannerStrictDifferential(t *testing.T) {
	in := corruptLog(t, synthLog(2000), 3, 0.02)
	cfg := ScanConfig{Strict: true, DedupWindow: 4, ReorderWindow: 20 * time.Second}
	want := drainScanner(NewScannerConfig(strings.NewReader(in), cfg))
	if want.Err == "" {
		t.Fatal("fixture produced no strict error; raise the corruption rate")
	}
	for _, workers := range blockWorkerSweep {
		got := drainScanner(NewBlockScanner(strings.NewReader(in), BlockScanConfig{
			ScanConfig: cfg, Workers: workers, BlockSize: 256,
		}))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: strict scan diverged: err=%q want %q, stats=%+v want %+v",
				workers, got.Err, want.Err, got.Stats, want.Stats)
		}
	}
}

// TestBlockScannerBoundaries pins the newline-resolution edge cases to
// the serial scanner's behaviour: CRLF endings, a final line without a
// newline, a line longer than the block size, and a record line split by
// corruption so its halves straddle two blocks.
func TestBlockScannerBoundaries(t *testing.T) {
	ce := FormatCE(sampleCE())
	long := strings.Repeat("x", 3000) // longer than the 256-byte blocks below
	torn := ce[:len(ce)/2] + "\n" + ce[len(ce)/2:]
	cases := map[string]string{
		"crlf":            ce + "\r\n" + FormatDUE(sampleDUE()) + "\r\n",
		"crlf-bare-cr":    ce + "\r\r\n" + ce + "\n",
		"no-final-nl":     ce + "\n" + FormatHET(sampleHET()),
		"long-line":       ce + "\n" + long + "\n" + ce + "\n",
		"straddling-torn": strings.Repeat(ce+"\n", 5) + torn + "\n" + strings.Repeat(ce+"\n", 5),
		"only-newlines":   "\n\n\n",
	}
	for name, in := range cases {
		for _, cfg := range []ScanConfig{{}, {DedupWindow: 2, ReorderWindow: 10 * time.Second}} {
			want := drainScanner(NewScannerConfig(strings.NewReader(in), cfg))
			for _, workers := range blockWorkerSweep {
				// A 256-byte block makes every case span multiple blocks,
				// so the torn halves and CRLF pairs cross boundaries.
				got := drainScanner(NewBlockScanner(strings.NewReader(in), BlockScanConfig{
					ScanConfig: cfg, Workers: workers, BlockSize: 256,
				}))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s workers=%d: diverged\n got %+v\nwant %+v", name, workers, got, want)
				}
			}
		}
	}
}

// TestBlockScannerTooLong proves a line exceeding the 1 MiB limit fails
// the block scan at the same point, with the same error, as the serial
// scanner's capped bufio buffer.
func TestBlockScannerTooLong(t *testing.T) {
	ce := FormatCE(sampleCE())
	in := ce + "\n" + strings.Repeat("y", maxLineBytes+5) + "\n" + ce + "\n"
	want := drainScanner(NewScannerConfig(strings.NewReader(in), ScanConfig{}))
	if !strings.Contains(want.Err, tooLongText) {
		t.Fatalf("serial fixture error = %q, want token-too-long", want.Err)
	}
	for _, workers := range blockWorkerSweep {
		for _, bsize := range []int{512, DefaultBlockSize, 8 << 20} {
			got := drainScanner(NewBlockScanner(strings.NewReader(in), BlockScanConfig{
				Workers: workers, BlockSize: bsize,
			}))
			// Offset aside: the serial scanner has not consumed the long
			// line either, so offsets agree by both stopping after line 1.
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d bsize=%d: diverged\n got %+v\nwant %+v", workers, bsize, got, want)
			}
		}
	}
}

const tooLongText = "token too long"

// failAfterReader yields its payload then a non-EOF read error.
type failAfterReader struct {
	r   io.Reader
	err error
}

func (f *failAfterReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if err == io.EOF {
		return n, f.err
	}
	return n, err
}

// TestBlockScannerReadError checks a mid-stream I/O failure surfaces
// identically: all buffered lines first (bufio tokenizes what it holds
// before reporting the error), then the wrapped error.
func TestBlockScannerReadError(t *testing.T) {
	in := synthLog(500)
	boom := errors.New("boom")
	want := drainScanner(NewScannerConfig(&failAfterReader{r: strings.NewReader(in), err: boom}, ScanConfig{}))
	if !strings.Contains(want.Err, "boom") {
		t.Fatalf("serial fixture error = %q, want boom", want.Err)
	}
	for _, workers := range blockWorkerSweep {
		got := drainScanner(NewBlockScanner(&failAfterReader{r: strings.NewReader(in), err: boom}, BlockScanConfig{
			Workers: workers, BlockSize: 1024,
		}))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: diverged\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestBlockScannerCheckpointResume proves checkpoint interchange: a
// BlockScanner checkpoint taken after every possible record count can be
// restored into either a serial Scanner or another BlockScanner over the
// remaining bytes, and the tail + final stats match the uninterrupted
// serial scan exactly.
func TestBlockScannerCheckpointResume(t *testing.T) {
	in := synthLog(600)
	cfg := ScanConfig{DedupWindow: 4, ReorderWindow: 25 * time.Second}
	full := drainScanner(NewScannerConfig(strings.NewReader(in), cfg))

	for _, workers := range blockWorkerSweep {
		for stop := 0; stop <= len(full.Records); stop += 7 {
			sc := NewBlockScanner(strings.NewReader(in), BlockScanConfig{
				ScanConfig: cfg, Workers: workers, BlockSize: 512,
			})
			for i := 0; i < stop; i++ {
				if !sc.Scan() {
					t.Fatalf("workers=%d: scan ended at %d, want %d", workers, i, stop)
				}
				if sc.Record() != full.Records[i] {
					t.Fatalf("workers=%d record %d: %+v != %+v", workers, i, sc.Record(), full.Records[i])
				}
			}
			cp := sc.Checkpoint()
			sc.Close()

			// Round-trip through the serialized form so the block path is
			// covered end to end, like a daemon restart.
			data, err := cp.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var cp2 Checkpoint
			if err := cp2.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}

			rest := in[cp2.Offset:]
			for _, resume := range []struct {
				name string
				mk   func() recordScanner
			}{
				{"serial", func() recordScanner {
					r := NewScannerConfig(strings.NewReader(rest), cfg)
					if err := r.Restore(cp2); err != nil {
						t.Fatal(err)
					}
					return r
				}},
				{"block", func() recordScanner {
					r := NewBlockScanner(strings.NewReader(rest), BlockScanConfig{
						ScanConfig: cfg, Workers: workers, BlockSize: 512,
					})
					if err := r.Restore(cp2); err != nil {
						t.Fatal(err)
					}
					return r
				}},
			} {
				res := drainScanner(resume.mk())
				if res.Err != "" {
					t.Fatalf("workers=%d stop=%d %s: resume error %q", workers, stop, resume.name, res.Err)
				}
				wantTail := full.Records[stop:]
				if len(wantTail) == 0 {
					wantTail = nil
				}
				if !reflect.DeepEqual(res.Records, wantTail) {
					t.Errorf("workers=%d stop=%d %s: tail diverged (%d records, want %d)",
						workers, stop, resume.name, len(res.Records), len(wantTail))
				}
				if res.Stats != full.Stats {
					t.Errorf("workers=%d stop=%d %s: final stats %+v, want %+v",
						workers, stop, resume.name, res.Stats, full.Stats)
				}
				if res.Offset != full.Offset {
					t.Errorf("workers=%d stop=%d %s: final offset %d, want %d",
						workers, stop, resume.name, res.Offset, full.Offset)
				}
			}
		}
	}
}

// TestBlockScannerCloseEarly abandons scans at various points; the only
// assertion is that Close reliably tears the pipeline down (goroutine
// leaks would trip the race/deadlock detectors) and is idempotent.
func TestBlockScannerCloseEarly(t *testing.T) {
	in := synthLog(2000)
	for _, stop := range []int{0, 1, 50} {
		sc := NewBlockScanner(strings.NewReader(in), BlockScanConfig{Workers: 4, BlockSize: 128})
		for i := 0; i < stop && sc.Scan(); i++ {
		}
		sc.Close()
		sc.Close()
	}
}
