package syslog

// Checkpoint serialization: a deterministic, line-oriented rendering of a
// scanner snapshot so a daemon can persist it atomically and resume after
// a restart. The format leans on the wire codec for the buffered records —
// pending and ready entries are rendered as canonical syslog lines via
// AppendCE/AppendDUE/AppendHET and re-parsed on load, so the round trip is
// exact by the codec's own round-trip guarantee rather than by a second
// serialization of every record field. Determinism matters: the same
// checkpoint always marshals to the same bytes, so Restore followed by
// Checkpoint re-marshals byte-identically and a daemon can skip rewriting
// an unchanged state file.

import (
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"time"
)

// checkpointMagic heads every serialized checkpoint; the trailing version
// is bumped on any format change.
const checkpointMagic = "astra-scan-checkpoint v1"

// zeroTimeToken stands in for the zero time.Time in cursor fields.
const zeroTimeToken = "-"

// Buffered returns how many records the checkpoint holds in flight — the
// reorder heap plus the ready-to-emit queue. They were consumed from the
// input but not yet delivered, so a restart answers for them from the
// checkpoint, not the log.
func (cp Checkpoint) Buffered() int {
	return len(cp.pending) + len(cp.ready)
}

// MarshalBinary renders the checkpoint deterministically. Buffered records
// are written as canonical syslog lines (pending in heap-array order,
// which a load preserves, keeping the heap invariant); dedup-ring lines
// are base64 so the format stays line-oriented whatever bytes they hold.
func (cp Checkpoint) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(checkpointMagic)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "offset %d\n", cp.Offset)
	s := cp.Stats
	fmt.Fprintf(&b, "stats %d %d %d %d %d %d %d %d %d %d %d\n",
		s.Lines, s.CEs, s.DUEs, s.HETs, s.Other,
		s.Malformed, s.Truncated, s.Garbage,
		s.Duplicated, s.Reordered, s.DroppedOutOfOrder)
	fmt.Fprintf(&b, "rpos %d\n", cp.rpos)
	fmt.Fprintf(&b, "maxseen %s\n", marshalTime(cp.maxSeen))
	fmt.Fprintf(&b, "watermark %s\n", marshalTime(cp.watermark))

	fmt.Fprintf(&b, "recent %d\n", len(cp.recent))
	for _, line := range cp.recent {
		b.WriteString(base64.StdEncoding.EncodeToString(line))
		b.WriteByte('\n')
	}
	for _, sec := range []struct {
		name string
		recs []Parsed
	}{{"pending", cp.pending}, {"ready", cp.ready}} {
		fmt.Fprintf(&b, "%s %d\n", sec.name, len(sec.recs))
		var buf []byte
		for _, p := range sec.recs {
			var err error
			if buf, err = appendParsed(buf[:0], p); err != nil {
				return nil, fmt.Errorf("syslog: checkpoint %s: %w", sec.name, err)
			}
			b.Write(buf)
			b.WriteByte('\n')
		}
	}
	return b.Bytes(), nil
}

// UnmarshalBinary loads a checkpoint previously produced by MarshalBinary,
// replacing the receiver entirely.
func (cp *Checkpoint) UnmarshalBinary(data []byte) error {
	r := &cpReader{rest: data}
	if line, err := r.line(); err != nil || string(line) != checkpointMagic {
		return fmt.Errorf("syslog: checkpoint: bad header %q", line)
	}
	*cp = Checkpoint{}
	var err error
	if cp.Offset, err = r.intField("offset"); err != nil {
		return err
	}
	stats, err := r.fields("stats", 11)
	if err != nil {
		return err
	}
	for i, dst := range []*int{
		&cp.Stats.Lines, &cp.Stats.CEs, &cp.Stats.DUEs, &cp.Stats.HETs,
		&cp.Stats.Other, &cp.Stats.Malformed, &cp.Stats.Truncated,
		&cp.Stats.Garbage, &cp.Stats.Duplicated, &cp.Stats.Reordered,
		&cp.Stats.DroppedOutOfOrder,
	} {
		if *dst, err = strconv.Atoi(stats[i]); err != nil {
			return fmt.Errorf("syslog: checkpoint: stats[%d]: %w", i, err)
		}
	}
	rpos, err := r.intField("rpos")
	if err != nil {
		return err
	}
	cp.rpos = int(rpos)
	if cp.maxSeen, err = r.timeField("maxseen"); err != nil {
		return err
	}
	if cp.watermark, err = r.timeField("watermark"); err != nil {
		return err
	}

	n, err := r.intField("recent")
	if err != nil {
		return err
	}
	for i := int64(0); i < n; i++ {
		line, err := r.line()
		if err != nil {
			return fmt.Errorf("syslog: checkpoint: recent[%d]: %w", i, err)
		}
		raw, err := base64.StdEncoding.DecodeString(string(line))
		if err != nil {
			return fmt.Errorf("syslog: checkpoint: recent[%d]: %w", i, err)
		}
		cp.recent = append(cp.recent, raw)
	}
	var dec Decoder
	for _, sec := range []struct {
		name string
		dst  *[]Parsed
	}{{"pending", &cp.pending}, {"ready", &cp.ready}} {
		n, err := r.intField(sec.name)
		if err != nil {
			return err
		}
		for i := int64(0); i < n; i++ {
			line, err := r.line()
			if err != nil {
				return fmt.Errorf("syslog: checkpoint: %s[%d]: %w", sec.name, i, err)
			}
			p, err := dec.ParseLineBytes(line)
			if err != nil || p.Kind == KindOther {
				return fmt.Errorf("syslog: checkpoint: %s[%d]: bad record line %q: %v", sec.name, i, line, err)
			}
			*sec.dst = append(*sec.dst, p)
		}
	}
	if len(r.rest) != 0 {
		return fmt.Errorf("syslog: checkpoint: %d trailing bytes", len(r.rest))
	}
	return nil
}

// appendParsed renders a buffered record back into its wire line.
func appendParsed(dst []byte, p Parsed) ([]byte, error) {
	switch p.Kind {
	case KindCE:
		return AppendCE(dst, p.CE), nil
	case KindDUE:
		return AppendDUE(dst, p.DUE), nil
	case KindHET:
		return AppendHET(dst, p.HET), nil
	default:
		return dst, fmt.Errorf("unrenderable record kind %d", p.Kind)
	}
}

func marshalTime(t time.Time) string {
	if t.IsZero() {
		return zeroTimeToken
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func unmarshalTime(s string) (time.Time, error) {
	if s == zeroTimeToken {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339Nano, s)
}

// cpReader walks the line-oriented checkpoint format.
type cpReader struct {
	rest []byte
}

func (r *cpReader) line() ([]byte, error) {
	if len(r.rest) == 0 {
		return nil, errors.New("unexpected end of checkpoint")
	}
	i := bytes.IndexByte(r.rest, '\n')
	if i < 0 {
		return nil, errors.New("unterminated checkpoint line")
	}
	line := r.rest[:i]
	r.rest = r.rest[i+1:]
	return line, nil
}

// fields reads a "key v1 v2 ..." line, checking the key and arity.
func (r *cpReader) fields(key string, n int) ([]string, error) {
	line, err := r.line()
	if err != nil {
		return nil, fmt.Errorf("syslog: checkpoint: %s: %w", key, err)
	}
	parts := bytes.Fields(line)
	if len(parts) != n+1 || string(parts[0]) != key {
		return nil, fmt.Errorf("syslog: checkpoint: want %q with %d fields, got %q", key, n, line)
	}
	out := make([]string, n)
	for i, p := range parts[1:] {
		out[i] = string(p)
	}
	return out, nil
}

func (r *cpReader) intField(key string) (int64, error) {
	f, err := r.fields(key, 1)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("syslog: checkpoint: %s: %w", key, err)
	}
	return v, nil
}

func (r *cpReader) timeField(key string) (time.Time, error) {
	f, err := r.fields(key, 1)
	if err != nil {
		return time.Time{}, err
	}
	t, err := unmarshalTime(f[0])
	if err != nil {
		return time.Time{}, fmt.Errorf("syslog: checkpoint: %s: %w", key, err)
	}
	return t, nil
}
