package syslog

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func sampleCE() mce.CERecord {
	return mce.CERecord{
		Time:     time.Date(2019, 5, 20, 13, 4, 55, 0, time.UTC),
		Node:     topology.NewNodeID(3, 11, 2),
		Socket:   1,
		Slot:     9, // "J"
		Rank:     1,
		Bank:     5,
		RowRaw:   0x2f3a,
		Col:      0x4d,
		BitPos:   0x1e21,
		Addr:     0x12345678,
		Syndrome: 0x4d,
	}
}

func sampleDUE() mce.DUERecord {
	return mce.DUERecord{
		Time:  time.Date(2019, 8, 24, 2, 11, 9, 0, time.UTC),
		Node:  topology.NewNodeID(0, 3, 1),
		Addr:  0xabcdef0,
		Cause: faultmodel.CauseMachineCheck,
		Fatal: true,
	}
}

func sampleHET() het.Record {
	return het.Record{
		Time:     simtime.HETStart.Add(3 * time.Hour),
		Node:     topology.NewNodeID(12, 0, 0),
		Type:     het.UncorrectableECC,
		Severity: het.SeverityNonRecoverable,
		Addr:     0x777000,
	}
}

func TestCERoundTrip(t *testing.T) {
	line := FormatCE(sampleCE())
	p, err := ParseLine(line)
	if err != nil {
		t.Fatalf("ParseLine(%q): %v", line, err)
	}
	if p.Kind != KindCE {
		t.Fatalf("Kind = %v", p.Kind)
	}
	if p.CE != sampleCE() {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", p.CE, sampleCE())
	}
}

func TestDUERoundTrip(t *testing.T) {
	p, err := ParseLine(FormatDUE(sampleDUE()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindDUE || p.DUE != sampleDUE() {
		t.Errorf("round trip mismatch: %+v", p.DUE)
	}
}

func TestHETRoundTrip(t *testing.T) {
	p, err := ParseLine(FormatHET(sampleHET()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindHET || p.HET != sampleHET() {
		t.Errorf("round trip mismatch: %+v", p.HET)
	}
	// HET record without address.
	r := sampleHET()
	r.Addr = 0
	p, err = ParseLine(FormatHET(r))
	if err != nil || p.HET != r {
		t.Errorf("addressless HET round trip: %+v, %v", p.HET, err)
	}
}

func TestCERoundTripProperty(t *testing.T) {
	f := func(slot8, rank1, bank4 uint8, row16, col16, bit16 uint16, addr32 uint32, syn uint8, node16 uint16, sec32 uint32) bool {
		slot := topology.Slot(int(slot8) % topology.SlotsPerNode)
		cell := topology.CellAddr{
			Node: topology.NodeID(int(node16) % topology.Nodes),
			Slot: slot,
			Rank: int(rank1) % topology.RanksPerDIMM,
			Bank: int(bank4) % topology.BanksPerRank,
			Row:  int(row16) % topology.RowsPerBank,
			Col:  int(col16) % topology.ColsPerRow,
		}
		r := mce.CERecord{
			Time:     simtime.StudyStart.Add(time.Duration(sec32%20000000) * time.Second),
			Node:     cell.Node,
			Socket:   slot.Socket(),
			Slot:     slot,
			Rank:     cell.Rank,
			Bank:     cell.Bank,
			RowRaw:   cell.Row,
			Col:      cell.Col,
			BitPos:   int(bit16) % (1 << 16),
			Addr:     topology.EncodePhysAddr(cell, 0),
			Syndrome: syn,
		}
		p, err := ParseLine(FormatCE(r))
		return err == nil && p.Kind == KindCE && p.CE == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestOtherLinesIgnored(t *testing.T) {
	for _, line := range []string{
		"",
		"2019-05-20T13:04:55Z astra-r03c11n2 kernel: usb 1-1: new high-speed USB device",
		"random chatter with no structure",
		"2019-05-20T13:04:55Z astra-r03c11n2 slurmd[1234]: launching job 42",
	} {
		p, err := ParseLine(line)
		if err != nil || p.Kind != KindOther {
			t.Errorf("line %q: kind %v err %v", line, p.Kind, err)
		}
	}
}

func TestCorruptRecordLinesRejected(t *testing.T) {
	good := FormatCE(sampleCE())
	corruptions := map[string]string{
		"bad-timestamp":     strings.Replace(good, "2019-", "20XX-", 1),
		"bad-host":          strings.Replace(good, "astra-r03c11n2", "astra-rXXc11n2", 1),
		"missing-field":     strings.Replace(good, " syndrome=0x4d", "", 1),
		"bad-slot":          strings.Replace(good, "slot=J", "slot=Z", 1),
		"socket-mismatch":   strings.Replace(good, "socket=1", "socket=0", 1),
		"rank-out-of-range": strings.Replace(good, "rank=1", "rank=7", 1),
		"bank-out-of-range": strings.Replace(good, "bank=5", "bank=99", 1),
		"garbage-value":     strings.Replace(good, "col=0x04d", "col=0xZZ", 1),
		"dup-field":         good + " rank=1",
		"truncated":         good[:40],
	}
	for name, line := range corruptions {
		if _, err := ParseLine(line); err == nil {
			// "truncated" may degrade to KindOther, which is acceptable
			// only if the marker was cut off.
			if p, _ := ParseLine(line); p.Kind == KindOther {
				continue
			}
			t.Errorf("%s: corrupt line accepted: %q", name, line)
		}
	}
}

func TestCorruptDUEAndHETRejected(t *testing.T) {
	due := FormatDUE(sampleDUE())
	for name, line := range map[string]string{
		"bad-cause": strings.Replace(due, "uncorrectableMachineCheckException", "meteorStrike", 1),
		"bad-fatal": strings.Replace(due, "fatal=1", "fatal=2", 1),
	} {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("DUE %s accepted: %q", name, line)
		}
	}
	hetLine := FormatHET(sampleHET())
	for name, line := range map[string]string{
		"bad-event":    strings.Replace(hetLine, "uncorrectableECC", "nonsense", 1),
		"bad-severity": strings.Replace(hetLine, "NON-RECOVERABLE", "SEVERE", 1),
	} {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("HET %s accepted: %q", name, line)
		}
	}
}

func TestScanner(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(FormatCE(sampleCE()) + "\n")
	sb.WriteString("2019-05-20T13:05:00Z astra-r03c11n2 kernel: unrelated message\n")
	sb.WriteString(FormatDUE(sampleDUE()) + "\n")
	sb.WriteString(strings.Replace(FormatCE(sampleCE()), "slot=J", "slot=Q", 1) + "\n") // malformed
	sb.WriteString(FormatHET(sampleHET()) + "\n")

	sc := NewScanner(strings.NewReader(sb.String()))
	var kinds []Kind
	for sc.Scan() {
		kinds = append(kinds, sc.Record().Kind)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	want := []Kind{KindCE, KindDUE, KindHET}
	if len(kinds) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("record %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	stats := sc.Stats()
	if stats.Lines != 5 || stats.CEs != 1 || stats.DUEs != 1 || stats.HETs != 1 || stats.Other != 1 || stats.Malformed != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestScannerEmptyInput(t *testing.T) {
	sc := NewScanner(strings.NewReader(""))
	if sc.Scan() {
		t.Error("Scan on empty input should return false")
	}
	if sc.Err() != nil {
		t.Error("empty input is not an error")
	}
}
