package syslog

// This file is the zero-allocation wire codec: append-based formatters
// (AppendCE/AppendDUE/AppendHET) that render a record into a caller-owned
// buffer with hand-rolled timestamp/decimal/hex emitters, and a Decoder
// whose ParseLineBytes scans a []byte line in place — no intermediate
// map[string]string, no per-field substrings — with a memoized date-prefix
// timestamp parser and an interning table for repeated hostnames.
//
// The string APIs (FormatCE/ParseLine) remain the reference semantics; the
// byte forms are required to agree with them line for line (the codec
// round-trip tests and FuzzParseLine enforce this), falling back to the
// string path for inputs outside the canonical grammar so the agreement is
// by construction, not by reimplementation of every edge case.

import (
	"bytes"
	"fmt"
	"sync"
	"time"
	"unicode"
	"unicode/utf8"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/topology"
)

// AppendCE appends the syslog rendering of a correctable-error record to
// dst and returns the extended buffer. It is the allocation-free form of
// FormatCE and produces byte-identical output.
func AppendCE(dst []byte, r mce.CERecord) []byte {
	dst = AppendTimestamp(dst, r.Time)
	dst = append(dst, ' ')
	dst = r.Node.AppendString(dst)
	dst = append(dst, ' ')
	dst = append(dst, ceMarker...)
	dst = append(dst, " socket="...)
	dst = appendDec(dst, int64(r.Socket))
	dst = append(dst, " slot="...)
	dst = r.Slot.AppendName(dst)
	dst = append(dst, " rank="...)
	dst = appendDec(dst, int64(r.Rank))
	dst = append(dst, " bank="...)
	dst = appendDec(dst, int64(r.Bank))
	dst = append(dst, " row=0x"...)
	dst = appendHexPad(dst, int64(r.RowRaw), 4)
	dst = append(dst, " col=0x"...)
	dst = appendHexPad(dst, int64(r.Col), 3)
	dst = append(dst, " bitpos=0x"...)
	dst = appendHexPad(dst, int64(r.BitPos), 4)
	dst = append(dst, " addr=0x"...)
	dst = appendUhexPad(dst, uint64(r.Addr), 10)
	dst = append(dst, " syndrome=0x"...)
	return appendUhexPad(dst, uint64(r.Syndrome), 2)
}

// AppendDUE appends the syslog rendering of an uncorrectable-error record
// to dst; the allocation-free form of FormatDUE.
func AppendDUE(dst []byte, r mce.DUERecord) []byte {
	dst = AppendTimestamp(dst, r.Time)
	dst = append(dst, ' ')
	dst = r.Node.AppendString(dst)
	dst = append(dst, ' ')
	dst = append(dst, dueMarker...)
	dst = append(dst, " cause="...)
	dst = append(dst, r.Cause.String()...)
	dst = append(dst, " addr=0x"...)
	dst = appendUhexPad(dst, uint64(r.Addr), 10)
	dst = append(dst, " fatal="...)
	if r.Fatal {
		return append(dst, '1')
	}
	return append(dst, '0')
}

// AppendHET appends the syslog rendering of a Hardware Event Tracker
// record to dst; the allocation-free form of FormatHET.
func AppendHET(dst []byte, r het.Record) []byte {
	dst = AppendTimestamp(dst, r.Time)
	dst = append(dst, ' ')
	dst = r.Node.AppendString(dst)
	dst = append(dst, ' ')
	dst = append(dst, hetMarker...)
	dst = append(dst, " event="...)
	dst = append(dst, r.Type.String()...)
	dst = append(dst, " severity="...)
	dst = append(dst, r.Severity.String()...)
	if r.Addr != 0 {
		dst = append(dst, " addr=0x"...)
		dst = appendUhexPad(dst, uint64(r.Addr), 10)
	}
	return dst
}

// AppendTimestamp appends t in the wire timestamp format (RFC 3339, UTC,
// second resolution) to dst without allocating. Years outside [0, 9999]
// fall back to time.Time's own formatter for identical output.
func AppendTimestamp(dst []byte, t time.Time) []byte {
	t = t.UTC()
	year, month, day := t.Date()
	if year < 0 || year > 9999 {
		return t.AppendFormat(dst, timeLayout)
	}
	hour, min, sec := t.Clock()
	dst = append(dst,
		byte('0'+year/1000), byte('0'+year/100%10), byte('0'+year/10%10), byte('0'+year%10), '-',
		byte('0'+int(month)/10), byte('0'+int(month)%10), '-',
		byte('0'+day/10), byte('0'+day%10), 'T',
		byte('0'+hour/10), byte('0'+hour%10), ':',
		byte('0'+min/10), byte('0'+min%10), ':',
		byte('0'+sec/10), byte('0'+sec%10), 'Z')
	return dst
}

// appendDec appends the base-10 rendering of v (matching fmt's %d).
func appendDec(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return appendUdec(dst, uint64(-v))
	}
	return appendUdec(dst, uint64(v))
}

func appendUdec(dst []byte, u uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

// appendHexPad appends the lowercase hex rendering of v zero-padded to
// width digits, matching fmt's %0*x (the sign, if any, precedes the
// padding).
func appendHexPad(dst []byte, v int64, width int) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return appendUhexPad(dst, uint64(-v), width-1)
	}
	return appendUhexPad(dst, uint64(v), width)
}

const hexDigits = "0123456789abcdef"

func appendUhexPad(dst []byte, u uint64, width int) []byte {
	var tmp [16]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = hexDigits[u&0xf]
		u >>= 4
		if u == 0 {
			break
		}
	}
	for pad := width - (len(tmp) - i); pad > 0; pad-- {
		dst = append(dst, '0')
	}
	return append(dst, tmp[i:]...)
}

// Marker byte forms, hoisted so the byte scanner never converts.
var (
	ceMarkerBytes  = []byte(ceMarker)
	dueMarkerBytes = []byte(dueMarker)
	hetMarkerBytes = []byte(hetMarker)
)

// maxWireFields bounds the in-place field scan. A valid record line has at
// most 11 key=value fields; a line with more tokens than this is handed to
// the legacy string parser so the two paths stay in exact agreement
// without the byte path needing quadratic duplicate detection on
// adversarial input.
const maxWireFields = 32

// maxInternedHosts caps the Decoder's hostname interning table so a
// corrupt log full of unique garbled hostnames cannot grow it without
// bound (valid logs have at most topology.Nodes distinct hosts).
const maxInternedHosts = 2 * topology.Nodes

// Decoder parses wire lines in place with cross-line memoization: the
// current date prefix's midnight is computed once per distinct date, and
// hostnames are interned so repeated hosts cost a map probe instead of a
// parse. The zero value is ready to use. A Decoder is not safe for
// concurrent use; give each goroutine its own (they are cheap).
type Decoder struct {
	datePfx  [11]byte // "YYYY-MM-DDT" of the memoized date
	dateOK   bool
	dateSecs int64 // Unix seconds at the memoized date's midnight UTC
	hosts    map[string]topology.NodeID
}

// decoderPool backs the package-level ParseLineBytes so one-off callers
// still get memoization across calls without sharing unsynchronized state.
var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// ParseLineBytes is ParseLine over raw bytes: same classification, same
// record values, same error categories, without per-line allocation. The
// input is not retained.
func ParseLineBytes(line []byte) (Parsed, error) {
	d := decoderPool.Get().(*Decoder)
	p, err := d.ParseLineBytes(line)
	decoderPool.Put(d)
	return p, err
}

// ParseLineBytes classifies and parses one syslog line held in a byte
// slice, writing nothing and allocating nothing on the canonical-grammar
// path. Inputs outside the canonical grammar (non-second-resolution
// timestamps, exotic whitespace, absurd field counts) are delegated to the
// string parser, so the result always agrees with ParseLine(string(line)).
// The line is not retained; callers may reuse the buffer.
func (d *Decoder) ParseLineBytes(line []byte) (Parsed, error) {
	switch {
	case bytes.Contains(line, ceMarkerBytes):
		ce, err := d.parseCEBytes(line)
		if err == errDelegate {
			return ParseLine(string(line))
		}
		return Parsed{Kind: KindCE, CE: ce}, classify(err)
	case bytes.Contains(line, dueMarkerBytes):
		due, err := d.parseDUEBytes(line)
		if err == errDelegate {
			return ParseLine(string(line))
		}
		return Parsed{Kind: KindDUE, DUE: due}, classify(err)
	case bytes.Contains(line, hetMarkerBytes):
		h, err := d.parseHETBytes(line)
		if err == errDelegate {
			return ParseLine(string(line))
		}
		return Parsed{Kind: KindHET, HET: h}, classify(err)
	default:
		return Parsed{Kind: KindOther}, nil
	}
}

// errDelegate is an internal sentinel: the byte path met input it does not
// model exactly; re-run the line through the string parser.
var errDelegate = fmt.Errorf("syslog: delegate to string parser")

// headerBytes parses the leading "<timestamp> <host> " before the marker
// and returns the remainder after it.
func (d *Decoder) headerBytes(line, marker []byte) (time.Time, topology.NodeID, []byte, error) {
	idx := bytes.Index(line, marker)
	head := line[:idx]
	ts, rest := nextFieldBytes(head)
	host, rest2 := nextFieldBytes(rest)
	if ts == nil || host == nil {
		return time.Time{}, 0, nil, fmt.Errorf("syslog: malformed header %q", head)
	}
	if extra, _ := nextFieldBytes(rest2); extra != nil {
		return time.Time{}, 0, nil, fmt.Errorf("syslog: malformed header %q", head)
	}
	t, err := d.parseTimestampBytes(ts)
	if err != nil {
		return time.Time{}, 0, nil, fmt.Errorf("syslog: bad timestamp: %w", err)
	}
	node, err := d.parseNodeBytes(host)
	if err != nil {
		return time.Time{}, 0, nil, err
	}
	return t, node, line[idx+len(marker):], nil
}

// parseTimestampBytes parses a canonical "YYYY-MM-DDTHH:MM:SSZ" timestamp
// allocation-free, memoizing the date prefix; anything else (offsets,
// fractional seconds, leap seconds, malformed text) takes the time.Parse
// path so behaviour matches the string parser exactly.
func (d *Decoder) parseTimestampBytes(b []byte) (time.Time, error) {
	if len(b) == 20 && b[4] == '-' && b[7] == '-' && b[10] == 'T' &&
		b[13] == ':' && b[16] == ':' && b[19] == 'Z' &&
		allDigits(b[0:4]) && allDigits(b[5:7]) && allDigits(b[8:10]) &&
		allDigits(b[11:13]) && allDigits(b[14:16]) && allDigits(b[17:19]) {
		if !d.dateOK || !bytes.Equal(d.datePfx[:], b[:11]) {
			year := digits(b[0:4])
			month := digits(b[5:7])
			day := digits(b[8:10])
			midnight := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
			y2, m2, d2 := midnight.Date()
			if y2 != year || int(m2) != month || d2 != day {
				// Not a real calendar date (e.g. Feb 30); let time.Parse
				// produce its canonical error.
				return d.parseTimestampSlow(b)
			}
			copy(d.datePfx[:], b[:11])
			d.dateSecs = midnight.Unix()
			d.dateOK = true
		}
		hour := digits(b[11:13])
		min := digits(b[14:16])
		sec := digits(b[17:19])
		if hour > 23 || min > 59 || sec > 59 {
			return d.parseTimestampSlow(b)
		}
		return time.Unix(d.dateSecs+int64(hour)*3600+int64(min)*60+int64(sec), 0).UTC(), nil
	}
	return d.parseTimestampSlow(b)
}

func (d *Decoder) parseTimestampSlow(b []byte) (time.Time, error) {
	ts, err := time.Parse(timeLayout, string(b))
	if err != nil {
		return time.Time{}, err
	}
	return ts.UTC(), nil
}

func allDigits(b []byte) bool {
	for _, c := range b {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// digits converts a validated all-digit slice (len <= 4) to its value.
func digits(b []byte) int {
	n := 0
	for _, c := range b {
		n = n*10 + int(c-'0')
	}
	return n
}

// parseNodeBytes resolves a hostname through the interning table, parsing
// and caching on first sight of each distinct spelling.
func (d *Decoder) parseNodeBytes(host []byte) (topology.NodeID, error) {
	if id, ok := d.hosts[string(host)]; ok { // alloc-free lookup
		return id, nil
	}
	id, err := topology.ParseNodeID(string(host))
	if err != nil {
		return 0, err
	}
	if d.hosts == nil {
		d.hosts = make(map[string]topology.NodeID, 64)
	}
	if len(d.hosts) < maxInternedHosts {
		d.hosts[string(host)] = id
	}
	return id, nil
}

// nextFieldBytes returns the first whitespace-delimited field of b (nil if
// none) and the remainder after it, with strings.Fields' definition of
// whitespace.
func nextFieldBytes(b []byte) (field, rest []byte) {
	start := 0
	for start < len(b) {
		if w := spaceWidth(b[start:]); w > 0 {
			start += w
		} else {
			break
		}
	}
	if start == len(b) {
		return nil, nil
	}
	end := start
	for end < len(b) {
		if w := spaceWidth(b[end:]); w > 0 {
			break
		}
		_, size := utf8.DecodeRune(b[end:])
		end += size
	}
	return b[start:end], b[end:]
}

// spaceWidth returns the byte width of the whitespace rune at the head of
// b, or 0 if it is not whitespace.
func spaceWidth(b []byte) int {
	c := b[0]
	if c < utf8.RuneSelf {
		if c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
			return 1
		}
		return 0
	}
	r, size := utf8.DecodeRune(b)
	if unicode.IsSpace(r) {
		return size
	}
	return 0
}

// wireFields is the in-place replacement for kvFields: key and value spans
// into the scanned line, no map, no copies.
type wireFields struct {
	keys [maxWireFields][]byte
	vals [maxWireFields][]byte
	n    int
}

// scanFields splits rest into key=value spans with the same acceptance,
// duplicate and truncation-vs-garbling rules as kvFields. It returns
// errDelegate when the token count exceeds maxWireFields.
func scanFields(rest []byte, fs *wireFields) error {
	b := rest
	for {
		tok, after := nextFieldBytes(b)
		if tok == nil {
			return nil
		}
		eq := bytes.IndexByte(tok, '=')
		if eq <= 0 || eq == len(tok)-1 {
			// Missing '=', empty key, or empty value. Classified as
			// truncation only when this is the final token.
			cat := ErrGarbled
			if next, _ := nextFieldBytes(after); next == nil {
				cat = ErrTruncated
			}
			return fmt.Errorf("%w: syslog: malformed field %q", cat, tok)
		}
		key := tok[:eq]
		for i := 0; i < fs.n; i++ {
			if bytes.Equal(fs.keys[i], key) {
				return fmt.Errorf("%w: syslog: duplicate field %q", ErrGarbled, key)
			}
		}
		if fs.n >= maxWireFields {
			return errDelegate
		}
		fs.keys[fs.n] = key
		fs.vals[fs.n] = tok[eq+1:]
		fs.n++
		b = after
	}
}

// get returns the value span for key, if present.
func (fs *wireFields) get(key string) ([]byte, bool) {
	for i := 0; i < fs.n; i++ {
		if string(fs.keys[i]) == key { // alloc-free comparison
			return fs.vals[i], true
		}
	}
	return nil, false
}

// needIntBytes is needInt over field spans: the value must be exact
// decimal digits (base 10) or exact hex digits with an optional "0x"
// prefix (base 16) — no signs, no whitespace, no stray prefixes — and must
// land inside [lo, hi].
func needIntBytes(fs *wireFields, key string, base int, lo, hi int64) (int64, error) {
	v, ok := fs.get(key)
	if !ok {
		return 0, fmt.Errorf("%w: syslog: missing field %q", ErrTruncated, key)
	}
	if base == 16 && len(v) >= 2 && v[0] == '0' && v[1] == 'x' {
		v = v[2:]
	}
	if len(v) == 0 {
		return 0, fmt.Errorf("%w: syslog: field %q: empty value", ErrGarbled, key)
	}
	var n int64
	for _, c := range v {
		var digit int64
		switch {
		case c >= '0' && c <= '9':
			digit = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			digit = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			digit = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("%w: syslog: field %q: bad digit %q in %q", ErrGarbled, key, c, v)
		}
		if n > (1<<62)/int64(base) {
			return 0, fmt.Errorf("%w: syslog: field %q: value %q out of range", ErrGarbled, key, v)
		}
		n = n*int64(base) + digit
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("syslog: field %q = %d out of [%d, %d]", key, n, lo, hi)
	}
	return n, nil
}

func (d *Decoder) parseCEBytes(line []byte) (mce.CERecord, error) {
	ts, node, rest, err := d.headerBytes(line, ceMarkerBytes)
	if err != nil {
		return mce.CERecord{}, err
	}
	var fs wireFields
	if err := scanFields(rest, &fs); err != nil {
		return mce.CERecord{}, err
	}
	slotName, ok := fs.get("slot")
	if !ok {
		return mce.CERecord{}, fmt.Errorf("%w: syslog: missing field \"slot\"", ErrTruncated)
	}
	slot, err := parseSlotBytes(slotName)
	if err != nil {
		return mce.CERecord{}, err
	}
	socket, err := needIntBytes(&fs, "socket", 10, 0, topology.SocketsPerNode-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	if int(socket) != slot.Socket() {
		return mce.CERecord{}, fmt.Errorf("syslog: socket %d inconsistent with slot %s", socket, slot)
	}
	rank, err := needIntBytes(&fs, "rank", 10, 0, topology.RanksPerDIMM-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	bank, err := needIntBytes(&fs, "bank", 10, 0, topology.BanksPerRank-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	row, err := needIntBytes(&fs, "row", 16, 0, topology.RowsPerBank-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	col, err := needIntBytes(&fs, "col", 16, 0, topology.ColsPerRow-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	bitpos, err := needIntBytes(&fs, "bitpos", 16, 0, 1<<20)
	if err != nil {
		return mce.CERecord{}, err
	}
	addr, err := needIntBytes(&fs, "addr", 16, 0, topology.NodeMemBytes-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	syndrome, err := needIntBytes(&fs, "syndrome", 16, 0, 255)
	if err != nil {
		return mce.CERecord{}, err
	}
	return mce.CERecord{
		Time: ts, Node: node, Socket: int(socket), Slot: slot,
		Rank: int(rank), Bank: int(bank), RowRaw: int(row), Col: int(col),
		BitPos: int(bitpos), Addr: topology.PhysAddr(addr), Syndrome: uint8(syndrome),
	}, nil
}

// parseSlotBytes parses a slot letter in place, deferring to ParseSlot for
// the error rendering on invalid input.
func parseSlotBytes(v []byte) (topology.Slot, error) {
	if len(v) == 1 {
		c := v[0]
		if c >= 'a' && c <= 'p' {
			c -= 'a' - 'A'
		}
		if c >= 'A' && c <= 'P' {
			return topology.Slot(c - 'A'), nil
		}
	}
	return topology.ParseSlot(string(v))
}

func (d *Decoder) parseDUEBytes(line []byte) (mce.DUERecord, error) {
	ts, node, rest, err := d.headerBytes(line, dueMarkerBytes)
	if err != nil {
		return mce.DUERecord{}, err
	}
	var fs wireFields
	if err := scanFields(rest, &fs); err != nil {
		return mce.DUERecord{}, err
	}
	causeName, ok := fs.get("cause")
	if !ok {
		return mce.DUERecord{}, fmt.Errorf("%w: syslog: missing field \"cause\"", ErrTruncated)
	}
	var cause faultmodel.DUECause
	switch {
	case string(causeName) == faultmodel.CauseUncorrectableECC.String():
		cause = faultmodel.CauseUncorrectableECC
	case string(causeName) == faultmodel.CauseMachineCheck.String():
		cause = faultmodel.CauseMachineCheck
	default:
		return mce.DUERecord{}, fmt.Errorf("syslog: unknown DUE cause %q", causeName)
	}
	addr, err := needIntBytes(&fs, "addr", 16, 0, topology.NodeMemBytes-1)
	if err != nil {
		return mce.DUERecord{}, err
	}
	fatal, err := needIntBytes(&fs, "fatal", 10, 0, 1)
	if err != nil {
		return mce.DUERecord{}, err
	}
	return mce.DUERecord{
		Time: ts, Node: node, Addr: topology.PhysAddr(addr),
		Cause: cause, Fatal: fatal == 1,
	}, nil
}

func (d *Decoder) parseHETBytes(line []byte) (het.Record, error) {
	ts, node, rest, err := d.headerBytes(line, hetMarkerBytes)
	if err != nil {
		return het.Record{}, err
	}
	var fs wireFields
	if err := scanFields(rest, &fs); err != nil {
		return het.Record{}, err
	}
	evName, ok := fs.get("event")
	if !ok {
		return het.Record{}, fmt.Errorf("%w: syslog: missing field \"event\"", ErrTruncated)
	}
	ev, err := het.ParseEventTypeBytes(evName)
	if err != nil {
		return het.Record{}, err
	}
	sevName, ok := fs.get("severity")
	if !ok {
		return het.Record{}, fmt.Errorf("%w: syslog: missing field \"severity\"", ErrTruncated)
	}
	sev, err := het.ParseSeverityBytes(sevName)
	if err != nil {
		return het.Record{}, err
	}
	rec := het.Record{Time: ts, Node: node, Type: ev, Severity: sev}
	if _, ok := fs.get("addr"); ok {
		addr, err := needIntBytes(&fs, "addr", 16, 0, topology.NodeMemBytes-1)
		if err != nil {
			return het.Record{}, err
		}
		rec.Addr = topology.PhysAddr(addr)
	}
	return rec, nil
}
