package syslog

import (
	"bufio"
	"fmt"
	"io"
)

// ScanStats counts what a scan encountered.
type ScanStats struct {
	Lines     int
	CEs       int
	DUEs      int
	HETs      int
	Other     int
	Malformed int
}

// Scanner streams a syslog and yields parsed records, tolerating (but
// counting) malformed record lines, like the paper's handling of invalid
// telemetry: excluded, accounted for, and expected to be rare.
type Scanner struct {
	sc    *bufio.Scanner
	stats ScanStats
	cur   Parsed
	err   error
}

// NewScanner wraps a reader. Lines up to 1 MiB are supported.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Scanner{sc: sc}
}

// Scan advances to the next well-formed record line (CE, DUE or HET),
// skipping noise and malformed lines. It returns false at end of input or
// on a read error (see Err).
func (s *Scanner) Scan() bool {
	for s.sc.Scan() {
		s.stats.Lines++
		p, err := ParseLine(s.sc.Text())
		if err != nil {
			s.stats.Malformed++
			continue
		}
		switch p.Kind {
		case KindOther:
			s.stats.Other++
			continue
		case KindCE:
			s.stats.CEs++
		case KindDUE:
			s.stats.DUEs++
		case KindHET:
			s.stats.HETs++
		}
		s.cur = p
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("syslog: read: %w", err)
	}
	return false
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Parsed { return s.cur }

// Stats returns the accounting so far.
func (s *Scanner) Stats() ScanStats { return s.stats }

// Err returns the first read error, if any. Malformed lines are not read
// errors; they are counted in Stats.
func (s *Scanner) Err() error { return s.err }
