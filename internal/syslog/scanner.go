package syslog

import (
	"bufio"
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"time"
)

// ScanStats counts what a scan encountered, by category, so the ingest
// path can report the *shape* of a log's corruption — the accounting the
// field studies behind the paper spend real effort on before any analysis
// runs.
type ScanStats struct {
	// Lines is the total number of input lines.
	Lines int
	// CEs, DUEs and HETs count the well-formed records delivered.
	CEs  int
	DUEs int
	HETs int
	// Other counts unrecognized kernel chatter (not an error).
	Other int
	// Malformed counts record lines that failed to parse; it is always
	// Truncated + Garbage.
	Malformed int
	// Truncated counts malformed lines classified as cut short
	// (ErrTruncated); Garbage counts the garbled remainder (ErrGarbled).
	Truncated int
	Garbage   int
	// Duplicated counts record lines suppressed as exact duplicates of a
	// recent line (syslog relay at-least-once delivery). Only counted
	// when a dedup window is configured.
	Duplicated int
	// Reordered counts records that arrived after a later-timestamped
	// record but were resequenced within the reorder window (recovered,
	// and included in the kind counts above).
	Reordered int
	// DroppedOutOfOrder counts records that arrived too late for the
	// reorder window and were discarded to preserve output time order.
	DroppedOutOfOrder int
}

// ScanConfig tunes the scanner's corruption tolerance. The zero value is
// the strict-ordering, no-tolerance behaviour of the raw parser: no
// dedup, no reordering, malformed lines skipped and counted.
type ScanConfig struct {
	// Strict makes the first malformed record line a scan error
	// (Scan returns false and Err reports the parse failure) instead of
	// a counted skip.
	Strict bool
	// DedupWindow suppresses a record line identical to one of the last
	// N record lines (0 disables). Real repeated errors can render as
	// identical lines too; suppressions are counted, not silent.
	DedupWindow int
	// ReorderWindow buffers records and emits them in timestamp order,
	// tolerating arrival skew up to the window (0 disables). Records
	// later than the window are dropped and counted.
	ReorderWindow time.Duration
}

// tolerator is the corruption-tolerance state machine shared by the
// serial Scanner and the BlockScanner: the dedup ring, the reorder heap,
// the ready queue, and the accounting. It consumes parse outcomes one
// line at a time in input order — where the line's bytes came from (a
// bufio cursor or a merged block pipeline) is the caller's business — so
// any frontend that feeds it the same line sequence produces bit-identical
// records and ScanStats.
type tolerator struct {
	cfg   ScanConfig
	stats ScanStats

	// dedup ring over recent record lines; entry buffers are reused.
	recent [][]byte
	rpos   int

	// reorder machinery (cfg.ReorderWindow > 0).
	pending recHeap
	// ready is the emit queue; rhead indexes the next record so pops
	// never re-slice the front (which would shrink the backing array and
	// force a reallocation per record). Once drained, both reset and the
	// array is reused.
	ready     []Parsed
	rhead     int
	maxSeen   time.Time
	watermark time.Time
}

func newTolerator(cfg ScanConfig) tolerator {
	t := tolerator{cfg: cfg}
	if cfg.DedupWindow > 0 {
		t.recent = make([][]byte, 0, cfg.DedupWindow)
	}
	return t
}

// feed consumes one line's parse outcome. The returned error is non-nil
// only in strict mode on a malformed record line; it is the scan-fatal
// error the frontend must surface through Err.
func (t *tolerator) feed(line []byte, p Parsed, perr error) error {
	t.stats.Lines++
	if perr != nil {
		t.stats.Malformed++
		switch {
		case errors.Is(perr, ErrTruncated):
			t.stats.Truncated++
		default:
			t.stats.Garbage++
		}
		if t.cfg.Strict {
			return fmt.Errorf("syslog: line %d: %w", t.stats.Lines, perr)
		}
		return nil
	}
	if p.Kind == KindOther {
		t.stats.Other++
		return nil
	}
	if t.isDuplicate(line) {
		t.stats.Duplicated++
		return nil
	}
	t.accept(p)
	return nil
}

// pop emits the next ready record, if any, updating the kind counts.
func (t *tolerator) pop() (Parsed, bool) {
	if t.rhead >= len(t.ready) {
		return Parsed{}, false
	}
	p := t.ready[t.rhead]
	t.rhead++
	if t.rhead == len(t.ready) {
		t.ready = t.ready[:0]
		t.rhead = 0
	}
	t.countKind(p.Kind)
	return p, true
}

// accept routes a parsed record through the reorder buffer (or straight
// to ready when reordering is disabled).
func (t *tolerator) accept(p Parsed) {
	if t.cfg.ReorderWindow <= 0 {
		t.ready = append(t.ready, p)
		return
	}
	ts := p.Time()
	if !t.watermark.IsZero() && ts.Before(t.watermark) {
		// Its slot has already been emitted; resequencing would break
		// output time order.
		t.stats.DroppedOutOfOrder++
		return
	}
	if ts.Before(t.maxSeen) {
		t.stats.Reordered++
	}
	if ts.After(t.maxSeen) {
		t.maxSeen = ts
	}
	heap.Push(&t.pending, p)
	t.drain(false)
}

// drain moves pending records older than the reorder window (all of them
// at EOF) into the ready queue, advancing the watermark.
func (t *tolerator) drain(all bool) {
	for t.pending.Len() > 0 {
		oldest := t.pending[0].Time()
		if !all && t.maxSeen.Sub(oldest) < t.cfg.ReorderWindow {
			return
		}
		p := heap.Pop(&t.pending).(Parsed)
		t.watermark = p.Time()
		t.ready = append(t.ready, p)
	}
}

// isDuplicate checks the record line against the dedup ring and records
// it for future checks. Ring entries keep their backing arrays across
// replacements, so a warm ring costs no allocation per line.
func (t *tolerator) isDuplicate(line []byte) bool {
	if t.cfg.DedupWindow <= 0 {
		return false
	}
	for _, prev := range t.recent {
		if bytes.Equal(prev, line) {
			return true
		}
	}
	if len(t.recent) < t.cfg.DedupWindow {
		t.recent = append(t.recent, append([]byte(nil), line...))
	} else {
		t.recent[t.rpos] = append(t.recent[t.rpos][:0], line...)
		t.rpos = (t.rpos + 1) % t.cfg.DedupWindow
	}
	return false
}

func (t *tolerator) countKind(k Kind) {
	switch k {
	case KindCE:
		t.stats.CEs++
	case KindDUE:
		t.stats.DUEs++
	case KindHET:
		t.stats.HETs++
	}
}

// checkpoint snapshots the tolerance state (deep copy) at the given input
// offset.
func (t *tolerator) checkpoint(offset int64) Checkpoint {
	cp := Checkpoint{
		Offset:    offset,
		Stats:     t.stats,
		rpos:      t.rpos,
		maxSeen:   t.maxSeen,
		watermark: t.watermark,
	}
	if len(t.recent) > 0 {
		cp.recent = make([][]byte, len(t.recent))
		for i, b := range t.recent {
			cp.recent[i] = append([]byte(nil), b...)
		}
	}
	if len(t.pending) > 0 {
		cp.pending = append([]Parsed(nil), t.pending...)
	}
	if t.rhead < len(t.ready) {
		cp.ready = append([]Parsed(nil), t.ready[t.rhead:]...)
	}
	return cp
}

// restore loads a checkpoint's tolerance state into a fresh tolerator.
func (t *tolerator) restore(cp Checkpoint) {
	t.stats = cp.Stats
	t.rpos = cp.rpos
	t.maxSeen = cp.maxSeen
	t.watermark = cp.watermark
	if len(cp.recent) > 0 {
		t.recent = make([][]byte, len(cp.recent))
		for i, b := range cp.recent {
			t.recent[i] = append([]byte(nil), b...)
		}
	}
	// A copy of a heap preserves the heap invariant; no re-push needed.
	if len(cp.pending) > 0 {
		t.pending = append(recHeap(nil), cp.pending...)
	}
	if len(cp.ready) > 0 {
		t.ready = append([]Parsed(nil), cp.ready...)
	}
}

// Scanner streams a syslog and yields parsed records, tolerating (but
// counting) malformed record lines, like the paper's handling of invalid
// telemetry: excluded, accounted for, and expected to be rare. With a
// ScanConfig it additionally absorbs relay duplication and bounded
// arrival reordering.
//
// Scanning is allocation-free per line: each line is parsed in place from
// the bufio buffer through the Decoder's byte codec; no per-line string is
// ever materialized.
type Scanner struct {
	sc  *bufio.Scanner
	dec Decoder
	tol tolerator
	cur Parsed
	err error
	eof bool

	// consumed is the byte offset just past the last line the split
	// function handed to Scan — the resume point a Checkpoint captures.
	// The bufio read-ahead beyond it is invisible to this count.
	consumed int64
}

// NewScanner wraps a reader with the zero-tolerance configuration. Lines
// up to 1 MiB are supported.
func NewScanner(r io.Reader) *Scanner {
	return NewScannerConfig(r, ScanConfig{})
}

// NewScannerConfig wraps a reader with explicit corruption tolerance.
func NewScannerConfig(r io.Reader, cfg ScanConfig) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	s := &Scanner{sc: sc, tol: newTolerator(cfg)}
	sc.Split(func(data []byte, atEOF bool) (advance int, token []byte, err error) {
		advance, token, err = bufio.ScanLines(data, atEOF)
		s.consumed += int64(advance)
		return advance, token, err
	})
	return s
}

// Offset returns the byte offset just past the last input line consumed
// by Scan. Input the scanner has read ahead but not yet handed to Scan is
// not counted, so restarting a new Scanner at this offset (with the state
// from Checkpoint) continues the record stream exactly.
func (s *Scanner) Offset() int64 { return s.consumed }

// Checkpoint is a resumable snapshot of a Scanner: the input offset plus
// the tolerance state (dedup ring, reorder buffer, pending emits) that
// spans lines. Taken between Scan calls, it lets a restarted process
// reopen the log, seek to Offset, and Restore to produce the identical
// remaining record sequence — including suppressions and resequencing
// decisions that depend on lines before the offset.
type Checkpoint struct {
	// Offset is the resume position in the input, as per (*Scanner).Offset.
	Offset int64
	// Stats is the accounting at the checkpoint.
	Stats ScanStats

	// recent/rpos snapshot the dedup ring; pending the reorder heap;
	// ready/maxSeen/watermark the emit queue and its time cursors.
	recent    [][]byte
	rpos      int
	pending   []Parsed
	ready     []Parsed
	maxSeen   time.Time
	watermark time.Time
}

// Checkpoint snapshots the scanner between Scan calls. The snapshot is a
// deep copy: further scanning does not mutate it.
func (s *Scanner) Checkpoint() Checkpoint {
	return s.tol.checkpoint(s.consumed)
}

// Restore loads a Checkpoint into a freshly constructed Scanner whose
// reader is positioned at cp.Offset. The scanner must have the same
// ScanConfig as the one that produced the checkpoint and must not have
// scanned yet; subsequent Scan calls yield the same records the original
// scanner would have yielded past the checkpoint.
func (s *Scanner) Restore(cp Checkpoint) error {
	if s.consumed != 0 || s.tol.stats.Lines != 0 {
		return errors.New("syslog: Restore on a scanner that has already scanned")
	}
	s.consumed = cp.Offset
	s.tol.restore(cp)
	return nil
}

// Scan advances to the next well-formed record (CE, DUE or HET), skipping
// noise and malformed lines. It returns false at end of input, on a read
// error, or (in strict mode) on the first malformed record line; see Err.
func (s *Scanner) Scan() bool {
	for {
		if p, ok := s.tol.pop(); ok {
			s.cur = p
			return true
		}
		if s.err != nil || s.eof {
			return false
		}
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				s.err = fmt.Errorf("syslog: read: %w", err)
				return false
			}
			s.eof = true
			s.tol.drain(true)
			continue
		}
		line := s.sc.Bytes()
		p, err := s.dec.ParseLineBytes(line)
		if err := s.tol.feed(line, p, err); err != nil {
			s.err = err
			return false
		}
	}
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Parsed { return s.cur }

// Stats returns the accounting so far.
func (s *Scanner) Stats() ScanStats { return s.tol.stats }

// Err returns the first read error (or, in strict mode, parse error), if
// any. In lenient mode malformed lines are not errors; they are counted
// in Stats.
func (s *Scanner) Err() error { return s.err }

// recHeap is a min-heap of parsed records by timestamp.
type recHeap []Parsed

func (h recHeap) Len() int           { return len(h) }
func (h recHeap) Less(i, j int) bool { return h[i].Time().Before(h[j].Time()) }
func (h recHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x any)        { *h = append(*h, x.(Parsed)) }
func (h *recHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
