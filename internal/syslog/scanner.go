package syslog

import (
	"bufio"
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"time"
)

// ScanStats counts what a scan encountered, by category, so the ingest
// path can report the *shape* of a log's corruption — the accounting the
// field studies behind the paper spend real effort on before any analysis
// runs.
type ScanStats struct {
	// Lines is the total number of input lines.
	Lines int
	// CEs, DUEs and HETs count the well-formed records delivered.
	CEs  int
	DUEs int
	HETs int
	// Other counts unrecognized kernel chatter (not an error).
	Other int
	// Malformed counts record lines that failed to parse; it is always
	// Truncated + Garbage.
	Malformed int
	// Truncated counts malformed lines classified as cut short
	// (ErrTruncated); Garbage counts the garbled remainder (ErrGarbled).
	Truncated int
	Garbage   int
	// Duplicated counts record lines suppressed as exact duplicates of a
	// recent line (syslog relay at-least-once delivery). Only counted
	// when a dedup window is configured.
	Duplicated int
	// Reordered counts records that arrived after a later-timestamped
	// record but were resequenced within the reorder window (recovered,
	// and included in the kind counts above).
	Reordered int
	// DroppedOutOfOrder counts records that arrived too late for the
	// reorder window and were discarded to preserve output time order.
	DroppedOutOfOrder int
}

// ScanConfig tunes the scanner's corruption tolerance. The zero value is
// the strict-ordering, no-tolerance behaviour of the raw parser: no
// dedup, no reordering, malformed lines skipped and counted.
type ScanConfig struct {
	// Strict makes the first malformed record line a scan error
	// (Scan returns false and Err reports the parse failure) instead of
	// a counted skip.
	Strict bool
	// DedupWindow suppresses a record line identical to one of the last
	// N record lines (0 disables). Real repeated errors can render as
	// identical lines too; suppressions are counted, not silent.
	DedupWindow int
	// ReorderWindow buffers records and emits them in timestamp order,
	// tolerating arrival skew up to the window (0 disables). Records
	// later than the window are dropped and counted.
	ReorderWindow time.Duration
}

// Scanner streams a syslog and yields parsed records, tolerating (but
// counting) malformed record lines, like the paper's handling of invalid
// telemetry: excluded, accounted for, and expected to be rare. With a
// ScanConfig it additionally absorbs relay duplication and bounded
// arrival reordering.
//
// Scanning is allocation-free per line: each line is parsed in place from
// the bufio buffer through the Decoder's byte codec; no per-line string is
// ever materialized.
type Scanner struct {
	sc    *bufio.Scanner
	cfg   ScanConfig
	dec   Decoder
	stats ScanStats
	cur   Parsed
	err   error

	// dedup ring over recent record lines; entry buffers are reused.
	recent [][]byte
	rpos   int

	// reorder machinery (cfg.ReorderWindow > 0).
	pending recHeap
	// ready is the emit queue; rhead indexes the next record so pops
	// never re-slice the front (which would shrink the backing array and
	// force a reallocation per record). Once drained, both reset and the
	// array is reused.
	ready     []Parsed
	rhead     int
	maxSeen   time.Time
	watermark time.Time
	eof       bool

	// consumed is the byte offset just past the last line the split
	// function handed to Scan — the resume point a Checkpoint captures.
	// The bufio read-ahead beyond it is invisible to this count.
	consumed int64
}

// NewScanner wraps a reader with the zero-tolerance configuration. Lines
// up to 1 MiB are supported.
func NewScanner(r io.Reader) *Scanner {
	return NewScannerConfig(r, ScanConfig{})
}

// NewScannerConfig wraps a reader with explicit corruption tolerance.
func NewScannerConfig(r io.Reader, cfg ScanConfig) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	s := &Scanner{sc: sc, cfg: cfg}
	sc.Split(func(data []byte, atEOF bool) (advance int, token []byte, err error) {
		advance, token, err = bufio.ScanLines(data, atEOF)
		s.consumed += int64(advance)
		return advance, token, err
	})
	if cfg.DedupWindow > 0 {
		s.recent = make([][]byte, 0, cfg.DedupWindow)
	}
	return s
}

// Offset returns the byte offset just past the last input line consumed
// by Scan. Input the scanner has read ahead but not yet handed to Scan is
// not counted, so restarting a new Scanner at this offset (with the state
// from Checkpoint) continues the record stream exactly.
func (s *Scanner) Offset() int64 { return s.consumed }

// Checkpoint is a resumable snapshot of a Scanner: the input offset plus
// the tolerance state (dedup ring, reorder buffer, pending emits) that
// spans lines. Taken between Scan calls, it lets a restarted process
// reopen the log, seek to Offset, and Restore to produce the identical
// remaining record sequence — including suppressions and resequencing
// decisions that depend on lines before the offset.
type Checkpoint struct {
	// Offset is the resume position in the input, as per (*Scanner).Offset.
	Offset int64
	// Stats is the accounting at the checkpoint.
	Stats ScanStats

	// recent/rpos snapshot the dedup ring; pending the reorder heap;
	// ready/maxSeen/watermark the emit queue and its time cursors.
	recent    [][]byte
	rpos      int
	pending   []Parsed
	ready     []Parsed
	maxSeen   time.Time
	watermark time.Time
}

// Checkpoint snapshots the scanner between Scan calls. The snapshot is a
// deep copy: further scanning does not mutate it.
func (s *Scanner) Checkpoint() Checkpoint {
	cp := Checkpoint{
		Offset:    s.consumed,
		Stats:     s.stats,
		rpos:      s.rpos,
		maxSeen:   s.maxSeen,
		watermark: s.watermark,
	}
	if len(s.recent) > 0 {
		cp.recent = make([][]byte, len(s.recent))
		for i, b := range s.recent {
			cp.recent[i] = append([]byte(nil), b...)
		}
	}
	if len(s.pending) > 0 {
		cp.pending = append([]Parsed(nil), s.pending...)
	}
	if s.rhead < len(s.ready) {
		cp.ready = append([]Parsed(nil), s.ready[s.rhead:]...)
	}
	return cp
}

// Restore loads a Checkpoint into a freshly constructed Scanner whose
// reader is positioned at cp.Offset. The scanner must have the same
// ScanConfig as the one that produced the checkpoint and must not have
// scanned yet; subsequent Scan calls yield the same records the original
// scanner would have yielded past the checkpoint.
func (s *Scanner) Restore(cp Checkpoint) error {
	if s.consumed != 0 || s.stats.Lines != 0 {
		return errors.New("syslog: Restore on a scanner that has already scanned")
	}
	s.consumed = cp.Offset
	s.stats = cp.Stats
	s.rpos = cp.rpos
	s.maxSeen = cp.maxSeen
	s.watermark = cp.watermark
	if len(cp.recent) > 0 {
		s.recent = make([][]byte, len(cp.recent))
		for i, b := range cp.recent {
			s.recent[i] = append([]byte(nil), b...)
		}
	}
	// A copy of a heap preserves the heap invariant; no re-push needed.
	if len(cp.pending) > 0 {
		s.pending = append(recHeap(nil), cp.pending...)
	}
	if len(cp.ready) > 0 {
		s.ready = append([]Parsed(nil), cp.ready...)
	}
	return nil
}

// Scan advances to the next well-formed record (CE, DUE or HET), skipping
// noise and malformed lines. It returns false at end of input, on a read
// error, or (in strict mode) on the first malformed record line; see Err.
func (s *Scanner) Scan() bool {
	for {
		if s.rhead < len(s.ready) {
			s.cur = s.ready[s.rhead]
			s.rhead++
			if s.rhead == len(s.ready) {
				s.ready = s.ready[:0]
				s.rhead = 0
			}
			s.countKind(s.cur.Kind)
			return true
		}
		if s.err != nil || s.eof {
			return false
		}
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				s.err = fmt.Errorf("syslog: read: %w", err)
				return false
			}
			s.eof = true
			s.drain(true)
			continue
		}
		s.stats.Lines++
		line := s.sc.Bytes()
		p, err := s.dec.ParseLineBytes(line)
		if err != nil {
			s.stats.Malformed++
			switch {
			case errors.Is(err, ErrTruncated):
				s.stats.Truncated++
			default:
				s.stats.Garbage++
			}
			if s.cfg.Strict {
				s.err = fmt.Errorf("syslog: line %d: %w", s.stats.Lines, err)
				return false
			}
			continue
		}
		if p.Kind == KindOther {
			s.stats.Other++
			continue
		}
		if s.isDuplicate(line) {
			s.stats.Duplicated++
			continue
		}
		s.accept(p)
	}
}

// accept routes a parsed record through the reorder buffer (or straight
// to ready when reordering is disabled).
func (s *Scanner) accept(p Parsed) {
	if s.cfg.ReorderWindow <= 0 {
		s.ready = append(s.ready, p)
		return
	}
	t := p.Time()
	if !s.watermark.IsZero() && t.Before(s.watermark) {
		// Its slot has already been emitted; resequencing would break
		// output time order.
		s.stats.DroppedOutOfOrder++
		return
	}
	if t.Before(s.maxSeen) {
		s.stats.Reordered++
	}
	if t.After(s.maxSeen) {
		s.maxSeen = t
	}
	heap.Push(&s.pending, p)
	s.drain(false)
}

// drain moves pending records older than the reorder window (all of them
// at EOF) into the ready queue, advancing the watermark.
func (s *Scanner) drain(all bool) {
	for s.pending.Len() > 0 {
		oldest := s.pending[0].Time()
		if !all && s.maxSeen.Sub(oldest) < s.cfg.ReorderWindow {
			return
		}
		p := heap.Pop(&s.pending).(Parsed)
		s.watermark = p.Time()
		s.ready = append(s.ready, p)
	}
}

// isDuplicate checks the record line against the dedup ring and records
// it for future checks. Ring entries keep their backing arrays across
// replacements, so a warm ring costs no allocation per line.
func (s *Scanner) isDuplicate(line []byte) bool {
	if s.cfg.DedupWindow <= 0 {
		return false
	}
	for _, prev := range s.recent {
		if bytes.Equal(prev, line) {
			return true
		}
	}
	if len(s.recent) < s.cfg.DedupWindow {
		s.recent = append(s.recent, append([]byte(nil), line...))
	} else {
		s.recent[s.rpos] = append(s.recent[s.rpos][:0], line...)
		s.rpos = (s.rpos + 1) % s.cfg.DedupWindow
	}
	return false
}

func (s *Scanner) countKind(k Kind) {
	switch k {
	case KindCE:
		s.stats.CEs++
	case KindDUE:
		s.stats.DUEs++
	case KindHET:
		s.stats.HETs++
	}
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Parsed { return s.cur }

// Stats returns the accounting so far.
func (s *Scanner) Stats() ScanStats { return s.stats }

// Err returns the first read error (or, in strict mode, parse error), if
// any. In lenient mode malformed lines are not errors; they are counted
// in Stats.
func (s *Scanner) Err() error { return s.err }

// recHeap is a min-heap of parsed records by timestamp.
type recHeap []Parsed

func (h recHeap) Len() int           { return len(h) }
func (h recHeap) Less(i, j int) bool { return h[i].Time().Before(h[j].Time()) }
func (h recHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x any)        { *h = append(*h, x.(Parsed)) }
func (h *recHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
