// Package syslog defines the text log formats the simulated Astra writes
// and the strict parsers the ETL uses to read them back. Three record
// kinds share the stream, as on the real system (§2.3): correctable-error
// records drained by the EDAC poller, uncorrectable machine-check records,
// and Hardware Event Tracker records; arbitrary other kernel chatter is
// tolerated and classified as noise.
//
// Parsing is strict: a line that claims to be a CE/DUE/HET record but has
// malformed or inconsistent fields is an error, not a silent skip — the
// caller decides how to account for corruption (the dataset loader counts
// and reports it, mirroring the paper's handling of invalid sensor data).
package syslog

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/topology"
)

// Malformed record lines are classified into two corruption categories so
// the ingest path can report *how* a log went bad, not just that it did:
//
//   - ErrTruncated: the record was cut short — the marker and leading
//     fields parse but required trailing fields are missing (partial
//     write, rotation cut, relay MTU).
//   - ErrGarbled: the record's bytes are inconsistent or unparseable —
//     bad header, out-of-range or contradictory field values, duplicate
//     fields (bit rot, interleaved writes, forged lines).
//
// Every non-nil ParseLine error wraps exactly one of the two; test with
// errors.Is.
var (
	ErrTruncated = errors.New("record truncated")
	ErrGarbled   = errors.New("record garbled")
)

// Markers identifying record kinds within a syslog line.
const (
	ceMarker  = "kernel: EDAC tx2_mc: CE"
	dueMarker = "kernel: mce: [Hardware Error] DUE"
	hetMarker = "HET:"
)

// timeLayout is the timestamp format at the head of each line.
const timeLayout = time.RFC3339

// FormatCE renders a correctable-error record as a syslog line. It is a
// thin wrapper over AppendCE; hot paths should use the append form.
func FormatCE(r mce.CERecord) string {
	return string(AppendCE(make([]byte, 0, 160), r))
}

// FormatDUE renders an uncorrectable-error record as a syslog line. It is
// a thin wrapper over AppendDUE; hot paths should use the append form.
func FormatDUE(r mce.DUERecord) string {
	return string(AppendDUE(make([]byte, 0, 128), r))
}

// FormatHET renders a Hardware Event Tracker record as a syslog line. It
// is a thin wrapper over AppendHET; hot paths should use the append form.
func FormatHET(r het.Record) string {
	return string(AppendHET(make([]byte, 0, 128), r))
}

// Kind classifies a parsed line.
type Kind int

// Line kinds.
const (
	// KindOther is unrecognized kernel chatter (not an error).
	KindOther Kind = iota
	// KindCE is a correctable-error record.
	KindCE
	// KindDUE is an uncorrectable-error record.
	KindDUE
	// KindHET is a Hardware Event Tracker record.
	KindHET
)

// Parsed is the result of parsing one syslog line; exactly the field
// matching Kind is meaningful.
type Parsed struct {
	Kind Kind
	CE   mce.CERecord
	DUE  mce.DUERecord
	HET  het.Record
}

// Time returns the record's timestamp (zero for KindOther).
func (p Parsed) Time() time.Time {
	switch p.Kind {
	case KindCE:
		return p.CE.Time
	case KindDUE:
		return p.DUE.Time
	case KindHET:
		return p.HET.Time
	default:
		return time.Time{}
	}
}

// ParseLine classifies and parses one syslog line. Lines bearing none of
// the record markers return Kind Other and no error; lines bearing a
// marker but failing validation return an error describing the corruption,
// wrapping ErrTruncated or ErrGarbled.
func ParseLine(line string) (Parsed, error) {
	switch {
	case strings.Contains(line, ceMarker):
		ce, err := parseCE(line)
		return Parsed{Kind: KindCE, CE: ce}, classify(err)
	case strings.Contains(line, dueMarker):
		due, err := parseDUE(line)
		return Parsed{Kind: KindDUE, DUE: due}, classify(err)
	case strings.Contains(line, hetMarker):
		h, err := parseHET(line)
		return Parsed{Kind: KindHET, HET: h}, classify(err)
	default:
		return Parsed{Kind: KindOther}, nil
	}
}

// classify guarantees every parse error wraps one of the two corruption
// categories; errors not tagged at the failure site default to garbled.
func classify(err error) error {
	if err == nil || errors.Is(err, ErrTruncated) || errors.Is(err, ErrGarbled) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrGarbled, err)
}

// header parses the leading "<timestamp> <host> " of a record line and
// returns the remainder after the given marker.
func header(line, marker string) (time.Time, topology.NodeID, string, error) {
	idx := strings.Index(line, marker)
	head := strings.Fields(line[:idx])
	if len(head) != 2 {
		return time.Time{}, 0, "", fmt.Errorf("syslog: malformed header %q", line[:idx])
	}
	ts, err := time.Parse(timeLayout, head[0])
	if err != nil {
		return time.Time{}, 0, "", fmt.Errorf("syslog: bad timestamp: %w", err)
	}
	node, err := topology.ParseNodeID(head[1])
	if err != nil {
		return time.Time{}, 0, "", err
	}
	return ts.UTC(), node, strings.TrimSpace(line[idx+len(marker):]), nil
}

// kvFields splits "k=v" fields into a map, rejecting duplicates and
// malformed pairs. A malformed *final* field is classified as truncation
// (the cut landed mid-field); anywhere else it is garbling.
func kvFields(s string) (map[string]string, error) {
	out := map[string]string{}
	fields := strings.Fields(s)
	for i, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			cat := ErrGarbled
			if i == len(fields)-1 {
				cat = ErrTruncated
			}
			return nil, fmt.Errorf("%w: syslog: malformed field %q", cat, f)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("%w: syslog: duplicate field %q", ErrGarbled, k)
		}
		out[k] = v
	}
	return out, nil
}

// needInt extracts an integer field. Values must be exact digit strings —
// decimal digits for base 10, hex digits with an optional "0x" prefix for
// base 16. strconv's wider syntax ("+5", "-0", a "0x" prefix aliasing into
// a decimal field) is rejected so garbled bytes cannot alias to valid
// fields.
func needInt(kv map[string]string, key string, base int, lo, hi int64) (int64, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("%w: syslog: missing field %q", ErrTruncated, key)
	}
	if base == 16 {
		v = strings.TrimPrefix(v, "0x")
	}
	if !exactDigits(v, base) {
		return 0, fmt.Errorf("%w: syslog: field %q: not exact base-%d digits: %q", ErrGarbled, key, base, v)
	}
	n, err := strconv.ParseInt(v, base, 64)
	if err != nil {
		return 0, fmt.Errorf("syslog: field %q: %w", key, err)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("syslog: field %q = %d out of [%d, %d]", key, n, lo, hi)
	}
	return n, nil
}

// exactDigits reports whether v is one or more digits of the given base,
// nothing else.
func exactDigits(v string, base int) bool {
	if v == "" {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= '0' && c <= '9':
		case base == 16 && (c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'):
		default:
			return false
		}
	}
	return true
}

func parseCE(line string) (mce.CERecord, error) {
	ts, node, rest, err := header(line, ceMarker)
	if err != nil {
		return mce.CERecord{}, err
	}
	kv, err := kvFields(rest)
	if err != nil {
		return mce.CERecord{}, err
	}
	slotName, ok := kv["slot"]
	if !ok {
		return mce.CERecord{}, fmt.Errorf("%w: syslog: missing field \"slot\"", ErrTruncated)
	}
	slot, err := topology.ParseSlot(slotName)
	if err != nil {
		return mce.CERecord{}, err
	}
	socket, err := needInt(kv, "socket", 10, 0, topology.SocketsPerNode-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	if int(socket) != slot.Socket() {
		return mce.CERecord{}, fmt.Errorf("syslog: socket %d inconsistent with slot %s", socket, slot)
	}
	rank, err := needInt(kv, "rank", 10, 0, topology.RanksPerDIMM-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	bank, err := needInt(kv, "bank", 10, 0, topology.BanksPerRank-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	row, err := needInt(kv, "row", 16, 0, topology.RowsPerBank-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	col, err := needInt(kv, "col", 16, 0, topology.ColsPerRow-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	bitpos, err := needInt(kv, "bitpos", 16, 0, 1<<20)
	if err != nil {
		return mce.CERecord{}, err
	}
	addr, err := needInt(kv, "addr", 16, 0, topology.NodeMemBytes-1)
	if err != nil {
		return mce.CERecord{}, err
	}
	syndrome, err := needInt(kv, "syndrome", 16, 0, 255)
	if err != nil {
		return mce.CERecord{}, err
	}
	return mce.CERecord{
		Time: ts, Node: node, Socket: int(socket), Slot: slot,
		Rank: int(rank), Bank: int(bank), RowRaw: int(row), Col: int(col),
		BitPos: int(bitpos), Addr: topology.PhysAddr(addr), Syndrome: uint8(syndrome),
	}, nil
}

func parseDUE(line string) (mce.DUERecord, error) {
	ts, node, rest, err := header(line, dueMarker)
	if err != nil {
		return mce.DUERecord{}, err
	}
	kv, err := kvFields(rest)
	if err != nil {
		return mce.DUERecord{}, err
	}
	causeName, ok := kv["cause"]
	if !ok {
		return mce.DUERecord{}, fmt.Errorf("%w: syslog: missing field \"cause\"", ErrTruncated)
	}
	var cause faultmodel.DUECause
	switch causeName {
	case faultmodel.CauseUncorrectableECC.String():
		cause = faultmodel.CauseUncorrectableECC
	case faultmodel.CauseMachineCheck.String():
		cause = faultmodel.CauseMachineCheck
	default:
		return mce.DUERecord{}, fmt.Errorf("syslog: unknown DUE cause %q", causeName)
	}
	addr, err := needInt(kv, "addr", 16, 0, topology.NodeMemBytes-1)
	if err != nil {
		return mce.DUERecord{}, err
	}
	fatal, err := needInt(kv, "fatal", 10, 0, 1)
	if err != nil {
		return mce.DUERecord{}, err
	}
	return mce.DUERecord{
		Time: ts, Node: node, Addr: topology.PhysAddr(addr),
		Cause: cause, Fatal: fatal == 1,
	}, nil
}

func parseHET(line string) (het.Record, error) {
	ts, node, rest, err := header(line, hetMarker)
	if err != nil {
		return het.Record{}, err
	}
	kv, err := kvFields(rest)
	if err != nil {
		return het.Record{}, err
	}
	evName, ok := kv["event"]
	if !ok {
		return het.Record{}, fmt.Errorf("%w: syslog: missing field \"event\"", ErrTruncated)
	}
	ev, err := het.ParseEventType(evName)
	if err != nil {
		return het.Record{}, err
	}
	sevName, ok := kv["severity"]
	if !ok {
		return het.Record{}, fmt.Errorf("%w: syslog: missing field \"severity\"", ErrTruncated)
	}
	sev, err := het.ParseSeverity(sevName)
	if err != nil {
		return het.Record{}, err
	}
	rec := het.Record{Time: ts, Node: node, Type: ev, Severity: sev}
	if _, ok := kv["addr"]; ok {
		addr, err := needInt(kv, "addr", 16, 0, topology.NodeMemBytes-1)
		if err != nil {
			return het.Record{}, err
		}
		rec.Addr = topology.PhysAddr(addr)
	}
	return rec, nil
}
