package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

func sampleAt(node topology.NodeID, sensor topology.Sensor, minute simtime.Minute, v float64, valid bool) SensorSample {
	return SensorSample{Time: minute.Time(), Node: node, Sensor: sensor, Value: v, Valid: valid}
}

func TestSensorStoreWindowMean(t *testing.T) {
	base := simtime.MinuteOf(simtime.EnvStart)
	var samples []SensorSample
	// Values 10, 20, 30 at minutes base, base+10, base+20.
	for i, v := range []float64{10, 20, 30} {
		samples = append(samples, sampleAt(5, topology.SensorCPU1, base+simtime.Minute(10*i), v, true))
	}
	st := NewSensorStore(samples)
	if st.Series() != 1 || st.Samples(5, topology.SensorCPU1) != 3 {
		t.Fatalf("series/sample counts wrong")
	}
	// Window covering all three.
	if got := st.MeanBefore(5, topology.SensorCPU1, base+25, 30); got != 20 {
		t.Errorf("full-window mean = %v, want 20", got)
	}
	// Window covering only the last sample.
	if got := st.MeanBefore(5, topology.SensorCPU1, base+25, 6); got != 30 {
		t.Errorf("tail-window mean = %v, want 30", got)
	}
	// Empty window widens to the nearest sample.
	if got := st.MeanBefore(5, topology.SensorCPU1, base+500, 5); got != 30 {
		t.Errorf("widened mean = %v, want 30 (nearest)", got)
	}
	// Unknown series: NaN.
	if got := st.MeanBefore(6, topology.SensorCPU1, base, 10); !math.IsNaN(got) {
		t.Errorf("missing series mean = %v, want NaN", got)
	}
}

func TestSensorStoreDropsInvalid(t *testing.T) {
	base := simtime.MinuteOf(simtime.EnvStart)
	st := NewSensorStore([]SensorSample{
		sampleAt(1, topology.SensorDCPower, base, 300, true),
		sampleAt(1, topology.SensorDCPower, base+1, 65535, false),
	})
	if st.Samples(1, topology.SensorDCPower) != 1 {
		t.Fatalf("invalid sample retained")
	}
	if got := st.MeanBefore(1, topology.SensorDCPower, base+2, 5); got != 300 {
		t.Errorf("mean polluted by invalid sample: %v", got)
	}
}

func TestSensorStoreMonthlyMean(t *testing.T) {
	mk := simtime.MonthKey(simtime.EnvStart.AddDate(0, 1, 0))
	start := simtime.MinuteOf(simtime.MonthKeyTime(mk))
	var samples []SensorSample
	for i := 0; i < 100; i++ {
		samples = append(samples, sampleAt(2, topology.SensorDIMMACEG, start+simtime.Minute(i*60), 40, true))
	}
	st := NewSensorStore(samples)
	if got := st.MonthlyMean(2, topology.SensorDIMMACEG, mk); got != 40 {
		t.Errorf("monthly mean = %v, want 40", got)
	}
}

func TestSensorStoreAgreesWithModel(t *testing.T) {
	// Round trip: export the procedural telemetry, re-parse it, and check
	// the recorded store reproduces the model's monthly means.
	cfg := smallConfig(91)
	cfg.Nodes = 40
	ds, err := Build(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteSensorCSV(&buf, 1, 180); err != nil { // every 3 h, all nodes
		t.Fatal(err)
	}
	samples, err := ReadSensorCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := NewSensorStore(samples)
	mk := simtime.MonthKey(simtime.EnvStart.AddDate(0, 1, 0))
	for node := topology.NodeID(0); node < 40; node += 7 {
		for _, sensor := range []topology.Sensor{topology.SensorCPU1, topology.SensorDIMMJLNP, topology.SensorDCPower} {
			want := ds.Env.MonthlyMean(node, sensor, mk)
			got := st.MonthlyMean(node, sensor, mk)
			tol := 1.0
			if sensor == topology.SensorDCPower {
				tol = 8
			}
			if math.Abs(got-want) > tol {
				t.Errorf("node %d %v: recorded %v vs model %v", node, sensor, got, want)
			}
		}
	}
	// MeanBefore windows agree too.
	at := simtime.MinuteOf(simtime.EnvStart) + 10*simtime.MinutesPerDay
	want := ds.Env.MeanBefore(3, topology.SensorCPU1, at, simtime.MinutesPerDay)
	got := st.MeanBefore(3, topology.SensorCPU1, at, simtime.MinutesPerDay)
	if math.Abs(got-want) > 1.5 {
		t.Errorf("window mean: recorded %v vs model %v", got, want)
	}
}

func TestSensorStoreEmpty(t *testing.T) {
	st := NewSensorStore(nil)
	if st.Series() != 0 {
		t.Error("empty store has series")
	}
	if got := st.MeanBefore(0, topology.SensorCPU1, 0, 10); !math.IsNaN(got) {
		t.Errorf("empty store mean = %v", got)
	}
}

func TestSensorStoreUnsortedInput(t *testing.T) {
	base := simtime.MinuteOf(simtime.EnvStart)
	st := NewSensorStore([]SensorSample{
		sampleAt(1, topology.SensorCPU1, base+20, 30, true),
		sampleAt(1, topology.SensorCPU1, base, 10, true),
		sampleAt(1, topology.SensorCPU1, base+10, 20, true),
	})
	if got := st.MeanBefore(1, topology.SensorCPU1, base+25, 30); got != 20 {
		t.Errorf("unsorted input mean = %v, want 20", got)
	}
}
