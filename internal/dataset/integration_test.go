package dataset

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// TestRecordedSensorSourceDrivesAnalyses closes the ETL loop: the Fig 9
// and Fig 13 analyses run against the re-parsed sensor CSV (a
// SensorStore) and reach the same qualitative verdict as against the
// procedural model.
func TestRecordedSensorSourceDrivesAnalyses(t *testing.T) {
	cfg := smallConfig(95)
	cfg.Nodes = 60
	ds, err := Build(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteSensorCSV(&buf, 1, 240); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadSensorCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	store := NewSensorStore(samples)

	// Fig 13 deciles from recorded data vs the model: decile spreads of
	// the same magnitude, same no-trend verdict shape.
	fromStore := core.AnalyzeTempDeciles(ds.CERecords, store, cfg.Nodes)
	fromModel := core.AnalyzeTempDeciles(ds.CERecords, ds.Env, cfg.Nodes)
	if len(fromStore) != len(fromModel) {
		t.Fatal("panel counts differ")
	}
	for i := range fromStore {
		a, b := fromStore[i], fromModel[i]
		if len(a.Bins) == 0 || len(b.Bins) == 0 {
			t.Fatalf("panel %v missing bins", a.Sensor)
		}
		if d := a.Spread - b.Spread; d > 2 || d < -2 {
			t.Errorf("%v: decile spread recorded %v vs model %v", a.Sensor, a.Spread, b.Spread)
		}
	}

	// Fig 9 windows run end to end on the recorded store.
	windows := core.AnalyzeTempWindows(ds.CERecords, store, []int64{simtime.MinutesPerDay})
	if len(windows) != 1 {
		t.Fatal("window analysis failed")
	}
	total := 0
	for _, c := range windows[0].Counts {
		total += c
	}
	if total == 0 {
		t.Error("no CEs binned using recorded telemetry")
	}
}

// TestPipelineEndToEndViaSyslog replays the whole methodology over the
// text artifacts only: generate → syslog → parse → cluster → analyses,
// and cross-checks counts against the in-memory pipeline.
func TestPipelineEndToEndViaSyslog(t *testing.T) {
	cfg := smallConfig(96)
	cfg.Nodes = 150
	ds, err := Build(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 100); err != nil {
		t.Fatal(err)
	}
	ces, dues, hets, _, err := ReadSyslog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	faultsFromText := mustCluster(ces, core.DefaultClusterConfig())
	faultsFromMemory := mustCluster(ds.CERecords, core.DefaultClusterConfig())
	if len(faultsFromText) != len(faultsFromMemory) {
		t.Errorf("fault counts differ: text %d vs memory %d", len(faultsFromText), len(faultsFromMemory))
	}
	u := core.AnalyzeUncorrectable(hets, cfg.Nodes*topology.SlotsPerNode, cfg.Fault.End)
	if u.DUEs > len(dues) {
		t.Errorf("HET DUEs %d exceed machine-check records %d", u.DUEs, len(dues))
	}
	breakdown := core.BreakdownByMode(ces, faultsFromText)
	if breakdown.Total != len(ds.CERecords) {
		t.Errorf("text-path total %d != memory-path %d", breakdown.Total, len(ds.CERecords))
	}
}
