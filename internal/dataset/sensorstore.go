package dataset

import (
	"math"
	"sort"

	"repro/internal/simtime"
	"repro/internal/topology"
)

// SensorStore is a core.SensorSource backed by recorded sensor samples
// (for example the re-parsed open-data CSV) instead of the procedural
// model. Invalid samples are excluded at construction, mirroring the
// paper's exclusion of implausible readings (§2.2). Window means are
// O(log n) via per-series prefix sums.
//
// Because exported telemetry is subsampled, a window may contain few or no
// samples; MeanBefore then widens to the nearest recorded samples around
// the window (a recorded dataset can answer with *its* best estimate, but
// never invents precision).
type SensorStore struct {
	series map[seriesKey]*series
}

type seriesKey struct {
	node   topology.NodeID
	sensor topology.Sensor
}

type series struct {
	minutes []int64   // ascending
	prefix  []float64 // prefix[i] = sum of values[0:i]
}

// NewSensorStore indexes recorded samples, dropping invalid ones.
func NewSensorStore(samples []SensorSample) *SensorStore {
	st := &SensorStore{series: map[seriesKey]*series{}}
	type pair struct {
		minute int64
		value  float64
	}
	tmp := map[seriesKey][]pair{}
	for _, s := range samples {
		if !s.Valid {
			continue
		}
		k := seriesKey{node: s.Node, sensor: s.Sensor}
		tmp[k] = append(tmp[k], pair{int64(simtime.MinuteOf(s.Time)), s.Value})
	}
	for k, ps := range tmp {
		sort.Slice(ps, func(a, b int) bool { return ps[a].minute < ps[b].minute })
		se := &series{
			minutes: make([]int64, len(ps)),
			prefix:  make([]float64, len(ps)+1),
		}
		for i, p := range ps {
			se.minutes[i] = p.minute
			se.prefix[i+1] = se.prefix[i] + p.value
		}
		st.series[k] = se
	}
	return st
}

// Series returns the number of indexed (node, sensor) series.
func (st *SensorStore) Series() int { return len(st.series) }

// Samples returns the number of valid samples for one series.
func (st *SensorStore) Samples(node topology.NodeID, sensor topology.Sensor) int {
	se := st.series[seriesKey{node, sensor}]
	if se == nil {
		return 0
	}
	return len(se.minutes)
}

// rangeMean returns the mean of samples with minute in [lo, hi) and the
// sample count.
func (se *series) rangeMean(lo, hi int64) (float64, int) {
	i := sort.Search(len(se.minutes), func(k int) bool { return se.minutes[k] >= lo })
	j := sort.Search(len(se.minutes), func(k int) bool { return se.minutes[k] >= hi })
	if j <= i {
		return 0, 0
	}
	return (se.prefix[j] - se.prefix[i]) / float64(j-i), j - i
}

// nearest returns the value of the sample closest to minute m.
func (se *series) nearest(m int64) float64 {
	i := sort.Search(len(se.minutes), func(k int) bool { return se.minutes[k] >= m })
	switch {
	case len(se.minutes) == 0:
		return math.NaN()
	case i == 0:
		return se.prefix[1] - se.prefix[0]
	case i == len(se.minutes):
		return se.prefix[i] - se.prefix[i-1]
	}
	if se.minutes[i]-m < m-se.minutes[i-1] {
		return se.prefix[i+1] - se.prefix[i]
	}
	return se.prefix[i] - se.prefix[i-1]
}

// MeanBefore implements core.SensorSource: the mean of recorded samples
// over the n minutes preceding t, widening to the nearest sample when the
// window is empty. NaN when the series has no data at all.
func (st *SensorStore) MeanBefore(node topology.NodeID, sensor topology.Sensor, t simtime.Minute, n int64) float64 {
	se := st.series[seriesKey{node, sensor}]
	if se == nil || len(se.minutes) == 0 {
		return math.NaN()
	}
	if mean, cnt := se.rangeMean(int64(t)-n, int64(t)); cnt > 0 {
		return mean
	}
	return se.nearest(int64(t) - n/2)
}

// MonthlyMean implements core.SensorSource over a calendar month.
func (st *SensorStore) MonthlyMean(node topology.NodeID, sensor topology.Sensor, monthKey int) float64 {
	start := simtime.MinuteOf(simtime.MonthKeyTime(monthKey))
	end := simtime.MinuteOf(simtime.MonthKeyTime(monthKey + 1))
	return st.MeanBefore(node, sensor, end, int64(end-start))
}
