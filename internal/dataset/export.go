package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/envmodel"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/syslog"
	"repro/internal/topology"
)

// linePool recycles the per-line append buffers the streaming emitters
// render into, so writing a multi-gigabyte release allocates a handful of
// buffers total instead of one string per record.
var linePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// WriteSyslog renders the CE, DUE and HET record streams as one merged,
// time-ordered syslog, interleaving a line of unrelated kernel chatter
// every noiseEvery records (0 disables) so parsers are exercised on
// realistic input. Records are rendered through the zero-allocation wire
// codec into a pooled buffer and written straight to a buffered writer —
// no per-line string is ever built.
func (ds *Dataset) WriteSyslog(w io.Writer, noiseEvery int) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	ci, di, hi := 0, 0, 0
	n := 0
	rng := simrand.NewStream(ds.Config.Seed).Derive("syslog-noise")
	bufp := linePool.Get().(*[]byte)
	buf := *bufp
	defer func() { *bufp = buf; linePool.Put(bufp) }()
	// emit writes the rendered line in buf plus its newline, then any due
	// noise line (reusing the same buffer).
	emit := func() error {
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		n++
		if noiseEvery > 0 && n%noiseEvery == 0 {
			buf = syslog.AppendTimestamp(buf[:0], ds.timeCursor(ci, di, hi))
			buf = append(buf, ' ')
			buf = topology.NodeID(rng.IntN(ds.Config.Nodes)).AppendString(buf)
			buf = append(buf, " kernel: slurmd["...)
			buf = strconv.AppendInt(buf, int64(1000+rng.IntN(9000)), 10)
			buf = append(buf, "]: job step completed\n"...)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}
	for ci < len(ds.CERecords) || di < len(ds.DUERecords) || hi < len(ds.HETRecords) {
		switch ds.nextStream(ci, di, hi) {
		case 0:
			buf = syslog.AppendCE(buf[:0], ds.CERecords[ci])
			if err := emit(); err != nil {
				return err
			}
			ci++
		case 1:
			buf = syslog.AppendDUE(buf[:0], ds.DUERecords[di])
			if err := emit(); err != nil {
				return err
			}
			di++
		default:
			buf = syslog.AppendHET(buf[:0], ds.HETRecords[hi])
			if err := emit(); err != nil {
				return err
			}
			hi++
		}
	}
	return bw.Flush()
}

// nextStream picks which stream has the earliest pending record.
func (ds *Dataset) nextStream(ci, di, hi int) int {
	far := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	tc, td, th := far, far, far
	if ci < len(ds.CERecords) {
		tc = ds.CERecords[ci].Time
	}
	if di < len(ds.DUERecords) {
		td = ds.DUERecords[di].Time
	}
	if hi < len(ds.HETRecords) {
		th = ds.HETRecords[hi].Time
	}
	switch {
	case !tc.After(td) && !tc.After(th):
		return 0
	case !td.After(th):
		return 1
	default:
		return 2
	}
}

func (ds *Dataset) timeCursor(ci, di, hi int) time.Time {
	if ci < len(ds.CERecords) {
		return ds.CERecords[ci].Time
	}
	if hi < len(ds.HETRecords) {
		return ds.HETRecords[hi].Time
	}
	if di < len(ds.DUERecords) {
		return ds.DUERecords[di].Time
	}
	return ds.Config.Fault.End
}

// ceCSVHeader matches the paper's §2.4 release schema: "timestamp, node
// ID, socket, type of failure, DIMM slot, row, rank, bank, bit position,
// physical address and vendor-specific syndrome data".
var ceCSVHeader = []string{"timestamp", "node", "socket", "type", "slot", "row", "rank", "bank", "bitpos", "addr", "syndrome"}

// WriteCETelemetryCSV writes the dataset's CE records in the open-data
// CSV schema.
func (ds *Dataset) WriteCETelemetryCSV(w io.Writer) error {
	return WriteCERecordsCSV(w, ds.CERecords)
}

// WriteCERecordsCSV writes arbitrary CE records in the open-data CSV
// schema (used by the ETL tool on parsed logs). No field ever needs CSV
// quoting, so rows are rendered into a pooled buffer with the append
// emitters instead of going through encoding/csv's per-row []string.
func WriteCERecordsCSV(w io.Writer, records []mce.CERecord) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(strings.Join(ceCSVHeader, ",") + "\n"); err != nil {
		return err
	}
	bufp := linePool.Get().(*[]byte)
	buf := *bufp
	defer func() { *bufp = buf; linePool.Put(bufp) }()
	for i := range records {
		r := &records[i]
		buf = syslog.AppendTimestamp(buf[:0], r.Time)
		buf = append(buf, ',')
		buf = r.Node.AppendString(buf)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Socket), 10)
		buf = append(buf, ",mem-ce,"...)
		buf = r.Slot.AppendName(buf)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.RowRaw), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Rank), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Bank), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.BitPos), 10)
		buf = append(buf, ",0x"...)
		buf = strconv.AppendUint(buf, uint64(r.Addr), 16)
		buf = append(buf, ",0x"...)
		buf = strconv.AppendUint(buf, uint64(r.Syndrome), 16)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCETelemetryCSV parses the open-data CE CSV back into records; the
// column field is reconstructed from the physical address.
func ReadCETelemetryCSV(r io.Reader) ([]mce.CERecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(ceCSVHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: CE CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: CE CSV empty")
	}
	out := make([]mce.CERecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		rec, err := parseCECSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("dataset: CE CSV row %d: %w", i+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseCECSVRow(row []string) (mce.CERecord, error) {
	ts, err := time.Parse(time.RFC3339, row[0])
	if err != nil {
		return mce.CERecord{}, err
	}
	node, err := topology.ParseNodeID(row[1])
	if err != nil {
		return mce.CERecord{}, err
	}
	slot, err := topology.ParseSlot(row[4])
	if err != nil {
		return mce.CERecord{}, err
	}
	ints := make([]int64, 0, 5)
	for _, idx := range []int{2, 5, 6, 7, 8} {
		v, err := strconv.ParseInt(row[idx], 10, 64)
		if err != nil {
			return mce.CERecord{}, err
		}
		ints = append(ints, v)
	}
	addr, err := parseHexCell(row[9], 64)
	if err != nil {
		return mce.CERecord{}, err
	}
	syn, err := parseHexCell(row[10], 8)
	if err != nil {
		return mce.CERecord{}, err
	}
	rec := mce.CERecord{
		Time: ts.UTC(), Node: node, Socket: int(ints[0]), Slot: slot,
		RowRaw: int(ints[1]), Rank: int(ints[2]), Bank: int(ints[3]),
		BitPos: int(ints[4]), Addr: topology.PhysAddr(addr), Syndrome: uint8(syn),
	}
	cell, _, err := topology.DecodePhysAddr(node, rec.Addr)
	if err != nil {
		return mce.CERecord{}, err
	}
	rec.Col = cell.Col
	return rec, nil
}

// SensorSample is one row of the environmental release.
type SensorSample struct {
	Time   time.Time
	Node   topology.NodeID
	Sensor topology.Sensor
	Value  float64
	// Valid reports whether the value passes the plausibility filter;
	// invalid samples are retained in the file (as on the real system)
	// and excluded during analysis.
	Valid bool
}

// WriteSensorCSV writes sensor telemetry over the environmental window,
// subsampled by nodeStride and minuteStride (both >= 1) to keep export
// sizes manageable — the full-rate data is ~2.7e9 samples.
func (ds *Dataset) WriteSensorCSV(w io.Writer, nodeStride, minuteStride int) error {
	if nodeStride < 1 || minuteStride < 1 {
		return fmt.Errorf("dataset: strides must be >= 1")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString("timestamp,node,sensor,value\n"); err != nil {
		return err
	}
	start := simtime.MinuteOf(simtime.EnvStart)
	end := simtime.MinuteOf(simtime.EnvEnd)
	bufp := linePool.Get().(*[]byte)
	buf := *bufp
	defer func() { *bufp = buf; linePool.Put(bufp) }()
	var pfx []byte
	for n := 0; n < ds.Config.Nodes; n += nodeStride {
		node := topology.NodeID(n)
		for m := start; m < end; m += simtime.Minute(minuteStride) {
			// The "timestamp,node," prefix is shared by NumSensors rows.
			pfx = syslog.AppendTimestamp(pfx[:0], m.Time())
			pfx = append(pfx, ',')
			pfx = node.AppendString(pfx)
			pfx = append(pfx, ',')
			for s := topology.Sensor(0); s < topology.NumSensors; s++ {
				v, _ := ds.Env.Sample(node, s, m)
				buf = append(buf[:0], pfx...)
				buf = append(buf, s.String()...)
				buf = append(buf, ',')
				buf = strconv.AppendFloat(buf, v, 'f', 2, 64)
				buf = append(buf, '\n')
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadSensorCSV parses the environmental release, marking each sample's
// validity with the plausibility filter (§2.2's exclusion of invalid
// readings).
func ReadSensorCSV(r io.Reader) ([]SensorSample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: sensor CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: sensor CSV empty")
	}
	out := make([]SensorSample, 0, len(rows)-1)
	for i, row := range rows[1:] {
		s, err := parseSensorCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("dataset: sensor CSV row %d: %w", i+2, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// parseHexCell parses a "0x"-prefixed hex CSV cell; a cell too short to
// carry the prefix (truncated row) is an error, not a panic.
func parseHexCell(cell string, bits int) (uint64, error) {
	v, ok := strings.CutPrefix(cell, "0x")
	if !ok || v == "" {
		return 0, fmt.Errorf("malformed hex cell %q", cell)
	}
	return strconv.ParseUint(v, 16, bits)
}

func parseSensorCSVRow(row []string) (SensorSample, error) {
	ts, err := time.Parse(time.RFC3339, row[0])
	if err != nil {
		return SensorSample{}, err
	}
	node, err := topology.ParseNodeID(row[1])
	if err != nil {
		return SensorSample{}, err
	}
	sensor, err := topology.ParseSensor(row[2])
	if err != nil {
		return SensorSample{}, err
	}
	v, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return SensorSample{}, err
	}
	lo, hi := envmodel.PlausibleRange(sensor)
	return SensorSample{
		Time: ts.UTC(), Node: node, Sensor: sensor, Value: v,
		Valid: v >= lo && v <= hi,
	}, nil
}

// WriteReplacementsCSV writes the inventory replacement log.
func (ds *Dataset) WriteReplacementsCSV(w io.Writer) error {
	if ds.Inventory == nil {
		return fmt.Errorf("dataset: inventory not generated")
	}
	cw := csv.NewWriter(bufio.NewWriterSize(w, 1<<20))
	if err := cw.Write([]string{"date", "kind", "location", "old_serial", "new_serial"}); err != nil {
		return err
	}
	for _, rep := range ds.Inventory.Replacements {
		rec := []string{
			rep.Day.Time().Format("2006-01-02"),
			rep.Kind.String(),
			rep.Location(),
			rep.OldSerial,
			rep.NewSerial,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSyslog parses a merged syslog back into typed record streams with
// the maximally lenient policy: malformed lines are counted, nothing is
// deduplicated or reordered, and no malformed budget applies. Use
// ReadSyslogPolicy to opt into tolerance or strictness.
func ReadSyslog(r io.Reader) (ces []mce.CERecord, dues []mce.DUERecord, hets []het.Record, stats syslog.ScanStats, err error) {
	ces, dues, hets, rep, err := ReadSyslogPolicy(r, IngestPolicy{MaxMalformedFrac: -1})
	return ces, dues, hets, rep.ScanStats, err
}
