package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/topology"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Nodes = 300
	return cfg
}

func buildSmall(t testing.TB, seed uint64) *Dataset {
	t.Helper()
	ds, err := Build(testCtx, smallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildPipeline(t *testing.T) {
	ds := buildSmall(t, 61)
	if len(ds.CERecords) == 0 || len(ds.Pop.CEs) == 0 {
		t.Fatal("empty pipeline output")
	}
	// Conservation: logged + dropped == generated.
	if ds.EdacStats.Offered != uint64(len(ds.Pop.CEs)) {
		t.Errorf("offered %d != generated %d", ds.EdacStats.Offered, len(ds.Pop.CEs))
	}
	if ds.EdacStats.Logged != uint64(len(ds.CERecords)) {
		t.Errorf("logged %d != records %d", ds.EdacStats.Logged, len(ds.CERecords))
	}
	if ds.EdacStats.Logged+ds.EdacStats.Dropped != ds.EdacStats.Offered {
		t.Errorf("stats do not balance: %+v", ds.EdacStats)
	}
	// Bursty faults overflow the CE log: some loss, but bounded.
	if ds.EdacStats.Dropped == 0 {
		t.Error("no CE log loss; burst model not exercising the ring")
	}
	if f := ds.EdacStats.LossFraction(); f > 0.30 {
		t.Errorf("CE loss fraction = %v, implausibly high", f)
	}
	// DUEs are never dropped.
	if len(ds.DUERecords) != len(ds.Pop.DUEs) {
		t.Errorf("DUE records %d != generated %d", len(ds.DUERecords), len(ds.Pop.DUEs))
	}
	// Records are time-ordered.
	for i := 1; i < len(ds.CERecords); i++ {
		if ds.CERecords[i].Time.Before(ds.CERecords[i-1].Time) {
			t.Fatal("CE records out of order")
		}
	}
	if ds.Inventory == nil {
		t.Error("inventory missing")
	}
	if ds.Env == nil {
		t.Error("env model missing")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := buildSmall(t, 62)
	b := buildSmall(t, 62)
	if len(a.CERecords) != len(b.CERecords) || len(a.HETRecords) != len(b.HETRecords) {
		t.Fatal("same-seed datasets differ in size")
	}
	for i := range a.CERecords {
		if a.CERecords[i] != b.CERecords[i] {
			t.Fatal("same-seed CE records differ")
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(testCtx, Config{Nodes: 0}); err == nil {
		t.Error("Build with zero nodes should fail")
	}
}

func TestSyslogRoundTrip(t *testing.T) {
	ds := buildSmall(t, 63)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 500); err != nil {
		t.Fatal(err)
	}
	ces, dues, hets, stats, err := ReadSyslog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Malformed != 0 {
		t.Errorf("%d malformed lines in our own output", stats.Malformed)
	}
	if stats.Other == 0 {
		t.Error("noise lines missing")
	}
	if len(ces) != len(ds.CERecords) {
		t.Fatalf("CE round trip: %d vs %d", len(ces), len(ds.CERecords))
	}
	if len(dues) != len(ds.DUERecords) || len(hets) != len(ds.HETRecords) {
		t.Fatalf("DUE/HET round trip: %d/%d vs %d/%d", len(dues), len(hets), len(ds.DUERecords), len(ds.HETRecords))
	}
	for i := range ces {
		if ces[i] != ds.CERecords[i] {
			t.Fatalf("CE %d mismatch:\n got %+v\nwant %+v", i, ces[i], ds.CERecords[i])
		}
	}
}

func TestSyslogCorruptionTolerated(t *testing.T) {
	ds := buildSmall(t, 64)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt ~1 in 50 lines by truncation mid-field.
	lines := strings.Split(buf.String(), "\n")
	corrupted := 0
	for i := range lines {
		if i%50 == 25 && len(lines[i]) > 60 {
			lines[i] = lines[i][:60]
			corrupted++
		}
	}
	ces, _, _, stats, err := ReadSyslog(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Malformed == 0 {
		t.Error("corruption not detected")
	}
	if len(ces)+stats.Malformed+stats.DUEs+stats.HETs+stats.Other < len(lines)-1 {
		t.Error("lines unaccounted for")
	}
}

func TestCETelemetryCSVRoundTrip(t *testing.T) {
	ds := buildSmall(t, 65)
	var buf bytes.Buffer
	if err := ds.WriteCETelemetryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCETelemetryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.CERecords) {
		t.Fatalf("rows = %d, want %d", len(got), len(ds.CERecords))
	}
	for i := range got {
		if got[i] != ds.CERecords[i] {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, got[i], ds.CERecords[i])
		}
	}
}

func TestCETelemetryCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCETelemetryCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	bad := strings.Join(ceCSVHeader, ",") + "\nnot,a,real,row,a,b,c,d,e,f,g\n"
	if _, err := ReadCETelemetryCSV(strings.NewReader(bad)); err == nil {
		t.Error("garbage row accepted")
	}
}

func TestSensorCSVRoundTrip(t *testing.T) {
	ds := buildSmall(t, 66)
	var buf bytes.Buffer
	if err := ds.WriteSensorCSV(&buf, 100, 60*24*7); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadSensorCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	invalid := 0
	for _, s := range samples {
		if !s.Valid {
			invalid++
		}
	}
	// Invalid fraction must be well under 1% but nonzero on a large draw.
	frac := float64(invalid) / float64(len(samples))
	if frac >= 0.01 {
		t.Errorf("invalid sample fraction = %v", frac)
	}
	// All seven sensors appear.
	sensors := map[topology.Sensor]bool{}
	for _, s := range samples {
		sensors[s.Sensor] = true
	}
	if len(sensors) != int(topology.NumSensors) {
		t.Errorf("sensors present = %d, want %d", len(sensors), topology.NumSensors)
	}
}

func TestSensorCSVStrideValidation(t *testing.T) {
	ds := buildSmall(t, 67)
	if err := ds.WriteSensorCSV(&bytes.Buffer{}, 0, 1); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestReplacementsCSV(t *testing.T) {
	ds := buildSmall(t, 68)
	var buf bytes.Buffer
	if err := ds.WriteReplacementsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(ds.Inventory.Replacements)+1 {
		t.Errorf("lines = %d, want %d", lines, len(ds.Inventory.Replacements)+1)
	}
	// Inventory disabled: writing fails cleanly.
	cfg := smallConfig(68)
	cfg.Inventory = false
	ds2, err := Build(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.WriteReplacementsCSV(&bytes.Buffer{}); err == nil {
		t.Error("expected error without inventory")
	}
}

func TestDatasetVerify(t *testing.T) {
	ds := buildSmall(t, 97)
	if err := ds.Verify(); err != nil {
		t.Fatalf("clean dataset failed self-check: %v", err)
	}
	// Corrupt a record: self-check must catch it.
	ds.CERecords[0].Syndrome = 0
	if err := ds.Verify(); err == nil {
		t.Error("corrupted record passed self-check")
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	serialCfg := smallConfig(62)
	serialCfg.Parallelism = 1
	parCfg := smallConfig(62)
	parCfg.Parallelism = 8

	serial, err := Build(testCtx, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(testCtx, parCfg)
	if err != nil {
		t.Fatal(err)
	}

	if serial.EdacStats != par.EdacStats {
		t.Errorf("EDAC stats differ:\nserial   %+v\nparallel %+v", serial.EdacStats, par.EdacStats)
	}
	if len(serial.CERecords) != len(par.CERecords) {
		t.Fatalf("CE record counts differ: serial %d, parallel %d", len(serial.CERecords), len(par.CERecords))
	}
	for i := range serial.CERecords {
		if serial.CERecords[i] != par.CERecords[i] {
			t.Fatalf("CE record %d differs:\nserial   %+v\nparallel %+v", i, serial.CERecords[i], par.CERecords[i])
		}
	}
	if len(serial.DUERecords) != len(par.DUERecords) {
		t.Fatalf("DUE record counts differ: serial %d, parallel %d", len(serial.DUERecords), len(par.DUERecords))
	}
	for i := range serial.DUERecords {
		if serial.DUERecords[i] != par.DUERecords[i] {
			t.Fatalf("DUE record %d differs", i)
		}
	}
	if len(serial.HETRecords) != len(par.HETRecords) {
		t.Fatalf("HET record counts differ: serial %d, parallel %d", len(serial.HETRecords), len(par.HETRecords))
	}
	for i := range serial.HETRecords {
		if serial.HETRecords[i] != par.HETRecords[i] {
			t.Fatalf("HET record %d differs", i)
		}
	}
}
