package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"repro/internal/colfmt"
	"repro/internal/het"
	"repro/internal/mce"
	"repro/internal/syslog"
)

// IngestPolicy controls how dirty a telemetry file is allowed to be
// before reading it fails. The zero value is maximally lenient and
// tolerance-free at once: no dedup, no reordering, malformed lines
// skipped and counted, no malformed budget — the exact semantics the
// pristine-generator round-trip tests rely on.
type IngestPolicy struct {
	// Strict aborts on the first malformed record line.
	Strict bool
	// DedupWindow and ReorderWindow configure the scanner's relay-fault
	// tolerance (see syslog.ScanConfig).
	DedupWindow   int
	ReorderWindow time.Duration
	// MaxMalformedFrac fails the read when the malformed fraction of
	// record-bearing lines exceeds it (negative disables the budget; 0
	// means any malformed line is over budget). Mirrors the field-study
	// practice of rejecting a telemetry batch whose corruption rate says
	// the collector itself was broken.
	MaxMalformedFrac float64
	// Parallelism is the syslog parse worker count: 0 uses all CPUs, 1
	// forces the serial scanner. Output is bit-identical at any setting.
	Parallelism int
	// BlockSize is the parallel scanner's read-block size (0 uses
	// syslog.DefaultBlockSize). Ignored when Parallelism resolves to 1.
	BlockSize int
}

// IngestReport is the per-category accounting of one syslog ingest.
type IngestReport struct {
	syslog.ScanStats
	// MalformedFrac is Malformed over all record-bearing lines
	// (everything except recognized noise), 0 when none were seen.
	MalformedFrac float64
	// BudgetExceeded reports that MalformedFrac exceeded the policy's
	// MaxMalformedFrac (the read still returns what it salvaged).
	BudgetExceeded bool
}

// ReadSyslogPolicy parses a merged syslog into typed record streams under
// an ingest policy. On a budget violation the salvaged records and full
// report are returned alongside the error so callers can still inspect
// what the file held.
func ReadSyslogPolicy(r io.Reader, pol IngestPolicy) (ces []mce.CERecord, dues []mce.DUERecord, hets []het.Record, rep IngestReport, err error) {
	sc := syslog.NewBlockScanner(r, syslog.BlockScanConfig{
		ScanConfig: syslog.ScanConfig{
			Strict:        pol.Strict,
			DedupWindow:   pol.DedupWindow,
			ReorderWindow: pol.ReorderWindow,
		},
		Workers:   pol.Parallelism,
		BlockSize: pol.BlockSize,
	})
	defer sc.Close()
	for sc.Scan() {
		p := sc.Record()
		switch p.Kind {
		case syslog.KindCE:
			ces = append(ces, p.CE)
		case syslog.KindDUE:
			dues = append(dues, p.DUE)
		case syslog.KindHET:
			hets = append(hets, p.HET)
		}
	}
	rep.ScanStats = sc.Stats()
	if recordLines := rep.Lines - rep.Other; recordLines > 0 {
		rep.MalformedFrac = float64(rep.Malformed) / float64(recordLines)
	}
	if err = sc.Err(); err != nil {
		return ces, dues, hets, rep, err
	}
	if pol.MaxMalformedFrac >= 0 && rep.MalformedFrac > pol.MaxMalformedFrac {
		rep.BudgetExceeded = true
		return ces, dues, hets, rep, fmt.Errorf("dataset: malformed fraction %.4f exceeds budget %.4f (%d of %d record lines)",
			rep.MalformedFrac, pol.MaxMalformedFrac, rep.Malformed, rep.Lines-rep.Other)
	}
	return ces, dues, hets, rep, nil
}

// ReadRecords sniffs the input format and reads typed record streams
// from either a columnar replay file (colfmt) or a merged syslog text
// stream. The colfmt path bypasses text parsing entirely: the report's
// Lines/Malformed counters stay zero (the format is checksummed, not
// tolerated — any corruption is a hard error) and the ingest policy's
// tolerance knobs do not apply. Text input goes through
// ReadSyslogPolicy unchanged.
func ReadRecords(r io.Reader, pol IngestPolicy) (ces []mce.CERecord, dues []mce.DUERecord, hets []het.Record, rep IngestReport, err error) {
	br := bufio.NewReaderSize(r, 64*1024)
	prefix, _ := br.Peek(colfmt.MagicLen)
	if !colfmt.Sniff(prefix) {
		return ReadSyslogPolicy(br, pol)
	}
	recs, err := colfmt.Read(br)
	if err != nil {
		return nil, nil, nil, rep, fmt.Errorf("dataset: columnar read: %w", err)
	}
	rep.CEs = len(recs.CEs)
	rep.DUEs = len(recs.DUEs)
	rep.HETs = len(recs.HETs)
	return recs.CEs, recs.DUEs, recs.HETs, rep, nil
}

// CSVReport accounts for a lenient CSV read: how many data rows were
// seen, how many were rejected, and a capped sample of the reasons.
type CSVReport struct {
	Rows int
	Bad  int
	// Errors holds up to maxCSVErrors representative row errors.
	Errors []string
}

// maxCSVErrors caps the per-row error sample retained in a CSVReport so a
// fully corrupt multi-gigabyte file cannot balloon memory.
const maxCSVErrors = 10

func (c *CSVReport) addError(row int, err error) {
	c.Bad++
	if len(c.Errors) < maxCSVErrors {
		c.Errors = append(c.Errors, fmt.Sprintf("row %d: %v", row, err))
	}
}

// lenientRows iterates a CSV's data rows one at a time, tolerating rows
// with the wrong field count or broken quoting: parse is attempted per
// row, failures are counted and skipped. The header row is consumed and
// validated only for presence.
func lenientRows(r io.Reader, wantFields int, rep *CSVReport, handle func(row []string) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	if _, err := cr.Read(); err != nil {
		return fmt.Errorf("dataset: CSV header: %w", err)
	}
	for rowNum := 2; ; rowNum++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			rep.Rows++
			rep.addError(rowNum, err)
			continue
		}
		rep.Rows++
		if len(row) != wantFields {
			rep.addError(rowNum, fmt.Errorf("%d fields, want %d", len(row), wantFields))
			continue
		}
		if err := handle(row); err != nil {
			rep.addError(rowNum, err)
		}
	}
}

// ReadCETelemetryCSVLenient parses the open-data CE CSV, skipping and
// counting unparseable rows instead of aborting. The error is non-nil
// only when the file itself is unreadable (no header, I/O failure).
func ReadCETelemetryCSVLenient(r io.Reader) ([]mce.CERecord, CSVReport, error) {
	var out []mce.CERecord
	var rep CSVReport
	err := lenientRows(r, len(ceCSVHeader), &rep, func(row []string) error {
		rec, err := parseCECSVRow(row)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	return out, rep, err
}

// ReadSensorCSVLenient parses the environmental release, skipping and
// counting unparseable rows instead of aborting. Implausible-but-parsed
// values are kept with Valid=false, exactly as in the strict reader; rows
// that do not parse at all are dropped and counted.
func ReadSensorCSVLenient(r io.Reader) ([]SensorSample, CSVReport, error) {
	var out []SensorSample
	var rep CSVReport
	err := lenientRows(r, 4, &rep, func(row []string) error {
		s, err := parseSensorCSVRow(row)
		if err != nil {
			return err
		}
		out = append(out, s)
		return nil
	})
	return out, rep, err
}
