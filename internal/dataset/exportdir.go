package dataset

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strconv"

	"repro/internal/atomicio"
	"repro/internal/colfmt"
	"repro/internal/corrupt"
)

// ExportOptions configures a checkpointed directory export.
type ExportOptions struct {
	// NoiseEvery interleaves one kernel-noise line per N syslog records
	// (0 disables).
	NoiseEvery int
	// SensorNodeStride / SensorMinuteStride subsample the sensor CSV.
	SensorNodeStride   int
	SensorMinuteStride int
	// ScanStride writes an inventory scan file every N days (0 disables).
	ScanStride int
	// Dirty, when > 0, also writes corrupted copies of the syslog and CE
	// CSV at this combined mutation rate.
	Dirty float64
	// Resume skips artifacts already recorded in the directory's manifest
	// whose on-disk checksums still verify. The resumed tree is
	// byte-identical to a clean run, manifest included.
	Resume bool
	// Retry bounds re-attempts of each artifact on transient I/O errors;
	// the zero value uses atomicio.DefaultRetry.
	Retry atomicio.RetryPolicy
}

// ExportedFile is one artifact's outcome in an ExportReport.
type ExportedFile struct {
	Name    string
	SHA256  string
	Size    int64
	Records int64
	// Skipped reports that resume verified an existing file instead of
	// rewriting it.
	Skipped bool
}

// ExportReport summarizes an Export: which artifacts were written and
// which were skipped by resume.
type ExportReport struct {
	Files   []ExportedFile
	Written int
	Skipped int
}

// exportConfig is the manifest fingerprint: every option that changes the
// output bytes. A resume against a manifest with a different fingerprint
// (or seed) is refused rather than silently mixing two datasets.
func (ds *Dataset) exportConfig(opts ExportOptions) map[string]string {
	return map[string]string{
		"nodes":                strconv.Itoa(ds.Config.Nodes),
		"noise_every":          strconv.Itoa(opts.NoiseEvery),
		"sensor_node_stride":   strconv.Itoa(opts.SensorNodeStride),
		"sensor_minute_stride": strconv.Itoa(opts.SensorMinuteStride),
		"scan_stride":          strconv.Itoa(opts.ScanStride),
		"dirty":                strconv.FormatFloat(opts.Dirty, 'g', -1, 64),
	}
}

// artifact is one export unit: a relative slash-separated name plus a
// renderer. Rendering is deterministic, so an artifact can be retried,
// skipped, or re-rendered after a crash without changing its bytes.
type artifact struct {
	name  string
	write func(ctx context.Context, w io.Writer) error
}

// Export writes the dataset's release files into dir through fsys with
// crash-safe semantics: every artifact lands via temp-file + fsync +
// rename (a final path never holds a partial file), a checksummed
// MANIFEST.json is re-saved after each completed artifact (the checkpoint
// granularity), and transient I/O errors are retried under opts.Retry.
// With opts.Resume, artifacts whose manifest checksums verify against the
// existing files are skipped; the resulting tree — manifest included — is
// byte-identical to an uninterrupted run.
//
// On error (including ctx cancellation) the returned report covers the
// artifacts completed so far; the directory is left resumable.
func (ds *Dataset) Export(ctx context.Context, fsys atomicio.FS, dir string, opts ExportOptions) (*ExportReport, error) {
	rep := &ExportReport{}
	if opts.Dirty < 0 || opts.Dirty > 1 {
		return rep, fmt.Errorf("dataset: export: dirty rate %v out of [0, 1]", opts.Dirty)
	}
	if opts.SensorNodeStride < 1 || opts.SensorMinuteStride < 1 {
		return rep, fmt.Errorf("dataset: export: sensor strides must be >= 1")
	}
	cfg := ds.exportConfig(opts)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return rep, err
	}
	if opts.ScanStride > 0 {
		if err := fsys.MkdirAll(filepath.Join(dir, "scans"), 0o755); err != nil {
			return rep, err
		}
	}
	// Torn temp files from a killed run are invisible to readers (final
	// paths are only ever renamed into) but still occupy space.
	if err := atomicio.SweepTemps(fsys, dir); err != nil {
		return rep, err
	}
	if opts.ScanStride > 0 {
		if err := atomicio.SweepTemps(fsys, filepath.Join(dir, "scans")); err != nil {
			return rep, err
		}
	}

	manifest := atomicio.NewManifest(ds.Config.Seed, cfg)
	var prev *atomicio.Manifest
	if opts.Resume {
		m, err := atomicio.LoadManifest(fsys, dir)
		switch {
		case err == nil && m.ConfigMatches(ds.Config.Seed, cfg):
			prev = m
		case err == nil:
			return rep, fmt.Errorf("dataset: export: %s was produced with a different seed or config; refusing to resume (use a fresh directory)", atomicio.ManifestName)
		default:
			// No readable manifest: nothing to resume, fall through to a
			// clean build. A corrupt manifest is equivalent to none — the
			// files it described are unverifiable.
		}
	}

	arts, err := ds.artifacts(opts)
	if err != nil {
		return rep, err
	}
	// The manifest save IS the checkpoint: it must survive cancellation,
	// or an interrupt landing between an artifact's rename and its
	// manifest entry would discard the record of work just completed (and
	// resume would redo it). The save is small and bounded, so detaching
	// it from ctx costs nothing.
	saveCtx := context.WithoutCancel(ctx)
	for _, a := range arts {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		done, err := ds.exportOne(ctx, fsys, dir, a, opts, manifest, prev, rep)
		if err != nil {
			return rep, fmt.Errorf("dataset: export %s: %w", a.name, err)
		}
		rep.Files = append(rep.Files, done)
		if err := manifest.Save(saveCtx, fsys, dir); err != nil {
			return rep, fmt.Errorf("dataset: export: saving manifest: %w", err)
		}
	}
	return rep, nil
}

// exportOne writes (or, on resume, verifies and skips) a single artifact
// and records it in the in-progress manifest.
func (ds *Dataset) exportOne(ctx context.Context, fsys atomicio.FS, dir string, a artifact, opts ExportOptions, manifest, prev *atomicio.Manifest, rep *ExportReport) (ExportedFile, error) {
	if prev != nil {
		if err := prev.VerifyFile(fsys, dir, a.name); err == nil {
			e := prev.Files[a.name]
			manifest.SetFile(a.name, atomicio.WriteInfo{SHA256: e.SHA256, Size: e.Size}, e.Records)
			rep.Skipped++
			return ExportedFile{Name: a.name, SHA256: e.SHA256, Size: e.Size, Records: e.Records, Skipped: true}, nil
		}
		// Missing, truncated, or corrupted: rewrite it from scratch.
	}
	var records int64
	full := filepath.Join(dir, filepath.FromSlash(a.name))
	info, err := atomicio.WriteFileRetry(ctx, fsys, full, opts.Retry, func(w io.Writer) error {
		cw := &countingWriter{w: w, ctx: ctx}
		if err := a.write(ctx, cw); err != nil {
			return err
		}
		records = cw.lines
		return nil
	})
	if err != nil {
		return ExportedFile{}, err
	}
	manifest.SetFile(a.name, info, records)
	rep.Written++
	return ExportedFile{Name: a.name, SHA256: info.SHA256, Size: info.Size, Records: records}, nil
}

// artifacts returns the export units in their fixed order. The order is
// part of the checkpoint contract: a resumed run replays the same sequence
// and skips the verified prefix (and any other completed entries).
func (ds *Dataset) artifacts(opts ExportOptions) ([]artifact, error) {
	arts := []artifact{
		{"astra-syslog.log", func(ctx context.Context, w io.Writer) error {
			return ds.WriteSyslog(w, opts.NoiseEvery)
		}},
		{"ce-telemetry.csv", func(ctx context.Context, w io.Writer) error {
			return ds.WriteCETelemetryCSV(w)
		}},
	}
	if opts.Dirty > 0 {
		arts = append(arts,
			artifact{"astra-syslog-dirty.log", ds.dirtyArtifact(opts, func(w io.Writer) error {
				return ds.WriteSyslog(w, opts.NoiseEvery)
			}, false)},
			artifact{"ce-telemetry-dirty.csv", ds.dirtyArtifact(opts, ds.WriteCETelemetryCSV, true)},
		)
	}
	arts = append(arts,
		artifact{"sensors.csv", func(ctx context.Context, w io.Writer) error {
			return ds.WriteSensorCSV(w, opts.SensorNodeStride, opts.SensorMinuteStride)
		}},
		artifact{"replacements.csv", func(ctx context.Context, w io.Writer) error {
			return ds.WriteReplacementsCSV(w)
		}},
		// The columnar replay of the same records the syslog holds: readers
		// that only need typed streams skip text parsing entirely.
		artifact{"astra-records.col", func(ctx context.Context, w io.Writer) error {
			return colfmt.Write(w, colfmt.Records{
				CEs: ds.CERecords, DUEs: ds.DUERecords, HETs: ds.HETRecords,
			})
		}},
	)
	if opts.ScanStride > 0 {
		if ds.Inventory == nil {
			return nil, fmt.Errorf("dataset: export: inventory not generated")
		}
		days, err := ds.Inventory.ScanDays(opts.ScanStride)
		if err != nil {
			return nil, err
		}
		for _, day := range days {
			day := day
			arts = append(arts, artifact{
				name: "scans/scan-" + day.Time().Format("2006-01-02") + ".txt",
				write: func(ctx context.Context, w io.Writer) error {
					return ds.Inventory.WriteScanDay(w, ds.Config.Nodes, day)
				},
			})
		}
	}
	return arts, nil
}

// dirtyArtifact renders a clean stream through a freshly-seeded corruptor.
// The corruptor is constructed per attempt so retries and resumes replay
// identical mutations.
func (ds *Dataset) dirtyArtifact(opts ExportOptions, clean func(io.Writer) error, csv bool) func(context.Context, io.Writer) error {
	return func(ctx context.Context, w io.Writer) error {
		c := corrupt.New(corrupt.Uniform(ds.Config.Seed, opts.Dirty))
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(clean(pw)) }()
		var err error
		if csv {
			_, err = c.ProcessCSV(pr, w)
		} else {
			_, err = c.Process(pr, w)
		}
		if err != nil {
			// Unblock the producer goroutine if the consumer died first
			// (an injected write fault, cancellation).
			pr.CloseWithError(err)
			return err
		}
		return nil
	}
}

// countingWriter counts newlines (the manifest's record count) and polls
// ctx so a cancelled export stops between writes rather than rendering a
// multi-gigabyte artifact to completion first.
type countingWriter struct {
	w     io.Writer
	ctx   context.Context
	lines int64
	calls int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.calls++
	if c.calls&0xff == 0 {
		if err := c.ctx.Err(); err != nil {
			return 0, err
		}
	}
	n, err := c.w.Write(p)
	for _, b := range p[:n] {
		if b == '\n' {
			c.lines++
		}
	}
	return n, err
}
