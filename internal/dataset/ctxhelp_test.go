package dataset

import (
	"context"

	"repro/internal/core"
	"repro/internal/mce"
)

// testCtx is the context the legacy test call sites thread through the
// cancellable pipeline APIs.
var testCtx = context.Background()

// mustCluster adapts the ctx+error clustering API for test sites where an
// error is simply a test bug.
func mustCluster(records []mce.CERecord, cfg core.ClusterConfig) []core.Fault {
	faults, err := core.Cluster(testCtx, records, cfg)
	if err != nil {
		panic(err)
	}
	return faults
}
