package dataset

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/atomicio"
	"repro/internal/iofault"
)

// crashDS is the dataset shared by the crash tests. It is deliberately
// tiny (the crash invariants are size-independent) so the differential
// sweep can afford dozens of full exports.
var (
	crashOnce sync.Once
	crashDS   *Dataset
	crashRef  map[string]string
	crashErr  error
)

func crashDataset(t *testing.T) *Dataset {
	t.Helper()
	crashOnce.Do(func() {
		cfg := DefaultConfig(97)
		cfg.Nodes = 48
		crashDS, crashErr = Build(testCtx, cfg)
	})
	if crashErr != nil {
		t.Fatal(crashErr)
	}
	return crashDS
}

// crashOpts exercises every artifact class: noise-interleaved syslog,
// dirty copies, subsampled sensors, and per-day scans.
func crashOpts() ExportOptions {
	return ExportOptions{
		NoiseEvery:         50,
		SensorNodeStride:   64,
		SensorMinuteStride: 720,
		ScanStride:         60,
		Dirty:              0.02,
		Retry:              atomicio.RetryPolicy{Attempts: 1, Sleep: func(time.Duration) {}},
	}
}

// readTree reads every file under dir into a rel-path → content map.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	tree := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		tree[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// diffTrees fails the test when two directory trees differ anywhere.
func diffTrees(t *testing.T, label string, got, want map[string]string) {
	t.Helper()
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: missing %s", label, name)
			continue
		}
		if g != w {
			t.Errorf("%s: %s differs (%d vs %d bytes)", label, name, len(g), len(w))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: extra file %s", label, name)
		}
	}
}

// exportRef produces (once) the uninterrupted reference tree.
func exportRef(t *testing.T, ds *Dataset) map[string]string {
	t.Helper()
	if crashRef == nil {
		dir := t.TempDir()
		if _, err := ds.Export(testCtx, atomicio.OS, dir, crashOpts()); err != nil {
			t.Fatal(err)
		}
		crashRef = readTree(t, dir)
	}
	return crashRef
}

// checkCrashInvariant walks a crashed export directory: every file at a
// final path must be a complete artifact (byte-equal to the reference) or
// a valid manifest prefix; torn bytes may exist only in temp files.
func checkCrashInvariant(t *testing.T, label, dir string, ref map[string]string) {
	t.Helper()
	for name, content := range readTree(t, dir) {
		if atomicio.IsTemp(name) {
			continue // torn temps are the allowed crash residue
		}
		if filepath.Base(name) == atomicio.ManifestName {
			m, err := atomicio.ParseManifest([]byte(content))
			if err != nil {
				t.Errorf("%s: manifest at final path unparsable: %v", label, err)
				continue
			}
			for _, rec := range m.FileNames() {
				if err := m.VerifyFile(atomicio.OS, dir, rec); err != nil {
					t.Errorf("%s: manifest records unverifiable %s: %v", label, rec, err)
				}
			}
			continue
		}
		if want, ok := ref[name]; !ok {
			t.Errorf("%s: unexpected final-path file %s", label, name)
		} else if content != want {
			t.Errorf("%s: partial file visible at final path %s (%d of %d bytes)",
				label, name, len(content), len(want))
		}
	}
}

// TestExportCrashResumeDifferential is the acceptance test for the
// checkpoint/resume contract: kill the export at many seeded operation
// counts, verify no partial file is ever visible at a final path, resume,
// and require the resumed tree — manifest included — to be byte-identical
// to an uninterrupted run. Set ASTRA_CRASH_TESTS=1 to sweep every
// kill-point instead of a 24-point sample.
func TestExportCrashResumeDifferential(t *testing.T) {
	ds := crashDataset(t)
	ref := exportRef(t, ds)

	// Measure the operation space with a fault-free injector.
	probe := iofault.New(atomicio.OS, iofault.Config{Seed: 1})
	if _, err := ds.Export(testCtx, probe, t.TempDir(), crashOpts()); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 50 {
		t.Fatalf("operation space suspiciously small: %d", total)
	}

	var kills []int64
	if os.Getenv("ASTRA_CRASH_TESTS") == "1" {
		for k := int64(1); k <= total; k++ {
			kills = append(kills, k)
		}
	} else {
		// 24 kill-points spread across the run, endpoints included.
		const n = 24
		for i := 0; i < n; i++ {
			k := 1 + i*int(total-1)/(n-1)
			kills = append(kills, int64(k))
		}
	}

	for _, kill := range kills {
		dir := t.TempDir()
		fsys := iofault.New(atomicio.OS, iofault.Config{Seed: uint64(kill), KillAfterOps: kill})
		rep, err := ds.Export(testCtx, fsys, dir, crashOpts())
		if err == nil {
			t.Fatalf("kill=%d: export survived its own crash", kill)
		}
		if !errors.Is(err, iofault.ErrKilled) {
			t.Fatalf("kill=%d: err = %v, want ErrKilled in the chain", kill, err)
		}
		if rep == nil {
			t.Fatalf("kill=%d: nil report from failed export", kill)
		}
		checkCrashInvariant(t, labelKill(kill), dir, ref)

		// Resume on healthy storage must converge to the reference tree.
		rep2, err := ds.Export(testCtx, atomicio.OS, dir, func() ExportOptions {
			o := crashOpts()
			o.Resume = true
			return o
		}())
		if err != nil {
			t.Fatalf("kill=%d: resume failed: %v", kill, err)
		}
		if rep2.Written+rep2.Skipped != len(rep2.Files) {
			t.Errorf("kill=%d: report does not balance: %d+%d != %d",
				kill, rep2.Written, rep2.Skipped, len(rep2.Files))
		}
		diffTrees(t, labelKill(kill)+" resumed", readTree(t, dir), ref)
	}
}

func labelKill(k int64) string { return fmt.Sprintf("kill=%d", k) }

// TestExportTransientFaultsRetried drives the export through storage that
// fails a fraction of writes transiently; the retry policy must absorb
// them and still produce the exact reference tree.
func TestExportTransientFaultsRetried(t *testing.T) {
	ds := crashDataset(t)
	ref := exportRef(t, ds)

	dir := t.TempDir()
	fsys := iofault.New(atomicio.OS, iofault.Config{Seed: 23, TransientWrite: 0.02, TransientRead: 0.02})
	opts := crashOpts()
	opts.Retry = atomicio.RetryPolicy{Attempts: 25, Sleep: func(time.Duration) {}}
	if _, err := ds.Export(testCtx, fsys, dir, opts); err != nil {
		t.Fatalf("retry did not absorb transient faults: %v", err)
	}
	diffTrees(t, "transient", readTree(t, dir), ref)
}

// TestExportENOSPCThenResume fills the disk mid-export (hard failure, not
// retryable), then resumes on recovered storage and requires byte-for-byte
// convergence.
func TestExportENOSPCThenResume(t *testing.T) {
	ds := crashDataset(t)
	ref := exportRef(t, ds)

	failed := false
	for seed := uint64(1); seed <= 16 && !failed; seed++ {
		dir := t.TempDir()
		fsys := iofault.New(atomicio.OS, iofault.Config{Seed: seed, ENOSPC: 0.05})
		_, err := ds.Export(testCtx, fsys, dir, crashOpts())
		if err == nil {
			continue // this seed got lucky; try another
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("seed=%d: err = %v, want ENOSPC", seed, err)
		}
		failed = true
		checkCrashInvariant(t, "enospc", dir, ref)

		opts := crashOpts()
		opts.Resume = true
		if _, rerr := ds.Export(testCtx, atomicio.OS, dir, opts); rerr != nil {
			t.Fatalf("resume after ENOSPC: %v", rerr)
		}
		diffTrees(t, "enospc resumed", readTree(t, dir), ref)
	}
	if !failed {
		t.Fatal("no seed produced an ENOSPC failure; raise the rate")
	}
}

// cancelOnRenameFS cancels a context the moment the first artifact
// commits (renames into place), modelling a SIGINT that lands in the
// narrow window between an artifact's rename and its checkpoint.
type cancelOnRenameFS struct {
	atomicio.FS
	cancel context.CancelFunc
}

func (f cancelOnRenameFS) Rename(oldpath, newpath string) error {
	err := f.FS.Rename(oldpath, newpath)
	if err == nil && filepath.Base(newpath) != atomicio.ManifestName {
		f.cancel()
	}
	return err
}

// TestExportInterruptRecordsCompletedWork is the regression test for the
// checkpoint-save-under-cancellation bug: an interrupt right after an
// artifact commits must still record that artifact in the manifest (the
// save runs detached from the cancelled context), so resume skips it
// instead of redoing the work.
func TestExportInterruptRecordsCompletedWork(t *testing.T) {
	ds := crashDataset(t)
	ref := exportRef(t, ds)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(testCtx)
	defer cancel()
	fsys := cancelOnRenameFS{FS: atomicio.OS, cancel: cancel}
	rep, err := ds.Export(ctx, fsys, dir, crashOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if len(rep.Files) != 1 {
		t.Fatalf("report covers %d artifacts, want the 1 completed before the interrupt", len(rep.Files))
	}

	m, lerr := atomicio.LoadManifest(atomicio.OS, dir)
	if lerr != nil {
		t.Fatalf("interrupted export left no readable manifest: %v", lerr)
	}
	if len(m.Files) != 1 {
		t.Fatalf("manifest records %d files, want 1: %v", len(m.Files), m.FileNames())
	}
	name := m.FileNames()[0]
	if name != rep.Files[0].Name {
		t.Errorf("manifest records %s, report says %s", name, rep.Files[0].Name)
	}
	if verr := m.VerifyFile(atomicio.OS, dir, name); verr != nil {
		t.Errorf("recorded artifact does not verify: %v", verr)
	}

	opts := crashOpts()
	opts.Resume = true
	rep2, rerr := ds.Export(testCtx, atomicio.OS, dir, opts)
	if rerr != nil {
		t.Fatalf("resume: %v", rerr)
	}
	if rep2.Skipped == 0 {
		t.Error("resume redid the recorded artifact instead of skipping it")
	}
	diffTrees(t, "interrupt resumed", readTree(t, dir), ref)
}

// TestExportResumeRefusesForeignManifest guards the fingerprint gate: a
// manifest from a different configuration must refuse to resume rather
// than silently mixing two datasets.
func TestExportResumeRefusesForeignManifest(t *testing.T) {
	ds := crashDataset(t)
	dir := t.TempDir()
	if _, err := ds.Export(testCtx, atomicio.OS, dir, crashOpts()); err != nil {
		t.Fatal(err)
	}
	opts := crashOpts()
	opts.Resume = true
	opts.Dirty = 0 // changes the fingerprint (and the artifact set)
	if _, err := ds.Export(testCtx, atomicio.OS, dir, opts); err == nil {
		t.Fatal("resume accepted a manifest from a different config")
	}
}

// TestExportResumeIsFullSkip pins the fast path: resuming a completed
// directory rewrites nothing and leaves every byte untouched.
func TestExportResumeIsFullSkip(t *testing.T) {
	ds := crashDataset(t)
	dir := t.TempDir()
	rep1, err := ds.Export(testCtx, atomicio.OS, dir, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	before := readTree(t, dir)

	opts := crashOpts()
	opts.Resume = true
	rep2, err := ds.Export(testCtx, atomicio.OS, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Written != 0 || rep2.Skipped != len(rep1.Files) {
		t.Errorf("full-skip resume wrote %d, skipped %d (want 0, %d)",
			rep2.Written, rep2.Skipped, len(rep1.Files))
	}
	diffTrees(t, "full skip", readTree(t, dir), before)
}
