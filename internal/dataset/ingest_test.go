package dataset

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corrupt"
)

var (
	smallDSOnce sync.Once
	smallDS     *Dataset
	smallDSErr  error
)

// smallDataset builds a compact dataset once, shared (read-only) by all
// ingest tests — Build is the dominant cost here, especially under -race.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	smallDSOnce.Do(func() {
		cfg := DefaultConfig(77)
		cfg.Nodes = 48
		smallDS, smallDSErr = Build(testCtx, cfg)
	})
	if smallDSErr != nil {
		t.Fatal(smallDSErr)
	}
	return smallDS
}

func TestReadSyslogPolicyCleanMatchesDefault(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 10); err != nil {
		t.Fatal(err)
	}
	clean := buf.String()

	// With only a reorder window (the clean log is already time-ordered)
	// nothing may change: no malformed lines, no drops, exact counts.
	ces, dues, hets, rep, err := ReadSyslogPolicy(strings.NewReader(clean), IngestPolicy{
		ReorderWindow: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Malformed != 0 || rep.DroppedOutOfOrder != 0 || rep.BudgetExceeded {
		t.Errorf("clean log flagged dirty: %+v", rep)
	}
	if len(ces) != len(ds.CERecords) || len(dues) != len(ds.DUERecords) || len(hets) != len(ds.HETRecords) {
		t.Errorf("reorder policy changed clean record counts: %d/%d/%d vs %d/%d/%d (report %+v)",
			len(ces), len(dues), len(hets),
			len(ds.CERecords), len(ds.DUERecords), len(ds.HETRecords), rep)
	}

	// Dedup is lossy on purpose: a burst hammering one cell renders as
	// byte-identical lines, indistinguishable from relay duplication (the
	// ambiguity real field data has too). The accounting must balance —
	// every suppressed line is counted, none silently vanish.
	ces2, _, _, rep2, err := ReadSyslogPolicy(strings.NewReader(clean), IngestPolicy{DedupWindow: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(ces2)+rep2.Duplicated != len(ds.CERecords) {
		t.Errorf("dedup accounting imbalance: %d kept + %d suppressed != %d generated",
			len(ces2), rep2.Duplicated, len(ds.CERecords))
	}
}

func TestReadSyslogPolicyCorrupted(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 10); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	crep, err := corrupt.New(corrupt.Uniform(5, 0.02)).Process(&buf, &dirty)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Mutations() == 0 {
		t.Fatal("corruptor did nothing")
	}

	ces, _, _, rep, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{
		DedupWindow:      32,
		ReorderWindow:    5 * time.Minute,
		MaxMalformedFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Malformed == 0 {
		t.Error("corrupted log reported no malformed lines")
	}
	if rep.Truncated+rep.Garbage != rep.Malformed {
		t.Errorf("category accounting broken: %+v", rep)
	}
	if rep.Duplicated == 0 {
		t.Error("relay duplicates not suppressed")
	}
	// Most records should survive 2% corruption.
	if float64(len(ces)) < 0.9*float64(len(ds.CERecords)) {
		t.Errorf("lost too many CEs: %d of %d", len(ces), len(ds.CERecords))
	}
}

func TestReadSyslogPolicyMalformedBudget(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Config{Seed: 5, Truncate: 0.2}).Process(&buf, &dirty); err != nil {
		t.Fatal(err)
	}

	_, _, _, rep, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{MaxMalformedFrac: 0.01})
	if err == nil || !rep.BudgetExceeded {
		t.Errorf("20%% truncation passed a 1%% malformed budget: err=%v report=%+v", err, rep)
	}
	// The salvage is still returned alongside the error.
	if rep.CEs == 0 {
		t.Error("budget failure discarded the salvageable records")
	}

	// A generous budget passes.
	buf.Reset()
	if err := ds.WriteSyslog(&buf, 0); err != nil {
		t.Fatal(err)
	}
	dirty.Reset()
	if _, err := corrupt.New(corrupt.Config{Seed: 5, Truncate: 0.2}).Process(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	if _, _, _, rep, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{MaxMalformedFrac: 0.5}); err != nil {
		t.Errorf("20%% truncation failed a 50%% budget: %v (report %+v)", err, rep)
	}
}

func TestReadSyslogPolicyStrict(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Config{Seed: 5, Truncate: 0.1}).Process(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{Strict: true}); err == nil {
		t.Error("strict policy accepted a corrupted log")
	}
}

func TestReadCETelemetryCSVLenient(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteCETelemetryCSV(&buf); err != nil {
		t.Fatal(err)
	}

	// Clean file: lenient and strict agree.
	strict, err := ReadCETelemetryCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lenient, rep, err := ReadCETelemetryCSVLenient(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bad != 0 || len(lenient) != len(strict) {
		t.Errorf("lenient read of clean CSV: %d records, report %+v; strict %d", len(lenient), rep, len(strict))
	}

	// Corrupted file: strict aborts, lenient salvages and accounts.
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Uniform(7, 0.05)).ProcessCSV(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCETelemetryCSV(bytes.NewReader(dirty.Bytes())); err == nil {
		t.Log("strict reader happened to tolerate this corruption (dedup-invisible faults only)")
	}
	got, rep, err := ReadCETelemetryCSVLenient(bytes.NewReader(dirty.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bad == 0 {
		t.Error("5% corruption produced zero bad rows")
	}
	if len(rep.Errors) == 0 || len(rep.Errors) > 10 {
		t.Errorf("error sample size %d, want 1..10", len(rep.Errors))
	}
	// 5% line corruption costs more than 5% of rows (dropped runs take 8
	// lines each; a torn row can swallow its neighbor) — but the large
	// majority must survive.
	if float64(len(got)) < 0.7*float64(len(strict)) {
		t.Errorf("salvaged only %d of %d rows", len(got), len(strict))
	}
}

func TestReadSensorCSVLenient(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSensorCSV(&buf, 40, 20000); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Uniform(7, 0.1)).ProcessCSV(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	got, rep, err := ReadSensorCSVLenient(bytes.NewReader(dirty.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 || len(got) == 0 {
		t.Fatalf("lenient sensor read salvaged nothing: report %+v", rep)
	}
	if rep.Bad == 0 {
		t.Error("10% corruption produced zero bad sensor rows")
	}
}
