package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/atomicio"
	"repro/internal/colfmt"
	"repro/internal/corrupt"
)

var (
	smallDSOnce sync.Once
	smallDS     *Dataset
	smallDSErr  error
)

// smallDataset builds a compact dataset once, shared (read-only) by all
// ingest tests — Build is the dominant cost here, especially under -race.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	smallDSOnce.Do(func() {
		cfg := DefaultConfig(77)
		cfg.Nodes = 48
		smallDS, smallDSErr = Build(testCtx, cfg)
	})
	if smallDSErr != nil {
		t.Fatal(smallDSErr)
	}
	return smallDS
}

func TestReadSyslogPolicyCleanMatchesDefault(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 10); err != nil {
		t.Fatal(err)
	}
	clean := buf.String()

	// With only a reorder window (the clean log is already time-ordered)
	// nothing may change: no malformed lines, no drops, exact counts.
	ces, dues, hets, rep, err := ReadSyslogPolicy(strings.NewReader(clean), IngestPolicy{
		ReorderWindow: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Malformed != 0 || rep.DroppedOutOfOrder != 0 || rep.BudgetExceeded {
		t.Errorf("clean log flagged dirty: %+v", rep)
	}
	if len(ces) != len(ds.CERecords) || len(dues) != len(ds.DUERecords) || len(hets) != len(ds.HETRecords) {
		t.Errorf("reorder policy changed clean record counts: %d/%d/%d vs %d/%d/%d (report %+v)",
			len(ces), len(dues), len(hets),
			len(ds.CERecords), len(ds.DUERecords), len(ds.HETRecords), rep)
	}

	// Dedup is lossy on purpose: a burst hammering one cell renders as
	// byte-identical lines, indistinguishable from relay duplication (the
	// ambiguity real field data has too). The accounting must balance —
	// every suppressed line is counted, none silently vanish.
	ces2, _, _, rep2, err := ReadSyslogPolicy(strings.NewReader(clean), IngestPolicy{DedupWindow: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(ces2)+rep2.Duplicated != len(ds.CERecords) {
		t.Errorf("dedup accounting imbalance: %d kept + %d suppressed != %d generated",
			len(ces2), rep2.Duplicated, len(ds.CERecords))
	}
}

func TestReadSyslogPolicyCorrupted(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 10); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	crep, err := corrupt.New(corrupt.Uniform(5, 0.02)).Process(&buf, &dirty)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Mutations() == 0 {
		t.Fatal("corruptor did nothing")
	}

	ces, _, _, rep, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{
		DedupWindow:      32,
		ReorderWindow:    5 * time.Minute,
		MaxMalformedFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Malformed == 0 {
		t.Error("corrupted log reported no malformed lines")
	}
	if rep.Truncated+rep.Garbage != rep.Malformed {
		t.Errorf("category accounting broken: %+v", rep)
	}
	if rep.Duplicated == 0 {
		t.Error("relay duplicates not suppressed")
	}
	// Most records should survive 2% corruption.
	if float64(len(ces)) < 0.9*float64(len(ds.CERecords)) {
		t.Errorf("lost too many CEs: %d of %d", len(ces), len(ds.CERecords))
	}
}

func TestReadSyslogPolicyMalformedBudget(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Config{Seed: 5, Truncate: 0.2}).Process(&buf, &dirty); err != nil {
		t.Fatal(err)
	}

	_, _, _, rep, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{MaxMalformedFrac: 0.01})
	if err == nil || !rep.BudgetExceeded {
		t.Errorf("20%% truncation passed a 1%% malformed budget: err=%v report=%+v", err, rep)
	}
	// The salvage is still returned alongside the error.
	if rep.CEs == 0 {
		t.Error("budget failure discarded the salvageable records")
	}

	// A generous budget passes.
	buf.Reset()
	if err := ds.WriteSyslog(&buf, 0); err != nil {
		t.Fatal(err)
	}
	dirty.Reset()
	if _, err := corrupt.New(corrupt.Config{Seed: 5, Truncate: 0.2}).Process(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	if _, _, _, rep, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{MaxMalformedFrac: 0.5}); err != nil {
		t.Errorf("20%% truncation failed a 50%% budget: %v (report %+v)", err, rep)
	}
}

func TestReadSyslogPolicyStrict(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Config{Seed: 5, Truncate: 0.1}).Process(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), IngestPolicy{Strict: true}); err == nil {
		t.Error("strict policy accepted a corrupted log")
	}
}

func TestReadCETelemetryCSVLenient(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteCETelemetryCSV(&buf); err != nil {
		t.Fatal(err)
	}

	// Clean file: lenient and strict agree.
	strict, err := ReadCETelemetryCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lenient, rep, err := ReadCETelemetryCSVLenient(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bad != 0 || len(lenient) != len(strict) {
		t.Errorf("lenient read of clean CSV: %d records, report %+v; strict %d", len(lenient), rep, len(strict))
	}

	// Corrupted file: strict aborts, lenient salvages and accounts.
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Uniform(7, 0.05)).ProcessCSV(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCETelemetryCSV(bytes.NewReader(dirty.Bytes())); err == nil {
		t.Log("strict reader happened to tolerate this corruption (dedup-invisible faults only)")
	}
	got, rep, err := ReadCETelemetryCSVLenient(bytes.NewReader(dirty.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bad == 0 {
		t.Error("5% corruption produced zero bad rows")
	}
	if len(rep.Errors) == 0 || len(rep.Errors) > 10 {
		t.Errorf("error sample size %d, want 1..10", len(rep.Errors))
	}
	// 5% line corruption costs more than 5% of rows (dropped runs take 8
	// lines each; a torn row can swallow its neighbor) — but the large
	// majority must survive.
	if float64(len(got)) < 0.7*float64(len(strict)) {
		t.Errorf("salvaged only %d of %d rows", len(got), len(strict))
	}
}

func TestReadSensorCSVLenient(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSensorCSV(&buf, 40, 20000); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Uniform(7, 0.1)).ProcessCSV(&buf, &dirty); err != nil {
		t.Fatal(err)
	}
	got, rep, err := ReadSensorCSVLenient(bytes.NewReader(dirty.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 || len(got) == 0 {
		t.Fatalf("lenient sensor read salvaged nothing: report %+v", rep)
	}
	if rep.Bad == 0 {
		t.Error("10% corruption produced zero bad sensor rows")
	}
}

// TestReadRecordsSniffsColfmt proves the sniffing reader routes a
// columnar replay file to the binary decoder and returns exactly the
// records the dataset holds — the same streams the syslog text encodes,
// without any text parsing.
func TestReadRecordsSniffsColfmt(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := colfmt.Write(&buf, colfmt.Records{
		CEs: ds.CERecords, DUEs: ds.DUERecords, HETs: ds.HETRecords,
	}); err != nil {
		t.Fatal(err)
	}
	ces, dues, hets, rep, err := ReadRecords(bytes.NewReader(buf.Bytes()), IngestPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ces, ds.CERecords) || !reflect.DeepEqual(dues, ds.DUERecords) || !reflect.DeepEqual(hets, ds.HETRecords) {
		t.Fatal("columnar replay diverged from dataset records")
	}
	if rep.CEs != len(ces) || rep.DUEs != len(dues) || rep.HETs != len(hets) {
		t.Errorf("report counts (%d,%d,%d) != stream lengths (%d,%d,%d)",
			rep.CEs, rep.DUEs, rep.HETs, len(ces), len(dues), len(hets))
	}
	if rep.Lines != 0 || rep.Malformed != 0 {
		t.Errorf("columnar path reported text-parse counters: %+v", rep.ScanStats)
	}

	// Corruption in a columnar file is a hard error, never a salvage.
	mut := append([]byte(nil), buf.Bytes()...)
	mut[len(mut)/2] ^= 0x40
	if _, _, _, _, err := ReadRecords(bytes.NewReader(mut), IngestPolicy{}); err == nil {
		t.Error("corrupted columnar file read without error")
	}
}

// TestReadRecordsSniffsSyslog proves text input falls through to the
// policy reader with identical results, at serial and parallel settings.
func TestReadRecordsSniffsSyslog(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteSyslog(&buf, 10); err != nil {
		t.Fatal(err)
	}
	wantCEs, wantDUEs, wantHETs, wantRep, err := ReadSyslogPolicy(bytes.NewReader(buf.Bytes()), IngestPolicy{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 1, 4} {
		ces, dues, hets, rep, err := ReadRecords(bytes.NewReader(buf.Bytes()), IngestPolicy{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(ces, wantCEs) || !reflect.DeepEqual(dues, wantDUEs) || !reflect.DeepEqual(hets, wantHETs) {
			t.Fatalf("parallelism %d: records diverged from serial read", par)
		}
		if !reflect.DeepEqual(rep, wantRep) {
			t.Fatalf("parallelism %d: report %+v != %+v", par, rep, wantRep)
		}
	}
}

// TestExportIncludesColumnarReplay checks the export tree carries the
// columnar artifact and that reading it back yields the dataset records.
func TestExportIncludesColumnarReplay(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	rep, err := ds.Export(testCtx, atomicio.OS, dir, ExportOptions{
		SensorNodeStride: 50, SensorMinuteStride: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Files {
		if f.Name == "astra-records.col" {
			found = true
		}
	}
	if !found {
		t.Fatalf("astra-records.col missing from export report: %+v", rep.Files)
	}
	f, err := atomicio.OS.Open(filepath.Join(dir, "astra-records.col"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ces, dues, hets, _, err := ReadRecords(f, IngestPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) != len(ds.CERecords) || len(dues) != len(ds.DUERecords) || len(hets) != len(ds.HETRecords) {
		t.Fatalf("exported columnar counts (%d,%d,%d) != dataset (%d,%d,%d)",
			len(ces), len(dues), len(hets), len(ds.CERecords), len(ds.DUERecords), len(ds.HETRecords))
	}
}
