// Package dataset wires the substrates into the end-to-end pipeline the
// paper's data went through — fault model → memory controller → EDAC
// polling (with log-space loss) → syslog; machine checks → HET — and
// implements the §2.4 open-data release formats: syslog text, CE/DUE
// telemetry CSV, per-node sensor CSV, and inventory replacement logs, with
// matching readers so the ETL path (cmd/astraparse) works on the files the
// generator (cmd/astragen) writes.
package dataset

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/edac"
	"repro/internal/envmodel"
	"repro/internal/faultmodel"
	"repro/internal/het"
	"repro/internal/inventory"
	"repro/internal/mce"
	"repro/internal/parallel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Config assembles the pipeline configuration.
type Config struct {
	// Seed drives every stochastic component.
	Seed uint64
	// Nodes bounds the system size (reduced-scale runs).
	Nodes int
	// Fault is the fault-population configuration; if zero-valued it is
	// replaced by faultmodel.DefaultConfig(Seed) at Nodes scale.
	Fault faultmodel.Config
	// Env is the telemetry calibration; zero value replaced by defaults.
	Env envmodel.Params
	// EdacCapacity is the per-node CE log capacity (§2.3).
	EdacCapacity int
	// PollMinutes is the EDAC polling interval in minutes.
	PollMinutes int64
	// Inventory enables replacement-history generation.
	Inventory bool
	// Parallelism bounds the worker pool the pipeline stages shard across:
	// 0 (the default) uses runtime.GOMAXPROCS(0), 1 restores the serial
	// code path. Output is bit-identical at every setting; see DESIGN.md §8.
	Parallelism int
}

// DefaultConfig returns the full-scale pipeline configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:         seed,
		Nodes:        topology.Nodes,
		Fault:        faultmodel.DefaultConfig(seed),
		Env:          envmodel.DefaultParams(),
		EdacCapacity: edac.DefaultCapacity,
		PollMinutes:  1,
		Inventory:    true,
	}
}

// Dataset is the built pipeline output: ground truth plus everything the
// platform would actually have recorded.
type Dataset struct {
	Config Config
	// Pop is the ground-truth population (not available to the analyses
	// on the real system; used for validation only).
	Pop *faultmodel.Population
	// CERecords are the correctable errors that survived the EDAC path,
	// time-ordered.
	CERecords []mce.CERecord
	// DUERecords are the uncorrectable machine-check records (never
	// subject to log-space loss).
	DUERecords []mce.DUERecord
	// HETRecords are the Hardware Event Tracker records (memory DUEs
	// plus ambient platform events), post firmware gate.
	HETRecords []het.Record
	// EdacStats accounts for CE logging loss.
	EdacStats edac.Stats
	// Env is the telemetry model (implements core.SensorSource).
	Env *envmodel.Model
	// Inventory is the replacement history (nil unless enabled).
	Inventory *inventory.History
}

// Build runs the pipeline. Cancelling ctx aborts between (and inside)
// stages with ctx's error; a worker panic in any parallel stage surfaces
// as a *parallel.PanicError instead of crashing the process.
func Build(ctx context.Context, cfg Config) (ds *Dataset, err error) {
	defer parallel.Recover(&err)
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("dataset: Nodes = %d", cfg.Nodes)
	}
	if cfg.Fault.Nodes == 0 {
		cfg.Fault = faultmodel.DefaultConfig(cfg.Seed)
	}
	cfg.Fault.Nodes = cfg.Nodes
	if cfg.Fault.Parallelism == 0 {
		cfg.Fault.Parallelism = cfg.Parallelism
	}
	if cfg.Env == (envmodel.Params{}) {
		cfg.Env = envmodel.DefaultParams()
	}
	if cfg.EdacCapacity <= 0 {
		cfg.EdacCapacity = edac.DefaultCapacity
	}
	if cfg.PollMinutes <= 0 {
		cfg.PollMinutes = 1
	}

	pop, err := faultmodel.Generate(ctx, cfg.Fault)
	if err != nil {
		return nil, err
	}
	ds = &Dataset{Config: cfg, Pop: pop, Env: envmodel.New(cfg.Seed, cfg.Env)}
	if err := ds.runEdac(ctx); err != nil {
		return nil, err
	}
	if err := ds.encodeDUEs(ctx); err != nil {
		return nil, err
	}
	if err := ds.buildHET(ctx); err != nil {
		return nil, err
	}
	if cfg.Inventory {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hist, err := inventory.Generate(cfg.Seed, cfg.Nodes, inventory.DefaultProcesses())
		if err != nil {
			return nil, err
		}
		ds.Inventory = hist
	}
	return ds, nil
}

// runEdac pushes the generated CE stream through per-node pollers,
// dropping what the limited log space loses. Pollers are independent per
// node, so with Parallelism > 1 each node's stream runs on a worker pool;
// the flushed batches are stitched back in the order the serial scan would
// have produced them (each batch is tagged with the global index of the
// event whose Offer triggered the flush — unique per node — and Close
// drains sort after every Offer, tie-broken by node), so the record stream
// handed to sortCERecords is bit-identical to the serial path.
func (ds *Dataset) runEdac(ctx context.Context) error {
	enc := mce.NewEncoder(ds.Config.Seed)
	if parallel.Workers(ds.Config.Parallelism) <= 1 {
		// Logged <= offered, so the full event count is a safe upper bound
		// that spares every growth reallocation on the hot append below.
		ds.CERecords = make([]mce.CERecord, 0, len(ds.Pop.CEs))
		pollers := map[topology.NodeID]*edac.Poller[mce.CERecord]{}
		out := func(recs []mce.CERecord) {
			ds.CERecords = append(ds.CERecords, recs...)
		}
		for i, ev := range ds.Pop.CEs {
			if err := parallel.Poll(ctx, i); err != nil {
				return err
			}
			p, ok := pollers[ev.Node]
			if !ok {
				p = edac.NewPoller[mce.CERecord](ds.Config.EdacCapacity, ds.Config.PollMinutes, out)
				pollers[ev.Node] = p
			}
			rec, err := enc.EncodeCE(ev, i)
			if err != nil {
				return fmt.Errorf("dataset: CE event %d: %w", i, err)
			}
			p.Offer(int64(ev.Minute), rec)
		}
		// Close in node order so the final drains land deterministically.
		for n := 0; n < ds.Config.Nodes; n++ {
			p, ok := pollers[topology.NodeID(n)]
			if !ok {
				continue
			}
			ds.EdacStats.Add(p.Close())
		}
		sortCERecords(ds.CERecords)
		return nil
	}

	// Partition the global event stream by node, keeping each event's
	// global index (EncodeCE takes it, and it doubles as the batch tag).
	// Counting first sizes every per-node slice exactly — one backing
	// array for the whole partition instead of per-node growth chains.
	counts := make([]int32, ds.Config.Nodes)
	for _, ev := range ds.Pop.CEs {
		counts[ev.Node]++
	}
	backing := make([]int32, len(ds.Pop.CEs))
	perNode := make([][]int32, ds.Config.Nodes)
	next := 0
	for n := range perNode {
		perNode[n] = backing[next : next : next+int(counts[n])]
		next += int(counts[n])
	}
	for i, ev := range ds.Pop.CEs {
		perNode[ev.Node] = append(perNode[ev.Node], int32(i))
	}

	type nodeResult struct {
		recs  []mce.CERecord // drained records, in emission order
		keys  []int64        // per batch: global index of the triggering event
		ends  []int          // per batch: end offset into recs
		stats edac.Stats
	}
	results := make([]nodeResult, ds.Config.Nodes)
	err := parallel.ForEachChunkCtx(ctx, ds.Config.Parallelism, ds.Config.Nodes, func(ctx context.Context, _, lo, hi int) error {
		for n := lo; n < hi; n++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			events := perNode[n]
			if len(events) == 0 {
				continue
			}
			res := &results[n]
			res.recs = make([]mce.CERecord, 0, len(events))
			var trigger int64
			out := func(recs []mce.CERecord) {
				res.recs = append(res.recs, recs...)
				res.keys = append(res.keys, trigger)
				res.ends = append(res.ends, len(res.recs))
			}
			p := edac.NewPoller[mce.CERecord](ds.Config.EdacCapacity, ds.Config.PollMinutes, out)
			for _, gi := range events {
				ev := ds.Pop.CEs[gi]
				trigger = int64(gi)
				rec, err := enc.EncodeCE(ev, int(gi))
				if err != nil {
					return fmt.Errorf("dataset: CE event %d: %w", gi, err)
				}
				p.Offer(int64(ev.Minute), rec)
			}
			trigger = math.MaxInt64
			res.stats = p.Close()
		}
		return nil
	})
	if err != nil {
		return err
	}

	type batch struct {
		key  int64
		node int
		recs []mce.CERecord
	}
	var batches []batch
	total := 0
	for n := range results {
		res := &results[n]
		start := 0
		for b, end := range res.ends {
			batches = append(batches, batch{res.keys[b], n, res.recs[start:end]})
			start = end
		}
		total += len(res.recs)
		ds.EdacStats.Add(res.stats)
	}
	// Global indexes are unique and belong to exactly one node, so sorting
	// by key replays the serial Offer interleaving; the MaxInt64 Close
	// drains tie-break by node, matching the serial node-order Close loop.
	sort.Slice(batches, func(a, b int) bool {
		if batches[a].key != batches[b].key {
			return batches[a].key < batches[b].key
		}
		return batches[a].node < batches[b].node
	})
	ds.CERecords = make([]mce.CERecord, 0, total)
	for _, b := range batches {
		ds.CERecords = append(ds.CERecords, b.recs...)
	}
	sortCERecords(ds.CERecords)
	return nil
}

func (ds *Dataset) encodeDUEs(ctx context.Context) error {
	enc := mce.NewEncoder(ds.Config.Seed)
	ds.DUERecords = make([]mce.DUERecord, len(ds.Pop.DUEs))
	return parallel.ForEachChunkCtx(ctx, ds.Config.Parallelism, len(ds.Pop.DUEs), func(ctx context.Context, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := parallel.Poll(ctx, i-lo); err != nil {
				return err
			}
			rec, err := enc.EncodeDUE(ds.Pop.DUEs[i])
			if err != nil {
				return fmt.Errorf("dataset: DUE event %d: %w", i, err)
			}
			ds.DUERecords[i] = rec
		}
		return nil
	})
}

func (ds *Dataset) buildHET(ctx context.Context) error {
	fromDUEs := make([]het.Record, len(ds.DUERecords))
	err := parallel.ForEachChunkCtx(ctx, ds.Config.Parallelism, len(ds.DUERecords), func(ctx context.Context, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := parallel.Poll(ctx, i-lo); err != nil {
				return err
			}
			fromDUEs[i] = het.FromDUE(ds.DUERecords[i])
		}
		return nil
	})
	if err != nil {
		return err
	}
	ambient, err := het.GenerateAmbientWorkers(ctx, ds.Config.Seed, simtime.HETStart, ds.Config.Fault.End, ds.Config.Nodes, ds.Config.Parallelism)
	if err != nil {
		return err
	}
	ds.HETRecords = het.Merge(fromDUEs, ambient)
	return nil
}

// Verify runs the release self-check over the built dataset: every CE
// record internally consistent, streams time-ordered and inside the study
// window, HET records post-gate, and the EDAC accounting balanced. A
// failure indicates a pipeline bug, so astragen refuses to publish on it.
func (ds *Dataset) Verify() error {
	var prev mce.CERecord
	for i, r := range ds.CERecords {
		if err := mce.ValidateRecord(r); err != nil {
			return fmt.Errorf("dataset: CE record %d: %w", i, err)
		}
		if i > 0 && r.Time.Before(prev.Time) {
			return fmt.Errorf("dataset: CE records out of order at %d", i)
		}
		if r.Time.Before(ds.Config.Fault.Start) || r.Time.After(ds.Config.Fault.End.Add(24*time.Hour)) {
			return fmt.Errorf("dataset: CE record %d outside the study window: %v", i, r.Time)
		}
		prev = r
	}
	for i, h := range ds.HETRecords {
		if !h.Recorded() {
			return fmt.Errorf("dataset: HET record %d precedes the firmware gate", i)
		}
	}
	if ds.EdacStats.Logged+ds.EdacStats.Dropped != ds.EdacStats.Offered {
		return fmt.Errorf("dataset: EDAC accounting unbalanced: %+v", ds.EdacStats)
	}
	if ds.EdacStats.Logged != uint64(len(ds.CERecords)) {
		return fmt.Errorf("dataset: %d records vs %d logged", len(ds.CERecords), ds.EdacStats.Logged)
	}
	if len(ds.DUERecords) != len(ds.Pop.DUEs) {
		return fmt.Errorf("dataset: DUE records lost: %d of %d", len(ds.DUERecords), len(ds.Pop.DUEs))
	}
	return nil
}

func sortCERecords(recs []mce.CERecord) {
	// The EDAC drain interleaves nodes; restore global time order with a
	// deterministic tiebreak.
	sort.Slice(recs, func(a, b int) bool {
		if !recs[a].Time.Equal(recs[b].Time) {
			return recs[a].Time.Before(recs[b].Time)
		}
		if recs[a].Node != recs[b].Node {
			return recs[a].Node < recs[b].Node
		}
		return recs[a].Addr < recs[b].Addr
	})
}
