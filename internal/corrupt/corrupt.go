// Package corrupt is a deterministic, seeded telemetry-corruption
// subsystem: it mutates generated syslog and CSV streams with the fault
// classes production log pipelines actually exhibit — line truncation,
// syslog relay duplication, bounded reordering, per-node clock skew,
// garbage interleaving, log-rotation splits, and dropped runs (which, on
// the sensor CSV layout, are dropped per-node sensor windows).
//
// The paper's pipeline ran over ~8 GiB of production telemetry that had
// all of these defects; the reproduction's ingest path is tested against
// this corruptor so that "graceful degradation" is a measured property
// (see the differential harness in this package's tests) rather than a
// claim. Everything here is reproducible: the same Config and input bytes
// always yield the same output bytes.
package corrupt

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/simrand"
)

// Defaults for the bounded fault shapes.
const (
	// DefaultReorderDepth is the maximum number of positions a reordered
	// line is displaced.
	DefaultReorderDepth = 4
	// DefaultMaxSkewSeconds bounds the per-node clock offset magnitude.
	DefaultMaxSkewSeconds = 120
	// DefaultDropRunLen is the length of a dropped run of lines. On the
	// sensor CSV layout (node-major, minute-minor) a run of consecutive
	// rows is a contiguous window of one node's samples, so dropped runs
	// model dropped sensor windows.
	DefaultDropRunLen = 8
)

// Config sets the per-line probability of each fault class. All rates are
// in [0, 1] and independent; zero disables a class.
type Config struct {
	// Seed drives every random decision.
	Seed uint64
	// Truncate cuts a line at a random interior byte, losing the tail
	// (partial write at the end of a rotated file, relay MTU cut, ...).
	Truncate float64
	// Duplicate re-emits a line immediately (at-least-once relay
	// delivery).
	Duplicate float64
	// Reorder holds a line back by 1..ReorderDepth positions (multi-path
	// relay races).
	Reorder float64
	// ReorderDepth bounds the displacement; 0 means DefaultReorderDepth.
	ReorderDepth int
	// ClockSkew is the fraction of nodes whose clock is offset by a
	// stable per-node amount; lines from a skewed node have their leading
	// RFC 3339 timestamp shifted.
	ClockSkew float64
	// MaxSkewSeconds bounds the per-node offset magnitude; 0 means
	// DefaultMaxSkewSeconds.
	MaxSkewSeconds int
	// Garbage inserts a junk line (binary noise, torn records, marker-
	// bearing nonsense) before the current line.
	Garbage float64
	// RotationSplit tears a line in two at a random byte (log rotation
	// cutting mid-record); both halves are emitted as separate lines.
	RotationSplit float64
	// DropRun starts a dropped run of DropRunLen consecutive lines
	// (rotation losing a chunk; a sensor window going dark).
	DropRun float64
	// DropRunLen is the dropped-run length; 0 means DefaultDropRunLen.
	DropRunLen int
}

// Uniform returns a Config with every single-line fault class at rate p
// and the dropped-run start rate scaled so that the expected fraction of
// lines lost to drops is also p. It is the "combined corruption rate p"
// used by the differential robustness harness.
func Uniform(seed uint64, p float64) Config {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return Config{
		Seed:          seed,
		Truncate:      p,
		Duplicate:     p,
		Reorder:       p,
		ClockSkew:     p,
		Garbage:       p,
		RotationSplit: p,
		DropRun:       p / DefaultDropRunLen,
	}
}

// Report accounts for every mutation applied in one Process run.
type Report struct {
	// LinesIn and LinesOut count input and output lines.
	LinesIn, LinesOut int
	// Truncated lines lost their tail.
	Truncated int
	// Duplicated lines were emitted twice.
	Duplicated int
	// Reordered lines were displaced from their input position.
	Reordered int
	// Skewed lines had their timestamp shifted by a per-node offset.
	Skewed int
	// GarbageInserted junk lines were interleaved.
	GarbageInserted int
	// RotationSplits lines were torn into two lines.
	RotationSplits int
	// DroppedLines were removed entirely.
	DroppedLines int
}

// Mutations returns the total number of mutations applied.
func (r Report) Mutations() int {
	return r.Truncated + r.Duplicated + r.Reordered + r.Skewed +
		r.GarbageInserted + r.RotationSplits + r.DroppedLines
}

// String renders the report as a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("corrupt: %d lines in, %d out: %d truncated, %d duplicated, %d reordered, %d skewed, %d garbage, %d rotation splits, %d dropped",
		r.LinesIn, r.LinesOut, r.Truncated, r.Duplicated, r.Reordered,
		r.Skewed, r.GarbageInserted, r.RotationSplits, r.DroppedLines)
}

// Corruptor applies a Config to line streams. It is stateless between
// Process calls (each call re-derives its random streams), so one
// Corruptor may corrupt several files with independent but reproducible
// decisions.
type Corruptor struct {
	cfg Config
}

// New returns a Corruptor for the given configuration.
func New(cfg Config) *Corruptor {
	if cfg.ReorderDepth <= 0 {
		cfg.ReorderDepth = DefaultReorderDepth
	}
	if cfg.MaxSkewSeconds <= 0 {
		cfg.MaxSkewSeconds = DefaultMaxSkewSeconds
	}
	if cfg.DropRunLen <= 0 {
		cfg.DropRunLen = DefaultDropRunLen
	}
	return &Corruptor{cfg: cfg}
}

// heldLine is a line held back by the reorder fault.
type heldLine struct {
	line  string
	delay int
}

// processor is the per-run mutable state.
type processor struct {
	cfg      Config
	rng      *simrand.Stream
	w        *bufio.Writer
	rep      Report
	held     []heldLine
	dropLeft int
	err      error
}

// Process reads r line by line, applies the configured faults, and writes
// the corrupted stream to w. The output is fully determined by the
// configuration and the input bytes.
func (c *Corruptor) Process(r io.Reader, w io.Writer) (Report, error) {
	return c.process(r, w, false)
}

// ProcessCSV is Process for CSV files: the first line (the header) passes
// through unmodified so that lenient CSV readers keep their schema check,
// while every data row is subject to the configured faults.
func (c *Corruptor) ProcessCSV(r io.Reader, w io.Writer) (Report, error) {
	return c.process(r, w, true)
}

func (c *Corruptor) process(r io.Reader, w io.Writer, keepHeader bool) (Report, error) {
	p := &processor{
		cfg: c.cfg,
		rng: simrand.NewStream(c.cfg.Seed).Derive("corrupt"),
		w:   bufio.NewWriterSize(w, 1<<20),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Text()
		p.rep.LinesIn++
		if first && keepHeader {
			first = false
			p.emit(line)
			continue
		}
		first = false
		p.line(line)
	}
	if err := sc.Err(); err != nil {
		return p.rep, fmt.Errorf("corrupt: read: %w", err)
	}
	p.flush()
	if p.err != nil {
		return p.rep, fmt.Errorf("corrupt: write: %w", p.err)
	}
	if err := p.w.Flush(); err != nil {
		return p.rep, fmt.Errorf("corrupt: write: %w", err)
	}
	return p.rep, nil
}

// line pushes one input line through the fault pipeline.
func (p *processor) line(line string) {
	// Dropped runs remove lines wholesale before anything else sees them.
	if p.dropLeft > 0 {
		p.dropLeft--
		p.rep.DroppedLines++
		return
	}
	if p.cfg.DropRun > 0 && p.rng.Bool(p.cfg.DropRun) {
		p.dropLeft = p.cfg.DropRunLen - 1
		p.rep.DroppedLines++
		return
	}
	// Per-node clock skew rewrites the timestamp in place.
	if p.cfg.ClockSkew > 0 {
		if skewed, ok := p.skew(line); ok {
			line = skewed
			p.rep.Skewed++
		}
	}
	// Garbage interleaving inserts junk before the line.
	if p.cfg.Garbage > 0 && p.rng.Bool(p.cfg.Garbage) {
		p.emit(p.garbageLine())
		p.rep.GarbageInserted++
	}
	// Rotation split tears the line in two; truncation loses the tail.
	// A line suffers at most one of the two (both model cuts).
	switch {
	case p.cfg.RotationSplit > 0 && p.rng.Bool(p.cfg.RotationSplit) && len(line) > 2:
		cut := 1 + p.rng.IntN(len(line)-1)
		p.rep.RotationSplits++
		p.deliver(line[:cut])
		p.deliver(line[cut:])
		return
	case p.cfg.Truncate > 0 && p.rng.Bool(p.cfg.Truncate) && len(line) > 2:
		line = line[:1+p.rng.IntN(len(line)-1)]
		p.rep.Truncated++
	}
	p.deliver(line)
}

// deliver routes a (possibly mutated) line through duplication and
// reordering to the output.
func (p *processor) deliver(line string) {
	if p.cfg.Reorder > 0 && p.rng.Bool(p.cfg.Reorder) {
		p.held = append(p.held, heldLine{line: line, delay: 1 + p.rng.IntN(p.cfg.ReorderDepth)})
		p.rep.Reordered++
		return
	}
	p.emit(line)
	if p.cfg.Duplicate > 0 && p.rng.Bool(p.cfg.Duplicate) {
		p.emit(line)
		p.rep.Duplicated++
	}
}

// emit writes one output line and releases any held lines whose delay has
// elapsed.
func (p *processor) emit(line string) {
	p.write(line)
	if len(p.held) == 0 {
		return
	}
	kept := p.held[:0]
	var due []string
	for _, h := range p.held {
		h.delay--
		if h.delay <= 0 {
			due = append(due, h.line)
		} else {
			kept = append(kept, h)
		}
	}
	p.held = kept
	for _, l := range due {
		p.write(l)
	}
}

// flush drains held lines at end of stream.
func (p *processor) flush() {
	for _, h := range p.held {
		p.write(h.line)
	}
	p.held = nil
}

func (p *processor) write(line string) {
	if p.err != nil {
		return
	}
	if _, err := p.w.WriteString(line); err != nil {
		p.err = err
		return
	}
	if err := p.w.WriteByte('\n'); err != nil {
		p.err = err
		return
	}
	p.rep.LinesOut++
}

// skew shifts the leading RFC 3339 timestamp of a "<ts> <node> ..." line
// by the node's stable clock offset; it reports whether the line belongs
// to a skewed node and was rewritten.
func (p *processor) skew(line string) (string, bool) {
	ts, rest, ok := strings.Cut(line, " ")
	if !ok {
		return line, false
	}
	node, _, ok := strings.Cut(rest, " ")
	if !ok || node == "" {
		return line, false
	}
	t, err := time.Parse(time.RFC3339, ts)
	if err != nil {
		return line, false
	}
	nh := simrand.HashString(node)
	if simrand.HashUnit(p.cfg.Seed, nh, 0x5e1ec7) >= p.cfg.ClockSkew {
		return line, false
	}
	// Stable per-node offset in [-MaxSkewSeconds, +MaxSkewSeconds], never 0.
	span := 2 * p.cfg.MaxSkewSeconds
	off := int(simrand.Hash64(p.cfg.Seed, nh, 0x0ff5e7)%uint64(span)) - p.cfg.MaxSkewSeconds
	if off == 0 {
		off = p.cfg.MaxSkewSeconds
	}
	shifted := t.Add(time.Duration(off) * time.Second)
	return shifted.UTC().Format(time.RFC3339) + " " + rest, true
}

// garbageLine produces one junk line: binary-ish noise, torn half-records
// and marker-bearing nonsense, so parsers are exercised on the kinds of
// bytes real rotated syslogs contain.
func (p *processor) garbageLine() string {
	switch p.rng.IntN(5) {
	case 0: // binary-looking noise
		var sb strings.Builder
		n := 8 + p.rng.IntN(48)
		for i := 0; i < n; i++ {
			sb.WriteByte(byte(0x21 + p.rng.IntN(94)))
		}
		return sb.String()
	case 1: // marker-bearing nonsense: claims to be a CE record
		return fmt.Sprintf("%d kernel: EDAC tx2_mc: CE socket=%d garbage=%x",
			p.rng.Uint64(), p.rng.IntN(9), p.rng.Uint64())
	case 2: // corrupted timestamp head
		return fmt.Sprintf("20XX-%02d-99T99:99:99Z astra-r%02dcXXnX kernel: mce: [Hardware Error] DUE cause=?",
			1+p.rng.IntN(12), p.rng.IntN(40))
	case 3: // orphaned record tail (the head was lost to rotation)
		return fmt.Sprintf("ank=%d row=0x%04x col=0x%03x addr=0x%010x",
			p.rng.IntN(2), p.rng.IntN(1<<16), p.rng.IntN(1<<10), p.rng.Uint64()&0xffffffffff)
	default: // unrelated daemon chatter with odd bytes
		return fmt.Sprintf("<%d>liblogging-stdlog: -- MARK -- \x1b[%dm", p.rng.IntN(200), p.rng.IntN(50))
	}
}
