package corrupt

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func inputLines(n int) string {
	var sb strings.Builder
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%s astra-r%02dc00n0 kernel: line %d payload=0x%04x\n",
			base.Add(time.Duration(i)*time.Second).Format(time.RFC3339), i%36, i, i)
	}
	return sb.String()
}

func run(t *testing.T, cfg Config, input string) (string, Report) {
	t.Helper()
	var out strings.Builder
	rep, err := New(cfg).Process(strings.NewReader(input), &out)
	if err != nil {
		t.Fatal(err)
	}
	return out.String(), rep
}

func TestZeroConfigIsPassthrough(t *testing.T) {
	in := inputLines(200)
	out, rep := run(t, Config{Seed: 1}, in)
	if out != in {
		t.Error("zero-rate corruption modified the stream")
	}
	if rep.Mutations() != 0 {
		t.Errorf("zero-rate mutations: %+v", rep)
	}
	if rep.LinesIn != 200 || rep.LinesOut != 200 {
		t.Errorf("line accounting: %+v", rep)
	}
}

func TestDeterministic(t *testing.T) {
	in := inputLines(500)
	cfg := Uniform(42, 0.05)
	a, ra := run(t, cfg, in)
	b, rb := run(t, cfg, in)
	if a != b {
		t.Error("same seed produced different corrupted output")
	}
	if ra != rb {
		t.Errorf("same seed produced different reports: %+v vs %+v", ra, rb)
	}
	c, _ := run(t, Uniform(43, 0.05), in)
	if a == c {
		t.Error("different seeds produced identical corrupted output")
	}
}

func TestEachFaultClass(t *testing.T) {
	in := inputLines(300)
	nIn := 300

	t.Run("truncate", func(t *testing.T) {
		out, rep := run(t, Config{Seed: 7, Truncate: 1}, in)
		if rep.Truncated != nIn {
			t.Errorf("Truncated = %d, want %d", rep.Truncated, nIn)
		}
		for i, l := range nonEmpty(out) {
			if strings.Contains(l, "payload=") && strings.HasSuffix(l, fmt.Sprintf("payload=0x%04x", i)) {
				t.Fatalf("line %d survived truncation intact: %q", i, l)
			}
		}
	})

	t.Run("duplicate", func(t *testing.T) {
		out, rep := run(t, Config{Seed: 7, Duplicate: 1}, in)
		if rep.Duplicated != nIn {
			t.Errorf("Duplicated = %d, want %d", rep.Duplicated, nIn)
		}
		lines := nonEmpty(out)
		if len(lines) != 2*nIn {
			t.Fatalf("lines out = %d, want %d", len(lines), 2*nIn)
		}
		for i := 0; i < len(lines); i += 2 {
			if lines[i] != lines[i+1] {
				t.Fatalf("line %d not duplicated adjacently", i)
			}
		}
	})

	t.Run("reorder-bounded", func(t *testing.T) {
		out, rep := run(t, Config{Seed: 7, Reorder: 0.3, ReorderDepth: 4}, in)
		if rep.Reordered == 0 {
			t.Fatal("no lines reordered at rate 0.3")
		}
		lines := nonEmpty(out)
		if len(lines) != nIn {
			t.Fatalf("reorder changed line count: %d", len(lines))
		}
		// Bounded displacement: every line within ReorderDepth+held-queue
		// slack of its input position. With depth 4 the displacement can
		// compound slightly while several lines are held; assert a loose
		// but finite bound.
		pos := map[string]int{}
		for i, l := range nonEmpty(in) {
			pos[l] = i
		}
		for i, l := range lines {
			want, ok := pos[l]
			if !ok {
				t.Fatalf("unknown line %q", l)
			}
			if d := i - want; d < -16 || d > 16 {
				t.Fatalf("line displaced by %d positions", d)
			}
		}
	})

	t.Run("clock-skew", func(t *testing.T) {
		out, rep := run(t, Config{Seed: 7, ClockSkew: 1, MaxSkewSeconds: 60}, in)
		if rep.Skewed != nIn {
			t.Errorf("Skewed = %d, want %d", rep.Skewed, nIn)
		}
		inLines := nonEmpty(in)
		for i, l := range nonEmpty(out) {
			if l == inLines[i] {
				t.Fatalf("line %d not skewed", i)
			}
			ts := strings.Fields(l)[0]
			got, err := time.Parse(time.RFC3339, ts)
			if err != nil {
				t.Fatalf("skewed timestamp unparseable: %v", err)
			}
			orig, _ := time.Parse(time.RFC3339, strings.Fields(inLines[i])[0])
			d := got.Sub(orig)
			if d == 0 || d < -60*time.Second || d > 60*time.Second {
				t.Fatalf("skew %v out of bounds", d)
			}
		}
		// Same node ⇒ same offset (stable per-node skew).
		offsets := map[string]time.Duration{}
		for i, l := range nonEmpty(out) {
			node := strings.Fields(l)[1]
			orig, _ := time.Parse(time.RFC3339, strings.Fields(inLines[i])[0])
			got, _ := time.Parse(time.RFC3339, strings.Fields(l)[0])
			if prev, ok := offsets[node]; ok && prev != got.Sub(orig) {
				t.Fatalf("node %s skew not stable: %v vs %v", node, prev, got.Sub(orig))
			}
			offsets[node] = got.Sub(orig)
		}
	})

	t.Run("garbage", func(t *testing.T) {
		out, rep := run(t, Config{Seed: 7, Garbage: 1}, in)
		if rep.GarbageInserted != nIn {
			t.Errorf("GarbageInserted = %d, want %d", rep.GarbageInserted, nIn)
		}
		if got := len(nonEmpty(out)); got != 2*nIn {
			t.Errorf("lines out = %d, want %d", got, 2*nIn)
		}
	})

	t.Run("rotation-split", func(t *testing.T) {
		out, rep := run(t, Config{Seed: 7, RotationSplit: 1}, in)
		if rep.RotationSplits != nIn {
			t.Errorf("RotationSplits = %d, want %d", rep.RotationSplits, nIn)
		}
		lines := nonEmpty(out)
		if len(lines) < 2*nIn-5 { // splits at byte 0 of empty-ish lines aside
			t.Errorf("lines out = %d, want ~%d", len(lines), 2*nIn)
		}
	})

	t.Run("drop-runs", func(t *testing.T) {
		out, rep := run(t, Config{Seed: 7, DropRun: 0.02, DropRunLen: 8}, in)
		if rep.DroppedLines == 0 {
			t.Fatal("no lines dropped")
		}
		if got := len(nonEmpty(out)); got != nIn-rep.DroppedLines {
			t.Errorf("lines out = %d, dropped = %d, in = %d", got, rep.DroppedLines, nIn)
		}
	})
}

func TestUniformRates(t *testing.T) {
	in := inputLines(2000)
	_, rep := run(t, Uniform(9, 0.01), in)
	// Each class should fire at roughly 1% of 2000 = 20 lines; allow wide
	// stochastic slop but require activity in every class.
	for name, n := range map[string]int{
		"Truncated":       rep.Truncated,
		"Duplicated":      rep.Duplicated,
		"Reordered":       rep.Reordered,
		"GarbageInserted": rep.GarbageInserted,
		"RotationSplits":  rep.RotationSplits,
	} {
		if n == 0 {
			t.Errorf("%s = 0 at rate 0.01 over 2000 lines", name)
		}
		if n > 100 {
			t.Errorf("%s = %d, implausibly high for rate 0.01", name, n)
		}
	}
	// Dropped-run scaling: expected p*N = 20 dropped lines.
	if rep.DroppedLines > 200 {
		t.Errorf("DroppedLines = %d, want ~20", rep.DroppedLines)
	}
	if rep.Mutations() == 0 {
		t.Error("no mutations at nonzero rate")
	}
}

func TestProcessCSVKeepsHeader(t *testing.T) {
	in := "timestamp,node,sensor,value\n" + strings.Repeat("2019-05-01T00:00:00Z,astra-r00c00n0,cpu1,40.0\n", 100)
	var out strings.Builder
	rep, err := New(Uniform(3, 0.5)).ProcessCSV(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if first != "timestamp,node,sensor,value" {
		t.Errorf("header corrupted: %q", first)
	}
	if rep.Mutations() == 0 {
		t.Error("no data-row mutations")
	}
}

func TestFullRateDoesNotLoseEverything(t *testing.T) {
	// Even at 100% combined corruption the stream still yields lines (the
	// ingest path must cope, not crash; the dropped-run rate is p/len).
	in := inputLines(500)
	out, rep := run(t, Uniform(11, 1), in)
	if len(nonEmpty(out)) == 0 {
		t.Error("rate-1 corruption produced an empty stream")
	}
	if rep.Truncated == 0 && rep.RotationSplits == 0 {
		t.Error("rate-1 corruption left lines uncut")
	}
}

func nonEmpty(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
