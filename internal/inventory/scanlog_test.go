package inventory

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestScanRoundTrip(t *testing.T) {
	reg := NewRegistry(3)
	day := simtime.DayOf(simtime.ReplacementStart)
	var buf bytes.Buffer
	if err := WriteScan(&buf, day, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	gotDay, snap, err := ReadScan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotDay != day {
		t.Errorf("day = %v, want %v", gotDay, day)
	}
	want := reg.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot size %d, want %d", len(snap), len(want))
	}
	for loc, serial := range want {
		if snap[loc] != serial {
			t.Errorf("location %q: %q vs %q", loc, snap[loc], serial)
		}
	}
}

func TestReadScanRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad-header":    "not a header\nfoo\tbar\n",
		"malformed":     "# inventory scan 2019-02-17\nno-tab-here\n",
		"empty-serial":  "# inventory scan 2019-02-17\nloc\t\n",
		"duplicate-loc": "# inventory scan 2019-02-17\na/cpu0\tSN1\na/cpu0\tSN2\n",
	}
	for name, in := range cases {
		if _, _, err := ReadScan(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupt scan accepted", name)
		}
	}
}

// memFile collects scan bytes per day.
type memFile struct{ buf *bytes.Buffer }

func (m memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m memFile) Close() error                { return nil }

func TestScanSeriesRecoverasTable1(t *testing.T) {
	const nodes = 200
	h, err := Generate(31, nodes, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	var days []simtime.Day
	files := map[simtime.Day]*bytes.Buffer{}
	err = h.WriteScanSeries(nodes, 1, func(day simtime.Day) (io.WriteCloser, error) {
		buf := &bytes.Buffer{}
		files[day] = buf
		days = append(days, day)
		return memFile{buf}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(days) < 200 {
		t.Fatalf("only %d daily scans", len(days))
	}
	readers := make([]io.Reader, len(days))
	for i, d := range days {
		readers[i] = files[d]
	}
	detected, err := DiffScanSeries(readers)
	if err != nil {
		t.Fatal(err)
	}
	truth := h.Totals()
	for k := Kind(0); k < NumKinds; k++ {
		if detected[k] > truth[k] || truth[k]-detected[k] > 1+truth[k]/20 {
			t.Errorf("%v: scan series detected %d of %d", k, detected[k], truth[k])
		}
	}
}

func TestScanSeriesStrideAndErrors(t *testing.T) {
	h, err := Generate(32, 50, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = h.WriteScanSeries(50, 30, func(simtime.Day) (io.WriteCloser, error) {
		count++
		return memFile{&bytes.Buffer{}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count < 5 || count > 10 {
		t.Errorf("30-day stride produced %d scans", count)
	}
	if err := h.WriteScanSeries(50, 0, nil); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestDiffScanSeriesOrderEnforced(t *testing.T) {
	reg := NewRegistry(2)
	var a, b bytes.Buffer
	start := simtime.DayOf(simtime.ReplacementStart)
	if err := WriteScan(&a, start+5, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteScan(&b, start, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := DiffScanSeries([]io.Reader{&a, &b}); err == nil {
		t.Error("out-of-order scans accepted")
	}
}
