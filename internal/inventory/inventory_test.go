package inventory

import (
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestKindNamesAndPopulations(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("kind %v round trip: %v, %v", k, back, err)
		}
	}
	if _, err := ParseKind("gpu"); err == nil {
		t.Error("ParseKind(gpu) should fail")
	}
	if Processor.Population() != 5184 {
		t.Errorf("processors = %d, want 5184", Processor.Population())
	}
	if Motherboard.Population() != 2592 {
		t.Errorf("motherboards = %d, want 2592", Motherboard.Population())
	}
	if DIMM.Population() != 41472 {
		t.Errorf("DIMMs = %d, want 41472", DIMM.Population())
	}
	if len(Processor.Slots()) != 2 || len(Motherboard.Slots()) != 1 || len(DIMM.Slots()) != 16 {
		t.Error("slot lists wrong")
	}
}

func TestPhaseIntensityNormalizes(t *testing.T) {
	for _, proc := range DefaultProcesses() {
		for _, ph := range proc.Phases {
			sum := 0.0
			for d := simtime.DayOf(simtime.ReplacementStart); d < simtime.DayOf(simtime.ReplacementEnd); d++ {
				v := ph.Intensity(d)
				if v < 0 {
					t.Fatalf("%v/%s: negative intensity", proc.Kind, ph.Label)
				}
				sum += v
			}
			if math.Abs(sum-ph.Expected) > 0.02*ph.Expected+0.5 {
				t.Errorf("%v/%s: intensity sums to %v, want %v", proc.Kind, ph.Label, sum, ph.Expected)
			}
		}
	}
}

func TestDefaultCalibrationMatchesTable1(t *testing.T) {
	want := map[Kind]float64{Processor: 836, Motherboard: 46, DIMM: 1515}
	for _, proc := range DefaultProcesses() {
		if got := proc.ExpectedTotal(); math.Abs(got-want[proc.Kind]) > 0.01*want[proc.Kind] {
			t.Errorf("%v expected total = %v, want %v", proc.Kind, got, want[proc.Kind])
		}
	}
}

func TestGenerateTotals(t *testing.T) {
	h, err := Generate(1, topology.Nodes, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	totals := h.Totals()
	for _, c := range []struct {
		kind Kind
		want float64
	}{{Processor, 836}, {Motherboard, 46}, {DIMM, 1515}} {
		got := float64(totals[c.kind])
		if math.Abs(got-c.want) > 4*math.Sqrt(c.want)+1 {
			t.Errorf("%v total = %v, want ~%v", c.kind, got, c.want)
		}
	}
}

func TestGenerateInfantMortalityShape(t *testing.T) {
	h, err := Generate(2, topology.Nodes, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	// DIMM replacements in the first 30 days should exceed those in days
	// 31-60 (decay), and the vendor-visit tail should be busy again.
	daily := h.DailyCounts(DIMM)
	start := simtime.DayOf(simtime.ReplacementStart)
	sumRange := func(from, to simtime.Day) int {
		s := 0
		for d := from; d < to; d++ {
			s += daily[d]
		}
		return s
	}
	early := sumRange(start, start+30)
	mid := sumRange(start+31, start+61)
	if early <= mid {
		t.Errorf("no infant-mortality decay: first 30d = %d, next 30d = %d", early, mid)
	}
	endD := simtime.DayOf(simtime.ReplacementEnd)
	tail := sumRange(endD-9, endD)
	if tail < 100 {
		t.Errorf("vendor-visit tail too quiet: %d in last 9 days", tail)
	}
}

func TestGenerateProcessorUpgradeCampaign(t *testing.T) {
	h, err := Generate(3, topology.Nodes, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	daily := h.DailyCounts(Processor)
	// July should be much busier than May (speed-upgrade campaign).
	monthSum := func(m int) int {
		s := 0
		for d, c := range daily {
			if int(d.Time().Month()) == m {
				s += c
			}
		}
		return s
	}
	if july, may := monthSum(7), monthSum(5); july < 3*may {
		t.Errorf("speed-upgrade campaign missing: July=%d May=%d", july, may)
	}
}

func TestGenerateScaledDown(t *testing.T) {
	h, err := Generate(4, 259, DefaultProcesses()) // ~10% of the system
	if err != nil {
		t.Fatal(err)
	}
	totals := h.Totals()
	if got := float64(totals[Processor]); math.Abs(got-83.6) > 40 {
		t.Errorf("scaled processor total = %v, want ~84", got)
	}
	for _, r := range h.Replacements {
		if int(r.Node) >= 259 {
			t.Fatalf("replacement on out-of-range node %d", r.Node)
		}
	}
}

func TestGenerateRejectsBadNodeCount(t *testing.T) {
	if _, err := Generate(1, 0, DefaultProcesses()); err == nil {
		t.Error("Generate(0 nodes) should fail")
	}
	if _, err := Generate(1, topology.Nodes+1, DefaultProcesses()); err == nil {
		t.Error("Generate(too many nodes) should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(7, 100, DefaultProcesses())
	b, _ := Generate(7, 100, DefaultProcesses())
	if len(a.Replacements) != len(b.Replacements) {
		t.Fatal("same-seed histories differ in length")
	}
	for i := range a.Replacements {
		if a.Replacements[i] != b.Replacements[i] {
			t.Fatal("same-seed replacements differ")
		}
	}
}

func TestRegistryAndDiff(t *testing.T) {
	reg := NewRegistry(2)
	before := reg.Snapshot()
	if len(before) != 2*(2+1+16) {
		t.Fatalf("registry size = %d", len(before))
	}
	loc := topology.NodeID(1).String() + "/dimmJ"
	old := reg.SerialAt(loc)
	if old == "" {
		t.Fatal("missing factory serial")
	}
	fresh := reg.Replace(loc, DIMM)
	if fresh == old {
		t.Fatal("Replace did not mint a new serial")
	}
	after := reg.Snapshot()
	obs := Diff(before, after)
	if len(obs) != 1 || obs[0].Location != loc || obs[0].OldSerial != old || obs[0].NewSerial != fresh {
		t.Errorf("Diff = %+v", obs)
	}
	// Diff handles added/removed locations.
	delete(after, loc)
	after["phantom/loc"] = "SN-X"
	obs = Diff(before, after)
	var sawRemoved, sawAdded bool
	for _, o := range obs {
		if o.Location == loc && o.NewSerial == "" {
			sawRemoved = true
		}
		if o.Location == "phantom/loc" && o.OldSerial == "" {
			sawAdded = true
		}
	}
	if !sawRemoved || !sawAdded {
		t.Errorf("Diff missed added/removed locations: %+v", obs)
	}
}

func TestDiffDetectsGeneratedHistory(t *testing.T) {
	// Replaying the ground-truth history day by day through scans and
	// diffing must recover exactly the generated replacement count.
	procs := DefaultProcesses()
	h, err := Generate(9, 200, procs)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(200)
	byDay := map[simtime.Day][]Replacement{}
	for _, r := range h.Replacements {
		byDay[r.Day] = append(byDay[r.Day], r)
	}
	prev := reg.Snapshot()
	detected := 0
	for d := simtime.DayOf(simtime.ReplacementStart); d < simtime.DayOf(simtime.ReplacementEnd); d++ {
		for _, r := range byDay[d] {
			reg.serials[r.Location()] = r.NewSerial
		}
		cur := reg.Snapshot()
		detected += len(Diff(prev, cur))
		prev = cur
	}
	// Same-day double replacement at one location collapses to one
	// observed swap; allow that small deficit.
	if detected > len(h.Replacements) || len(h.Replacements)-detected > len(h.Replacements)/20 {
		t.Errorf("detected %d of %d replacements", detected, len(h.Replacements))
	}
}
