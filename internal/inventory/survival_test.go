package inventory

import (
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestSurvivalDataAccounting(t *testing.T) {
	h, err := Generate(21, 400, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	for k := Kind(0); k < NumKinds; k++ {
		data := h.Survival(k, 400)
		// Every failure in the history appears exactly once.
		want := 0
		for _, rep := range h.Replacements {
			if rep.Kind == k {
				want++
			}
		}
		if data.Failures != want {
			t.Errorf("%v: failures = %d, want %d", k, data.Failures, want)
		}
		// Censored parts: one per location currently in service.
		locations := 400 * len(k.Slots())
		if data.Censored != locations {
			t.Errorf("%v: censored = %d, want %d (one live part per location)", k, data.Censored, locations)
		}
		if len(data.Times) != data.Failures+data.Censored {
			t.Errorf("%v: times length inconsistent", k)
		}
		for i, tt := range data.Times {
			if tt <= 0 {
				t.Fatalf("%v: non-positive lifetime %v at %d", k, tt, i)
			}
			_ = i
		}
		// Device-days: bounded by window * locations plus failure overlap.
		window := float64(simtime.DayOf(simtime.ReplacementEnd) - simtime.DayOf(simtime.ReplacementStart))
		if data.DeviceDays > window*float64(locations)+float64(data.Failures) {
			t.Errorf("%v: device-days %v exceed window capacity", k, data.DeviceDays)
		}
	}
}

func TestAnalyzeSurvivalDIMMs(t *testing.T) {
	h, err := Generate(22, topology.Nodes, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	a := h.AnalyzeSurvival(DIMM, topology.Nodes)
	if a.WeibullErr != nil {
		t.Fatalf("Weibull fit failed: %v", a.WeibullErr)
	}
	// The DIMM failure-time distribution mixes a decaying infant-
	// mortality phase with later episodes; the fitted shape must not be
	// in the strong wear-out regime.
	if a.Weibull.Shape > 2 {
		t.Errorf("Weibull shape = %v, implausibly wear-out-like", a.Weibull.Shape)
	}
	// ~3.7% of DIMMs are replaced, so window survival should be ~96%.
	if a.WindowSurvival < 0.93 || a.WindowSurvival > 0.99 {
		t.Errorf("window survival = %v, want ~0.96", a.WindowSurvival)
	}
	if len(a.KM) == 0 {
		t.Fatal("empty KM curve")
	}
	// KM is non-increasing.
	for i := 1; i < len(a.KM); i++ {
		if a.KM[i].Survival > a.KM[i-1].Survival {
			t.Fatal("KM curve increased")
		}
	}
	// MTBF: ~41472 DIMMs * 212 days / ~1515 failures ~= 5800 device-days.
	if a.MTBFDays < 3000 || a.MTBFDays > 12000 {
		t.Errorf("MTBF = %v device-days", a.MTBFDays)
	}
}

func TestInfantMortalityShapeBelowOne(t *testing.T) {
	// A pure infant-mortality process (single decay phase) must fit with
	// Weibull shape < 1.
	procs := []Process{{Kind: Motherboard, Phases: []Phase{{
		Label: "infant mortality", Shape: ShapeDecay,
		Start: simtime.ReplacementStart, End: simtime.ReplacementEnd,
		Expected: 300, DecayDays: 25,
	}}}}
	h, err := Generate(23, topology.Nodes, procs)
	if err != nil {
		t.Fatal(err)
	}
	a := h.AnalyzeSurvival(Motherboard, topology.Nodes)
	if a.WeibullErr != nil {
		t.Fatal(a.WeibullErr)
	}
	if a.Weibull.Shape >= 1 {
		t.Errorf("infant-mortality shape = %v, want < 1 (decreasing hazard)", a.Weibull.Shape)
	}
}

func TestScanDetectedTotalsMatchGroundTruth(t *testing.T) {
	h, err := Generate(24, 300, DefaultProcesses())
	if err != nil {
		t.Fatal(err)
	}
	detected, err := h.ScanDetectedTotals(300)
	if err != nil {
		t.Fatal(err)
	}
	truth := h.Totals()
	for k := Kind(0); k < NumKinds; k++ {
		// Scan diffing may collapse same-day double swaps; allow a small
		// undercount but nothing else.
		if detected[k] > truth[k] {
			t.Errorf("%v: detected %d > truth %d", k, detected[k], truth[k])
		}
		if deficit := truth[k] - detected[k]; float64(deficit) > math.Max(2, 0.05*float64(truth[k])) {
			t.Errorf("%v: detected %d of %d", k, detected[k], truth[k])
		}
	}
	if _, err := h.ScanDetectedTotals(0); err == nil {
		t.Error("zero nodes accepted")
	}
}
