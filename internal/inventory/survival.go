package inventory

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/stats"
)

// SurvivalData is the component-lifetime view of a replacement history:
// observed lifetimes for parts that failed inside the tracking window and
// right-censored lifetimes for parts still in service at its end — the
// input to the Kaplan-Meier and Weibull analyses (the §3.1 infant-
// mortality discussion, quantified; cf. Levy et al.'s Cielo lifetime study
// and Ostrouchov et al.'s Titan GPU survival analysis from the paper's
// related work).
type SurvivalData struct {
	Kind Kind
	// Times are lifetimes in days; Observed[i] is true for a failure,
	// false for censoring at window end.
	Times    []float64
	Observed []bool
	// Failures and Censored count each class.
	Failures, Censored int
	// DeviceDays is the total observed device-time, for MTBF.
	DeviceDays float64
}

// Survival extracts lifetime data for one component kind from the history,
// over nodes [0, nodes). Factory parts are installed at the start of the
// tracking window; replacement parts at their predecessor's failure day.
func (h *History) Survival(kind Kind, nodes int) SurvivalData {
	start := simtime.DayOf(simtime.ReplacementStart)
	end := simtime.DayOf(simtime.ReplacementEnd)
	out := SurvivalData{Kind: kind}

	// install tracks the in-service part per location.
	install := map[string]simtime.Day{}
	record := func(days float64, observed bool) {
		out.Times = append(out.Times, days)
		out.Observed = append(out.Observed, observed)
		out.DeviceDays += days
		if observed {
			out.Failures++
		} else {
			out.Censored++
		}
	}
	for _, rep := range h.Replacements {
		if rep.Kind != kind {
			continue
		}
		loc := rep.Location()
		installed, ok := install[loc]
		if !ok {
			installed = start
		}
		life := float64(rep.Day - installed)
		if life <= 0 {
			life = 0.5 // same-day failure: half a day of service
		}
		record(life, true)
		install[loc] = rep.Day
	}
	// Censor everything still in service: the replaced locations' current
	// parts, plus every location never touched.
	slots := kind.Slots()
	totalLocations := nodes * len(slots)
	for _, installed := range install {
		record(float64(end-installed), false)
	}
	untouched := totalLocations - len(install)
	for i := 0; i < untouched; i++ {
		record(float64(end-start), false)
	}
	return out
}

// SurvivalAnalysis summarizes a component kind's reliability.
type SurvivalAnalysis struct {
	Data SurvivalData
	// KM is the Kaplan-Meier survival curve over the tracking window.
	KM []stats.KMPoint
	// Weibull fits the observed failure lifetimes; Shape < 1 quantifies
	// infant mortality. The fit ignores censoring (it characterizes the
	// failures that did occur, not the population lifetime).
	Weibull    stats.WeibullFit
	WeibullErr error
	// MTBFDays is total device-days divided by failures.
	MTBFDays float64
	// WindowSurvival is S(window length): the fraction of parts expected
	// to survive the whole tracking window, from the KM curve.
	WindowSurvival float64
}

// AnalyzeSurvival runs the lifetime analyses for one kind.
func (h *History) AnalyzeSurvival(kind Kind, nodes int) SurvivalAnalysis {
	data := h.Survival(kind, nodes)
	a := SurvivalAnalysis{Data: data}
	a.KM = stats.KaplanMeier(data.Times, data.Observed)
	var failed []float64
	for i, t := range data.Times {
		if data.Observed[i] {
			failed = append(failed, t)
		}
	}
	a.Weibull, a.WeibullErr = stats.FitWeibull(failed)
	a.MTBFDays = stats.MTBF(data.DeviceDays, data.Failures)
	window := float64(simtime.DayOf(simtime.ReplacementEnd) - simtime.DayOf(simtime.ReplacementStart))
	a.WindowSurvival = stats.SurvivalAt(a.KM, window)
	return a
}

// ScanDetectedTotals re-derives the Table 1 totals the way the site did:
// by replaying the ground-truth swaps through a registry, snapshotting a
// scan every day, and diffing consecutive scans. Same-day double swaps at
// one location collapse into a single observed replacement, so the result
// can undercount slightly — which is exactly what scan-based accounting
// does in the field.
func (h *History) ScanDetectedTotals(nodes int) ([NumKinds]int, error) {
	var out [NumKinds]int
	if nodes <= 0 {
		return out, fmt.Errorf("inventory: nodes = %d", nodes)
	}
	reg := NewRegistry(nodes)
	byDay := map[simtime.Day][]Replacement{}
	for _, rep := range h.Replacements {
		byDay[rep.Day] = append(byDay[rep.Day], rep)
	}
	kindOfSlot := map[string]Kind{}
	for k := Kind(0); k < NumKinds; k++ {
		for _, s := range k.Slots() {
			kindOfSlot[s] = k
		}
	}
	prev := reg.Snapshot()
	for d := simtime.DayOf(simtime.ReplacementStart); d < simtime.DayOf(simtime.ReplacementEnd); d++ {
		for _, rep := range byDay[d] {
			reg.serials[rep.Location()] = rep.NewSerial
		}
		cur := reg.Snapshot()
		for _, obs := range Diff(prev, cur) {
			slot := obs.Location[lastSlash(obs.Location)+1:]
			if k, ok := kindOfSlot[slot]; ok {
				out[k]++
			}
		}
		prev = cur
	}
	return out, nil
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
