package inventory

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/simtime"
)

// WriteScan writes one daily inventory scan in the site's text format:
// one "location<TAB>serial" line per installed component, sorted by
// location, preceded by a header naming the scan date.
func WriteScan(w io.Writer, day simtime.Day, snap Snapshot) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# inventory scan %s\n", day.Time().Format("2006-01-02")); err != nil {
		return err
	}
	locs := make([]string, 0, len(snap))
	for loc := range snap {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	for _, loc := range locs {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", loc, snap[loc]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadScan parses a daily scan written by WriteScan. Malformed lines are
// an error: scans are machine-generated, so corruption means the file is
// untrustworthy.
func ReadScan(r io.Reader) (simtime.Day, Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return 0, nil, fmt.Errorf("inventory: empty scan")
	}
	header := sc.Text()
	var y, m, d int
	if _, err := fmt.Sscanf(header, "# inventory scan %04d-%02d-%02d", &y, &m, &d); err != nil {
		return 0, nil, fmt.Errorf("inventory: bad scan header %q: %w", header, err)
	}
	day := simtime.DayOf(time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC))
	snap := Snapshot{}
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		loc, serial, ok := strings.Cut(text, "\t")
		if !ok || loc == "" || serial == "" {
			return 0, nil, fmt.Errorf("inventory: malformed scan line %d: %q", line, text)
		}
		if _, dup := snap[loc]; dup {
			return 0, nil, fmt.Errorf("inventory: duplicate location %q at line %d", loc, line)
		}
		snap[loc] = serial
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return day, snap, nil
}

// ScanDays returns the days on which a scan series with the given stride
// (>= 1) takes a scan: the replacement-window start, then every stride
// days after it. The list is the unit of checkpointing for exports — each
// day's scan is an independent, deterministic artifact.
func (h *History) ScanDays(stride int) ([]simtime.Day, error) {
	if stride < 1 {
		return nil, fmt.Errorf("inventory: stride must be >= 1")
	}
	start := simtime.DayOf(simtime.ReplacementStart)
	end := simtime.DayOf(simtime.ReplacementEnd)
	days := []simtime.Day{start}
	for day := start; day < end; day++ {
		if offset := int(day-start) + 1; offset%stride == 0 {
			days = append(days, day+1)
		}
	}
	return days, nil
}

// WriteScanDay writes the single scan a series would take on day: the
// registry state after every replacement strictly before day (Replacements
// are recorded in day order, so a linear replay reproduces the series'
// incremental state exactly). The first scan of a series therefore
// precedes any replacement.
func (h *History) WriteScanDay(w io.Writer, nodes int, day simtime.Day) error {
	reg := NewRegistry(nodes)
	start := simtime.DayOf(simtime.ReplacementStart)
	for _, rep := range h.Replacements {
		if rep.Day >= start && rep.Day < day {
			reg.serials[rep.Location()] = rep.NewSerial
		}
	}
	return WriteScan(w, day, reg.Snapshot())
}

// WriteScanSeries replays the history through the registry and writes one
// scan per stride days (stride >= 1) via open, which supplies a writer for
// each day (for example a file per scan). The first scan precedes any
// replacement. The series is exactly ScanDays/WriteScanDay composed, so
// per-day exports and the streaming series are byte-identical.
func (h *History) WriteScanSeries(nodes, stride int, open func(day simtime.Day) (io.WriteCloser, error)) error {
	days, err := h.ScanDays(stride)
	if err != nil {
		return err
	}
	for _, day := range days {
		w, err := open(day)
		if err != nil {
			return err
		}
		if err := h.WriteScanDay(w, nodes, day); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// DiffScanSeries reads consecutive scans (in order) and tallies observed
// replacements per component kind — the site's Table 1 derivation over the
// raw artifacts.
func DiffScanSeries(scans []io.Reader) ([NumKinds]int, error) {
	var totals [NumKinds]int
	kindOfSlot := map[string]Kind{}
	for k := Kind(0); k < NumKinds; k++ {
		for _, s := range k.Slots() {
			kindOfSlot[s] = k
		}
	}
	var prev Snapshot
	var prevDay simtime.Day
	for i, r := range scans {
		day, snap, err := ReadScan(r)
		if err != nil {
			return totals, fmt.Errorf("inventory: scan %d: %w", i, err)
		}
		if prev != nil {
			if day <= prevDay {
				return totals, fmt.Errorf("inventory: scans out of order (%v then %v)", prevDay, day)
			}
			for _, obs := range Diff(prev, snap) {
				slot := obs.Location[lastSlash(obs.Location)+1:]
				if k, ok := kindOfSlot[slot]; ok {
					totals[k]++
				}
			}
		}
		prev, prevDay = snap, day
	}
	return totals, nil
}
