package inventory

import (
	"testing"
	"testing/quick"
)

// Property: Diff(a, a) is empty, and Diff detects exactly the changed,
// added and removed locations for arbitrary snapshots.
func TestDiffProperty(t *testing.T) {
	build := func(keys []uint8, vals []uint8) Snapshot {
		s := Snapshot{}
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			s["loc"+string(rune('A'+keys[i]%16))] = "SN" + string(rune('0'+vals[i]%8))
		}
		return s
	}
	f := func(k1, v1, k2, v2 []uint8) bool {
		a := build(k1, v1)
		b := build(k2, v2)
		if len(Diff(a, a)) != 0 || len(Diff(b, b)) != 0 {
			return false
		}
		obs := Diff(a, b)
		// Count expected differences directly.
		want := 0
		for loc, sa := range a {
			if sb, ok := b[loc]; !ok || sb != sa {
				want++
			}
		}
		for loc := range b {
			if _, ok := a[loc]; !ok {
				want++
			}
		}
		if len(obs) != want {
			return false
		}
		// Output sorted by location.
		for i := 1; i < len(obs); i++ {
			if obs[i-1].Location >= obs[i].Location {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
