// Package inventory models the hardware-replacement history of Astra's
// stabilization period (§3.1, Table 1, Fig 3): a registry of serialized
// components (processors, motherboards, DIMMs), replacement processes
// shaped by the episodes the paper describes (infant mortality, the
// memory-controller speed-upgrade campaign, cooling incidents, steady
// aging, the end-of-period vendor visit), daily inventory scans, and a
// scan differ — because the site detected replacements "by analyzing the
// site's daily inventory scan logs", the reproduction derives Table 1 the
// same way rather than reading the ground truth directly.
package inventory

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Kind identifies a replaceable component class.
type Kind int

// Component kinds.
const (
	Processor Kind = iota
	Motherboard
	DIMM
	// NumKinds is the number of component kinds.
	NumKinds
)

// String names the kind as in Table 1.
func (k Kind) String() string {
	switch k {
	case Processor:
		return "processor"
	case Motherboard:
		return "motherboard"
	case DIMM:
		return "dimm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a kind name produced by String.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("inventory: unknown component kind %q", s)
}

// Population returns the installed count of a kind on the full system
// (Table 1's "of" denominators: 5184 processors, 2592 motherboards,
// 41472 DIMMs).
func (k Kind) Population() int {
	switch k {
	case Processor:
		return topology.Nodes * topology.SocketsPerNode
	case Motherboard:
		return topology.Nodes
	case DIMM:
		return topology.DIMMs
	default:
		return 0
	}
}

// slotNames holds the per-node location names per kind, computed once:
// Slots is called inside per-day and per-node loops, where rebuilding the
// DIMM name list (17 allocations) dominated the whole generator's
// allocation profile.
var slotNames = func() [NumKinds][]string {
	var out [NumKinds][]string
	out[Processor] = []string{"cpu0", "cpu1"}
	out[Motherboard] = []string{"mb"}
	names := make([]string, topology.SlotsPerNode)
	for i, s := range topology.AllSlots() {
		names[i] = "dimm" + s.Name()
	}
	out[DIMM] = names
	return out
}()

// Slots returns the per-node location names for a kind. The slice is
// shared; callers must not modify it.
func (k Kind) Slots() []string {
	if k < 0 || k >= NumKinds {
		return nil
	}
	return slotNames[k]
}

// Shape of a replacement-process phase.
type Shape int

// Phase shapes.
const (
	// ShapeDecay: exponentially decaying intensity (infant mortality).
	ShapeDecay Shape = iota
	// ShapeUniform: flat intensity (campaigns, steady aging).
	ShapeUniform
)

// Phase is one episode of a component's replacement history.
type Phase struct {
	// Label names the episode ("infant mortality", "speed upgrade", ...).
	Label string
	// Shape selects the intensity profile.
	Shape Shape
	// Start and End bound the episode (End exclusive).
	Start, End time.Time
	// Expected is the expected number of replacements in the episode.
	Expected float64
	// DecayDays is the exponential time constant for ShapeDecay.
	DecayDays float64
}

// Intensity returns the expected replacements on the given day.
func (p Phase) Intensity(d simtime.Day) float64 {
	s, e := simtime.DayOf(p.Start), simtime.DayOf(p.End)
	if d < s || d >= e {
		return 0
	}
	n := float64(e - s)
	if p.Shape == ShapeUniform {
		return p.Expected / n
	}
	// Decay normalized over the discrete days of the phase:
	// sum_{i=0}^{n-1} exp(-i/tau) = (1 - exp(-n/tau)) / (1 - exp(-1/tau)).
	tau := p.DecayDays
	if tau <= 0 {
		tau = 10
	}
	norm := (1 - math.Exp(-n/tau)) / (1 - math.Exp(-1/tau))
	return p.Expected * math.Exp(-float64(d-s)/tau) / norm
}

// Process is the full replacement history model for one component kind.
type Process struct {
	Kind   Kind
	Phases []Phase
}

// ExpectedTotal sums the expected replacements across phases.
func (p Process) ExpectedTotal() float64 {
	total := 0.0
	for _, ph := range p.Phases {
		total += ph.Expected
	}
	return total
}

// DefaultProcesses returns the replacement-history calibration matching
// Table 1 (836 processors, 46 motherboards, 1515 DIMMs over Feb 17 -
// Sep 17, 2019) with the episode structure of Fig 3.
func DefaultProcesses() []Process {
	d := func(m time.Month, day int) time.Time {
		return time.Date(2019, m, day, 0, 0, 0, 0, time.UTC)
	}
	return []Process{
		{Kind: Processor, Phases: []Phase{
			{Label: "infant mortality", Shape: ShapeDecay, Start: simtime.ReplacementStart, End: d(time.April, 30), Expected: 180, DecayDays: 12},
			{Label: "baseline", Shape: ShapeUniform, Start: simtime.ReplacementStart, End: simtime.ReplacementEnd, Expected: 40},
			{Label: "memory-controller speed upgrade", Shape: ShapeUniform, Start: d(time.June, 20), End: d(time.August, 15), Expected: 600},
			{Label: "vendor visit", Shape: ShapeUniform, Start: d(time.September, 10), End: simtime.ReplacementEnd, Expected: 16},
		}},
		{Kind: Motherboard, Phases: []Phase{
			{Label: "infant mortality", Shape: ShapeDecay, Start: simtime.ReplacementStart, End: d(time.April, 15), Expected: 22, DecayDays: 15},
			{Label: "baseline", Shape: ShapeUniform, Start: simtime.ReplacementStart, End: simtime.ReplacementEnd, Expected: 6},
			{Label: "sustained-use failures", Shape: ShapeUniform, Start: d(time.June, 15), End: d(time.July, 30), Expected: 18},
		}},
		{Kind: DIMM, Phases: []Phase{
			{Label: "infant mortality", Shape: ShapeDecay, Start: simtime.ReplacementStart, End: d(time.March, 20), Expected: 320, DecayDays: 10},
			{Label: "cooling issues", Shape: ShapeUniform, Start: d(time.May, 1), End: d(time.June, 30), Expected: 500},
			{Label: "aging under heavy use", Shape: ShapeUniform, Start: d(time.July, 1), End: d(time.September, 5), Expected: 480},
			{Label: "vendor visit", Shape: ShapeUniform, Start: d(time.September, 8), End: simtime.ReplacementEnd, Expected: 215},
		}},
	}
}

// Replacement is one ground-truth component swap.
type Replacement struct {
	Day       simtime.Day
	Kind      Kind
	Node      topology.NodeID
	Slot      string // per-node location name, e.g. "cpu0", "dimmJ", "mb"
	OldSerial string
	NewSerial string
}

// Location renders the global location key used in scans.
func (r Replacement) Location() string { return fmt.Sprintf("%s/%s", r.Node, r.Slot) }

// History is a generated replacement timeline with the registry state it
// produced.
type History struct {
	Replacements []Replacement
	registry     *Registry
}

// Generate produces a replacement history for nodes [0, nodes) from the
// given processes, scaling expectations by nodes/topology.Nodes so reduced
// systems keep realistic per-node rates.
func Generate(seed uint64, nodes int, procs []Process) (*History, error) {
	if nodes <= 0 || nodes > topology.Nodes {
		return nil, fmt.Errorf("inventory: nodes = %d out of range", nodes)
	}
	scale := float64(nodes) / float64(topology.Nodes)
	rng := simrand.NewStream(seed).Derive("inventory")
	reg := NewRegistry(nodes)
	h := &History{registry: reg}
	start := simtime.DayOf(simtime.ReplacementStart)
	end := simtime.DayOf(simtime.ReplacementEnd)
	for day := start; day < end; day++ {
		ds := rng.DeriveN("day", uint64(day))
		for _, proc := range procs {
			intensity := 0.0
			for _, ph := range proc.Phases {
				intensity += ph.Intensity(day)
			}
			n := ds.Poisson(intensity * scale)
			slots := proc.Kind.Slots()
			for i := 0; i < n; i++ {
				node := topology.NodeID(ds.IntN(nodes))
				slot := slots[ds.IntN(len(slots))]
				rep := Replacement{
					Day:  day,
					Kind: proc.Kind,
					Node: node,
					Slot: slot,
				}
				rep.OldSerial = reg.SerialAt(rep.Location())
				rep.NewSerial = reg.Replace(rep.Location(), proc.Kind)
				h.Replacements = append(h.Replacements, rep)
			}
		}
	}
	return h, nil
}

// Registry returns the final component registry.
func (h *History) Registry() *Registry { return h.registry }

// DailyCounts tallies replacements per day for one kind — the Fig 3
// series. Keys are day indices; missing days mean zero.
func (h *History) DailyCounts(kind Kind) map[simtime.Day]int {
	out := map[simtime.Day]int{}
	for _, r := range h.Replacements {
		if r.Kind == kind {
			out[r.Day]++
		}
	}
	return out
}

// Totals returns the Table 1 row values: replacements per kind.
func (h *History) Totals() [NumKinds]int {
	var out [NumKinds]int
	for _, r := range h.Replacements {
		out[r.Kind]++
	}
	return out
}

// Registry tracks which serial number sits in each location.
type Registry struct {
	nodes   int
	serials map[string]string
	next    int
}

// NewRegistry builds a registry with factory serials for nodes [0, nodes).
// Location keys and serials are rendered append-style into a scratch
// buffer — one string allocation each, instead of Sprintf's per-argument
// boxing, which matters because the factory fill is tens of thousands of
// entries at full scale.
func NewRegistry(nodes int) *Registry {
	perNode := 0
	for k := Kind(0); k < NumKinds; k++ {
		perNode += len(k.Slots())
	}
	r := &Registry{nodes: nodes, serials: make(map[string]string, nodes*perNode)}
	var buf []byte
	for n := 0; n < nodes; n++ {
		node := topology.NodeID(n)
		for k := Kind(0); k < NumKinds; k++ {
			for _, slot := range k.Slots() {
				buf = node.AppendString(buf[:0])
				buf = append(buf, '/')
				buf = append(buf, slot...)
				r.serials[string(buf)] = r.mint(k)
			}
		}
	}
	return r
}

func (r *Registry) mint(k Kind) string {
	r.next++
	var tmp [40]byte
	b := append(tmp[:0], "SN-"...)
	b = append(b, k.String()...)
	b = append(b, '-')
	// %07d: zero-pad to at least 7 digits.
	digits := 1
	for v := r.next; v >= 10; v /= 10 {
		digits++
	}
	for ; digits < 7; digits++ {
		b = append(b, '0')
	}
	b = strconv.AppendInt(b, int64(r.next), 10)
	return string(b)
}

// SerialAt returns the serial currently at a location, or "" if unknown.
func (r *Registry) SerialAt(location string) string { return r.serials[location] }

// Replace installs a freshly minted serial at the location and returns it.
func (r *Registry) Replace(location string, k Kind) string {
	s := r.mint(k)
	r.serials[location] = s
	return s
}

// Snapshot returns a copy of the current location -> serial map — one
// daily inventory scan.
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot, len(r.serials))
	for k, v := range r.serials {
		out[k] = v
	}
	return out
}

// Snapshot is one daily inventory scan: location -> serial.
type Snapshot map[string]string

// Observed is a replacement detected by diffing two scans.
type Observed struct {
	Location  string
	OldSerial string
	NewSerial string
}

// Diff compares consecutive scans and returns the locations whose serial
// changed, sorted by location — how the site's tooling detected
// replacements. Locations present in only one scan are reported with the
// missing side empty.
func Diff(prev, next Snapshot) []Observed {
	var out []Observed
	for loc, old := range prev {
		if cur, ok := next[loc]; !ok {
			out = append(out, Observed{Location: loc, OldSerial: old})
		} else if cur != old {
			out = append(out, Observed{Location: loc, OldSerial: old, NewSerial: cur})
		}
	}
	for loc, cur := range next {
		if _, ok := prev[loc]; !ok {
			out = append(out, Observed{Location: loc, NewSerial: cur})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Location < out[b].Location })
	return out
}
