package overload

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenSingleProbeRace proves the half-open admission is a
// true mutual exclusion under concurrency: when an open breaker's
// cooldown elapses and a herd of goroutines races Allow, exactly one
// probe proceeds and every other caller is rejected and counted. Run
// under -race (make verify does) this also shakes out lock ordering in
// Allow/Failure/Stats.
func TestBreakerHalfOpenSingleProbeRace(t *testing.T) {
	const herd = 32
	const rounds = 25
	b, clk := newTestBreaker(1, time.Minute)

	// Open the circuit once; each round then races the half-open probe.
	if !b.Allow() {
		t.Fatal("closed breaker rejecting")
	}
	b.Failure()

	var totalRejected uint64
	for round := 0; round < rounds; round++ {
		clk.advance(time.Minute)

		var allowed atomic.Uint64
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(herd)
		for g := 0; g < herd; g++ {
			go func() {
				defer done.Done()
				start.Wait()
				if b.Allow() {
					allowed.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()

		if got := allowed.Load(); got != 1 {
			t.Fatalf("round %d: %d probes allowed through a half-open breaker, want exactly 1", round, got)
		}
		totalRejected += herd - 1
		st := b.Stats()
		if st.State != "half-open" {
			t.Fatalf("round %d: state %q after probe admission, want half-open", round, st.State)
		}
		if st.Rejected != totalRejected {
			t.Fatalf("round %d: rejected = %d, want %d (every non-probe caller counted)", round, st.Rejected, totalRejected)
		}
		// The probe fails: straight back to open for the next round.
		b.Failure()
		if b.State() != BreakerOpen {
			t.Fatalf("round %d: probe failure did not re-open", round)
		}
	}

	// Final round: the probe succeeds and the circuit closes for everyone.
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	b.Success()
	var allowed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				allowed.Add(1)
				b.Success()
			}
		}()
	}
	wg.Wait()
	if got := allowed.Load(); got != herd {
		t.Fatalf("closed breaker admitted %d of %d", got, herd)
	}
}
