package overload

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(failures int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	return NewBreaker(BreakerConfig{Failures: failures, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("opened below the failure threshold")
	}
	// An interleaved success resets the streak.
	if !b.Allow() {
		t.Fatal("rejected while closed")
	}
	b.Success()
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatal("did not open after 3 consecutive failures")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	st := b.Stats()
	if st.Opens != 1 || st.Rejected != 1 || st.State != "open" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	clk.advance(59 * time.Second)
	if b.Allow() {
		t.Fatal("allowed before cooldown elapsed")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admit = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second probe admitted while first outstanding")
	}
	// Probe fails: straight back to open, cooldown restarts.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted without a fresh cooldown")
	}
	clk.advance(61 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused after fresh cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the circuit")
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejecting")
	}
	b.Success()
	if st := b.Stats(); st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < DefaultBreakerFailures-1; i++ {
		b.Allow()
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("opened before the default threshold")
	}
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("default threshold did not open")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Fatal("breaker state strings changed; /healthz consumers depend on them")
	}
}
