package overload

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes every request through (healthy dependency).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast without touching the dependency until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets one probe through; its outcome closes or
	// re-opens the circuit.
	BreakerHalfOpen
)

// String renders the state for logs and /healthz.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults.
const (
	DefaultBreakerFailures = 3
	DefaultBreakerCooldown = 30 * time.Second
)

// BreakerConfig tunes a Breaker. The zero value is usable: 3 consecutive
// failures open the circuit for 30 seconds.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that opens the circuit
	// (0 means DefaultBreakerFailures).
	Failures int
	// Cooldown is how long the circuit stays open before a half-open
	// probe is allowed (0 means DefaultBreakerCooldown).
	Cooldown time.Duration
	// Now is the clock, injectable for tests (nil means time.Now).
	Now func() time.Time
}

// BreakerStats is a point-in-time view of a breaker.
type BreakerStats struct {
	// State is the current position ("closed", "open", "half-open").
	State string `json:"state"`
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// Opens counts transitions into the open state; Rejected counts
	// requests failed fast while open.
	Opens    uint64 `json:"opens"`
	Rejected uint64 `json:"rejected"`
}

// Breaker is a consecutive-failure circuit breaker. astrad wraps its
// checkpoint writes with one so a stalling or erroring disk degrades
// checkpoint cadence (writes are skipped, counted, and retried after a
// cooldown) instead of stalling the ingest path behind storage.
//
// Safe for concurrent use, though the intended shape is one goroutine
// calling Allow/Success/Failure and others reading Stats.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	opens    uint64
	rejected uint64
}

// NewBreaker builds a breaker with defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures <= 0 {
		cfg.Failures = DefaultBreakerFailures
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may proceed. While open it fails fast
// until the cooldown elapses, then admits exactly one half-open probe;
// the probe's Success or Failure decides what happens next. Every
// allowed request must be followed by exactly one Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		b.rejected++
		return false
	default: // BreakerHalfOpen
		if !b.probing {
			b.probing = true
			return true
		}
		b.rejected++
		return false
	}
}

// Success records a successful request: the circuit closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a failed request. A half-open probe failure re-opens
// immediately; otherwise the circuit opens once the consecutive-failure
// threshold is reached.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	wasProbe := b.state == BreakerHalfOpen
	b.probing = false
	if wasProbe || b.fails >= b.cfg.Failures {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.openedAt = b.cfg.Now()
	}
}

// State returns the current position without transitioning it (an open
// circuit past its cooldown still reads open until Allow probes it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns the breaker's accounting.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		Rejected:            b.rejected,
	}
}
