// Package overload is the admission-control layer of the online
// subsystem: the machinery that lets astrad survive the moments the
// paper's operators need it most — fleet-wide incidents, when ingest
// bursts and dashboard traffic spike together and a monitoring pipeline
// that falls over is worse than no monitoring at all.
//
// It provides two primitives:
//
//   - Queue, a bounded admission queue with high/low watermark
//     hysteresis and explicit shed policies (reject new work, or drop
//     the oldest queued work). Every record refused admission is
//     counted, never silently lost: at any quiescent point the books
//     balance exactly — offered == drained + depth + shed.
//
//   - Breaker, a circuit breaker for flaky or stalling dependencies
//     (astrad wraps checkpoint writes with one, so a sick disk degrades
//     checkpoint cadence instead of wedging ingest).
//
// The queue sits between the syslog follower and the stream engine. The
// scanner goroutine Offers records; a drainer goroutine Takes batches
// and feeds the engine; the checkpoint path uses Freeze to observe a
// consistent (engine records + queued records) snapshot without ever
// blocking Offer behind a disk write.
package overload

import (
	"fmt"
	"sync"
)

// Policy selects what a saturated queue sheds.
type Policy int

const (
	// PolicyReject refuses new records while the queue is saturated: the
	// freshest data is lost, the backlog already admitted is preserved.
	PolicyReject Policy = iota
	// PolicyDropOldest evicts the oldest queued record to admit the new
	// one: the backlog is lost record by record, the freshest data is
	// preserved (the right choice when the consumer cares about "now").
	PolicyDropOldest
)

// String renders the policy in its flag form.
func (p Policy) String() string {
	switch p {
	case PolicyReject:
		return "reject"
	case PolicyDropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the flag form produced by String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reject":
		return PolicyReject, nil
	case "drop-oldest":
		return PolicyDropOldest, nil
	}
	return 0, fmt.Errorf("overload: unknown shed policy %q (want reject or drop-oldest)", s)
}

// Config tunes a Queue.
type Config struct {
	// Capacity is the hard bound on queued records (required, > 0).
	Capacity int
	// High and Low are the saturation watermarks: reaching High enters
	// the shedding state, and the queue stays shedding until depth falls
	// back to Low (hysteresis, so admission does not flap at the
	// boundary). 0 means High = Capacity and Low = Capacity/2.
	High, Low int
	// Policy selects what saturation sheds.
	Policy Policy
	// OnShed, when set, is called with the count of each shed (from
	// Offer, synchronously, after the queue lock is released) so the
	// consumer's accounting — e.g. the stream engine's Degraded
	// bookkeeping — sees every lost record. It must not call back into
	// the queue.
	OnShed func(n int)
}

// QueueStats is a point-in-time view of the queue's accounting.
//
// The books always balance: Offered == Admitted + Rejected, and
// Offered == Drained + Depth + Shed (Shed = Rejected + Evicted; items
// handed to a Take in flight count as Drained).
type QueueStats struct {
	// Offered counts every record presented to Offer.
	Offered uint64 `json:"offered"`
	// Admitted counts records accepted into the queue (some may later be
	// evicted under PolicyDropOldest).
	Admitted uint64 `json:"admitted"`
	// Drained counts records handed to the consumer via Take.
	Drained uint64 `json:"drained"`
	// Rejected counts records refused at admission; Evicted counts
	// admitted records dropped to make room under PolicyDropOldest.
	// Shed is their sum: every record lost to overload.
	Rejected uint64 `json:"rejected"`
	Evicted  uint64 `json:"evicted"`
	Shed     uint64 `json:"shed"`
	// Depth is the current queue depth; Capacity/High/Low echo the
	// effective configuration.
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	High     int `json:"high"`
	Low      int `json:"low"`
	// Saturated reports the shedding state; Saturations counts how many
	// times it has been entered.
	Saturated   bool   `json:"saturated"`
	Saturations uint64 `json:"saturations"`
}

// Queue is a bounded admission queue with watermark hysteresis and
// explicit shed policies. Offer never blocks on the consumer: when the
// queue is saturated it sheds per policy and accounts for the loss.
// Safe for concurrent use by one or more producers, one drainer, and
// any number of Stats/Freeze observers.
type Queue[T any] struct {
	mu    sync.Mutex
	avail *sync.Cond // items queued, or closed
	idle  *sync.Cond // no Take in flight

	cfg Config

	buf  []T // ring storage, len(buf) == cfg.Capacity
	head int
	n    int

	saturated bool
	draining  bool
	closed    bool

	offered, admitted, drained uint64
	rejected, evicted          uint64
	saturations                uint64
}

// NewQueue builds a queue; it panics on a non-positive capacity or
// inverted watermarks (a misconfigured admission layer is a programming
// error, not a runtime condition).
func NewQueue[T any](cfg Config) *Queue[T] {
	if cfg.Capacity <= 0 {
		panic("overload: queue capacity must be positive")
	}
	if cfg.High <= 0 || cfg.High > cfg.Capacity {
		cfg.High = cfg.Capacity
	}
	if cfg.Low <= 0 {
		cfg.Low = cfg.Capacity / 2
	}
	if cfg.Low >= cfg.High {
		panic(fmt.Sprintf("overload: low watermark %d must be below high watermark %d", cfg.Low, cfg.High))
	}
	q := &Queue[T]{cfg: cfg, buf: make([]T, cfg.Capacity)}
	q.avail = sync.NewCond(&q.mu)
	q.idle = sync.NewCond(&q.mu)
	return q
}

// Offer presents one record for admission. It returns false when the
// record was shed (queue saturated under PolicyReject, or queue closed);
// under PolicyDropOldest it returns true but may have evicted an older
// record to make room. Every shed — either kind — is counted and
// reported to Config.OnShed.
func (q *Queue[T]) Offer(v T) bool {
	q.mu.Lock()
	q.offered++
	if q.closed {
		q.rejected++
		q.mu.Unlock()
		q.noteShed(1)
		return false
	}
	// Hysteresis: enter shedding at High, leave at Low.
	if !q.saturated && q.n >= q.cfg.High {
		q.saturated = true
		q.saturations++
	} else if q.saturated && q.n <= q.cfg.Low {
		q.saturated = false
	}
	if q.saturated || q.n >= q.cfg.Capacity {
		if q.cfg.Policy == PolicyReject || q.n == 0 {
			q.rejected++
			q.mu.Unlock()
			q.noteShed(1)
			return false
		}
		// PolicyDropOldest: evict the head, admit the newcomer.
		var zero T
		q.buf[q.head] = zero
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.evicted++
		q.push(v)
		q.mu.Unlock()
		q.noteShed(1)
		return true
	}
	q.push(v)
	q.mu.Unlock()
	return true
}

// push appends under the lock and wakes the drainer.
func (q *Queue[T]) push(v T) {
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.admitted++
	q.avail.Signal()
}

func (q *Queue[T]) noteShed(n int) {
	if q.cfg.OnShed != nil && n > 0 {
		q.cfg.OnShed(n)
	}
}

// Take blocks until records are queued (or the queue closes), then
// removes and returns up to max of them in arrival order (max <= 0
// means all). ok is false only when the queue is closed and empty —
// the drainer's termination signal. A Take that returns records marks
// the queue draining until Done is called; Freeze waits for that, so
// a frozen snapshot never misses records the drainer holds but has not
// finished applying.
func (q *Queue[T]) Take(max int) (batch []T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.avail.Wait()
	}
	if q.n == 0 {
		return nil, false
	}
	k := q.n
	if max > 0 && k > max {
		k = max
	}
	batch = make([]T, k)
	var zero T
	for i := 0; i < k; i++ {
		batch[i] = q.buf[q.head]
		q.buf[q.head] = zero
		q.head = (q.head + 1) % len(q.buf)
	}
	q.n -= k
	q.drained += uint64(k)
	if q.saturated && q.n <= q.cfg.Low {
		q.saturated = false
	}
	q.draining = true
	return batch, true
}

// Done marks the batch from the last Take fully applied, releasing any
// Freeze waiting on drain quiescence.
func (q *Queue[T]) Done() {
	q.mu.Lock()
	q.draining = false
	q.idle.Broadcast()
	q.mu.Unlock()
}

// Close refuses further admissions. The drainer keeps Taking until the
// queue is empty, then Take reports ok=false. Offers after Close are
// counted as rejected sheds.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.avail.Broadcast()
	q.mu.Unlock()
}

// Freeze waits until no drained batch is in flight, then calls fn with
// the queued records in arrival order and the accounting as of that
// instant, while holding the queue locked — no Offer, Take, or eviction
// can interleave. Because the drainer is quiescent for the duration,
// state derived inside fn from the consumer (e.g. the stream engine's
// record list) plus the queued records is an exact prefix-consistent
// snapshot of everything admitted, and st.Shed is the matching loss
// count. fn must be fast — it stalls admission — and must not call back
// into the queue; do I/O outside.
func (q *Queue[T]) Freeze(fn func(queued []T, st QueueStats)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.draining {
		q.idle.Wait()
	}
	snap := make([]T, q.n)
	for i := 0; i < q.n; i++ {
		snap[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	fn(snap, q.statsLocked())
}

// Depth returns the current queue depth.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Stats returns the queue's accounting.
func (q *Queue[T]) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.statsLocked()
}

func (q *Queue[T]) statsLocked() QueueStats {
	return QueueStats{
		Offered:     q.offered,
		Admitted:    q.admitted,
		Drained:     q.drained,
		Rejected:    q.rejected,
		Evicted:     q.evicted,
		Shed:        q.rejected + q.evicted,
		Depth:       q.n,
		Capacity:    q.cfg.Capacity,
		High:        q.cfg.High,
		Low:         q.cfg.Low,
		Saturated:   q.saturated,
		Saturations: q.saturations,
	}
}

// Status bundles the admission layer's observable state for /healthz
// and /metrics: the queue's accounting plus the checkpoint breaker's.
type Status struct {
	Queue   QueueStats   `json:"queue"`
	Breaker BreakerStats `json:"breaker"`
}
