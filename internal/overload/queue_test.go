package overload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// checkBooks asserts the accounting invariant the whole admission layer
// rests on: offered == drained + depth + shed, with shed = rejected +
// evicted and offered = admitted + rejected.
func checkBooks(t *testing.T, st QueueStats) {
	t.Helper()
	if st.Shed != st.Rejected+st.Evicted {
		t.Fatalf("shed %d != rejected %d + evicted %d", st.Shed, st.Rejected, st.Evicted)
	}
	if st.Offered != st.Admitted+st.Rejected {
		t.Fatalf("offered %d != admitted %d + rejected %d", st.Offered, st.Admitted, st.Rejected)
	}
	if st.Offered != st.Drained+uint64(st.Depth)+st.Shed {
		t.Fatalf("offered %d != drained %d + depth %d + shed %d",
			st.Offered, st.Drained, st.Depth, st.Shed)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](Config{Capacity: 8})
	for i := 0; i < 5; i++ {
		if !q.Offer(i) {
			t.Fatalf("offer %d shed below watermark", i)
		}
	}
	got, ok := q.Take(0)
	q.Done()
	if !ok || len(got) != 5 {
		t.Fatalf("Take = %v, %v; want 5 items", got, ok)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("Take[%d] = %d, want %d (order broken)", i, v, i)
		}
	}
	checkBooks(t, q.Stats())
}

func TestQueueTakeMax(t *testing.T) {
	q := NewQueue[int](Config{Capacity: 16})
	for i := 0; i < 10; i++ {
		q.Offer(i)
	}
	got, ok := q.Take(3)
	q.Done()
	if !ok || len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Take(3) = %v, %v", got, ok)
	}
	if d := q.Depth(); d != 7 {
		t.Fatalf("depth after Take(3) = %d, want 7", d)
	}
	checkBooks(t, q.Stats())
}

func TestQueueRejectPolicyHysteresis(t *testing.T) {
	q := NewQueue[int](Config{Capacity: 10, High: 8, Low: 4, Policy: PolicyReject})
	shed := 0
	for i := 0; i < 20; i++ {
		if !q.Offer(i) {
			shed++
		}
	}
	st := q.Stats()
	// Depth reaches High=8, then every further offer sheds.
	if st.Depth != 8 || shed != 12 || !st.Saturated || st.Saturations != 1 {
		t.Fatalf("after burst: depth=%d shed=%d saturated=%v saturations=%d",
			st.Depth, shed, st.Saturated, st.Saturations)
	}
	checkBooks(t, st)

	// Drain to 5 (> Low): still shedding — hysteresis holds.
	if got, _ := q.Take(3); len(got) != 3 {
		t.Fatal("short take")
	}
	q.Done()
	if q.Offer(99) {
		t.Fatal("admitted above low watermark while saturated")
	}
	// Drain to 2 (<= Low): admission resumes.
	if got, _ := q.Take(3); len(got) != 3 {
		t.Fatal("short take")
	}
	q.Done()
	if !q.Offer(100) {
		t.Fatal("shed below low watermark after drain")
	}
	st = q.Stats()
	if st.Saturated {
		t.Fatal("still saturated below low watermark")
	}
	checkBooks(t, st)
}

func TestQueueDropOldestPolicy(t *testing.T) {
	var shedCB atomic.Int64
	q := NewQueue[int](Config{
		Capacity: 4, High: 4, Low: 1, Policy: PolicyDropOldest,
		OnShed: func(n int) { shedCB.Add(int64(n)) },
	})
	for i := 0; i < 10; i++ {
		if !q.Offer(i) {
			t.Fatalf("drop-oldest shed the newcomer %d", i)
		}
	}
	got, _ := q.Take(0)
	q.Done()
	// The freshest 4 survive; 0..5 were evicted.
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kept %v, want %v (oldest not dropped)", got, want)
		}
	}
	st := q.Stats()
	if st.Evicted != 6 || st.Rejected != 0 {
		t.Fatalf("evicted=%d rejected=%d, want 6/0", st.Evicted, st.Rejected)
	}
	if shedCB.Load() != int64(st.Shed) {
		t.Fatalf("OnShed saw %d, stats say %d", shedCB.Load(), st.Shed)
	}
	checkBooks(t, st)
}

func TestQueueCloseDrainsThenStops(t *testing.T) {
	q := NewQueue[int](Config{Capacity: 8})
	q.Offer(1)
	q.Offer(2)
	q.Close()
	if q.Offer(3) {
		t.Fatal("offer after close admitted")
	}
	got, ok := q.Take(0)
	q.Done()
	if !ok || len(got) != 2 {
		t.Fatalf("Take after close = %v, %v; want remaining 2", got, ok)
	}
	if _, ok := q.Take(0); ok {
		t.Fatal("Take on closed empty queue reported ok")
	}
	checkBooks(t, q.Stats())
}

// TestQueueFreezeConsistency is the checkpoint contract: under a
// concurrent producer and drainer, every Freeze must observe
// consumed + queued == admitted - evicted exactly (no record in two
// places, none in neither).
func TestQueueFreezeConsistency(t *testing.T) {
	q := NewQueue[int](Config{Capacity: 64, High: 64, Low: 16, Policy: PolicyReject})
	var consumed atomic.Int64 // records the drainer has fully applied
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			batch, ok := q.Take(7)
			consumed.Add(int64(len(batch)))
			q.Done()
			if !ok {
				return
			}
		}
	}()

	var offered, shed int
	for i := 0; i < 5000; i++ {
		if !q.Offer(i) {
			shed++
		}
		offered++
		if i%97 == 0 {
			q.Freeze(func(queued []int, st QueueStats) {
				// Drainer quiescent: consumed is stable here.
				got := consumed.Load() + int64(len(queued))
				want := int64(st.Admitted - st.Evicted)
				if got != want {
					t.Errorf("freeze %d: consumed %d + queued %d != admitted-evicted %d",
						i, consumed.Load(), len(queued), want)
				}
			})
		}
	}
	q.Close()
	<-done
	st := q.Stats()
	checkBooks(t, st)
	if consumed.Load() != int64(st.Drained) {
		t.Fatalf("consumed %d != drained %d", consumed.Load(), st.Drained)
	}
	if uint64(offered) != st.Offered || uint64(shed) != st.Shed {
		t.Fatalf("caller saw %d offered / %d shed, queue says %d/%d",
			offered, shed, st.Offered, st.Shed)
	}
}

// TestQueueConcurrentBooks hammers the queue from several producers and
// checks the final accounting balances exactly.
func TestQueueConcurrentBooks(t *testing.T) {
	for _, pol := range []Policy{PolicyReject, PolicyDropOldest} {
		t.Run(pol.String(), func(t *testing.T) {
			q := NewQueue[int](Config{Capacity: 128, High: 96, Low: 32, Policy: pol})
			var consumed atomic.Int64
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				rng := rand.New(rand.NewSource(1))
				for {
					batch, ok := q.Take(1 + rng.Intn(50))
					consumed.Add(int64(len(batch)))
					q.Done()
					if !ok {
						return
					}
				}
			}()
			var wg sync.WaitGroup
			for p := 0; p < 4; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < 10000; i++ {
						q.Offer(p*10000 + i)
					}
				}(p)
			}
			wg.Wait()
			q.Close()
			<-drained
			st := q.Stats()
			if st.Offered != 40000 {
				t.Fatalf("offered = %d, want 40000", st.Offered)
			}
			if st.Depth != 0 {
				t.Fatalf("depth = %d after full drain", st.Depth)
			}
			checkBooks(t, st)
			if consumed.Load() != int64(st.Drained) {
				t.Fatalf("consumed %d != drained %d", consumed.Load(), st.Drained)
			}
		})
	}
}

// TestQueueDropOldestConcurrentFreeze interleaves drop-oldest eviction
// with a hammering Freeze observer: every frozen snapshot must be
// internally consistent (books balance at that instant, depth matches
// the queued slice, each producer's records appear in offer order —
// eviction removes from the head, it never reorders survivors), and the
// final accounting must balance with evictions actually exercised.
func TestQueueDropOldestConcurrentFreeze(t *testing.T) {
	var shedSeen atomic.Int64
	q := NewQueue[int](Config{
		Capacity: 64, High: 48, Low: 16,
		Policy: PolicyDropOldest,
		OnShed: func(n int) { shedSeen.Add(int64(n)) },
	})

	const producers, perProducer = 3, 6000
	encode := func(p, i int) int { return p*1_000_000 + i }

	// Throttled drainer: small batches with a spin between them so the
	// queue saturates and evicts while Freeze runs.
	var drainedSeqs [producers][]int
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			batch, ok := q.Take(8)
			for _, v := range batch {
				drainedSeqs[v/1_000_000] = append(drainedSeqs[v/1_000_000], v%1_000_000)
			}
			q.Done()
			if !ok {
				return
			}
			for i := 0; i < 2000; i++ {
				_ = i // burn a little time without sleeping
			}
		}
	}()

	stop := make(chan struct{})
	freezes := make(chan int)
	go func() {
		var count int
		for {
			select {
			case <-stop:
				freezes <- count
				return
			default:
			}
			q.Freeze(func(queued []int, st QueueStats) {
				count++
				if len(queued) != st.Depth {
					t.Errorf("frozen depth %d != %d queued records", st.Depth, len(queued))
				}
				if st.Shed != st.Rejected+st.Evicted ||
					st.Offered != st.Admitted+st.Rejected ||
					st.Offered != st.Drained+uint64(st.Depth)+st.Shed {
					t.Errorf("frozen books don't balance: %+v", st)
				}
				last := [producers]int{-1, -1, -1}
				for _, v := range queued {
					p, i := v/1_000_000, v%1_000_000
					if i <= last[p] {
						t.Errorf("producer %d out of order in frozen snapshot: %d after %d", p, i, last[p])
					}
					last[p] = i
				}
			})
		}
	}()

	// Offer in rounds until the queue has demonstrably evicted, so the
	// test never depends on scheduler luck to reach saturation.
	offered := 0
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p, base int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					if !q.Offer(encode(p, base+i)) {
						t.Errorf("drop-oldest Offer returned false on an open queue")
					}
				}
			}(p, round*perProducer)
		}
		wg.Wait()
		offered += producers * perProducer
		if q.Stats().Evicted > 0 {
			break
		}
	}
	close(stop)
	if n := <-freezes; n == 0 {
		t.Fatal("freezer never ran")
	}
	q.Close()
	<-drained

	st := q.Stats()
	checkBooks(t, st)
	if st.Offered != uint64(offered) {
		t.Fatalf("offered = %d, want %d", st.Offered, offered)
	}
	if st.Evicted == 0 || st.Saturations == 0 {
		t.Fatalf("drop-oldest run never saturated/evicted (evicted=%d saturations=%d); shrink the drainer or raise the rate",
			st.Evicted, st.Saturations)
	}
	if st.Rejected != 0 {
		t.Fatalf("drop-oldest rejected %d records on an open queue", st.Rejected)
	}
	if shedSeen.Load() != int64(st.Shed) {
		t.Fatalf("OnShed saw %d, queue counted %d", shedSeen.Load(), st.Shed)
	}
	// Eviction preserves relative order among survivors: each producer's
	// drained sequence must be strictly increasing.
	for p, seq := range drainedSeqs {
		for i := 1; i < len(seq); i++ {
			if seq[i] <= seq[i-1] {
				t.Fatalf("producer %d drained out of order: %d after %d", p, seq[i], seq[i-1])
			}
		}
	}
}

func TestQueueConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero-capacity": {},
		"low>=high":     {Capacity: 10, High: 4, Low: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewQueue accepted bad config", name)
				}
			}()
			NewQueue[int](cfg)
		}()
	}
	// Defaults: High=Capacity, Low=Capacity/2.
	q := NewQueue[int](Config{Capacity: 10})
	st := q.Stats()
	if st.High != 10 || st.Low != 5 {
		t.Fatalf("defaults: high=%d low=%d, want 10/5", st.High, st.Low)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{PolicyReject, PolicyDropOldest} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Fatal("ParsePolicy accepted nonsense")
	}
}
