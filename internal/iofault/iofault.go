// Package iofault is the I/O-layer sibling of internal/corrupt: a
// deterministic, seeded fault injector that wraps an atomicio.FS and
// makes it misbehave the way real storage does under pressure — ENOSPC
// with a short prefix landing first, transient read/write errors that
// succeed on retry, and kill-points that simulate a process crash by
// failing every operation from some point on.
//
// The differential crash tests (internal/dataset) use kill-points to
// prove the checkpoint/resume contract: kill an export at an arbitrary
// operation, resume, and the final dataset tree is byte-identical to an
// uninterrupted run — with no torn file ever visible at a final path.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/simrand"
)

// ErrKilled is the error every operation returns once a kill-point has
// fired: the moral equivalent of the process dying mid-run.
var ErrKilled = errors.New("iofault: simulated crash")

// Config sets the fault rates. All probabilities are per-operation and
// independent; zero disables a class.
type Config struct {
	// Seed drives every injection decision.
	Seed uint64
	// ENOSPC is the probability a write fails with syscall.ENOSPC after
	// persisting a random prefix (the classic almost-full filesystem:
	// some bytes land, then the device is out of space). Not transient:
	// retries fail too until the injector is replaced.
	ENOSPC float64
	// TransientWrite is the probability a write fails with an error
	// marked atomicio.ErrTransient, persisting nothing. A retry draws a
	// fresh decision.
	TransientWrite float64
	// TransientRead is the probability a read (Open/ReadFile/Read) fails
	// transiently.
	TransientRead float64
	// KillAfterOps simulates a crash: once the operation counter reaches
	// this value every subsequent operation fails with ErrKilled, and a
	// write in flight at the kill-point tears (a random prefix lands).
	// <= 0 disables.
	KillAfterOps int64
	// StallWrite is the probability a write blocks for Stall before
	// proceeding (it still succeeds): a disk that has not failed, just
	// stopped answering promptly — the shape of a controller resetting or
	// a filesystem journal flushing. Overload tests use it to prove a
	// slow checkpoint device degrades checkpoint cadence without wedging
	// ingest.
	StallWrite float64
	// Stall is how long a stalled write blocks; defaults to
	// DefaultStall when StallWrite is set and Stall is zero.
	Stall time.Duration
}

// DefaultStall is the per-write stall applied when StallWrite is set
// without an explicit duration.
const DefaultStall = 50 * time.Millisecond

// FS wraps an inner atomicio.FS with fault injection. Safe for
// concurrent use; decisions are drawn from one seeded stream in
// operation order, so a single-goroutine caller sees a reproducible
// fault sequence.
type FS struct {
	inner atomicio.FS
	cfg   Config

	mu     sync.Mutex
	rng    *simrand.Stream
	ops    int64
	killed bool
}

// New wraps inner with the given fault configuration.
func New(inner atomicio.FS, cfg Config) *FS {
	return &FS{inner: inner, cfg: cfg, rng: simrand.NewStream(cfg.Seed).Derive("iofault")}
}

// Ops returns the number of operations observed so far (including the
// one that tripped the kill-point). Counting an export with a fault-free
// config measures the kill-point space for the crash tests.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Killed reports whether the kill-point has fired.
func (f *FS) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// op counts one operation and reports whether the injector is (now)
// dead. Every FS and file method calls it exactly once.
func (f *FS) op() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return ErrKilled
	}
	f.ops++
	if f.cfg.KillAfterOps > 0 && f.ops >= f.cfg.KillAfterOps {
		f.killed = true
		return ErrKilled
	}
	return nil
}

// roll draws one seeded decision.
func (f *FS) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Bool(p)
}

// prefixLen draws how much of a torn write lands: 0..n-1 bytes.
func (f *FS) prefixLen(n int) int {
	if n <= 1 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.IntN(n)
}

func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) CreateTemp(dir, pattern string) (atomicio.File, string, error) {
	if err := f.op(); err != nil {
		return nil, "", err
	}
	inner, name, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return &file{fs: f, f: inner}, name, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) Open(name string) (io.ReadCloser, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	if f.roll(f.cfg.TransientRead) {
		return nil, fmt.Errorf("iofault: open %s: %w", name, atomicio.ErrTransient)
	}
	rc, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &reader{fs: f, r: rc}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	if f.roll(f.cfg.TransientRead) {
		return nil, fmt.Errorf("iofault: read %s: %w", name, atomicio.ErrTransient)
	}
	return f.inner.ReadFile(name)
}

func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// file wraps a temp-file handle with write faults.
type file struct {
	fs *FS
	f  atomicio.File
}

// stall blocks the calling writer when the stall fault fires. The sleep
// happens outside the injector mutex so a stalled writer slows only
// itself — exactly how one laggard file handle behaves on real storage.
func (f *FS) stall() {
	if !f.roll(f.cfg.StallWrite) {
		return
	}
	d := f.cfg.Stall
	if d <= 0 {
		d = DefaultStall
	}
	time.Sleep(d)
}

func (w *file) Write(p []byte) (int, error) {
	w.fs.stall()
	if err := w.fs.op(); err != nil {
		// A crash tears the write: a random prefix lands before the
		// process "dies". Only ever observable in a temp file.
		n := w.fs.prefixLen(len(p))
		if n > 0 {
			n, _ = w.f.Write(p[:n])
		}
		return n, err
	}
	if w.fs.roll(w.fs.cfg.TransientWrite) {
		return 0, fmt.Errorf("iofault: write: %w", atomicio.ErrTransient)
	}
	if w.fs.roll(w.fs.cfg.ENOSPC) {
		n := w.fs.prefixLen(len(p))
		if n > 0 {
			n, _ = w.f.Write(p[:n])
		}
		return n, fmt.Errorf("iofault: write: %w", syscall.ENOSPC)
	}
	return w.f.Write(p)
}

func (w *file) Sync() error {
	if err := w.fs.op(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *file) Close() error {
	if err := w.fs.op(); err != nil {
		// Crash with the handle open: the temp survives, torn.
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// reader wraps an open file with transient read faults.
type reader struct {
	fs *FS
	r  io.ReadCloser
}

func (r *reader) Read(p []byte) (int, error) {
	if err := r.fs.op(); err != nil {
		return 0, err
	}
	if r.fs.roll(r.fs.cfg.TransientRead) {
		return 0, fmt.Errorf("iofault: read: %w", atomicio.ErrTransient)
	}
	return r.r.Read(p)
}

func (r *reader) Close() error {
	// Closing a read handle mutates nothing; not a counted op so kill
	// points always land on state-changing operations.
	return r.r.Close()
}
