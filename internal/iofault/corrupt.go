// On-disk corruptors: seeded, targeted damage to files already at rest.
// Where the FS wrapper injects faults into I/O in flight, these model
// what the paper's DRAM study measures in silicon — bits flipping in
// data nobody is touching — applied to the state files the recovery
// ladder has to survive. The chaos tests flip a bit in the newest
// checkpoint generation (or truncate it, the torn-rename analogue on a
// non-atomic filesystem) and assert astrad walks the ladder instead of
// dying.

package iofault

import (
	"fmt"
	"os"

	"repro/internal/simrand"
)

// FlipBit flips one seeded-random bit of the file at path, in place.
// It returns the byte offset and bit index it flipped. The file must be
// non-empty.
func FlipBit(path string, seed uint64) (offset int64, bit uint, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) == 0 {
		return 0, 0, fmt.Errorf("iofault: flip bit in %s: file is empty", path)
	}
	rng := simrand.NewStream(seed).Derive("iofault:flipbit")
	offset = int64(rng.IntN(len(data)))
	bit = uint(rng.IntN(8))
	data[offset] ^= 1 << bit
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	if err := os.WriteFile(path, data, fi.Mode().Perm()); err != nil {
		return 0, 0, err
	}
	return offset, bit, nil
}

// Truncate cuts the file at path to a seeded-random length in
// [1, size-1] — a torn tail, the damage a non-atomic writer leaves when
// the machine dies mid-write. It returns the new length. Files shorter
// than two bytes cannot be meaningfully torn and are an error.
func Truncate(path string, seed uint64) (newLen int64, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	size := fi.Size()
	if size < 2 {
		return 0, fmt.Errorf("iofault: truncate %s: %d bytes is too short to tear", path, size)
	}
	rng := simrand.NewStream(seed).Derive("iofault:truncate")
	newLen = 1 + rng.Int64N(size-1)
	if err := os.Truncate(path, newLen); err != nil {
		return 0, err
	}
	return newLen, nil
}
