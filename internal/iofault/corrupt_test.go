package iofault

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFlipBitDeterministicSingleBit(t *testing.T) {
	dir := t.TempDir()
	orig := bytes.Repeat([]byte("astrad-state v2\nrecords 7\n"), 8)

	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p1 := write("a")
	off1, bit1, err := FlipBit(p1, 99)
	if err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	got, _ := os.ReadFile(p1)
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d -> %d", len(orig), len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
			if int64(i) != off1 || got[i] != orig[i]^(1<<bit1) {
				t.Fatalf("unexpected damage at %d: %02x vs %02x (reported off=%d bit=%d)", i, got[i], orig[i], off1, bit1)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bytes, want exactly 1", diff)
	}

	// Same seed, same damage.
	p2 := write("b")
	off2, bit2, err := FlipBit(p2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off1 || bit2 != bit1 {
		t.Fatalf("seed 99 not deterministic: (%d,%d) vs (%d,%d)", off1, bit1, off2, bit2)
	}
	// Different seed, (almost surely) different damage — assert the files
	// differ rather than the coordinates, to stay seed-robust.
	p3 := write("c")
	FlipBit(p3, 100)
	b2, _ := os.ReadFile(p2)
	b3, _ := os.ReadFile(p3)
	if bytes.Equal(b2, b3) {
		t.Fatal("seeds 99 and 100 produced identical corruption")
	}

	// Empty file refuses.
	pe := filepath.Join(dir, "empty")
	os.WriteFile(pe, nil, 0o644)
	if _, _, err := FlipBit(pe, 1); err == nil {
		t.Fatal("FlipBit on empty file should error")
	}
}

func TestTruncateTearsTail(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "state")
	content := bytes.Repeat([]byte("x"), 1000)
	if err := os.WriteFile(p, content, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Truncate(p, 7)
	if err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if n < 1 || n >= 1000 {
		t.Fatalf("new length %d outside [1, 999]", n)
	}
	fi, _ := os.Stat(p)
	if fi.Size() != n {
		t.Fatalf("reported %d, actual %d", n, fi.Size())
	}

	// Deterministic per seed.
	p2 := filepath.Join(dir, "state2")
	os.WriteFile(p2, content, 0o644)
	n2, _ := Truncate(p2, 7)
	if n2 != n {
		t.Fatalf("seed 7 not deterministic: %d vs %d", n, n2)
	}

	// Too short to tear.
	ps := filepath.Join(dir, "short")
	os.WriteFile(ps, []byte("x"), 0o644)
	if _, err := Truncate(ps, 1); err == nil {
		t.Fatal("Truncate on 1-byte file should error")
	}
}
