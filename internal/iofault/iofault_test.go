package iofault

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/atomicio"
)

func ctxb() context.Context { return context.Background() }

// writeOnce pushes one atomic write through fsys.
func writeOnce(fsys atomicio.FS, path, content string) error {
	_, err := atomicio.WriteFile(ctxb(), fsys, path, func(w io.Writer) error {
		_, werr := io.WriteString(w, content)
		return werr
	})
	return err
}

func TestKillPointSemantics(t *testing.T) {
	dir := t.TempDir()
	// Count a fault-free write first to learn the op space.
	probe := New(atomicio.OS, Config{Seed: 1})
	if err := writeOnce(probe, filepath.Join(dir, "probe.txt"), "data\n"); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 4 { // create, write, sync, close, rename, syncdir at minimum
		t.Fatalf("suspiciously few ops counted: %d", total)
	}

	for kill := int64(1); kill <= total; kill++ {
		fsys := New(atomicio.OS, Config{Seed: 1, KillAfterOps: kill})
		sub := filepath.Join(dir, "kill")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		err := writeOnce(fsys, filepath.Join(sub, "out.txt"), "data\n")
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("kill=%d: err = %v, want ErrKilled", kill, err)
		}
		if !fsys.Killed() {
			t.Fatalf("kill=%d: Killed() = false after a killed write", kill)
		}
		// Post-kill, every operation is dead — the process is gone.
		if _, rerr := fsys.ReadFile(filepath.Join(sub, "out.txt")); !errors.Is(rerr, ErrKilled) {
			t.Fatalf("kill=%d: op after kill = %v, want ErrKilled", kill, rerr)
		}
		// The invariant: the final path either holds the COMPLETE file
		// (the crash hit after the rename committed) or does not exist.
		// A partial file at the final path is never acceptable.
		if data, serr := os.ReadFile(filepath.Join(sub, "out.txt")); serr == nil {
			if string(data) != "data\n" {
				t.Fatalf("kill=%d: torn file at final path: %q", kill, data)
			}
		} else if !errors.Is(serr, os.ErrNotExist) {
			t.Fatal(serr)
		}
		entries, rerr := os.ReadDir(sub)
		if rerr != nil {
			t.Fatal(rerr)
		}
		for _, e := range entries {
			if e.Name() != "out.txt" && !atomicio.IsTemp(e.Name()) {
				t.Fatalf("kill=%d: non-temp leftover %s", kill, e.Name())
			}
		}
		if err := os.RemoveAll(sub); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKillDeterministic(t *testing.T) {
	run := func() (int64, bool, error) {
		dir := t.TempDir()
		fsys := New(atomicio.OS, Config{Seed: 9, KillAfterOps: 5})
		err := writeOnce(fsys, filepath.Join(dir, "out.txt"), strings.Repeat("line\n", 100))
		return fsys.Ops(), fsys.Killed(), err
	}
	ops1, killed1, err1 := run()
	ops2, killed2, err2 := run()
	if ops1 != ops2 || killed1 != killed2 || (err1 == nil) != (err2 == nil) {
		t.Errorf("same seed, different behaviour: (%d,%v,%v) vs (%d,%v,%v)",
			ops1, killed1, err1, ops2, killed2, err2)
	}
}

func TestTransientWriteIsRetryable(t *testing.T) {
	dir := t.TempDir()
	fsys := New(atomicio.OS, Config{Seed: 3, TransientWrite: 1})
	err := writeOnce(fsys, filepath.Join(dir, "out.txt"), "data\n")
	if err == nil {
		t.Fatal("TransientWrite=1 produced no error")
	}
	if !atomicio.IsTransient(err) {
		t.Errorf("injected transient write not classified transient: %v", err)
	}
}

func TestENOSPCIsNotTransient(t *testing.T) {
	dir := t.TempDir()
	fsys := New(atomicio.OS, Config{Seed: 3, ENOSPC: 1})
	err := writeOnce(fsys, filepath.Join(dir, "out.txt"), "a reasonably long line of data\n")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if atomicio.IsTransient(err) {
		t.Errorf("ENOSPC classified transient: %v", err)
	}
	// The failed write never surfaces at the final path.
	if _, serr := os.Stat(filepath.Join(dir, "out.txt")); !errors.Is(serr, os.ErrNotExist) {
		t.Errorf("final path exists after ENOSPC (err=%v)", serr)
	}
}

func TestTransientReadRetrySucceeds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	// With rate < 1 and a bounded retry, some attempt draws a clean read.
	fsys := New(atomicio.OS, Config{Seed: 5, TransientRead: 0.5})
	policy := atomicio.RetryPolicy{Attempts: 20, Sleep: func(d time.Duration) {}}
	var data []byte
	err := policy.Do(ctxb(), func() error {
		var rerr error
		data, rerr = fsys.ReadFile(path)
		return rerr
	})
	if err != nil {
		t.Fatalf("retry never recovered: %v", err)
	}
	if string(data) != "payload" {
		t.Errorf("data = %q", data)
	}
}

func TestRetryDefeatsTransientWrites(t *testing.T) {
	// End-to-end: a flaky-but-not-dead FS plus the production retry policy
	// still lands a complete, correct file.
	dir := t.TempDir()
	fsys := New(atomicio.OS, Config{Seed: 11, TransientWrite: 0.3})
	policy := atomicio.RetryPolicy{Attempts: 30, Sleep: func(d time.Duration) {}}
	content := strings.Repeat("record\n", 50)
	info, err := atomicio.WriteFileRetry(ctxb(), fsys, filepath.Join(dir, "out.txt"), policy, func(w io.Writer) error {
		_, werr := io.WriteString(w, content)
		return werr
	})
	if err != nil {
		t.Fatalf("retry exhausted: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != content || info.Size != int64(len(content)) {
		t.Errorf("content mismatch after retried write (size %d)", info.Size)
	}
}

// TestStallWrite: a stalling disk delays writes but loses nothing — the
// file lands intact, just late. StallWrite=1 makes every write stall
// deterministically.
func TestStallWrite(t *testing.T) {
	dir := t.TempDir()
	const stall = 30 * time.Millisecond
	fsys := New(atomicio.OS, Config{Seed: 9, StallWrite: 1, Stall: stall})

	start := time.Now()
	path := filepath.Join(dir, "slow.txt")
	if err := writeOnce(fsys, path, "late but whole\n"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("stalled write finished in %v, want >= %v", elapsed, stall)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "late but whole\n" {
		t.Fatalf("stalled write corrupted content: %q", got)
	}

	// StallWrite=0 must never sleep: the fast path stays fast.
	quick := New(atomicio.OS, Config{Seed: 9})
	start = time.Now()
	if err := writeOnce(quick, filepath.Join(dir, "fast.txt"), "now\n"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fault-free write took %v", elapsed)
	}
}

// TestStallDefaultDuration: Stall left zero falls back to DefaultStall.
func TestStallDefaultDuration(t *testing.T) {
	dir := t.TempDir()
	fsys := New(atomicio.OS, Config{Seed: 3, StallWrite: 1})
	start := time.Now()
	if err := writeOnce(fsys, filepath.Join(dir, "d.txt"), "x\n"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < DefaultStall {
		t.Fatalf("default stall write finished in %v, want >= %v", elapsed, DefaultStall)
	}
}
