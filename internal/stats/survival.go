package stats

import (
	"math"
	"sort"
)

// WeibullFit is a maximum-likelihood fit of a Weibull distribution with
// shape k and scale lambda. Shape < 1 means a decreasing hazard — the
// statistical signature of the infant-mortality period in §3.1's
// replacement data; shape ≈ 1 is the memoryless (exponential) regime of
// steady-state failures; shape > 1 indicates wear-out.
type WeibullFit struct {
	Shape float64 // k
	Scale float64 // lambda
	N     int
}

// FitWeibull fits by MLE over strictly positive lifetimes: the shape
// solves the standard profile-likelihood equation
//
//	Σ x^k ln x / Σ x^k − 1/k = mean(ln x)
//
// (monotone in k, solved by bisection), and the scale follows in closed
// form. Returns ErrInsufficientData for fewer than 3 positive samples or
// degenerate (all-equal) data.
func FitWeibull(lifetimes []float64) (WeibullFit, error) {
	xs := make([]float64, 0, len(lifetimes))
	sumLn := 0.0
	for _, x := range lifetimes {
		if x > 0 {
			xs = append(xs, x)
			sumLn += math.Log(x)
		}
	}
	n := float64(len(xs))
	if len(xs) < 3 {
		return WeibullFit{}, ErrInsufficientData
	}
	lo0, hi0 := xs[0], xs[0]
	for _, x := range xs {
		lo0 = math.Min(lo0, x)
		hi0 = math.Max(hi0, x)
	}
	if lo0 == hi0 {
		// Constant lifetimes: the shape MLE diverges.
		return WeibullFit{}, ErrInsufficientData
	}
	meanLn := sumLn / n
	g := func(k float64) float64 {
		var sumXk, sumXkLn float64
		for _, x := range xs {
			xk := math.Pow(x, k)
			sumXk += xk
			sumXkLn += xk * math.Log(x)
		}
		return sumXkLn/sumXk - 1/k - meanLn
	}
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 && hi < 1e6 {
		hi *= 2
	}
	if g(hi) < 0 || g(lo) > 0 {
		return WeibullFit{}, ErrInsufficientData
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	sumXk := 0.0
	for _, x := range xs {
		sumXk += math.Pow(x, k)
	}
	return WeibullFit{Shape: k, Scale: math.Pow(sumXk/n, 1/k), N: len(xs)}, nil
}

// Mean returns the distribution mean lambda·Γ(1 + 1/k).
func (w WeibullFit) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// Survival returns S(t) = exp(-(t/lambda)^k).
func (w WeibullFit) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(t/w.Scale, w.Shape))
}

// Hazard returns h(t) = (k/lambda)·(t/lambda)^(k-1).
func (w WeibullFit) Hazard(t float64) float64 {
	if t <= 0 {
		t = math.SmallestNonzeroFloat64
	}
	return w.Shape / w.Scale * math.Pow(t/w.Scale, w.Shape-1)
}

// KMPoint is one step of a Kaplan-Meier survival curve.
type KMPoint struct {
	Time     float64 // event time
	Survival float64 // S(t) just after the event
	AtRisk   int     // subjects at risk immediately before the event
	Events   int     // failures at this time
}

// KaplanMeier estimates the survival function from possibly right-censored
// lifetime data: times[i] is the observed time and observed[i] reports
// whether a failure was observed (false = censored, e.g. a component still
// alive when the study window closed — most of Astra's parts were never
// replaced). It returns the step curve at each distinct failure time.
// Panics on length mismatch; returns nil for empty input.
func KaplanMeier(times []float64, observed []bool) []KMPoint {
	if len(times) != len(observed) {
		panic("stats: KaplanMeier length mismatch")
	}
	n := len(times)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return times[idx[a]] < times[idx[b]] })
	var out []KMPoint
	s := 1.0
	atRisk := n
	for i := 0; i < n; {
		t := times[idx[i]]
		events, censored := 0, 0
		j := i
		for ; j < n && times[idx[j]] == t; j++ {
			if observed[idx[j]] {
				events++
			} else {
				censored++
			}
		}
		if events > 0 {
			s *= 1 - float64(events)/float64(atRisk)
			out = append(out, KMPoint{Time: t, Survival: s, AtRisk: atRisk, Events: events})
		}
		atRisk -= events + censored
		i = j
	}
	return out
}

// SurvivalAt evaluates a Kaplan-Meier curve at time t (step function,
// right-continuous). Returns 1 before the first event.
func SurvivalAt(curve []KMPoint, t float64) float64 {
	s := 1.0
	for _, p := range curve {
		if p.Time > t {
			break
		}
		s = p.Survival
	}
	return s
}

// MTBF returns the mean time between failures for a population observed
// for totalTime device-units with failures failures, the standard
// field-data estimator. Returns +Inf for zero failures.
func MTBF(totalDeviceTime float64, failures int) float64 {
	if failures <= 0 {
		return math.Inf(1)
	}
	return totalDeviceTime / float64(failures)
}
