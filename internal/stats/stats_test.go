package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		got, ok := Quantile(sorted, c.q)
		if !ok || !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, %v, want %v", c.q, got, ok, c.want)
		}
	}
	if v, ok := Quantile(nil, 0.5); ok || v != 0 {
		t.Errorf("Quantile(empty) = %v, %v, want 0, false", v, ok)
	}
}

func TestECDFProperties(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 5})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.5}, {1.5, 0.5}, {2, 0.75}, {5, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Monotone non-decreasing property.
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.At(lo) <= e.At(hi)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopShareAndLorenz(t *testing.T) {
	xs := []float64{100, 1, 1, 1, 1, 1, 1, 1} // top item carries 100/107
	if got := TopShare(xs, 1); !almostEqual(got, 100.0/107, 1e-12) {
		t.Errorf("TopShare = %v", got)
	}
	if got := TopShare(xs, 100); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TopShare(all) = %v", got)
	}
	if TopShare(nil, 3) != 0 || TopShare(xs, 0) != 0 {
		t.Error("TopShare degenerate cases")
	}
	lc := LorenzCurve(xs)
	if len(lc) != len(xs)+1 || lc[0] != 0 || !almostEqual(lc[len(lc)-1], 1, 1e-12) {
		t.Errorf("LorenzCurve endpoints: %v", lc)
	}
	for i := 1; i < len(lc); i++ {
		if lc[i] < lc[i-1] {
			t.Fatal("LorenzCurve not monotone")
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1.9, 2, 9.999, 10, 50})
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if !almostEqual(h.BinWidth(), 2, 1e-12) || !almostEqual(h.BinCenter(0), 1, 1e-12) {
		t.Error("bin geometry wrong")
	}
	if h.Mode() != 0 {
		t.Errorf("Mode = %d", h.Mode())
	}
	// Density integrates to 1 over in-range mass.
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * h.BinWidth()
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("density integral = %v", sum)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestCountHistogram(t *testing.T) {
	h := NewCountHistogram([]int{0, 1, 1, 3, 3, 3})
	if h[0] != 1 || h[1] != 2 || h[3] != 3 {
		t.Errorf("counts: %v", h)
	}
	keys := h.SortedCounts()
	if len(keys) != 3 || keys[0] != 0 || keys[1] != 1 || keys[2] != 3 {
		t.Errorf("SortedCounts = %v", keys)
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
	if !almostEqual(fit.Predict(10), 21, 1e-12) {
		t.Errorf("Predict = %v", fit.Predict(10))
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should fail")
	}
}

func TestFitLinearNoise(t *testing.T) {
	rng := simrand.NewStream(42)
	var x, y []float64
	for i := 0; i < 2000; i++ {
		xv := rng.Float64() * 10
		x = append(x, xv)
		y = append(y, 3-0.5*xv+rng.Norm(0, 0.1))
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, -0.5, 0.01) || !almostEqual(fit.Intercept, 3, 0.02) {
		t.Errorf("fit = %+v", fit)
	}
	// Slope should be decisively nonzero.
	if math.Abs(fit.SlopeT()) < 10 {
		t.Errorf("SlopeT = %v", fit.SlopeT())
	}
}

func TestPearsonSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v", got)
	}
	// Spearman is 1 for any monotone transform.
	ymono := []float64{1, 10, 100, 1000, 10000}
	if got := Spearman(x, ymono); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Spearman = %v", got)
	}
	if got := Pearson([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Errorf("degenerate Pearson = %v", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 2, 3}
	if got := Spearman(x, y); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Spearman with ties = %v", got)
	}
}

func TestFitPowerLawRecoversAlpha(t *testing.T) {
	rng := simrand.NewStream(7)
	pl := simrand.NewPowerLaw(2.5, 1, 1_000_000)
	xs := make([]int, 30000)
	for i := range xs {
		xs[i] = pl.Sample(rng)
	}
	fit, err := FitPowerLaw(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Alpha, 2.5, 0.05) {
		t.Errorf("Alpha = %v, want ~2.5", fit.Alpha)
	}
	if fit.KS > 0.02 {
		t.Errorf("KS = %v, too large for true power law", fit.KS)
	}
}

func TestFitPowerLawRejectsUniform(t *testing.T) {
	// A uniform sample should show a much larger KS distance than a
	// genuine power-law sample.
	rng := simrand.NewStream(8)
	uniform := make([]int, 5000)
	for i := range uniform {
		uniform[i] = 1 + rng.IntN(100)
	}
	fit, err := FitPowerLaw(uniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fit.KS < 0.2 {
		t.Errorf("KS = %v for uniform data, expected poor fit", fit.KS)
	}
}

func TestFitPowerLawAuto(t *testing.T) {
	rng := simrand.NewStream(9)
	pl := simrand.NewPowerLaw(2.2, 1, 100000)
	xs := make([]int, 20000)
	for i := range xs {
		xs[i] = pl.Sample(rng)
	}
	fit, err := FitPowerLawAuto(xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.9 || fit.Alpha > 2.6 {
		t.Errorf("auto Alpha = %v", fit.Alpha)
	}
	if _, err := FitPowerLawAuto(nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestFitPowerLawInsufficient(t *testing.T) {
	if _, err := FitPowerLaw([]int{1, 2, 3}, 1); err == nil {
		t.Error("tiny sample should fail")
	}
}

func TestLogLogSlope(t *testing.T) {
	// freq(k) = 1000 * k^-2 exactly.
	h := CountHistogram{}
	for k := 1; k <= 30; k++ {
		h[k] = int(1000 / float64(k*k))
	}
	fit, err := LogLogSlope(h)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope > -1.7 || fit.Slope < -2.3 {
		t.Errorf("log-log slope = %v, want ~-2", fit.Slope)
	}
}

func TestChiSquareUniform(t *testing.T) {
	// Perfectly uniform counts: statistic 0, p-value 1.
	cs, err := ChiSquareUniform([]int{100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Statistic != 0 || cs.PValue < 0.999 {
		t.Errorf("uniform: %+v", cs)
	}
	// Wildly non-uniform: tiny p-value.
	cs, err = ChiSquareUniform([]int{1000, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cs.PValue > 1e-6 {
		t.Errorf("skewed p = %v", cs.PValue)
	}
	// Noisy uniform should usually pass at alpha = 0.001.
	rng := simrand.NewStream(10)
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[rng.IntN(16)]++
	}
	cs, err = ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if cs.PValue < 0.001 {
		t.Errorf("noisy uniform rejected: %+v", cs)
	}
	if _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single cell should fail")
	}
	if _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("zero total should fail")
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// chi2 SF(x=df) ~ known values: SF(1;1) ~= 0.3173, SF(10;10) ~= 0.4405.
	if got := chiSquareSF(1, 1); !almostEqual(got, 0.3173, 0.001) {
		t.Errorf("SF(1;1) = %v", got)
	}
	if got := chiSquareSF(10, 10); !almostEqual(got, 0.4405, 0.001) {
		t.Errorf("SF(10;10) = %v", got)
	}
	if got := chiSquareSF(0, 5); got != 1 {
		t.Errorf("SF(0;5) = %v", got)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KolmogorovSmirnov(a, a); got != 0 {
		t.Errorf("KS(a,a) = %v", got)
	}
	b := []float64{10, 20, 30}
	if got := KolmogorovSmirnov(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("KS(disjoint) = %v", got)
	}
	if got := KolmogorovSmirnov(nil, a); got != 0 {
		t.Errorf("KS(empty) = %v", got)
	}
}

func TestDeciles(t *testing.T) {
	keys := make([]float64, 100)
	vals := make([]float64, 100)
	for i := range keys {
		keys[i] = float64(i)
		vals[i] = float64(i) * 2
	}
	bins, err := Deciles(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	for i, b := range bins {
		if b.N != 10 {
			t.Errorf("bin %d N = %d", i, b.N)
		}
		if i > 0 && b.MaxKey <= bins[i-1].MaxKey {
			t.Errorf("bin maxima not increasing: %v", bins)
		}
	}
	if bins[9].MaxKey != 99 {
		t.Errorf("last MaxKey = %v", bins[9].MaxKey)
	}
	// MeanValue of first decile (keys 0..9, vals 0..18): 9.
	if !almostEqual(bins[0].MeanValue, 9, 1e-12) {
		t.Errorf("first MeanValue = %v", bins[0].MeanValue)
	}
	// DecileSpread: ninth decile max (89) - first (9) = 80.
	if got := DecileSpread(bins); !almostEqual(got, 80, 1e-12) {
		t.Errorf("DecileSpread = %v", got)
	}
	fit, err := TrendVerdict(bins)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) {
		t.Errorf("trend slope = %v", fit.Slope)
	}
}

func TestDecilesInsufficient(t *testing.T) {
	if _, err := Deciles([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("should fail with < 10 points")
	}
}

func TestSplitByMedian(t *testing.T) {
	keys := []float64{1, 2, 3, 4, 5, 6}
	vals := []float64{10, 20, 30, 40, 50, 60}
	lo, hi := SplitByMedian(keys, vals)
	if len(lo)+len(hi) != 6 {
		t.Fatalf("split sizes %d + %d", len(lo), len(hi))
	}
	for _, v := range lo {
		if v > 30 {
			t.Errorf("low half contains %v", v)
		}
	}
	for _, v := range hi {
		if v < 40 {
			t.Errorf("high half contains %v", v)
		}
	}
	lo, hi = SplitByMedian(nil, nil)
	if lo != nil || hi != nil {
		t.Error("empty split should be nil")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := simrand.NewStream(99)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Norm(50, 5)
	}
	lo, hi, ok := BootstrapCI(rng, xs, Mean, 500, 0.025)
	if !ok {
		t.Fatal("BootstrapCI not ok on a 500-sample input")
	}
	if lo > 50 || hi < 50 {
		t.Errorf("95%% CI [%v, %v] should cover 50", lo, hi)
	}
	if hi-lo > 2 {
		t.Errorf("CI too wide: [%v, %v]", lo, hi)
	}
	if lo, hi, ok := BootstrapCI(rng, nil, Mean, 10, 0.025); ok || lo != 0 || hi != 0 {
		t.Errorf("BootstrapCI(empty) = %v, %v, %v, want zeros and false", lo, hi, ok)
	}
}

func TestCountsToFloats(t *testing.T) {
	got := CountsToFloats([]int{1, 2, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("CountsToFloats = %v", got)
	}
}
