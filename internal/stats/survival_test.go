package stats

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

func TestFitWeibullRecoversParameters(t *testing.T) {
	rng := simrand.NewStream(101)
	for _, want := range []struct{ shape, scale float64 }{
		{0.6, 100}, // infant-mortality regime
		{1.0, 50},  // exponential
		{2.5, 30},  // wear-out
	} {
		xs := make([]float64, 8000)
		for i := range xs {
			xs[i] = rng.Weibull(want.shape, want.scale)
		}
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Shape-want.shape) > 0.05*want.shape {
			t.Errorf("shape = %v, want %v", fit.Shape, want.shape)
		}
		if math.Abs(fit.Scale-want.scale) > 0.05*want.scale {
			t.Errorf("scale = %v, want %v", fit.Scale, want.scale)
		}
		// Analytic mean matches the sample mean.
		if sm := Mean(xs); math.Abs(fit.Mean()-sm) > 0.05*sm {
			t.Errorf("Mean() = %v, sample mean %v", fit.Mean(), sm)
		}
	}
}

func TestFitWeibullDegenerate(t *testing.T) {
	if _, err := FitWeibull([]float64{1, 2}); err == nil {
		t.Error("two samples accepted")
	}
	if _, err := FitWeibull([]float64{-1, 0, -5}); err == nil {
		t.Error("non-positive samples accepted")
	}
	if _, err := FitWeibull([]float64{3, 3, 3, 3}); err == nil {
		t.Error("constant sample accepted (shape diverges)")
	}
}

func TestWeibullHazardShape(t *testing.T) {
	infant := WeibullFit{Shape: 0.6, Scale: 100}
	if infant.Hazard(1) <= infant.Hazard(50) {
		t.Error("shape < 1 must have decreasing hazard (infant mortality)")
	}
	wearout := WeibullFit{Shape: 3, Scale: 100}
	if wearout.Hazard(1) >= wearout.Hazard(50) {
		t.Error("shape > 1 must have increasing hazard (wear-out)")
	}
	if s := infant.Survival(0); s != 1 {
		t.Errorf("S(0) = %v", s)
	}
	if s := infant.Survival(1e9); s > 1e-6 {
		t.Errorf("S(inf) = %v", s)
	}
}

func TestKaplanMeierNoCensoring(t *testing.T) {
	// Without censoring KM equals the empirical survival function.
	times := []float64{1, 2, 3, 4, 5}
	obs := []bool{true, true, true, true, true}
	curve := KaplanMeier(times, obs)
	if len(curve) != 5 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i, p := range curve {
		want := 1 - float64(i+1)/5
		if math.Abs(p.Survival-want) > 1e-12 {
			t.Errorf("S(%v) = %v, want %v", p.Time, p.Survival, want)
		}
	}
}

func TestKaplanMeierCensoring(t *testing.T) {
	// Censored subjects leave the risk set without dropping the curve.
	times := []float64{1, 2, 2, 3}
	obs := []bool{true, false, true, true}
	curve := KaplanMeier(times, obs)
	// Events at t=1 (4 at risk), t=2 (3 at risk, 1 event + 1 censored),
	// t=3 (1 at risk).
	if len(curve) != 3 {
		t.Fatalf("curve = %+v", curve)
	}
	want := []float64{0.75, 0.75 * (1 - 1.0/3), 0}
	for i, p := range curve {
		if math.Abs(p.Survival-want[i]) > 1e-12 {
			t.Errorf("step %d: S = %v, want %v", i, p.Survival, want[i])
		}
	}
	if curve[1].AtRisk != 3 {
		t.Errorf("at-risk at t=2 is %d, want 3", curve[1].AtRisk)
	}
}

func TestKaplanMeierTies(t *testing.T) {
	times := []float64{2, 2, 2, 5}
	obs := []bool{true, true, true, false}
	curve := KaplanMeier(times, obs)
	if len(curve) != 1 || curve[0].Events != 3 {
		t.Fatalf("curve = %+v", curve)
	}
	if math.Abs(curve[0].Survival-0.25) > 1e-12 {
		t.Errorf("S(2) = %v", curve[0].Survival)
	}
}

func TestKaplanMeierEdges(t *testing.T) {
	if got := KaplanMeier(nil, nil); got != nil {
		t.Error("empty input should give nil curve")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	KaplanMeier([]float64{1}, nil)
}

func TestSurvivalAt(t *testing.T) {
	curve := []KMPoint{{Time: 2, Survival: 0.8}, {Time: 5, Survival: 0.4}}
	cases := map[float64]float64{1: 1, 2: 0.8, 3: 0.8, 5: 0.4, 10: 0.4}
	for tt, want := range cases {
		if got := SurvivalAt(curve, tt); got != want {
			t.Errorf("SurvivalAt(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestKaplanMeierAgreesWithWeibull(t *testing.T) {
	// On uncensored Weibull data the KM curve must track the fitted
	// parametric survival function.
	rng := simrand.NewStream(102)
	n := 4000
	times := make([]float64, n)
	obs := make([]bool, n)
	for i := range times {
		times[i] = rng.Weibull(1.5, 60)
		obs[i] = true
	}
	curve := KaplanMeier(times, obs)
	fit, err := FitWeibull(times)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{20, 60, 120} {
		km := SurvivalAt(curve, q)
		pm := fit.Survival(q)
		if math.Abs(km-pm) > 0.03 {
			t.Errorf("S(%v): KM %v vs Weibull %v", q, km, pm)
		}
	}
}

func TestMTBF(t *testing.T) {
	if got := MTBF(1000, 10); got != 100 {
		t.Errorf("MTBF = %v", got)
	}
	if got := MTBF(1000, 0); !math.IsInf(got, 1) {
		t.Errorf("MTBF with no failures = %v", got)
	}
}

func TestWeibullSamplerMoments(t *testing.T) {
	rng := simrand.NewStream(103)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += rng.Weibull(2, 10)
	}
	want := 10 * math.Gamma(1.5)
	if got := sum / n; math.Abs(got-want) > 0.05*want {
		t.Errorf("Weibull sample mean = %v, want %v", got, want)
	}
}
