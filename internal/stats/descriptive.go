// Package stats implements the statistical machinery used throughout the
// Astra memory-failure analysis: descriptive summaries, histograms,
// empirical CDFs, ordinary-least-squares fits, discrete power-law fitting
// (Clauset-Shalizi-Newman style MLE with a Kolmogorov-Smirnov distance),
// decile binning, chi-square uniformity tests, rank and linear correlation,
// and bootstrap confidence intervals.
//
// The package is stdlib-only and deterministic given a seed, which the
// reproduction harness relies on.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
	Q1, Q3   float64 // first and third quartiles
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median, _ = Quantile(sorted, 0.5)
	s.Q1, _ = Quantile(sorted, 0.25)
	s.Q3, _ = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation between order statistics. An empty
// sample — reachable from degraded external data — returns (0, false)
// rather than panicking; a detectably unsorted input (first > last) is a
// programming error and still panics.
func Quantile(sorted []float64, q float64) (float64, bool) {
	if len(sorted) == 0 {
		return 0, false
	}
	if sorted[0] > sorted[len(sorted)-1] {
		panic("stats: Quantile requires ascending-sorted input")
	}
	if q <= 0 {
		return sorted[0], true
	}
	if q >= 1 {
		return sorted[len(sorted)-1], true
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], true
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, true
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median, or 0 for an empty sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	m, _ := Quantile(sorted, 0.5)
	return m
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF; the input is copied and sorted.
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Values returns the sorted sample (not a copy; callers must not mutate).
func (e *ECDF) Values() []float64 { return e.sorted }

// TopShare sorts the sample descending and returns the fraction of the
// total sum contributed by the k largest values. This implements the
// paper's "the 8 nodes with the most CEs account for more than 50% of the
// total" style of statement (Fig 5b). Returns 0 if the total is zero.
func TopShare(xs []float64, k int) float64 {
	if k <= 0 || len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total, top := 0.0, 0.0
	for i, v := range sorted {
		total += v
		if i < k {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// LorenzPoint returns (fraction of total mass carried by the top k items).
// LorenzCurve returns, for each prefix length i in [0, len(xs)], the share
// of the total carried by the i largest values — the curve plotted in
// Fig 5b. The result has len(xs)+1 points, starting at 0 and ending at 1
// (or all zeros if the total is 0).
func LorenzCurve(xs []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	out := make([]float64, len(sorted)+1)
	if total == 0 {
		return out
	}
	acc := 0.0
	for i, v := range sorted {
		acc += v
		out[i+1] = acc / total
	}
	return out
}

// CountsToFloats converts an integer count vector to float64 for use with
// the float-based routines in this package.
func CountsToFloats(counts []int) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c)
	}
	return out
}

// ErrInsufficientData is returned by fitting routines when the sample is
// too small to produce a meaningful estimate.
var ErrInsufficientData = fmt.Errorf("stats: insufficient data")
