package stats

import "time"

// RateWindow counts events in a trailing time window using a ring of
// fixed-width buckets, the standard streaming estimator: Add is O(1) and
// allocation-free after construction, and Count/Rate answer "how many in
// the last W" at bucket resolution. The stream engine keeps one per node
// (and one global) to expose live CE rates without rescanning history.
//
// Time is event time, not wall time: the window advances with the largest
// timestamp added, so replaying a historical log produces the same
// answers the live system would have given. Events earlier than the
// window's trailing edge are dropped (and counted in Late); events within
// the window but out of order land in their proper bucket.
//
// The ring is sized to the next power of two above the bucket count and
// each slot remembers the absolute bucket index it last held, so
// advancing the head is a single assignment — no per-bucket zeroing loop,
// even across gaps far longer than the window. Stale slots are ignored by
// range checks and recycled in place on their next write. This matters at
// ingest rates of millions of records/s with thousands of sparse per-node
// windows: the old eager-expiry ring spent most of its time clearing
// buckets that nothing would ever read.
//
// The zero value is unusable; use NewRateWindow or Init. RateWindow is
// not concurrency-safe.
type RateWindow struct {
	bucket  time.Duration
	buckets int // logical window length, in buckets
	mask    int64
	// slots[s].abs is the absolute bucket index (unix time / bucket
	// width) slot s currently holds; a slot is live iff its index lies in
	// (headIdx-buckets, headIdx].
	slots []windowSlot
	// headIdx is the absolute bucket index of the newest bucket.
	headIdx int64
	started bool
	late    int
	// memoStart/memoEnd bound the bucket of the last Add: event streams
	// arrive in near-sorted order, so consecutive events usually share a
	// bucket and the division in idx() is skipped. The interval starts
	// empty (start == end) so an unprimed memo never hits.
	memoStart int64
	memoEnd   int64
	memoIdx   int64
}

// windowSlot is one ring bucket: the absolute bucket index it holds and
// its event count, adjacent so an Add touches one cache line.
type windowSlot struct {
	abs int64
	n   int
}

// NewRateWindow returns an estimator over a trailing window of the given
// length, resolved into buckets slots (minimum 1). The effective window is
// buckets whole bucket-widths, so window should be a multiple of buckets
// for exact semantics.
func NewRateWindow(window time.Duration, buckets int) *RateWindow {
	w := &RateWindow{}
	w.Init(window, buckets)
	return w
}

// Init (re)initializes a RateWindow in place, for callers that embed the
// estimator by value (the stream engine keeps one per node and avoids a
// pointer allocation each).
func (w *RateWindow) Init(window time.Duration, buckets int) {
	if buckets < 1 {
		buckets = 1
	}
	if window <= 0 {
		window = time.Minute
	}
	b := window / time.Duration(buckets)
	if b <= 0 {
		b = 1
	}
	ring := 1
	for ring < buckets {
		ring <<= 1
	}
	*w = RateWindow{
		bucket:  b,
		buckets: buckets,
		mask:    int64(ring - 1),
		slots:   make([]windowSlot, ring),
	}
}

// Window returns the effective trailing window length.
func (w *RateWindow) Window() time.Duration {
	return w.bucket * time.Duration(w.buckets)
}

func (w *RateWindow) idx(nano int64) int64 {
	if nano >= w.memoStart && nano < w.memoEnd {
		return w.memoIdx
	}
	abs := nano / int64(w.bucket)
	w.memoIdx = abs
	w.memoStart = abs * int64(w.bucket)
	w.memoEnd = w.memoStart + int64(w.bucket)
	return abs
}

// Add records one event at time t, advancing the window if t is the
// newest time seen. Events that precede the retained window are dropped
// and counted as late.
func (w *RateWindow) Add(t time.Time) { w.AddNano(t.UnixNano()) }

// AddNano is Add for callers that already hold the event time as unix
// nanoseconds (the stream engine feeds two windows per record and
// converts once).
func (w *RateWindow) AddNano(nano int64) {
	abs := w.idx(nano)
	if !w.started {
		w.started = true
		w.headIdx = abs
	}
	switch {
	case abs > w.headIdx:
		w.headIdx = abs
	case abs <= w.headIdx-int64(w.buckets):
		w.late++
		return
	}
	s := &w.slots[abs&w.mask]
	if s.abs != abs {
		s.abs = abs
		s.n = 1
		return
	}
	s.n++
}

// Count returns the number of events in the window ending at now. A now
// ahead of the newest event first expires the buckets that fall out of
// the window; a now at or before the newest event returns the full
// retained count.
func (w *RateWindow) Count(now time.Time) int {
	if !w.started {
		return 0
	}
	if abs := w.idx(now.UnixNano()); abs > w.headIdx {
		w.headIdx = abs
	}
	lo := w.headIdx - int64(w.buckets)
	total := 0
	for i := range w.slots {
		if s := &w.slots[i]; s.abs > lo && s.abs <= w.headIdx {
			total += s.n
		}
	}
	return total
}

// Rate returns events per second over the window ending at now.
func (w *RateWindow) Rate(now time.Time) float64 {
	c := w.Count(now)
	secs := w.Window().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(c) / secs
}

// Late returns the number of events dropped for preceding the retained
// window at the time they were added.
func (w *RateWindow) Late() int { return w.late }
