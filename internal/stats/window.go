package stats

import "time"

// RateWindow counts events in a trailing time window using a ring of
// fixed-width buckets, the standard streaming estimator: Add is O(1) and
// allocation-free after construction, and Count/Rate answer "how many in
// the last W" at bucket resolution. The stream engine keeps one per node
// (and one global) to expose live CE rates without rescanning history.
//
// Time is event time, not wall time: the window advances with the largest
// timestamp added, so replaying a historical log produces the same
// answers the live system would have given. Events earlier than the
// window's trailing edge are dropped (and counted in Late); events within
// the window but out of order land in their proper bucket.
//
// The zero value is unusable; use NewRateWindow. RateWindow is not
// concurrency-safe.
type RateWindow struct {
	bucket time.Duration
	counts []int
	// headIdx is the absolute bucket index (unix time / bucket width) of
	// the newest bucket; headIdx-len(counts)+1 is the oldest retained.
	headIdx int64
	started bool
	total   int
	late    int
}

// NewRateWindow returns an estimator over a trailing window of the given
// length, resolved into buckets slots (minimum 1). The effective window is
// buckets whole bucket-widths, so window should be a multiple of buckets
// for exact semantics.
func NewRateWindow(window time.Duration, buckets int) *RateWindow {
	if buckets < 1 {
		buckets = 1
	}
	if window <= 0 {
		window = time.Minute
	}
	b := window / time.Duration(buckets)
	if b <= 0 {
		b = 1
	}
	return &RateWindow{bucket: b, counts: make([]int, buckets)}
}

// Window returns the effective trailing window length.
func (w *RateWindow) Window() time.Duration {
	return w.bucket * time.Duration(len(w.counts))
}

func (w *RateWindow) idx(t time.Time) int64 {
	return t.UnixNano() / int64(w.bucket)
}

// slot maps an absolute bucket index to its ring position.
func (w *RateWindow) slot(abs int64) int {
	n := int64(len(w.counts))
	return int(((abs % n) + n) % n)
}

// Add records one event at time t, advancing the window if t is the
// newest time seen. Events that precede the retained window are dropped
// and counted as late.
func (w *RateWindow) Add(t time.Time) {
	abs := w.idx(t)
	if !w.started {
		w.started = true
		w.headIdx = abs
	}
	switch {
	case abs > w.headIdx:
		w.advance(abs)
	case abs <= w.headIdx-int64(len(w.counts)):
		w.late++
		return
	}
	w.counts[w.slot(abs)]++
	w.total++
}

// advance moves the head forward to abs, expiring buckets that fall off
// the trailing edge.
func (w *RateWindow) advance(abs int64) {
	steps := abs - w.headIdx
	if steps >= int64(len(w.counts)) {
		for i := range w.counts {
			w.counts[i] = 0
		}
		w.total = 0
		w.headIdx = abs
		return
	}
	for i := int64(1); i <= steps; i++ {
		s := w.slot(w.headIdx + i)
		w.total -= w.counts[s]
		w.counts[s] = 0
	}
	w.headIdx = abs
}

// Count returns the number of events in the window ending at now. A now
// ahead of the newest event first expires the buckets that fall out of
// the window; a now at or before the newest event returns the full
// retained count.
func (w *RateWindow) Count(now time.Time) int {
	if !w.started {
		return 0
	}
	if abs := w.idx(now); abs > w.headIdx {
		w.advance(abs)
	}
	return w.total
}

// Rate returns events per second over the window ending at now.
func (w *RateWindow) Rate(now time.Time) float64 {
	c := w.Count(now)
	secs := w.Window().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(c) / secs
}

// Late returns the number of events dropped for preceding the retained
// window at the time they were added.
func (w *RateWindow) Late() int { return w.late }
