package stats

import "fmt"

// Histogram is a fixed-width binned histogram over [Lo, Hi). Values outside
// the range are counted in Under/Over rather than silently dropped, because
// the sensor datasets contain invalid readings that the analysis must
// account for explicitly.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v)/%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // float edge case at Hi boundary
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records all observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized density of bin i (fraction of in-range
// observations per unit x), or 0 when empty.
func (h *Histogram) Density(i int) float64 {
	in := h.total - h.Under - h.Over
	if in == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(in) / h.BinWidth()
}

// Fraction returns the fraction of all observations landing in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Mode returns the index of the most populated bin (ties to the lowest).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// CountHistogram tallies how many entities experienced each integer count;
// it is the "number of nodes (y) that saw x faults" transform used by
// Figures 5a and 8. Keys are counts, values are numbers of entities.
type CountHistogram map[int]int

// NewCountHistogram tallies the multiplicity of each value in counts.
func NewCountHistogram(counts []int) CountHistogram {
	h := CountHistogram{}
	for _, c := range counts {
		h[c]++
	}
	return h
}

// SortedCounts returns the distinct count values in ascending order.
func (h CountHistogram) SortedCounts() []int {
	out := make([]int, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tiny key sets
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
