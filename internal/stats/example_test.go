package stats_test

import (
	"fmt"

	"repro/internal/simrand"
	"repro/internal/stats"
)

// Fitting a discrete power law with the Clauset-Shalizi-Newman MLE
// recovers the exponent of a synthetic sample — the machinery behind the
// "appears to obey a power law" claims of Figs 5 and 8.
func ExampleFitPowerLaw() {
	rng := simrand.NewStream(7)
	pl := simrand.NewPowerLaw(2.5, 1, 100000)
	xs := make([]int, 20000)
	for i := range xs {
		xs[i] = pl.Sample(rng)
	}
	fit, err := stats.FitPowerLaw(xs, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha within 0.1 of 2.5: %v\n", fit.Alpha > 2.4 && fit.Alpha < 2.6)
	fmt.Printf("KS distance small: %v\n", fit.KS < 0.02)
	// Output:
	// alpha within 0.1 of 2.5: true
	// KS distance small: true
}

// Kaplan-Meier handles the right-censoring that dominates hardware
// lifetime data: most parts are still alive when the study window closes.
func ExampleKaplanMeier() {
	times := []float64{30, 60, 60, 212, 212}
	observed := []bool{true, true, false, false, false} // 2 failures, 3 censored
	curve := stats.KaplanMeier(times, observed)
	fmt.Printf("S(30) = %.2f\n", stats.SurvivalAt(curve, 30))
	fmt.Printf("S(212) = %.2f\n", stats.SurvivalAt(curve, 212))
	// Output:
	// S(30) = 0.80
	// S(212) = 0.60
}

// The decile analysis of §3.3: bin samples by a key (temperature) and
// compare the mean response (CE rate) per decile.
func ExampleDeciles() {
	keys := make([]float64, 100)
	vals := make([]float64, 100)
	for i := range keys {
		keys[i] = float64(i) // temperature stand-in
		vals[i] = 5          // flat response: no coupling
	}
	bins, err := stats.Deciles(keys, vals)
	if err != nil {
		panic(err)
	}
	fit, _ := stats.TrendVerdict(bins)
	fmt.Printf("slope across deciles: %.2f\n", fit.Slope)
	// Output: slope across deciles: 0.00
}
