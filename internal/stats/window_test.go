package stats

import (
	"testing"
	"time"
)

var windowEpoch = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return windowEpoch.Add(d) }

func TestRateWindowBasic(t *testing.T) {
	w := NewRateWindow(time.Minute, 6) // 10s buckets
	for i := 0; i < 5; i++ {
		w.Add(at(time.Duration(i) * 10 * time.Second))
	}
	if got := w.Count(at(40 * time.Second)); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	// Advance just past the window: the first event's bucket expires.
	if got := w.Count(at(61 * time.Second)); got != 4 {
		t.Fatalf("Count after expiry = %d, want 4", got)
	}
	if r := w.Rate(at(61 * time.Second)); r != 4.0/60.0 {
		t.Fatalf("Rate = %v, want %v", r, 4.0/60.0)
	}
}

func TestRateWindowOutOfOrderWithinWindow(t *testing.T) {
	w := NewRateWindow(time.Minute, 6)
	w.Add(at(50 * time.Second))
	w.Add(at(10 * time.Second)) // late but within window
	if got := w.Count(at(50 * time.Second)); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if w.Late() != 0 {
		t.Fatalf("Late = %d, want 0", w.Late())
	}
}

func TestRateWindowDropsTooLate(t *testing.T) {
	w := NewRateWindow(time.Minute, 6)
	w.Add(at(10 * time.Minute))
	w.Add(at(0)) // far behind the trailing edge
	if got := w.Count(at(10 * time.Minute)); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if w.Late() != 1 {
		t.Fatalf("Late = %d, want 1", w.Late())
	}
}

func TestRateWindowLongGapClears(t *testing.T) {
	w := NewRateWindow(time.Minute, 6)
	for i := 0; i < 10; i++ {
		w.Add(at(time.Duration(i) * time.Second))
	}
	w.Add(at(time.Hour))
	if got := w.Count(at(time.Hour)); got != 1 {
		t.Fatalf("Count after gap = %d, want 1", got)
	}
}

// TestRateWindowMatchesNaive cross-checks the ring against a brute-force
// count at bucket granularity over a pseudo-random event sequence.
func TestRateWindowMatchesNaive(t *testing.T) {
	const buckets = 8
	window := 80 * time.Second // 10s buckets
	w := NewRateWindow(window, buckets)
	var events []time.Time
	var maxSeen time.Time
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 500; i++ {
		// Mostly forward, occasionally backward in time.
		step := time.Duration(next()%20) * time.Second
		tm := maxSeen.Add(step)
		if maxSeen.IsZero() {
			tm = at(0)
		} else if next()%5 == 0 {
			back := time.Duration(next()%100) * time.Second
			tm = maxSeen.Add(-back)
		}
		if tm.After(maxSeen) {
			maxSeen = tm
		}
		w.Add(tm)
		events = append(events, tm)

		// Naive recount at bucket granularity: events in buckets
		// (headBucket-buckets, headBucket], excluding any event that was
		// too late at the moment it was added (dropped, never counted).
		headBucket := maxSeen.UnixNano() / int64(10*time.Second)
		seen := maxSeen
		naive := 0
		cursorMax := time.Time{}
		for _, e := range events {
			if e.After(cursorMax) {
				cursorMax = e
			}
			eb := e.UnixNano() / int64(10*time.Second)
			curHead := cursorMax.UnixNano() / int64(10*time.Second)
			if eb <= curHead-buckets {
				continue // dropped as late on arrival
			}
			if eb > headBucket-buckets && eb <= headBucket {
				naive++
			}
		}
		if got := w.Count(seen); got != naive {
			t.Fatalf("step %d: Count = %d, naive = %d", i, got, naive)
		}
	}
}

func TestRateWindowAddNoAlloc(t *testing.T) {
	w := NewRateWindow(time.Minute, 60)
	tm := at(0)
	n := testing.AllocsPerRun(1000, func() {
		tm = tm.Add(time.Second)
		w.Add(tm)
	})
	if n != 0 {
		t.Fatalf("Add allocates %v per call", n)
	}
}
