package stats

import "math"

// Streaming accumulators for the failure-prediction feature extractor
// (internal/predict). Both are fixed-size and allocation-free on the
// update path, which lets the stream engine embed one per bank without
// touching the ingest hot path's zero-allocation contract. Both are
// also strictly deterministic functions of their input *sequence*: the
// prediction subsystem relies on updates being applied in arrival
// order on every path (serial, batched, sharded), so the structs
// deliberately provide no merge operation.

// Welford accumulates running mean and variance using Welford's
// online algorithm, which is numerically stable for long streams of
// inter-arrival gaps spanning milliseconds to months.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// P2Quantile estimates a single quantile online using the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers track the running
// quantile with O(1) state and no stored samples. For n ≤ 5 the
// estimate is exact. The estimate is deterministic in the input
// sequence, which the stream==batch feature differential depends on.
type P2Quantile struct {
	p    float64
	n    int64
	q    [5]float64 // marker heights
	npos [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	dn   [5]float64 // desired position increments
}

// Init prepares the sketch to track quantile p in (0, 1). It must be
// called before Add; calling it again resets the sketch.
func (s *P2Quantile) Init(p float64) {
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	*s = P2Quantile{p: p}
	s.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// N returns the number of observations.
func (s *P2Quantile) N() int64 { return s.n }

// Add folds one observation into the sketch.
func (s *P2Quantile) Add(x float64) {
	if s.n < 5 {
		// Insertion sort the first five observations.
		i := int(s.n)
		for i > 0 && s.q[i-1] > x {
			s.q[i] = s.q[i-1]
			i--
		}
		s.q[i] = x
		s.n++
		if s.n == 5 {
			for j := 0; j < 5; j++ {
				s.npos[j] = float64(j + 1)
				s.want[j] = 1 + 4*s.dn[j]
			}
		}
		return
	}
	s.n++

	// Find the cell containing x and bump marker positions above it.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.npos[i]++
	}
	for i := 0; i < 5; i++ {
		s.want[i] += s.dn[i]
	}

	// Adjust the three interior markers toward their desired positions
	// with piecewise-parabolic (or linear fallback) interpolation.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.npos[i]
		if (d >= 1 && s.npos[i+1]-s.npos[i] > 1) || (d <= -1 && s.npos[i-1]-s.npos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qn := s.parabolic(i, sign)
			if s.q[i-1] < qn && qn < s.q[i+1] {
				s.q[i] = qn
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.npos[i] += sign
		}
	}
}

func (s *P2Quantile) parabolic(i int, d float64) float64 {
	num1 := s.npos[i] - s.npos[i-1] + d
	num2 := s.npos[i+1] - s.npos[i] - d
	den := s.npos[i+1] - s.npos[i-1]
	return s.q[i] + d/den*(num1*(s.q[i+1]-s.q[i])/(s.npos[i+1]-s.npos[i])+
		num2*(s.q[i]-s.q[i-1])/(s.npos[i]-s.npos[i-1]))
}

func (s *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.npos[j]-s.npos[i])
}

// Value returns the current quantile estimate. For n ≤ 5 it returns
// the exact sample quantile (nearest-rank); with no observations it
// returns 0.
func (s *P2Quantile) Value() float64 {
	switch {
	case s.n == 0:
		return 0
	case s.n <= 5:
		// Nearest-rank on the sorted prefix.
		idx := int(s.p * float64(s.n))
		if idx >= int(s.n) {
			idx = int(s.n) - 1
		}
		return s.q[idx]
	default:
		return s.q[2]
	}
}
