package stats

import (
	"fmt"
	"sort"
)

// DecileBin is one bin of a decile analysis: the samples whose key value
// falls in one tenth of the key distribution, with the maximum key in the
// bin (the paper plots "x = maximum sample value within a decile") and the
// mean of the associated response values ("y = average monthly CE rate over
// the decile", Fig 13).
type DecileBin struct {
	MaxKey    float64 // largest key value in the decile
	MeanValue float64 // mean of the response values in the decile
	N         int     // number of samples in the decile
}

// Deciles splits (key, value) pairs into 10 equal-population bins by key
// and returns per-bin summaries, reproducing the Schroeder-style decile
// analysis of §3.3. It returns ErrInsufficientData for fewer than 10 pairs
// and panics on length mismatch.
func Deciles(keys, values []float64) ([]DecileBin, error) {
	return QuantileBins(keys, values, 10)
}

// QuantileBins is the general form of Deciles with a configurable number
// of equal-population bins.
func QuantileBins(keys, values []float64, bins int) ([]DecileBin, error) {
	if len(keys) != len(values) {
		panic("stats: QuantileBins length mismatch")
	}
	if bins < 2 {
		return nil, fmt.Errorf("stats: QuantileBins needs >= 2 bins: %w", ErrInsufficientData)
	}
	n := len(keys)
	if n < bins {
		return nil, ErrInsufficientData
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]DecileBin, bins)
	for b := 0; b < bins; b++ {
		lo := b * n / bins
		hi := (b + 1) * n / bins
		bin := &out[b]
		sum := 0.0
		for _, i := range idx[lo:hi] {
			sum += values[i]
			if keys[i] > bin.MaxKey || bin.N == 0 {
				bin.MaxKey = keys[i]
			}
			bin.N++
		}
		if bin.N > 0 {
			bin.MeanValue = sum / float64(bin.N)
		}
	}
	return out, nil
}

// DecileSpread returns the difference between the highest and lowest
// decile maxima — the paper's "difference between the first and ninth
// deciles" temperature-range comparison (§3.3). For k deciles it uses
// bins[len-2].MaxKey - bins[0].MaxKey to match "first to ninth"; pass the
// output of Deciles.
func DecileSpread(bins []DecileBin) float64 {
	if len(bins) < 2 {
		return 0
	}
	return bins[len(bins)-2].MaxKey - bins[0].MaxKey
}

// TrendVerdict classifies the relationship in a decile analysis: it fits a
// line to (MaxKey, MeanValue) and reports the fit. The paper's conclusion
// "no discernible trend as the temperature increases" corresponds to a
// statistically weak slope relative to the response scale.
func TrendVerdict(bins []DecileBin) (LinearFit, error) {
	if len(bins) < 3 {
		return LinearFit{}, ErrInsufficientData
	}
	x := make([]float64, len(bins))
	y := make([]float64, len(bins))
	for i, b := range bins {
		x[i] = b.MaxKey
		y[i] = b.MeanValue
	}
	return FitLinear(x, y)
}

// SplitByMedian partitions the (key, value) pairs into "low" and "high"
// halves by the median of keys, returning the value slices. This is the
// hot/cold split used by the utilization analysis (Fig 14). Pairs equal to
// the median go to the low half.
func SplitByMedian(keys, values []float64) (lowVals, highVals []float64) {
	if len(keys) != len(values) {
		panic("stats: SplitByMedian length mismatch")
	}
	if len(keys) == 0 {
		return nil, nil
	}
	med := Median(keys)
	for i, k := range keys {
		if k <= med {
			lowVals = append(lowVals, values[i])
		} else {
			highVals = append(highVals, values[i])
		}
	}
	return lowVals, highVals
}
