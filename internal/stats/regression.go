package stats

import (
	"math"
	"sort"
)

// LinearFit is the result of an ordinary-least-squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	StdErr    float64 // standard error of the slope
	N         int
}

// FitLinear performs an OLS fit of y against x. It returns
// ErrInsufficientData if fewer than two points are provided or x is
// constant; it panics if the slices differ in length (caller bug).
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		panic("stats: FitLinear length mismatch")
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	fit := LinearFit{N: n}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // y constant and perfectly predicted by a flat line
	}
	if n > 2 {
		sse := syy - fit.Slope*sxy
		if sse < 0 {
			sse = 0
		}
		fit.StdErr = math.Sqrt(sse / float64(n-2) / sxx)
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// SlopeT returns the t-statistic of the slope against the null hypothesis
// slope = 0. Returns +-Inf when the standard error is 0 and the slope is
// not, and 0 when both are 0.
func (f LinearFit) SlopeT() float64 {
	if f.StdErr == 0 {
		if f.Slope == 0 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, f.Slope)))
	}
	return f.Slope / f.StdErr
}

// Pearson returns the Pearson linear correlation coefficient of x and y.
// It returns 0 for degenerate inputs (length < 2 or zero variance) and
// panics on length mismatch.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	n := len(x)
	if n < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient, computed as
// the Pearson correlation of the mid-ranks (ties averaged).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks assigns mid-ranks (1-based, ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for ties i..j (1-based ranks i+1..j+1).
		r := float64(i+j+2) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = r
		}
		i = j + 1
	}
	return out
}
