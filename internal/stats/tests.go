package stats

import (
	"math"
	"sort"

	"repro/internal/simrand"
)

// ChiSquare is the result of a chi-square goodness-of-fit test of observed
// counts against expected counts.
type ChiSquare struct {
	Statistic float64
	DF        int
	PValue    float64
}

// ChiSquareUniform tests whether observed counts are consistent with a
// uniform distribution across the cells. This is the "variation can be
// explained by statistical noise" test applied to the per-socket, per-bank,
// per-column and per-region fault distributions (§3.2, §3.4). It returns
// ErrInsufficientData for fewer than 2 cells or a zero total.
func ChiSquareUniform(observed []int) (ChiSquare, error) {
	if len(observed) < 2 {
		return ChiSquare{}, ErrInsufficientData
	}
	total := 0
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return ChiSquare{}, ErrInsufficientData
	}
	expected := float64(total) / float64(len(observed))
	stat := 0.0
	for _, o := range observed {
		d := float64(o) - expected
		stat += d * d / expected
	}
	df := len(observed) - 1
	return ChiSquare{Statistic: stat, DF: df, PValue: chiSquareSF(stat, df)}, nil
}

// chiSquareSF returns P(X >= x) for a chi-square distribution with df
// degrees of freedom, via the regularized upper incomplete gamma function
// Q(df/2, x/2).
func chiSquareSF(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, x/2)
}

// gammaQ computes the regularized upper incomplete gamma function Q(a, x)
// using the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes 6.2).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQCF(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KolmogorovSmirnov returns the two-sample KS distance between samples a
// and b (max absolute difference between their empirical CDFs). Returns 0
// when either sample is empty.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	i, j := 0, 0
	d := 0.0
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// BootstrapCI estimates a (1-2p) confidence interval for statistic fn over
// sample xs using iters bootstrap resamples driven by rng. For example
// p = 0.025 yields a 95% interval. An empty sample — reachable from
// degraded external data — returns (0, 0, false).
func BootstrapCI(rng *simrand.Stream, xs []float64, fn func([]float64) float64, iters int, p float64) (lo, hi float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	if iters <= 0 {
		iters = 1000
	}
	vals := make([]float64, iters)
	resample := make([]float64, len(xs))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = xs[rng.IntN(len(xs))]
		}
		vals[i] = fn(resample)
	}
	sort.Float64s(vals)
	lo, _ = Quantile(vals, p)
	hi, _ = Quantile(vals, 1-p)
	return lo, hi, true
}
