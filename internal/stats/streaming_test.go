package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/simrand"
)

func batchMeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return mean, variance / float64(len(xs))
}

func exactQuantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestWelfordMatchesBatch is the property test the satellite asks for:
// the streaming mean/variance must match batch recomputation over
// random sequences drawn from the distributions feature extraction
// actually sees (heavy-tailed inter-arrival gaps).
func TestWelfordMatchesBatch(t *testing.T) {
	rng := simrand.NewStream(7).Derive("welford")
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(2000)
		xs := make([]float64, n)
		for i := range xs {
			// Lognormal gaps: seconds to months.
			xs[i] = rng.LogNormal(4, 3)
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean, variance := batchMeanVar(xs)
		if w.N() != int64(n) {
			t.Fatalf("trial %d: N=%d want %d", trial, w.N(), n)
		}
		if relErr(w.Mean(), mean) > 1e-9 {
			t.Fatalf("trial %d: mean %g want %g", trial, w.Mean(), mean)
		}
		if relErr(w.Variance(), variance) > 1e-6 {
			t.Fatalf("trial %d: variance %g want %g", trial, w.Variance(), variance)
		}
		if got, want := w.Std(), math.Sqrt(variance); relErr(got, want) > 1e-6 {
			t.Fatalf("trial %d: std %g want %g", trial, got, want)
		}
	}
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if math.Abs(want) > 1 {
		return d / math.Abs(want)
	}
	return d
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 || w.N() != 0 {
		t.Fatalf("empty Welford not zero: %+v", w)
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Fatalf("single observation: mean=%g var=%g", w.Mean(), w.Variance())
	}
}

// TestP2QuantileExactSmall: for n ≤ 5 the sketch stores the samples and
// must return the exact nearest-rank quantile.
func TestP2QuantileExactSmall(t *testing.T) {
	for _, p := range []float64{0.25, 0.5, 0.9} {
		xs := []float64{5, 1, 4, 2, 3}
		for n := 1; n <= 5; n++ {
			var s P2Quantile
			s.Init(p)
			for _, x := range xs[:n] {
				s.Add(x)
			}
			want := exactQuantile(xs[:n], p)
			if got := s.Value(); got != want {
				t.Fatalf("p=%v n=%d: got %g want %g", p, n, got, want)
			}
		}
	}
}

// TestP2QuantileApproximatesBatch: the P² estimate must track the exact
// sample quantile within a loose relative tolerance across
// distributions and quantiles. P² is an approximation; the tolerance
// is wide but catches sign/offset/marker bugs immediately.
func TestP2QuantileApproximatesBatch(t *testing.T) {
	rng := simrand.NewStream(11).Derive("p2")
	dists := []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 1000 }},
		{"exponential", func() float64 { return rng.Exp(1.0 / 3600) }},
		{"lognormal", func() float64 { return rng.LogNormal(6, 1.5) }},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.9} {
			n := 5000
			xs := make([]float64, n)
			var s P2Quantile
			s.Init(p)
			for i := range xs {
				xs[i] = d.gen()
				s.Add(xs[i])
			}
			if s.N() != int64(n) {
				t.Fatalf("%s p=%v: N=%d", d.name, p, s.N())
			}
			want := exactQuantile(xs, p)
			got := s.Value()
			// Compare in rank space: the estimate must sit between the
			// exact p-0.08 and p+0.08 sample quantiles.
			lo := exactQuantile(xs, math.Max(0, p-0.08))
			hi := exactQuantile(xs, math.Min(0.999, p+0.08))
			if got < lo || got > hi {
				t.Fatalf("%s p=%v: estimate %g outside [%g, %g] (exact %g)",
					d.name, p, got, lo, hi, want)
			}
		}
	}
}

// TestP2QuantileDeterministic: identical input sequences must produce
// bit-identical sketches — the stream==batch feature differential
// depends on this.
func TestP2QuantileDeterministic(t *testing.T) {
	gen := func() P2Quantile {
		rng := simrand.NewStream(3).Derive("det")
		var s P2Quantile
		s.Init(0.5)
		for i := 0; i < 10000; i++ {
			s.Add(rng.Float64() * 1e6)
		}
		return s
	}
	a, b := gen(), gen()
	if a != b {
		t.Fatalf("sketch state diverged on identical input:\n%+v\n%+v", a, b)
	}
}

func TestP2QuantileInitDefaults(t *testing.T) {
	var s P2Quantile
	s.Init(-1) // out of range → median
	s.Add(1)
	s.Add(2)
	s.Add(3)
	if got := s.Value(); got != 2 {
		t.Fatalf("default-p median: got %g want 2", got)
	}
	if s.Value() != 2 { // Value must not mutate
		t.Fatalf("Value mutated state")
	}
}
