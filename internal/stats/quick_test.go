package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: every Add is accounted for — in-range bins plus under/over
// always sum to the total.
func TestHistogramAccountingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram(-100, 100, 13)
		for _, v := range raw {
			h.Add(float64(v))
		}
		in := 0
		for _, c := range h.Counts {
			in += c
		}
		return in+h.Under+h.Over == h.Total() && h.Total() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Lorenz curve is monotone non-decreasing in [0, 1] for any
// non-negative input.
func TestLorenzCurveProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lc := LorenzCurve(xs)
		if len(lc) != len(xs)+1 || lc[0] != 0 {
			return false
		}
		for i := 1; i < len(lc); i++ {
			if lc[i] < lc[i-1] || lc[i] > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: descriptive order invariants Min <= Q1 <= Median <= Q3 <= Max.
func TestSummarizeOrderProperty(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric.
func TestPearsonBoundsProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(a[i])
			ys[i] = float64(b[i])
		}
		r := Pearson(xs, ys)
		if math.Abs(r) > 1+1e-9 {
			return false
		}
		return math.Abs(r-Pearson(ys, xs)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: KaplanMeier survival values are non-increasing and in [0, 1]
// for arbitrary (time, observed) data.
func TestKaplanMeierMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, obsBits []bool) bool {
		n := len(raw)
		if len(obsBits) < n {
			n = len(obsBits)
		}
		times := make([]float64, n)
		obs := make([]bool, n)
		for i := 0; i < n; i++ {
			times[i] = float64(raw[i]) + 1
			obs[i] = obsBits[i]
		}
		curve := KaplanMeier(times, obs)
		prev := 1.0
		for _, p := range curve {
			if p.Survival < -1e-9 || p.Survival > prev+1e-9 {
				return false
			}
			prev = p.Survival
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
