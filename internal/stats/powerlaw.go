package stats

import (
	"math"
	"sort"
)

// PowerLawFit is the result of fitting a discrete power law
// P(k) ∝ k^-alpha for k >= Xmin to integer count data.
type PowerLawFit struct {
	Alpha float64 // fitted tail exponent
	Xmin  int     // lower cutoff used for the fit
	KS    float64 // Kolmogorov-Smirnov distance between data and fit
	NTail int     // number of observations >= Xmin
}

// zetaTerms is the direct-summation length of the Hurwitz-zeta
// evaluations; the remainder is an Euler-Maclaurin tail correction.
const zetaTerms = 2000

// hurwitzZeta computes ζ(alpha, a) = Σ_{k=a}^{∞} k^-alpha for alpha > 1,
// a >= 1, by direct summation plus an Euler-Maclaurin tail correction.
func hurwitzZeta(alpha float64, a int) float64 {
	n := a + zetaTerms
	sum := 0.0
	for k := a; k < n; k++ {
		sum += math.Pow(float64(k), -alpha)
	}
	fn := float64(n)
	// Tail: ∫_n^∞ x^-alpha dx + f(n)/2 + alpha*f'(n)/12 correction.
	sum += math.Pow(fn, 1-alpha)/(alpha-1) + math.Pow(fn, -alpha)/2 + alpha*math.Pow(fn, -alpha-1)/12
	return sum
}

// zetaTable caches ln(k) for k in [a, a+zetaTerms) so the MLE bisection
// can evaluate both zeta sums at many alphas over the same support
// without recomputing logarithms: k^-alpha = exp(-alpha·ln k), so each
// term costs one Exp and one multiply instead of two Pows and a Log.
type zetaTable struct {
	a   int
	lnk []float64
}

func newZetaTable(a int) *zetaTable {
	t := &zetaTable{a: a, lnk: make([]float64, zetaTerms)}
	for i := range t.lnk {
		t.lnk[i] = math.Log(float64(a + i))
	}
	return t
}

// both returns ζ(alpha, a) and Σ ln(k)·k^-alpha in one fused pass, with
// the same Euler-Maclaurin tails as hurwitzZeta (∫ + boundary + f'
// correction) and its log-weighted counterpart
// ∫_n^∞ ln(x)·x^-alpha dx = n^(1-alpha)·(ln n/(alpha-1) + 1/(alpha-1)²).
func (t *zetaTable) both(alpha float64) (z, zlog float64) {
	for _, l := range t.lnk {
		e := math.Exp(-alpha * l)
		z += e
		zlog += l * e
	}
	fn := float64(t.a + zetaTerms)
	lnN := math.Log(fn)
	en := math.Exp(-alpha * lnN) // fn^-alpha
	am1 := alpha - 1
	z += en*fn/am1 + en/2 + alpha*en/fn/12
	zlog += en*fn*(lnN/am1+1/(am1*am1)) + lnN*en/2
	return z, zlog
}

// FitPowerLaw fits a discrete power law to the positive integer sample xs
// using the exact discrete maximum-likelihood estimator of Clauset, Shalizi
// & Newman (2009): alpha solves
//
//	Σ ln(k)·k^-alpha / Σ k^-alpha  (sums over k >= xmin)  =  mean(ln x_i)
//
// found by bisection, with the Kolmogorov-Smirnov distance between the
// empirical and fitted CDFs over the tail reported as goodness of fit.
// Values below xmin are ignored. It returns ErrInsufficientData if fewer
// than 10 tail observations remain.
func FitPowerLaw(xs []int, xmin int) (PowerLawFit, error) {
	if xmin < 1 {
		xmin = 1
	}
	tail := make([]int, 0, len(xs))
	sumLn := 0.0
	for _, x := range xs {
		if x >= xmin {
			tail = append(tail, x)
			sumLn += math.Log(float64(x))
		}
	}
	if len(tail) < 10 {
		return PowerLawFit{}, ErrInsufficientData
	}
	meanLn := sumLn / float64(len(tail))
	// g(alpha) = E_fit[ln k] - mean(ln x); decreasing in alpha. Bisect.
	// One zeta table serves all ~80 bisection evaluations.
	tbl := newZetaTable(xmin)
	g := func(alpha float64) float64 {
		z, zlog := tbl.both(alpha)
		return zlog/z - meanLn
	}
	lo, hi := 1.0001, 30.0
	if g(lo) < 0 {
		// Data heavier than any admissible power law head; report the
		// boundary rather than failing.
		return PowerLawFit{}, ErrInsufficientData
	}
	if g(hi) > 0 {
		hi = 300 // essentially all mass at xmin
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	sort.Ints(tail)
	fit := PowerLawFit{Alpha: (lo + hi) / 2, Xmin: xmin, NTail: len(tail)}
	fit.KS = powerLawKS(tail, fit.Alpha, xmin)
	return fit, nil
}

// FitPowerLawAuto scans candidate xmin values (every distinct value in the
// sample up to the 90th percentile) and returns the fit minimizing the KS
// distance, per the CSN recipe.
func FitPowerLawAuto(xs []int) (PowerLawFit, error) {
	distinct := map[int]bool{}
	var vals []int
	for _, x := range xs {
		if x >= 1 && !distinct[x] {
			distinct[x] = true
			vals = append(vals, x)
		}
	}
	if len(vals) == 0 {
		return PowerLawFit{}, ErrInsufficientData
	}
	sort.Ints(vals)
	cutoff := vals[(len(vals)*9)/10]
	best := PowerLawFit{KS: math.Inf(1)}
	found := false
	for _, xmin := range vals {
		if xmin > cutoff {
			break
		}
		fit, err := FitPowerLaw(xs, xmin)
		if err != nil {
			continue
		}
		if fit.KS < best.KS {
			best = fit
			found = true
		}
	}
	if !found {
		return PowerLawFit{}, ErrInsufficientData
	}
	return best, nil
}

// powerLawKS computes the KS distance between the empirical CDF of the
// sorted tail sample and the fitted discrete power-law CDF. The empirical
// CDF is evaluated at distinct sample values (full step height), so heavy
// ties at small k are handled correctly.
func powerLawKS(sortedTail []int, alpha float64, xmin int) float64 {
	n := float64(len(sortedTail))
	maxX := sortedTail[len(sortedTail)-1]
	z := hurwitzZeta(alpha, xmin)
	// Fitted CDF over [xmin, maxX].
	cdf := make([]float64, maxX+1)
	acc := 0.0
	for k := xmin; k <= maxX; k++ {
		acc += math.Pow(float64(k), -alpha) / z
		cdf[k] = acc
	}
	ks := 0.0
	for i := 0; i < len(sortedTail); {
		x := sortedTail[i]
		j := i
		for j+1 < len(sortedTail) && sortedTail[j+1] == x {
			j++
		}
		emp := float64(j+1) / n // empirical CDF at x (after the full step)
		if d := math.Abs(emp - cdf[x]); d > ks {
			ks = d
		}
		// Also check the gap just before the step (empirical CDF at x-).
		empBefore := float64(i) / n
		model := 0.0
		if x > xmin {
			model = cdf[x-1]
		}
		if d := math.Abs(empBefore - model); d > ks {
			ks = d
		}
		i = j + 1
	}
	return ks
}

// LogLogSlope estimates the power-law exponent of a count histogram by OLS
// on (log k, log freq) pairs; a cruder estimator than the MLE but the one
// visually implied by "appears to obey a power law" histogram figures.
// Pairs with zero frequency are skipped. Returns ErrInsufficientData when
// fewer than 3 usable points exist.
func LogLogSlope(hist CountHistogram) (LinearFit, error) {
	var lx, ly []float64
	for _, k := range hist.SortedCounts() {
		if k <= 0 || hist[k] <= 0 {
			continue
		}
		lx = append(lx, math.Log(float64(k)))
		ly = append(ly, math.Log(float64(hist[k])))
	}
	if len(lx) < 3 {
		return LinearFit{}, ErrInsufficientData
	}
	return FitLinear(lx, ly)
}
