package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkFitPowerLaw(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]int, 5000)
	for i := range xs {
		xs[i] = 1 + int(rng.ExpFloat64()*3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPowerLaw(xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}
