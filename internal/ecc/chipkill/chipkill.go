// Package chipkill implements a symbol-based error-correcting code of the
// kind Astra deliberately omitted (§2.2: Astra uses SEC-DED because it is
// cheaper and less power-hungry than Chipkill). The reproduction uses it
// for an ablation: re-running the fault population through a chipkill-class
// code shows how many of Astra's DUEs would have been correctable, at the
// cost of 16 extra check bits per 64-bit word.
//
// The code is two interleaved shortened Reed-Solomon (10,8) codes over
// GF(16) with 4-bit symbols matching x4 DRAM devices. Each interleave
// corrects any single-symbol (single-chip) error; multi-symbol errors are
// detected unless they alias, exactly as in real distance-3 symbol codes
// ("SSC" chipkill).
package chipkill

import "fmt"

// Geometry of the code.
const (
	// SymbolBits is the width of one code symbol (one x4 DRAM chip).
	SymbolBits = 4
	// DataSymbolsPerWay is the number of data symbols per interleave.
	DataSymbolsPerWay = 8
	// CheckSymbolsPerWay is the number of parity symbols per interleave.
	CheckSymbolsPerWay = 2
	// SymbolsPerWay is the shortened RS code length per interleave.
	SymbolsPerWay = DataSymbolsPerWay + CheckSymbolsPerWay
	// Ways is the number of interleaved codes covering one 64-bit word.
	Ways = 2
	// DataBits protected per codeword.
	DataBits = Ways * DataSymbolsPerWay * SymbolBits
	// CheckBits added per codeword.
	CheckBits = Ways * CheckSymbolsPerWay * SymbolBits
	// CodeBits is the total codeword width.
	CodeBits = DataBits + CheckBits
)

// GF(16) arithmetic with primitive polynomial x^4 + x + 1.
var (
	gfExp [30]uint8 // alpha^i for i in [0, 30)
	gfLog [16]int8  // log_alpha(v); gfLog[0] = -1
)

func init() {
	x := uint8(1)
	for i := 0; i < 15; i++ {
		gfExp[i] = x
		gfExp[i+15] = x
		gfLog[x] = int8(i)
		x <<= 1
		if x&0x10 != 0 {
			x ^= 0x13 // reduce by x^4 + x + 1
		}
	}
	gfLog[0] = -1
}

func gfMul(a, b uint8) uint8 {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b uint8) uint8 {
	if b == 0 {
		panic("chipkill: division by zero in GF(16)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])-int(gfLog[b])+15]
}

// Codeword holds the 64 data bits and the 16 check bits (two interleaves
// of two 4-bit parity symbols each, packed little-endian by way then
// symbol).
type Codeword struct {
	Data  uint64
	Check uint16
}

// symbol extracts data symbol s of interleave way from a data word.
// Symbols alternate between ways: nibble i of the word belongs to way
// i%2, symbol i/2, so that one x4 chip (one nibble per beat) maps to one
// symbol of one way.
func symbol(data uint64, way, s int) uint8 {
	nib := 2*s + way
	return uint8(data >> (4 * nib) & 0xf)
}

func setSymbol(data uint64, way, s int, v uint8) uint64 {
	nib := 2*s + way
	return data&^(0xf<<(4*nib)) | uint64(v&0xf)<<(4*nib)
}

// checkSymbol extracts parity symbol j (0 or 1) of a way from the packed
// check field.
func checkSymbol(check uint16, way, j int) uint8 {
	return uint8(check >> (4 * (2*way + j)) & 0xf)
}

func setCheckSymbol(check uint16, way, j int, v uint8) uint16 {
	sh := 4 * (2*way + j)
	return check&^(0xf<<sh) | uint16(v&0xf)<<sh
}

// Encode computes the chipkill codeword for 64 data bits. Each way's
// codeword polynomial is c(x) = m(x)·x^2 + rem, with the two parity
// symbols chosen so that c(alpha) = c(alpha^2) = 0.
func Encode(data uint64) Codeword {
	w := Codeword{Data: data}
	for way := 0; way < Ways; way++ {
		// Solve for p0, p1 (positions 0 and 1; data at positions 2..9):
		//   sum_{i} c_i alpha^(i)   = 0
		//   sum_{i} c_i alpha^(2i)  = 0
		var s1, s2 uint8
		for i := 0; i < DataSymbolsPerWay; i++ {
			ci := symbol(data, way, i)
			pos := i + CheckSymbolsPerWay
			s1 ^= gfMul(ci, gfExp[pos%15])
			s2 ^= gfMul(ci, gfExp[(2*pos)%15])
		}
		// p0·1 + p1·alpha   = s1
		// p0·1 + p1·alpha^2 = s2  (alpha^0 = 1 at position 0)
		// => p1 = (s1 ^ s2) / (alpha ^ alpha^2), p0 = s1 ^ p1·alpha.
		den := gfExp[1] ^ gfExp[2]
		p1 := gfDiv(s1^s2, den)
		p0 := s1 ^ gfMul(p1, gfExp[1])
		w.Check = setCheckSymbol(w.Check, way, 0, p0)
		w.Check = setCheckSymbol(w.Check, way, 1, p1)
	}
	return w
}

// Result classifies a decode outcome.
type Result int

// Decode outcomes.
const (
	// OK: valid codeword.
	OK Result = iota
	// Corrected: one symbol error per affected way, corrected.
	Corrected
	// Uncorrectable: detected error beyond single-symbol per way.
	Uncorrectable
)

// String names the result.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Decode examines a possibly corrupted codeword and returns the best-effort
// data and classification. Each interleave is decoded independently; the
// word is Corrected if at least one way needed (and admitted) correction
// and no way was uncorrectable.
func Decode(w Codeword) (uint64, Result) {
	data := w.Data
	res := OK
	for way := 0; way < Ways; way++ {
		var s1, s2 uint8
		for pos := 0; pos < SymbolsPerWay; pos++ {
			var c uint8
			if pos < CheckSymbolsPerWay {
				c = checkSymbol(w.Check, way, pos)
			} else {
				c = symbol(w.Data, way, pos-CheckSymbolsPerWay)
			}
			s1 ^= gfMul(c, gfExp[pos%15])
			s2 ^= gfMul(c, gfExp[(2*pos)%15])
		}
		switch {
		case s1 == 0 && s2 == 0:
			// way clean
		case s1 == 0 || s2 == 0:
			return w.Data, Uncorrectable
		default:
			// Single-symbol hypothesis: error e at position i with
			// s1 = e·alpha^i, s2 = e·alpha^(2i).
			locator := gfDiv(s2, s1) // alpha^i
			i := int(gfLog[locator])
			if i >= SymbolsPerWay {
				return w.Data, Uncorrectable
			}
			e := gfDiv(gfMul(s1, s1), s2) // s1^2/s2 = e
			if i >= CheckSymbolsPerWay {
				s := i - CheckSymbolsPerWay
				data = setSymbol(data, way, s, symbol(data, way, s)^e)
			}
			res = Corrected
		}
	}
	return data, res
}

// DecodeVsTruth decodes and reports whether the decoder's output matches
// the original data, classifying aliased multi-symbol patterns as
// miscorrections (returned as Uncorrectable=false, ok=false).
func DecodeVsTruth(w Codeword, truth uint64) (res Result, silentlyWrong bool) {
	data, res := Decode(w)
	if res != Uncorrectable && data != truth {
		return res, true
	}
	return res, false
}

// FlipBit returns the codeword with the given bit of the 64-bit data field
// inverted (check-bit flips are modeled via FlipCheckBit). It panics if pos
// is out of [0, 64).
func FlipBit(w Codeword, pos int) Codeword {
	if pos < 0 || pos >= 64 {
		panic(fmt.Sprintf("chipkill: FlipBit position %d", pos))
	}
	w.Data ^= 1 << pos
	return w
}

// FlipCheckBit inverts one of the 16 check bits. It panics if pos is out of
// [0, 16).
func FlipCheckBit(w Codeword, pos int) Codeword {
	if pos < 0 || pos >= 16 {
		panic(fmt.Sprintf("chipkill: FlipCheckBit position %d", pos))
	}
	w.Check ^= 1 << pos
	return w
}

// ChipOfDataBit returns the index of the x4 chip (equivalently, the
// (way, symbol) pair flattened as symbol*Ways+way) that stores the given
// data bit. Bits within one nibble share a chip.
func ChipOfDataBit(pos int) int {
	return pos / SymbolBits
}
