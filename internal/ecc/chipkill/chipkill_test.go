package chipkill

import (
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestGFTables(t *testing.T) {
	// alpha^15 = 1 in GF(16).
	if gfExp[15] != gfExp[0] {
		t.Fatal("exp table period wrong")
	}
	// Every nonzero element appears exactly once in one period.
	seen := map[uint8]bool{}
	for i := 0; i < 15; i++ {
		if seen[gfExp[i]] {
			t.Fatalf("duplicate exp value %#x", gfExp[i])
		}
		seen[gfExp[i]] = true
	}
	// mul/div inverses.
	for a := uint8(1); a < 16; a++ {
		for b := uint8(1); b < 16; b++ {
			if gfDiv(gfMul(a, b), b) != a {
				t.Fatalf("div(mul(%d,%d),%d) != %d", a, b, b, a)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		got, res := Decode(Encode(data))
		return got == data && res == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBitCorrected(t *testing.T) {
	f := func(data uint64, pos8 uint8) bool {
		pos := int(pos8) % 64
		got, res := Decode(FlipBit(Encode(data), pos))
		return res == Corrected && got == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestWholeChipErrorCorrected(t *testing.T) {
	// Corrupt all 4 bits of one chip (one nibble): chipkill's raison d'etre.
	data := uint64(0x0123456789abcdef)
	cw := Encode(data)
	for nib := 0; nib < 16; nib++ {
		w := cw
		w.Data ^= 0xf << (4 * nib)
		got, res := Decode(w)
		if res != Corrected || got != data {
			t.Fatalf("chip %d: res=%v got=%#x", nib, res, got)
		}
	}
	// Arbitrary patterns within one nibble.
	rng := simrand.NewStream(3)
	for i := 0; i < 2000; i++ {
		nib := rng.IntN(16)
		pat := uint64(1 + rng.IntN(15))
		w := cw
		w.Data ^= pat << (4 * nib)
		got, res := Decode(w)
		if res != Corrected || got != data {
			t.Fatalf("chip %d pattern %#x: res=%v", nib, pat, res)
		}
	}
}

func TestCheckSymbolErrorHandled(t *testing.T) {
	data := uint64(0xfeedface)
	cw := Encode(data)
	for pos := 0; pos < 16; pos++ {
		got, res := Decode(FlipCheckBit(cw, pos))
		if res == Uncorrectable {
			t.Fatalf("check bit %d flagged uncorrectable", pos)
		}
		if got != data {
			t.Fatalf("check bit %d corrupted data", pos)
		}
	}
}

func TestTwoChipsSameWayNotSilentlyWrong(t *testing.T) {
	// Two corrupted chips in the same interleave exceed the code's
	// correction power; it must either detect or, when aliased, be flagged
	// by DecodeVsTruth. It must never return OK/Corrected with right=false
	// unnoticed.
	data := uint64(0x5555aaaa3333cccc)
	cw := Encode(data)
	rng := simrand.NewStream(4)
	detected, aliased := 0, 0
	for i := 0; i < 5000; i++ {
		way := rng.IntN(2)
		s1 := rng.IntN(8)
		s2 := rng.IntN(8)
		if s1 == s2 {
			continue
		}
		w := cw
		w.Data = setSymbol(w.Data, way, s1, symbol(w.Data, way, s1)^uint8(1+rng.IntN(15)))
		w.Data = setSymbol(w.Data, way, s2, symbol(w.Data, way, s2)^uint8(1+rng.IntN(15)))
		res, wrong := DecodeVsTruth(w, data)
		switch {
		case res == Uncorrectable:
			detected++
		case wrong:
			aliased++
		default:
			t.Fatalf("double-chip error decoded clean: way=%d s=%d,%d", way, s1, s2)
		}
	}
	if detected == 0 {
		t.Error("no double-chip errors detected")
	}
	// Distance-3 symbol codes alias some double errors; both buckets
	// should be populated over 5000 trials.
	if aliased == 0 {
		t.Log("note: no aliased double errors observed (acceptable but unusual)")
	}
}

func TestTwoChipsDifferentWaysCorrected(t *testing.T) {
	// One bad chip per interleave is within the correction budget.
	data := uint64(0x1122334455667788)
	cw := Encode(data)
	w := cw
	w.Data = setSymbol(w.Data, 0, 3, symbol(w.Data, 0, 3)^0x9)
	w.Data = setSymbol(w.Data, 1, 6, symbol(w.Data, 1, 6)^0x5)
	got, res := Decode(w)
	if res != Corrected || got != data {
		t.Fatalf("res=%v got=%#x", res, got)
	}
}

func TestChipOfDataBit(t *testing.T) {
	if ChipOfDataBit(0) != 0 || ChipOfDataBit(3) != 0 || ChipOfDataBit(4) != 1 || ChipOfDataBit(63) != 15 {
		t.Error("ChipOfDataBit mapping wrong")
	}
}

func TestSymbolAccessors(t *testing.T) {
	f := func(data uint64, way1 bool, s8, v8 uint8) bool {
		way := 0
		if way1 {
			way = 1
		}
		s := int(s8) % DataSymbolsPerWay
		v := v8 & 0xf
		d2 := setSymbol(data, way, s, v)
		return symbol(d2, way, s) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FlipBit(Codeword{}, 64) },
		func() { FlipCheckBit(Codeword{}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
