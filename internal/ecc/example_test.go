package ecc_test

import (
	"fmt"

	"repro/internal/ecc"
)

// A single flipped bit is corrected; a double flip is detected but not
// correctable — the SEC-DED contract Astra's memory relies on.
func ExampleDecode() {
	word := ecc.Encode(0xdeadbeef)

	oneFlip := ecc.FlipBit(word, 17)
	data, res, _, bit := ecc.Decode(oneFlip)
	fmt.Printf("single flip: %v at bit %d, data intact: %v\n", res, bit, data == 0xdeadbeef)

	twoFlips := ecc.FlipBit(oneFlip, 42)
	_, res, _, _ = ecc.Decode(twoFlips)
	fmt.Printf("double flip: %v\n", res)

	// Output:
	// single flip: corrected at bit 17, data intact: true
	// double flip: uncorrectable
}

// The syndrome of a corrected error identifies the failed bit, which the
// ETL uses to validate CE records.
func ExampleBitForSyndrome() {
	w := ecc.FlipBit(ecc.Encode(0), 5)
	s := ecc.Syndrome(w)
	fmt.Println(ecc.BitForSyndrome(s))
	// Output: 5
}
