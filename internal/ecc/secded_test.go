package ecc

import (
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestColumnsAreOddWeightAndDistinct(t *testing.T) {
	seen := map[uint8]bool{}
	for i, c := range columns {
		if c == 0 {
			t.Fatalf("column %d is zero", i)
		}
		if popcount8(c)%2 == 0 {
			t.Errorf("column %d has even weight %d", i, popcount8(c))
		}
		if seen[c] {
			t.Errorf("duplicate column %#x", c)
		}
		seen[c] = true
	}
	// Hsiao: 56 weight-3 columns then 8 weight-5 columns for data.
	for i := 0; i < 56; i++ {
		if popcount8(columns[i]) != 3 {
			t.Errorf("data column %d weight = %d, want 3", i, popcount8(columns[i]))
		}
	}
	for i := 56; i < 64; i++ {
		if popcount8(columns[i]) != 5 {
			t.Errorf("data column %d weight = %d, want 5", i, popcount8(columns[i]))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		w := Encode(data)
		got, res, s, bit := Decode(w)
		return got == data && res == OK && s == 0 && bit == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBitErrorsCorrected(t *testing.T) {
	f := func(data uint64, pos8 uint8) bool {
		pos := int(pos8) % CodeBits
		w := FlipBit(Encode(data), pos)
		got, res, _, bit := Decode(w)
		return res == Corrected && got == data && bit == pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Exhaustive over positions for one word.
	data := uint64(0xdeadbeefcafef00d)
	for pos := 0; pos < CodeBits; pos++ {
		got, res, _, bit := Decode(FlipBit(Encode(data), pos))
		if res != Corrected || got != data || bit != pos {
			t.Fatalf("pos %d: res=%v got=%#x bit=%d", pos, res, got, bit)
		}
	}
}

func TestDoubleBitErrorsDetected(t *testing.T) {
	f := func(data uint64, a8, b8 uint8) bool {
		a := int(a8) % CodeBits
		b := int(b8) % CodeBits
		if a == b {
			return true
		}
		w := FlipBit(FlipBit(Encode(data), a), b)
		_, res, _, _ := Decode(w)
		return res == Uncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Exhaustive over all C(72,2) pairs for one word.
	data := uint64(0x0123456789abcdef)
	cw := Encode(data)
	for a := 0; a < CodeBits; a++ {
		for b := a + 1; b < CodeBits; b++ {
			_, res, _, _ := Decode(FlipBit(FlipBit(cw, a), b))
			if res != Uncorrectable {
				t.Fatalf("double error (%d,%d) classified %v", a, b, res)
			}
		}
	}
}

func TestTripleBitErrorsNeverSilentlyOK(t *testing.T) {
	// SEC-DED may miscorrect a triple error, but DecodeVsTruth must then
	// report Miscorrected, never OK/Corrected-with-wrong-data.
	rng := simrand.NewStream(12)
	data := uint64(0xfeedfacefeedface)
	cw := Encode(data)
	for i := 0; i < 5000; i++ {
		a := rng.IntN(CodeBits)
		b := rng.IntN(CodeBits)
		c := rng.IntN(CodeBits)
		if a == b || b == c || a == c {
			continue
		}
		w := FlipBit(FlipBit(FlipBit(cw, a), b), c)
		res, _, _ := DecodeVsTruth(w, data)
		if res == OK || res == Corrected {
			// Corrected is only acceptable if the data is right, which
			// DecodeVsTruth already verifies, so this is a real failure.
			t.Fatalf("triple error (%d,%d,%d) reported %v", a, b, c, res)
		}
	}
}

func TestDecodeVsTruthAgreesOnCleanAndSingle(t *testing.T) {
	data := uint64(42)
	if res, _, _ := DecodeVsTruth(Encode(data), data); res != OK {
		t.Errorf("clean word: %v", res)
	}
	if res, _, _ := DecodeVsTruth(FlipBit(Encode(data), 7), data); res != Corrected {
		t.Errorf("single flip: %v", res)
	}
}

func TestFlipBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FlipBit(Codeword{}, CodeBits)
}

func TestFlipBitInvolution(t *testing.T) {
	f := func(data uint64, pos8 uint8) bool {
		pos := int(pos8) % CodeBits
		w := Encode(data)
		return FlipBit(FlipBit(w, pos), pos) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSyndromeIdentifiesBit(t *testing.T) {
	// The syndrome of a single flip at pos equals columns[pos].
	cw := Encode(0)
	for pos := 0; pos < CodeBits; pos++ {
		if s := Syndrome(FlipBit(cw, pos)); s != columns[pos] {
			t.Fatalf("syndrome at %d = %#x, want %#x", pos, s, columns[pos])
		}
	}
}

func TestResultString(t *testing.T) {
	for r, want := range map[Result]string{OK: "ok", Corrected: "corrected", Uncorrectable: "uncorrectable", Miscorrected: "miscorrected"} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkDecodeCorrected(b *testing.B) {
	w := FlipBit(Encode(0xdeadbeef), 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(w)
	}
}
