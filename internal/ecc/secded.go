// Package ecc implements the (72,64) Hsiao single-error-correction,
// double-error-detection (SEC-DED) code used by Astra's memory controllers
// (§2.2: Astra uses SEC-DED rather than Chipkill).
//
// The codec determines how the simulated memory controller classifies a
// corrupted word: a single flipped bit yields a correctable error (CE) with
// a syndrome identifying the bit; two flipped bits yield a detected
// uncorrectable error (DUE); wider corruption is detected as uncorrectable
// whenever the syndrome is nonzero (and, as with real SEC-DED, can alias to
// a miscorrection for some >=3-bit patterns — which the fault model uses
// when arguing why multi-rank/multi-bank faults manifest as DUEs, §3.2).
package ecc

import "fmt"

// Code sizes.
const (
	// DataBits is the number of protected data bits per word.
	DataBits = 64
	// CheckBits is the number of check bits per word.
	CheckBits = 8
	// CodeBits is the total codeword width.
	CodeBits = DataBits + CheckBits
)

// Codeword is a 72-bit SEC-DED codeword: 64 data bits and 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// columns[i] is the 8-bit parity-check column for codeword bit i. Bits
// 0..63 are data bits and use odd-weight columns (Hsiao construction:
// the 56 weight-3 columns followed by 8 weight-5 columns); bits 64..71 are
// check bits and use the unit columns.
var columns [CodeBits]uint8

// syndromeToBit maps a nonzero syndrome to the codeword bit position whose
// column it equals, or -1.
var syndromeToBit [256]int

func init() {
	idx := 0
	for _, weight := range []int{3, 5} {
		for v := 1; v < 256 && idx < DataBits; v++ {
			if popcount8(uint8(v)) == weight {
				columns[idx] = uint8(v)
				idx++
			}
		}
	}
	if idx != DataBits {
		panic("ecc: failed to construct data columns")
	}
	for i := 0; i < CheckBits; i++ {
		columns[DataBits+i] = 1 << i
	}
	for i := range syndromeToBit {
		syndromeToBit[i] = -1
	}
	for i, c := range columns {
		if syndromeToBit[c] != -1 {
			panic("ecc: duplicate column")
		}
		syndromeToBit[c] = i
	}
}

func popcount8(v uint8) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Encode computes the codeword for 64 data bits.
func Encode(data uint64) Codeword {
	var check uint8
	for bit := 0; bit < DataBits; bit++ {
		if data>>bit&1 == 1 {
			check ^= columns[bit]
		}
	}
	return Codeword{Data: data, Check: check}
}

// Syndrome computes the 8-bit syndrome of a (possibly corrupted) codeword:
// zero means the word is a valid codeword.
func Syndrome(w Codeword) uint8 {
	s := w.Check
	for bit := 0; bit < DataBits; bit++ {
		if w.Data>>bit&1 == 1 {
			s ^= columns[bit]
		}
	}
	return s
}

// FlipBit returns the codeword with bit position pos (0..71) inverted.
// Positions 0..63 are data bits; 64..71 are check bits. It panics on an
// out-of-range position.
func FlipBit(w Codeword, pos int) Codeword {
	switch {
	case pos >= 0 && pos < DataBits:
		w.Data ^= 1 << pos
	case pos >= DataBits && pos < CodeBits:
		w.Check ^= 1 << (pos - DataBits)
	default:
		panic(fmt.Sprintf("ecc: FlipBit position %d out of range", pos))
	}
	return w
}

// Result classifies the outcome of decoding a word.
type Result int

// Decode outcomes.
const (
	// OK: the word is a valid codeword (no error detected).
	OK Result = iota
	// Corrected: a single-bit error was detected and corrected.
	Corrected
	// Uncorrectable: an error was detected that the code cannot correct
	// (even-weight syndrome, or odd-weight syndrome matching no column).
	Uncorrectable
	// Miscorrected is never returned by Decode (the decoder cannot know);
	// it is returned by DecodeVsTruth when the decoder "corrected" to the
	// wrong data. Real >=3-bit error patterns can alias this way.
	Miscorrected
)

// String names the result.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	case Miscorrected:
		return "miscorrected"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Decode examines a possibly corrupted codeword. It returns the decoder's
// best-effort data, the classification, the syndrome, and for Corrected
// results the corrected codeword bit position (otherwise -1).
func Decode(w Codeword) (data uint64, res Result, syndrome uint8, bitPos int) {
	s := Syndrome(w)
	if s == 0 {
		return w.Data, OK, 0, -1
	}
	if popcount8(s)%2 == 0 {
		// Even-weight nonzero syndrome: >= 2 bit errors, uncorrectable.
		return w.Data, Uncorrectable, s, -1
	}
	bit := syndromeToBit[s]
	if bit < 0 {
		// Odd-weight syndrome matching no column: >= 3 errors detected.
		return w.Data, Uncorrectable, s, -1
	}
	return FlipBit(w, bit).Data, Corrected, s, bit
}

// BitForSyndrome returns the codeword bit position whose single-bit flip
// produces the given syndrome, or -1 if no single-bit error does (zero,
// even-weight, or unused odd-weight syndromes). ETL validators use it to
// cross-check a CE record's syndrome against its reported bit position.
func BitForSyndrome(s uint8) int {
	return syndromeToBit[s]
}

// DecodeVsTruth decodes and, knowing the original data, upgrades the
// classification: a Corrected result whose output differs from the truth
// becomes Miscorrected, and an OK result with wrong data (an undetectable
// error pattern) also becomes Miscorrected. Used by the fault-injection
// harness to account for silent corruption, which the paper scopes out but
// the simulator must not miscount as correct operation.
func DecodeVsTruth(w Codeword, truth uint64) (Result, uint8, int) {
	data, res, s, bit := Decode(w)
	switch res {
	case OK, Corrected:
		if data != truth {
			return Miscorrected, s, bit
		}
	}
	return res, s, bit
}
