package atomicio

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func ctxb() context.Context { return context.Background() }

// listDir returns the base names in dir, for temp-leak assertions.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	content := "hello\nworld\n"

	info, err := WriteFile(ctxb(), OS, path, func(w io.Writer) error {
		_, werr := io.WriteString(w, content)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != content {
		t.Errorf("content = %q, want %q", data, content)
	}
	sum := sha256.Sum256([]byte(content))
	if want := hex.EncodeToString(sum[:]); info.SHA256 != want {
		t.Errorf("SHA256 = %s, want %s", info.SHA256, want)
	}
	if info.Size != int64(len(content)) {
		t.Errorf("Size = %d, want %d", info.Size, len(content))
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "out.txt" {
		t.Errorf("directory not clean after commit: %v", names)
	}
}

func TestWriteFileFinalInvisibleUntilCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	_, err := WriteFile(ctxb(), OS, path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial"); werr != nil {
			return werr
		}
		// Mid-write: the final path must not exist, and the bytes so far
		// must live in a recognizable temp file.
		if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
			t.Errorf("final path exists mid-write (err=%v)", serr)
		}
		temps := 0
		for _, name := range listDir(t, dir) {
			if IsTemp(name) {
				temps++
			}
		}
		if temps != 1 {
			t.Errorf("mid-write temp count = %d, want 1", temps)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileProducerErrorLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	boom := errors.New("render failed")
	_, err := WriteFile(ctxb(), OS, path, func(w io.Writer) error {
		io.WriteString(w, "half a file")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Errorf("leftovers after failed write: %v", names)
	}
}

func TestWriterAbort(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(OS, filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "doomed")
	w.Abort()
	if names := listDir(t, dir); len(names) != 0 {
		t.Errorf("leftovers after abort: %v", names)
	}
	if err := w.Close(); err == nil {
		t.Error("Close after Abort returned nil")
	}
}

func TestWriteFileCancelledContext(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(ctxb())
	cancel()
	_, err := WriteFile(ctx, OS, filepath.Join(dir, "out.txt"), func(w io.Writer) error {
		t.Error("write callback ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestIsTemp(t *testing.T) {
	for name, want := range map[string]bool{
		".tmp-12345":          true,
		"dir/.tmp-x":          true,
		"out.txt":             false,
		"data/.hidden":        false,
		"scans/.tmp-scan.txt": true,
	} {
		if got := IsTemp(name); got != want {
			t.Errorf("IsTemp(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".tmp-aaa", ".tmp-bbb", "keep.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SweepTemps(OS, dir); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(listDir(t, dir), ",")
	if got != "keep.txt,sub" {
		t.Errorf("after sweep: %s, want keep.txt,sub", got)
	}
	if err := SweepTemps(OS, filepath.Join(dir, "missing")); err != nil {
		t.Errorf("sweep of a missing dir: %v", err)
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrapped: %w", ErrTransient), true},
		{syscall.EAGAIN, true},
		{syscall.EINTR, true},
		{syscall.ENOSPC, false},
		{os.ErrPermission, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryPolicyEventualSuccess(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{Attempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	calls := 0
	err := p.Do(ctxb(), func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky: %w", ErrTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil, 3", err, calls)
	}
	// Backoff doubles from BaseDelay and clamps at MaxDelay.
	if len(sleeps) != 2 || sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Errorf("sleeps = %v", sleeps)
	}
}

func TestRetryPolicyNonTransientImmediate(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { t.Error("slept on a non-transient error") }}
	boom := errors.New("fatal")
	calls := 0
	err := p.Do(ctxb(), func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want fatal after 1 call", err, calls)
	}
}

func TestRetryPolicyExhaustion(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do(ctxb(), func() error { calls++; return ErrTransient })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !IsTransient(err) {
		t.Errorf("exhaustion error lost the transient mark: %v", err)
	}
}

func TestRetryPolicyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(ctxb())
	p := RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { cancel() }}
	calls := 0
	err := p.Do(ctx, func() error { calls++; return ErrTransient })
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want Canceled after 1 call", err, calls)
	}
}

func TestWriteFileRetryRewritesFreshTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	p := RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}}
	attempt := 0
	info, err := WriteFileRetry(ctxb(), OS, path, p, func(w io.Writer) error {
		attempt++
		if _, werr := io.WriteString(w, "attempt data"); werr != nil {
			return werr
		}
		if attempt == 1 {
			return fmt.Errorf("first pass dies: %w", ErrTransient)
		}
		return nil
	})
	if err != nil || attempt != 2 {
		t.Fatalf("err = %v, attempt = %d; want nil, 2", err, attempt)
	}
	if info.Size != int64(len("attempt data")) {
		t.Errorf("Size = %d", info.Size)
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "out.txt" {
		t.Errorf("directory after retried write: %v", names)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest(42, map[string]string{"nodes": "16", "dirty": "0.01"})
	m.SetFile("a.log", WriteInfo{SHA256: strings.Repeat("ab", 32), Size: 100}, 7)
	m.SetFile("scans/s.txt", WriteInfo{SHA256: strings.Repeat("cd", 32), Size: 5}, 0)

	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := again.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("marshal not deterministic across a round trip:\n%s\n%s", data, data2)
	}
	if !again.ConfigMatches(42, map[string]string{"nodes": "16", "dirty": "0.01"}) {
		t.Error("ConfigMatches rejected its own fingerprint")
	}
	if again.ConfigMatches(43, map[string]string{"nodes": "16", "dirty": "0.01"}) {
		t.Error("ConfigMatches accepted a different seed")
	}
	if again.ConfigMatches(42, map[string]string{"nodes": "32", "dirty": "0.01"}) {
		t.Error("ConfigMatches accepted a different config")
	}
	if names := again.FileNames(); strings.Join(names, ",") != "a.log,scans/s.txt" {
		t.Errorf("FileNames = %v", names)
	}
}

func TestParseManifestRejects(t *testing.T) {
	digest := strings.Repeat("ab", 32)
	cases := map[string]string{
		"not json":       `{`,
		"wrong version":  `{"version":2,"seed":1,"files":{}}`,
		"escaping name":  `{"version":1,"seed":1,"files":{"../evil":{"sha256":"` + digest + `","size":1}}}`,
		"absolute name":  `{"version":1,"seed":1,"files":{"/etc/passwd":{"sha256":"` + digest + `","size":1}}}`,
		"unclean name":   `{"version":1,"seed":1,"files":{"a//b":{"sha256":"` + digest + `","size":1}}}`,
		"short digest":   `{"version":1,"seed":1,"files":{"a":{"sha256":"abcd","size":1}}}`,
		"non-hex digest": `{"version":1,"seed":1,"files":{"a":{"sha256":"` + strings.Repeat("zz", 32) + `","size":1}}}`,
		"negative size":  `{"version":1,"seed":1,"files":{"a":{"sha256":"` + digest + `","size":-1}}}`,
	}
	for name, raw := range cases {
		if _, err := ParseManifest([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestManifestSaveLoadVerify(t *testing.T) {
	dir := t.TempDir()
	content := "record one\nrecord two\n"
	info, err := WriteFile(ctxb(), OS, filepath.Join(dir, "data.log"), func(w io.Writer) error {
		_, werr := io.WriteString(w, content)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(7, map[string]string{"nodes": "4"})
	m.SetFile("data.log", info, 2)
	if err := m.Save(ctxb(), OS, dir); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadManifest(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.VerifyFile(OS, dir, "data.log"); err != nil {
		t.Errorf("verify of an intact file: %v", err)
	}
	if err := loaded.VerifyFile(OS, dir, "missing.log"); err == nil {
		t.Error("verify of an unrecorded file succeeded")
	}

	// Corrupt the file; verification must fail even though the size is
	// unchanged.
	bad := []byte(strings.Replace(content, "one", "0ne", 1))
	if err := os.WriteFile(filepath.Join(dir, "data.log"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loaded.VerifyFile(OS, dir, "data.log"); err == nil {
		t.Error("verify of a corrupted file succeeded")
	}
}
