package atomicio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func genWrite(t *testing.T, g Generations, content string) {
	t.Helper()
	if _, err := g.Write(context.Background(), func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	}); err != nil {
		t.Fatalf("Write(%q): %v", content, err)
	}
}

func TestGenerationsRotateAndLoad(t *testing.T) {
	dir := t.TempDir()
	g := Generations{Path: filepath.Join(dir, "state"), Keep: 3}

	for i := 1; i <= 4; i++ {
		genWrite(t, g, fmt.Sprintf("v%d", i))
	}
	// Ladder now holds v4, v3, v2 (v1 rotated off the end).
	for n, want := range []string{"v4", "v3", "v2"} {
		b, err := os.ReadFile(g.Gen(n))
		if err != nil || string(b) != want {
			t.Fatalf("gen %d = %q, %v; want %q", n, b, err, want)
		}
	}
	if _, err := os.Stat(g.Gen(3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("gen 3 should not exist: %v", err)
	}

	data, gen, discarded, err := g.Load(nil)
	if err != nil || gen != 0 || string(data) != "v4" || len(discarded) != 0 {
		t.Fatalf("Load = %q gen=%d disc=%v err=%v", data, gen, discarded, err)
	}
}

func TestGenerationsLoadWalksPastInvalid(t *testing.T) {
	dir := t.TempDir()
	g := Generations{Path: filepath.Join(dir, "state"), Keep: 3}
	genWrite(t, g, "good-old")
	genWrite(t, g, "bad-new")

	bad := errors.New("checksum mismatch")
	validate := func(b []byte) error {
		if string(b) == "bad-new" {
			return bad
		}
		return nil
	}
	data, gen, discarded, err := g.Load(validate)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if string(data) != "good-old" || gen != 1 {
		t.Fatalf("Load = %q gen=%d, want good-old gen=1", data, gen)
	}
	if len(discarded) != 1 || discarded[0].Gen != 0 || !errors.Is(discarded[0].Err, bad) {
		t.Fatalf("discarded = %+v", discarded)
	}
}

func TestGenerationsLoadToleratesGaps(t *testing.T) {
	dir := t.TempDir()
	g := Generations{Path: filepath.Join(dir, "state"), Keep: 4}
	// Simulate a crash mid-rotation: only gen 2 exists.
	if err := os.WriteFile(g.Gen(2), []byte("survivor"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, gen, discarded, err := g.Load(nil)
	if err != nil || gen != 2 || string(data) != "survivor" || len(discarded) != 0 {
		t.Fatalf("Load = %q gen=%d disc=%v err=%v", data, gen, discarded, err)
	}
}

func TestGenerationsTotalLoss(t *testing.T) {
	dir := t.TempDir()
	g := Generations{Path: filepath.Join(dir, "state"), Keep: 3}
	genWrite(t, g, "a")
	genWrite(t, g, "b")
	reject := func([]byte) error { return errors.New("all damaged") }
	data, gen, discarded, err := g.Load(reject)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if data != nil || gen != -1 {
		t.Fatalf("Load = %q gen=%d, want nil gen=-1 (cold start)", data, gen)
	}
	if len(discarded) != 2 {
		t.Fatalf("discarded = %+v, want both generations", discarded)
	}
	// Nothing at all on disk: also a clean cold start, nothing discarded.
	empty := Generations{Path: filepath.Join(dir, "never-written")}
	data, gen, discarded, err = empty.Load(nil)
	if err != nil || data != nil || gen != -1 || len(discarded) != 0 {
		t.Fatalf("empty Load = %q gen=%d disc=%v err=%v", data, gen, discarded, err)
	}
}

func TestGenerationsKeepOne(t *testing.T) {
	dir := t.TempDir()
	g := Generations{Path: filepath.Join(dir, "state"), Keep: 1}
	genWrite(t, g, "only")
	genWrite(t, g, "newer")
	if _, err := os.Stat(g.Gen(1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Keep=1 must not create .1: %v", err)
	}
	data, gen, _, err := g.Load(nil)
	if err != nil || gen != 0 || string(data) != "newer" {
		t.Fatalf("Load = %q gen=%d err=%v", data, gen, err)
	}
}
