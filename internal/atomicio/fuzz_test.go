package atomicio

import (
	"strings"
	"testing"
)

// FuzzManifest holds ParseManifest to its contract on arbitrary bytes:
// never panic, and anything it accepts must survive a marshal/parse round
// trip unchanged (the determinism the resume path's byte-identical
// guarantee leans on).
func FuzzManifest(f *testing.F) {
	m := NewManifest(1, map[string]string{"nodes": "4", "dirty": "0.5"})
	m.SetFile("astra-syslog.log", WriteInfo{SHA256: strings.Repeat("ab", 32), Size: 10}, 3)
	good, err := m.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"seed":0,"files":{}}`))
	f.Add([]byte(`{"version":1,"files":{"../x":{"sha256":"ab","size":-3}}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted manifest fails to marshal: %v", err)
		}
		again, err := ParseManifest(out)
		if err != nil {
			t.Fatalf("own marshal rejected: %v\n%s", err, out)
		}
		out2, err := again.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("marshal unstable across round trip:\n%s\n%s", out, out2)
		}
	})
}
