package atomicio

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"path"
	"path/filepath"
	"sort"
)

// ManifestName is the manifest's file name inside a dataset directory.
const ManifestName = "MANIFEST.json"

// manifestVersion is the schema version this package reads and writes.
const manifestVersion = 1

// Manifest is the checksummed record of a dataset directory: which
// generator configuration produced it and, per completed file, the
// SHA-256, size and record count. It is written atomically after every
// completed artifact, so at any crash point it describes exactly the set
// of complete, verified files — the checkpoint granularity of resume
// (DESIGN.md §10).
type Manifest struct {
	// Version is the schema version (manifestVersion).
	Version int `json:"version"`
	// Seed is the generator seed.
	Seed uint64 `json:"seed"`
	// Config is the flat fingerprint of every knob that shapes output
	// bytes; resume refuses a manifest whose fingerprint differs.
	Config map[string]string `json:"config,omitempty"`
	// Files maps slash-separated relative paths to their entries.
	Files map[string]FileEntry `json:"files"`
}

// FileEntry describes one completed artifact.
type FileEntry struct {
	// SHA256 is the lowercase hex digest of the file contents.
	SHA256 string `json:"sha256"`
	// Size is the file length in bytes.
	Size int64 `json:"size"`
	// Records is the number of records the file carries (0 when the
	// notion doesn't apply).
	Records int64 `json:"records,omitempty"`
}

// NewManifest returns an empty manifest for the given fingerprint.
func NewManifest(seed uint64, config map[string]string) *Manifest {
	return &Manifest{Version: manifestVersion, Seed: seed, Config: config, Files: map[string]FileEntry{}}
}

// ParseManifest decodes and validates manifest bytes. It never panics on
// arbitrary input (FuzzManifest holds it to that) and rejects entries
// that could escape the dataset directory.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("atomicio: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("atomicio: manifest version %d (want %d)", m.Version, manifestVersion)
	}
	if m.Files == nil {
		m.Files = map[string]FileEntry{}
	}
	for name, e := range m.Files {
		if name == "" || name != path.Clean(name) || !fs.ValidPath(name) {
			return nil, fmt.Errorf("atomicio: manifest: invalid file name %q", name)
		}
		if len(e.SHA256) != sha256.Size*2 {
			return nil, fmt.Errorf("atomicio: manifest: %s: digest length %d", name, len(e.SHA256))
		}
		if _, err := hex.DecodeString(e.SHA256); err != nil {
			return nil, fmt.Errorf("atomicio: manifest: %s: digest: %w", name, err)
		}
		if e.Size < 0 || e.Records < 0 {
			return nil, fmt.Errorf("atomicio: manifest: %s: negative size or record count", name)
		}
	}
	return &m, nil
}

// LoadManifest reads and validates dir's manifest. A missing manifest
// returns fs.ErrNotExist (via the FS).
func LoadManifest(fsys FS, dir string) (*Manifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return ParseManifest(data)
}

// Marshal renders the manifest deterministically (sorted keys, stable
// indentation): equal manifests are byte-equal files.
func (m *Manifest) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Save atomically writes the manifest into dir.
func (m *Manifest) Save(ctx context.Context, fsys FS, dir string) error {
	data, err := m.Marshal()
	if err != nil {
		return fmt.Errorf("atomicio: manifest: %w", err)
	}
	_, err = WriteFile(ctx, fsys, filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	return err
}

// SetFile records a completed artifact (name is slash-separated, relative
// to the dataset directory).
func (m *Manifest) SetFile(name string, info WriteInfo, records int64) {
	if m.Files == nil {
		m.Files = map[string]FileEntry{}
	}
	m.Files[name] = FileEntry{SHA256: info.SHA256, Size: info.Size, Records: records}
}

// FileNames returns the recorded artifact names in sorted order.
func (m *Manifest) FileNames() []string {
	names := make([]string, 0, len(m.Files))
	for name := range m.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// VerifyFile re-hashes dir/name and checks it against the manifest entry.
// It returns nil only for a recorded, present, checksum-matching file —
// the gate resume uses to decide what to skip.
func (m *Manifest) VerifyFile(fsys FS, dir, name string) error {
	e, ok := m.Files[name]
	if !ok {
		return fmt.Errorf("atomicio: manifest: %s not recorded", name)
	}
	f, err := fsys.Open(filepath.Join(dir, filepath.FromSlash(name)))
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("atomicio: verify %s: %w", name, err)
	}
	if n != e.Size {
		return fmt.Errorf("atomicio: verify %s: size %d, manifest says %d", name, n, e.Size)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != e.SHA256 {
		return fmt.Errorf("atomicio: verify %s: digest mismatch", name)
	}
	return nil
}

// ConfigMatches reports whether the manifest was produced by the same
// seed and fingerprint.
func (m *Manifest) ConfigMatches(seed uint64, config map[string]string) bool {
	if m.Seed != seed || len(m.Config) != len(config) {
		return false
	}
	for k, v := range config {
		if m.Config[k] != v {
			return false
		}
	}
	return true
}
