// Generational file retention: keep the last K versions of a critical
// file (astrad's checkpoint state) as a recovery ladder. Every write
// shifts the existing generations down one rung (path → path.1 → path.2
// …) before committing the new file atomically at path; a reader whose
// newest generation is torn or bit-flipped walks down the ladder to the
// newest generation that still validates. A crash between rungs leaves a
// gap, never a torn file — every rung was itself written atomically.

package atomicio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
)

// DefaultKeep is the generation count when Generations.Keep is zero.
const DefaultKeep = 3

// Generations manages the retention ladder for one path.
type Generations struct {
	// FS is the filesystem (nil means OS).
	FS FS
	// Path is the primary (newest) file; older generations live at
	// Path.1, Path.2, … Path.(Keep-1).
	Path string
	// Keep is how many generations exist in total, the primary included
	// (0 means DefaultKeep; 1 disables the ladder).
	Keep int
}

func (g Generations) fsys() FS {
	if g.FS == nil {
		return OS
	}
	return g.FS
}

func (g Generations) keep() int {
	if g.Keep <= 0 {
		return DefaultKeep
	}
	return g.Keep
}

// Gen returns the path of generation n (0 = the primary).
func (g Generations) Gen(n int) string {
	if n == 0 {
		return g.Path
	}
	return fmt.Sprintf("%s.%d", g.Path, n)
}

// Write rotates the ladder down one rung and atomically commits the new
// content at the primary path. The shift runs oldest-first so a crash at
// any point leaves every surviving rung intact (possibly with a gap,
// which Load tolerates). A missing rung is skipped, not an error.
func (g Generations) Write(ctx context.Context, write func(io.Writer) error) (WriteInfo, error) {
	fsys := g.fsys()
	keep := g.keep()
	for n := keep - 1; n >= 1; n-- {
		err := fsys.Rename(g.Gen(n-1), g.Gen(n))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return WriteInfo{}, fmt.Errorf("atomicio: rotate generation %s: %w", g.Gen(n-1), err)
		}
	}
	return WriteFile(ctx, fsys, g.Path, write)
}

// Discarded records one generation the ladder walk rejected.
type Discarded struct {
	// Path is the rejected file, Gen its rung (0 = primary).
	Path string
	Gen  int
	// Err is why it was rejected (read error, checksum mismatch, parse
	// failure — whatever validate returned).
	Err error
}

// Load walks the ladder newest-first and returns the first generation
// that validate accepts, along with its rung and every newer generation
// that was rejected. Missing rungs are skipped silently (gaps are a
// normal crash artifact); a rung that exists but fails validation is
// recorded in discarded. When no generation validates — the ladder is
// empty or every rung is damaged — Load returns (nil, -1, discarded,
// nil): total state loss is the caller's cold-start signal, not an
// error.
func (g Generations) Load(validate func(data []byte) error) (data []byte, gen int, discarded []Discarded, err error) {
	fsys := g.fsys()
	keep := g.keep()
	for n := 0; n < keep; n++ {
		p := g.Gen(n)
		b, rerr := fsys.ReadFile(p)
		if errors.Is(rerr, fs.ErrNotExist) {
			continue
		}
		if rerr != nil {
			discarded = append(discarded, Discarded{Path: p, Gen: n, Err: rerr})
			continue
		}
		if validate != nil {
			if verr := validate(b); verr != nil {
				discarded = append(discarded, Discarded{Path: p, Gen: n, Err: verr})
				continue
			}
		}
		return b, n, discarded, nil
	}
	return nil, -1, discarded, nil
}
