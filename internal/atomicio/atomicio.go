// Package atomicio provides the crash-safe file layer of the pipeline:
// atomic whole-file writes (temp file + fsync + rename + directory sync),
// bounded retry with backoff for transient I/O errors, and the checksummed
// dataset manifest (MANIFEST.json) the checkpoint/resume machinery keys
// off (DESIGN.md §10).
//
// Every operation goes through the FS interface so the fault injector in
// internal/iofault can interpose ENOSPC, short writes, transient errors
// and kill-points underneath the exact code paths production runs.
//
// The invariant the package maintains: a file at its final path is always
// complete. Torn state is confined to temp files (".tmp-" prefixed, in the
// same directory), which writers remove on failure and sweeps may remove
// at any time.
package atomicio

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// File is the writable-file surface the atomic writer needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the crash-safe layer is written against.
// OS is the real implementation; iofault.New wraps any FS with seeded
// fault injection.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// CreateTemp creates an exclusive temp file in dir from the pattern
	// (os.CreateTemp semantics) and returns the handle plus its path.
	CreateTemp(dir, pattern string) (File, string, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Open(name string) (io.ReadCloser, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a preceding rename is durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, string, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return f, f.Name(), nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems refuse directory fsync; durability degrades but
	// atomicity (rename) is unaffected, so don't fail the write over it.
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		err = nil
	}
	return err
}

// tempPrefix marks the in-flight temp files the atomic writer uses; they
// live in the destination directory so rename never crosses filesystems.
const tempPrefix = ".tmp-"

// IsTemp reports whether a file name (base name or path) is an atomicio
// temp file — torn leftovers of a crashed writer, safe to delete.
func IsTemp(name string) bool {
	return strings.HasPrefix(filepath.Base(name), tempPrefix)
}

// ErrTransient marks an injected or classified transient I/O failure:
// retrying the operation may succeed. RetryPolicy.Do retries only errors
// for which IsTransient holds.
var ErrTransient = errors.New("transient I/O error")

// IsTransient reports whether err is worth retrying: explicitly marked
// transient (ErrTransient in the chain) or a syscall-level transient
// condition.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EINTR)
}

// WriteInfo describes a committed atomic write.
type WriteInfo struct {
	// SHA256 is the lowercase hex digest of the file contents.
	SHA256 string
	// Size is the file length in bytes.
	Size int64
}

// Writer streams one atomic file write: data goes to a temp file in the
// destination directory while a running SHA-256 is kept; Close fsyncs,
// renames into place and syncs the directory. Until Close returns nil the
// final path is untouched; Abort (or a failed Close) removes the temp.
type Writer struct {
	fsys  FS
	f     File
	tmp   string
	final string
	hash  hash.Hash
	size  int64
	err   error
	done  bool
}

// NewWriter opens an atomic writer for path.
func NewWriter(fsys FS, path string) (*Writer, error) {
	f, tmp, err := fsys.CreateTemp(filepath.Dir(path), tempPrefix+"*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	return &Writer{fsys: fsys, f: f, tmp: tmp, final: path, hash: sha256.New()}, nil
}

// Write appends to the temp file. A short or failed write poisons the
// writer: Close will discard the temp and report the first error.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.f.Write(p)
	if n > 0 {
		w.hash.Write(p[:n])
		w.size += int64(n)
	}
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = fmt.Errorf("atomicio: write %s: %w", w.final, err)
		return n, w.err
	}
	return n, nil
}

// Close commits the write: fsync, close, rename over the final path, sync
// the directory. On any failure (including an earlier Write error) the
// temp file is removed and the final path is left untouched.
func (w *Writer) Close() error {
	if w.done {
		return w.err
	}
	w.done = true
	if w.err != nil {
		w.discard()
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("atomicio: sync %s: %w", w.final, err)
		w.discard()
		return w.err
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("atomicio: close %s: %w", w.final, err)
		w.f = nil
		w.discard()
		return w.err
	}
	w.f = nil
	if err := w.fsys.Rename(w.tmp, w.final); err != nil {
		w.err = fmt.Errorf("atomicio: rename %s: %w", w.final, err)
		w.discard()
		return w.err
	}
	if err := w.fsys.SyncDir(filepath.Dir(w.final)); err != nil {
		// The rename happened; the file is complete even if its
		// durability is not yet guaranteed.
		w.err = fmt.Errorf("atomicio: sync dir of %s: %w", w.final, err)
		return w.err
	}
	return nil
}

// Abort discards the write, removing the temp file. Safe after Close (a
// committed write is not undone).
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	if w.err == nil {
		w.err = errors.New("atomicio: write aborted")
	}
	w.discard()
}

// discard best-effort closes and removes the temp file. On an injected
// crash the removes fail too; resume sweeps stale temps instead.
func (w *Writer) discard() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.fsys.Remove(w.tmp)
}

// Info returns the digest and size of the committed file; valid once
// Close has returned nil.
func (w *Writer) Info() WriteInfo {
	return WriteInfo{SHA256: hex.EncodeToString(w.hash.Sum(nil)), Size: w.size}
}

// WriteFile atomically writes path with the content produced by write.
// write must be re-runnable: it may be invoked again if the caller wraps
// WriteFile in a retry. ctx aborts between steps; mid-stream cancellation
// is the caller's job (wrap the io.Writer).
func WriteFile(ctx context.Context, fsys FS, path string, write func(io.Writer) error) (WriteInfo, error) {
	if err := ctx.Err(); err != nil {
		return WriteInfo{}, err
	}
	w, err := NewWriter(fsys, path)
	if err != nil {
		return WriteInfo{}, err
	}
	if err := write(w); err != nil {
		w.Abort()
		return WriteInfo{}, err
	}
	if err := w.Close(); err != nil {
		return WriteInfo{}, err
	}
	return w.Info(), nil
}

// RetryPolicy bounds retry-with-backoff over transient I/O errors. The
// zero value is usable and becomes DefaultRetry.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included);
	// values <= 0 become DefaultRetry.Attempts.
	Attempts int
	// BaseDelay is the pause after the first failure; it doubles per
	// retry up to MaxDelay. Zero values take DefaultRetry's.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep replaces time.Sleep (tests inject a no-op).
	Sleep func(time.Duration)
}

// DefaultRetry is the policy production writers use.
var DefaultRetry = RetryPolicy{Attempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetry.Attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetry.MaxDelay
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Do runs op, retrying transient failures (IsTransient) with exponential
// backoff until the attempt budget is spent. Non-transient errors and
// context cancellation return immediately.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	p = p.normalized()
	delay := p.BaseDelay
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt < p.Attempts-1 {
			p.Sleep(delay)
			if delay *= 2; delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
	}
	return fmt.Errorf("atomicio: gave up after %d attempts: %w", p.Attempts, err)
}

// WriteFileRetry is WriteFile wrapped in the retry policy: each attempt
// re-runs write into a fresh temp file, so a transient mid-write failure
// costs a rewrite, never a torn final file.
func WriteFileRetry(ctx context.Context, fsys FS, path string, policy RetryPolicy, write func(io.Writer) error) (WriteInfo, error) {
	var info WriteInfo
	err := policy.Do(ctx, func() error {
		var werr error
		info, werr = WriteFile(ctx, fsys, path, write)
		return werr
	})
	return info, err
}

// SweepTemps removes stale atomicio temp files from dir (non-recursive).
// Resume paths call it so a crashed run's torn temps don't accumulate.
// A missing directory is not an error.
func SweepTemps(fsys FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && IsTemp(e.Name()) {
			if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
