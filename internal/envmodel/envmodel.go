// Package envmodel implements Astra's environmental telemetry as a
// procedural model: per-node CPU and DIMM-group temperatures and DC power,
// sampled once per minute (§2.2), evaluable at any (node, sensor, minute)
// coordinate in O(1) without storing the series.
//
// The real system stored ~8 GiB of sensor data in a back-end database; at
// 2592 nodes x 7 sensors x 1 sample/min over four months that is ~2.7e9
// samples, which the reproduction cannot hold in memory. Instead, every
// sample is a pure function of (seed, node, sensor, minute):
//
//	value = base + airflow-depth offset + gain·utilization(node, t)
//	      + node offset + rack offset + per-minute hash noise
//
// where utilization is a sum of sinusoids at incommensurate periods with
// node-specific phases plus bounded hash noise. Because the deterministic
// part is integrable in closed form, window means over arbitrary intervals
// (needed per-error for the Fig 9 analysis) are also O(1).
//
// The Astra-truth model deliberately has no coupling from temperature or
// utilization to fault/error rates; that coupling exists only in the
// comparison models of internal/baseline.
package envmodel

import (
	"math"

	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Params calibrates the telemetry model. The zero value is not useful;
// start from DefaultParams.
type Params struct {
	// CPUBase and CPUGain set CPU temperature as base + gain·utilization.
	CPUBase, CPUGain float64
	// CPUDepthSpan scales the airflow-depth offset for CPU sensors.
	CPUDepthSpan float64
	// DIMMBase, DIMMGain, DIMMDepthSpan: same for DIMM-group sensors.
	DIMMBase, DIMMGain, DIMMDepthSpan float64
	// CPUNodeSigma is the s.d. of the static per-(node, sensor) offset for
	// CPU sensors; DIMMNodeSigma is the same for DIMM-group sensors.
	CPUNodeSigma, DIMMNodeSigma float64
	// RackTempSigma is the s.d. of the static per-rack offset.
	RackTempSigma float64
	// TempNoiseSigma is the s.d. of per-minute measurement noise (°C).
	TempNoiseSigma float64
	// PowerIdle and PowerSpan set node power as idle + span·utilization.
	PowerIdle, PowerSpan float64
	// PowerNoiseSigma is the s.d. of per-minute power noise (W).
	PowerNoiseSigma float64
	// UtilBiasSpan is the half-range of the static per-node utilization
	// bias (some nodes run consistently hotter jobs).
	UtilBiasSpan float64
	// InvalidProb is the probability that a sample is replaced by a
	// garbage reading (sensor not functioning / misread, §2.2); must be
	// well under 1%.
	InvalidProb float64
	// RegionGradientC adds this many °C per rack-region step from bottom
	// to top. Astra's front-to-back cooling keeps it at 0 (§3.4: region
	// means differ by well under 1 °C); the Cielo/Jaguar-style baseline
	// scenarios with bottom-to-top airflow set it positive.
	RegionGradientC float64
}

// DefaultParams returns the calibration used for the headline
// reproduction: CPU monthly means ≈ 55-75 °C with CPU1 ≈ 5 °C hotter than
// CPU2, DIMM means ≈ 35-52 °C, decile spreads ≈ 7 °C (CPU) and ≈ 4 °C
// (DIMM), rack-to-rack mean spread < 4.2 °C, region spread ≪ 1 °C, node
// power ≈ 240-400 W (Figs 2, 13, 14).
func DefaultParams() Params {
	return Params{
		CPUBase:         52,
		CPUGain:         16,
		CPUDepthSpan:    12,
		DIMMBase:        36,
		DIMMGain:        8,
		DIMMDepthSpan:   8,
		CPUNodeSigma:    2.2,
		DIMMNodeSigma:   1.1,
		RackTempSigma:   0.5,
		TempNoiseSigma:  0.8,
		PowerIdle:       235,
		PowerSpan:       180,
		PowerNoiseSigma: 8,
		UtilBiasSpan:    0.15,
		InvalidProb:     0.003,
	}
}

// Utilization sinusoid components: amplitudes sum to 0.22, the bounded
// hash noise adds at most ±0.104 (HashNorm is bounded in ±2√3 ≈ ±3.464)
// and the static bias at most ±UtilBiasSpan, so around utilBase = 0.52
// utilization stays strictly inside (0, 1) without clamping — keeping the
// closed-form window means exact.
var utilComponents = []struct {
	amp    float64
	period float64 // minutes
}{
	{0.10, simtime.MinutesPerDay},       // diurnal cycle
	{0.07, 31 * simtime.MinutesPerHour}, // multi-day job waves
	{0.05, 437},                         // job churn (~7.3 h)
}

const (
	utilBase     = 0.52
	utilNoiseAmp = 0.03
)

// Model evaluates the procedural telemetry. Construct with New; safe for
// concurrent use (it is immutable).
type Model struct {
	seed   uint64
	params Params
}

// New builds a model from a seed and parameters.
func New(seed uint64, params Params) *Model {
	return &Model{seed: simrand.Hash64(seed, simrand.HashString("envmodel")), params: params}
}

// Params returns the model's calibration.
func (m *Model) Params() Params { return m.params }

// utilBias is the static per-node utilization offset in
// [-UtilBiasSpan, +UtilBiasSpan].
func (m *Model) utilBias(node topology.NodeID) float64 {
	return (2*simrand.HashUnit(m.seed, 0x01, uint64(node)) - 1) * m.params.UtilBiasSpan
}

// phase returns the node's phase for utilization component c, in [0, 2π).
func (m *Model) phase(node topology.NodeID, c int) float64 {
	return 2 * math.Pi * simrand.HashUnit(m.seed, 0x02, uint64(node), uint64(c))
}

// Utilization returns the node's instantaneous utilization in (0, 1) at
// the given minute.
func (m *Model) Utilization(node topology.NodeID, t simtime.Minute) float64 {
	u := utilBase + m.utilBias(node)
	for c, comp := range utilComponents {
		w := 2 * math.Pi / comp.period
		u += comp.amp * math.Sin(w*float64(t)+m.phase(node, c))
	}
	u += utilNoiseAmp * simrand.HashNorm(m.seed, 0x03, uint64(node), uint64(t))
	return u
}

// utilizationWindowMean is the closed-form mean of Utilization over
// [start, start+n): sinusoids integrate exactly; the per-minute noise mean
// over n samples is represented by an equivalent deterministic pseudo-draw
// with the correct variance (σ/√n), keyed by the window, so repeated
// queries agree.
func (m *Model) utilizationWindowMean(node topology.NodeID, start simtime.Minute, n int64) float64 {
	if n <= 0 {
		panic("envmodel: window length must be positive")
	}
	u := utilBase + m.utilBias(node)
	a := float64(start)
	b := float64(start + simtime.Minute(n))
	for c, comp := range utilComponents {
		w := 2 * math.Pi / comp.period
		phi := m.phase(node, c)
		u += comp.amp * (math.Cos(w*a+phi) - math.Cos(w*b+phi)) / (w * (b - a))
	}
	u += utilNoiseAmp / math.Sqrt(float64(n)) *
		simrand.HashNorm(m.seed, 0x04, uint64(node), uint64(start), uint64(n))
	return u
}

// tempStatic returns the utilization-independent part of a temperature
// sensor's reading: base + airflow-depth offset + node offset + rack
// offset.
func (m *Model) tempStatic(node topology.NodeID, s topology.Sensor) (static, gain float64) {
	p := m.params
	var base, depthSpan, nodeSigma float64
	switch {
	case s == topology.SensorCPU1 || s == topology.SensorCPU2:
		base, gain, depthSpan, nodeSigma = p.CPUBase, p.CPUGain, p.CPUDepthSpan, p.CPUNodeSigma
	case s.IsDIMM():
		base, gain, depthSpan, nodeSigma = p.DIMMBase, p.DIMMGain, p.DIMMDepthSpan, p.DIMMNodeSigma
	default:
		panic("envmodel: tempStatic on non-temperature sensor")
	}
	static = base + depthSpan*topology.AirflowDepth(s)
	static += nodeSigma * simrand.HashNorm(m.seed, 0x05, uint64(node), uint64(s))
	static += p.RackTempSigma * simrand.HashNorm(m.seed, 0x06, uint64(node.Rack()))
	static += p.RegionGradientC * float64(node.Region())
	return static, gain
}

// TrueValue returns the physically-correct sensor value at a minute
// (temperature in °C or power in W), before any sensor malfunction.
func (m *Model) TrueValue(node topology.NodeID, s topology.Sensor, t simtime.Minute) float64 {
	u := m.Utilization(node, t)
	if s == topology.SensorDCPower {
		return m.params.PowerIdle + m.params.PowerSpan*u +
			m.params.PowerNoiseSigma*simrand.HashNorm(m.seed, 0x07, uint64(node), uint64(t))
	}
	static, gain := m.tempStatic(node, s)
	return static + gain*u +
		m.params.TempNoiseSigma*simrand.HashNorm(m.seed, 0x08, uint64(node), uint64(s), uint64(t))
}

// Sample returns the sensor reading as the BMC would record it: usually
// TrueValue, but with probability InvalidProb a garbage value (a stuck
// reading near 0, a saturated value, or a wildly out-of-range spike — the
// "clearly identified as invalid" values of §2.2). valid reports ground
// truth; the ETL layer must re-derive validity from the value alone.
func (m *Model) Sample(node topology.NodeID, s topology.Sensor, t simtime.Minute) (value float64, valid bool) {
	v := m.TrueValue(node, s, t)
	u := simrand.HashUnit(m.seed, 0x09, uint64(node), uint64(s), uint64(t))
	if u >= m.params.InvalidProb {
		return v, true
	}
	// Garbage mode chosen by a second hash.
	switch simrand.Hash64(m.seed, 0x0a, uint64(node), uint64(s), uint64(t)) % 3 {
	case 0:
		return 0, false // sensor not read
	case 1:
		if s == topology.SensorDCPower {
			return 65535, false // saturated ADC
		}
		return 200 + 55*simrand.HashUnit(m.seed, 0x0b, uint64(node), uint64(t)), false
	default:
		return -1, false // wire fault
	}
}

// PlausibleRange returns the validity window the ETL uses to discard
// garbage readings for a sensor kind.
func PlausibleRange(s topology.Sensor) (lo, hi float64) {
	if s == topology.SensorDCPower {
		return 50, 1000
	}
	return 5, 120
}

// WindowMean returns the mean TrueValue over [start, start+n) minutes in
// O(1). The sinusoidal part is integrated in closed form; static offsets
// pass through; measurement noise contributes a deterministic pseudo-draw
// with the correct σ/√n magnitude. Window means therefore agree with
// brute-force averaging of TrueValue up to that noise term (see tests).
func (m *Model) WindowMean(node topology.NodeID, s topology.Sensor, start simtime.Minute, n int64) float64 {
	uMean := m.utilizationWindowMean(node, start, n)
	if s == topology.SensorDCPower {
		return m.params.PowerIdle + m.params.PowerSpan*uMean +
			m.params.PowerNoiseSigma/math.Sqrt(float64(n))*
				simrand.HashNorm(m.seed, 0x0c, uint64(node), uint64(start), uint64(n))
	}
	static, gain := m.tempStatic(node, s)
	return static + gain*uMean +
		m.params.TempNoiseSigma/math.Sqrt(float64(n))*
			simrand.HashNorm(m.seed, 0x0d, uint64(node), uint64(s), uint64(start), uint64(n))
}

// MeanBefore returns the mean TrueValue over the n minutes immediately
// preceding t — the quantity the Fig 9 analysis computes per error.
func (m *Model) MeanBefore(node topology.NodeID, s topology.Sensor, t simtime.Minute, n int64) float64 {
	return m.WindowMean(node, s, t-simtime.Minute(n), n)
}

// MonthlyMean returns the mean TrueValue over the calendar month
// identified by monthKey (see simtime.MonthKey), used by the decile and
// utilization analyses (Figs 13, 14).
func (m *Model) MonthlyMean(node topology.NodeID, s topology.Sensor, monthKey int) float64 {
	start := simtime.MonthKeyTime(monthKey)
	end := simtime.MonthKeyTime(monthKey + 1)
	sm := simtime.MinuteOf(start)
	return m.WindowMean(node, s, sm, int64(simtime.MinuteOf(end)-sm))
}
