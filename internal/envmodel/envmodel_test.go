package envmodel

import (
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

func testModel() *Model { return New(42, DefaultParams()) }

func TestUtilizationBounded(t *testing.T) {
	m := testModel()
	start := simtime.MinuteOf(simtime.EnvStart)
	for node := topology.NodeID(0); node < 20; node++ {
		for i := int64(0); i < 5000; i += 7 {
			u := m.Utilization(node, start+simtime.Minute(i))
			if u <= 0 || u >= 1 {
				t.Fatalf("utilization %v out of (0,1) at node %d minute %d", u, node, i)
			}
		}
	}
}

func TestUtilizationDeterministic(t *testing.T) {
	a := New(7, DefaultParams())
	b := New(7, DefaultParams())
	if a.Utilization(5, 1000) != b.Utilization(5, 1000) {
		t.Fatal("same-seed models disagree")
	}
	c := New(8, DefaultParams())
	if a.Utilization(5, 1000) == c.Utilization(5, 1000) {
		t.Fatal("different seeds give identical values")
	}
}

func TestWindowMeanMatchesBruteForce(t *testing.T) {
	m := testModel()
	start := simtime.MinuteOf(simtime.EnvStart)
	for _, n := range []int64{60, 1440} {
		for _, s := range []topology.Sensor{topology.SensorCPU1, topology.SensorDIMMJLNP, topology.SensorDCPower} {
			sum := 0.0
			for i := int64(0); i < n; i++ {
				sum += m.TrueValue(3, s, start+simtime.Minute(i))
			}
			brute := sum / float64(n)
			fast := m.WindowMean(3, s, start, n)
			// Agreement limited by (a) the continuous-integral
			// approximation of the discrete sinusoid sum and (b) the
			// pseudo-draw replacing the actual noise mean; both are
			// O(sigma/sqrt(n)) + O(1/n) effects.
			p := m.Params()
			tol := 4*p.TempNoiseSigma/math.Sqrt(float64(n)) + 0.3
			if s == topology.SensorDCPower {
				tol = 4*p.PowerNoiseSigma/math.Sqrt(float64(n)) + 3
			}
			if d := math.Abs(brute - fast); d > tol {
				t.Errorf("sensor %v n=%d: brute %v vs fast %v (tol %v)", s, n, brute, fast, tol)
			}
		}
	}
}

func TestCPU1HotterThanCPU2(t *testing.T) {
	m := testModel()
	month := simtime.MonthKey(simtime.EnvStart)
	var d1, d2 float64
	for node := topology.NodeID(0); node < 200; node++ {
		d1 += m.MonthlyMean(node, topology.SensorCPU1, month)
		d2 += m.MonthlyMean(node, topology.SensorCPU2, month)
	}
	diff := (d1 - d2) / 200
	if diff < 2 || diff > 10 {
		t.Errorf("CPU1-CPU2 mean temp difference = %v, want ~5", diff)
	}
}

func TestDIMMGroupOrdering(t *testing.T) {
	// Socket-1 DIMM groups (upstream) must run cooler than socket-0 groups
	// on average.
	m := testModel()
	month := simtime.MonthKey(simtime.EnvStart)
	mean := func(s topology.Sensor) float64 {
		sum := 0.0
		for node := topology.NodeID(0); node < 200; node++ {
			sum += m.MonthlyMean(node, s, month)
		}
		return sum / 200
	}
	up := (mean(topology.SensorDIMMIKMO) + mean(topology.SensorDIMMJLNP)) / 2
	down := (mean(topology.SensorDIMMACEG) + mean(topology.SensorDIMMBDFH)) / 2
	if down-up < 1 || down-up > 8 {
		t.Errorf("downstream-upstream DIMM temp difference = %v", down-up)
	}
}

func TestTemperatureCalibration(t *testing.T) {
	// Monthly CPU means should land in the paper's 55-75 °C band and DIMM
	// means in the 35-52 °C band for the bulk of nodes.
	m := testModel()
	month := simtime.MonthKey(simtime.EnvStart)
	var cpu, dimm []float64
	for node := topology.NodeID(0); node < topology.Nodes; node += 5 {
		cpu = append(cpu, m.MonthlyMean(node, topology.SensorCPU1, month),
			m.MonthlyMean(node, topology.SensorCPU2, month))
		dimm = append(dimm, m.MonthlyMean(node, topology.SensorDIMMACEG, month),
			m.MonthlyMean(node, topology.SensorDIMMIKMO, month))
	}
	sc := stats.Summarize(cpu)
	sd := stats.Summarize(dimm)
	if sc.Mean < 55 || sc.Mean > 75 {
		t.Errorf("CPU mean = %v, want in [55, 75]", sc.Mean)
	}
	if sd.Mean < 35 || sd.Mean > 52 {
		t.Errorf("DIMM mean = %v, want in [35, 52]", sd.Mean)
	}
	// Decile spreads: ~7 °C for CPUs, ~4 °C for DIMMs (§3.3). Allow slack.
	dummy := make([]float64, len(cpu))
	binsC, err := stats.Deciles(cpu, dummy)
	if err != nil {
		t.Fatal(err)
	}
	if spread := stats.DecileSpread(binsC); spread < 3 || spread > 12 {
		t.Errorf("CPU decile spread = %v, want ~7", spread)
	}
	dummy = make([]float64, len(dimm))
	binsD, err := stats.Deciles(dimm, dummy)
	if err != nil {
		t.Fatal(err)
	}
	if spread := stats.DecileSpread(binsD); spread < 1.5 || spread > 8 {
		t.Errorf("DIMM decile spread = %v, want ~4", spread)
	}
}

func TestRegionTemperatureUniform(t *testing.T) {
	// Mean temperature per rack region must agree within < 1 °C (§3.4).
	m := testModel()
	month := simtime.MonthKey(simtime.EnvStart)
	sums := make([]float64, topology.NumRegions)
	counts := make([]int, topology.NumRegions)
	for node := topology.NodeID(0); node < topology.Nodes; node += 3 {
		r := node.Region()
		sums[r] += m.MonthlyMean(node, topology.SensorCPU1, month)
		counts[r]++
	}
	means := make([]float64, topology.NumRegions)
	for i := range sums {
		means[i] = sums[i] / float64(counts[i])
	}
	lo, hi := means[0], means[0]
	for _, v := range means {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo >= 1 {
		t.Errorf("region mean spread = %v °C, want < 1", hi-lo)
	}
}

func TestRackTemperatureSpread(t *testing.T) {
	// Rack-to-rack mean spread must stay under ~4.2 °C (§3.4) but be
	// nonzero (racks do differ).
	m := testModel()
	month := simtime.MonthKey(simtime.EnvStart)
	rackMeans := make([]float64, topology.Racks)
	for rack := 0; rack < topology.Racks; rack++ {
		sum := 0.0
		n := 0
		for c := 0; c < topology.ChassisPerRack; c += 2 {
			node := topology.NewNodeID(rack, c, 0)
			sum += m.MonthlyMean(node, topology.SensorDIMMACEG, month)
			n++
		}
		rackMeans[rack] = sum / float64(n)
	}
	s := stats.Summarize(rackMeans)
	if spread := s.Max - s.Min; spread >= 4.2 || spread < 0.5 {
		t.Errorf("rack mean spread = %v, want in [0.5, 4.2)", spread)
	}
}

func TestPowerCalibration(t *testing.T) {
	m := testModel()
	start := simtime.MinuteOf(simtime.EnvStart)
	var vals []float64
	for node := topology.NodeID(0); node < 100; node++ {
		for i := int64(0); i < 2000; i += 37 {
			vals = append(vals, m.TrueValue(node, topology.SensorDCPower, start+simtime.Minute(i)))
		}
	}
	s := stats.Summarize(vals)
	if s.Mean < 260 || s.Mean > 380 {
		t.Errorf("power mean = %v, want ~325", s.Mean)
	}
	if s.Min < 100 || s.Max > 550 {
		t.Errorf("power range [%v, %v] implausible", s.Min, s.Max)
	}
}

func TestPowerTracksUtilization(t *testing.T) {
	// Power and CPU temperature share the utilization driver, so monthly
	// means must correlate strongly across nodes (Fig 14's hot-samples-
	// shifted-right effect).
	m := testModel()
	month := simtime.MonthKey(simtime.EnvStart)
	var pw, tmp []float64
	for node := topology.NodeID(0); node < 400; node++ {
		pw = append(pw, m.MonthlyMean(node, topology.SensorDCPower, month))
		tmp = append(tmp, m.MonthlyMean(node, topology.SensorCPU1, month))
	}
	if r := stats.Pearson(pw, tmp); r < 0.4 {
		t.Errorf("power-temperature correlation = %v, want strong positive", r)
	}
}

func TestInvalidSampleInjection(t *testing.T) {
	m := testModel()
	start := simtime.MinuteOf(simtime.EnvStart)
	total, invalid := 0, 0
	filteredMatchesFlag := true
	for node := topology.NodeID(0); node < 30; node++ {
		for i := int64(0); i < 3000; i++ {
			v, valid := m.Sample(node, topology.SensorCPU1, start+simtime.Minute(i))
			total++
			if !valid {
				invalid++
			}
			lo, hi := PlausibleRange(topology.SensorCPU1)
			inRange := v >= lo && v <= hi
			if inRange != valid {
				filteredMatchesFlag = false
			}
		}
	}
	frac := float64(invalid) / float64(total)
	if frac <= 0 || frac >= 0.01 {
		t.Errorf("invalid fraction = %v, want (0, 1%%)", frac)
	}
	if !filteredMatchesFlag {
		t.Error("plausible-range filter disagrees with ground-truth validity")
	}
}

func TestMeanBeforeWindows(t *testing.T) {
	m := testModel()
	at := simtime.MinuteOf(simtime.EnvStart) + simtime.MinutesPerMonth + 500
	for _, n := range []int64{simtime.MinutesPerHour, simtime.MinutesPerDay, simtime.MinutesPerWeek, simtime.MinutesPerMonth} {
		v := m.MeanBefore(9, topology.SensorDIMMJLNP, at, n)
		if v < 25 || v > 60 {
			t.Errorf("MeanBefore(n=%d) = %v, implausible DIMM temp", n, v)
		}
	}
}

func TestWindowMeanPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testModel().WindowMean(0, topology.SensorCPU1, 0, 0)
}

func BenchmarkTrueValue(b *testing.B) {
	m := testModel()
	start := simtime.MinuteOf(simtime.EnvStart)
	for i := 0; i < b.N; i++ {
		m.TrueValue(topology.NodeID(i%topology.Nodes), topology.SensorDIMMACEG, start+simtime.Minute(i%100000))
	}
}

func BenchmarkWindowMeanMonth(b *testing.B) {
	m := testModel()
	start := simtime.MinuteOf(simtime.EnvStart)
	for i := 0; i < b.N; i++ {
		m.WindowMean(topology.NodeID(i%topology.Nodes), topology.SensorDIMMACEG, start, simtime.MinutesPerMonth)
	}
}
