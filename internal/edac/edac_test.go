package edac

import (
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing[int](3)
	for i := 0; i < 5; i++ {
		kept := r.Offer(i)
		if (i < 3) != kept {
			t.Errorf("Offer(%d) kept = %v", i, kept)
		}
	}
	if r.Len() != 3 || r.Offered() != 5 || r.Dropped() != 2 {
		t.Errorf("ring state: len=%d offered=%d dropped=%d", r.Len(), r.Offered(), r.Dropped())
	}
	got := r.Drain()
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Drain = %v", got)
	}
	if r.Len() != 0 {
		t.Error("ring not empty after drain")
	}
	// Space reopens after drain.
	if !r.Offer(9) {
		t.Error("offer after drain should succeed")
	}
}

func TestRingConservation(t *testing.T) {
	// Property: drained + dropped == offered, and no phantom records.
	f := func(ops []uint8) bool {
		r := NewRing[uint8](4)
		var drained uint64
		for _, op := range ops {
			if op%5 == 0 {
				drained += uint64(len(r.Drain()))
			} else {
				r.Offer(op)
			}
		}
		drained += uint64(len(r.Drain()))
		return drained+r.Dropped() == r.Offered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing[int](0)
}

func TestPollerDrainsPerInterval(t *testing.T) {
	var batches [][]int
	p := NewPoller[int](10, 60, func(recs []int) {
		batch := append([]int(nil), recs...)
		batches = append(batches, batch)
	})
	// Two records in minute 0, one in minute 1.
	p.Offer(5, 100)
	p.Offer(30, 101)
	p.Offer(65, 102)
	stats := p.Close()
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if len(batches[0]) != 2 || len(batches[1]) != 1 {
		t.Errorf("batch sizes: %v", batches)
	}
	if stats.Offered != 3 || stats.Logged != 3 || stats.Dropped != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPollerDropsBursts(t *testing.T) {
	logged := 0
	p := NewPoller[int](4, 60, func(recs []int) { logged += len(recs) })
	// A burst of 10 in one interval: only 4 survive.
	for i := 0; i < 10; i++ {
		p.Offer(int64(i), i)
	}
	// Next interval: space reopens.
	p.Offer(61, 99)
	stats := p.Close()
	if logged != 5 {
		t.Errorf("logged = %d, want 5", logged)
	}
	if stats.Dropped != 6 || stats.Offered != 11 {
		t.Errorf("stats = %+v", stats)
	}
	if lf := stats.LossFraction(); lf < 0.5 || lf > 0.6 {
		t.Errorf("LossFraction = %v", lf)
	}
}

func TestPollerReordersWithinSlack(t *testing.T) {
	// A record one interval late (default slack) folds into the current
	// buffer instead of panicking or being lost.
	var logged []int
	p := NewPoller[int](4, 60, func(recs []int) { logged = append(logged, recs...) })
	p.Offer(120, 1) // minute 2
	p.Offer(70, 2)  // minute 1: one interval late — accepted
	stats := p.Close()
	if len(logged) != 2 {
		t.Errorf("logged = %v, want both records", logged)
	}
	if stats.Reordered != 1 || stats.DroppedOutOfOrder != 0 {
		t.Errorf("stats = %+v, want Reordered 1", stats)
	}
	if stats.Logged+stats.Dropped != stats.Offered {
		t.Errorf("accounting imbalance: %+v", stats)
	}
}

func TestPollerDropsBeyondSlack(t *testing.T) {
	var logged []int
	p := NewPoller[int](4, 60, func(recs []int) { logged = append(logged, recs...) })
	p.Offer(300, 1) // minute 5
	p.Offer(30, 2)  // minute 0: four intervals late — dropped
	stats := p.Close()
	if len(logged) != 1 || logged[0] != 1 {
		t.Errorf("logged = %v, want just the in-order record", logged)
	}
	if stats.DroppedOutOfOrder != 1 || stats.Reordered != 0 {
		t.Errorf("stats = %+v, want DroppedOutOfOrder 1", stats)
	}
	// The late record never reached the ring, so the loss balance holds.
	if stats.Offered != 1 || stats.Logged+stats.Dropped != stats.Offered {
		t.Errorf("accounting imbalance: %+v", stats)
	}
}

func TestPollerZeroSlackStrictOrdering(t *testing.T) {
	p := NewPoller[int](4, 60, func([]int) {})
	p.SetReorderSlack(0)
	p.Offer(120, 1)
	p.Offer(70, 2) // one interval late: dropped under zero slack
	if stats := p.Close(); stats.DroppedOutOfOrder != 1 {
		t.Errorf("stats = %+v, want DroppedOutOfOrder 1", stats)
	}
}

func TestPollerConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPoller[int](4, 0, func([]int) {}) },
		func() { NewPoller[int](4, 60, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStatsLossFractionEmpty(t *testing.T) {
	if (Stats{}).LossFraction() != 0 {
		t.Error("empty stats should report zero loss")
	}
}
