// Package edac models the kernel's correctable-error logging path (§2.3):
// the hardware logs CEs into a fixed-capacity internal buffer; once that
// space is full further CEs are dropped; the OS polls the buffer every few
// seconds and writes drained records to the syslog. Uncorrectable errors
// bypass this path and are (almost) never lost.
//
// The ring is the mechanism behind the paper's warning that raw error
// counts under-report bursty faults — one reason the fault/error
// distinction matters.
package edac

import "fmt"

// DefaultCapacity is the per-node CE log capacity used by the simulation:
// the ThunderX2 RAS logs hold on the order of tens of records.
const DefaultCapacity = 32

// Ring is a fixed-capacity CE log for one node. The zero value is unusable;
// construct with NewRing. Ring is not safe for concurrent use.
type Ring[T any] struct {
	buf     []T
	n       int
	offered uint64
	dropped uint64
}

// NewRing returns a ring holding at most capacity records. It panics if
// capacity <= 0.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("edac: invalid ring capacity %d", capacity))
	}
	return &Ring[T]{buf: make([]T, 0, capacity)}
}

// Offer records one CE if space remains; otherwise the record is dropped
// and counted. It reports whether the record was kept.
func (r *Ring[T]) Offer(rec T) bool {
	r.offered++
	if r.n >= cap(r.buf) {
		r.dropped++
		return false
	}
	r.buf = append(r.buf, rec)
	r.n++
	return true
}

// Drain removes and returns all buffered records (the OS poll). The
// returned slice is owned by the caller.
func (r *Ring[T]) Drain() []T {
	out := make([]T, r.n)
	copy(out, r.buf)
	r.buf = r.buf[:0]
	r.n = 0
	return out
}

// view returns the buffered records without copying; reset empties the
// buffer afterwards. Together they are the allocation-free drain the
// Poller uses: the view is only valid until the next Offer.
func (r *Ring[T]) view() []T { return r.buf[:r.n] }

func (r *Ring[T]) reset() {
	r.buf = r.buf[:0]
	r.n = 0
}

// Len returns the number of buffered records.
func (r *Ring[T]) Len() int { return r.n }

// Offered returns the total number of records ever offered.
func (r *Ring[T]) Offered() uint64 { return r.offered }

// Dropped returns the total number of records lost to a full buffer.
func (r *Ring[T]) Dropped() uint64 { return r.dropped }

// Stats aggregates logging-loss accounting across nodes.
type Stats struct {
	Offered uint64
	Logged  uint64
	Dropped uint64
	// Reordered counts records that arrived with a time key earlier than
	// the current polling interval but within the reorder slack; they are
	// folded into the current interval's buffer rather than lost.
	Reordered uint64
	// DroppedOutOfOrder counts records too old for the reorder slack,
	// discarded before reaching the buffer (they appear in no other
	// counter, so Logged + Dropped == Offered still holds).
	DroppedOutOfOrder uint64
}

// Add accumulates another poller's counters (used when per-node pollers
// run on a worker pool and their stats are merged afterwards).
func (s *Stats) Add(o Stats) {
	s.Offered += o.Offered
	s.Logged += o.Logged
	s.Dropped += o.Dropped
	s.Reordered += o.Reordered
	s.DroppedOutOfOrder += o.DroppedOutOfOrder
}

// LossFraction returns the fraction of offered records that were dropped,
// or 0 when nothing was offered.
func (s Stats) LossFraction() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(s.Offered)
}

// Poller simulates the per-node CE path over a time-ordered event stream:
// events offered within one polling interval share buffer space; each poll
// drains the buffer. Records are any type; the caller supplies the
// per-record interval key (for example the minute index).
type Poller[T any] struct {
	ring     *Ring[T]
	interval int64
	slack    int64
	cur      int64
	started  bool
	out      func([]T)
	stats    Stats
}

// DefaultReorderSlack is how many polling intervals late a record may
// arrive and still be accepted (folded into the current interval's
// buffer). Telemetry relays jitter by seconds, not minutes, so one
// interval of slack absorbs realistic skew.
const DefaultReorderSlack = 1

// NewPoller builds a poller draining every interval key units into out,
// tolerating records up to DefaultReorderSlack intervals late. It panics
// if interval <= 0 or out is nil.
//
// The slice passed to out borrows the poller's internal buffer: it is
// valid only for the duration of the callback, which must copy anything it
// keeps. This makes a poll flush allocation-free.
func NewPoller[T any](capacity int, interval int64, out func([]T)) *Poller[T] {
	if interval <= 0 {
		panic("edac: poll interval must be positive")
	}
	if out == nil {
		panic("edac: poller requires an output function")
	}
	return &Poller[T]{ring: NewRing[T](capacity), interval: interval, slack: DefaultReorderSlack, out: out}
}

// SetReorderSlack overrides how many polling intervals late a record may
// arrive before it is discarded. Zero restores strict ordering (any late
// record is dropped and counted).
func (p *Poller[T]) SetReorderSlack(intervals int64) {
	if intervals < 0 {
		intervals = 0
	}
	p.slack = intervals
}

// Offer feeds one record with its time key. Keys are expected to be
// non-decreasing (time-ordered stream); a record up to the reorder slack
// late is folded into the current interval's buffer and counted as
// Reordered, while anything older is discarded and counted as
// DroppedOutOfOrder — the intervals it belongs to have already been
// drained, so there is no correct buffer to place it in.
func (p *Poller[T]) Offer(key int64, rec T) {
	slot := key / p.interval
	if !p.started {
		p.cur = slot
		p.started = true
	}
	if slot < p.cur {
		if p.cur-slot > p.slack {
			p.stats.DroppedOutOfOrder++
			return
		}
		p.stats.Reordered++
		p.ring.Offer(rec)
		return
	}
	if slot > p.cur {
		p.flush()
		p.cur = slot
	}
	p.ring.Offer(rec)
}

// Close drains any remaining buffered records and returns the loss stats.
func (p *Poller[T]) Close() Stats {
	p.flush()
	p.stats.Offered = p.ring.Offered()
	p.stats.Dropped = p.ring.Dropped()
	p.stats.Logged = p.stats.Offered - p.stats.Dropped
	return p.stats
}

func (p *Poller[T]) flush() {
	if recs := p.ring.view(); len(recs) > 0 {
		p.out(recs)
	}
	p.ring.reset()
}
