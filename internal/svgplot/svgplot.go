// Package svgplot renders the report's figures as standalone SVG
// documents using only the standard library. It implements the minimal
// chart vocabulary the paper's evaluation needs — bar charts, grouped
// bars, line/step series, scatter plots with a fitted line, and log-scale
// variants — with nice-number axes and dark-on-light styling that matches
// the text report's semantics (errors vs faults pairs, decile curves,
// monthly series).
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Geometry and style defaults.
const (
	defaultWidth  = 720
	defaultHeight = 360
	marginLeft    = 64
	marginRight   = 16
	marginTop     = 36
	marginBottom  = 48
	fontFamily    = "system-ui, sans-serif"
)

// Series palette (colorblind-safe pairs for errors/faults contrasts).
var palette = []string{"#3b6fb6", "#d1495b", "#4f9d69", "#e2a72e", "#7b5ea7", "#5f6b73"}

// esc escapes text for SVG/XML.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// f formats a coordinate.
func f(v float64) string { return fmt.Sprintf("%.2f", v) }

// niceTicks returns ~n rounded tick values covering [0, max].
func niceTicks(max float64, n int) []float64 {
	if max <= 0 {
		return []float64{0, 1}
	}
	raw := max / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag >= 5:
		step = 10 * mag
	case raw/mag >= 2:
		step = 5 * mag
	default:
		step = 2 * mag
	}
	var ticks []float64
	for v := 0.0; v <= max*1.0001; v += step {
		ticks = append(ticks, v)
	}
	if len(ticks) == 0 || ticks[len(ticks)-1] < max {
		ticks = append(ticks, ticks[len(ticks)-1]+step)
	}
	return ticks
}

// formatTick renders an axis value compactly (1.2k, 3.4M).
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// doc assembles an SVG document.
type doc struct {
	w, h int
	b    strings.Builder
}

func newDoc(w, h int, title string) *doc {
	d := &doc{w: w, h: h}
	fmt.Fprintf(&d.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	fmt.Fprintf(&d.b, `<rect width="%d" height="%d" fill="#ffffff"/>`, w, h)
	fmt.Fprintf(&d.b, `<text x="%d" y="22" font-family="%s" font-size="15" font-weight="bold" fill="#1a1a1a">%s</text>`,
		marginLeft, fontFamily, esc(title))
	return d
}

func (d *doc) text(x, y float64, size int, anchor, fill, s string) {
	fmt.Fprintf(&d.b, `<text x="%s" y="%s" font-family="%s" font-size="%d" text-anchor="%s" fill="%s">%s</text>`,
		f(x), f(y), fontFamily, size, anchor, fill, esc(s))
}

func (d *doc) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&d.b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="%s"/>`,
		f(x1), f(y1), f(x2), f(y2), stroke, f(width))
}

func (d *doc) rect(x, y, w, h float64, fill string) {
	if h < 0 {
		y, h = y+h, -h
	}
	fmt.Fprintf(&d.b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`, f(x), f(y), f(w), f(h), fill)
}

func (d *doc) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&d.b, `<circle cx="%s" cy="%s" r="%s" fill="%s"/>`, f(x), f(y), f(r), fill)
}

func (d *doc) polyline(points []float64, stroke string, width float64) {
	var sb strings.Builder
	for i := 0; i+1 < len(points); i += 2 {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(f(points[i]) + "," + f(points[i+1]))
	}
	fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%s"/>`,
		sb.String(), stroke, f(width))
}

func (d *doc) String() string { return d.b.String() + "</svg>" }

// plotArea computes the drawable rectangle.
func plotArea(w, h int) (x0, y0, x1, y1 float64) {
	return marginLeft, marginTop, float64(w) - marginRight, float64(h) - marginBottom
}

// yAxis draws the ticks and grid for a [0, max] linear axis and returns
// the scale function.
func (d *doc) yAxis(x0, y0, x1, y1, max float64, label string) func(float64) float64 {
	ticks := niceTicks(max, 5)
	top := ticks[len(ticks)-1]
	scale := func(v float64) float64 { return y1 - (v/top)*(y1-y0) }
	for _, t := range ticks {
		y := scale(t)
		d.line(x0, y, x1, y, "#e4e4e4", 1)
		d.text(x0-6, y+4, 11, "end", "#555555", formatTick(t))
	}
	d.line(x0, y0, x0, y1, "#888888", 1)
	if label != "" {
		d.text(x0-46, (y0+y1)/2, 11, "middle", "#555555", label)
	}
	return scale
}

// Bars renders a single-series bar chart.
func Bars(title, yLabel string, labels []string, values []float64) string {
	return GroupedBars(title, yLabel, labels, []Series{{Name: "", Values: values}})
}

// Series is one named value vector.
type Series struct {
	Name   string
	Values []float64
}

// GroupedBars renders side-by-side bars per label for up to len(palette)
// series (the errors-vs-faults pairs of Figs 6, 7, 10).
func GroupedBars(title, yLabel string, labels []string, series []Series) string {
	d := newDoc(defaultWidth, defaultHeight, title)
	x0, y0, x1, y1 := plotArea(defaultWidth, defaultHeight)
	max := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			max = math.Max(max, v)
		}
	}
	scale := d.yAxis(x0, y0, x1, y1, max, yLabel)
	n := len(labels)
	if n == 0 {
		return d.String()
	}
	group := (x1 - x0) / float64(n)
	barW := group * 0.8 / float64(len(series))
	for i, lab := range labels {
		gx := x0 + float64(i)*group
		for si, s := range series {
			if i >= len(s.Values) {
				continue
			}
			bx := gx + group*0.1 + float64(si)*barW
			d.rect(bx, scale(s.Values[i]), barW*0.95, y1-scale(s.Values[i]), palette[si%len(palette)])
		}
		if n <= 40 {
			d.text(gx+group/2, y1+16, 10, "middle", "#555555", lab)
		} else if i%(n/20) == 0 {
			d.text(gx+group/2, y1+16, 10, "middle", "#555555", lab)
		}
	}
	d.line(x0, y1, x1, y1, "#888888", 1)
	legend(d, x1, series)
	return d.String()
}

// legend draws series names at the top right.
func legend(d *doc, x1 float64, series []Series) {
	lx := x1 - 130
	ly := float64(marginTop) + 4
	for si, s := range series {
		if s.Name == "" {
			continue
		}
		d.rect(lx, ly-9, 10, 10, palette[si%len(palette)])
		d.text(lx+14, ly, 11, "start", "#333333", s.Name)
		ly += 16
	}
}

// Lines renders one or more line series over shared x labels; logY plots
// log10 of the values (Fig 4a's monthly error series).
func Lines(title, yLabel string, xLabels []string, series []Series, logY bool) string {
	d := newDoc(defaultWidth, defaultHeight, title)
	x0, y0, x1, y1 := plotArea(defaultWidth, defaultHeight)
	transform := func(v float64) float64 { return v }
	suffix := ""
	if logY {
		transform = func(v float64) float64 {
			if v < 1 {
				return 0
			}
			return math.Log10(v)
		}
		suffix = " (log10)"
	}
	max := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			max = math.Max(max, transform(v))
		}
	}
	scale := d.yAxis(x0, y0, x1, y1, max, yLabel+suffix)
	n := len(xLabels)
	if n == 0 {
		return d.String()
	}
	step := (x1 - x0) / math.Max(1, float64(n-1))
	for si, s := range series {
		var pts []float64
		for i, v := range s.Values {
			pts = append(pts, x0+float64(i)*step, scale(transform(v)))
		}
		d.polyline(pts, palette[si%len(palette)], 2)
		for i := 0; i+1 < len(pts); i += 2 {
			d.circle(pts[i], pts[i+1], 2.5, palette[si%len(palette)])
		}
	}
	for i, lab := range xLabels {
		if n > 16 && i%(n/8+1) != 0 {
			continue
		}
		d.text(x0+float64(i)*step, y1+16, 10, "middle", "#555555", lab)
	}
	d.line(x0, y1, x1, y1, "#888888", 1)
	legend(d, x1, series)
	return d.String()
}

// Scatter renders (x, y) points with an optional fitted line y = a + b·x
// (the Fig 9 temperature-window panels).
func Scatter(title, xLabel, yLabel string, xs, ys []float64, intercept, slope float64, drawFit bool) string {
	d := newDoc(defaultWidth, defaultHeight, title)
	x0, y0, x1, y1 := plotArea(defaultWidth, defaultHeight)
	if len(xs) == 0 || len(xs) != len(ys) {
		return d.String()
	}
	xmin, xmax := xs[0], xs[0]
	ymax := 0.0
	for i := range xs {
		xmin = math.Min(xmin, xs[i])
		xmax = math.Max(xmax, xs[i])
		ymax = math.Max(ymax, ys[i])
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	scaleY := d.yAxis(x0, y0, x1, y1, ymax, yLabel)
	scaleX := func(v float64) float64 { return x0 + (v-xmin)/(xmax-xmin)*(x1-x0) }
	for i := range xs {
		d.circle(scaleX(xs[i]), scaleY(math.Min(ys[i], ymaxTop(ymax))), 3, palette[0])
	}
	if drawFit {
		fy := func(x float64) float64 { return intercept + slope*x }
		d.polyline([]float64{
			scaleX(xmin), scaleY(clamp(fy(xmin), 0, ymaxTop(ymax))),
			scaleX(xmax), scaleY(clamp(fy(xmax), 0, ymaxTop(ymax))),
		}, palette[1], 2)
	}
	for _, t := range niceTicks(xmax-xmin, 5) {
		v := xmin + t
		if v > xmax*1.0001 {
			break
		}
		d.text(scaleX(v), y1+16, 10, "middle", "#555555", formatTick(v))
	}
	d.text((x0+x1)/2, y1+34, 11, "middle", "#555555", xLabel)
	d.line(x0, y1, x1, y1, "#888888", 1)
	return d.String()
}

func ymaxTop(max float64) float64 {
	ticks := niceTicks(max, 5)
	return ticks[len(ticks)-1]
}

func clamp(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }
