package svgplot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// parseSVG checks the output is well-formed XML with an svg root.
func parseSVG(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	root := ""
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok && root == "" {
			root = se.Name.Local
		}
	}
	if root != "svg" {
		t.Fatalf("root element %q, want svg", root)
	}
}

func TestBarsWellFormed(t *testing.T) {
	s := Bars("errors per slot", "errors", []string{"A", "B", "C"}, []float64{1, 5, 2})
	parseSVG(t, s)
	if !strings.Contains(s, "errors per slot") {
		t.Error("title missing")
	}
	if strings.Count(s, "<rect") < 4 { // background + 3 bars
		t.Errorf("expected bars, got %d rects", strings.Count(s, "<rect"))
	}
}

func TestGroupedBarsLegend(t *testing.T) {
	s := GroupedBars("pair", "count", []string{"x", "y"}, []Series{
		{Name: "errors", Values: []float64{10, 20}},
		{Name: "faults", Values: []float64{1, 2}},
	})
	parseSVG(t, s)
	for _, want := range []string{"errors", "faults"} {
		if !strings.Contains(s, want) {
			t.Errorf("legend missing %q", want)
		}
	}
}

func TestLinesLogScale(t *testing.T) {
	s := Lines("monthly", "CEs", []string{"jan", "feb", "mar"},
		[]Series{{Name: "all", Values: []float64{100, 10000, 1000}}}, true)
	parseSVG(t, s)
	if !strings.Contains(s, "log10") {
		t.Error("log label missing")
	}
	if !strings.Contains(s, "<polyline") {
		t.Error("line missing")
	}
}

func TestScatterWithFit(t *testing.T) {
	xs := []float64{30, 40, 50}
	ys := []float64{5, 6, 7}
	s := Scatter("fig9", "temp °C", "CEs", xs, ys, 2, 0.1, true)
	parseSVG(t, s)
	if strings.Count(s, "<circle") < 3 {
		t.Error("points missing")
	}
	if !strings.Contains(s, "<polyline") {
		t.Error("fit line missing")
	}
}

func TestEmptyInputsDoNotPanic(t *testing.T) {
	for _, s := range []string{
		Bars("t", "y", nil, nil),
		Lines("t", "y", nil, nil, false),
		Scatter("t", "x", "y", nil, nil, 0, 0, false),
		GroupedBars("t", "y", []string{"a"}, []Series{{Values: nil}}),
	} {
		parseSVG(t, s)
	}
}

func TestEscaping(t *testing.T) {
	s := Bars(`<script>&"`, "y", []string{"<b>"}, []float64{1})
	parseSVG(t, s)
	if strings.Contains(s, "<script>") {
		t.Error("title not escaped")
	}
}

func TestNiceTicks(t *testing.T) {
	for _, c := range []struct {
		max  float64
		want float64 // minimum top tick
	}{{9, 9}, {100, 100}, {0, 1}, {1234567, 1234567}} {
		ticks := niceTicks(c.max, 5)
		if len(ticks) < 2 {
			t.Fatalf("ticks for %v: %v", c.max, ticks)
		}
		if top := ticks[len(ticks)-1]; top < c.want {
			t.Errorf("top tick %v < max %v", top, c.want)
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Fatalf("ticks not increasing: %v", ticks)
			}
		}
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500:    "1.5k",
		2500000: "2.5M",
		7:       "7",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestManyLabelsThinned(t *testing.T) {
	labels := make([]string, 100)
	values := make([]float64, 100)
	for i := range labels {
		labels[i] = "L" + string(rune('0'+i%10))
		values[i] = math.Sqrt(float64(i))
	}
	parseSVG(t, Bars("many", "v", labels, values))
	parseSVG(t, Lines("many", "v", labels, []Series{{Values: values}}, false))
}
