package stream_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/dataset"
	"repro/internal/mce"
	"repro/internal/overload"
	"repro/internal/stream"
	"repro/internal/topology"
)

// shardedPartitionCounts is the grid every differential runs over: the
// degenerate single-partition case, counts that divide the 48-node
// fixture unevenly, the benchmark's 8, and more partitions than busy
// nodes.
var shardedPartitionCounts = []int{1, 2, 3, 8, 16}

// dirtyRecords replays the fixture through syslog + corruption + the
// hardened scanner at the given corruption rate, yielding the exact
// record stream a damaged production log would produce.
func dirtyRecords(t *testing.T, rate float64) []mce.CERecord {
	t.Helper()
	ds := fixture(t)
	var raw bytes.Buffer
	if err := ds.WriteSyslog(&raw, 100); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	if _, err := corrupt.New(corrupt.Uniform(99, rate)).Process(bytes.NewReader(raw.Bytes()), &dirty); err != nil {
		t.Fatal(err)
	}
	ces, _, _, _, err := dataset.ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), dataset.IngestPolicy{
		DedupWindow:      64,
		ReorderWindow:    5 * time.Minute,
		MaxMalformedFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ces
}

// diffShardedSerial drives serial and sharded engines over the same
// stream in identical micro-batches and requires every public aggregate
// to match exactly.
func diffShardedSerial(t *testing.T, records []mce.CERecord, parts int, rng *rand.Rand) {
	t.Helper()
	dimms := 48 * topology.SlotsPerNode
	serial := stream.New(stream.Config{DIMMs: dimms})
	sharded := stream.NewSharded(stream.ShardedConfig{
		Partitions: parts,
		Engine:     stream.Config{DIMMs: dimms},
	})

	for lo := 0; lo < len(records); {
		batch := 1 + rng.Intn(257)
		hi := lo + batch
		if hi > len(records) {
			hi = len(records)
		}
		if batch == 1 {
			serial.Ingest(records[lo])
			sharded.Ingest(records[lo])
		} else {
			serial.IngestBatch(records[lo:hi])
			sharded.IngestBatch(records[lo:hi])
		}
		lo = hi
		// Interleaved queries must not perturb later results, and must
		// agree mid-stream, not only at the end.
		if rng.Intn(5) == 0 {
			if got, want := sharded.Summary(), serial.Summary(); got != want {
				t.Fatalf("mid-stream Summary diverges at %d records:\n got %+v\nwant %+v", lo, got, want)
			}
			if got, want := sharded.WindowedFIT(), serial.WindowedFIT(); got != want {
				t.Fatalf("mid-stream WindowedFIT diverges at %d records: got %+v want %+v", lo, got, want)
			}
		}
	}

	if got, want := sharded.Snapshot(), serial.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot diverges: got %d faults, want %d", len(got), len(want))
	}
	if got, want := sharded.Summary(), serial.Summary(); got != want {
		t.Fatalf("Summary diverges:\n got %+v\nwant %+v", got, want)
	}
	if got, want := sharded.WindowedFIT(), serial.WindowedFIT(); got != want {
		t.Fatalf("WindowedFIT diverges: got %+v want %+v", got, want)
	}
	if got, want := sharded.FaultRates(core.StudyWindow()), serial.FaultRates(core.StudyWindow()); got != want {
		t.Fatalf("FaultRates diverges: got %+v want %+v", got, want)
	}
	if got, want := sharded.Records(), serial.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Records diverges: got %d records, want %d", len(got), len(want))
	}
	if got, want := sharded.Features(), serial.Features(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Features diverges: got %d banks, want %d", len(got), len(want))
	}
	for id := topology.NodeID(0); id < 48; id++ {
		got, gok := sharded.NodeStatus(id)
		want, wok := serial.NodeStatus(id)
		if gok != wok || !reflect.DeepEqual(got, want) {
			t.Fatalf("NodeStatus(%d) diverges: got %+v/%v want %+v/%v", id, got, gok, want, wok)
		}
	}
	gv, wv := sharded.LiveView(), serial.LiveView()
	if gv.Summary != wv.Summary || !reflect.DeepEqual(gv.Faults, wv.Faults) || gv.FIT != wv.FIT {
		t.Fatal("LiveView content diverges from serial view")
	}
}

// TestShardedMatchesSerial is the tentpole differential: at every
// partition count, over clean and corrupted streams, with randomized
// micro-batch sizes and interleaved queries, the sharded engine is
// bit-identical to one serial engine.
func TestShardedMatchesSerial(t *testing.T) {
	streams := []struct {
		name string
		recs []mce.CERecord
	}{
		{"clean", fixture(t).CERecords},
		{"corrupt1pct", dirtyRecords(t, 0.01)},
		{"corrupt100pct", dirtyRecords(t, 1.0)},
	}
	for _, sc := range streams {
		for _, parts := range shardedPartitionCounts {
			t.Run(sc.name+"/parts"+string(rune('0'+parts/10))+string(rune('0'+parts%10)), func(t *testing.T) {
				diffShardedSerial(t, sc.recs, parts, rand.New(rand.NewSource(int64(parts)*1000+int64(len(sc.recs)))))
			})
		}
	}
}

// TestShardedLanesMatchSerial pushes the whole stream through the
// admission lanes (Offer → per-partition queue → drainer goroutine) with
// capacity to spare, and requires the drained fleet to match the serial
// engine exactly — the lane path must be equivalence-preserving, not
// just lossy-but-accounted.
func TestShardedLanesMatchSerial(t *testing.T) {
	records := fixture(t).CERecords
	dimms := 48 * topology.SlotsPerNode
	serial := stream.New(stream.Config{DIMMs: dimms})
	serial.IngestBatch(records)

	for _, parts := range shardedPartitionCounts {
		s := stream.NewSharded(stream.ShardedConfig{
			Partitions: parts,
			Engine:     stream.Config{DIMMs: dimms},
		})
		if err := s.StartLanes(stream.LaneConfig{
			Queue:      overload.Config{Capacity: len(records) + 1},
			DrainBatch: 128,
		}); err != nil {
			t.Fatal(err)
		}
		for _, r := range records {
			if !s.Offer(r) {
				t.Fatalf("parts=%d: Offer shed with spare capacity", parts)
			}
		}
		s.CloseLanes()

		if got, want := s.Snapshot(), serial.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("parts=%d: lane-fed Snapshot diverges (%d vs %d faults)", parts, len(got), len(want))
		}
		if got, want := s.Summary(), serial.Summary(); got != want {
			t.Fatalf("parts=%d: lane-fed Summary diverges:\n got %+v\nwant %+v", parts, got, want)
		}
		if got, want := s.Records(), serial.Records(); !reflect.DeepEqual(got, want) {
			t.Fatalf("parts=%d: lane-fed Records diverges", parts)
		}
	}
}

// TestShardedQuiesceRestart is the kill/restart differential over the
// lane path: quiesce mid-stream at arbitrary positions, capture the
// checkpoint image (ingested + queued, in global order), replay it into
// a fresh fleet with a DIFFERENT partition count, finish the stream, and
// require exact agreement with a serial engine that saw everything.
// This is the property astrad's v3 state file restores depend on: the
// image is partition-count independent.
func TestShardedQuiesceRestart(t *testing.T) {
	records := fixture(t).CERecords
	dimms := 48 * topology.SlotsPerNode
	serial := stream.New(stream.Config{DIMMs: dimms})
	serial.IngestBatch(records)
	want := serial.Snapshot()

	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct{ before, after int }{
		{1, 8}, {8, 3}, {3, 16}, {16, 1},
	} {
		cut := 1 + rng.Intn(len(records)-1)
		first := stream.NewSharded(stream.ShardedConfig{
			Partitions: tc.before,
			Engine:     stream.Config{DIMMs: dimms},
		})
		if err := first.StartLanes(stream.LaneConfig{
			Queue:      overload.Config{Capacity: len(records) + 1},
			DrainBatch: 32,
		}); err != nil {
			t.Fatal(err)
		}
		for _, r := range records[:cut] {
			first.Offer(r)
		}
		var image []mce.CERecord
		first.Quiesce(func(ingested, queued []mce.CERecord, _ []overload.QueueStats) {
			image = append(append(image, ingested...), queued...)
		})
		first.CloseLanes()
		if len(image) != cut {
			t.Fatalf("%d→%d: checkpoint image has %d records, offered %d", tc.before, tc.after, len(image), cut)
		}
		if !reflect.DeepEqual(image, records[:cut]) {
			t.Fatalf("%d→%d: checkpoint image is not the offered prefix in order", tc.before, tc.after)
		}

		second := stream.NewSharded(stream.ShardedConfig{
			Partitions: tc.after,
			Engine:     stream.Config{DIMMs: dimms},
		})
		second.IngestBatch(image)
		second.IngestBatch(records[cut:])
		if got := second.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%d→%d partitions at cut %d: restarted fleet diverges from serial", tc.before, tc.after, cut)
		}
		if got, wantSum := second.Summary(), serial.Summary(); got != wantSum {
			t.Fatalf("%d→%d: restarted Summary diverges:\n got %+v\nwant %+v", tc.before, tc.after, got, wantSum)
		}
	}
}

// TestShardedLaneShedBooks forces overload on the lane path (tiny
// queues, throttled drains) and checks the loss ledger balances exactly:
// every offered record is either ingested or counted shed, the fleet is
// marked Degraded, and per-lane stats reconcile with the fleet totals.
func TestShardedLaneShedBooks(t *testing.T) {
	records := fixture(t).CERecords
	if len(records) > 20000 {
		records = records[:20000]
	}
	for _, policy := range []overload.Policy{overload.PolicyReject, overload.PolicyDropOldest} {
		s := stream.NewSharded(stream.ShardedConfig{
			Partitions: 4,
			Engine:     stream.Config{DIMMs: 48 * topology.SlotsPerNode},
		})
		if err := s.StartLanes(stream.LaneConfig{
			Queue:         overload.Config{Capacity: 64, Policy: policy},
			DrainBatch:    16,
			DrainInterval: time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		rejected := 0
		for _, r := range records {
			if !s.Offer(r) {
				rejected++
			}
		}
		s.CloseLanes()

		sum := s.Summary()
		if sum.Offered != len(records) {
			t.Fatalf("%v: Offered = %d, want %d (Records %d + Shed %d)", policy, sum.Offered, len(records), sum.Records, sum.Shed)
		}
		if sum.Shed == 0 {
			t.Fatalf("%v: harness has no signal: nothing shed under forced overload", policy)
		}
		if !sum.Degraded || !s.WindowedFIT().Degraded {
			t.Fatalf("%v: shed loss must mark Summary and WindowedFIT degraded", policy)
		}
		var laneShed, laneDrained uint64
		for _, st := range s.LaneStats() {
			laneShed += st.Shed
			laneDrained += st.Drained
		}
		if laneShed != s.Shed() || int(laneDrained) != sum.Records {
			t.Fatalf("%v: lane stats (shed %d, drained %d) disagree with fleet (shed %d, records %d)",
				policy, laneShed, laneDrained, s.Shed(), sum.Records)
		}
		if policy == overload.PolicyReject && rejected != int(laneShed) {
			t.Fatalf("reject: Offer refused %d but lanes shed %d", rejected, laneShed)
		}
	}
}

// TestShardedLaneIsolation pins the reason lanes exist: saturating one
// partition's lane sheds only that partition's records — the other
// partitions' lanes admit everything.
func TestShardedLaneIsolation(t *testing.T) {
	s := stream.NewSharded(stream.ShardedConfig{Partitions: 4, Engine: stream.Config{}})
	if err := s.StartLanes(stream.LaneConfig{
		Queue:         overload.Config{Capacity: 32},
		DrainBatch:    8,
		DrainInterval: 500 * time.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	// All records target one node → one partition → one lane.
	base := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	hot := mce.CERecord{Node: 7, Slot: 1, Bank: 2}
	for i := 0; i < 5000; i++ {
		hot.Time = base.Add(time.Duration(i) * time.Second)
		s.Offer(hot)
	}
	s.CloseLanes()
	stats := s.LaneStats()
	busy, shedTotal := 0, uint64(0)
	for _, st := range stats {
		if st.Offered > 0 {
			busy++
		}
		shedTotal += st.Shed
	}
	if busy != 1 {
		t.Fatalf("hot node spread across %d lanes, want 1", busy)
	}
	if shedTotal == 0 {
		t.Fatal("hot lane never shed under saturation")
	}
}

// TestShardedConcurrentViews hammers the fleet with concurrent batch
// ingest, lock-free view readers, and node queries under the race
// detector, checking every observed view is internally consistent (the
// epoch cut: fault list, summary, and seq all from one instant).
func TestShardedConcurrentViews(t *testing.T) {
	records := fixture(t).CERecords
	s := stream.NewSharded(stream.ShardedConfig{
		Partitions: 4,
		Engine:     stream.Config{DIMMs: 48 * topology.SlotsPerNode},
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(records); lo += 199 {
			hi := lo + 199
			if hi > len(records) {
				hi = len(records)
			}
			s.IngestBatch(records[lo:hi])
		}
		close(stop)
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.LiveView()
				if v.Seq < lastSeq {
					t.Errorf("view seq went backwards: %d then %d", lastSeq, v.Seq)
					return
				}
				lastSeq = v.Seq
				if v.Summary.Faults != len(v.Faults) {
					t.Errorf("torn view: Summary.Faults=%d but %d faults in cut", v.Summary.Faults, len(v.Faults))
					return
				}
				if v.Summary.Offered != v.Summary.Records+v.Summary.Shed {
					t.Errorf("torn view books: %+v", v.Summary)
					return
				}
				_, _ = s.NodeStatus(topology.NodeID(seed) % 48)
			}
		}(int64(r))
	}
	wg.Wait()
	want := stream.New(stream.Config{DIMMs: 48 * topology.SlotsPerNode})
	want.IngestBatch(records)
	if got := s.LiveView(); !reflect.DeepEqual(got.Faults, want.Snapshot()) {
		t.Fatal("final concurrent view diverges from serial")
	}
}

// TestShardedFleetShed checks fleet-level NoteShed (scanner-side losses
// not attributable to a partition) flows into the books and the epoch.
func TestShardedFleetShed(t *testing.T) {
	s := stream.NewSharded(stream.ShardedConfig{Partitions: 2, Engine: stream.Config{DIMMs: 4}})
	seq0 := s.Seq()
	s.NoteShed(5)
	if s.Shed() != 5 {
		t.Fatalf("Shed = %d, want 5", s.Shed())
	}
	if s.Seq() != seq0+5 {
		t.Fatalf("Seq did not advance with fleet shed: %d → %d", seq0, s.Seq())
	}
	sum := s.Summary()
	if !sum.Degraded || sum.Shed != 5 || sum.Offered != 5 {
		t.Fatalf("fleet shed not in books: %+v", sum)
	}
}
