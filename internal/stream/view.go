package stream

import (
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

// View is an immutable point-in-time snapshot of the engine: everything
// the HTTP layer serves, materialized once so a herd of API readers
// never contends with ingest on the engine mutex. A View is never
// mutated after publication; callers may share it freely but must not
// modify Faults or the per-node slices.
type View struct {
	// Seq is the engine state-change counter the view was built at; the
	// view is stale while Engine.Seq() is ahead of it.
	Seq uint64
	// BuiltAt is the wall-clock build time, the base of staleness ages.
	BuiltAt time.Time
	// Summary, Faults and FIT are what Engine.Summary, Engine.Snapshot
	// and Engine.WindowedFIT would have returned at Seq.
	Summary Summary
	Faults  []core.Fault
	FIT     WindowedFIT

	nodes map[topology.NodeID]NodeStatus // scalars only; Faults filled on demand
}

// NodeStatus returns the view's per-node status; ok is false when the
// node had produced no CE records at build time. The fault list is
// assembled per call from the view's fault snapshot (allocates, but
// touches no engine state).
func (v *View) NodeStatus(id topology.NodeID) (NodeStatus, bool) {
	ns, ok := v.nodes[id]
	if !ok {
		return NodeStatus{}, false
	}
	for i := range v.Faults {
		if v.Faults[i].Node == id {
			ns.Faults = append(ns.Faults, v.Faults[i])
		}
	}
	return ns, true
}

// FaultRates converts the view's fault population into FIT/DIMM over
// the given window, as Engine.FaultRates would at the view's Seq.
func (v *View) FaultRates(dimms int, window time.Duration) core.FaultRates {
	return core.AnalyzeFaultRates(v.Faults, dimms, window)
}

// LiveView returns a current or recent View. If the cached view is
// current it is returned directly (no lock). Otherwise the engine tries
// to rebuild — but only with a try-lock: when an ingest batch holds the
// engine mutex, the previous view is returned as-is instead of
// blocking, so read traffic can never stall behind ingest (nor ingest
// behind a herd of readers). Callers detect staleness by comparing
// view.Seq against Engine.Seq() and view.BuiltAt against the clock.
// Only the very first view of an engine's life may block.
func (e *Engine) LiveView() *View {
	seq := e.seq.Load()
	if v := e.view.Load(); v != nil && v.Seq == seq {
		return v
	}
	if e.mu.TryLock() {
		v := e.buildViewLocked()
		e.mu.Unlock()
		return v
	}
	if v := e.view.Load(); v != nil {
		return v // stale, but nobody waits
	}
	// No view exists yet (first request racing the first ingest): build
	// one properly.
	e.mu.Lock()
	v := e.buildViewLocked()
	e.mu.Unlock()
	return v
}

// buildViewLocked materializes and publishes a fresh view. Caller holds
// e.mu, so the publication is ordered: a concurrent builder cannot
// overwrite a newer view with an older one.
func (e *Engine) buildViewLocked() *View {
	v := &View{
		Seq:     e.seq.Load(),
		BuiltAt: time.Now(),
		Summary: e.summaryLocked(),
		Faults:  e.snapshotLocked(),
		FIT:     e.windowedFITLocked(),
		nodes:   make(map[topology.NodeID]NodeStatus, len(e.perNode)),
	}
	for id, ns := range e.perNode {
		v.nodes[id] = NodeStatus{
			Node:        id,
			CEs:         ns.ces,
			First:       ns.first,
			Last:        ns.last,
			WindowCount: ns.rw.Count(e.last),
			WindowRate:  ns.rw.Rate(e.last),
		}
	}
	e.view.Store(v)
	return v
}
