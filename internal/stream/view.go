package stream

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/topology"
)

// View is an immutable point-in-time snapshot of the engine: everything
// the HTTP layer serves, materialized once so a herd of API readers
// never contends with ingest on the engine mutex. A View is never
// mutated after publication; callers may share it freely but must not
// modify Faults or the per-node slices.
type View struct {
	// Seq is the engine state-change counter the view was built at; the
	// view is stale while Engine.Seq() is ahead of it.
	Seq uint64
	// BuiltAt is the wall-clock build time, the base of staleness ages.
	BuiltAt time.Time
	// Summary, Faults and FIT are what Engine.Summary, Engine.Snapshot
	// and Engine.WindowedFIT would have returned at Seq.
	Summary Summary
	Faults  []core.Fault
	FIT     WindowedFIT

	nodes map[topology.NodeID]NodeStatus // scalars only; Faults filled on demand

	// The per-bank prediction features are deferred: extraction walks
	// every bank's word population (O(banks·words)), which would make
	// the rollup endpoints — rebuilt on every poll during ingest — pay
	// for a field only the risk surface reads. banksFn is installed at
	// build time and runs at most once, on first Banks() call.
	banksOnce sync.Once
	banks     []predict.BankFeatures
	banksFn   func() []predict.BankFeatures
}

// Banks returns each tracked bank's prediction features in
// first-appearance order — the input the serving layer scores against a
// predictor at render time, so swapping predictors never requires a
// view rebuild. Extraction is lazy and memoized: the first call
// evaluates against the live engine (at or ahead of Seq — risk readers
// get the freshest features available; on a quiescent engine this is
// exactly the Seq snapshot, which is what the stream==batch and
// sharded==serial differentials compare), and every later call returns
// the same slice. Callers must not modify it.
func (v *View) Banks() []predict.BankFeatures {
	v.banksOnce.Do(func() {
		if v.banksFn != nil {
			v.banks = v.banksFn()
			v.banksFn = nil
		}
	})
	return v.banks
}

// NodeStatus returns the view's per-node status; ok is false when the
// node had produced no CE records at build time. The fault list is
// assembled per call from the view's fault snapshot (allocates, but
// touches no engine state).
func (v *View) NodeStatus(id topology.NodeID) (NodeStatus, bool) {
	ns, ok := v.nodes[id]
	if !ok {
		return NodeStatus{}, false
	}
	for i := range v.Faults {
		if v.Faults[i].Node == id {
			ns.Faults = append(ns.Faults, v.Faults[i])
		}
	}
	return ns, true
}

// FaultRates converts the view's fault population into FIT/DIMM over
// the given window, as Engine.FaultRates would at the view's Seq.
func (v *View) FaultRates(dimms int, window time.Duration) core.FaultRates {
	return core.AnalyzeFaultRates(v.Faults, dimms, window)
}

// MergeViews composes per-site views into one cross-site rollup: counts
// and fault lists are summed/concatenated (sites are disjoint fleets),
// time bounds are min/max, and the FIT estimate is rescaled to the
// combined DIMM population. Seq is the sum of the input seqs, so the
// rollup epoch advances whenever any site's does. A single input is
// returned as-is. Unlike the sharded fan-in (one fleet, one arrival
// order, bit-exact), a rollup is a composition of independently-evolving
// sites: each input is that site's consistent cut, and node entries
// colliding across sites (reused IDs) are summed.
func MergeViews(dimms int, vs ...*View) *View {
	if len(vs) == 1 {
		return vs[0]
	}
	nNodes := 0
	for _, v := range vs {
		nNodes += len(v.nodes)
	}
	m := &View{
		BuiltAt: time.Now(),
		nodes:   make(map[topology.NodeID]NodeStatus, nNodes),
	}
	for _, v := range vs {
		m.Seq += v.Seq
		s, sum := &m.Summary, v.Summary
		s.Records += sum.Records
		s.Banks += sum.Banks
		s.FaultyDIMMs += sum.FaultyDIMMs
		s.FaultyNodes += sum.FaultyNodes
		s.Faults += sum.Faults
		for mode := range sum.FaultsByMode {
			s.FaultsByMode[mode] += sum.FaultsByMode[mode]
			s.ErrorsByMode[mode] += sum.ErrorsByMode[mode]
		}
		s.Escalations += sum.Escalations
		s.WindowCount += sum.WindowCount
		s.WindowRate += sum.WindowRate
		s.Shed += sum.Shed
		s.Offered += sum.Offered
		s.Degraded = s.Degraded || sum.Degraded
		if s.Window == 0 {
			s.Window = sum.Window
		}
		if !sum.First.IsZero() && (s.First.IsZero() || sum.First.Before(s.First)) {
			s.First = sum.First
		}
		if sum.Last.After(s.Last) {
			s.Last = sum.Last
		}
		m.Faults = append(m.Faults, v.Faults...)
		f := &m.FIT
		f.NewFaults += v.FIT.NewFaults
		f.ActiveFaults += v.FIT.ActiveFaults
		f.Degraded = f.Degraded || v.FIT.Degraded
		if f.Window == 0 {
			f.Window = v.FIT.Window
		}
		if v.FIT.End.After(f.End) {
			f.End = v.FIT.End
		}
		for id, ns := range v.nodes {
			if prev, ok := m.nodes[id]; ok {
				prev.CEs += ns.CEs
				prev.WindowCount += ns.WindowCount
				prev.WindowRate += ns.WindowRate
				if !ns.First.IsZero() && (prev.First.IsZero() || ns.First.Before(prev.First)) {
					prev.First = ns.First
				}
				if ns.Last.After(prev.Last) {
					prev.Last = ns.Last
				}
				m.nodes[id] = prev
			} else {
				m.nodes[id] = ns
			}
		}
	}
	if hours := m.FIT.Window.Hours(); hours > 0 && dimms > 0 && !m.FIT.End.IsZero() {
		m.FIT.FITPerDIMM = float64(m.FIT.NewFaults) / (float64(dimms) * hours) * 1e9
	} else {
		m.FIT.Degraded = true
	}
	inputs := append([]*View(nil), vs...)
	m.banksFn = func() []predict.BankFeatures {
		var banks []predict.BankFeatures
		for _, v := range inputs {
			banks = append(banks, v.Banks()...)
		}
		return banks
	}
	return m
}

// LiveView returns a current or recent View. If the cached view is
// current it is returned directly (no lock). Otherwise the engine tries
// to rebuild — but only with a try-lock: when an ingest batch holds the
// engine mutex, the previous view is returned as-is instead of
// blocking, so read traffic can never stall behind ingest (nor ingest
// behind a herd of readers). Callers detect staleness by comparing
// view.Seq against Engine.Seq() and view.BuiltAt against the clock.
// Only the very first view of an engine's life may block.
func (e *Engine) LiveView() *View {
	seq := e.seq.Load()
	if v := e.view.Load(); v != nil && v.Seq == seq {
		return v
	}
	if e.mu.TryLock() {
		v := e.buildViewLocked()
		e.mu.Unlock()
		return v
	}
	if v := e.view.Load(); v != nil {
		return v // stale, but nobody waits
	}
	// No view exists yet (first request racing the first ingest): build
	// one properly.
	e.mu.Lock()
	v := e.buildViewLocked()
	e.mu.Unlock()
	return v
}

// buildViewLocked materializes and publishes a fresh view. Caller holds
// e.mu, so the publication is ordered: a concurrent builder cannot
// overwrite a newer view with an older one.
func (e *Engine) buildViewLocked() *View {
	v := &View{
		Seq:     e.seq.Load(),
		BuiltAt: time.Now(),
		Summary: e.summaryLocked(),
		Faults:  e.snapshotLocked(),
		FIT:     e.windowedFITLocked(e.last, e.cfg.DIMMs),
		nodes:   make(map[topology.NodeID]NodeStatus, len(e.nodeStates)),
	}
	v.banksFn = func() []predict.BankFeatures {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.featuresLocked(e.last)
	}
	for i := range e.nodeStates {
		ns := &e.nodeStates[i]
		v.nodes[ns.node] = NodeStatus{
			Node:        ns.node,
			CEs:         ns.ces,
			First:       ns.first,
			Last:        ns.last,
			WindowCount: ns.rw.Count(e.last),
			WindowRate:  ns.rw.Rate(e.last),
		}
	}
	e.view.Store(v)
	return v
}
