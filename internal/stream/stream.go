// Package stream is the online half of the paper's methodology: an
// incremental fault-clustering engine that consumes CE records one at a
// time (or in micro-batches) and keeps per-bank fault state current, so
// fault counts, mode mixes, per-node CE rates and FIT estimates are
// available at any instant instead of after a nightly batch run.
//
// The engine carries a differential guarantee: replaying any record
// sequence through Ingest/IngestBatch — at any micro-batch size and any
// Parallelism — then calling Snapshot yields exactly the faults (order,
// modes, error index lists) that core.Cluster produces over the same
// records. This is not an accident of testing but of construction: both
// paths accumulate core.BankState per bank and classify through
// BankState.AppendFaults, and the property tests in this package pin it.
//
// Mode escalation is the natural history of a DRAM fault under this
// methodology: a bank that has shown one stuck bit (single-bit) may grow
// to several bits in a word (single-word), a column, or scattered words
// (single-bank) as more errors arrive. The engine re-derives each bank's
// classification lazily — banks are marked dirty on ingest and
// reclassified on the next query — and counts observed escalations.
//
// The per-record path is built for multi-million records/s on one core:
// bank and node lookups go through dense slices and short per-node ref
// lists instead of hashed maps (a packed integer key with a map fallback
// keeps exotic slot/node values exact), the dirty set is a flag on the
// bank entry plus an index list, and the rolling rate windows advance in
// O(1). Sharded (sharded.go) stacks partition parallelism on top.
package stream

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/parallel"
	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DefaultWindow is the trailing window for rolling rates and windowed FIT
// estimates when Config.Window is zero.
const DefaultWindow = 24 * time.Hour

// DefaultRateBuckets is the ring resolution of the rolling-rate windows.
const DefaultRateBuckets = 48

// Config tunes the engine. The zero value is usable: default clustering
// thresholds, a 24-hour rolling window, no FIT denominator (rate queries
// report Degraded until DIMMs is set).
type Config struct {
	// Cluster sets the clustering thresholds; the zero value means
	// core.DefaultClusterConfig().
	Cluster core.ClusterConfig
	// Window is the trailing window for rolling CE rates and windowed FIT
	// estimates; 0 means DefaultWindow.
	Window time.Duration
	// RateBuckets resolves the rolling windows; 0 means DefaultRateBuckets.
	RateBuckets int
	// DIMMs is the monitored device population, the denominator of FIT
	// estimates (nodes × topology.SlotsPerNode on the full system).
	DIMMs int
	// Parallelism bounds the workers IngestBatch shards large batches
	// across; 0 uses GOMAXPROCS, 1 keeps ingest serial. Results are
	// identical at every setting.
	Parallelism int
}

// bankRef is a per-node reference to one bank entry: the packed
// (slot, rank, bank) key and the index into Engine.entries.
type bankRef struct {
	pk  uint64
	idx int32
}

// bankEntry is one bank's live state: accumulated errors, the cached
// classification, the global index of the bank's first record (the
// fan-in merge key — partition snapshots interleave by it), and the
// incremental failure-prediction features. The feature state updates
// strictly in arrival order on every ingest path — predict.FeatureState
// deliberately has no merge operation — so stream features are
// bit-identical to a batch predict.Tracker over the same records at any
// partition count.
type bankEntry struct {
	key      core.BankKey
	state    *core.BankState
	faults   []core.Fault
	fs       predict.FeatureState
	firstIdx int
	dirty    bool
}

// nodeState is the per-node rolling view. firstSec/lastSec shadow
// first/last at second resolution so the hot path compares integers and
// only falls back to time.Time ordering on equal seconds.
type nodeState struct {
	node              topology.NodeID
	ces               int
	first, last       time.Time
	firstSec, lastSec int64
	rw                stats.RateWindow
	// slots is the bitmask of faulted DIMM slots (slot values 0..63; the
	// engine-level dimmOver set holds anything outside).
	slots uint64
	// banks lists this node's bank entries in first-appearance order; a
	// linear scan beats a map at realistic per-node bank counts, and
	// bankMap takes over past linearBankScan entries.
	banks   []bankRef
	bankMap map[uint64]int32
}

// linearBankScan is the per-node bank count above which lookups switch
// from a linear ref scan to a map. Real nodes carry a handful of faulty
// banks; the map path only matters for corrupted or adversarial inputs.
const linearBankScan = 16

// maxDenseNode bounds the dense NodeID -> state index table; ids outside
// [0, maxDenseNode) fall back to a map and stay exact.
const maxDenseNode = 1 << 20

// Engine is the incremental clustering engine. All methods are safe for
// concurrent use: ingest and queries serialize on one mutex (queries may
// reclassify dirty banks, so they mutate cached state too).
type Engine struct {
	mu  sync.Mutex
	cfg Config

	// records is every ingested CE in arrival order; fault Errors index
	// into it. It grows for the lifetime of the engine, like the input
	// slice of a batch run. When the engine is a shard of a Sharded
	// fleet (indexed), gidx carries each record's global arrival index
	// (drawn from the fleet's globalIdx counter) and fault Errors use
	// those instead.
	records   []mce.CERecord
	gidx      []int
	indexed   bool
	globalIdx *atomic.Int64

	// entries holds every bank in first-appearance order (what the batch
	// clusterer's output order is defined by); bankPacked maps packed
	// (node, slot, rank, bank) keys to entry indices for the merge path,
	// and bankOverflow catches keys whose fields do not pack.
	entries      []bankEntry
	bankOverflow map[core.BankKey]int32
	dirtyIdx     []int32

	nFaults      int
	faultsByMode [core.NumFaultModes]int
	errorsByMode [core.NumFaultModes]int
	escalations  int

	// nodeIdx densely maps NodeID to an index in nodeStates (-1 = none);
	// nodeOver covers ids outside the dense range.
	nodeIdx    []int32
	nodeOver   map[topology.NodeID]int32
	nodeStates []nodeState

	// nDIMMs counts distinct (node, slot) pairs with ≥1 fault; dimmOver
	// holds pairs whose slot does not fit the per-node bitmask.
	nDIMMs   int
	dimmOver map[[2]int64]struct{}

	rate              stats.RateWindow
	first             time.Time
	last              time.Time
	firstSec, lastSec int64
	tStarted          bool

	// seq counts state changes (records made visible plus shed
	// notifications) and is readable without the mutex; view caches the
	// last built read-only View, stale when its Seq trails seq.
	seq  atomic.Uint64
	shed atomic.Uint64
	view atomic.Pointer[View]
}

// New returns an engine with no state.
func New(cfg Config) *Engine {
	if cfg.Cluster == (core.ClusterConfig{Parallelism: cfg.Cluster.Parallelism}) {
		p := cfg.Cluster.Parallelism
		cfg.Cluster = core.DefaultClusterConfig()
		cfg.Cluster.Parallelism = p
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.RateBuckets <= 0 {
		cfg.RateBuckets = DefaultRateBuckets
	}
	e := &Engine{cfg: cfg}
	e.rate.Init(cfg.Window, cfg.RateBuckets)
	if cfg.DIMMs > 0 {
		// The device population bounds the node population; presizing the
		// node tables turns their growth copies into one allocation.
		est := cfg.DIMMs/topology.SlotsPerNode + 1
		e.nodeStates = make([]nodeState, 0, est)
		e.nodeIdx = make([]int32, est)
		for i := range e.nodeIdx {
			e.nodeIdx[i] = -1
		}
	}
	return e
}

// newShard returns a partition engine of a Sharded fleet: records carry
// global arrival indices drawn from counter, so fault Errors and the
// fan-in merge order are identical to a serial engine over the merged
// stream.
func newShard(cfg Config, counter *atomic.Int64) *Engine {
	e := New(cfg)
	e.indexed = true
	e.globalIdx = counter
	return e
}

// nextGlobal reserves n consecutive global arrival indices and returns
// the first.
func (e *Engine) nextGlobal(n int) int {
	return int(e.globalIdx.Add(int64(n))) - n
}

// ingestIndexed folds a micro-batch into an indexed shard with
// caller-assigned global indices (gs[i] is rs[i]'s fleet arrival index;
// both ascend). The Sharded fan-out uses this so every record keeps the
// index a serial engine would have given it.
func (e *Engine) ingestIndexed(gs []int, rs []mce.CERecord) {
	if len(rs) == 0 {
		return
	}
	e.mu.Lock()
	base := len(e.records)
	e.records = append(e.records, rs...)
	e.gidx = append(e.gidx, gs...)
	for i := range rs {
		e.ingestRecord(gs[i], &e.records[base+i])
	}
	e.seq.Add(uint64(len(rs)))
	e.mu.Unlock()
}

// packBank packs (slot, rank, bank) into the per-node bank key; ok is
// false when slot falls outside the packable range (exotic inputs take
// the exact bankOverflow path instead).
func packBank(slot topology.Slot, rank, bank int) (uint64, bool) {
	if slot < 0 || uint64(slot) >= 1<<44 {
		return 0, false
	}
	return uint64(slot)<<16 | uint64(uint8(rank))<<8 | uint64(uint8(bank)), true
}

// ensureNode returns the nodeStates index for id, creating an empty state
// on first sight. The returned index is stable; pointers into nodeStates
// are not (appends may move the backing array).
func (e *Engine) ensureNode(id topology.NodeID) int32 {
	if i := int(id); i >= 0 && i < maxDenseNode {
		if i >= len(e.nodeIdx) {
			n := i + 1
			if d := 2 * len(e.nodeIdx); d > n {
				n = d
			}
			if n < 64 {
				n = 64
			}
			if n > maxDenseNode {
				n = maxDenseNode
			}
			grown := make([]int32, n)
			copy(grown, e.nodeIdx)
			for j := len(e.nodeIdx); j < len(grown); j++ {
				grown[j] = -1
			}
			e.nodeIdx = grown
		}
		if idx := e.nodeIdx[i]; idx >= 0 {
			return idx
		}
		idx := e.newNodeState(id)
		e.nodeIdx[i] = idx
		return idx
	}
	if idx, ok := e.nodeOver[id]; ok {
		return idx
	}
	if e.nodeOver == nil {
		e.nodeOver = map[topology.NodeID]int32{}
	}
	idx := e.newNodeState(id)
	e.nodeOver[id] = idx
	return idx
}

func (e *Engine) newNodeState(id topology.NodeID) int32 {
	idx := int32(len(e.nodeStates))
	e.nodeStates = append(e.nodeStates, nodeState{node: id})
	e.nodeStates[idx].rw.Init(e.cfg.Window, e.cfg.RateBuckets)
	return idx
}

// ensureBank returns the entry index for the bank the record belongs to,
// creating the entry (and its DIMM accounting) on first sight. g is the
// record's global arrival index, the entry's firstIdx when new.
func (e *Engine) ensureBank(rec *mce.CERecord, nsIdx int32, g int) int32 {
	pk, ok := packBank(rec.Slot, rec.Rank, rec.Bank)
	if !ok {
		return e.ensureBankOverflow(rec, nsIdx, g)
	}
	ns := &e.nodeStates[nsIdx]
	if ns.bankMap != nil {
		if idx, ok := ns.bankMap[pk]; ok {
			return idx
		}
	} else {
		for i := range ns.banks {
			if ns.banks[i].pk == pk {
				return ns.banks[i].idx
			}
		}
	}
	idx := e.addEntry(core.RecordBankKey(rec), g)
	ns = &e.nodeStates[nsIdx] // addEntry does not touch nodeStates, but stay safe
	ns.banks = append(ns.banks, bankRef{pk: pk, idx: idx})
	if ns.bankMap != nil {
		ns.bankMap[pk] = idx
	} else if len(ns.banks) > linearBankScan {
		ns.bankMap = make(map[uint64]int32, 2*len(ns.banks))
		for _, ref := range ns.banks {
			ns.bankMap[ref.pk] = ref.idx
		}
	}
	e.noteDIMM(rec.Node, int64(rec.Slot), ns)
	return idx
}

func (e *Engine) ensureBankOverflow(rec *mce.CERecord, nsIdx int32, g int) int32 {
	key := core.RecordBankKey(rec)
	if idx, ok := e.bankOverflow[key]; ok {
		return idx
	}
	if e.bankOverflow == nil {
		e.bankOverflow = map[core.BankKey]int32{}
	}
	idx := e.addEntry(key, g)
	e.bankOverflow[key] = idx
	e.noteDIMM(rec.Node, int64(rec.Slot), &e.nodeStates[nsIdx])
	return idx
}

func (e *Engine) addEntry(key core.BankKey, g int) int32 {
	idx := int32(len(e.entries))
	e.entries = append(e.entries, bankEntry{key: key, state: core.NewBankState(), firstIdx: g, dirty: true})
	e.entries[idx].fs.Init(e.cfg.Window, e.cfg.RateBuckets)
	e.dirtyIdx = append(e.dirtyIdx, idx)
	return idx
}

// noteDIMM counts the (node, slot) pair once.
func (e *Engine) noteDIMM(node topology.NodeID, slot int64, ns *nodeState) {
	if slot >= 0 && slot < 64 {
		if bit := uint64(1) << uint(slot); ns.slots&bit == 0 {
			ns.slots |= bit
			e.nDIMMs++
		}
		return
	}
	key := [2]int64{int64(node), slot}
	if _, ok := e.dimmOver[key]; !ok {
		if e.dimmOver == nil {
			e.dimmOver = map[[2]int64]struct{}{}
		}
		e.dimmOver[key] = struct{}{}
		e.nDIMMs++
	}
}

// Ingest folds one CE record into the engine. The hot path allocates only
// when it sees a new bank, word address or node (steady-state ingest of a
// warmed fault population is allocation-free, amortized).
func (e *Engine) Ingest(r mce.CERecord) {
	e.mu.Lock()
	e.ingestLocked(r)
	e.seq.Add(1)
	e.mu.Unlock()
}

func (e *Engine) ingestLocked(r mce.CERecord) {
	i := len(e.records)
	e.records = append(e.records, r)
	g := i
	if e.indexed {
		// Non-sharded entry points on an indexed shard keep gidx dense.
		g = e.nextGlobal(1)
		e.gidx = append(e.gidx, g)
	}
	e.ingestRecord(g, &e.records[i])
}

// ingestRecord is the per-record hot path. g is the record's global
// arrival index (equal to its position in e.records unless the engine is
// an indexed shard).
func (e *Engine) ingestRecord(g int, rec *mce.CERecord) {
	nsIdx := e.ensureNode(rec.Node)
	entIdx := e.ensureBank(rec, nsIdx, g)
	ent := &e.entries[entIdx]
	ent.state.Add(g, rec)
	ent.fs.Observe(rec.Time.UnixNano())
	if !ent.dirty {
		ent.dirty = true
		e.dirtyIdx = append(e.dirtyIdx, entIdx)
	}
	e.noteScalars(nsIdx, rec)
}

// noteScalars maintains the per-record rolling aggregates (everything
// except the bank state itself).
func (e *Engine) noteScalars(nsIdx int32, rec *mce.CERecord) {
	sec := rec.Time.Unix()
	nano := rec.Time.UnixNano()
	ns := &e.nodeStates[nsIdx]
	if ns.ces == 0 {
		ns.first, ns.last = rec.Time, rec.Time
		ns.firstSec, ns.lastSec = sec, sec
	} else {
		if sec < ns.firstSec || (sec == ns.firstSec && rec.Time.Before(ns.first)) {
			ns.firstSec, ns.first = sec, rec.Time
		}
		if sec > ns.lastSec || (sec == ns.lastSec && rec.Time.After(ns.last)) {
			ns.lastSec, ns.last = sec, rec.Time
		}
	}
	ns.ces++
	ns.rw.AddNano(nano)
	e.rate.AddNano(nano)
	if !e.tStarted {
		e.tStarted = true
		e.first, e.last = rec.Time, rec.Time
		e.firstSec, e.lastSec = sec, sec
		return
	}
	if sec < e.firstSec || (sec == e.firstSec && rec.Time.Before(e.first)) {
		e.firstSec, e.first = sec, rec.Time
	}
	if sec > e.lastSec || (sec == e.lastSec && rec.Time.After(e.last)) {
		e.lastSec, e.last = sec, rec.Time
	}
}

// minBatchShard keeps micro-batch grouping serial below this size; the
// per-shard map setup would cost more than the scan.
const minBatchShard = 1 << 12

// IngestBatch folds a micro-batch of records into the engine, sharding
// the bank-grouping scan across Config.Parallelism workers when the batch
// is large. The result is identical to ingesting the records one by one
// in order, at every batch size and worker count: shards cover contiguous
// ranges and merge in shard order, reproducing the serial first-appearance
// order exactly (the same argument as the batch clusterer's sharded scan).
func (e *Engine) IngestBatch(rs []mce.CERecord) {
	if len(rs) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.seq.Add(uint64(len(rs)))
	base := len(e.records)
	e.records = append(e.records, rs...)
	gbase := base
	if e.indexed {
		gbase = e.nextGlobal(len(rs))
		for i := range rs {
			e.gidx = append(e.gidx, gbase+i)
		}
	}
	workers := parallel.Workers(e.cfg.Parallelism)
	if workers <= 1 || len(rs) < 2*minBatchShard {
		for i := range rs {
			e.ingestRecord(gbase+i, &e.records[base+i])
		}
		return
	}

	type part struct {
		banks    map[core.BankKey]*core.BankState
		order    []core.BankKey
		firstIdx []int
	}
	shards := parallel.NumChunks(workers, len(rs))
	parts := make([]part, shards)
	parallel.ForEachChunk(workers, len(rs), func(shard, lo, hi int) {
		p := part{banks: make(map[core.BankKey]*core.BankState, 8)}
		for i := lo; i < hi; i++ {
			rec := &e.records[base+i]
			key := core.RecordBankKey(rec)
			bank, ok := p.banks[key]
			if !ok {
				bank = core.NewBankState()
				p.banks[key] = bank
				p.order = append(p.order, key)
				p.firstIdx = append(p.firstIdx, gbase+i)
			}
			bank.Add(gbase+i, rec)
		}
		parts[shard] = p
	})
	for _, p := range parts {
		for j, key := range p.order {
			nsIdx := e.ensureNode(key.Node)
			entIdx, ok := e.findBank(key, nsIdx)
			if !ok {
				entIdx = e.insertBank(key, nsIdx, p.firstIdx[j])
				e.entries[entIdx].state = p.banks[key]
			} else {
				ent := &e.entries[entIdx]
				ent.state.Merge(p.banks[key])
				if !ent.dirty {
					ent.dirty = true
					e.dirtyIdx = append(e.dirtyIdx, entIdx)
				}
			}
		}
	}
	// The per-shard scan merged bank *states* out of order; the feature
	// states have no merge operation by design, so this serial pass
	// applies them in arrival order — the same sequence the record-at-a-
	// time path produces (every bank was created above, so findBank hits).
	for i := base; i < len(e.records); i++ {
		rec := &e.records[i]
		nsIdx := e.ensureNode(rec.Node)
		if entIdx, ok := e.findBank(core.RecordBankKey(rec), nsIdx); ok {
			e.entries[entIdx].fs.Observe(rec.Time.UnixNano())
		}
		e.noteScalars(nsIdx, rec)
	}
}

// findBank looks a bank up without creating it.
func (e *Engine) findBank(key core.BankKey, nsIdx int32) (int32, bool) {
	pk, ok := packBank(key.Slot, int(key.Rank), int(key.Bank))
	if !ok {
		idx, ok := e.bankOverflow[key]
		return idx, ok
	}
	ns := &e.nodeStates[nsIdx]
	if ns.bankMap != nil {
		idx, ok := ns.bankMap[pk]
		return idx, ok
	}
	for i := range ns.banks {
		if ns.banks[i].pk == pk {
			return ns.banks[i].idx, true
		}
	}
	return 0, false
}

// insertBank creates a bank entry for key (which findBank just missed),
// with an empty state the caller replaces or merges into.
func (e *Engine) insertBank(key core.BankKey, nsIdx int32, firstIdx int) int32 {
	idx := e.addEntry(key, firstIdx)
	pk, ok := packBank(key.Slot, int(key.Rank), int(key.Bank))
	if !ok {
		if e.bankOverflow == nil {
			e.bankOverflow = map[core.BankKey]int32{}
		}
		e.bankOverflow[key] = idx
	} else {
		ns := &e.nodeStates[nsIdx]
		ns.banks = append(ns.banks, bankRef{pk: pk, idx: idx})
		if ns.bankMap != nil {
			ns.bankMap[pk] = idx
		} else if len(ns.banks) > linearBankScan {
			ns.bankMap = make(map[uint64]int32, 2*len(ns.banks))
			for _, ref := range ns.banks {
				ns.bankMap[ref.pk] = ref.idx
			}
		}
	}
	e.noteDIMM(key.Node, int64(key.Slot), &e.nodeStates[nsIdx])
	return idx
}

// reclassify re-derives the fault lists of dirty banks and updates the
// aggregate counters by delta. Caller holds e.mu.
func (e *Engine) reclassify() {
	if len(e.dirtyIdx) == 0 {
		return
	}
	for _, entIdx := range e.dirtyIdx {
		ent := &e.entries[entIdx]
		old := ent.faults
		fs := ent.state.AppendFaults(nil, ent.key, e.cfg.Cluster)
		oldMax, newMax := -1, -1
		for i := range old {
			f := &old[i]
			e.faultsByMode[f.Mode]--
			e.errorsByMode[f.Mode] -= f.NErrors
			if int(f.Mode) > oldMax {
				oldMax = int(f.Mode)
			}
		}
		for i := range fs {
			f := &fs[i]
			e.faultsByMode[f.Mode]++
			e.errorsByMode[f.Mode] += f.NErrors
			if int(f.Mode) > newMax {
				newMax = int(f.Mode)
			}
		}
		e.nFaults += len(fs) - len(old)
		// An escalation is a bank whose worst observed mode grew (bit →
		// word → column → bank). Lazily observed: transitions between two
		// queries collapse into one.
		if oldMax >= 0 && newMax > oldMax {
			e.escalations++
		}
		ent.faults = fs
		ent.dirty = false
	}
	e.dirtyIdx = e.dirtyIdx[:0]
}

// Snapshot returns the full fault list over everything ingested so far —
// exactly what core.Cluster would return for the same records in the same
// order (nil when nothing has been ingested). The returned faults share
// their Errors backing arrays with the engine's cache; callers must not
// mutate them.
func (e *Engine) Snapshot() []core.Fault {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *Engine) snapshotLocked() []core.Fault {
	e.reclassify()
	if len(e.entries) == 0 {
		return nil
	}
	out := make([]core.Fault, 0, e.nFaults)
	for i := range e.entries {
		out = append(out, e.entries[i].faults...)
	}
	return out
}

// Features returns the live failure-prediction feature vector of every
// bank, in first-appearance order, evaluated at the newest event time —
// exactly what a batch predict.Tracker over Records() would return at
// the same instant. The result is freshly allocated; callers may keep
// it.
func (e *Engine) Features() []predict.BankFeatures {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.featuresLocked(e.last)
}

// featuresLocked evaluates every bank's features with an explicit
// window end (the fleet's newest event time when the engine is a
// shard, so partition outputs merge into the serial answer). Caller
// holds e.mu; the snapshot advances each bank's rolling window to at.
func (e *Engine) featuresLocked(at time.Time) []predict.BankFeatures {
	if len(e.entries) == 0 {
		return nil
	}
	out := make([]predict.BankFeatures, 0, len(e.entries))
	for i := range e.entries {
		ent := &e.entries[i]
		out = append(out, predict.BankFeatures{
			Key:      ent.key,
			FirstIdx: ent.firstIdx,
			F:        ent.fs.Snapshot(ent.state.Spatial(), at),
		})
	}
	return out
}

// Records returns a copy of every ingested CE record in arrival order —
// the engine's replayable state (IngestBatch of this slice into a fresh
// engine reproduces the engine exactly).
func (e *Engine) Records() []mce.CERecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.records) == 0 {
		return nil
	}
	return append([]mce.CERecord(nil), e.records...)
}

// Summary is the live top-level view.
type Summary struct {
	// Records is the number of CE records ingested.
	Records int `json:"records"`
	// First and Last bound the observed event time (zero when empty).
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
	// Banks, FaultyDIMMs and FaultyNodes count the distinct structures
	// with at least one fault.
	Banks       int `json:"banks"`
	FaultyDIMMs int `json:"faultyDIMMs"`
	FaultyNodes int `json:"faultyNodes"`
	// Faults is the current fault count; FaultsByMode and ErrorsByMode
	// decompose faults and their attributed errors by mode.
	Faults       int                     `json:"faults"`
	FaultsByMode [core.NumFaultModes]int `json:"faultsByMode"`
	ErrorsByMode [core.NumFaultModes]int `json:"errorsByMode"`
	// Escalations counts banks whose worst observed mode grew between two
	// classifications (single-bit → single-word → single-column →
	// single-bank).
	Escalations int `json:"escalations"`
	// WindowCount and WindowRate are the CE count and per-second rate
	// over the trailing window ending at Last.
	Window      time.Duration `json:"window"`
	WindowCount int           `json:"windowCount"`
	WindowRate  float64       `json:"windowRate"`
	// Shed counts records refused admission upstream of the engine
	// (reported via NoteShed); Offered is Records + Shed. When Shed is
	// non-zero every aggregate above undercounts and Degraded is set —
	// overload loses data loudly, never silently.
	Shed     int  `json:"shed"`
	Offered  int  `json:"offered"`
	Degraded bool `json:"degraded"`
}

// Summary returns the live top-level view, reclassifying dirty banks
// first.
func (e *Engine) Summary() Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.summaryLocked()
}

func (e *Engine) summaryLocked() Summary {
	e.reclassify()
	shed := int(e.shed.Load())
	return Summary{
		Records:      len(e.records),
		First:        e.first,
		Last:         e.last,
		Banks:        len(e.entries),
		FaultyDIMMs:  e.nDIMMs,
		FaultyNodes:  len(e.nodeStates),
		Faults:       e.nFaults,
		FaultsByMode: e.faultsByMode,
		ErrorsByMode: e.errorsByMode,
		Escalations:  e.escalations,
		Window:       e.cfg.Window,
		WindowCount:  e.rate.Count(e.last),
		WindowRate:   e.rate.Rate(e.last),
		Shed:         shed,
		Offered:      len(e.records) + shed,
		Degraded:     shed > 0,
	}
}

// NoteShed records n CE records lost to load shedding upstream of the
// engine (the admission queue's reject/evict paths call this through
// overload.Config.OnShed). The loss flows into Summary — Shed, Offered,
// Degraded — and marks WindowedFIT degraded, so the books
// offered == ingested + shed stay visible at every layer.
func (e *Engine) NoteShed(n int) {
	if n <= 0 {
		return
	}
	e.shed.Add(uint64(n))
	e.seq.Add(uint64(n))
}

// Shed returns the count of records reported lost via NoteShed.
func (e *Engine) Shed() uint64 { return e.shed.Load() }

// Seq returns the engine's state-change counter: it advances for every
// record made visible and every shed notification, without taking the
// engine mutex. View staleness is measured against it.
func (e *Engine) Seq() uint64 { return e.seq.Load() }

// DIMMs returns the configured monitored device population (the FIT
// denominator).
func (e *Engine) DIMMs() int { return e.cfg.DIMMs }

// FaultRates converts the current fault population into FIT/DIMM over the
// given window, exactly as core.AnalyzeFaultRates does over a batch
// clustering of the same records.
func (e *Engine) FaultRates(window time.Duration) core.FaultRates {
	e.mu.Lock()
	defer e.mu.Unlock()
	return core.AnalyzeFaultRates(e.snapshotLocked(), e.cfg.DIMMs, window)
}

// WindowedFIT is a rolling FIT estimate: fault arrivals inside the
// trailing window scaled to failures per 10⁹ device-hours.
type WindowedFIT struct {
	// Window is the trailing window; End is its right edge (the newest
	// event time seen).
	Window time.Duration `json:"window"`
	End    time.Time     `json:"end"`
	// NewFaults counts faults first observed inside the window;
	// ActiveFaults counts faults with any activity inside it.
	NewFaults    int `json:"newFaults"`
	ActiveFaults int `json:"activeFaults"`
	// FITPerDIMM scales NewFaults to FIT over the window and the
	// configured DIMM population.
	FITPerDIMM float64 `json:"fitPerDIMM"`
	// Degraded reports an untrustworthy estimate: no events yet, no
	// configured DIMM population, or records shed under overload (the
	// fault population undercounts).
	Degraded bool `json:"degraded"`
}

// WindowedFIT computes the rolling FIT estimate over the configured
// window ending at the newest event time.
func (e *Engine) WindowedFIT() WindowedFIT {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.windowedFITLocked(e.last, e.cfg.DIMMs)
}

// windowedFITLocked computes the estimate with an explicit window end and
// DIMM population: the fan-in tier evaluates every partition at the
// fleet-wide newest event time so partition sums equal the serial answer.
func (e *Engine) windowedFITLocked(end time.Time, dimms int) WindowedFIT {
	e.reclassify()
	w := WindowedFIT{Window: e.cfg.Window, End: end}
	if e.shed.Load() > 0 {
		// Shed records mean the fault population undercounts.
		w.Degraded = true
	}
	if end.IsZero() || dimms <= 0 {
		w.Degraded = true
		return w
	}
	cut := end.Add(-e.cfg.Window)
	for i := range e.entries {
		for j := range e.entries[i].faults {
			f := &e.entries[i].faults[j]
			if f.First.After(cut) {
				w.NewFaults++
			}
			if f.Last.After(cut) {
				w.ActiveFaults++
			}
		}
	}
	hours := e.cfg.Window.Hours()
	if hours > 0 {
		w.FITPerDIMM = float64(w.NewFaults) / (float64(dimms) * hours) * 1e9
	}
	return w
}

// NodeStatus is the live per-node view.
type NodeStatus struct {
	Node topology.NodeID `json:"node"`
	// CEs is the node's total CE count; First/Last bound its activity.
	CEs   int       `json:"ces"`
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
	// WindowCount and WindowRate cover the trailing window ending at the
	// engine's newest event time.
	WindowCount int     `json:"windowCount"`
	WindowRate  float64 `json:"windowRate"`
	// Faults is the node's current fault list.
	Faults []core.Fault `json:"faults"`
}

// NodeStatus returns the live view of one node; ok is false when the node
// has produced no CE records.
func (e *Engine) NodeStatus(id topology.NodeID) (NodeStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nodeStatusLocked(id, e.last)
}

// nodeStatusLocked is NodeStatus with an explicit window end (the fleet's
// newest event time when the engine is a shard).
func (e *Engine) nodeStatusLocked(id topology.NodeID, end time.Time) (NodeStatus, bool) {
	nsIdx, ok := e.lookupNode(id)
	if !ok {
		return NodeStatus{}, false
	}
	e.reclassify()
	ns := &e.nodeStates[nsIdx]
	st := NodeStatus{
		Node:        id,
		CEs:         ns.ces,
		First:       ns.first,
		Last:        ns.last,
		WindowCount: ns.rw.Count(end),
		WindowRate:  ns.rw.Rate(end),
	}
	if e.bankOverflow == nil {
		// ns.banks indexes this node's entries in first-appearance order, a
		// subsequence of the global entry order.
		for _, ref := range ns.banks {
			st.Faults = append(st.Faults, e.entries[ref.idx].faults...)
		}
	} else {
		// Overflow banks are absent from ns.banks; the full entry scan
		// keeps first-appearance order exact (exotic inputs only).
		for i := range e.entries {
			if e.entries[i].key.Node == id {
				st.Faults = append(st.Faults, e.entries[i].faults...)
			}
		}
	}
	return st, true
}

// lookupNode returns the nodeStates index for id without creating it.
func (e *Engine) lookupNode(id topology.NodeID) (int32, bool) {
	if i := int(id); i >= 0 && i < maxDenseNode {
		if i < len(e.nodeIdx) && e.nodeIdx[i] >= 0 {
			return e.nodeIdx[i], true
		}
		return 0, false
	}
	idx, ok := e.nodeOver[id]
	return idx, ok
}

// Config returns the engine's effective configuration (defaults applied).
func (e *Engine) Config() Config { return e.cfg }
