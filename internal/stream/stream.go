// Package stream is the online half of the paper's methodology: an
// incremental fault-clustering engine that consumes CE records one at a
// time (or in micro-batches) and keeps per-bank fault state current, so
// fault counts, mode mixes, per-node CE rates and FIT estimates are
// available at any instant instead of after a nightly batch run.
//
// The engine carries a differential guarantee: replaying any record
// sequence through Ingest/IngestBatch — at any micro-batch size and any
// Parallelism — then calling Snapshot yields exactly the faults (order,
// modes, error index lists) that core.Cluster produces over the same
// records. This is not an accident of testing but of construction: both
// paths accumulate core.BankState per bank and classify through
// BankState.AppendFaults, and the property tests in this package pin it.
//
// Mode escalation is the natural history of a DRAM fault under this
// methodology: a bank that has shown one stuck bit (single-bit) may grow
// to several bits in a word (single-word), a column, or scattered words
// (single-bank) as more errors arrive. The engine re-derives each bank's
// classification lazily — banks are marked dirty on ingest and
// reclassified on the next query — and counts observed escalations.
package stream

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mce"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DefaultWindow is the trailing window for rolling rates and windowed FIT
// estimates when Config.Window is zero.
const DefaultWindow = 24 * time.Hour

// DefaultRateBuckets is the ring resolution of the rolling-rate windows.
const DefaultRateBuckets = 48

// Config tunes the engine. The zero value is usable: default clustering
// thresholds, a 24-hour rolling window, no FIT denominator (rate queries
// report Degraded until DIMMs is set).
type Config struct {
	// Cluster sets the clustering thresholds; the zero value means
	// core.DefaultClusterConfig().
	Cluster core.ClusterConfig
	// Window is the trailing window for rolling CE rates and windowed FIT
	// estimates; 0 means DefaultWindow.
	Window time.Duration
	// RateBuckets resolves the rolling windows; 0 means DefaultRateBuckets.
	RateBuckets int
	// DIMMs is the monitored device population, the denominator of FIT
	// estimates (nodes × topology.SlotsPerNode on the full system).
	DIMMs int
	// Parallelism bounds the workers IngestBatch shards large batches
	// across; 0 uses GOMAXPROCS, 1 keeps ingest serial. Results are
	// identical at every setting.
	Parallelism int
}

// nodeState is the per-node rolling view.
type nodeState struct {
	ces         int
	first, last time.Time
	rw          *stats.RateWindow
}

// Engine is the incremental clustering engine. All methods are safe for
// concurrent use: ingest and queries serialize on one mutex (queries may
// reclassify dirty banks, so they mutate cached state too).
type Engine struct {
	mu  sync.Mutex
	cfg Config

	// records is every ingested CE in arrival order; fault Errors index
	// into it. It grows for the lifetime of the engine, like the input
	// slice of a batch run.
	records []mce.CERecord

	banks map[core.BankKey]*core.BankState
	order []core.BankKey // first-appearance order, as in batch Cluster

	// dirty marks banks touched since their last classification; cache
	// holds each bank's current fault list; the aggregate counters below
	// are maintained by delta on reclassification.
	dirty        map[core.BankKey]struct{}
	cache        map[core.BankKey][]core.Fault
	nFaults      int
	faultsByMode [core.NumFaultModes]int
	errorsByMode [core.NumFaultModes]int
	escalations  int

	perNode map[topology.NodeID]*nodeState
	dimms   map[[2]int32]struct{} // distinct (node, slot) with ≥1 fault
	rate    *stats.RateWindow
	first   time.Time
	last    time.Time

	// seq counts state changes (records made visible plus shed
	// notifications) and is readable without the mutex; view caches the
	// last built read-only View, stale when its Seq trails seq.
	seq  atomic.Uint64
	shed atomic.Uint64
	view atomic.Pointer[View]
}

// New returns an engine with no state.
func New(cfg Config) *Engine {
	if cfg.Cluster == (core.ClusterConfig{Parallelism: cfg.Cluster.Parallelism}) {
		p := cfg.Cluster.Parallelism
		cfg.Cluster = core.DefaultClusterConfig()
		cfg.Cluster.Parallelism = p
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.RateBuckets <= 0 {
		cfg.RateBuckets = DefaultRateBuckets
	}
	return &Engine{
		cfg:     cfg,
		banks:   map[core.BankKey]*core.BankState{},
		dirty:   map[core.BankKey]struct{}{},
		cache:   map[core.BankKey][]core.Fault{},
		perNode: map[topology.NodeID]*nodeState{},
		dimms:   map[[2]int32]struct{}{},
		rate:    stats.NewRateWindow(cfg.Window, cfg.RateBuckets),
	}
}

// Ingest folds one CE record into the engine. The hot path allocates only
// when it sees a new bank, word address or node (steady-state ingest of a
// warmed fault population is allocation-free, amortized).
func (e *Engine) Ingest(r mce.CERecord) {
	e.mu.Lock()
	e.ingestLocked(r)
	e.seq.Add(1)
	e.mu.Unlock()
}

func (e *Engine) ingestLocked(r mce.CERecord) {
	i := len(e.records)
	e.records = append(e.records, r)
	rec := &e.records[i]
	key := core.RecordBankKey(rec)
	bank, ok := e.banks[key]
	if !ok {
		bank = core.NewBankState()
		e.banks[key] = bank
		e.order = append(e.order, key)
		e.dimms[[2]int32{int32(key.Node), int32(key.Slot)}] = struct{}{}
	}
	bank.Add(i, rec)
	e.dirty[key] = struct{}{}
	e.scalars(rec)
}

// scalars maintains the per-record rolling aggregates (everything except
// the bank state itself).
func (e *Engine) scalars(r *mce.CERecord) {
	ns, ok := e.perNode[r.Node]
	if !ok {
		ns = &nodeState{first: r.Time, last: r.Time,
			rw: stats.NewRateWindow(e.cfg.Window, e.cfg.RateBuckets)}
		e.perNode[r.Node] = ns
	}
	ns.ces++
	if r.Time.Before(ns.first) {
		ns.first = r.Time
	}
	if r.Time.After(ns.last) {
		ns.last = r.Time
	}
	ns.rw.Add(r.Time)
	e.rate.Add(r.Time)
	if e.first.IsZero() || r.Time.Before(e.first) {
		e.first = r.Time
	}
	if r.Time.After(e.last) {
		e.last = r.Time
	}
}

// minBatchShard keeps micro-batch grouping serial below this size; the
// per-shard map setup would cost more than the scan.
const minBatchShard = 1 << 12

// IngestBatch folds a micro-batch of records into the engine, sharding
// the bank-grouping scan across Config.Parallelism workers when the batch
// is large. The result is identical to ingesting the records one by one
// in order, at every batch size and worker count: shards cover contiguous
// ranges and merge in shard order, reproducing the serial first-appearance
// order exactly (the same argument as the batch clusterer's sharded scan).
func (e *Engine) IngestBatch(rs []mce.CERecord) {
	if len(rs) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.seq.Add(uint64(len(rs)))
	workers := parallel.Workers(e.cfg.Parallelism)
	if workers <= 1 || len(rs) < 2*minBatchShard {
		for i := range rs {
			e.ingestLocked(rs[i])
		}
		return
	}

	base := len(e.records)
	e.records = append(e.records, rs...)

	type part struct {
		banks map[core.BankKey]*core.BankState
		order []core.BankKey
	}
	shards := parallel.NumChunks(workers, len(rs))
	parts := make([]part, shards)
	parallel.ForEachChunk(workers, len(rs), func(shard, lo, hi int) {
		p := part{banks: make(map[core.BankKey]*core.BankState, 8)}
		for i := lo; i < hi; i++ {
			rec := &e.records[base+i]
			key := core.RecordBankKey(rec)
			bank, ok := p.banks[key]
			if !ok {
				bank = core.NewBankState()
				p.banks[key] = bank
				p.order = append(p.order, key)
			}
			bank.Add(base+i, rec)
		}
		parts[shard] = p
	})
	for _, p := range parts {
		for _, key := range p.order {
			bank, ok := e.banks[key]
			if !ok {
				e.banks[key] = p.banks[key]
				e.order = append(e.order, key)
				e.dimms[[2]int32{int32(key.Node), int32(key.Slot)}] = struct{}{}
			} else {
				bank.Merge(p.banks[key])
			}
			e.dirty[key] = struct{}{}
		}
	}
	for i := base; i < len(e.records); i++ {
		e.scalars(&e.records[i])
	}
}

// reclassify re-derives the fault lists of dirty banks and updates the
// aggregate counters by delta. Caller holds e.mu.
func (e *Engine) reclassify() {
	if len(e.dirty) == 0 {
		return
	}
	for key := range e.dirty {
		old := e.cache[key]
		fs := e.banks[key].AppendFaults(nil, key, e.cfg.Cluster)
		oldMax, newMax := -1, -1
		for i := range old {
			f := &old[i]
			e.faultsByMode[f.Mode]--
			e.errorsByMode[f.Mode] -= f.NErrors
			if int(f.Mode) > oldMax {
				oldMax = int(f.Mode)
			}
		}
		for i := range fs {
			f := &fs[i]
			e.faultsByMode[f.Mode]++
			e.errorsByMode[f.Mode] += f.NErrors
			if int(f.Mode) > newMax {
				newMax = int(f.Mode)
			}
		}
		e.nFaults += len(fs) - len(old)
		// An escalation is a bank whose worst observed mode grew (bit →
		// word → column → bank). Lazily observed: transitions between two
		// queries collapse into one.
		if oldMax >= 0 && newMax > oldMax {
			e.escalations++
		}
		e.cache[key] = fs
		delete(e.dirty, key)
	}
}

// Snapshot returns the full fault list over everything ingested so far —
// exactly what core.Cluster would return for the same records in the same
// order (nil when nothing has been ingested). The returned faults share
// their Errors backing arrays with the engine's cache; callers must not
// mutate them.
func (e *Engine) Snapshot() []core.Fault {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *Engine) snapshotLocked() []core.Fault {
	e.reclassify()
	if len(e.order) == 0 {
		return nil
	}
	out := make([]core.Fault, 0, e.nFaults)
	for _, key := range e.order {
		out = append(out, e.cache[key]...)
	}
	return out
}

// Records returns a copy of every ingested CE record in arrival order —
// the engine's replayable state (IngestBatch of this slice into a fresh
// engine reproduces the engine exactly).
func (e *Engine) Records() []mce.CERecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.records) == 0 {
		return nil
	}
	return append([]mce.CERecord(nil), e.records...)
}

// Summary is the live top-level view.
type Summary struct {
	// Records is the number of CE records ingested.
	Records int `json:"records"`
	// First and Last bound the observed event time (zero when empty).
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
	// Banks, FaultyDIMMs and FaultyNodes count the distinct structures
	// with at least one fault.
	Banks       int `json:"banks"`
	FaultyDIMMs int `json:"faultyDIMMs"`
	FaultyNodes int `json:"faultyNodes"`
	// Faults is the current fault count; FaultsByMode and ErrorsByMode
	// decompose faults and their attributed errors by mode.
	Faults       int                     `json:"faults"`
	FaultsByMode [core.NumFaultModes]int `json:"faultsByMode"`
	ErrorsByMode [core.NumFaultModes]int `json:"errorsByMode"`
	// Escalations counts banks whose worst observed mode grew between two
	// classifications (single-bit → single-word → single-column →
	// single-bank).
	Escalations int `json:"escalations"`
	// WindowCount and WindowRate are the CE count and per-second rate
	// over the trailing window ending at Last.
	Window      time.Duration `json:"window"`
	WindowCount int           `json:"windowCount"`
	WindowRate  float64       `json:"windowRate"`
	// Shed counts records refused admission upstream of the engine
	// (reported via NoteShed); Offered is Records + Shed. When Shed is
	// non-zero every aggregate above undercounts and Degraded is set —
	// overload loses data loudly, never silently.
	Shed     int  `json:"shed"`
	Offered  int  `json:"offered"`
	Degraded bool `json:"degraded"`
}

// Summary returns the live top-level view, reclassifying dirty banks
// first.
func (e *Engine) Summary() Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.summaryLocked()
}

func (e *Engine) summaryLocked() Summary {
	e.reclassify()
	shed := int(e.shed.Load())
	return Summary{
		Records:      len(e.records),
		First:        e.first,
		Last:         e.last,
		Banks:        len(e.order),
		FaultyDIMMs:  len(e.dimms),
		FaultyNodes:  len(e.perNode),
		Faults:       e.nFaults,
		FaultsByMode: e.faultsByMode,
		ErrorsByMode: e.errorsByMode,
		Escalations:  e.escalations,
		Window:       e.cfg.Window,
		WindowCount:  e.rate.Count(e.last),
		WindowRate:   e.rate.Rate(e.last),
		Shed:         shed,
		Offered:      len(e.records) + shed,
		Degraded:     shed > 0,
	}
}

// NoteShed records n CE records lost to load shedding upstream of the
// engine (the admission queue's reject/evict paths call this through
// overload.Config.OnShed). The loss flows into Summary — Shed, Offered,
// Degraded — and marks WindowedFIT degraded, so the books
// offered == ingested + shed stay visible at every layer.
func (e *Engine) NoteShed(n int) {
	if n <= 0 {
		return
	}
	e.shed.Add(uint64(n))
	e.seq.Add(uint64(n))
}

// Shed returns the count of records reported lost via NoteShed.
func (e *Engine) Shed() uint64 { return e.shed.Load() }

// Seq returns the engine's state-change counter: it advances for every
// record made visible and every shed notification, without taking the
// engine mutex. View staleness is measured against it.
func (e *Engine) Seq() uint64 { return e.seq.Load() }

// FaultRates converts the current fault population into FIT/DIMM over the
// given window, exactly as core.AnalyzeFaultRates does over a batch
// clustering of the same records.
func (e *Engine) FaultRates(window time.Duration) core.FaultRates {
	e.mu.Lock()
	defer e.mu.Unlock()
	return core.AnalyzeFaultRates(e.snapshotLocked(), e.cfg.DIMMs, window)
}

// WindowedFIT is a rolling FIT estimate: fault arrivals inside the
// trailing window scaled to failures per 10⁹ device-hours.
type WindowedFIT struct {
	// Window is the trailing window; End is its right edge (the newest
	// event time seen).
	Window time.Duration `json:"window"`
	End    time.Time     `json:"end"`
	// NewFaults counts faults first observed inside the window;
	// ActiveFaults counts faults with any activity inside it.
	NewFaults    int `json:"newFaults"`
	ActiveFaults int `json:"activeFaults"`
	// FITPerDIMM scales NewFaults to FIT over the window and the
	// configured DIMM population.
	FITPerDIMM float64 `json:"fitPerDIMM"`
	// Degraded reports an untrustworthy estimate: no events yet, no
	// configured DIMM population, or records shed under overload (the
	// fault population undercounts).
	Degraded bool `json:"degraded"`
}

// WindowedFIT computes the rolling FIT estimate over the configured
// window ending at the newest event time.
func (e *Engine) WindowedFIT() WindowedFIT {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.windowedFITLocked()
}

func (e *Engine) windowedFITLocked() WindowedFIT {
	e.reclassify()
	w := WindowedFIT{Window: e.cfg.Window, End: e.last}
	if e.shed.Load() > 0 {
		// Shed records mean the fault population undercounts.
		w.Degraded = true
	}
	if e.last.IsZero() || e.cfg.DIMMs <= 0 {
		w.Degraded = true
		return w
	}
	cut := e.last.Add(-e.cfg.Window)
	for _, key := range e.order {
		for i := range e.cache[key] {
			f := &e.cache[key][i]
			if f.First.After(cut) {
				w.NewFaults++
			}
			if f.Last.After(cut) {
				w.ActiveFaults++
			}
		}
	}
	hours := e.cfg.Window.Hours()
	if hours > 0 {
		w.FITPerDIMM = float64(w.NewFaults) / (float64(e.cfg.DIMMs) * hours) * 1e9
	}
	return w
}

// NodeStatus is the live per-node view.
type NodeStatus struct {
	Node topology.NodeID `json:"node"`
	// CEs is the node's total CE count; First/Last bound its activity.
	CEs   int       `json:"ces"`
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
	// WindowCount and WindowRate cover the trailing window ending at the
	// engine's newest event time.
	WindowCount int     `json:"windowCount"`
	WindowRate  float64 `json:"windowRate"`
	// Faults is the node's current fault list.
	Faults []core.Fault `json:"faults"`
}

// NodeStatus returns the live view of one node; ok is false when the node
// has produced no CE records.
func (e *Engine) NodeStatus(id topology.NodeID) (NodeStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ns, ok := e.perNode[id]
	if !ok {
		return NodeStatus{}, false
	}
	e.reclassify()
	st := NodeStatus{
		Node:        id,
		CEs:         ns.ces,
		First:       ns.first,
		Last:        ns.last,
		WindowCount: ns.rw.Count(e.last),
		WindowRate:  ns.rw.Rate(e.last),
	}
	for _, key := range e.order {
		if key.Node == id {
			st.Faults = append(st.Faults, e.cache[key]...)
		}
	}
	return st, true
}

// Config returns the engine's effective configuration (defaults applied).
func (e *Engine) Config() Config { return e.cfg }
