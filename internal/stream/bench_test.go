package stream_test

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/topology"
)

// BenchmarkStreamIngest measures the hot ingest path: records/s and
// allocs/record for one-at-a-time ingest into a warmed engine (the
// daemon's steady state — every bank, word and node already known).
//
//	go test -run '^$' -bench StreamIngest -benchmem ./internal/stream
func BenchmarkStreamIngest(b *testing.B) {
	ds := fixture(b)
	recs := ds.CERecords
	if len(recs) == 0 {
		b.Fatal("empty fixture")
	}
	e := stream.New(stream.Config{DIMMs: 48 * topology.SlotsPerNode})
	e.IngestBatch(recs) // warm the fault population
	e.Summary()         // classify everything once

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest(recs[i%len(recs)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkStreamIngestBatch measures micro-batched ingest (the daemon's
// catch-up mode) at the serial and auto worker settings.
func BenchmarkStreamIngestBatch(b *testing.B) {
	ds := fixture(b)
	recs := ds.CERecords
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"auto", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := stream.New(stream.Config{Parallelism: bench.workers})
				e.IngestBatch(recs)
				e.Summary()
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkShardedIngestBatch measures partition-parallel micro-batched
// ingest at several partition counts (1 = the fan-out overhead floor).
func BenchmarkShardedIngestBatch(b *testing.B) {
	ds := fixture(b)
	recs := ds.CERecords
	for _, parts := range []int{1, 4, 8} {
		b.Run("parts"+string(rune('0'+parts)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := stream.NewSharded(stream.ShardedConfig{Partitions: parts})
				s.IngestBatch(recs)
				s.Summary()
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkShardedFanin measures the fleet-view merge (the aggregation
// tier's full cost: lock all partitions, merge summaries, k-way merge
// fault lists, rebuild node map) against warm fleets of varying width.
func BenchmarkShardedFanin(b *testing.B) {
	ds := fixture(b)
	for _, parts := range []int{1, 4, 8} {
		s := stream.NewSharded(stream.ShardedConfig{Partitions: parts, Engine: stream.Config{DIMMs: 48 * topology.SlotsPerNode}})
		s.IngestBatch(ds.CERecords)
		s.Summary()
		b.Run("parts"+string(rune('0'+parts)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if v := s.BuildView(); len(v.Faults) == 0 {
					b.Fatal("empty fleet view")
				}
			}
		})
	}
}

// BenchmarkStreamSnapshot measures the full-fault-list query against a
// warm engine with a clean cache (the serving path's worst read).
func BenchmarkStreamSnapshot(b *testing.B) {
	ds := fixture(b)
	e := stream.New(stream.Config{})
	e.IngestBatch(ds.CERecords)
	e.Summary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fs := e.Snapshot(); len(fs) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
