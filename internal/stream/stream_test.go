package stream_test

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corrupt"
	"repro/internal/dataset"
	"repro/internal/mce"
	"repro/internal/stream"
	"repro/internal/topology"
)

var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixErr  error
)

// fixture builds one small dataset shared by every test in the package.
func fixture(t testing.TB) *dataset.Dataset {
	t.Helper()
	fixOnce.Do(func() {
		cfg := dataset.DefaultConfig(47)
		cfg.Nodes = 48
		fixDS, fixErr = dataset.Build(context.Background(), cfg)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDS
}

func mustCluster(t testing.TB, records []mce.CERecord, cfg core.ClusterConfig) []core.Fault {
	t.Helper()
	faults, err := core.Cluster(context.Background(), records, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return faults
}

// TestStreamMatchesBatch is the differential guarantee: replaying the
// dataset through the engine at every micro-batch size and worker count —
// with live queries interleaved between batches — yields exactly the
// faults of the batch clusterer, and the engine's incremental aggregates
// match the batch analyses (mode fractions, FIT).
func TestStreamMatchesBatch(t *testing.T) {
	ds := fixture(t)
	records := ds.CERecords
	if len(records) < 1000 {
		t.Fatalf("weak fixture: only %d records", len(records))
	}
	dimms := 48 * topology.SlotsPerNode

	for _, clusterWorkers := range []int{1, 4} {
		cc := core.DefaultClusterConfig()
		cc.Parallelism = clusterWorkers
		want := mustCluster(t, records, cc)
		wantBreakdown := core.BreakdownByMode(records, want)
		wantRates := core.AnalyzeFaultRates(want, dimms, core.StudyWindow())

		for _, tc := range []struct {
			name      string
			batch     int
			enginePar int
		}{
			{"one-at-a-time", 1, 1},
			{"batch3", 3, 1},
			{"batch64", 64, 1},
			{"batch997-parallel", 997, 4},
			{"all-serial", len(records), 1},
			{"all-parallel", len(records), 0},
		} {
			t.Run(tc.name, func(t *testing.T) {
				e := stream.New(stream.Config{
					Cluster:     core.ClusterConfig{Parallelism: clusterWorkers},
					DIMMs:       dimms,
					Parallelism: tc.enginePar,
				})
				for lo := 0; lo < len(records); lo += tc.batch {
					hi := lo + tc.batch
					if hi > len(records) {
						hi = len(records)
					}
					if tc.batch == 1 {
						e.Ingest(records[lo])
					} else {
						e.IngestBatch(records[lo:hi])
					}
					// Interleaved queries must not perturb later results.
					if lo/tc.batch%7 == 0 {
						_ = e.Summary()
						_ = e.WindowedFIT()
					}
				}
				got := e.Snapshot()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("stream faults diverge from batch: got %d faults, want %d", len(got), len(want))
				}
				sum := e.Summary()
				if sum.Records != len(records) {
					t.Fatalf("Summary.Records = %d, want %d", sum.Records, len(records))
				}
				if sum.FaultsByMode != wantBreakdown.FaultsByMode {
					t.Fatalf("FaultsByMode = %v, want %v", sum.FaultsByMode, wantBreakdown.FaultsByMode)
				}
				if sum.ErrorsByMode != wantBreakdown.ErrorsByMode {
					t.Fatalf("ErrorsByMode = %v, want %v", sum.ErrorsByMode, wantBreakdown.ErrorsByMode)
				}
				if sum.Faults != len(want) {
					t.Fatalf("Summary.Faults = %d, want %d", sum.Faults, len(want))
				}
				if got := e.FaultRates(core.StudyWindow()); got != wantRates {
					t.Fatalf("FaultRates = %+v, want %+v", got, wantRates)
				}
			})
		}
	}
}

// TestStreamReplayReproducesEngine pins the engine's replayable-state
// contract: IngestBatch(e.Records()) into a fresh engine reproduces the
// same snapshot — the property astrad's checkpoint/restore is built on.
func TestStreamReplayReproducesEngine(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 48 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)
	want := e.Snapshot()

	replay := stream.New(stream.Config{DIMMs: 48 * topology.SlotsPerNode})
	replay.IngestBatch(e.Records())
	if got := replay.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("replayed engine diverges from original")
	}
	if got, want := replay.Summary(), e.Summary(); got != want {
		t.Fatalf("replayed summary %+v != %+v", got, want)
	}
}

// TestStreamDirtyDifferential feeds the engine from the same hardened
// scanner path as batch ingest, over a syslog corrupted at 1%: the stream
// and batch paths must agree exactly (same faults, same FIT, same
// Degraded accounting), because both consume the scanner's emit order.
// At 100% corruption both must degrade identically instead of panicking.
func TestStreamDirtyDifferential(t *testing.T) {
	ds := fixture(t)
	var raw bytes.Buffer
	if err := ds.WriteSyslog(&raw, 100); err != nil {
		t.Fatal(err)
	}
	pol := dataset.IngestPolicy{
		DedupWindow:      64,
		ReorderWindow:    5 * time.Minute,
		MaxMalformedFrac: -1,
	}
	dimms := 48 * topology.SlotsPerNode

	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"corrupt1pct", 0.01},
		{"corrupt100pct", 1.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var dirty bytes.Buffer
			if _, err := corrupt.New(corrupt.Uniform(99, tc.rate)).Process(bytes.NewReader(raw.Bytes()), &dirty); err != nil {
				t.Fatal(err)
			}
			ces, _, _, rep, err := dataset.ReadSyslogPolicy(bytes.NewReader(dirty.Bytes()), pol)
			if err != nil {
				t.Fatal(err)
			}
			if tc.rate <= 0.01 && rep.Malformed == 0 {
				t.Fatal("harness has no signal: no malformed lines at 1% corruption")
			}

			want := mustCluster(t, ces, core.DefaultClusterConfig())
			wantRates := core.AnalyzeFaultRates(want, dimms, core.StudyWindow())

			e := stream.New(stream.Config{DIMMs: dimms})
			for _, r := range ces {
				e.Ingest(r)
			}
			if got := e.Snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("dirty stream faults diverge: got %d, want %d", len(got), len(want))
			}
			gotRates := e.FaultRates(core.StudyWindow())
			if gotRates != wantRates {
				t.Fatalf("dirty FaultRates = %+v, want %+v", gotRates, wantRates)
			}
			if gotRates.Degraded != wantRates.Degraded {
				t.Fatalf("Degraded accounting diverges: stream %v, batch %v", gotRates.Degraded, wantRates.Degraded)
			}
			wfit := e.WindowedFIT()
			if wantDeg := len(ces) == 0; wfit.Degraded != wantDeg {
				t.Fatalf("WindowedFIT.Degraded = %v, want %v", wfit.Degraded, wantDeg)
			}
		})
	}
}

// TestStreamModeEscalation drives one bank through the full escalation
// ladder — single-bit → single-word → single-column → single-bank — with
// a synthetic record sequence whose classification at every step is known
// by construction, and checks the engine observes each transition.
func TestStreamModeEscalation(t *testing.T) {
	base := time.Date(2019, 6, 1, 12, 0, 0, 0, time.UTC)
	rec := func(i int, addr topology.PhysAddr, col, bit int) mce.CERecord {
		return mce.CERecord{
			Time: base.Add(time.Duration(i) * time.Minute),
			Node: 7, Slot: 2, Rank: 0, Bank: 3,
			Col: col, RowRaw: 11, BitPos: bit, Addr: addr,
		}
	}
	steps := []struct {
		r    mce.CERecord
		want core.FaultMode
	}{
		{rec(0, 0x1000, 5, 3), core.ModeSingleBit},    // one word, one bit
		{rec(1, 0x1000, 5, 7), core.ModeSingleWord},   // same word, second bit
		{rec(2, 0x2000, 5, 3), core.ModeSingleColumn}, // second word, same column
		{rec(3, 0x3000, 9, 3), core.ModeSingleBank},   // third word, scattered columns
	}
	e := stream.New(stream.Config{})
	for i, s := range steps {
		e.Ingest(s.r)
		sum := e.Summary()
		worst := -1
		for m := range sum.FaultsByMode {
			if sum.FaultsByMode[m] > 0 {
				worst = m
			}
		}
		if core.FaultMode(worst) != s.want {
			t.Fatalf("step %d: worst mode = %v, want %v", i, core.FaultMode(worst), s.want)
		}
	}
	if got := e.Summary().Escalations; got != 3 {
		t.Fatalf("Escalations = %d, want 3", got)
	}
}

// TestStreamNodeStatus checks the per-node rolling view against direct
// counts.
func TestStreamNodeStatus(t *testing.T) {
	ds := fixture(t)
	e := stream.New(stream.Config{DIMMs: 48 * topology.SlotsPerNode})
	e.IngestBatch(ds.CERecords)

	perNode := map[topology.NodeID]int{}
	for _, r := range ds.CERecords {
		perNode[r.Node]++
	}
	faults := e.Snapshot()
	nodeFaults := map[topology.NodeID]int{}
	for i := range faults {
		nodeFaults[faults[i].Node]++
	}
	checked := 0
	for id, want := range perNode {
		st, ok := e.NodeStatus(id)
		if !ok {
			t.Fatalf("node %v missing from engine", id)
		}
		if st.CEs != want {
			t.Fatalf("node %v CEs = %d, want %d", id, st.CEs, want)
		}
		if len(st.Faults) != nodeFaults[id] {
			t.Fatalf("node %v faults = %d, want %d", id, len(st.Faults), nodeFaults[id])
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if _, ok := e.NodeStatus(topology.NodeID(47 * 1000)); ok {
		t.Fatal("NodeStatus reported a node that never erred")
	}
}

// TestStreamIngestSteadyStateAllocs pins the hot-path property the
// serving daemon depends on: once the fault population is warm (every
// bank, word and node already seen), ingest does not allocate per record
// (amortized — slice growth over thousands of records rounds to zero).
func TestStreamIngestSteadyStateAllocs(t *testing.T) {
	ds := fixture(t)
	n := len(ds.CERecords)
	if n > 20000 {
		n = 20000
	}
	recs := ds.CERecords[:n]
	e := stream.New(stream.Config{})
	e.IngestBatch(recs) // warm every bank/word/node
	e.Summary()         // clear the dirty set

	i := 0
	avg := testing.AllocsPerRun(10000, func() {
		e.Ingest(recs[i%len(recs)])
		i++
	})
	if avg >= 1 {
		t.Fatalf("steady-state ingest allocates %.3f per record, want amortized 0", avg)
	}
}
