package stream_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/predict"
	"repro/internal/stream"
	"repro/internal/topology"
)

// TestFeaturesStreamMatchesBatchParallel is the prediction-layer
// differential: per-bank feature vectors accumulated incrementally by
// the stream engine — serial or sharded at any partition count, any
// micro-batch size — are bit-identical (reflect.DeepEqual on float64
// fields, no tolerance) to a batch predict.Tracker replay of the same
// records. This holds by construction, not coincidence: FeatureState
// has no merge operation, so every path applies the same Observe
// sequence per bank; the test pins the construction.
func TestFeaturesStreamMatchesBatchParallel(t *testing.T) {
	ds := fixture(t)
	records := ds.CERecords
	dimms := 48 * topology.SlotsPerNode

	// Batch reference: one Tracker over the records in order.
	tr := predict.NewTracker(predict.TrackerConfig{
		Window:      stream.DefaultWindow,
		RateBuckets: stream.DefaultRateBuckets,
	})
	for i := range records {
		tr.Observe(&records[i])
	}
	want := tr.Features(tr.Last())
	if len(want) == 0 {
		t.Fatal("fixture produced no banks")
	}

	for _, parts := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(parts)))
		serial := stream.New(stream.Config{DIMMs: dimms})
		sharded := stream.NewSharded(stream.ShardedConfig{
			Partitions: parts,
			Engine:     stream.Config{DIMMs: dimms},
		})
		for lo := 0; lo < len(records); {
			hi := lo + 1 + rng.Intn(513)
			if hi > len(records) {
				hi = len(records)
			}
			serial.IngestBatch(records[lo:hi])
			sharded.IngestBatch(records[lo:hi])
			lo = hi
		}
		if got := serial.Features(); !reflect.DeepEqual(got, want) {
			t.Fatalf("serial engine features diverge from batch tracker (%d vs %d banks)", len(got), len(want))
		}
		if got := sharded.Features(); !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded(%d) features diverge from batch tracker (%d vs %d banks)", parts, len(got), len(want))
		}
		// The view carries the same vectors.
		if got := sharded.LiveView().Banks(); !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded(%d) view banks diverge", parts)
		}
	}
}

// TestFeaturesRiskRankingDeterminism: scoring and ranking the streamed
// features is reproducible and ordered (desc score, FirstIdx
// tie-break) — what the /v1/atrisk endpoint serves.
func TestFeaturesRiskRankingDeterminism(t *testing.T) {
	ds := fixture(t)
	eng := stream.New(stream.Config{})
	eng.IngestBatch(ds.CERecords)

	p := predict.DefaultRuleLadder()
	bf := eng.Features()
	s1 := predict.SortByRisk(bf, p)
	bf2 := eng.Features()
	s2 := predict.SortByRisk(bf2, p)
	if !reflect.DeepEqual(bf, bf2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("repeated feature extraction + ranking not reproducible")
	}
	for i := 1; i < len(bf); i++ {
		if s1[i] > s1[i-1] {
			t.Fatalf("ranking not descending at %d: %v after %v", i, s1[i], s1[i-1])
		}
		if s1[i] == s1[i-1] && bf[i].FirstIdx < bf[i-1].FirstIdx {
			t.Fatalf("tie at %d not broken by FirstIdx", i)
		}
	}
	any := false
	for _, s := range s1 {
		if s > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("no bank scored above zero on the fixture")
	}
}
